// The server/ + robustness battery (DESIGN.md §9): concurrent Search bit-
// identity against serial oracles, the striped BufferManager under
// contention, cross-thread pin/EvictAll contracts, the fault-injection
// battery (every injected fault either retries to success or surfaces a
// classified non-OK Status; OK results stay bit-identical to the fault-free
// oracle; a torn page never poisons the pool), per-query deadlines
// surfacing DeadlineExceeded mid-flight with partial stats, bounded-
// admission shedding, the degradation ladder escalating to Refusing and
// recovering via probes, and a scaled-down version of the bench's
// fault-soak invariant (every query ends OK / DeadlineExceeded /
// ResourceExhausted / Unavailable).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/database.h"
#include "ir/query_gen.h"
#include "ir/search_engine.h"
#include "server/query_service.h"
#include "storage/buffer_manager.h"
#include "storage/fault_injection.h"
#include "storage/file.h"

namespace x100ir::server {
namespace {

std::string TempPath(const char* name) {
  const auto* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string tag =
      info != nullptr
          ? std::string(info->test_suite_name()) + "_" + info->name()
          : std::string("global");
  return std::string(::testing::TempDir()) + "/x100ir_server_" + tag + "_" +
         name;
}

std::string FreshDir(const char* name) {
  const std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  return dir;
}

ir::CorpusOptions SmallCorpus() {
  ir::CorpusOptions opts;
  opts.num_docs = 1200;
  opts.vocab_size = 1600;
  opts.doclen_mu = 3.2;
  opts.doclen_sigma = 0.5;
  opts.num_topics = 8;
  opts.terms_per_topic = 5;
  opts.relevant_docs_per_topic = 40;
  opts.topical_mass = 0.35;
  opts.topic_rank_min = 20;
  opts.topic_rank_max = 300;
  opts.seed = 2007;
  return opts;
}

// One request per (query, run) pair over a mixed set of run types. The
// storage runs are only legal against a disk-backed database; in-memory
// tests restrict to the resident plans.
std::vector<QueryRequest> MixedRequests(const core::Database& db,
                                        uint32_t num_queries,
                                        bool include_storage_runs = true) {
  ir::QueryGenOptions qopts;
  qopts.num_efficiency_queries = num_queries;
  ir::QueryGenerator gen(db.corpus(), qopts);
  std::vector<ir::RunType> runs = {ir::RunType::kBoolAnd,
                                   ir::RunType::kBoolOr, ir::RunType::kBm25};
  if (include_storage_runs) {
    runs.push_back(ir::RunType::kBm25TC);
    runs.push_back(ir::RunType::kBm25TCMQ8);
  }
  std::vector<QueryRequest> reqs;
  uint32_t i = 0;
  for (const auto& q : gen.EfficiencyQueries()) {
    QueryRequest r;
    r.query = q;
    r.run = runs[i++ % runs.size()];
    reqs.push_back(r);
  }
  return reqs;
}

// ---------------------------------------------------------------------------
// Tentpole: concurrent searches are bit-identical to their serial runs.
// (Also the common/rng.h satellite's regression test: nothing on the query
// path draws from shared mutable state, so scheduling cannot change a
// result.)
// ---------------------------------------------------------------------------

TEST(ServerTest, ConcurrentSearchesBitIdenticalToSerial) {
  core::DatabaseOptions dopts;
  dopts.corpus = SmallCorpus();
  dopts.dir = FreshDir("db");
  dopts.storage.page_bytes = 4096;
  dopts.storage.shards = 4;
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());

  const auto reqs = MixedRequests(db, 40);

  // Serial oracle, fresh cold pool.
  ASSERT_TRUE(db.index()->EvictAll().ok());
  std::vector<ir::SearchResult> oracle(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_TRUE(
        db.Search(reqs[i].query, reqs[i].run, reqs[i].opts, &oracle[i])
            .ok());
  }

  // Concurrent run through the service (cold pool again). 4 workers on any
  // host — the point is interleaving, not speedup.
  ASSERT_TRUE(db.index()->EvictAll().ok());
  QueryServiceOptions sopts;
  sopts.num_threads = 4;
  sopts.max_pending = static_cast<uint32_t>(reqs.size());
  QueryService service;
  ASSERT_TRUE(service.Start(&db, sopts).ok());
  std::vector<QueryResponse> got(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_TRUE(service
                    .Submit(reqs[i],
                            [&got, i](QueryResponse r) {
                              got[i] = std::move(r);
                            })
                    .ok());
  }
  service.Drain();
  service.Stop();

  for (size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_TRUE(got[i].status.ok()) << got[i].status.ToString();
    EXPECT_EQ(got[i].result.docids, oracle[i].docids) << "request " << i;
    EXPECT_EQ(got[i].result.scores, oracle[i].scores) << "request " << i;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.ok, reqs.size());
  EXPECT_EQ(stats.admitted, reqs.size());
  EXPECT_EQ(stats.shed_queue_full, 0u);
}

// ---------------------------------------------------------------------------
// Striped BufferManager under contention.
// ---------------------------------------------------------------------------

TEST(StripedPool, ConcurrentPinsKeepExactAggregateCounters) {
  const uint32_t kPage = 4096;
  std::vector<uint8_t> bytes(64 * kPage);
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<uint8_t>((i * 131 + 7) & 0xFF);
  }
  const std::string path = TempPath("striped");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), bytes.size(), 1, f), 1u);
  std::fclose(f);

  storage::File file;
  ASSERT_TRUE(storage::File::OpenReadOnly(path, &file).ok());
  storage::SimulatedDisk disk;
  // 4x the file: the budget splits per shard, and page->shard hashing is
  // not perfectly balanced, so give every shard room for any plausible
  // share of the 64 pages.
  storage::BufferManager bm(256ull * kPage, &disk, kPage, /*shards=*/4);
  ASSERT_EQ(bm.shards(), 4u);
  ASSERT_TRUE(bm.RegisterFile(1, &file).ok());

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 2000;
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> byte_mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kItersPerThread; ++i) {
        const uint64_t page = rng.NextBounded(64);
        const uint8_t* data = nullptr;
        uint32_t len = 0;
        if (!bm.Pin(1, page, &data, &len).ok()) {
          errors.fetch_add(1);
          continue;
        }
        // Validate the frame content while pinned — a torn or recycled
        // frame would show up as a pattern mismatch.
        const size_t off = page * kPage + (i % kPage);
        if (len != kPage ||
            data[i % kPage] != static_cast<uint8_t>((off * 131 + 7) & 0xFF)) {
          byte_mismatches.fetch_add(1);
        }
        bm.Unpin(1, page);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(byte_mismatches.load(), 0u);
  const storage::BufferStats stats = bm.stats();
  // Every pin was either a hit or a miss; every shard fits its share of
  // the file, so each page misses at most once and nothing was evicted.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kItersPerThread);
  EXPECT_LE(stats.misses, 64u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(bm.pinned_pages(), 0u);
  EXPECT_TRUE(bm.EvictAll().ok());
  EXPECT_EQ(bm.resident_pages(), 0u);
}

TEST(StripedPool, EvictAllRefusesWhilePinnedFromAnotherThread) {
  const uint32_t kPage = 4096;
  std::vector<uint8_t> bytes(8 * kPage, 0x5A);
  const std::string path = TempPath("pins");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), bytes.size(), 1, f), 1u);
  std::fclose(f);
  storage::File file;
  ASSERT_TRUE(storage::File::OpenReadOnly(path, &file).ok());
  storage::SimulatedDisk disk;
  storage::BufferManager bm(8ull * kPage, &disk, kPage, /*shards=*/2);
  ASSERT_TRUE(bm.RegisterFile(1, &file).ok());

  // A second thread pins a page and holds it until released.
  std::atomic<bool> pinned{false}, release{false};
  std::thread holder([&] {
    const uint8_t* data = nullptr;
    uint32_t len = 0;
    ASSERT_TRUE(bm.Pin(1, 3, &data, &len).ok());
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
    bm.Unpin(1, 3);
  });
  while (!pinned.load()) std::this_thread::yield();

  // The documented cross-thread contract: FailedPrecondition, not a crash,
  // not a torn pool.
  Status s = bm.EvictAll();
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(bm.pinned_pages(), 1u);

  release.store(true);
  holder.join();
  EXPECT_TRUE(bm.EvictAll().ok());
  EXPECT_EQ(bm.resident_pages(), 0u);
}

// ---------------------------------------------------------------------------
// Fault-injection battery.
// ---------------------------------------------------------------------------

// Oracle + faulted replay: with mixed transient/torn faults armed, every
// query either succeeds bit-identically to its fault-free result or fails
// with a classified Status — and after disarming, everything succeeds
// again (no poisoned page survived in the pool).
TEST(FaultInjection, EveryFaultRetriesToSuccessOrFailsClassified) {
  core::DatabaseOptions dopts;
  dopts.corpus = SmallCorpus();
  dopts.dir = FreshDir("db");
  dopts.storage.page_bytes = 4096;
  // Small pool: the working set does not fit, so pages keep being fetched
  // and the fault plan keeps getting consulted.
  dopts.storage.pool_bytes = 24 * 4096;
  dopts.storage.retry.budget = 3;
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());

  ir::QueryGenOptions qopts;
  qopts.num_efficiency_queries = 40;
  ir::QueryGenerator gen(db.corpus(), qopts);
  const auto queries = gen.EfficiencyQueries();
  const ir::RunType runs[] = {ir::RunType::kBm25T, ir::RunType::kBm25TC,
                              ir::RunType::kBm25TCM,
                              ir::RunType::kBm25TCMQ8};

  ir::SearchOptions sopts;
  std::vector<ir::SearchResult> oracle;
  for (size_t i = 0; i < queries.size(); ++i) {
    ir::SearchResult r;
    ASSERT_TRUE(
        db.Search(queries[i], runs[i % 4], sopts, &r).ok());
    oracle.push_back(std::move(r));
  }

  storage::FaultPlanOptions fopts;
  fopts.seed = 77;
  fopts.transient_rate = 0.06;
  fopts.torn_rate = 0.01;
  fopts.latency_spike_rate = 0.02;
  storage::FaultPlan plan(fopts);
  db.index()->buffer_manager()->set_fault_plan(&plan);

  uint64_t ok = 0, transient_failed = 0, torn_failed = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    // Cold pool per query: every page fetch consults the plan, so the
    // whole battery draws thousands of faults instead of warming up past
    // the injector.
    ASSERT_TRUE(db.index()->EvictAll().ok());
    ir::SearchResult r;
    Status s = db.Search(queries[i], runs[i % 4], sopts, &r);
    if (s.ok()) {
      ++ok;
      // OK under faults == bit-identical to the fault-free oracle.
      EXPECT_EQ(r.docids, oracle[i].docids) << "query " << i;
      EXPECT_EQ(r.scores, oracle[i].scores) << "query " << i;
    } else if (IsTransient(s)) {
      ++transient_failed;  // page-level retries exhausted: clean Unavailable
    } else {
      EXPECT_EQ(s.code(), StatusCode::kIOError) << s.ToString();
      ++torn_failed;
    }
  }
  // Every query landed in exactly one classified bucket, the plan actually
  // fired, and at least some queries rode out their faults.
  EXPECT_EQ(ok + transient_failed + torn_failed, queries.size());
  EXPECT_GT(plan.transient_injected(), 0u);
  EXPECT_GT(plan.torn_injected(), 0u);
  EXPECT_GT(plan.spikes_injected(), 0u);
  EXPECT_GT(ok, 0u);
  const storage::BufferStats faulted = db.buffer_stats();
  EXPECT_EQ(faulted.faults_transient, plan.transient_injected());
  EXPECT_EQ(faulted.faults_torn, plan.torn_injected());

  // Disarm: every query succeeds again and matches the oracle — no torn or
  // half-written frame was left behind in the pool. (No eviction first: if
  // a poisoned frame had entered the pool, this pass would serve it.)
  db.index()->buffer_manager()->set_fault_plan(nullptr);
  for (size_t i = 0; i < queries.size(); ++i) {
    ir::SearchResult r;
    ASSERT_TRUE(db.Search(queries[i], runs[i % 4], sopts, &r).ok());
    EXPECT_EQ(r.docids, oracle[i].docids) << "query " << i;
    EXPECT_EQ(r.scores, oracle[i].scores) << "query " << i;
  }
}

// Pure-transient plan + generous retry budget: the classified retry loop
// converges (fresh draw per attempt) and queries keep succeeding.
TEST(FaultInjection, TransientFaultsAreAbsorbedByRetries) {
  core::DatabaseOptions dopts;
  dopts.corpus = SmallCorpus();
  dopts.dir = FreshDir("db");
  dopts.storage.page_bytes = 4096;
  dopts.storage.pool_bytes = 24 * 4096;
  dopts.storage.retry.budget = 6;
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());

  storage::FaultPlanOptions fopts;
  fopts.seed = 5;
  fopts.transient_rate = 0.05;
  storage::FaultPlan plan(fopts);
  db.index()->buffer_manager()->set_fault_plan(&plan);

  const double io_before = db.disk()->io_seconds();
  ir::QueryGenOptions qopts;
  qopts.num_efficiency_queries = 30;
  ir::QueryGenerator gen(db.corpus(), qopts);
  ir::SearchOptions sopts;
  for (const auto& q : gen.EfficiencyQueries()) {
    ASSERT_TRUE(db.index()->EvictAll().ok());  // cold: keep the plan firing
    ir::SearchResult r;
    Status s = db.Search(q, ir::RunType::kBm25TC, sopts, &r);
    // With a 5% rate and 6 retries the per-fetch failure probability is
    // ~1.5e-8; any non-OK here means the retry loop is broken.
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  EXPECT_GT(plan.transient_injected(), 0u);
  // Backoff was charged to the simulated disk, not slept.
  EXPECT_GT(db.disk()->io_seconds(), io_before);
}

// ---------------------------------------------------------------------------
// Deadlines.
// ---------------------------------------------------------------------------

TEST(Deadlines, ExpiredDeadlineSurfacesBeforeAndMidFlight) {
  core::DatabaseOptions dopts;
  dopts.corpus = SmallCorpus();
  dopts.dir = FreshDir("db");
  dopts.storage.page_bytes = 4096;
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());
  ir::QueryGenOptions qopts;
  qopts.num_efficiency_queries = 4;
  ir::QueryGenerator gen(db.corpus(), qopts);
  const auto queries = gen.EfficiencyQueries();

  // Already-expired deadline: every run type reports DeadlineExceeded, and
  // no partial result leaks out as if it were complete.
  Deadline expired(0.0);
  ir::SearchOptions sopts;
  sopts.deadline = &expired;
  for (ir::RunType run :
       {ir::RunType::kBoolAnd, ir::RunType::kBm25, ir::RunType::kBm25TC,
        ir::RunType::kBm25TCMQ8}) {
    ir::SearchResult r;
    Status s = db.Search(queries[0], run, sopts, &r);
    EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded)
        << ir::RunTypeName(run) << ": " << s.ToString();
  }

  // Cancellation is the other half of the same checkpoints: a cancelled
  // query dies Unavailable at its next batch boundary.
  Deadline cancelled;
  cancelled.Cancel();
  sopts.deadline = &cancelled;
  ir::SearchResult r;
  Status s = db.Search(queries[0], ir::RunType::kBm25, sopts, &r);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();

  // No deadline: same query succeeds.
  sopts.deadline = nullptr;
  ASSERT_TRUE(db.Search(queries[0], ir::RunType::kBm25, sopts, &r).ok());
}

// ---------------------------------------------------------------------------
// Admission control and the degradation ladder.
// ---------------------------------------------------------------------------

TEST(ServerTest, OverloadShedsWithResourceExhausted) {
  core::DatabaseOptions dopts;
  dopts.corpus = SmallCorpus();
  core::Database db;  // in-memory is enough for admission mechanics
  ASSERT_TRUE(db.Open(dopts).ok());
  const auto reqs = MixedRequests(db, 64, /*include_storage_runs=*/false);

  QueryServiceOptions sopts;
  sopts.num_threads = 1;
  sopts.max_pending = 2;
  QueryService service;
  ASSERT_TRUE(service.Start(&db, sopts).ok());

  std::atomic<uint64_t> callbacks{0};
  // Plug the single worker: the first query's completion callback parks
  // until every later submission has been decided, so the pending count —
  // and therefore exactly which submissions shed — is deterministic
  // rather than a race between the submit loop and query execution.
  std::atomic<bool> release{false};
  ASSERT_TRUE(service
                  .Submit(reqs[0],
                          [&](QueryResponse) {
                            callbacks.fetch_add(1);
                            while (!release.load()) {
                              std::this_thread::yield();
                            }
                          })
                  .ok());
  uint64_t shed = 0;
  for (size_t i = 1; i < reqs.size(); ++i) {
    Status s = service.Submit(
        reqs[i], [&](QueryResponse) { callbacks.fetch_add(1); });
    if (!s.ok()) {
      // Shedding must be the explicit, classified kind.
      EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
      ++shed;
    }
  }
  release.store(true);
  service.Drain();
  const ServiceStats stats = service.stats();
  service.Stop();
  // The plugged query holds one of the 2 slots for the whole burst: one
  // more admission fits, everything else is shed.
  EXPECT_EQ(shed, reqs.size() - 2);
  EXPECT_EQ(stats.shed_queue_full, shed);
  EXPECT_EQ(stats.admitted + stats.shed_queue_full, reqs.size());
  EXPECT_EQ(callbacks.load(), stats.admitted);
  EXPECT_EQ(stats.ok, stats.admitted);
}

TEST(ServerTest, DegradationLadderEscalatesThenRecovers) {
  core::DatabaseOptions dopts;
  dopts.corpus = SmallCorpus();
  dopts.dir = FreshDir("db");
  dopts.storage.page_bytes = 4096;
  dopts.storage.pool_bytes = 24 * 4096;  // keep the disk (and faults) hot
  dopts.storage.retry.budget = 0;        // page faults fail immediately
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());
  const auto queries = MixedRequests(db, 16);

  QueryServiceOptions sopts;
  sopts.num_threads = 1;  // serial: the ladder walk is deterministic-ish
  sopts.max_pending = 4;
  sopts.retry_budget = 0;
  sopts.fault_window = 16;
  sopts.degrade_threshold = 0.25;
  sopts.refuse_threshold = 0.60;
  sopts.probe_interval = 2;
  QueryService service;
  ASSERT_TRUE(service.Start(&db, sopts).ok());

  // Stage 1: a disk that fails nearly every fetch. Storage queries fail
  // Unavailable, the window fills with faults, the ladder climbs.
  storage::FaultPlanOptions fopts;
  fopts.seed = 11;
  fopts.transient_rate = 0.95;
  storage::FaultPlan plan(fopts);
  db.index()->buffer_manager()->set_fault_plan(&plan);

  QueryRequest storage_req;
  storage_req.query = queries[0].query;
  storage_req.run = ir::RunType::kBm25TC;
  int spins = 0;
  while (service.mode() != ServiceMode::kRefusing && spins < 500) {
    (void)service.Execute(storage_req);
    ++spins;
  }
  ASSERT_EQ(service.mode(), ServiceMode::kRefusing)
      << "ladder never reached Refusing after " << spins << " queries";

  // While refusing, non-probe submissions are turned away Unavailable at
  // admission (never enqueued).
  uint64_t refused = 0;
  for (int i = 0; i < 8; ++i) {
    QueryResponse resp = service.Execute(storage_req);
    if (!resp.status.ok() &&
        resp.status.code() == StatusCode::kUnavailable && resp.retries == 0) {
      ++refused;
    }
  }
  EXPECT_GT(refused, 0u);

  // Stage 2: the disk heals. Probes (and then everything) succeed, the
  // window dilutes, and the ladder walks back to Normal. Degraded probes
  // must have executed against the cheap materialized column.
  db.index()->buffer_manager()->set_fault_plan(nullptr);
  bool saw_degraded_remap = false;
  spins = 0;
  while (service.mode() != ServiceMode::kNormal && spins < 2000) {
    QueryResponse resp = service.Execute(storage_req);
    if (resp.status.ok() && resp.degraded) {
      EXPECT_EQ(resp.executed_run, ir::RunType::kBm25TCMQ8);
      saw_degraded_remap = true;
    }
    ++spins;
  }
  EXPECT_EQ(service.mode(), ServiceMode::kNormal)
      << "ladder never recovered after " << spins << " healthy queries";
  EXPECT_TRUE(saw_degraded_remap);

  const ServiceStats stats = service.stats();
  service.Stop();
  EXPECT_GT(stats.probes_admitted, 0u);
  EXPECT_GE(stats.mode_transitions, 2u);  // up to Refusing and back down
  EXPECT_GT(stats.refused_unavailable, 0u);
  EXPECT_GT(stats.degraded_queries, 0u);
}

// ---------------------------------------------------------------------------
// Scaled-down fault soak: the bench_concurrency invariant, in-tree. Every
// query ends in one of the four contract outcomes; OK results are
// bit-identical to the fault-free serial oracle.
// ---------------------------------------------------------------------------

TEST(ServerTest, FaultSoakEveryOutcomeClassifiedAndOkBitIdentical) {
  core::DatabaseOptions dopts;
  dopts.corpus = SmallCorpus();
  dopts.dir = FreshDir("db");
  // 1 KB pages and a 32-page pool: well under the set of pages this
  // workload touches, so the pool keeps cycling and the plan keeps firing
  // (~45 misses per pass over the query set, measured). Queries pin one
  // page at a time, so 4 workers can never exhaust an 8-page shard budget.
  dopts.storage.page_bytes = 1024;
  dopts.storage.pool_bytes = 32 * 1024;
  dopts.storage.shards = 4;
  dopts.storage.retry.budget = 3;
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());

  ir::QueryGenOptions qopts;
  qopts.num_efficiency_queries = 25;
  ir::QueryGenerator gen(db.corpus(), qopts);
  const auto queries = gen.EfficiencyQueries();

  // Fault-free serial oracle (kBm25TCMQ8: the degraded remap is the
  // identity for it, so OK results stay comparable whatever the ladder
  // does mid-soak).
  ir::SearchOptions plain;
  std::vector<ir::SearchResult> oracle(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(
        db.Search(queries[i], ir::RunType::kBm25TCMQ8, plain, &oracle[i])
            .ok());
  }

  storage::FaultPlanOptions fopts;
  fopts.seed = 123;
  fopts.transient_rate = 0.05;
  fopts.latency_spike_rate = 0.01;
  storage::FaultPlan plan(fopts);
  db.index()->buffer_manager()->set_fault_plan(&plan);

  QueryServiceOptions sopts;
  sopts.num_threads = 4;
  sopts.max_pending = 32;
  sopts.retry_budget = 1;
  sopts.retry_backoff_seconds = 1e-4;
  QueryService service;
  ASSERT_TRUE(service.Start(&db, sopts).ok());

  // Submit with backpressure: a shed is counted and the submission
  // retried, so all kSoak queries eventually execute — the soak exercises
  // the full path, while shedding itself still gets covered.
  constexpr int kSoak = 1000;
  std::atomic<uint64_t> ok{0}, deadline{0}, unavailable{0}, bad_status{0},
      mismatches{0};
  uint64_t shed_attempts = 0;
  for (int i = 0; i < kSoak; ++i) {
    const size_t qi = static_cast<size_t>(i) % queries.size();
    QueryRequest req;
    req.query = queries[qi];
    req.run = ir::RunType::kBm25TCMQ8;
    for (;;) {
      Status admitted = service.Submit(req, [&, qi](QueryResponse resp) {
        switch (resp.status.code()) {
          case StatusCode::kOk:
            ok.fetch_add(1);
            if (resp.result.docids != oracle[qi].docids ||
                resp.result.scores != oracle[qi].scores) {
              mismatches.fetch_add(1);
            }
            break;
          case StatusCode::kDeadlineExceeded:
            deadline.fetch_add(1);
            break;
          case StatusCode::kUnavailable:
            unavailable.fetch_add(1);
            break;
          default:
            bad_status.fetch_add(1);
            break;
        }
      });
      if (admitted.ok()) break;
      if (admitted.code() == StatusCode::kResourceExhausted) {
        ++shed_attempts;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
      if (admitted.code() == StatusCode::kUnavailable) {
        unavailable.fetch_add(1);  // ladder refusal counts as an outcome
        break;
      }
      bad_status.fetch_add(1);
      break;
    }
  }
  service.Drain();
  const ServiceStats stats = service.stats();
  service.Stop();

  // The contract: zero crashes (we're here), zero unclassified outcomes,
  // zero OK results that differ from the fault-free oracle.
  EXPECT_EQ(bad_status.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(ok.load() + deadline.load() + unavailable.load(),
            static_cast<uint64_t>(kSoak));
  EXPECT_GT(ok.load(), static_cast<uint64_t>(kSoak) / 2);
  EXPECT_GT(plan.transient_injected(), 0u);
  EXPECT_EQ(stats.shed_queue_full, shed_attempts);
  EXPECT_EQ(stats.failed, 0u);  // no torn faults configured, none reported
}

// Stop() with work still queued: every admitted query still gets exactly
// one callback, and none of them hangs the shutdown.
TEST(ServerTest, StopCancelsQueuedWorkCleanly) {
  core::DatabaseOptions dopts;
  dopts.corpus = SmallCorpus();
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());
  const auto reqs = MixedRequests(db, 32, /*include_storage_runs=*/false);

  QueryServiceOptions sopts;
  sopts.num_threads = 1;
  sopts.max_pending = 64;
  QueryService service;
  ASSERT_TRUE(service.Start(&db, sopts).ok());
  std::atomic<uint64_t> callbacks{0}, weird{0};
  uint64_t admitted = 0;
  for (const auto& req : reqs) {
    if (service
            .Submit(req,
                    [&](QueryResponse resp) {
                      // Completed or cancelled — nothing else.
                      if (!resp.status.ok() &&
                          resp.status.code() != StatusCode::kUnavailable) {
                        weird.fetch_add(1);
                      }
                      callbacks.fetch_add(1);
                    })
            .ok()) {
      ++admitted;
    }
  }
  service.Stop();  // cancels in-flight deadlines, drains, joins
  EXPECT_EQ(callbacks.load(), admitted);
  EXPECT_EQ(weird.load(), 0u);
  EXPECT_FALSE(service.running());
  // Submit after Stop is a clean refusal, not UB.
  Status s = service.Submit(reqs[0], [](QueryResponse) {});
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

// WAL durability counters (DESIGN.md §13) flow from the database through
// ServiceStats, so an operator watching the service sees the write path's
// append/fsync amortization without reaching into the storage layer.
TEST(ServerTest, StatsSurfaceWalCounters) {
  core::DatabaseOptions dopts;
  dopts.dir = FreshDir("wal_stats");
  dopts.corpus = SmallCorpus();
  dopts.storage.wal.enabled = true;
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());
  ASSERT_TRUE(db.AddDocument({1, 2, 2, 7}, nullptr).ok());
  ASSERT_TRUE(db.AddDocument({3, 5}, nullptr).ok());

  QueryService service;
  ASSERT_TRUE(service.Start(&db, QueryServiceOptions{}).ok());
  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.wal_appends, 2u);     // the two acknowledged adds
  EXPECT_GE(stats.wal_fsyncs, 1u);      // at least one covering fsync
  EXPECT_GE(stats.wal_group_commit_batch_max, 1u);
  service.Stop();

  // An in-memory database has no WAL; the mirror reads zero, not garbage.
  core::Database mem_db;
  core::DatabaseOptions mem_opts;
  mem_opts.corpus = SmallCorpus();
  ASSERT_TRUE(mem_db.Open(mem_opts).ok());
  QueryService mem_service;
  ASSERT_TRUE(mem_service.Start(&mem_db, QueryServiceOptions{}).ok());
  EXPECT_EQ(mem_service.stats().wal_appends, 0u);
  EXPECT_EQ(mem_service.stats().wal_fsyncs, 0u);
  mem_service.Stop();
}

// ---------------------------------------------------------------------------
// Result cache (DESIGN.md §10): epoch-tagged, LRU-bounded, never stale.
// ---------------------------------------------------------------------------

TEST(ResultCache, HitServesIdenticalResultWithoutAdmission) {
  core::DatabaseOptions dopts;
  dopts.corpus = SmallCorpus();
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());

  QueryServiceOptions sopts;
  sopts.num_threads = 2;
  sopts.result_cache_entries = 8;
  QueryService service;
  ASSERT_TRUE(service.Start(&db, sopts).ok());

  QueryRequest req;
  req.query = MixedRequests(db, 1, false)[0].query;
  req.run = ir::RunType::kBm25;
  const QueryResponse first = service.Execute(req);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  const QueryResponse second = service.Execute(req);
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.result.docids, first.result.docids);
  EXPECT_EQ(second.result.scores, first.result.scores);
  EXPECT_EQ(second.result.epoch, first.result.epoch);
  EXPECT_EQ(second.executed_run, req.run);

  // The key normalizes the term set: order and duplicates don't miss.
  QueryRequest permuted = req;
  std::reverse(permuted.query.terms.begin(), permuted.query.terms.end());
  permuted.query.terms.push_back(req.query.terms[0]);
  const QueryResponse third = service.Execute(permuted);
  ASSERT_TRUE(third.status.ok());
  EXPECT_EQ(third.result.docids, first.result.docids);

  // A different k is a different key — it must miss (the cache_misses
  // count below is the proof), never be served from the k=20 slot.
  QueryRequest other_k = req;
  other_k.opts.k = req.opts.k + 5;
  const QueryResponse fourth = service.Execute(other_k);
  ASSERT_TRUE(fourth.status.ok());

  service.Drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_misses, 2u);
  // Hits are served at submission: only the misses were admitted, and the
  // accounting invariant holds.
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.submitted, stats.cache_hits + stats.admitted +
                                 stats.shed_queue_full +
                                 stats.refused_unavailable);
  service.Stop();
}

TEST(ResultCache, LruEvictsAtCapacity) {
  core::DatabaseOptions dopts;
  dopts.corpus = SmallCorpus();
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());

  QueryServiceOptions sopts;
  sopts.num_threads = 1;
  sopts.result_cache_entries = 2;
  QueryService service;
  ASSERT_TRUE(service.Start(&db, sopts).ok());

  const auto reqs = MixedRequests(db, 3, /*include_storage_runs=*/false);
  for (const auto& r : reqs) {
    ASSERT_TRUE(service.Execute(r).status.ok());
  }
  // 3 distinct entries through a 2-slot cache: the coldest was evicted,
  // so replaying the batch in order misses every time (classic LRU churn).
  for (const auto& r : reqs) {
    ASSERT_TRUE(service.Execute(r).status.ok());
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_misses, 6u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_GE(stats.cache_evictions, 4u);
  service.Stop();
}

TEST(ResultCache, LiveUpdatesInvalidateWholeCache) {
  core::DatabaseOptions dopts;
  dopts.corpus = SmallCorpus();
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());

  QueryServiceOptions sopts;
  sopts.num_threads = 2;
  sopts.result_cache_entries = 8;
  QueryService service;
  ASSERT_TRUE(service.Start(&db, sopts).ok());

  // BoolAND with an uncapped k: the added doc contains every query term,
  // so its presence/absence in the result set is deterministic.
  QueryRequest req;
  req.query = MixedRequests(db, 1, false)[0].query;
  req.run = ir::RunType::kBoolAnd;
  req.opts.k = 2000;

  // Each mutation class bumps the epoch; the next lookup must drop the
  // whole cache rather than serve a pre-mutation answer.
  uint64_t expect_invalidations = 0;
  ASSERT_TRUE(service.Execute(req).status.ok());  // seed (miss)

  int32_t added = -1;
  ASSERT_TRUE(db.AddDocument(req.query.terms, &added).ok());
  QueryResponse resp = service.Execute(req);
  ASSERT_TRUE(resp.status.ok());
  ++expect_invalidations;
  // The fresh result reflects the add (the new doc contains every query
  // term, so it matches) — proof the hit path never outlived the epoch.
  EXPECT_NE(std::find(resp.result.docids.begin(), resp.result.docids.end(),
                      added),
            resp.result.docids.end());

  ASSERT_TRUE(db.DeleteDocument(added).ok());
  resp = service.Execute(req);
  ASSERT_TRUE(resp.status.ok());
  ++expect_invalidations;
  EXPECT_EQ(std::find(resp.result.docids.begin(), resp.result.docids.end(),
                      added),
            resp.result.docids.end());

  ASSERT_TRUE(db.Merge().ok());
  resp = service.Execute(req);
  ASSERT_TRUE(resp.status.ok());
  ++expect_invalidations;

  // Quiescent again: the re-inserted entry serves.
  resp = service.Execute(req);
  ASSERT_TRUE(resp.status.ok());
  EXPECT_EQ(resp.result.epoch, db.epoch());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_invalidations, expect_invalidations);
  EXPECT_EQ(stats.cache_misses, 4u);
  EXPECT_EQ(stats.cache_hits, 1u);
  service.Stop();
}

}  // namespace
}  // namespace x100ir::server
