// Round-trip and range-decode tests for the PFOR / PFOR-DELTA / PDICT block
// codecs across bit widths, exception rates, and awkward block lengths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "compress/block_layout.h"
#include "compress/codec.h"
#include "compress/pdict.h"
#include "compress/skip_cursor.h"
#include "compress/unpack.h"
#include "compress/pfor.h"
#include "compress/pfor_delta.h"

namespace x100ir::compress {
namespace {

std::vector<int32_t> MakeData(uint32_t n, int bits, double exc_rate,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> v(n);
  const uint32_t max_code = bits >= 31 ? 0x7FFFFFFFu : (1u << bits) - 1;
  for (auto& x : v) {
    if (rng.NextBernoulli(exc_rate)) {
      x = static_cast<int32_t>(max_code) +
          1 + static_cast<int32_t>(rng.NextBounded(1 << 20));
    } else {
      x = static_cast<int32_t>(rng.NextBounded(max_code));
    }
  }
  return v;
}

std::vector<int32_t> MakeSorted(uint32_t n, uint64_t seed,
                                uint32_t max_gap = 30) {
  Rng rng(seed);
  std::vector<int32_t> v(n);
  int32_t cur = 0;
  for (auto& x : v) {
    cur += 1 + static_cast<int32_t>(rng.NextBounded(max_gap));
    x = cur;
  }
  return v;
}

std::vector<int32_t> RoundTrip(const std::vector<int32_t>& values,
                               const EncodeOptions& opts,
                               Status (*encode)(const int32_t*, uint32_t,
                                                const EncodeOptions&,
                                                std::vector<uint8_t>*,
                                                BlockStats*),
                               BlockStats* stats = nullptr) {
  std::vector<uint8_t> block;
  Status s = encode(values.data(), static_cast<uint32_t>(values.size()), opts,
                    &block, stats);
  EXPECT_TRUE(s.ok()) << s.ToString();
  BlockDecoder dec;
  s = dec.Init(block.data(), block.size());
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(dec.n(), values.size());
  std::vector<int32_t> out(values.size());
  dec.DecodeAll(out.data());
  return out;
}

TEST(Pfor, RoundTripAllBitWidths) {
  for (int bits = 1; bits <= 30; ++bits) {
    auto values = MakeData(5000, bits, 0.01, 100 + bits);
    EncodeOptions opts;
    opts.bit_width = bits;
    auto out = RoundTrip(values, opts, &PforEncode);
    ASSERT_EQ(out, values) << "bit width " << bits;
  }
}

TEST(Pfor, RoundTripExceptionRates) {
  for (double rate : {0.0, 0.01, 0.5, 1.0}) {
    for (int bits : {4, 8, 16}) {
      auto values = MakeData(4096, bits, rate, 7);
      EncodeOptions opts;
      opts.bit_width = bits;
      // Pin base = 0 so the requested exception rate is the actual one
      // (otherwise FOR re-centers on min(values) and absorbs outliers).
      opts.force_base = true;
      BlockStats stats;
      auto out = RoundTrip(values, opts, &PforEncode, &stats);
      ASSERT_EQ(out, values) << "rate " << rate << " bits " << bits;
      if (rate == 0.0) {
        EXPECT_EQ(stats.n_compulsory_exceptions, 0u);
        EXPECT_EQ(stats.n_dense_windows, 0u);
      }
      if (rate == 1.0) {
        // Every window is all-exceptions, so the encoder stores them raw
        // (dense) — the block must stay near 4 bytes/value, not the ~12 a
        // fully patched window would cost.
        EXPECT_EQ(stats.n_dense_windows, 4096u / kEntryPointStride);
        EXPECT_LT(stats.BitsPerValue(), 36.0);
      }
    }
  }
}

TEST(Pfor, EmptyBlock) {
  std::vector<int32_t> values;
  EncodeOptions opts;
  opts.bit_width = 8;
  auto out = RoundTrip(values, opts, &PforEncode);
  EXPECT_TRUE(out.empty());
}

TEST(Pfor, SingleValue) {
  for (int32_t v : {0, 1, 255, 1 << 20, -5}) {
    std::vector<int32_t> values = {v};
    EncodeOptions opts;
    opts.bit_width = 8;
    opts.force_base = true;
    auto out = RoundTrip(values, opts, &PforEncode);
    ASSERT_EQ(out, values) << "value " << v;
  }
}

TEST(Pfor, NonMultipleOf128Lengths) {
  for (uint32_t n : {1u, 127u, 128u, 129u, 1000u, 4095u}) {
    auto values = MakeData(n, 8, 0.1, n);
    EncodeOptions opts;
    opts.bit_width = 8;
    auto out = RoundTrip(values, opts, &PforEncode);
    ASSERT_EQ(out, values) << "n = " << n;
  }
}

TEST(Pfor, AutoBitWidthSelection) {
  // Mostly 6-bit values with rare large outliers: auto selection should
  // land near 6 bits, not 30.
  auto values = MakeData(1 << 16, 6, 0.005, 11);
  EncodeOptions opts;
  opts.bit_width = 0;
  BlockStats stats;
  auto out = RoundTrip(values, opts, &PforEncode, &stats);
  ASSERT_EQ(out, values);
  EXPECT_GE(stats.bit_width, 4);
  EXPECT_LE(stats.bit_width, 10);
  EXPECT_LT(stats.BitsPerValue(), 12.0);
}

TEST(Pfor, FrameOfReferenceBase) {
  // Values clustered near 1e6: FOR base should make them 4-bit encodable.
  Rng rng(13);
  std::vector<int32_t> values(2000);
  for (auto& v : values) {
    v = 1000000 + static_cast<int32_t>(rng.NextBounded(14));
  }
  EncodeOptions opts;
  opts.bit_width = 4;
  BlockStats stats;
  auto out = RoundTrip(values, opts, &PforEncode, &stats);
  ASSERT_EQ(out, values);
  EXPECT_EQ(stats.n_exceptions, 0u);
}

TEST(Pfor, NegativeValuesBecomeExceptionsWithForcedBase) {
  std::vector<int32_t> values = {5, -1, 200, -1000000, 17, 3};
  EncodeOptions opts;
  opts.bit_width = 8;
  opts.force_base = true;
  BlockStats stats;
  auto out = RoundTrip(values, opts, &PforEncode, &stats);
  ASSERT_EQ(out, values);
  EXPECT_GE(stats.n_exceptions, 2u);
}

TEST(Pfor, NaiveLayoutRoundTrip) {
  for (double rate : {0.0, 0.01, 0.5, 1.0}) {
    auto values = MakeData(4096, 8, rate, 23);
    EncodeOptions opts;
    opts.bit_width = 8;
    opts.naive_layout = true;
    opts.force_base = true;
    std::vector<uint8_t> block;
    ASSERT_TRUE(PforEncode(values.data(), 4096, opts, &block, nullptr).ok());
    BlockDecoder dec;
    ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());
    EXPECT_TRUE(dec.naive_layout());
    std::vector<int32_t> out(values.size());
    dec.DecodeNaive(out.data());
    ASSERT_EQ(out, values) << "rate " << rate;
    // DecodeAll must agree on naive blocks.
    std::vector<int32_t> out2(values.size());
    dec.DecodeAll(out2.data());
    ASSERT_EQ(out2, values);
  }
}

TEST(Pfor, NaiveSentinelValueIsException) {
  // The all-ones codeword is reserved in the naive layout, so a value equal
  // to it must round-trip through the exception section.
  std::vector<int32_t> values = {0, 255, 254, 255, 1};
  EncodeOptions opts;
  opts.bit_width = 8;
  opts.naive_layout = true;
  opts.force_base = true;
  BlockStats stats;
  auto out = RoundTrip(values, opts, &PforEncode, &stats);
  ASSERT_EQ(out, values);
  EXPECT_EQ(stats.n_exceptions, 2u);
}

TEST(Pfor, CompulsoryExceptionsAtSmallWidths) {
  // b=2: links reach at most 4 positions, so sparse exceptions force
  // compulsory intermediates — and the block must still round-trip.
  Rng rng(31);
  std::vector<int32_t> values(2048);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = i % 97 == 0 ? 1000 : static_cast<int32_t>(rng.NextBounded(4));
  }
  EncodeOptions opts;
  opts.bit_width = 2;
  opts.force_base = true;
  BlockStats stats;
  auto out = RoundTrip(values, opts, &PforEncode, &stats);
  ASSERT_EQ(out, values);
  EXPECT_GT(stats.n_compulsory_exceptions, 0u);
}

TEST(Pfor, RangeDecodeMatchesDecodeAll) {
  auto values = MakeData(10000, 8, 0.05, 41);
  EncodeOptions opts;
  opts.bit_width = 8;
  std::vector<uint8_t> block;
  ASSERT_TRUE(PforEncode(values.data(), 10000, opts, &block, nullptr).ok());
  BlockDecoder dec;
  ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    const auto pos = static_cast<uint32_t>(rng.NextBounded(10000));
    const auto len =
        static_cast<uint32_t>(1 + rng.NextBounded(10000 - pos));
    std::vector<int32_t> out(len, -12345);
    dec.Decode(pos, len, out.data());
    for (uint32_t i = 0; i < len; ++i) {
      ASSERT_EQ(out[i], values[pos + i])
          << "pos " << pos << " len " << len << " i " << i;
    }
  }
}

TEST(Pfor, RangeDecodeClampsOutOfRange) {
  auto values = MakeData(300, 8, 0.0, 47);
  EncodeOptions opts;
  opts.bit_width = 8;
  std::vector<uint8_t> block;
  ASSERT_TRUE(PforEncode(values.data(), 300, opts, &block, nullptr).ok());
  BlockDecoder dec;
  ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());
  std::vector<int32_t> out(300, -1);
  dec.Decode(290, 100, out.data());  // only 10 values exist
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], values[290 + i]);
  EXPECT_EQ(out[10], -1);
  dec.Decode(5000, 10, out.data());  // fully out of range: no write
  EXPECT_EQ(out[10], -1);
}

TEST(Pfor, ExceptionMaskMatchesData) {
  for (bool naive : {false, true}) {
    EncodeOptions opts;
    opts.bit_width = 8;
    opts.naive_layout = naive;
    opts.force_base = true;
    // 10% exceptions: low enough that no window trips the dense escape
    // (dense windows store no exceptions to flag).
    auto values = MakeData(1000, 8, 0.1, 53);
    std::vector<uint8_t> block;
    ASSERT_TRUE(PforEncode(values.data(), 1000, opts, &block, nullptr).ok());
    BlockDecoder dec;
    ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());
    std::vector<bool> mask;
    dec.ExceptionMask(&mask);
    ASSERT_EQ(mask.size(), values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i] > 255) {
        // Natural exceptions must always be flagged (the patched layout may
        // additionally flag compulsory ones, but not at b=8).
        EXPECT_TRUE(mask[i]) << (naive ? "naive" : "patched") << " i=" << i;
      } else if (!naive) {
        EXPECT_FALSE(mask[i]) << "patched i=" << i;
      }
    }
  }
}

TEST(Pfor, InvalidArgumentsRejected) {
  std::vector<int32_t> values = {1, 2, 3};
  std::vector<uint8_t> block;
  EncodeOptions opts;
  opts.bit_width = 31;  // > kMaxBitWidth
  EXPECT_FALSE(PforEncode(values.data(), 3, opts, &block, nullptr).ok());
  opts.bit_width = -3;
  EXPECT_FALSE(PforEncode(values.data(), 3, opts, &block, nullptr).ok());
  opts.bit_width = 8;
  ASSERT_TRUE(PforEncode(values.data(), 3, opts, &block, nullptr).ok());
  BlockDecoder dec;
  EXPECT_FALSE(dec.Init(block.data(), 4).ok());  // truncated
  block[0] ^= 0xFF;                              // corrupt magic
  EXPECT_FALSE(dec.Init(block.data(), block.size()).ok());
}

TEST(Codec, InitRejectsCraftedHeaders) {
  // A header whose value count implies far more entry points than the
  // block can hold must not pass Init (it would read out of bounds).
  std::vector<int32_t> values(300, 7);
  std::vector<uint8_t> block;
  EncodeOptions opts;
  opts.bit_width = 8;
  ASSERT_TRUE(PforEncode(values.data(), 300, opts, &block, nullptr).ok());
  auto corrupt = [&](size_t offset, uint32_t v) {
    std::vector<uint8_t> bad = block;
    std::memcpy(bad.data() + offset, &v, 4);
    BlockDecoder dec;
    return dec.Init(bad.data(), bad.size());
  };
  EXPECT_FALSE(corrupt(8, 0x40000000u).ok());   // n blown up
  EXPECT_FALSE(corrupt(32, 44u).ok());          // code_offset into entries
  EXPECT_FALSE(corrupt(16, 0xFFFFFFu).ok());    // n_exceptions blown up
  // Second entry point's payload_off bent to alias the first window:
  // DecodeAll's batched unpack assumes canonical back-to-back payloads.
  EXPECT_FALSE(corrupt(40 + 16 + 12, 0u).ok());
  EXPECT_FALSE(corrupt(36, 41u).ok());  // exc_offset misaligned
}

TEST(Codec, ValidateCatchesCorruptExceptionRecords) {
  auto values = MakeData(1000, 8, 0.1, 131);
  std::vector<uint8_t> block;
  EncodeOptions opts;
  opts.bit_width = 8;
  opts.force_base = true;
  BlockStats stats;
  ASSERT_TRUE(PforEncode(values.data(), 1000, opts, &block, &stats).ok());
  ASSERT_GT(stats.n_exceptions, 0u);
  BlockDecoder dec;
  ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());
  EXPECT_TRUE(dec.Validate().ok());
  // Smash the first record's position to point far outside the block's
  // value range: Validate must flag what DecodeAll would have turned into
  // an out-of-bounds write.
  const uint32_t huge = 1u << 30;
  std::memcpy(block.data() + block.size() - 8 /*pad*/ -
                  8ull * stats.n_exceptions + 4,
              &huge, 4);
  ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());
  EXPECT_FALSE(dec.Validate().ok());
}

TEST(Codec, ValidateCatchesForgedNaiveSentinels) {
  // A naive block whose codewords claim more exceptions than there are
  // records would read past the exceptions section during decode.
  std::vector<int32_t> values(256, 3);
  std::vector<uint8_t> block;
  EncodeOptions opts;
  opts.bit_width = 8;
  opts.naive_layout = true;
  opts.force_base = true;
  ASSERT_TRUE(PforEncode(values.data(), 256, opts, &block, nullptr).ok());
  BlockDecoder dec;
  ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());
  EXPECT_TRUE(dec.Validate().ok());
  // Flip one codeword to the all-ones sentinel without adding a record.
  const size_t code_offset = 40 + 2 * 16;  // header + 2 entry points
  block[code_offset] = 0xFF;
  ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());
  EXPECT_FALSE(dec.Validate().ok());
}

TEST(Pdict, RejectsOutOfRangeBitWidth) {
  std::vector<int32_t> values = {1, 2, 3};
  std::vector<uint8_t> block;
  EncodeOptions opts;
  opts.bit_width = -3;
  EXPECT_FALSE(PdictEncode(values.data(), 3, opts, &block, nullptr).ok());
  opts.bit_width = 21;  // > kMaxDictBitWidth
  EXPECT_FALSE(PdictEncode(values.data(), 3, opts, &block, nullptr).ok());
}

TEST(PforDelta, RoundTripSortedDocids) {
  for (int bits : {0, 4, 8, 16}) {
    auto docids = MakeSorted(20000, 61 + bits);
    EncodeOptions opts;
    opts.bit_width = bits;
    auto out = RoundTrip(docids, opts, &PforDeltaEncode);
    ASSERT_EQ(out, docids) << "bits " << bits;
  }
}

TEST(PforDelta, RoundTripAllBitWidths) {
  for (int bits = 1; bits <= 30; ++bits) {
    auto docids = MakeSorted(3000, 200 + bits, /*max_gap=*/1u << (bits / 2));
    EncodeOptions opts;
    opts.bit_width = bits;
    auto out = RoundTrip(docids, opts, &PforDeltaEncode);
    ASSERT_EQ(out, docids) << "bits " << bits;
  }
}

TEST(PforDelta, AwkwardLengths) {
  for (uint32_t n : {0u, 1u, 127u, 129u, 777u}) {
    auto docids = MakeSorted(n, 71 + n);
    EncodeOptions opts;
    opts.bit_width = 8;
    auto out = RoundTrip(docids, opts, &PforDeltaEncode);
    ASSERT_EQ(out, docids) << "n = " << n;
  }
}

TEST(PforDelta, RangeDecodeFromMidBlock) {
  auto docids = MakeSorted(50000, 73);
  EncodeOptions opts;
  opts.bit_width = 8;
  std::vector<uint8_t> block;
  ASSERT_TRUE(
      PforDeltaEncode(docids.data(), 50000, opts, &block, nullptr).ok());
  BlockDecoder dec;
  ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());
  Rng rng(79);
  for (int trial = 0; trial < 100; ++trial) {
    const auto pos = static_cast<uint32_t>(rng.NextBounded(50000));
    const auto len =
        static_cast<uint32_t>(1 + rng.NextBounded(
                                      std::min<uint64_t>(2048, 50000 - pos)));
    std::vector<int32_t> out(len);
    dec.Decode(pos, len, out.data());
    for (uint32_t i = 0; i < len; ++i) {
      ASSERT_EQ(out[i], docids[pos + i]) << "pos " << pos << " len " << len;
    }
  }
}

TEST(PforDelta, LargeGapsBecomeExceptions) {
  // A few huge docid jumps among small gaps: deltas overflow b bits and
  // must be patched.
  auto docids = MakeSorted(5000, 83);
  for (size_t i = 500; i < docids.size(); i += 500) {
    for (size_t j = i; j < docids.size(); ++j) docids[j] += 1 << 22;
  }
  EncodeOptions opts;
  opts.bit_width = 8;
  BlockStats stats;
  auto out = RoundTrip(docids, opts, &PforDeltaEncode, &stats);
  ASSERT_EQ(out, docids);
  EXPECT_GE(stats.n_exceptions, 9u);
}

TEST(Pdict, RoundTripSmallDictionary) {
  Rng rng(89);
  std::vector<int32_t> values(10000);
  for (auto& v : values) {
    v = static_cast<int32_t>(rng.NextBounded(64)) * 9973;
  }
  EncodeOptions opts;
  BlockStats stats;
  auto out = RoundTrip(values, opts, &PdictEncode, &stats);
  ASSERT_EQ(out, values);
  EXPECT_EQ(stats.bit_width, 6);
  EXPECT_EQ(stats.n_exceptions, 0u);
}

TEST(Pdict, OverflowingDictionaryPatchesExceptions) {
  // 2-bit dictionary over values with 20 distinct codes: the 4 most
  // frequent values stay in the dictionary, the tail gets patched.
  Rng rng(97);
  std::vector<int32_t> values(8000);
  for (auto& v : values) {
    // Zipf-ish skew: favor small codes.
    uint32_t r = static_cast<uint32_t>(rng.NextBounded(100));
    v = static_cast<int32_t>(r < 80 ? r % 4 : r % 20) * 31 - 7;
  }
  EncodeOptions opts;
  opts.bit_width = 2;
  BlockStats stats;
  auto out = RoundTrip(values, opts, &PdictEncode, &stats);
  ASSERT_EQ(out, values);
  EXPECT_GT(stats.n_exceptions, 0u);
  EXPECT_LT(stats.n_exceptions, 4000u);  // the skewed head stays dictionary
}

TEST(Pdict, AwkwardLengthsAndRange) {
  Rng rng(101);
  std::vector<int32_t> values(1337);
  for (auto& v : values) {
    v = static_cast<int32_t>(rng.NextBounded(10)) - 5;
  }
  EncodeOptions opts;
  std::vector<uint8_t> block;
  ASSERT_TRUE(PdictEncode(values.data(), 1337, opts, &block, nullptr).ok());
  BlockDecoder dec;
  ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());
  std::vector<int32_t> all(values.size());
  dec.DecodeAll(all.data());
  ASSERT_EQ(all, values);
  std::vector<int32_t> window(100);
  dec.Decode(640, 100, window.data());
  for (int i = 0; i < 100; ++i) ASSERT_EQ(window[i], values[640 + i]);
}

TEST(Pdict, RejectsNaiveLayout) {
  std::vector<int32_t> values = {1, 2, 3};
  std::vector<uint8_t> block;
  EncodeOptions opts;
  opts.naive_layout = true;
  EXPECT_FALSE(PdictEncode(values.data(), 3, opts, &block, nullptr).ok());
}

TEST(Pfor, DenseWindowsNeverLoseToRaw) {
  // Sweep exception rates; compressed size must never exceed raw by more
  // than the fixed metadata (header + entry points), because high-exception
  // windows fall back to dense storage.
  for (double rate : {0.6, 0.8, 0.95, 1.0}) {
    auto values = MakeData(10000, 8, rate, 111);
    EncodeOptions opts;
    opts.bit_width = 8;
    opts.force_base = true;
    BlockStats stats;
    auto out = RoundTrip(values, opts, &PforEncode, &stats);
    ASSERT_EQ(out, values) << "rate " << rate;
    EXPECT_GT(stats.n_dense_windows, 0u) << "rate " << rate;
    const size_t raw = 4u * 10000;
    const size_t metadata =
        sizeof(uint32_t) * 10 + (10000 / kEntryPointStride + 1) * 16 + 64;
    EXPECT_LE(stats.compressed_bytes, raw + metadata) << "rate " << rate;
  }
}

TEST(Pfor, DenseWindowRangeDecode) {
  // Mixed dense/patched block: range decodes crossing dense windows must
  // still match DecodeAll.
  Rng rng(113);
  std::vector<int32_t> values(5000);
  for (size_t i = 0; i < values.size(); ++i) {
    // Alternate stretches of lightly-excepted 8-bit data (stays patched)
    // and exception-heavy data (goes dense).
    const bool heavy = (i / 512) % 2 == 1;
    values[i] = rng.NextBernoulli(heavy ? 0.9 : 0.05)
                    ? 100000 + static_cast<int32_t>(rng.NextBounded(1000))
                    : static_cast<int32_t>(rng.NextBounded(200));
  }
  EncodeOptions opts;
  opts.bit_width = 8;
  opts.force_base = true;
  std::vector<uint8_t> block;
  BlockStats stats;
  ASSERT_TRUE(PforEncode(values.data(), 5000, opts, &block, &stats).ok());
  EXPECT_GT(stats.n_dense_windows, 0u);
  EXPECT_GT(stats.n_exceptions, 0u);  // patched windows coexist
  BlockDecoder dec;
  ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());
  std::vector<int32_t> all(values.size());
  dec.DecodeAll(all.data());
  ASSERT_EQ(all, values);
  Rng trng(127);
  for (int trial = 0; trial < 50; ++trial) {
    const auto pos = static_cast<uint32_t>(trng.NextBounded(5000));
    const auto len = static_cast<uint32_t>(1 + trng.NextBounded(5000 - pos));
    std::vector<int32_t> window(len);
    dec.Decode(pos, len, window.data());
    for (uint32_t i = 0; i < len; ++i) {
      ASSERT_EQ(window[i], values[pos + i]) << "pos " << pos << " len " << len;
    }
  }
}

TEST(Codec, CompressionActuallyCompresses) {
  // 60k 8-bit-ish values, 1% exceptions: the block must be far below the
  // 4-bytes-per-value raw footprint (the §3.3 story).
  auto values = MakeData(1 << 16, 8, 0.01, 103);
  EncodeOptions opts;
  opts.bit_width = 8;
  BlockStats stats;
  std::vector<uint8_t> block;
  ASSERT_TRUE(PforEncode(values.data(), 1 << 16, opts, &block, &stats).ok());
  EXPECT_LT(stats.BitsPerValue(), 10.0);
  EXPECT_EQ(stats.compressed_bytes, block.size());
}

TEST(Codec, RangeDecodeHostileEdges) {
  // Hostile-argument regression tests for Decode(pos, len): len == 0,
  // pos == n exactly, pos far beyond n, and pos + len wrapping uint32.
  // None of these may write outside the decoded span.
  auto values = MakeData(300, 8, 0.05, 211);
  EncodeOptions opts;
  opts.bit_width = 8;
  std::vector<uint8_t> block;
  ASSERT_TRUE(PforEncode(values.data(), 300, opts, &block, nullptr).ok());
  BlockDecoder dec;
  ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());
  constexpr uint32_t kMax = std::numeric_limits<uint32_t>::max();

  std::vector<int32_t> out(301, -7);
  dec.Decode(0, 0, out.data());    // len == 0: no write
  dec.Decode(150, 0, out.data());  // len == 0 mid-block: no write
  dec.Decode(300, 1, out.data());  // pos == n exactly: no write
  dec.Decode(300, kMax, out.data());
  dec.Decode(kMax, kMax, out.data());  // pos and pos+len both out of range
  for (int32_t v : out) ASSERT_EQ(v, -7);

  // pos + len wraps uint32 (299 + kMax == 298 in 32-bit arithmetic): the
  // clamp must be computed in 64-bit, yielding exactly [299, 300).
  dec.Decode(299, kMax, out.data());
  EXPECT_EQ(out[0], values[299]);
  EXPECT_EQ(out[1], -7);

  // Wrap-around with a multi-window remainder: decodes [100, 300).
  std::fill(out.begin(), out.end(), -7);
  dec.Decode(100, kMax - 3, out.data());
  for (uint32_t i = 0; i < 200; ++i) ASSERT_EQ(out[i], values[100 + i]) << i;
  EXPECT_EQ(out[200], -7);

  // Empty block: every range is out of range.
  std::vector<uint8_t> empty_block;
  ASSERT_TRUE(PforEncode(nullptr, 0, opts, &empty_block, nullptr).ok());
  BlockDecoder empty_dec;
  ASSERT_TRUE(empty_dec.Init(empty_block.data(), empty_block.size()).ok());
  std::fill(out.begin(), out.end(), -7);
  empty_dec.Decode(0, 5, out.data());
  empty_dec.Decode(0, kMax, out.data());
  EXPECT_EQ(out[0], -7);
}

TEST(Codec, InitRejectsDeadDictSectionOnNonPdict) {
  // A crafted PFOR block can carry a bounds-consistent dictionary section
  // (payload offsets are relative to code_offset, so shifting the payload
  // right keeps every other check green). Before the fix Init accepted it
  // and silently ignored the section; fuzzed payloads must not be able to
  // smuggle unvalidated bytes, so Init now rejects dict_offset != 0 for
  // PFOR / PFOR-DELTA.
  std::vector<int32_t> values(200, 7);
  std::vector<uint8_t> block;
  EncodeOptions opts;
  opts.bit_width = 8;
  ASSERT_TRUE(PforEncode(values.data(), 200, opts, &block, nullptr).ok());
  BlockDecoder dec;
  ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());

  // Splice a zeroed (4 << b)-byte dictionary between the entry points and
  // the payload, then patch dict/code/exc offsets to keep the block
  // self-consistent.
  const uint32_t entries_end = 40 + 2 * 16;  // header + 2 entry points
  const uint32_t dict_bytes = 4u << 8;
  std::vector<uint8_t> bad(block.begin(), block.begin() + entries_end);
  bad.insert(bad.end(), dict_bytes, 0);
  bad.insert(bad.end(), block.begin() + entries_end, block.end());
  auto patch_u32 = [&](size_t offset, uint32_t delta_or_value, bool add) {
    uint32_t v;
    std::memcpy(&v, bad.data() + offset, 4);
    v = add ? v + delta_or_value : delta_or_value;
    std::memcpy(bad.data() + offset, &v, 4);
  };
  patch_u32(28, entries_end, /*add=*/false);  // dict_offset
  patch_u32(32, dict_bytes, /*add=*/true);    // code_offset
  patch_u32(36, dict_bytes, /*add=*/true);    // exc_offset
  BlockDecoder bad_dec;
  Status s = bad_dec.Init(bad.data(), bad.size());
  EXPECT_FALSE(s.ok());

  // Sanity: a genuine PDICT block (which must carry a dictionary) still
  // passes Init.
  std::vector<uint8_t> pdict_block;
  EncodeOptions pdict_opts;
  ASSERT_TRUE(
      PdictEncode(values.data(), 200, pdict_opts, &pdict_block, nullptr)
          .ok());
  BlockDecoder pdict_dec;
  EXPECT_TRUE(pdict_dec.Init(pdict_block.data(), pdict_block.size()).ok());
}

// Encoder round-trip at boundary shapes: n % 128 in {0, 1, 127} exercises
// the final-partial-window path, b in {1, 7, 8, 30} the byte-aligned and
// straddling codeword widths (30 leans hardest on the 8-byte
// unaligned-load pad), across all three schemes.
class BoundaryShapeTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, int, int>> {};

TEST_P(BoundaryShapeTest, RoundTripsAndRangeDecodes) {
  const uint32_t n = 384 + std::get<0>(GetParam());  // 384 / 385 / 511
  const int b = std::get<1>(GetParam());
  const int scheme = std::get<2>(GetParam());

  std::vector<int32_t> values;
  EncodeOptions opts;
  Status (*encode)(const int32_t*, uint32_t, const EncodeOptions&,
                   std::vector<uint8_t>*, BlockStats*) = nullptr;
  switch (scheme) {
    case 0:  // PFOR
      values = MakeData(n, b, 0.03, 1000 + n + b);
      opts.bit_width = b;
      opts.force_base = true;
      encode = &PforEncode;
      break;
    case 1: {  // PFOR-DELTA
      values = MakeSorted(n, 2000 + n + b,
                          /*max_gap=*/std::max(1u, 1u << (b / 2)));
      // A few huge jumps so exceptions hit the partial-window path too.
      for (size_t i = 100; i < values.size(); i += 150) {
        for (size_t j = i; j < values.size(); ++j) values[j] += 1 << 24;
      }
      opts.bit_width = b;
      encode = &PforDeltaEncode;
      break;
    }
    default: {  // PDICT: width capped at kMaxDictBitWidth
      const int bd = std::min(b, kMaxDictBitWidth);
      Rng rng(3000 + n + b);
      values.resize(n);
      // Slightly more distinct values than the dictionary holds, so small
      // widths exercise exception patching.
      const uint64_t distinct = (1ull << std::min(bd, 10)) + 3;
      for (auto& v : values) {
        v = static_cast<int32_t>(rng.NextBounded(distinct)) * 7 - 3;
      }
      opts.bit_width = bd;
      encode = &PdictEncode;
      break;
    }
  }

  std::vector<uint8_t> block;
  ASSERT_TRUE(
      encode(values.data(), n, opts, &block, nullptr).ok());
  BlockDecoder dec;
  ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());
  ASSERT_TRUE(dec.Validate().ok());
  ASSERT_EQ(dec.n(), n);
  std::vector<int32_t> out(n);
  dec.DecodeAll(out.data());
  ASSERT_EQ(out, values);

  // Range decodes that isolate the final (possibly partial) window and the
  // very last value — the unaligned-load pad path.
  const uint32_t last_window_start = ((n - 1) / kEntryPointStride) *
                                     kEntryPointStride;
  const uint32_t wn = n - last_window_start;
  std::vector<int32_t> tail(wn);
  dec.Decode(last_window_start, wn, tail.data());
  for (uint32_t i = 0; i < wn; ++i) {
    ASSERT_EQ(tail[i], values[last_window_start + i]) << i;
  }
  int32_t last = 0;
  dec.Decode(n - 1, 1, &last);
  EXPECT_EQ(last, values[n - 1]);
}

std::string BoundaryShapeName(
    const ::testing::TestParamInfo<BoundaryShapeTest::ParamType>& info) {
  const int scheme = std::get<2>(info.param);
  const std::string name =
      scheme == 0 ? "Pfor" : scheme == 1 ? "PforDelta" : "Pdict";
  return name + "_n384p" + std::to_string(std::get<0>(info.param)) + "_b" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    EncoderBoundarySweep, BoundaryShapeTest,
    ::testing::Combine(::testing::Values(0u, 1u, 127u),
                       ::testing::Values(1, 7, 8, 30),
                       ::testing::Values(0, 1, 2)),
    BoundaryShapeName);

TEST(Codec, EntryPointStrideIsStable) {
  // The on-disk format and the skip granularity depend on this constant;
  // changing it is a format break.
  EXPECT_EQ(kEntryPointStride, 128u);
}

// ---------------------------------------------------------------------------
// SIMD LOOP1 unpack (PR 4): bit-exactness against the scalar kernels.
// ---------------------------------------------------------------------------

// Restores the SIMD toggle even when an assertion bails out of a test.
class ScopedSimdToggle {
 public:
  ScopedSimdToggle() : prev_(internal::SimdUnpackEnabled()) {}
  ~ScopedSimdToggle() { internal::SetSimdUnpackEnabled(prev_); }

 private:
  bool prev_;
};

TEST(Codec, SimdUnpackBitExactSweep) {
  // On hosts without SIMD support both decodes run the scalar table and the
  // sweep degenerates to determinism; on SSE/NEON hosts it pins the shuffle
  // kernels (including their scalar tails at awkward lengths) to the scalar
  // ground truth across schemes and exception rates.
  ScopedSimdToggle guard;
  for (int b : {1, 4, 7, 8, 13, 16, 26, 30}) {
    for (bool delta : {false, true}) {
      // Delta exceptions are giant gaps; past b=16 their running sum would
      // overflow int32 at these lengths, so wide widths sweep PFOR only.
      if (delta && b > 16) continue;
      for (uint32_t n : {1u, 127u, 128u, 129u, 1023u, 4096u}) {
        for (double rate : {0.0, 0.05, 0.5}) {
          std::vector<int32_t> values;
          if (delta) {
            // Exceptions in the delta domain: occasional giant gaps.
            Rng rng(7'000 + b + n + static_cast<uint64_t>(rate * 100));
            values.resize(n);
            int32_t cur = 0;
            for (auto& x : values) {
              // Exception gaps stay small enough that 4096 of them cannot
              // overflow the running int32 value.
              cur += rng.NextBernoulli(rate)
                         ? (1 << b) + 1 +
                               static_cast<int32_t>(rng.NextBounded(1 << 10))
                         : 1 + static_cast<int32_t>(
                                   rng.NextBounded((1u << b) - 1));
              x = cur;
            }
          } else {
            values = MakeData(n, b, rate, 9'000 + b + n);
          }
          EncodeOptions opts;
          opts.bit_width = b;
          std::vector<uint8_t> block;
          const auto encode = delta ? &PforDeltaEncode : &PforEncode;
          ASSERT_TRUE(encode(values.data(), n, opts, &block, nullptr).ok());
          BlockDecoder dec;
          ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());

          std::vector<int32_t> simd_out(n), scalar_out(n);
          internal::SetSimdUnpackEnabled(true);
          dec.DecodeAll(simd_out.data());
          internal::SetSimdUnpackEnabled(false);
          dec.DecodeAll(scalar_out.data());
          ASSERT_EQ(simd_out, scalar_out)
              << "b=" << b << " delta=" << delta << " n=" << n
              << " rate=" << rate;
          ASSERT_EQ(simd_out, values);

          // Range decodes hit the per-window path with partial windows.
          Rng rng(31 + n);
          for (int rep = 0; rep < 8; ++rep) {
            const uint32_t pos =
                static_cast<uint32_t>(rng.NextBounded(n));
            const uint32_t len = 1 + static_cast<uint32_t>(
                                         rng.NextBounded(n - pos));
            std::vector<int32_t> a(len), s(len);
            internal::SetSimdUnpackEnabled(true);
            dec.Decode(pos, len, a.data());
            internal::SetSimdUnpackEnabled(false);
            dec.Decode(pos, len, s.data());
            ASSERT_EQ(a, s) << "b=" << b << " pos=" << pos << " len=" << len;
          }
        }
      }
    }
  }
}

TEST(Codec, Avx2UnpackAllWidthsBitExact) {
  // Direct kernel-level sweep: every width 1..kMaxBitWidth against the
  // scalar oracle on raw random bitstreams, at lengths chosen to hit zero
  // full groups, exact group boundaries, and partial tails (the SIMD
  // kernels' scalar resume). On hosts without AVX2 the dispatcher returns
  // the shuffle-table or scalar kernel and the sweep still pins agreement.
  ScopedSimdToggle guard;
  internal::SetSimdUnpackEnabled(true);
  Rng rng(0xA7C2);
  for (int b = 1; b <= kMaxBitWidth; ++b) {
    for (uint32_t n :
         {1u, 7u, 8u, 9u, 15u, 63u, 127u, 128u, 129u, 1024u, 1031u}) {
      // Codeword bytes plus the kBlockPadBytes slack every decode path
      // guarantees past the last codeword.
      std::vector<uint8_t> src((static_cast<uint64_t>(n) * b + 7) / 8 +
                               internal::kBlockPadBytes);
      for (auto& byte : src) {
        byte = static_cast<uint8_t>(rng.NextBounded(256));
      }
      const int32_t base =
          static_cast<int32_t>(rng.NextBounded(1u << 20)) - 17;
      std::vector<int32_t> got(n, -1), want(n, -2);
      internal::GetUnpackAdd(b)(src.data(), n, base, got.data());
      internal::ScalarUnpackAdd(b)(src.data(), n, base, want.data());
      ASSERT_EQ(got, want) << "b=" << b << " n=" << n;
    }
  }
}

TEST(Codec, PatchKernelBitExact) {
  // LOOP2 kernel agreement: unique positions (the block invariant) make
  // store order irrelevant, so the SIMD deinterleave must land the exact
  // same bytes as the scalar record loop, including the sub-quad tail.
  ScopedSimdToggle guard;
  internal::SetSimdUnpackEnabled(true);
  Rng rng(0x9E37);
  const uint32_t out_base = 256;
  const uint32_t window = 512;
  for (uint32_t count : {0u, 1u, 3u, 4u, 5u, 8u, 127u}) {
    std::vector<internal::ExceptionRecord> recs(count);
    std::vector<uint32_t> pos(window);
    for (uint32_t i = 0; i < window; ++i) pos[i] = out_base + i;
    for (uint32_t i = 0; i < count; ++i) {
      std::swap(pos[i],
                pos[i + static_cast<uint32_t>(rng.NextBounded(window - i))]);
      recs[i].pos = pos[i];
      recs[i].value = static_cast<int32_t>(rng.NextBounded(1u << 30)) - 5;
    }
    std::vector<int32_t> got(window, 0), want(window, 0);
    internal::GetPatch()(reinterpret_cast<const uint8_t*>(recs.data()), count,
                         out_base, got.data());
    internal::ScalarPatch()(reinterpret_cast<const uint8_t*>(recs.data()),
                            count, out_base, want.data());
    ASSERT_EQ(got, want) << count;
  }
}

TEST(Codec, SimdDispatchReportsConsistently) {
  ScopedSimdToggle guard;
  internal::SetSimdUnpackEnabled(true);
  const internal::SimdLevel level = internal::ActiveSimdLevel();
  const bool host_has_simd = level != internal::SimdLevel::kScalar;
  for (int b : {4, 8, 16}) {
    EXPECT_EQ(internal::SimdUnpackAvailable(b), host_has_simd) << b;
    EXPECT_EQ(internal::GetUnpackAdd(b) != internal::ScalarUnpackAdd(b),
              host_has_simd)
        << b;
  }
  // The generic AVX2 kernels cover every width; the shuffle-table SSSE3 /
  // NEON kernels only the byte-friendly ones, so other widths fall back to
  // the scalar table there.
  const bool all_widths = level == internal::SimdLevel::kAvx2;
  for (int b : {1, 7, 15, 26, 30}) {
    EXPECT_EQ(internal::SimdUnpackAvailable(b), all_widths) << b;
    EXPECT_EQ(internal::GetUnpackAdd(b) != internal::ScalarUnpackAdd(b),
              all_widths)
        << b;
  }
  // The LOOP2 patch kernel dispatches the same way.
  EXPECT_EQ(internal::GetPatch() != internal::ScalarPatch(), all_widths);
  internal::SetSimdUnpackEnabled(false);
  EXPECT_EQ(internal::ActiveSimdLevel(), internal::SimdLevel::kScalar);
  EXPECT_FALSE(internal::SimdUnpackAvailable(8));
  EXPECT_EQ(internal::GetUnpackAdd(8), internal::ScalarUnpackAdd(8));
  EXPECT_EQ(internal::GetPatch(), internal::ScalarPatch());
}

// ---------------------------------------------------------------------------
// SortedRangeCursor / SkipTo (PR 4): block-skipping scans.
// ---------------------------------------------------------------------------

// Builds a TD.docid-shaped column: `runs` concatenated ascending runs whose
// boundaries reset to small values (the per-term resets force_base turns
// into exceptions).
std::vector<int32_t> MakeRunColumn(const std::vector<uint32_t>& run_lens,
                                   uint64_t seed, uint32_t max_gap = 9) {
  Rng rng(seed);
  std::vector<int32_t> v;
  for (uint32_t len : run_lens) {
    int32_t cur = static_cast<int32_t>(rng.NextBounded(50));
    for (uint32_t i = 0; i < len; ++i) {
      cur += 1 + static_cast<int32_t>(rng.NextBounded(max_gap));
      v.push_back(cur);
    }
  }
  return v;
}

// Drives one cursor over [begin, end) with an ascending probe list and
// checks every landing against the linear-scan oracle on the full decode.
void CheckCursorAgainstOracle(const BlockDecoder& dec,
                              const std::vector<int32_t>& full,
                              uint64_t begin, uint64_t end,
                              const std::vector<int32_t>& probes) {
  SortedRangeCursor cur;
  ASSERT_TRUE(cur.Init(&dec, begin, end).ok());
  uint64_t opos = begin;
  for (int32_t t : probes) {
    while (opos < end && full[opos] < t) ++opos;
    const bool found = cur.SkipTo(t);
    ASSERT_EQ(found, opos < end) << "probe " << t;
    ASSERT_EQ(cur.AtEnd(), opos >= end);
    if (found) {
      ASSERT_EQ(cur.position(), opos) << "probe " << t;
      ASSERT_EQ(cur.value(), full[opos]) << "probe " << t;
    }
  }
}

TEST(SkipCursor, AgreesWithOracleAcrossHostileBoundaries) {
  // Shapes: run splits landing on/next to window boundaries, totals with
  // n % 128 in {0, 1, 127}, widths from compulsory-exception-riddled b=1
  // to exception-free b=30.
  const std::vector<std::vector<uint32_t>> shapes = {
      {256, 128, 384},        // n = 768 (0 mod 128), boundaries on windows
      {129, 127, 1},          // n = 257 (1 mod 128)
      {100, 27, 300, 84},     // n = 511 (127 mod 128)
      {1, 1, 126},            // tiny runs inside one window
      {640},                  // single run spanning 5 windows
  };
  for (const auto& shape : shapes) {
    const auto values = MakeRunColumn(shape, 42 + shape[0]);
    const uint32_t n = static_cast<uint32_t>(values.size());
    for (int b : {1, 7, 8, 16, 30}) {
      EncodeOptions opts;
      opts.bit_width = b;
      opts.force_base = true;
      std::vector<uint8_t> block;
      ASSERT_TRUE(
          PforDeltaEncode(values.data(), n, opts, &block, nullptr).ok());
      BlockDecoder dec;
      ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());
      // Sanity: the decoder still round-trips this shape.
      std::vector<int32_t> out(n);
      dec.DecodeAll(out.data());
      ASSERT_EQ(out, values) << "b=" << b;

      uint64_t begin = 0;
      for (uint32_t len : shape) {
        const uint64_t end = begin + len;
        // Probe script: every run value, its neighbors, and window-edge
        // positions — ascending, as the merge-join contract requires.
        std::vector<int32_t> probes;
        for (uint64_t p = begin; p < end; ++p) {
          probes.push_back(values[p] - 1);
          probes.push_back(values[p]);
          probes.push_back(values[p] + 1);
        }
        std::sort(probes.begin(), probes.end());
        CheckCursorAgainstOracle(dec, values, begin, end, probes);
        // A second pass probing only past-the-end.
        CheckCursorAgainstOracle(
            dec, values, begin, end,
            {values[end - 1], values[end - 1] + 1});
        begin = end;
      }
    }
  }
}

TEST(SkipCursor, SequentialNextMatchesFullDecode) {
  const auto values = MakeRunColumn({500, 300, 200}, 99);
  EncodeOptions opts;
  opts.bit_width = 8;
  opts.force_base = true;
  std::vector<uint8_t> block;
  ASSERT_TRUE(PforDeltaEncode(values.data(),
                              static_cast<uint32_t>(values.size()), opts,
                              &block, nullptr)
                  .ok());
  BlockDecoder dec;
  ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());
  SortedRangeCursor cur;
  ASSERT_TRUE(cur.Init(&dec, 500, 800).ok());
  for (uint64_t p = 500; p < 800; ++p) {
    ASSERT_FALSE(cur.AtEnd());
    ASSERT_EQ(cur.position(), p);
    ASSERT_EQ(cur.value(), values[p]);
    cur.Next();
  }
  ASSERT_TRUE(cur.AtEnd());
  // Sequential reads decode each window exactly once.
  EXPECT_EQ(cur.stats().windows_decoded, (800 + 127) / 128 - 500 / 128);
}

TEST(SkipCursor, SkipsWindowsWithoutDecodingThem) {
  // A long sorted list probed at a handful of far-apart targets: the
  // cursor must decode only the windows it lands in, skipping the rest.
  const auto values = MakeSorted(128 * 100, 7);  // 100 windows
  EncodeOptions opts;
  opts.force_base = true;
  std::vector<uint8_t> block;
  ASSERT_TRUE(PforDeltaEncode(values.data(),
                              static_cast<uint32_t>(values.size()), opts,
                              &block, nullptr)
                  .ok());
  BlockDecoder dec;
  ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());
  SortedRangeCursor cur;
  ASSERT_TRUE(cur.Init(&dec, 0, values.size()).ok());
  for (uint64_t p : {4000ull, 8000ull, 12700ull}) {
    ASSERT_TRUE(cur.SkipTo(values[p]));
    EXPECT_EQ(cur.position(), p);
  }
  EXPECT_EQ(cur.stats().windows_decoded, 3u);
  EXPECT_GT(cur.stats().windows_skipped, 90u);
  EXPECT_EQ(cur.stats().skip_calls, 3u);
}

TEST(Codec, SkipStatsPartitionExact) {
  // Counter-drift audit (DESIGN.md §12.4): randomly mixed driving — value
  // skips (SkipTo, including the probe-past-everything exhaust path),
  // Block-Max window rejects, and bulk run decodes — over hostile sub-range
  // boundaries. At exhaustion, windows_decoded + windows_skipped +
  // windows_blockmax_skipped must equal the number of 128-value windows
  // overlapping [begin, end) exactly. No single counter is monotone in how
  // aggressively the driver skips; only the partition is invariant.
  const auto values = MakeSorted(5 * 128 + 57, 0xBEEF, 40);
  const uint32_t n = static_cast<uint32_t>(values.size());
  EncodeOptions opts;
  opts.force_base = true;
  std::vector<uint8_t> block;
  ASSERT_TRUE(PforDeltaEncode(values.data(), n, opts, &block, nullptr).ok());
  BlockDecoder dec;
  ASSERT_TRUE(dec.Init(block.data(), block.size()).ok());
  const uint32_t ranges[][2] = {{0, n},         {1, n - 1}, {127, 129},
                                {128, 256},     {130, 131}, {3, 128 * 4 + 1},
                                {128 * 2, n}};
  Rng rng(0x5EED);
  for (const auto& range : ranges) {
    const uint32_t begin = range[0], end = range[1];
    for (int rep = 0; rep < 16; ++rep) {
      SortedRangeCursor cur;
      ASSERT_TRUE(cur.Init(&dec, begin, end).ok());
      int32_t probe = values[begin];
      while (!cur.AtEnd()) {
        switch (rng.NextBounded(3)) {
          case 0:
            cur.SkipCurrentWindowBlockMax();
            break;
          case 1: {
            const auto rv = cur.CurrentRunView();
            ASSERT_LT(rv.lo, rv.hi);
            probe = std::max(probe, rv.vals[rv.hi - 1]);
            cur.AdvanceTo(rv.win_base + rv.hi);
            break;
          }
          default: {
            probe += static_cast<int32_t>(rng.NextBounded(200));
            if (cur.SkipTo(probe)) {
              probe = std::max(probe, cur.value());
              cur.Next();
            }
            break;
          }
        }
      }
      const auto& st = cur.stats();
      const uint64_t overlapped = (end - 1) / 128 - begin / 128 + 1;
      ASSERT_EQ(st.windows_decoded + st.windows_skipped +
                    st.windows_blockmax_skipped,
                overlapped)
          << "range [" << begin << "," << end << ") rep " << rep
          << " decoded=" << st.windows_decoded
          << " skipped=" << st.windows_skipped
          << " blockmax=" << st.windows_blockmax_skipped;
    }
  }
}

TEST(SkipCursor, InitRejectsBadRangesAndSchemes) {
  const auto values = MakeSorted(1000, 3);
  std::vector<uint8_t> delta_block, pfor_block;
  EncodeOptions opts;
  opts.force_base = true;
  ASSERT_TRUE(PforDeltaEncode(values.data(), 1000, opts, &delta_block,
                              nullptr)
                  .ok());
  ASSERT_TRUE(PforEncode(values.data(), 1000, {}, &pfor_block, nullptr).ok());
  BlockDecoder delta_dec, pfor_dec;
  ASSERT_TRUE(delta_dec.Init(delta_block.data(), delta_block.size()).ok());
  ASSERT_TRUE(pfor_dec.Init(pfor_block.data(), pfor_block.size()).ok());

  SortedRangeCursor cur;
  EXPECT_FALSE(cur.Init(nullptr, 0, 0).ok());
  // PFOR blocks carry no window value bases: skipping would be wrong.
  EXPECT_FALSE(cur.Init(&pfor_dec, 0, 1000).ok());
  EXPECT_FALSE(cur.Init(&delta_dec, 500, 400).ok());   // begin > end
  EXPECT_FALSE(cur.Init(&delta_dec, 0, 1001).ok());    // past the block
  ASSERT_TRUE(cur.Init(&delta_dec, 700, 700).ok());    // empty range is fine
  EXPECT_TRUE(cur.AtEnd());
  EXPECT_FALSE(cur.SkipTo(0));

  // Probing below the current value never moves the cursor.
  ASSERT_TRUE(cur.Init(&delta_dec, 200, 900).ok());
  ASSERT_TRUE(cur.SkipTo(values[450]));
  const uint64_t pos = cur.position();
  ASSERT_TRUE(cur.SkipTo(values[450] - 3));
  EXPECT_EQ(cur.position(), pos);
  ASSERT_TRUE(cur.SkipTo(values[450]));
  EXPECT_EQ(cur.position(), pos);
  // Probing past everything exhausts the cursor cleanly.
  EXPECT_FALSE(cur.SkipTo(values[899] + 1));
  EXPECT_TRUE(cur.AtEnd());
}

}  // namespace
}  // namespace x100ir::compress
