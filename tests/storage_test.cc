// The storage/ layer battery (DESIGN.md §8): BufferManager pin/unpin
// refcount invariants, eviction-under-pressure never touching pinned
// pages, exact stats counters, EvictAll cold-pool semantics; ColumnReader
// round trips for every encoding plus window-granular compressed reads
// against the resident BlockDecoder as oracle; SortedColumnCursor vs
// compress::SortedRangeCursor across hostile block boundaries; torn-write
// safety of Database::Open over every persisted file; all seven RunTypes
// end-to-end with ranked runs pinned against the BM25 float oracle; the
// quantization error bound; and a seeded eviction-schedule stress whose
// results must be bit-identical to an all-hot pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "compress/pfor_delta.h"
#include "compress/skip_cursor.h"
#include "ir/bm25.h"
#include "ir/index_builder.h"
#include "ir/index_meta.h"
#include "ir/query_gen.h"
#include "ir/search_engine.h"
#include "storage/buffer_manager.h"
#include "storage/column_reader.h"
#include "storage/column_source.h"
#include "storage/file.h"

namespace x100ir::storage {
namespace {

// Paths are namespaced by the running test: ctest runs discovered tests in
// parallel processes, and two tests sharing a scratch file name must not
// race on it.
std::string TempPath(const char* name) {
  const auto* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string tag =
      info != nullptr
          ? std::string(info->test_suite_name()) + "_" + info->name()
          : std::string("global");
  return std::string(::testing::TempDir()) + "/x100ir_storage_" + tag +
         "_" + name;
}

// Writes `bytes` to a fresh file and returns its path.
std::string WriteFile(const char* name, const std::vector<uint8_t>& bytes) {
  const std::string path = TempPath(name);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  if (!bytes.empty()) {
    EXPECT_EQ(std::fwrite(bytes.data(), bytes.size(), 1, f), 1u);
  }
  std::fclose(f);
  return path;
}

// A deterministic pattern file: byte i = (i * 131 + 7) & 0xFF.
std::vector<uint8_t> PatternBytes(size_t n) {
  std::vector<uint8_t> bytes(n);
  for (size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<uint8_t>((i * 131 + 7) & 0xFF);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// File
// ---------------------------------------------------------------------------

TEST(StorageFile, ReadAtExactAndOutOfRange) {
  const auto bytes = PatternBytes(1000);
  const std::string path = WriteFile("file_basic", bytes);
  File f;
  ASSERT_TRUE(File::OpenReadOnly(path, &f).ok());
  uint64_t size = 0;
  ASSERT_TRUE(f.Size(&size).ok());
  EXPECT_EQ(size, 1000u);
  std::vector<uint8_t> buf(250);
  ASSERT_TRUE(f.ReadAt(500, 250, buf.data()).ok());
  EXPECT_EQ(0, std::memcmp(buf.data(), bytes.data() + 500, 250));
  EXPECT_FALSE(f.ReadAt(900, 101, buf.data()).ok());
  EXPECT_FALSE(File::OpenReadOnly(TempPath("no_such_file"), &f).ok());
}

TEST(SimulatedDisk, ChargesAreDeterministic) {
  DiskModelOptions model;
  model.seek_seconds = 1e-3;
  model.bytes_per_second = 1e6;
  SimulatedDisk disk(model);
  disk.Charge(1000);
  disk.Charge(4000);
  EXPECT_EQ(disk.seeks(), 2u);
  EXPECT_EQ(disk.total_bytes(), 5000u);
  EXPECT_NEAR(disk.io_seconds(), 2e-3 + 5e-3, 1e-12);
  disk.ResetStats();
  EXPECT_EQ(disk.seeks(), 0u);
  EXPECT_EQ(disk.io_seconds(), 0.0);
}

// ---------------------------------------------------------------------------
// BufferManager
// ---------------------------------------------------------------------------

class BufferManagerTest : public ::testing::Test {
 protected:
  // A 16-page file (4 KB pages), pool of 3 pages by default.
  void Open(uint64_t pool_pages = 3, uint32_t page_bytes = 4096) {
    page_bytes_ = page_bytes;
    bytes_ = PatternBytes(16 * page_bytes);
    path_ = WriteFile("bm_file", bytes_);
    ASSERT_TRUE(File::OpenReadOnly(path_, &file_).ok());
    bm_ = std::make_unique<BufferManager>(pool_pages * page_bytes, &disk_,
                                          page_bytes);
    ASSERT_TRUE(bm_->RegisterFile(7, &file_).ok());
  }

  uint32_t page_bytes_ = 4096;
  std::vector<uint8_t> bytes_;
  std::string path_;
  File file_;
  SimulatedDisk disk_;
  std::unique_ptr<BufferManager> bm_;
};

TEST_F(BufferManagerTest, MissThenHitServesCorrectBytes) {
  Open();
  const uint8_t* data = nullptr;
  uint32_t len = 0;
  ASSERT_TRUE(bm_->Pin(7, 2, &data, &len).ok());
  EXPECT_EQ(len, page_bytes_);
  EXPECT_EQ(0, std::memcmp(data, bytes_.data() + 2 * page_bytes_,
                           page_bytes_));
  EXPECT_EQ(bm_->stats().misses, 1u);
  EXPECT_EQ(bm_->stats().hits, 0u);
  bm_->Unpin(7, 2);
  ASSERT_TRUE(bm_->Pin(7, 2, &data, &len).ok());
  EXPECT_EQ(bm_->stats().hits, 1u);
  EXPECT_EQ(bm_->stats().misses, 1u);
  bm_->Unpin(7, 2);
}

TEST_F(BufferManagerTest, PinsNestByRefcount) {
  Open();
  const uint8_t* data = nullptr;
  uint32_t len = 0;
  ASSERT_TRUE(bm_->Pin(7, 0, &data, &len).ok());
  ASSERT_TRUE(bm_->Pin(7, 0, &data, &len).ok());
  EXPECT_EQ(bm_->pinned_pages(), 1u);
  bm_->Unpin(7, 0);
  // Still pinned once: EvictAll must refuse.
  EXPECT_FALSE(bm_->EvictAll().ok());
  EXPECT_EQ(bm_->pinned_pages(), 1u);
  bm_->Unpin(7, 0);
  EXPECT_EQ(bm_->pinned_pages(), 0u);
  EXPECT_TRUE(bm_->EvictAll().ok());
}

TEST_F(BufferManagerTest, EvictionUnderPressureNeverEvictsPinned) {
  Open(/*pool_pages=*/3);
  const uint8_t* pinned = nullptr;
  uint32_t len = 0;
  ASSERT_TRUE(bm_->Pin(7, 5, &pinned, &len).ok());
  // Stream every other page through the 2 remaining frames.
  const uint8_t* data = nullptr;
  for (uint64_t p = 0; p < 16; ++p) {
    if (p == 5) continue;
    ASSERT_TRUE(bm_->Pin(7, p, &data, &len).ok());
    bm_->Unpin(7, p);
  }
  EXPECT_GT(bm_->stats().evictions, 0u);
  // The pinned frame was never evicted: its bytes are still valid and
  // re-pinning it is a hit.
  EXPECT_EQ(0, std::memcmp(pinned, bytes_.data() + 5 * page_bytes_,
                           page_bytes_));
  const uint64_t hits_before = bm_->stats().hits;
  ASSERT_TRUE(bm_->Pin(7, 5, &data, &len).ok());
  EXPECT_EQ(bm_->stats().hits, hits_before + 1);
  bm_->Unpin(7, 5);
  bm_->Unpin(7, 5);
}

TEST_F(BufferManagerTest, ExhaustedWhenEverythingIsPinned) {
  Open(/*pool_pages=*/2);
  const uint8_t* data = nullptr;
  uint32_t len = 0;
  ASSERT_TRUE(bm_->Pin(7, 0, &data, &len).ok());
  ASSERT_TRUE(bm_->Pin(7, 1, &data, &len).ok());
  Status s = bm_->Pin(7, 2, &data, &len);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // Releasing one page makes room again.
  bm_->Unpin(7, 0);
  ASSERT_TRUE(bm_->Pin(7, 2, &data, &len).ok());
  bm_->Unpin(7, 1);
  bm_->Unpin(7, 2);
}

TEST_F(BufferManagerTest, EvictAllLeavesAFullyColdPool) {
  Open();
  const uint8_t* data = nullptr;
  uint32_t len = 0;
  for (uint64_t p = 0; p < 3; ++p) {
    ASSERT_TRUE(bm_->Pin(7, p, &data, &len).ok());
    bm_->Unpin(7, p);
  }
  EXPECT_GT(bm_->resident_bytes(), 0u);
  ASSERT_TRUE(bm_->EvictAll().ok());
  EXPECT_EQ(bm_->resident_bytes(), 0u);
  EXPECT_EQ(bm_->resident_pages(), 0u);
  // Every page faults back in.
  const uint64_t misses_before = bm_->stats().misses;
  for (uint64_t p = 0; p < 3; ++p) {
    ASSERT_TRUE(bm_->Pin(7, p, &data, &len).ok());
    bm_->Unpin(7, p);
  }
  EXPECT_EQ(bm_->stats().misses, misses_before + 3);
}

TEST_F(BufferManagerTest, StatsCountersExact) {
  Open(/*pool_pages=*/2);
  const uint8_t* data = nullptr;
  uint32_t len = 0;
  // Script: miss 0, miss 1, hit 1, miss 2 (evicts 0), miss 0 (evicts 1).
  ASSERT_TRUE(bm_->Pin(7, 0, &data, &len).ok());
  bm_->Unpin(7, 0);
  ASSERT_TRUE(bm_->Pin(7, 1, &data, &len).ok());
  bm_->Unpin(7, 1);
  ASSERT_TRUE(bm_->Pin(7, 1, &data, &len).ok());
  bm_->Unpin(7, 1);
  ASSERT_TRUE(bm_->Pin(7, 2, &data, &len).ok());
  bm_->Unpin(7, 2);
  ASSERT_TRUE(bm_->Pin(7, 0, &data, &len).ok());
  bm_->Unpin(7, 0);
  EXPECT_EQ(bm_->stats().misses, 4u);
  EXPECT_EQ(bm_->stats().hits, 1u);
  EXPECT_EQ(bm_->stats().evictions, 2u);
  EXPECT_EQ(bm_->stats().bytes_fetched, 4ull * page_bytes_);
  EXPECT_EQ(disk_.seeks(), 4u);
  EXPECT_EQ(disk_.total_bytes(), 4ull * page_bytes_);
  EXPECT_NEAR(bm_->stats().HitRate(), 1.0 / 5.0, 1e-12);
}

TEST_F(BufferManagerTest, LruEvictsColdestUnpinnedPage) {
  Open(/*pool_pages=*/2);
  const uint8_t* data = nullptr;
  uint32_t len = 0;
  ASSERT_TRUE(bm_->Pin(7, 0, &data, &len).ok());
  bm_->Unpin(7, 0);
  ASSERT_TRUE(bm_->Pin(7, 1, &data, &len).ok());
  bm_->Unpin(7, 1);
  // Touch 0 again: 1 becomes the LRU victim.
  ASSERT_TRUE(bm_->Pin(7, 0, &data, &len).ok());
  bm_->Unpin(7, 0);
  ASSERT_TRUE(bm_->Pin(7, 2, &data, &len).ok());
  bm_->Unpin(7, 2);
  const uint64_t hits_before = bm_->stats().hits;
  ASSERT_TRUE(bm_->Pin(7, 0, &data, &len).ok());  // still resident
  bm_->Unpin(7, 0);
  EXPECT_EQ(bm_->stats().hits, hits_before + 1);
  const uint64_t misses_before = bm_->stats().misses;
  ASSERT_TRUE(bm_->Pin(7, 1, &data, &len).ok());  // was evicted
  bm_->Unpin(7, 1);
  EXPECT_EQ(bm_->stats().misses, misses_before + 1);
}

TEST_F(BufferManagerTest, ShortLastPageAndBounds) {
  Open(/*pool_pages=*/3, /*page_bytes=*/4096);
  // A second file whose size is not a page multiple.
  const auto odd = PatternBytes(4096 + 1000);
  const std::string path = WriteFile("bm_odd", odd);
  File f;
  ASSERT_TRUE(File::OpenReadOnly(path, &f).ok());
  ASSERT_TRUE(bm_->RegisterFile(8, &f).ok());
  const uint8_t* data = nullptr;
  uint32_t len = 0;
  ASSERT_TRUE(bm_->Pin(8, 1, &data, &len).ok());
  EXPECT_EQ(len, 1000u);
  EXPECT_EQ(0, std::memcmp(data, odd.data() + 4096, 1000));
  bm_->Unpin(8, 1);
  EXPECT_FALSE(bm_->Pin(8, 2, &data, &len).ok());   // past EOF
  EXPECT_FALSE(bm_->Pin(99, 0, &data, &len).ok());  // unregistered
}

TEST_F(BufferManagerTest, EvictFileDropsExactlyThatFilesPages) {
  Open(/*pool_pages=*/8);
  // A second 4-page file sharing the pool: segment retirement must be able
  // to chill one file's pages without touching its neighbors'.
  const auto other = PatternBytes(4 * page_bytes_);
  const std::string path = WriteFile("bm_other", other);
  File f;
  ASSERT_TRUE(File::OpenReadOnly(path, &f).ok());
  ASSERT_TRUE(bm_->RegisterFile(8, &f).ok());

  const uint8_t* data = nullptr;
  uint32_t len = 0;
  for (uint64_t p = 0; p < 3; ++p) {
    ASSERT_TRUE(bm_->Pin(7, p, &data, &len).ok());
    bm_->Unpin(7, p);
  }
  for (uint64_t p = 0; p < 2; ++p) {
    ASSERT_TRUE(bm_->Pin(8, p, &data, &len).ok());
    bm_->Unpin(8, p);
  }
  EXPECT_EQ(bm_->ResidentPagesOfFile(7), 3u);
  EXPECT_EQ(bm_->ResidentPagesOfFile(8), 2u);
  EXPECT_EQ(bm_->stats().misses, 5u);

  ASSERT_TRUE(bm_->EvictFile(7).ok());
  EXPECT_EQ(bm_->ResidentPagesOfFile(7), 0u);
  EXPECT_EQ(bm_->ResidentPagesOfFile(8), 2u);
  EXPECT_EQ(bm_->resident_pages(), 2u);
  // Targeted drops are not pressure evictions: the counter is untouched.
  EXPECT_EQ(bm_->stats().evictions, 0u);

  // File 7 re-pins miss (its pages are gone); file 8 stayed hot.
  ASSERT_TRUE(bm_->Pin(7, 0, &data, &len).ok());
  bm_->Unpin(7, 0);
  EXPECT_EQ(bm_->stats().misses, 6u);
  ASSERT_TRUE(bm_->Pin(8, 0, &data, &len).ok());
  bm_->Unpin(8, 0);
  EXPECT_EQ(bm_->stats().hits, 1u);
}

TEST_F(BufferManagerTest, EvictFileRefusesPinsAndRejectsUnknownIds) {
  Open(/*pool_pages=*/8);
  const auto other = PatternBytes(4 * page_bytes_);
  const std::string path = WriteFile("bm_other2", other);
  File f;
  ASSERT_TRUE(File::OpenReadOnly(path, &f).ok());
  ASSERT_TRUE(bm_->RegisterFile(8, &f).ok());

  const uint8_t* data = nullptr;
  uint32_t len = 0;
  ASSERT_TRUE(bm_->Pin(7, 1, &data, &len).ok());
  // A pinned page in THIS file blocks its eviction...
  EXPECT_EQ(bm_->EvictFile(7).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(bm_->ResidentPagesOfFile(7), 1u);
  // ...but not another file's (per-file granularity is the whole point:
  // retiring a dead segment must not wait for unrelated readers).
  ASSERT_TRUE(bm_->Pin(8, 0, &data, &len).ok());
  bm_->Unpin(8, 0);
  EXPECT_TRUE(bm_->EvictFile(8).ok());
  EXPECT_EQ(bm_->ResidentPagesOfFile(8), 0u);

  bm_->Unpin(7, 1);
  EXPECT_TRUE(bm_->EvictFile(7).ok());
  EXPECT_EQ(bm_->EvictFile(99).code(), StatusCode::kInvalidArgument);

  // UnregisterFile = EvictFile + drop the binding: later pins must fail
  // rather than resurrect the file.
  ASSERT_TRUE(bm_->UnregisterFile(8).ok());
  EXPECT_EQ(bm_->ResidentPagesOfFile(8), 0u);
  EXPECT_FALSE(bm_->Pin(8, 0, &data, &len).ok());
  EXPECT_EQ(bm_->EvictFile(8).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// ColumnReader
// ---------------------------------------------------------------------------

std::vector<uint8_t> ColumnFileBytes(uint32_t encoding, uint64_t n,
                                     const void* payload,
                                     size_t payload_bytes) {
  ir::ColumnFileHeader hdr;
  hdr.encoding = encoding;
  hdr.value_count = n;
  std::vector<uint8_t> bytes(sizeof(hdr) + payload_bytes);
  std::memcpy(bytes.data(), &hdr, sizeof(hdr));
  if (payload_bytes > 0) {
    std::memcpy(bytes.data() + sizeof(hdr), payload, payload_bytes);
  }
  return bytes;
}

TEST(ColumnReader, RawI32RoundTripAcrossPageSizes) {
  std::vector<int32_t> values(3000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int32_t>(i * 7 - 1000);
  }
  const std::string path = WriteFile(
      "col_rawi32",
      ColumnFileBytes(ir::ColumnFileHeader::kRawI32, values.size(),
                      values.data(), values.size() * 4));
  for (uint32_t page_bytes : {64u, 1024u, 1u << 20}) {
    SimulatedDisk disk;
    BufferManager bm(1ull << 30, &disk, page_bytes);
    ColumnReader col;
    ASSERT_TRUE(col.Open(path, 1, &bm).ok());
    EXPECT_EQ(col.value_count(), values.size());
    std::vector<int32_t> out(values.size());
    ASSERT_TRUE(col.Read(0, values.size(), out.data()).ok());
    EXPECT_EQ(out, values);
    // Unaligned sub-range straddling pages.
    std::vector<int32_t> sub(777);
    ASSERT_TRUE(col.Read(1111, 777, sub.data()).ok());
    EXPECT_EQ(0, std::memcmp(sub.data(), values.data() + 1111, 777 * 4));
    EXPECT_FALSE(col.Read(values.size() - 1, 2, sub.data()).ok());
  }
}

TEST(ColumnReader, CompressedMatchesResidentDecoderAcrossBoundaries) {
  Rng rng(2024);
  // n % 128 in {0, 1, 127} plus a sub-window case; sorted values with
  // forced exceptions in the delta stream.
  for (uint32_t n : {1280u, 1281u, 1407u, 131u}) {
    std::vector<int32_t> values(n);
    int32_t v = 0;
    for (uint32_t i = 0; i < n; ++i) {
      v += static_cast<int32_t>(rng.NextBounded(9));
      if (rng.NextBounded(64) == 0) v += 100000;
      values[i] = v;
    }
    std::vector<uint8_t> block;
    compress::BlockStats stats;
    ASSERT_TRUE(compress::PforDeltaEncode(values.data(), n, {}, &block,
                                          &stats).ok());
    compress::BlockDecoder oracle;
    ASSERT_TRUE(oracle.Init(block.data(), block.size()).ok());

    const std::string path = WriteFile(
        "col_pfd", ColumnFileBytes(ir::ColumnFileHeader::kCompressedBlock,
                                   n, block.data(), block.size()));
    SimulatedDisk disk;
    BufferManager bm(1ull << 30, &disk, 512);
    ColumnReader col;
    ASSERT_TRUE(col.Open(path, 1, &bm).ok());
    ASSERT_EQ(col.value_count(), n);
    ASSERT_TRUE(col.is_compressed());
    ASSERT_TRUE(col.WindowIsDelta());

    std::vector<int32_t> full(n);
    ASSERT_TRUE(col.Read(0, n, full.data()).ok());
    EXPECT_EQ(full, values) << "n=" << n;
    EXPECT_GT(col.windows_decoded(), 0u);
    // Window value bases match the resident decoder's.
    for (uint32_t w = 0; w < col.num_windows(); ++w) {
      EXPECT_EQ(col.WindowValueBase(w), oracle.WindowValueBase(w));
    }
    // Random sub-ranges, including window-interior ones.
    for (int trial = 0; trial < 20; ++trial) {
      const uint32_t pos = static_cast<uint32_t>(rng.NextBounded(n));
      const uint32_t len = static_cast<uint32_t>(
          1 + rng.NextBounded(std::min<uint64_t>(n - pos, 300)));
      std::vector<int32_t> got(len), want(len);
      ASSERT_TRUE(col.Read(pos, len, got.data()).ok());
      oracle.Decode(pos, len, want.data());
      ASSERT_EQ(got, want) << "n=" << n << " pos=" << pos;
    }
  }
}

TEST(ColumnReader, Q8RoundTripAndParams) {
  const uint32_t n = 1000;
  ir::Q8Params params;
  params.scale = 0.5f;
  params.bias = -3.0f;
  std::vector<uint8_t> payload(sizeof(params) + n);
  std::memcpy(payload.data(), &params, sizeof(params));
  for (uint32_t i = 0; i < n; ++i) {
    payload[sizeof(params) + i] = static_cast<uint8_t>(i & 0xFF);
  }
  const std::string path = WriteFile(
      "col_q8", ColumnFileBytes(ir::ColumnFileHeader::kQuantU8, n,
                                payload.data(), payload.size()));
  SimulatedDisk disk;
  BufferManager bm(1ull << 30, &disk, 4096);
  ColumnReader col;
  ASSERT_TRUE(col.Open(path, 1, &bm).ok());
  EXPECT_FLOAT_EQ(col.q8_scale(), 0.5f);
  EXPECT_FLOAT_EQ(col.q8_bias(), -3.0f);
  std::vector<float> out(n);
  ASSERT_TRUE(col.ReadF32(0, n, out.data()).ok());
  for (uint32_t i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(out[i], -3.0f + 0.5f * static_cast<float>(i & 0xFF));
  }
}

TEST(ColumnReader, RejectsTruncationBadMagicAndBadParams) {
  std::vector<int32_t> values(500, 42);
  const auto good =
      ColumnFileBytes(ir::ColumnFileHeader::kRawI32, values.size(),
                      values.data(), values.size() * 4);
  SimulatedDisk disk;
  BufferManager bm(1ull << 30, &disk, 4096);
  // Truncations at hostile offsets: header-less, mid-header, mid-payload,
  // one byte short — and one byte long.
  for (size_t cut : {size_t{0}, size_t{1}, size_t{10}, good.size() / 2,
                     good.size() - 1}) {
    std::vector<uint8_t> torn(good.begin(), good.begin() + cut);
    ColumnReader col;
    EXPECT_FALSE(col.Open(WriteFile("col_torn", torn), 1, &bm).ok())
        << "cut=" << cut;
  }
  std::vector<uint8_t> grown = good;
  grown.push_back(0);
  ColumnReader col;
  EXPECT_FALSE(col.Open(WriteFile("col_grown", grown), 1, &bm).ok());
  std::vector<uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(col.Open(WriteFile("col_magic", bad_magic), 1, &bm).ok());
  // Quantized column with a degenerate scale.
  ir::Q8Params params;
  params.scale = 0.0f;
  std::vector<uint8_t> payload(sizeof(params) + 4, 0);
  std::memcpy(payload.data(), &params, sizeof(params));
  EXPECT_FALSE(col.Open(WriteFile("col_badscale",
                                  ColumnFileBytes(
                                      ir::ColumnFileHeader::kQuantU8, 4,
                                      payload.data(), payload.size())),
                        1, &bm)
                   .ok());
}

// ---------------------------------------------------------------------------
// SortedColumnCursor
// ---------------------------------------------------------------------------

TEST(SortedColumnCursor, MatchesSortedRangeCursorOracle) {
  Rng rng(77);
  std::vector<int32_t> values(1407);
  int32_t v = 0;
  for (auto& x : values) {
    v += static_cast<int32_t>(rng.NextBounded(7));
    x = v;
  }
  std::vector<uint8_t> block;
  compress::BlockStats stats;
  ASSERT_TRUE(compress::PforDeltaEncode(
      values.data(), static_cast<uint32_t>(values.size()), {}, &block,
      &stats).ok());
  compress::BlockDecoder resident;
  ASSERT_TRUE(resident.Init(block.data(), block.size()).ok());
  const std::string path = WriteFile(
      "cur_pfd",
      ColumnFileBytes(ir::ColumnFileHeader::kCompressedBlock, values.size(),
                      block.data(), block.size()));
  const std::string raw_path = WriteFile(
      "cur_raw", ColumnFileBytes(ir::ColumnFileHeader::kRawI32,
                                 values.size(), values.data(),
                                 values.size() * 4));
  SimulatedDisk disk;
  BufferManager bm(1ull << 30, &disk, 512);
  ColumnReader compressed, raw;
  ASSERT_TRUE(compressed.Open(path, 1, &bm).ok());
  ASSERT_TRUE(raw.Open(raw_path, 2, &bm).ok());

  // Sub-ranges crossing window boundaries, incl. the block's tail window.
  const std::pair<uint64_t, uint64_t> ranges[] = {
      {0, values.size()}, {100, 700}, {127, 129}, {1280, 1407}, {5, 5}};
  for (const auto& [begin, end] : ranges) {
    for (uint64_t probe_seed = 0; probe_seed < 3; ++probe_seed) {
      compress::SortedRangeCursor oracle;
      ASSERT_TRUE(oracle.Init(&resident, begin, end).ok());
      SortedColumnCursor cold, cold_raw;
      ASSERT_TRUE(cold.Init(&compressed, begin, end).ok());
      ASSERT_TRUE(cold_raw.Init(&raw, begin, end).ok());
      Rng prng(900 + probe_seed);
      int32_t target =
          begin < values.size()
              ? values[begin] - 1 +
                    static_cast<int32_t>(prng.NextBounded(3))
              : 0;
      for (int step = 0; step < 40; ++step) {
        const bool found_oracle = oracle.SkipTo(target);
        bool found = false, found_raw = false;
        ASSERT_TRUE(cold.SkipTo(target, &found).ok());
        ASSERT_TRUE(cold_raw.SkipTo(target, &found_raw).ok());
        ASSERT_EQ(found, found_oracle) << "target=" << target;
        ASSERT_EQ(found_raw, found_oracle);
        if (!found_oracle) break;
        ASSERT_EQ(cold.position(), oracle.position());
        ASSERT_EQ(cold_raw.position(), oracle.position());
        int32_t cv = 0, rv = 0;
        ASSERT_TRUE(cold.Value(&cv).ok());
        ASSERT_TRUE(cold_raw.Value(&rv).ok());
        ASSERT_EQ(cv, oracle.value());
        ASSERT_EQ(rv, oracle.value());
        target =
            oracle.value() + static_cast<int32_t>(prng.NextBounded(30));
      }
    }
  }
}

TEST(SortedColumnCursor, SkipsWindowsWithoutFetching) {
  // A long strictly-increasing range: skipping to a far target must not
  // decode (fetch) the windows in between.
  std::vector<int32_t> values(128 * 40);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int32_t>(i * 3);
  }
  std::vector<uint8_t> block;
  compress::BlockStats stats;
  ASSERT_TRUE(compress::PforDeltaEncode(
      values.data(), static_cast<uint32_t>(values.size()), {}, &block,
      &stats).ok());
  const std::string path = WriteFile(
      "skip_pfd",
      ColumnFileBytes(ir::ColumnFileHeader::kCompressedBlock, values.size(),
                      block.data(), block.size()));
  SimulatedDisk disk;
  BufferManager bm(1ull << 30, &disk, 4096);
  ColumnReader col;
  ASSERT_TRUE(col.Open(path, 1, &bm).ok());
  SortedColumnCursor cursor;
  ASSERT_TRUE(cursor.Init(&col, 0, values.size()).ok());
  bool found = false;
  ASSERT_TRUE(cursor.SkipTo(values[128 * 35], &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(cursor.position(), 128u * 35);
  EXPECT_GE(cursor.windows_skipped(), 30u);
  EXPECT_LE(col.windows_decoded(), 3u);
}

TEST(ColumnSliceSource, LatchesPoolFailureAndZeroFills) {
  std::vector<int32_t> values(5000, 9);
  const std::string path = WriteFile(
      "src_rawi32", ColumnFileBytes(ir::ColumnFileHeader::kRawI32,
                                    values.size(), values.data(),
                                    values.size() * 4));
  SimulatedDisk disk;
  // Pool smaller than one page: every fetch is ResourceExhausted.
  BufferManager bm(1024, &disk, 4096);
  ColumnReader col;
  ASSERT_TRUE(col.Open(path, 1, &bm).ok());
  ColumnSliceSource src(&col, 0, values.size(), vec::TypeId::kI32);
  ASSERT_TRUE(src.status().ok());
  std::vector<int32_t> out(64, -1);
  src.Read(0, 64, out.data());
  EXPECT_EQ(src.status().code(), StatusCode::kResourceExhausted);
  for (int32_t x : out) EXPECT_EQ(x, 0);  // zero-filled, never garbage
}

// ---------------------------------------------------------------------------
// Index storage integration: materialized scores, torn writes, RunTypes
// ---------------------------------------------------------------------------

ir::Corpus GoldenCorpus() {
  std::vector<std::vector<uint32_t>> docs = {
      {0, 1, 2, 2, 3},              // doc 0
      {1, 2, 4},                    // doc 1
      {0, 0, 0, 5, 6},              // doc 2
      {2, 2, 2, 2, 7},              // doc 3
      {1, 3, 5, 7, 9},              // doc 4
      {8, 8, 9},                    // doc 5
      {0, 1, 2, 3, 4, 5, 6, 7, 8},  // doc 6
      {2, 9},                       // doc 7
  };
  ir::Corpus corpus;
  EXPECT_TRUE(ir::Corpus::FromDocuments(docs, 10, &corpus).ok());
  return corpus;
}

ir::CorpusOptions SmallGeneratedOptions() {
  ir::CorpusOptions opts;
  opts.num_docs = 1500;
  opts.vocab_size = 2000;
  opts.doclen_mu = 3.2;
  opts.doclen_sigma = 0.5;
  opts.num_topics = 10;
  opts.terms_per_topic = 5;
  opts.relevant_docs_per_topic = 40;
  opts.topical_mass = 0.35;
  opts.topic_rank_min = 20;
  opts.topic_rank_max = 300;
  opts.seed = 2007;
  return opts;
}

std::string FreshDir(const char* name) {
  const std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(IndexStorageTest, MaterializedScoresMatchRecomputationAndQ8Bound) {
  const ir::Corpus corpus = GoldenCorpus();
  const std::string dir = FreshDir("materialize");
  ir::InvertedIndex index;
  ir::BuildStats stats;
  ASSERT_TRUE(index.BuildFromCorpus(corpus, dir, &stats).ok());
  ASSERT_TRUE(index.has_storage());
  ir::IndexStorage* st = index.storage();
  const uint64_t n = index.num_postings();
  ASSERT_EQ(st->score_f32.value_count(), n);
  ASSERT_EQ(st->score_q8.value_count(), n);

  const float inv_avgdl = static_cast<float>(1.0 / index.avg_doc_len());
  std::vector<float> scores(n), q8(n);
  ASSERT_TRUE(st->score_f32.ReadF32(0, n, scores.data()).ok());
  ASSERT_TRUE(st->score_q8.ReadF32(0, n, q8.data()).ok());
  const float max_err = st->score_q8.q8_scale() * 0.5f * 1.001f;
  for (uint32_t t = 0; t < index.vocab_size(); ++t) {
    const ir::TermInfo& info = index.term(t);
    std::vector<int32_t> docids, tfs;
    ASSERT_TRUE(index.DecodePostings(t, &docids, &tfs).ok());
    for (uint32_t j = 0; j < info.doc_freq; ++j) {
      const uint64_t p = info.posting_start + j;
      const float want =
          Bm25One(info.idf, static_cast<float>(tfs[j]),
                  static_cast<float>(index.doc_lens()[docids[j]]),
                  ir::InvertedIndex::kMaterializedK1,
                  ir::InvertedIndex::kMaterializedB, inv_avgdl);
      ASSERT_FLOAT_EQ(scores[p], want) << "term " << t << " posting " << j;
      // The quantization error bound: |dequant - f32| <= scale / 2.
      ASSERT_LE(std::abs(q8[p] - scores[p]), max_err);
    }
  }
}

TEST(IndexStorageTest, TornWritesTriggerRebuildNeverGarbage) {
  const ir::Corpus corpus = GoldenCorpus();
  const std::string dir = FreshDir("torn");
  ir::InvertedIndex index;
  ir::BuildStats stats;
  ASSERT_TRUE(index.BuildFromCorpus(corpus, dir, &stats).ok());
  EXPECT_FALSE(stats.reused_files);
  ASSERT_TRUE(index.BuildFromCorpus(corpus, dir, &stats).ok());
  EXPECT_TRUE(stats.reused_files);

  const char* files[] = {ir::kDocidRawFile,        ir::kTfRawFile,
                         ir::kDocidCompressedFile, ir::kTfCompressedFile,
                         ir::kScoreF32File,        ir::kScoreQ8File,
                         ir::kIndexMetaFile};
  for (const char* file : files) {
    const std::string path = dir + "/" + file;
    const uint64_t size = std::filesystem::file_size(path);
    // Hostile truncation offsets: empty, one byte, mid-file, size - 1.
    for (uint64_t cut : {uint64_t{0}, uint64_t{1}, size / 2, size - 1}) {
      std::filesystem::resize_file(path, cut);
      ir::InvertedIndex reopened;
      ASSERT_TRUE(reopened.BuildFromCorpus(corpus, dir, &stats).ok())
          << file << " cut at " << cut;
      EXPECT_FALSE(stats.reused_files) << file << " cut at " << cut;
      ASSERT_TRUE(reopened.has_storage());
      // The rebuilt index serves correct data.
      std::vector<int32_t> docids;
      ASSERT_TRUE(reopened.DecodePostings(2, &docids, nullptr).ok());
      EXPECT_EQ(docids, (std::vector<int32_t>{0, 1, 3, 6, 7}));
    }
  }
  // After all that torture a clean reopen reuses again.
  ASSERT_TRUE(index.BuildFromCorpus(corpus, dir, &stats).ok());
  EXPECT_TRUE(stats.reused_files);
}

// All 7 RunTypes end-to-end on the golden corpus; ranked runs agree with
// a naive float oracle.
TEST(RunTypes, AllSevenExecuteAndRankedRunsMatchOracle) {
  const ir::Corpus corpus = GoldenCorpus();
  const std::string dir = FreshDir("runtypes");
  ir::InvertedIndex index;
  ir::BuildStats bstats;
  ASSERT_TRUE(index.BuildFromCorpus(corpus, dir, &bstats).ok());
  ir::SearchEngine engine(&index);

  // Naive oracle: score every doc containing a query term.
  const std::vector<uint32_t> qterms = {1, 2, 3};
  const float inv_avgdl = static_cast<float>(1.0 / corpus.avg_doc_len());
  std::vector<std::pair<float, int32_t>> oracle;
  for (uint32_t d = 0; d < corpus.num_docs(); ++d) {
    float s = 0.0f;
    bool any = false;
    for (const ir::DocTerm& p : corpus.doc(d)) {
      for (uint32_t t : qterms) {
        if (p.term == t) {
          s += Bm25One(index.term(t).idf, static_cast<float>(p.tf),
                       static_cast<float>(corpus.doc_len(d)), 1.2f, 0.75f,
                       inv_avgdl);
          any = true;
        }
      }
    }
    if (any) oracle.push_back({s, static_cast<int32_t>(d)});
  }
  std::sort(oracle.begin(), oracle.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });

  ir::Query q;
  q.terms = qterms;
  ir::SearchOptions opts;
  opts.k = 5;
  for (ir::RunType type : ir::AllRunTypes()) {
    ir::SearchResult r;
    ASSERT_TRUE(engine.Search(q, type, opts, &r).ok())
        << ir::RunTypeName(type);
    ASSERT_FALSE(r.docids.empty()) << ir::RunTypeName(type);
    if (type == ir::RunType::kBoolAnd) {
      EXPECT_EQ(r.docids, (std::vector<int32_t>{0, 6}));
      continue;
    }
    if (type == ir::RunType::kBoolOr) {
      EXPECT_EQ(r.docids, (std::vector<int32_t>{0, 1, 3, 4, 6}));
      continue;
    }
    // Ranked runs agree with the oracle. TCMQ8 scores carry quantization
    // error (<= 3 terms * scale/2); the others are float-tight.
    const float tol = type == ir::RunType::kBm25TCMQ8
                          ? 3.0f * index.storage()->score_q8.q8_scale()
                          : 1e-4f;
    ASSERT_EQ(r.docids.size(), std::min<size_t>(5, oracle.size()));
    for (size_t i = 0; i < r.docids.size(); ++i) {
      EXPECT_EQ(r.docids[i], oracle[i].second)
          << ir::RunTypeName(type) << " rank " << i;
      EXPECT_NEAR(r.scores[i], oracle[i].first, tol)
          << ir::RunTypeName(type) << " rank " << i;
    }
  }
}

// Both two-pass shapes — pass 1 provably exact, and the forced full
// evaluation — agree on every ranked storage run.
TEST(RunTypes, ForcedPassShapesAgree) {
  ir::Corpus corpus;
  ASSERT_TRUE(ir::Corpus::Generate(SmallGeneratedOptions(), &corpus).ok());
  const std::string dir = FreshDir("passes");
  ir::InvertedIndex index;
  ir::BuildStats bstats;
  ASSERT_TRUE(index.BuildFromCorpus(corpus, dir, &bstats).ok());
  ir::SearchEngine engine(&index);

  ir::QueryGenOptions qopts;
  qopts.num_efficiency_queries = 30;
  ir::QueryGenerator gen(corpus, qopts);
  const ir::RunType types[] = {ir::RunType::kBm25T, ir::RunType::kBm25TC,
                               ir::RunType::kBm25TCM,
                               ir::RunType::kBm25TCMQ8};
  for (const auto& q : gen.EfficiencyQueries()) {
    for (ir::RunType type : types) {
      ir::SearchOptions all_short, all_long;
      all_short.twopass_df_cutoff = UINT32_MAX;  // everything selective
      all_long.twopass_df_cutoff = 1;            // everything probed/full
      ir::SearchResult a, b;
      ASSERT_TRUE(engine.Search(q, type, all_short, &a).ok());
      ASSERT_TRUE(engine.Search(q, type, all_long, &b).ok());
      // All-selective pass 1 is exact (no long lists to bound). The
      // all-long shape runs the full evaluation; both must return the
      // same ranking.
      EXPECT_FALSE(a.used_second_pass);
      ASSERT_EQ(a.docids.size(), b.docids.size()) << ir::RunTypeName(type);
      for (size_t i = 0; i < a.docids.size(); ++i) {
        ASSERT_NEAR(a.scores[i], b.scores[i], 1e-4)
            << ir::RunTypeName(type);
      }
    }
  }
}

// The quantized run keeps ranking quality: top-20 overlap vs TCM on the
// planted-topic corpus.
TEST(RunTypes, Q8TopKOverlapAtLeast19Of20) {
  ir::Corpus corpus;
  ASSERT_TRUE(ir::Corpus::Generate(SmallGeneratedOptions(), &corpus).ok());
  const std::string dir = FreshDir("q8overlap");
  ir::InvertedIndex index;
  ir::BuildStats bstats;
  ASSERT_TRUE(index.BuildFromCorpus(corpus, dir, &bstats).ok());
  ir::SearchEngine engine(&index);

  ir::QueryGenOptions qopts;
  qopts.num_eval_queries = 10;
  ir::QueryGenerator gen(corpus, qopts);
  ir::SearchOptions opts;
  opts.k = 20;
  for (const auto& q : gen.EvalQueries()) {
    ir::SearchResult tcm, q8;
    ASSERT_TRUE(engine.Search(q, ir::RunType::kBm25TCM, opts, &tcm).ok());
    ASSERT_TRUE(engine.Search(q, ir::RunType::kBm25TCMQ8, opts, &q8).ok());
    const std::set<int32_t> a(tcm.docids.begin(), tcm.docids.end());
    size_t overlap = 0;
    for (int32_t d : q8.docids) overlap += a.count(d);
    EXPECT_GE(overlap + 1, tcm.docids.size()) << "topic " << q.topic;
  }
}

TEST(RunTypes, StorageRunsFailCleanlyWithoutDirectory) {
  const ir::Corpus corpus = GoldenCorpus();
  ir::InvertedIndex index;
  ir::BuildStats bstats;
  ASSERT_TRUE(index.BuildFromCorpus(corpus, "", &bstats).ok());
  EXPECT_FALSE(index.has_storage());
  EXPECT_FALSE(index.EvictAll().ok());
  ir::SearchEngine engine(&index);
  ir::Query q;
  q.terms = {2};
  ir::SearchOptions opts;
  ir::SearchResult r;
  const Status s = engine.Search(q, ir::RunType::kBm25TC, opts, &r);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Cold/hot accounting and the Database surface
// ---------------------------------------------------------------------------

TEST(ColdRuns, IoChargesAreDeterministicAndVanishWhenHot) {
  ir::Corpus corpus;
  ASSERT_TRUE(ir::Corpus::Generate(SmallGeneratedOptions(), &corpus).ok());
  const std::string dir = FreshDir("coldhot");
  ir::InvertedIndex index;
  ir::BuildStats bstats;
  StorageOptions sopts;
  sopts.page_bytes = 4096;
  ASSERT_TRUE(index.BuildFromCorpus(corpus, dir, &bstats, sopts).ok());
  ir::SearchEngine engine(&index);
  ir::Query q;
  q.terms = {5, 40, 200};
  ir::SearchOptions opts;

  ir::SearchResult cold1, cold2, hot;
  ASSERT_TRUE(index.EvictAll().ok());
  ASSERT_TRUE(engine.Search(q, ir::RunType::kBm25TC, opts, &cold1).ok());
  EXPECT_GT(cold1.io_seconds, 0.0);
  ASSERT_TRUE(index.EvictAll().ok());
  ASSERT_TRUE(engine.Search(q, ir::RunType::kBm25TC, opts, &cold2).ok());
  EXPECT_DOUBLE_EQ(cold1.io_seconds, cold2.io_seconds);  // deterministic
  ASSERT_TRUE(engine.Search(q, ir::RunType::kBm25TC, opts, &hot).ok());
  EXPECT_EQ(hot.io_seconds, 0.0);  // fully pool-resident
  EXPECT_EQ(hot.docids, cold1.docids);
  // TotalSeconds = wall + simulated I/O.
  EXPECT_GE(cold1.TotalSeconds(), cold1.io_seconds);
}

TEST(DatabaseStorage, SurfacesBufferStatsAndEvictAll) {
  core::DatabaseOptions dopts;
  dopts.corpus = SmallGeneratedOptions();
  core::Database mem;
  ASSERT_TRUE(mem.Open(dopts).ok());
  EXPECT_FALSE(mem.has_storage());
  EXPECT_EQ(mem.disk(), nullptr);

  dopts.dir = FreshDir("db_stats");
  dopts.storage.page_bytes = 4096;
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());
  ASSERT_TRUE(db.has_storage());
  ASSERT_NE(db.disk(), nullptr);
  ir::Query q;
  q.terms = {3, 50};
  ir::SearchOptions opts;
  ir::SearchResult r;
  ASSERT_TRUE(db.index()->EvictAll().ok());
  ASSERT_TRUE(db.Search(q, ir::RunType::kBm25TCM, opts, &r).ok());
  EXPECT_GT(db.buffer_stats().misses, 0u);
  EXPECT_GT(db.disk()->seeks(), 0u);
  EXPECT_GT(r.stats.windows_decoded, 0u);
}

// ---------------------------------------------------------------------------
// Randomized eviction-schedule stress: 10K mixed Search() calls at a tiny
// page budget must be bit-identical to the all-hot oracle (pool = ∞).
// ---------------------------------------------------------------------------

TEST(EvictionStress, TinyPoolBitIdenticalToAllHotOracle) {
  ir::CorpusOptions copts = SmallGeneratedOptions();
  copts.num_docs = 600;
  copts.vocab_size = 900;
  copts.num_topics = 6;
  copts.relevant_docs_per_topic = 30;
  ir::Corpus corpus;
  ASSERT_TRUE(ir::Corpus::Generate(copts, &corpus).ok());
  const std::string dir = FreshDir("stress");

  // All-hot oracle: pool big enough to never evict.
  ir::InvertedIndex hot_index;
  ir::BuildStats bstats;
  StorageOptions hot_opts;
  hot_opts.pool_bytes = 1ull << 30;
  hot_opts.page_bytes = 4096;
  ASSERT_TRUE(
      hot_index.BuildFromCorpus(corpus, dir, &bstats, hot_opts).ok());

  // Stressed pool: 6 KB across 512-byte pages — far below any query's
  // working set, so the schedule constantly evicts mid-query.
  ir::InvertedIndex cold_index;
  StorageOptions tiny_opts;
  tiny_opts.pool_bytes = 6 * 1024;
  tiny_opts.page_bytes = 512;
  ASSERT_TRUE(
      cold_index.BuildFromCorpus(corpus, dir, &bstats, tiny_opts).ok());
  EXPECT_TRUE(bstats.reused_files);

  ir::SearchEngine hot(&hot_index), cold(&cold_index);
  const ir::RunType types[] = {ir::RunType::kBm25T, ir::RunType::kBm25TC,
                               ir::RunType::kBm25TCM,
                               ir::RunType::kBm25TCMQ8};
  Rng rng(20070601);
  uint64_t evictions_seen = 0;
  for (int call = 0; call < 10000; ++call) {
    ir::Query q;
    const uint32_t n_terms = 1 + static_cast<uint32_t>(rng.NextBounded(4));
    for (uint32_t i = 0; i < n_terms; ++i) {
      q.terms.push_back(
          static_cast<uint32_t>(rng.NextBounded(copts.vocab_size)));
    }
    ir::SearchOptions opts;
    opts.k = 1 + static_cast<uint32_t>(rng.NextBounded(10));
    opts.vector_size = 1u << (4 + rng.NextBounded(7));  // 16 .. 1024
    const ir::RunType type = types[rng.NextBounded(4)];
    // Occasionally hard-reset the stressed pool mid-schedule.
    if (rng.NextBounded(50) == 0) {
      ASSERT_TRUE(cold_index.EvictAll().ok());
    }
    ir::SearchResult want, got;
    ASSERT_TRUE(hot.Search(q, type, opts, &want).ok()) << "call " << call;
    ASSERT_TRUE(cold.Search(q, type, opts, &got).ok()) << "call " << call;
    // Bit-identical: same docids, same score bits, same match counts.
    ASSERT_EQ(got.docids, want.docids) << "call " << call;
    ASSERT_EQ(got.scores.size(), want.scores.size());
    if (!got.scores.empty()) {
      ASSERT_EQ(0, std::memcmp(got.scores.data(), want.scores.data(),
                               got.scores.size() * sizeof(float)))
          << "call " << call;
    }
    ASSERT_EQ(got.num_matches, want.num_matches) << "call " << call;
    ASSERT_EQ(got.used_second_pass, want.used_second_pass);
    evictions_seen = cold_index.buffer_manager()->stats().evictions;
  }
  // The schedule actually exercised eviction pressure, massively.
  EXPECT_GT(evictions_seen, 10000u);
  EXPECT_EQ(hot_index.buffer_manager()->stats().evictions, 0u);
}

}  // namespace
}  // namespace x100ir::storage
