// dist/ cluster tests (DESIGN.md §11): merge correctness against the
// single-engine oracle across cluster sizes, the shared-θ pruning proof,
// the deadline/straggler/fault battery, and a concurrent multi-stream
// soak. The identity discipline follows the segmented-read tests: paths
// that accumulate floats in the same order as the oracle are asserted
// *bitwise* (EXPECT_EQ on docids and scores); MaxScore paths — where the
// pruning threshold changes which terms are demoted and therefore the
// per-document float addition order — are asserted rank-equivalent within
// tolerance, with docids exact away from ties.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/timer.h"
#include "dist/cluster.h"
#include "ir/query_gen.h"

namespace x100ir {
namespace {

using dist::Cluster;
using dist::ClusterOptions;
using dist::DistResult;
using dist::DistSearchOptions;
using dist::StreamRunStats;
using ir::Corpus;
using ir::CorpusOptions;
using ir::Query;
using ir::QueryGenerator;
using ir::QueryGenOptions;
using ir::RunType;
using ir::SearchOptions;
using ir::SearchResult;

// Same shape as ir_test's small generated corpus: big enough that MaxScore
// pruning and multi-partition splits are non-trivial, small enough that
// the oracle runs stay fast under sanitizers.
CorpusOptions SmallGeneratedOptions() {
  CorpusOptions opts;
  opts.num_docs = 2000;
  opts.vocab_size = 3000;
  opts.zipf_s = 1.05;
  opts.doclen_mu = 3.5;
  opts.doclen_sigma = 0.5;
  opts.num_topics = 12;
  opts.terms_per_topic = 5;
  opts.relevant_docs_per_topic = 40;
  opts.topical_mass = 0.35;
  opts.topic_rank_min = 20;
  opts.topic_rank_max = 300;
  opts.seed = 2007;
  return opts;
}

const Corpus& SharedCorpus() {
  static const Corpus* corpus = [] {
    auto* c = new Corpus();
    Status s = Corpus::Generate(SmallGeneratedOptions(), c);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return c;
  }();
  return *corpus;
}

// The monolithic oracle: one engine over the whole corpus, in memory.
const core::Database& OracleDb() {
  static const core::Database* db = [] {
    auto* d = new core::Database();
    Status s = d->OpenWithCorpus(SharedCorpus(), "", storage::StorageOptions());
    EXPECT_TRUE(s.ok()) << s.ToString();
    return d;
  }();
  return *db;
}

std::vector<Query> TestQueries() {
  QueryGenOptions qopts;
  qopts.num_eval_queries = 24;
  qopts.num_efficiency_queries = 40;
  QueryGenerator gen(SharedCorpus(), qopts);
  std::vector<Query> queries = gen.EvalQueries();
  for (const Query& q : gen.EfficiencyQueries()) queries.push_back(q);
  return queries;
}

std::string TempClusterDir(const char* name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string tag =
      info != nullptr
          ? std::string(info->test_suite_name()) + "_" + info->name()
          : std::string("global");
  return std::string(::testing::TempDir()) + "/x100ir_dist_" + tag + "_" +
         name;
}

// Same contract as ir_test's helper: scores within tol rank-by-rank,
// docids exact except inside tied score runs (where the oracle's order is
// only defined up to the tolerance).
void ExpectRankingsEquivalent(const std::vector<int32_t>& docids_a,
                              const std::vector<float>& scores_a,
                              const std::vector<int32_t>& docids_b,
                              const std::vector<float>& scores_b,
                              float tol) {
  ASSERT_EQ(docids_a.size(), docids_b.size());
  ASSERT_EQ(scores_a.size(), scores_b.size());
  const size_t n = docids_a.size();
  for (size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(scores_a[i], scores_b[i], tol) << "rank " << i;
    const bool tied_prev =
        i > 0 && std::abs(scores_a[i] - scores_a[i - 1]) <= tol;
    const bool tied_next =
        i + 1 < n && std::abs(scores_a[i] - scores_a[i + 1]) <= tol;
    if (!tied_prev && !tied_next && i + 1 < n) {
      EXPECT_EQ(docids_a[i], docids_b[i]) << "rank " << i;
    }
  }
}

// Non-asserting equivalence check for the multi-threaded soak (gtest
// assertions are not thread-safe; drivers count mismatches instead).
bool RankingsEquivalent(const std::vector<int32_t>& docids_a,
                        const std::vector<float>& scores_a,
                        const std::vector<int32_t>& docids_b,
                        const std::vector<float>& scores_b, float tol) {
  if (docids_a.size() != docids_b.size()) return false;
  if (scores_a.size() != scores_b.size()) return false;
  const size_t n = docids_a.size();
  for (size_t i = 0; i < n; ++i) {
    if (std::abs(scores_a[i] - scores_b[i]) > tol) return false;
    const bool tied_prev =
        i > 0 && std::abs(scores_a[i] - scores_a[i - 1]) <= tol;
    const bool tied_next =
        i + 1 < n && std::abs(scores_a[i] - scores_a[i + 1]) <= tol;
    if (!tied_prev && !tied_next && i + 1 < n &&
        docids_a[i] != docids_b[i]) {
      return false;
    }
  }
  return true;
}

ClusterOptions InMemoryCluster(uint32_t nodes) {
  ClusterOptions copts;
  copts.num_partitions = nodes;
  copts.total_partitions = nodes;
  copts.cores_per_node = 2;
  return copts;
}

// ---------------------------------------------------------------------------
// Satellite units: ExecStats::operator+= and SearchResult::MergeAccounting
// ---------------------------------------------------------------------------

TEST(ExecStats, PlusEqualsSumsEveryCounter) {
  vec::ExecStats a;
  a.windows_decoded = 1;
  a.windows_skipped = 2;
  a.tf_windows_decoded = 3;
  a.primitive_calls = 4;
  a.vectors_pruned = 5;
  a.docs_probed = 6;
  vec::ExecStats b;
  b.windows_decoded = 10;
  b.windows_skipped = 20;
  b.tf_windows_decoded = 30;
  b.primitive_calls = 40;
  b.vectors_pruned = 50;
  b.docs_probed = 60;
  a += b;
  EXPECT_EQ(a.windows_decoded, 11u);
  EXPECT_EQ(a.windows_skipped, 22u);
  EXPECT_EQ(a.tf_windows_decoded, 33u);
  EXPECT_EQ(a.primitive_calls, 44u);
  EXPECT_EQ(a.vectors_pruned, 55u);
  EXPECT_EQ(a.docs_probed, 66u);
  // The Add alias (pre-existing callers) routes through the operator.
  vec::ExecStats c;
  c.Add(b);
  EXPECT_EQ(c.docs_probed, 60u);
}

TEST(SearchResultTest, MergeAccountingSumsAndNeverTouchesRanking) {
  SearchResult into;
  into.docids = {7, 8};
  into.scores = {2.0f, 1.0f};
  into.num_matches = 5;
  into.io_seconds = 0.25;
  into.stats.docs_probed = 3;
  SearchResult from;
  from.docids = {99};
  from.scores = {9.0f};
  from.num_matches = 11;
  from.used_second_pass = true;
  from.io_seconds = 0.5;
  from.stats.docs_probed = 4;
  into.MergeAccounting(from);
  EXPECT_EQ(into.num_matches, 16u);
  EXPECT_TRUE(into.used_second_pass);
  EXPECT_DOUBLE_EQ(into.io_seconds, 0.75);
  EXPECT_EQ(into.stats.docs_probed, 7u);
  // Ranking payload is merge-policy-specific and must pass through.
  EXPECT_EQ(into.docids, (std::vector<int32_t>{7, 8}));
  EXPECT_EQ(into.scores, (std::vector<float>{2.0f, 1.0f}));
}

// ---------------------------------------------------------------------------
// Open validation and partition geometry
// ---------------------------------------------------------------------------

TEST(ClusterOpen, RejectsBadOptions) {
  const Corpus& corpus = SharedCorpus();
  Cluster cluster;
  ClusterOptions copts = InMemoryCluster(0);
  copts.total_partitions = 4;
  EXPECT_EQ(cluster.Open(corpus, "", copts).code(),
            StatusCode::kInvalidArgument);
  copts = InMemoryCluster(4);
  copts.total_partitions = 2;  // more nodes than partitions
  EXPECT_EQ(cluster.Open(corpus, "", copts).code(),
            StatusCode::kInvalidArgument);
  copts = InMemoryCluster(2);
  copts.speed_factors = {1.0};  // one entry for two nodes
  EXPECT_EQ(cluster.Open(corpus, "", copts).code(),
            StatusCode::kInvalidArgument);
  Query q;
  q.terms = {1};
  DistResult r;
  EXPECT_EQ(cluster.Search(q, RunType::kBm25, DistSearchOptions(), &r).code(),
            StatusCode::kInvalidArgument);  // never opened
}

TEST(ClusterOpen, PartitionsAreContiguousAndStatsAreGlobal) {
  const Corpus& corpus = SharedCorpus();
  for (uint32_t n : {1u, 3u, 8u}) {
    Cluster cluster;
    ASSERT_TRUE(cluster.Open(corpus, "", InMemoryCluster(n)).ok());
    ASSERT_EQ(cluster.num_nodes(), n);
    uint32_t covered = 0;
    for (uint32_t i = 0; i < n; ++i) {
      EXPECT_EQ(cluster.node_base(i), static_cast<int32_t>(covered));
      covered += cluster.node_num_docs(i);
    }
    EXPECT_EQ(covered, corpus.num_docs());
    // Full-coverage cluster: the global scoring model is the corpus's own,
    // bit for bit — this is what makes shard scores oracle-comparable.
    const ir::CollectionStats& stats = cluster.collection_stats();
    EXPECT_EQ(stats.num_docs, corpus.num_docs());
    EXPECT_EQ(stats.avg_doc_len, corpus.avg_doc_len());
    ASSERT_EQ(stats.df.size(), corpus.vocab_size());
    std::vector<uint32_t> df(corpus.vocab_size(), 0);
    for (uint32_t d = 0; d < corpus.num_docs(); ++d) {
      for (const ir::DocTerm& p : corpus.doc(d)) ++df[p.term];
    }
    EXPECT_EQ(stats.df, df);
  }
}

TEST(ClusterOpen, FewerNodesServeAPrefixOfThePartitions) {
  // The paper's "using less servers" configuration: partitions stay
  // 1/total-sized, so a 2-of-8 cluster serves a quarter of the corpus.
  const Corpus& corpus = SharedCorpus();
  ClusterOptions copts = InMemoryCluster(2);
  copts.total_partitions = 8;
  Cluster cluster;
  ASSERT_TRUE(cluster.Open(corpus, "", copts).ok());
  ASSERT_EQ(cluster.num_nodes(), 2u);
  const uint32_t served =
      cluster.node_num_docs(0) + cluster.node_num_docs(1);
  EXPECT_EQ(served, corpus.num_docs() / 4);
  EXPECT_EQ(cluster.collection_stats().num_docs, served);
}

// ---------------------------------------------------------------------------
// Merge correctness vs the single-engine oracle
// ---------------------------------------------------------------------------

// The exact union path accumulates every document's score in ascending
// term order inside whichever shard wholly owns the document — the same
// float addition order as the monolithic plan — and the ranked merge is
// selection, never re-scoring. So distributed results must be BITWISE
// identical to the oracle: same docids, same float scores, same match
// count. Boolean runs are order-preserving concatenations: same docids.
TEST(ClusterMerge, ExactPathsBitwiseMatchOracleAcrossClusterSizes) {
  const core::Database& oracle = OracleDb();
  const std::vector<Query> queries = TestQueries();
  for (uint32_t n : {1u, 2u, 4u, 8u}) {
    Cluster cluster;
    ASSERT_TRUE(cluster.Open(SharedCorpus(), "", InMemoryCluster(n)).ok());
    for (const Query& q : queries) {
      for (RunType type :
           {RunType::kBoolAnd, RunType::kBoolOr, RunType::kBm25}) {
        SearchOptions sopts;
        sopts.maxscore_bm25 = false;  // exact union scoring
        SearchResult expect;
        ASSERT_TRUE(oracle.Search(q, type, sopts, &expect).ok());
        DistSearchOptions dopts;
        dopts.search = sopts;
        DistResult got;
        ASSERT_TRUE(cluster.Search(q, type, dopts, &got).ok());
        EXPECT_EQ(got.merged.docids, expect.docids)
            << "nodes=" << n << " type=" << RunTypeName(type);
        EXPECT_EQ(got.merged.scores, expect.scores)
            << "nodes=" << n << " type=" << RunTypeName(type);
        EXPECT_EQ(got.merged.num_matches, expect.num_matches)
            << "nodes=" << n << " type=" << RunTypeName(type);
        EXPECT_FALSE(got.partial);
        EXPECT_EQ(got.shards_ok, n);
      }
    }
  }
}

// MaxScore paths: θ changes which terms are demoted, which changes the
// per-document float accumulation order — last-ulp differences vs the
// oracle are expected, rankings must be equivalent. Both θ modes.
TEST(ClusterMerge, MaxScoreBothThetaModesMatchOracle) {
  const core::Database& oracle = OracleDb();
  const std::vector<Query> queries = TestQueries();
  for (uint32_t n : {2u, 4u, 8u}) {
    Cluster cluster;
    ASSERT_TRUE(cluster.Open(SharedCorpus(), "", InMemoryCluster(n)).ok());
    for (const Query& q : queries) {
      SearchResult expect;
      ASSERT_TRUE(oracle.Search(q, RunType::kBm25, SearchOptions(), &expect)
                      .ok());
      for (bool share : {false, true}) {
        DistSearchOptions dopts;
        dopts.share_theta = share;
        DistResult got;
        ASSERT_TRUE(cluster.Search(q, RunType::kBm25, dopts, &got).ok());
        ExpectRankingsEquivalent(got.merged.docids, got.merged.scores,
                                 expect.docids, expect.scores, 1e-4f);
      }
    }
  }
}

// A one-node cluster runs the oracle's own plan over the oracle's own
// docid space (base 0): every mode — exact, MaxScore, shared-θ (the only
// shard seeds itself with its own bound, a no-op) — must be bitwise.
TEST(ClusterMerge, SingleNodeClusterIsBitwiseInAllModes) {
  const core::Database& oracle = OracleDb();
  Cluster cluster;
  ASSERT_TRUE(cluster.Open(SharedCorpus(), "", InMemoryCluster(1)).ok());
  for (const Query& q : TestQueries()) {
    for (bool maxscore : {false, true}) {
      for (bool share : {false, true}) {
        SearchOptions sopts;
        sopts.maxscore_bm25 = maxscore;
        SearchResult expect;
        ASSERT_TRUE(oracle.Search(q, RunType::kBm25, sopts, &expect).ok());
        DistSearchOptions dopts;
        dopts.search = sopts;
        dopts.share_theta = share;
        DistResult got;
        ASSERT_TRUE(cluster.Search(q, RunType::kBm25, dopts, &got).ok());
        EXPECT_EQ(got.merged.docids, expect.docids);
        EXPECT_EQ(got.merged.scores, expect.scores);
        EXPECT_EQ(got.merged.num_matches, expect.num_matches);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Shared-θ pruning proof
// ---------------------------------------------------------------------------

// Sequential scatter makes the θ protocol deterministic: shard i starts
// from the final bound published by shards 0..i-1. Seeded shards demote
// terms earlier and select harder, so across the batch the cluster
// generates strictly fewer candidates (num_matches counts exactly the
// documents that survive into candidate vectors) — while merging to the
// same rankings. This is the counter-level proof that θ sharing buys real
// work reduction, not just plausible speedups.
TEST(SharedThetaTest, SequentialSeedingPrunesStrictlyMoreCandidates) {
  Cluster cluster;
  ASSERT_TRUE(cluster.Open(SharedCorpus(), "", InMemoryCluster(8)).ok());
  const std::vector<Query> queries = TestQueries();
  uint64_t cand_indep = 0, cand_shared = 0;
  uint64_t pruned_indep = 0, pruned_shared = 0;
  uint64_t bmx_indep = 0, bmx_shared = 0;
  for (const Query& q : queries) {
    DistSearchOptions dopts;
    dopts.sequential = true;
    dopts.share_theta = false;
    DistResult indep;
    ASSERT_TRUE(cluster.Search(q, RunType::kBm25, dopts, &indep).ok());
    dopts.share_theta = true;
    DistResult shared;
    ASSERT_TRUE(cluster.Search(q, RunType::kBm25, dopts, &shared).ok());
    // Same answer...
    ExpectRankingsEquivalent(shared.merged.docids, shared.merged.scores,
                             indep.merged.docids, indep.merged.scores,
                             1e-4f);
    // ...never more candidates per query (a higher θ floor can only
    // demote terms earlier and cut the candidate select harder)...
    EXPECT_LE(shared.merged.num_matches, indep.merged.num_matches);
    cand_indep += indep.merged.num_matches;
    cand_shared += shared.merged.num_matches;
    pruned_indep += indep.merged.stats.vectors_pruned;
    pruned_shared += shared.merged.stats.vectors_pruned;
    bmx_indep += indep.merged.stats.windows_blockmax_skipped;
    bmx_shared += shared.merged.stats.windows_blockmax_skipped;
  }
  // ...strictly fewer candidates across the batch, and at least as many
  // posting vectors skipped outright. (windows_decoded is deliberately
  // NOT asserted: earlier demotion drops essential-stream read-ahead that
  // probes partially re-decode, so that counter is not monotone in θ —
  // the candidate count is the per-document scoring work and is.)
  EXPECT_LT(cand_shared, cand_indep);
  EXPECT_GE(pruned_shared, pruned_indep);
  // The same θ floor feeds SearchBm25MaxScore's per-window block-max test
  // (DESIGN.md §12): a shard seeded with the global k-th-best rejects weak
  // windows from its very first refill, so across the batch sharing never
  // block-max-skips less. (Per query the counter can wobble — earlier
  // demotion also truncates essential streams — hence batch-level only.)
  EXPECT_GE(bmx_shared, bmx_indep);
}

// ---------------------------------------------------------------------------
// Deadline / straggler / fault battery
// ---------------------------------------------------------------------------

// Expected partial merge: the surviving shards' results merged by hand
// under the engine's rank order. Built from per-node searches so the test
// does not re-implement shard execution.
void ExpectedPartialMerge(const Cluster& cluster, const Query& q, uint32_t k,
                          uint32_t dead_node, std::vector<int32_t>* docids,
                          std::vector<float>* scores) {
  struct Cand {
    int32_t docid;
    float score;
  };
  std::vector<Cand> all;
  for (uint32_t i = 0; i < cluster.num_nodes(); ++i) {
    if (i == dead_node) continue;
    SearchOptions sopts;
    sopts.k = k;
    sopts.global_stats = &cluster.collection_stats();
    SearchResult r;
    ASSERT_TRUE(cluster.node_db(i).Search(q, RunType::kBm25, sopts, &r).ok());
    for (size_t j = 0; j < r.docids.size(); ++j) {
      all.push_back({cluster.node_base(i) + r.docids[j], r.scores[j]});
    }
  }
  std::sort(all.begin(), all.end(), [](const Cand& a, const Cand& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.docid < b.docid;
  });
  if (all.size() > k) all.resize(k);
  docids->clear();
  scores->clear();
  for (const Cand& c : all) {
    docids->push_back(c.docid);
    scores->push_back(c.score);
  }
}

TEST(FaultBattery, ShardFaultFailsTheQueryUnlessPartialsAllowed) {
  Cluster cluster;
  ASSERT_TRUE(cluster.Open(SharedCorpus(), "", InMemoryCluster(4)).ok());
  Query q = TestQueries().front();

  DistSearchOptions dopts;
  dopts.fault_mask = 1u << 2;
  DistResult r;
  // Fail-fast policy: one dead shard kills the query with its error.
  Status s = cluster.Search(q, RunType::kBm25, dopts, &r);
  EXPECT_EQ(s.code(), StatusCode::kIOError);

  // Partial policy: responsive shards merge, flagged partial, and the
  // merge equals the surviving shards' hand-built merge exactly.
  dopts.allow_partial = true;
  ASSERT_TRUE(cluster.Search(q, RunType::kBm25, dopts, &r).ok());
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.shards_ok, 3u);
  EXPECT_EQ(r.shards_failed, 1u);
  EXPECT_EQ(r.shard_status[2].code(), StatusCode::kIOError);
  EXPECT_EQ(r.shard_service_ms[2], 0.0);
  std::vector<int32_t> want_d;
  std::vector<float> want_s;
  ExpectedPartialMerge(cluster, q, dopts.search.k, 2, &want_d, &want_s);
  EXPECT_EQ(r.merged.docids, want_d);
  EXPECT_EQ(r.merged.scores, want_s);
  // No result can come from the dead shard's docid range.
  const int32_t dead_begin = cluster.node_base(2);
  const int32_t dead_end =
      dead_begin + static_cast<int32_t>(cluster.node_num_docs(2));
  for (int32_t d : r.merged.docids) {
    EXPECT_TRUE(d < dead_begin || d >= dead_end) << d;
  }

  // Partial policy cannot save a fully dead cluster.
  dopts.fault_mask = 0xF;
  s = cluster.Search(q, RunType::kBm25, dopts, &r);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(r.shards_ok, 0u);
}

TEST(FaultBattery, DeadlineCutsStragglersAndPartialPolicyDecides) {
  Cluster cluster;
  ASSERT_TRUE(cluster.Open(SharedCorpus(), "", InMemoryCluster(4)).ok());
  Query q = TestQueries().front();

  // Node 1 straggles 10x past the deadline. Fail-fast: the query dies
  // with DeadlineExceeded from the straggler.
  DistSearchOptions dopts;
  dopts.straggle_mask = 1u << 1;
  dopts.straggle_ms = 500.0;
  dopts.deadline_seconds = 0.05;
  DistResult r;
  Status s = cluster.Search(q, RunType::kBm25, dopts, &r);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);

  // Partial policy: the three responsive shards answer inside the
  // deadline; the straggler is dropped, not waited out to completion.
  dopts.allow_partial = true;
  ASSERT_TRUE(cluster.Search(q, RunType::kBm25, dopts, &r).ok());
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.shards_ok, 3u);
  EXPECT_EQ(r.shard_status[1].code(), StatusCode::kDeadlineExceeded);
  std::vector<int32_t> want_d;
  std::vector<float> want_s;
  ExpectedPartialMerge(cluster, q, dopts.search.k, 1, &want_d, &want_s);
  EXPECT_EQ(r.merged.docids, want_d);
  EXPECT_EQ(r.merged.scores, want_s);

  // A generous deadline lets the straggler finish: complete answer.
  dopts.deadline_seconds = 30.0;
  dopts.straggle_ms = 20.0;
  dopts.allow_partial = false;
  ASSERT_TRUE(cluster.Search(q, RunType::kBm25, dopts, &r).ok());
  EXPECT_FALSE(r.partial);
  EXPECT_EQ(r.shards_ok, 4u);
  // The straggle charge shows up in the straggler's service time.
  EXPECT_GE(r.shard_service_ms[1], 20.0);
}

TEST(FaultBattery, AlreadyExpiredDeadlineFailsEveryShardPromptly) {
  Cluster cluster;
  ASSERT_TRUE(cluster.Open(SharedCorpus(), "", InMemoryCluster(2)).ok());
  Query q = TestQueries().front();
  DistSearchOptions dopts;
  dopts.allow_partial = true;
  DistResult r;
  // A 1 ns budget is expired by the time any shard reaches the engine's
  // first deadline checkpoint: every shard fails, and even the partial
  // policy has nothing to merge.
  dopts.deadline_seconds = 1e-9;
  Status s = cluster.Search(q, RunType::kBm25, dopts, &r);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.shards_ok, 0u);
}

// ---------------------------------------------------------------------------
// Service-time model
// ---------------------------------------------------------------------------

TEST(ServiceModel, StretchFollowsSpeedFactorsAndWarmUpDoesNot) {
  ClusterOptions copts = InMemoryCluster(2);
  copts.service_scale = 2000.0;  // stretch real μs-scale queries to ms
  copts.speed_factors = {1.0, 4.0};
  Cluster cluster;
  ASSERT_TRUE(cluster.Open(SharedCorpus(), "", copts).ok());
  Query q = TestQueries().front();
  DistSearchOptions dopts;
  DistResult r;
  ASSERT_TRUE(cluster.Search(q, RunType::kBm25, dopts, &r).ok());
  // The slow node's simulated service time scales with its factor, and
  // the scatter-gather latency is bounded below by the slowest shard.
  EXPECT_GT(r.shard_service_ms[1], r.shard_service_ms[0]);
  EXPECT_GE(r.latency_ms, r.shard_service_ms[1] * 0.5);
}

TEST(ServiceModel, NetworkChargeIsAddedToLatencyOnly) {
  ClusterOptions copts = InMemoryCluster(2);
  copts.network_ms = 250.0;
  Cluster cluster;
  ASSERT_TRUE(cluster.Open(SharedCorpus(), "", copts).ok());
  Query q = TestQueries().front();
  DistResult r;
  WallTimer timer;
  ASSERT_TRUE(cluster.Search(q, RunType::kBm25, DistSearchOptions(), &r).ok());
  // The charge appears in the reported latency but is never slept out.
  EXPECT_GE(r.latency_ms, 250.0);
  EXPECT_LT(timer.ElapsedSeconds(), 0.2);
}

// ---------------------------------------------------------------------------
// On-disk partitions
// ---------------------------------------------------------------------------

TEST(ClusterStorage, PartitionIndexesBuildOnceAndReuseOnReopen) {
  const std::string dir = TempClusterDir("reuse");
  std::filesystem::remove_all(dir);
  ClusterOptions copts = InMemoryCluster(4);
  copts.storage.pool_bytes = 8ull << 20;
  {
    Cluster cluster;
    ASSERT_TRUE(cluster.Open(SharedCorpus(), dir, copts).ok());
    for (uint32_t i = 0; i < 4; ++i) {
      EXPECT_FALSE(cluster.node_db(i).build_stats().reused_files) << i;
    }
  }
  {
    Cluster cluster;
    ASSERT_TRUE(cluster.Open(SharedCorpus(), dir, copts).ok());
    // Same corpus slice fingerprints: every node adopts its files.
    for (uint32_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(cluster.node_db(i).build_stats().reused_files) << i;
    }
    // And the storage-era runs execute through each node's private pool.
    Query q = TestQueries().front();
    DistSearchOptions dopts;
    DistResult r;
    ASSERT_TRUE(cluster.Search(q, RunType::kBm25TCMQ8, dopts, &r).ok());
    EXPECT_FALSE(r.merged.docids.empty());
    EXPECT_EQ(r.shards_ok, 4u);
  }
  std::filesystem::remove_all(dir);
}

// kBm25T/TC recompute scores from tf columns under the cluster-global
// stats, so the distributed rankings must be equivalent to the monolithic
// storage run. (TCM/TCMQ8 bake partition-local stats into materialized
// columns at build time — a documented substitution, not asserted here.)
TEST(ClusterStorage, TwoPassStorageRunMatchesOracle) {
  const std::string cdir = TempClusterDir("cluster");
  const std::string odir = TempClusterDir("oracle");
  std::filesystem::remove_all(cdir);
  std::filesystem::remove_all(odir);
  ClusterOptions copts = InMemoryCluster(4);
  copts.storage.pool_bytes = 8ull << 20;
  Cluster cluster;
  ASSERT_TRUE(cluster.Open(SharedCorpus(), cdir, copts).ok());
  core::Database oracle;
  ASSERT_TRUE(
      oracle.OpenWithCorpus(SharedCorpus(), odir, copts.storage).ok());
  const std::vector<Query> queries = TestQueries();
  for (size_t i = 0; i < queries.size(); i += 7) {
    const Query& q = queries[i];
    SearchResult expect;
    ASSERT_TRUE(
        oracle.Search(q, RunType::kBm25TC, SearchOptions(), &expect).ok());
    DistResult got;
    ASSERT_TRUE(
        cluster.Search(q, RunType::kBm25TC, DistSearchOptions(), &got).ok());
    ExpectRankingsEquivalent(got.merged.docids, got.merged.scores,
                             expect.docids, expect.scores, 1e-4f);
  }
  std::filesystem::remove_all(cdir);
  std::filesystem::remove_all(odir);
}

// ---------------------------------------------------------------------------
// Concurrent streams
// ---------------------------------------------------------------------------

// Seeded soak: four closed-loop driver threads hammer one cluster with
// shared-θ scatter-gather queries while the main thread knows every
// query's oracle answer. Zero mismatches and zero errors required. (The θ
// channel is per-query state; concurrent queries must never bleed bounds
// into each other — a bleed would surface here as a pruned-away result.)
TEST(ConcurrentStreams, SharedThetaSoakMatchesOracleUnderConcurrency) {
  const core::Database& oracle = OracleDb();
  Cluster cluster;
  ASSERT_TRUE(cluster.Open(SharedCorpus(), "", InMemoryCluster(4)).ok());
  const std::vector<Query> queries = TestQueries();
  std::vector<SearchResult> expected(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(oracle
                    .Search(queries[i], RunType::kBm25, SearchOptions(),
                            &expected[i])
                    .ok());
  }
  constexpr int kDrivers = 4;
  constexpr int kRounds = 3;
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < kDrivers; ++t) {
    drivers.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= queries.size() * kRounds) return;
        const size_t qi = i % queries.size();
        DistSearchOptions dopts;
        dopts.share_theta = true;
        DistResult r;
        if (!cluster.Search(queries[qi], RunType::kBm25, dopts, &r).ok()) {
          ++errors;
          continue;
        }
        if (!RankingsEquivalent(r.merged.docids, r.merged.scores,
                                expected[qi].docids, expected[qi].scores,
                                1e-4f)) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& d : drivers) d.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(ConcurrentStreams, RunStreamsDrainsTheBatchAndAggregates) {
  ClusterOptions copts = InMemoryCluster(4);
  copts.service_scale = 100.0;
  copts.speed_factors = {1.0, 1.1, 1.3, 1.6};
  Cluster cluster;
  ASSERT_TRUE(cluster.Open(SharedCorpus(), "", copts).ok());
  std::vector<Query> queries = TestQueries();
  queries.resize(24);
  ASSERT_TRUE(cluster.WarmUp(queries, RunType::kBm25, 20).ok());
  StreamRunStats stats;
  ASSERT_TRUE(cluster
                  .RunStreams(queries, RunType::kBm25, 20, /*streams=*/4,
                              /*share_theta=*/true, &stats)
                  .ok());
  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.query_latency_ms.n, queries.size());
  EXPECT_GT(stats.query_latency_ms.Mean(), 0.0);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.AmortizedMs(), 0.0);
  // Heterogeneous speed factors order the per-node service means.
  ASSERT_EQ(stats.node_service_ms.size(), 4u);
  EXPECT_GT(stats.MaxNodeMs(), 0.0);
  EXPECT_LE(stats.MinNodeMs(), stats.AvgNodeMs());
  EXPECT_LE(stats.AvgNodeMs(), stats.MaxNodeMs());
  // Cluster-wide ExecStats aggregated across every shard of every query.
  EXPECT_GT(stats.exec.windows_decoded, 0u);
  EXPECT_GT(stats.exec.primitive_calls, 0u);
}

}  // namespace
}  // namespace x100ir
