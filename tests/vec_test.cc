// Correctness tests for the vectorized primitive layer: map/select
// primitives (dense + selection-vector paths), the expression compiler,
// scan/select operators over memory and compressed-block sources, the
// merge-join galloping kernel vs a naive reference, and fused-vs-composed
// BM25 agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "compress/pfor.h"
#include "ir/bm25.h"
#include "vec/expression.h"
#include "vec/mem_source.h"
#include "vec/merge_join.h"
#include "vec/primitives.h"
#include "vec/scan.h"
#include "vec/select.h"
#include "vec/streaming_merge.h"

namespace x100ir::vec {
namespace {

std::vector<int32_t> RandomInts(size_t n, uint64_t bound, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> v(n);
  for (auto& x : v) x = static_cast<int32_t>(rng.NextBounded(bound));
  return v;
}

std::vector<int32_t> SortedUnique(size_t n, uint32_t max_gap, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> v(n);
  int32_t cur = -1;
  for (auto& x : v) {
    cur += 1 + static_cast<int32_t>(rng.NextBounded(max_gap));
    x = cur;
  }
  return v;
}

// ---------------------------------------------------------------------------
// Map / select primitives
// ---------------------------------------------------------------------------

TEST(Primitives, MapColColDense) {
  const uint32_t n = 1000;
  auto a = RandomInts(n, 1000, 1);
  auto b = RandomInts(n, 1000, 2);
  std::vector<int32_t> res(n, -1);
  MapColCol<AddOp, int32_t, int32_t, int32_t>(n, nullptr, 0, res.data(),
                                              a.data(), b.data());
  for (uint32_t i = 0; i < n; ++i) ASSERT_EQ(res[i], a[i] + b[i]) << i;

  std::vector<float> fa(n), fres(n);
  for (uint32_t i = 0; i < n; ++i) fa[i] = static_cast<float>(a[i]) * 0.5f;
  MapColVal<MulOp, float, float, float>(n, nullptr, 0, fres.data(), fa.data(),
                                        3.0f);
  for (uint32_t i = 0; i < n; ++i) ASSERT_EQ(fres[i], fa[i] * 3.0f) << i;
}

TEST(Primitives, MapWritesThroughSelectionVectorOnly) {
  const uint32_t n = 256;
  auto a = RandomInts(n, 100, 3);
  // Sparse selection: every 7th row.
  std::vector<sel_t> sel;
  for (uint32_t i = 0; i < n; i += 7) sel.push_back(i);
  std::vector<int32_t> res(n, -777);
  MapColVal<AddOp, int32_t, int32_t, int32_t>(
      n, sel.data(), static_cast<uint32_t>(sel.size()), res.data(), a.data(),
      10);
  std::set<sel_t> selected(sel.begin(), sel.end());
  for (uint32_t i = 0; i < n; ++i) {
    if (selected.count(i)) {
      ASSERT_EQ(res[i], a[i] + 10) << i;
    } else {
      // Unselected rows must be untouched — maps write through sel, never
      // compact (DESIGN.md §4).
      ASSERT_EQ(res[i], -777) << i;
    }
  }
}

TEST(Primitives, EmptyVectors) {
  std::vector<int32_t> res(4, 9);
  MapColVal<AddOp, int32_t, int32_t, int32_t>(0, nullptr, 0, res.data(),
                                              nullptr, 1);
  sel_t dummy = 0;
  MapColVal<AddOp, int32_t, int32_t, int32_t>(4, &dummy, 0, res.data(),
                                              nullptr, 1);
  EXPECT_EQ(res, (std::vector<int32_t>{9, 9, 9, 9}));
  std::vector<sel_t> out(4);
  EXPECT_EQ(0u, (SelectColVal<GtCmp, int32_t>(0, nullptr, 0, out.data(),
                                              nullptr, 5)));
  EXPECT_EQ(0u, (SelectColVal<GtCmp, int32_t>(4, &dummy, 0, out.data(),
                                              nullptr, 5)));
}

TEST(Primitives, SelectColValMatchesReference) {
  const uint32_t n = 4096;
  auto a = RandomInts(n, 1000, 5);
  std::vector<sel_t> out(n);
  for (int32_t threshold : {-1, 0, 500, 999, 2000}) {
    const uint32_t k = SelectColVal<GtCmp, int32_t>(n, nullptr, 0, out.data(),
                                                    a.data(), threshold);
    std::vector<sel_t> expected;
    for (uint32_t i = 0; i < n; ++i) {
      if (a[i] > threshold) expected.push_back(i);
    }
    ASSERT_EQ(std::vector<sel_t>(out.begin(), out.begin() + k), expected)
        << "threshold " << threshold;
  }
}

TEST(Primitives, SelectComposesWithSelectionVector) {
  const uint32_t n = 500;
  auto a = RandomInts(n, 100, 7);
  std::vector<sel_t> even;
  for (uint32_t i = 0; i < n; i += 2) even.push_back(i);
  std::vector<sel_t> out(n);
  const uint32_t k = SelectColVal<LtCmp, int32_t>(
      n, even.data(), static_cast<uint32_t>(even.size()), out.data(),
      a.data(), 50);
  // Output must be the even positions with a[i] < 50, ascending — i.e. a
  // subset of the incoming selection vector, usable as the next one.
  std::vector<sel_t> expected;
  for (sel_t i : even) {
    if (a[i] < 50) expected.push_back(i);
  }
  ASSERT_EQ(std::vector<sel_t>(out.begin(), out.begin() + k), expected);
}

// ---------------------------------------------------------------------------
// Expression compiler
// ---------------------------------------------------------------------------

Batch MakeTwoColBatch(Vector* c0, Vector* c1, uint32_t n) {
  Batch b;
  b.count = n;
  b.columns = {c0, c1};
  return b;
}

TEST(Expression, ComposedArithmeticMatchesScalar) {
  const uint32_t n = 777;
  auto x = RandomInts(n, 50, 11);
  auto y = RandomInts(n, 50, 13);
  Schema schema;
  schema.Add("x", TypeId::kI32);
  schema.Add("y", TypeId::kI32);
  Vector vx(TypeId::kI32, n), vy(TypeId::kI32, n);
  vx.Fill(x.data(), n);
  vy.Fill(y.data(), n);
  Batch batch = MakeTwoColBatch(&vx, &vy, n);

  // (x + y) * 3 - y, in i32.
  auto e = Expr::Call(
      "sub", {Expr::Call("mul", {Expr::Call("add", {Expr::Col("x"),
                                                    Expr::Col("y")}),
                                 Expr::ConstI32(3)}),
              Expr::Col("y")});
  auto compiled_or = CompiledExpr::Compile(e, schema, n);
  ASSERT_TRUE(compiled_or.ok()) << compiled_or.status().ToString();
  auto compiled = std::move(compiled_or.value());
  EXPECT_EQ(compiled->out_type(), TypeId::kI32);
  const Vector* out = nullptr;
  ASSERT_TRUE(compiled->Eval(batch, &out).ok());
  for (uint32_t i = 0; i < n; ++i) {
    ASSERT_EQ(out->Data<int32_t>()[i], (x[i] + y[i]) * 3 - y[i]) << i;
  }
}

TEST(Expression, RespectsSelectionVector) {
  const uint32_t n = 100;
  auto x = RandomInts(n, 50, 17);
  Schema schema;
  schema.Add("x", TypeId::kI32);
  Vector vx(TypeId::kI32, n);
  vx.Fill(x.data(), n);
  std::vector<sel_t> sel = {3, 10, 42, 99};
  Batch batch;
  batch.count = n;
  batch.columns = {&vx};
  batch.sel = sel.data();
  batch.sel_count = static_cast<uint32_t>(sel.size());

  auto e = Expr::Call("mul", {Expr::Col("x"), Expr::ConstI32(2)});
  auto compiled_or = CompiledExpr::Compile(e, schema, n);
  ASSERT_TRUE(compiled_or.ok());
  const Vector* out = nullptr;
  ASSERT_TRUE(compiled_or.value()->Eval(batch, &out).ok());
  for (sel_t i : sel) ASSERT_EQ(out->Data<int32_t>()[i], x[i] * 2) << i;
}

TEST(Expression, ConstantFoldingAndConstRoot) {
  Schema schema;
  schema.Add("x", TypeId::kI32);
  Vector vx(TypeId::kI32, 8);
  std::vector<int32_t> x(8, 1);
  vx.Fill(x.data(), 8);
  Batch batch;
  batch.count = 8;
  batch.columns = {&vx};

  // mul(add(2, 3), 4) folds to the literal 20 and materializes once.
  auto e = Expr::Call(
      "mul", {Expr::Call("add", {Expr::ConstI32(2), Expr::ConstI32(3)}),
              Expr::ConstI32(4)});
  auto compiled_or = CompiledExpr::Compile(e, schema, 8);
  ASSERT_TRUE(compiled_or.ok()) << compiled_or.status().ToString();
  const Vector* out = nullptr;
  ASSERT_TRUE(compiled_or.value()->Eval(batch, &out).ok());
  for (uint32_t i = 0; i < 8; ++i) ASSERT_EQ(out->Data<int32_t>()[i], 20);
}

TEST(Expression, CompileErrors) {
  Schema schema;
  schema.Add("x", TypeId::kI32);
  EXPECT_FALSE(
      CompiledExpr::Compile(Expr::Call("frobnicate", {Expr::Col("x")}),
                            schema, 64)
          .ok());
  EXPECT_FALSE(CompiledExpr::Compile(Expr::Col("nope"), schema, 64).ok());
  // i32 + f32 without a cast.
  EXPECT_FALSE(
      CompiledExpr::Compile(
          Expr::Call("add", {Expr::Col("x"), Expr::ConstF32(1.0f)}), schema,
          64)
          .ok());
  // Wrong arity.
  EXPECT_FALSE(
      CompiledExpr::Compile(Expr::Call("add", {Expr::Col("x")}), schema, 64)
          .ok());
  EXPECT_FALSE(CompiledExpr::Compile(
                   Expr::Call("cast_f32", {Expr::Col("x"), Expr::Col("x")}),
                   schema, 64)
                   .ok());
  // i32 division by a zero literal must come back as a Status, not a
  // SIGFPE in the constant fold (or in every batch at run time).
  EXPECT_FALSE(
      CompiledExpr::Compile(
          Expr::Call("div", {Expr::ConstI32(1), Expr::ConstI32(0)}), schema,
          64)
          .ok());
  EXPECT_FALSE(
      CompiledExpr::Compile(
          Expr::Call("div", {Expr::Col("x"), Expr::ConstI32(0)}), schema, 64)
          .ok());
  EXPECT_FALSE(CompiledExpr::Compile(
                   Expr::Call("div", {Expr::ConstI32(INT32_MIN),
                                      Expr::ConstI32(-1)}),
                   schema, 64)
                   .ok());
  // f32 division by zero is well-defined (inf) and must compile.
  EXPECT_TRUE(
      CompiledExpr::Compile(
          Expr::Call("div", {Expr::ConstF32(1.0f), Expr::ConstF32(0.0f)}),
          schema, 64)
          .ok());
}

TEST(Expression, EvalSelectDirectAndGenericAgree) {
  const uint32_t n = 1024;
  auto x = RandomInts(n, 1000, 19);
  Schema schema;
  schema.Add("x", TypeId::kI32);
  Vector vx(TypeId::kI32, n);
  vx.Fill(x.data(), n);
  Batch batch;
  batch.count = n;
  batch.columns = {&vx};

  // Direct path: lt(col, literal).
  auto direct = CompiledExpr::Compile(
      Expr::Call("lt", {Expr::Col("x"), Expr::ConstI32(500)}), schema, n);
  ASSERT_TRUE(direct.ok());
  // Generic path: the same predicate phrased so the fast path can't fire
  // (literal on the left).
  auto generic = CompiledExpr::Compile(
      Expr::Call("gt", {Expr::ConstI32(500), Expr::Col("x")}), schema, n);
  ASSERT_TRUE(generic.ok());

  std::vector<sel_t> sel_a(n), sel_b(n);
  uint32_t ka = 0, kb = 0;
  ASSERT_TRUE(direct.value()->EvalSelect(batch, sel_a.data(), &ka).ok());
  ASSERT_TRUE(generic.value()->EvalSelect(batch, sel_b.data(), &kb).ok());
  ASSERT_EQ(ka, kb);
  for (uint32_t i = 0; i < ka; ++i) ASSERT_EQ(sel_a[i], sel_b[i]) << i;
  for (uint32_t i = 0; i < ka; ++i) ASSERT_LT(x[sel_a[i]], 500) << i;
}

TEST(Expression, CSESharedSubtreeEvaluatesOncePerBatch) {
  // A BM25-shaped composition where tf_f = cast_f32(tf) occurs twice
  // (numerator and denominator — DESIGN.md §5's motivating case). Distinct
  // primitive nodes after CSE: cast_f32(tf), mul(2.5, tf_f),
  // cast_f32(len), mul(0.3, len_f), add(tf_f, ·), div — six, where a tree
  // build would run the tf cast twice (seven calls per batch).
  const uint32_t n = 256;
  auto tf = RandomInts(n, 20, 31);
  auto len = RandomInts(n, 300, 32);
  Schema schema;
  schema.Add("tf", TypeId::kI32);
  schema.Add("len", TypeId::kI32);

  auto tf_f = Expr::Call("cast_f32", {Expr::Col("tf")});
  auto len_f = Expr::Call("cast_f32", {Expr::Col("len")});
  auto num = Expr::Call("mul", {Expr::ConstF32(2.5f), tf_f});
  auto den = Expr::Call(
      "add", {tf_f, Expr::Call("mul", {Expr::ConstF32(0.3f), len_f})});
  auto expr = Expr::Call("div", {num, den});

  auto compiled_or = CompiledExpr::Compile(expr, schema, n);
  ASSERT_TRUE(compiled_or.ok());
  auto& compiled = compiled_or.value();
  EXPECT_EQ(compiled->primitive_calls(), 0u);

  Vector vtf(TypeId::kI32, n), vlen(TypeId::kI32, n);
  vtf.Fill(tf.data(), n);
  vlen.Fill(len.data(), n);
  Batch batch;
  batch.count = n;
  batch.columns = {&vtf, &vlen};

  const Vector* out = nullptr;
  ASSERT_TRUE(compiled->Eval(batch, &out).ok());
  EXPECT_EQ(compiled->primitive_calls(), 6u);
  ASSERT_TRUE(compiled->Eval(batch, &out).ok());
  EXPECT_EQ(compiled->primitive_calls(), 12u);  // once per node per batch

  // Correctness survives the sharing.
  const float* res = out->Data<float>();
  for (uint32_t i = 0; i < n; ++i) {
    const float tff = static_cast<float>(tf[i]);
    const float want =
        2.5f * tff / (tff + 0.3f * static_cast<float>(len[i]));
    ASSERT_FLOAT_EQ(res[i], want) << i;
  }
}

TEST(Expression, CSEUnifiesIdenticalCallTrees) {
  // add(mul(a, b), mul(a, b)): the whole mul subtree is shared, so per
  // batch only two primitives run (one mul, one add) over four nodes
  // total (2 column refs + mul + add).
  const uint32_t n = 128;
  auto a = RandomInts(n, 100, 33);
  auto b = RandomInts(n, 100, 34);
  Schema schema;
  schema.Add("a", TypeId::kI32);
  schema.Add("b", TypeId::kI32);
  auto mul = Expr::Call("mul", {Expr::Col("a"), Expr::Col("b")});
  auto expr = Expr::Call("add", {mul, Expr::Call("mul", {Expr::Col("a"),
                                                         Expr::Col("b")})});
  auto compiled_or = CompiledExpr::Compile(expr, schema, n);
  ASSERT_TRUE(compiled_or.ok());
  auto& compiled = compiled_or.value();
  EXPECT_EQ(compiled->num_nodes(), 4u);

  Vector va(TypeId::kI32, n), vb(TypeId::kI32, n);
  va.Fill(a.data(), n);
  vb.Fill(b.data(), n);
  Batch batch;
  batch.count = n;
  batch.columns = {&va, &vb};
  const Vector* out = nullptr;
  ASSERT_TRUE(compiled->Eval(batch, &out).ok());
  EXPECT_EQ(compiled->primitive_calls(), 2u);
  const int32_t* res = out->Data<int32_t>();
  for (uint32_t i = 0; i < n; ++i) {
    ASSERT_EQ(res[i], 2 * a[i] * b[i]) << i;
  }
}

// ---------------------------------------------------------------------------
// Scan / select operators
// ---------------------------------------------------------------------------

TEST(Scan, StreamsInVectorSizeBatches) {
  const uint32_t n = 100;
  auto values = RandomInts(n, 1000, 23);
  ExecContext ctx;
  ctx.vector_size = 7;  // deliberately not a divisor of n
  Schema schema;
  schema.Add("v", TypeId::kI32);
  std::vector<VectorSourcePtr> sources;
  sources.push_back(std::make_unique<MemVectorSource<int32_t>>(values));
  ScanOperator scan(&ctx, std::move(schema), std::move(sources));
  ASSERT_TRUE(scan.Open().ok());
  std::vector<int32_t> got;
  uint32_t batches = 0;
  Batch* b = nullptr;
  while (true) {
    ASSERT_TRUE(scan.Next(&b).ok());
    if (b == nullptr) break;
    ++batches;
    EXPECT_LE(b->count, 7u);
    const int32_t* data = b->columns[0]->Data<int32_t>();
    got.insert(got.end(), data, data + b->count);
  }
  scan.Close();
  EXPECT_EQ(batches, (n + 6) / 7);
  EXPECT_EQ(got, values);
}

TEST(Scan, CompressedBlockSourceMatchesOriginal) {
  const uint32_t n = 10000;
  Rng rng(29);
  std::vector<int32_t> values(n);
  for (auto& v : values) {
    v = rng.NextBernoulli(0.05)
            ? 100000 + static_cast<int32_t>(rng.NextBounded(1000))
            : static_cast<int32_t>(rng.NextBounded(256));
  }
  compress::EncodeOptions opts;
  opts.bit_width = 8;
  std::vector<uint8_t> block;
  ASSERT_TRUE(
      compress::PforEncode(values.data(), n, opts, &block, nullptr).ok());
  auto source_or = BlockVectorSource::Create(std::move(block));
  ASSERT_TRUE(source_or.ok()) << source_or.status().ToString();

  ExecContext ctx;
  ctx.vector_size = 1000;  // forces mid-window range decodes
  Schema schema;
  schema.Add("v", TypeId::kI32);
  std::vector<VectorSourcePtr> sources;
  sources.push_back(std::move(source_or.value()));
  ScanOperator scan(&ctx, std::move(schema), std::move(sources));
  ASSERT_TRUE(scan.Open().ok());
  std::vector<int32_t> got;
  Batch* b = nullptr;
  while (true) {
    ASSERT_TRUE(scan.Next(&b).ok());
    if (b == nullptr) break;
    const int32_t* data = b->columns[0]->Data<int32_t>();
    got.insert(got.end(), data, data + b->count);
  }
  scan.Close();
  EXPECT_EQ(got, values);
}

TEST(Scan, ValidatesVectorSizeAtOpen) {
  auto values = RandomInts(64, 100, 41);
  auto make_scan = [&](ExecContext* ctx) {
    Schema schema;
    schema.Add("v", TypeId::kI32);
    std::vector<VectorSourcePtr> sources;
    sources.push_back(std::make_unique<MemVectorSource<int32_t>>(values));
    return ScanOperator(ctx, std::move(schema), std::move(sources));
  };
  {
    ExecContext ctx;
    ctx.vector_size = 0;  // rejected, not trusted
    ScanOperator scan = make_scan(&ctx);
    const Status s = scan.Open();
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }
  {
    ExecContext ctx;
    ctx.vector_size = ExecContext::kMaxVectorSize * 8;  // clamped
    ScanOperator scan = make_scan(&ctx);
    ASSERT_TRUE(scan.Open().ok());
    EXPECT_EQ(ctx.vector_size, ExecContext::kMaxVectorSize);
    Batch* b = nullptr;
    ASSERT_TRUE(scan.Next(&b).ok());
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->count, 64u);
    scan.Close();
  }
}

TEST(Scan, RejectsMismatchedSources) {
  ExecContext ctx;
  std::vector<int32_t> a(10), b(20);
  {
    Schema schema;
    schema.Add("a", TypeId::kI32);
    schema.Add("b", TypeId::kI32);
    std::vector<VectorSourcePtr> sources;
    sources.push_back(std::make_unique<MemVectorSource<int32_t>>(a));
    sources.push_back(std::make_unique<MemVectorSource<int32_t>>(b));
    ScanOperator scan(&ctx, std::move(schema), std::move(sources));
    EXPECT_FALSE(scan.Open().ok());  // length mismatch
  }
  {
    Schema schema;
    schema.Add("a", TypeId::kF32);  // type mismatch
    std::vector<VectorSourcePtr> sources;
    sources.push_back(std::make_unique<MemVectorSource<int32_t>>(a));
    ScanOperator scan(&ctx, std::move(schema), std::move(sources));
    EXPECT_FALSE(scan.Open().ok());
  }
}

std::unique_ptr<SelectOperator> MakeSelectPlan(ExecContext* ctx,
                                               const std::vector<int32_t>& keys,
                                               int32_t threshold,
                                               SelectMode mode) {
  Schema schema;
  schema.Add("k", TypeId::kI32);
  std::vector<VectorSourcePtr> sources;
  sources.push_back(std::make_unique<MemVectorSource<int32_t>>(keys));
  auto scan = std::make_unique<ScanOperator>(ctx, std::move(schema),
                                             std::move(sources));
  auto pred = Expr::Call("lt", {Expr::Col("k"), Expr::ConstI32(threshold)});
  return std::make_unique<SelectOperator>(ctx, std::move(scan), pred, mode);
}

TEST(Select, ModesProduceSameSurvivors) {
  const uint32_t n = 10000;
  auto keys = RandomInts(n, 1000, 31);
  for (int32_t threshold : {0, 250, 1000}) {
    std::vector<int32_t> expected;
    for (int32_t k : keys) {
      if (k < threshold) expected.push_back(k);
    }
    for (SelectMode mode :
         {SelectMode::kSelectionVector, SelectMode::kCompact}) {
      ExecContext ctx;
      auto select = MakeSelectPlan(&ctx, keys, threshold, mode);
      ASSERT_TRUE(select->Open().ok());
      std::vector<int32_t> got;
      Batch* b = nullptr;
      while (true) {
        ASSERT_TRUE(select->Next(&b).ok());
        if (b == nullptr) break;
        const int32_t* data = b->columns[0]->Data<int32_t>();
        if (b->sel != nullptr) {
          for (uint32_t j = 0; j < b->sel_count; ++j) {
            got.push_back(data[b->sel[j]]);
          }
        } else {
          got.insert(got.end(), data, data + b->count);
        }
      }
      select->Close();
      ASSERT_EQ(got, expected)
          << "threshold " << threshold << " mode "
          << (mode == SelectMode::kCompact ? "compact" : "sel-vector");
    }
  }
}

// ---------------------------------------------------------------------------
// Merge join
// ---------------------------------------------------------------------------

TEST(MergeJoin, GallopLowerBoundEdges) {
  std::vector<int32_t> v = {2, 4, 6, 8, 10, 12, 14, 16};
  const uint32_t n = static_cast<uint32_t>(v.size());
  EXPECT_EQ(GallopLowerBound(v.data(), 0, n, 1), 0u);
  EXPECT_EQ(GallopLowerBound(v.data(), 0, n, 2), 0u);
  EXPECT_EQ(GallopLowerBound(v.data(), 0, n, 9), 4u);
  EXPECT_EQ(GallopLowerBound(v.data(), 0, n, 16), 7u);
  EXPECT_EQ(GallopLowerBound(v.data(), 0, n, 17), n);
  EXPECT_EQ(GallopLowerBound(v.data(), 3, n, 5), 3u);   // already >= key
  EXPECT_EQ(GallopLowerBound(v.data(), n, n, 5), n);    // empty suffix
  for (uint32_t lo = 0; lo < n; ++lo) {
    for (int32_t key = 0; key < 20; ++key) {
      const uint32_t expected = static_cast<uint32_t>(
          std::lower_bound(v.begin() + lo, v.end(), key) - v.begin());
      ASSERT_EQ(GallopLowerBound(v.data(), lo, n, key), expected)
          << "lo " << lo << " key " << key;
    }
  }
}

TEST(MergeJoin, GallopingMatchesNaive) {
  struct Case {
    uint32_t na, nb, gap_a, gap_b;
  };
  const Case cases[] = {
      {1000, 1000, 2, 2},     // dense vs dense
      {50, 100000, 2, 2},     // short vs long (the galloping case)
      {100000, 50, 2, 2},     // symmetric skew
      {0, 1000, 2, 2},        // empty side
      {1000, 1000, 1000, 3},  // sparse vs dense key spaces
  };
  uint64_t seed = 41;
  for (const Case& c : cases) {
    auto a = SortedUnique(c.na, c.gap_a, seed++);
    auto b = SortedUnique(c.nb, c.gap_b, seed++);
    const uint32_t cap = std::min(c.na, c.nb);
    std::vector<sel_t> na_a(cap), na_b(cap), ga_a(cap), ga_b(cap);
    const uint32_t kn = MergeIntersectNaive(
        a.data(), c.na, b.data(), c.nb, na_a.data(), na_b.data());
    const uint32_t kg = MergeIntersectGalloping(
        a.data(), c.na, b.data(), c.nb, ga_a.data(), ga_b.data());
    ASSERT_EQ(kg, kn);
    for (uint32_t i = 0; i < kn; ++i) {
      ASSERT_EQ(ga_a[i], na_a[i]) << i;
      ASSERT_EQ(ga_b[i], na_b[i]) << i;
    }
    // Cross-check against std::set_intersection on values.
    std::vector<int32_t> expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    ASSERT_EQ(kn, expected.size());
    for (uint32_t i = 0; i < kn; ++i) ASSERT_EQ(a[na_a[i]], expected[i]);
  }
}

std::unique_ptr<ScanOperator> MakeListScan(ExecContext* ctx,
                                           const std::vector<int32_t>& keys,
                                           const std::vector<int32_t>& payload,
                                           const char* payload_name) {
  Schema schema;
  schema.Add("docid", TypeId::kI32);
  schema.Add(payload_name, TypeId::kI32);
  std::vector<VectorSourcePtr> sources;
  sources.push_back(std::make_unique<MemVectorSource<int32_t>>(keys));
  sources.push_back(std::make_unique<MemVectorSource<int32_t>>(payload));
  return std::make_unique<ScanOperator>(ctx, std::move(schema),
                                        std::move(sources));
}

TEST(MergeJoin, OperatorIntersectsWithPayloads) {
  auto a = SortedUnique(5000, 5, 43);
  auto b = SortedUnique(800, 31, 47);
  auto c = SortedUnique(3000, 8, 53);
  // payload[i] = 10 * key so row alignment is verifiable post-join. The
  // payload vectors must outlive the plan: MemVectorSource borrows.
  auto payload_of = [](const std::vector<int32_t>& keys) {
    std::vector<int32_t> p(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) p[i] = keys[i] * 10;
    return p;
  };
  const auto pa = payload_of(a), pb = payload_of(b), pc = payload_of(c);
  std::vector<int32_t> expected_ab;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(expected_ab));
  std::vector<int32_t> expected;
  std::set_intersection(expected_ab.begin(), expected_ab.end(), c.begin(),
                        c.end(), std::back_inserter(expected));

  ExecContext ctx;
  ctx.vector_size = 64;
  std::vector<OperatorPtr> children;
  children.push_back(MakeListScan(&ctx, a, pa, "pa"));
  children.push_back(MakeListScan(&ctx, b, pb, "pb"));
  children.push_back(MakeListScan(&ctx, c, pc, "pc"));
  MergeJoinOperator join(&ctx, std::move(children), MergeMode::kIntersect);
  ASSERT_TRUE(join.Open().ok());
  EXPECT_EQ(join.schema().NumColumns(), 4u);

  std::vector<int32_t> keys;
  Batch* batch = nullptr;
  while (true) {
    ASSERT_TRUE(join.Next(&batch).ok());
    if (batch == nullptr) break;
    for (uint32_t i = 0; i < batch->count; ++i) {
      const int32_t key = batch->columns[0]->Data<int32_t>()[i];
      keys.push_back(key);
      // Every payload column must carry the value from its own list's
      // matching row.
      for (uint32_t col = 1; col < 4; ++col) {
        ASSERT_EQ(batch->columns[col]->Data<int32_t>()[i], key * 10)
            << "col " << col;
      }
    }
  }
  join.Close();
  EXPECT_EQ(keys, expected);
}

TEST(MergeJoin, RejectsUnsortedInput) {
  std::vector<int32_t> bad = {1, 5, 3, 7};
  std::vector<int32_t> payload = {0, 0, 0, 0};
  ExecContext ctx;
  std::vector<OperatorPtr> children;
  children.push_back(MakeListScan(&ctx, bad, payload, "p"));
  MergeJoinOperator join(&ctx, std::move(children), MergeMode::kIntersect);
  EXPECT_FALSE(join.Open().ok());
}

// ---------------------------------------------------------------------------
// Streaming merge-join over skip cursors (PR 4)
// ---------------------------------------------------------------------------

std::vector<int32_t> RunStreamingJoin(
    const std::vector<std::vector<int32_t>>& lists, uint32_t vector_size) {
  ExecContext ctx;
  ctx.vector_size = vector_size;
  std::vector<SkipCursorPtr> cursors;
  for (const auto& l : lists) {
    cursors.push_back(std::make_unique<MemSkipCursor>(l));
  }
  StreamingMergeJoinOperator join(&ctx, std::move(cursors));
  EXPECT_TRUE(join.Open().ok());
  std::vector<int32_t> out;
  Batch* batch = nullptr;
  while (true) {
    EXPECT_TRUE(join.Next(&batch).ok());
    if (batch == nullptr) break;
    EXPECT_EQ(batch->sel, nullptr);
    const int32_t* d = batch->columns[0]->Data<int32_t>();
    out.insert(out.end(), d, d + batch->count);
  }
  join.Close();
  return out;
}

TEST(StreamingMergeJoin, MatchesSetIntersectionOracle) {
  struct Case {
    std::vector<uint32_t> sizes;
    uint32_t gap;
  };
  const std::vector<Case> cases = {
      {{1000, 1000}, 3},        // dense overlap
      {{50, 100000}, 2},        // rare-vs-frequent (the skipping case)
      {{100000, 50}, 2},        // candidate list is the long one
      {{300, 4000, 900}, 4},    // 3-way
      {{20, 20, 20, 20, 5}, 6},  // 5-way tiny
      {{700}, 2},               // single child: identity
  };
  uint64_t seed = 1234;
  for (const Case& c : cases) {
    std::vector<std::vector<int32_t>> lists;
    for (uint32_t n : c.sizes) lists.push_back(SortedUnique(n, c.gap, seed++));
    std::vector<int32_t> expected = lists[0];
    for (size_t i = 1; i < lists.size(); ++i) {
      std::vector<int32_t> next;
      std::set_intersection(expected.begin(), expected.end(),
                            lists[i].begin(), lists[i].end(),
                            std::back_inserter(next));
      expected = std::move(next);
    }
    for (uint32_t vs : {1u, 7u, 1024u}) {
      EXPECT_EQ(RunStreamingJoin(lists, vs), expected)
          << "sizes[0]=" << c.sizes[0] << " vs=" << vs;
    }
  }
}

TEST(StreamingMergeJoin, EmptyAndDisjointInputs) {
  const std::vector<int32_t> some = {1, 5, 9};
  EXPECT_TRUE(RunStreamingJoin({{}, some}, 16).empty());
  EXPECT_TRUE(RunStreamingJoin({some, {}}, 16).empty());
  EXPECT_TRUE(RunStreamingJoin({{2, 4, 6}, {1, 3, 5}}, 16).empty());

  ExecContext ctx;
  std::vector<SkipCursorPtr> none;
  StreamingMergeJoinOperator join(&ctx, std::move(none));
  EXPECT_FALSE(join.Open().ok());
}

// ---------------------------------------------------------------------------
// BM25: fused kernel vs composed expression
// ---------------------------------------------------------------------------

TEST(Bm25, FusedMatchesComposedTo1e5) {
  const uint32_t n = 4096;
  Rng rng(59);
  std::vector<int32_t> tf(n), doclen(n);
  for (auto& x : tf) x = 1 + static_cast<int32_t>(rng.NextBounded(20));
  for (auto& x : doclen) x = 1 + static_cast<int32_t>(rng.NextBounded(500));
  const float idf = 2.1f, k1 = 1.2f, b = 0.75f, avgdl = 150.0f;

  // Composed: the exact expression shape bench_primitives uses.
  Schema schema;
  schema.Add("tf0", TypeId::kI32);
  schema.Add("doclen", TypeId::kI32);
  Vector tf_vec(TypeId::kI32, n), len_vec(TypeId::kI32, n);
  tf_vec.Fill(tf.data(), n);
  len_vec.Fill(doclen.data(), n);
  Batch batch;
  batch.count = n;
  batch.columns = {&tf_vec, &len_vec};

  auto tf_f = Expr::Call("cast_f32", {Expr::Col("tf0")});
  auto len_f = Expr::Call("cast_f32", {Expr::Col("doclen")});
  auto norm = Expr::Call(
      "add", {Expr::ConstF32(k1 * (1 - b)),
              Expr::Call("mul", {Expr::ConstF32(k1 * b / avgdl), len_f})});
  auto w = Expr::Call(
      "mul", {Expr::ConstF32(idf * (k1 + 1)),
              Expr::Call("div", {tf_f, Expr::Call("add", {tf_f, norm})})});
  auto compiled_or = CompiledExpr::Compile(w, schema, n);
  ASSERT_TRUE(compiled_or.ok()) << compiled_or.status().ToString();
  const Vector* composed = nullptr;
  ASSERT_TRUE(compiled_or.value()->Eval(batch, &composed).ok());

  std::vector<float> fused(n);
  MapBm25(n, fused.data(), tf.data(), doclen.data(), idf, k1, b,
          1.0f / avgdl);

  for (uint32_t i = 0; i < n; ++i) {
    // Same formula, different association/rounding: agree to 1e-5.
    ASSERT_NEAR(fused[i], composed->Data<float>()[i], 1e-5f) << i;
    // And both agree with a double-precision reference.
    const double tff = tf[i];
    const double ref = static_cast<double>(idf) * (k1 + 1.0) * tff /
                       (tff + k1 * (1.0 - b) + k1 * b * doclen[i] / avgdl);
    ASSERT_NEAR(fused[i], static_cast<float>(ref), 1e-4f) << i;
  }
}

TEST(Bm25, SelVariantWritesThroughSel) {
  const uint32_t n = 64;
  std::vector<int32_t> tf(n, 5), doclen(n, 100);
  std::vector<float> out(n, -1.0f);
  std::vector<sel_t> sel = {1, 7, 40};
  MapBm25Sel(n, sel.data(), static_cast<uint32_t>(sel.size()), out.data(),
             tf.data(), doclen.data(), 2.0f, 1.2f, 0.75f, 1.0f / 150.0f);
  std::vector<float> dense(n);
  MapBm25(n, dense.data(), tf.data(), doclen.data(), 2.0f, 1.2f, 0.75f,
          1.0f / 150.0f);
  std::set<sel_t> selected(sel.begin(), sel.end());
  for (uint32_t i = 0; i < n; ++i) {
    if (selected.count(i)) {
      ASSERT_EQ(out[i], dense[i]) << i;
    } else {
      ASSERT_EQ(out[i], -1.0f) << i;
    }
  }
}

}  // namespace
}  // namespace x100ir::vec
