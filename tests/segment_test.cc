// Snapshot-semantics battery for the segmented index (DESIGN.md §10):
// live adds/deletes are bit-identical to a monolithic index rebuilt over
// the same logical corpus, concurrent searches during a background merge
// stay bit-identical to their serial oracle (epoch-stable: a merge changes
// no logical content), replaced segments retire — files deleted, pages
// dropped from the shared pool — only when the last pinning snapshot
// releases, a torn MANIFEST falls back to a clean rebuild, a valid one is
// adopted with its tombstones, and a seeded 1K-op add/delete/search/merge
// soak holds the oracle invariant throughout. This binary runs in the TSan
// CI job alongside the server battery.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/database.h"
#include "ir/corpus.h"
#include "ir/index_builder.h"
#include "ir/index_meta.h"
#include "ir/query_gen.h"
#include "ir/search_engine.h"
#include "ir/snapshot.h"
#include "storage/buffer_manager.h"

namespace x100ir::ir {
namespace {

std::string FreshDir(const char* name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string tag =
      info != nullptr
          ? std::string(info->test_suite_name()) + "_" + info->name()
          : std::string("global");
  const std::string dir = std::string(::testing::TempDir()) + "/x100ir_seg_" +
                          tag + "_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Small enough that a full oracle rebuild per verification is cheap, big
// enough that queries have real posting lists to merge across segments.
CorpusOptions TinyGenerated(uint32_t num_docs = 400) {
  CorpusOptions opts;
  opts.num_docs = num_docs;
  opts.vocab_size = 600;
  opts.zipf_s = 1.05;
  opts.doclen_mu = 3.2;
  opts.doclen_sigma = 0.5;
  opts.num_topics = 6;
  opts.terms_per_topic = 5;
  opts.relevant_docs_per_topic = 20;
  opts.topic_rank_min = 10;
  opts.topic_rank_max = 150;
  opts.seed = 2007;
  return opts;
}

std::vector<Query> MakeQueries(const Corpus& corpus, uint32_t n) {
  QueryGenOptions qopts;
  qopts.num_efficiency_queries = n;
  qopts.num_eval_queries = 5;
  QueryGenerator gen(corpus, qopts);
  return gen.EfficiencyQueries();
}

// One synthetic live document: uniform term draws, duplicates fold to tf.
std::vector<uint32_t> RandomDoc(Rng* rng, uint32_t vocab) {
  const uint32_t len = 8 + static_cast<uint32_t>(rng->Next() % 40);
  std::vector<uint32_t> terms(len);
  for (uint32_t i = 0; i < len; ++i) {
    terms[i] = static_cast<uint32_t>(rng->Next() % vocab);
  }
  return terms;
}

// ---------------------------------------------------------------------------
// Reference model + oracle: the logical corpus the database should equal.
// ---------------------------------------------------------------------------

// Mirrors every mutation the test applies to the database; BuildOracle
// compacts the live docs (global docid order) into a fresh monolithic
// in-memory index — exactly what the acceptance criterion compares against.
struct LiveModel {
  uint32_t vocab = 0;
  std::vector<std::vector<DocTerm>> docs;  // by global docid, normalized
  std::vector<uint8_t> dead;

  void InitFrom(const Corpus& corpus) {
    vocab = corpus.vocab_size();
    docs.assign(corpus.num_docs(), {});
    dead.assign(corpus.num_docs(), 0);
    for (uint32_t d = 0; d < corpus.num_docs(); ++d) docs[d] = corpus.doc(d);
  }
  int32_t Add(const std::vector<uint32_t>& terms) {
    std::vector<uint32_t> sorted = terms;
    std::sort(sorted.begin(), sorted.end());
    std::vector<DocTerm> doc;
    for (size_t i = 0; i < sorted.size();) {
      size_t j = i;
      while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
      doc.push_back({sorted[i], static_cast<int32_t>(j - i)});
      i = j;
    }
    docs.push_back(std::move(doc));
    dead.push_back(0);
    return static_cast<int32_t>(docs.size()) - 1;
  }
  void Delete(int32_t docid) { dead[static_cast<size_t>(docid)] = 1; }
  uint32_t live_count() const {
    uint32_t n = 0;
    for (uint8_t d : dead) n += d == 0 ? 1 : 0;
    return n;
  }
};

struct Oracle {
  Corpus corpus;
  std::unique_ptr<InvertedIndex> index;
  std::vector<int32_t> globals;  // oracle-local docid -> global docid
};

void BuildOracle(const LiveModel& m, Oracle* o) {
  std::vector<std::vector<DocTerm>> live;
  o->globals.clear();
  for (size_t d = 0; d < m.docs.size(); ++d) {
    if (m.dead[d]) continue;
    live.push_back(m.docs[d]);
    o->globals.push_back(static_cast<int32_t>(d));
  }
  ASSERT_TRUE(Corpus::FromDocTerms(std::move(live), m.vocab, &o->corpus).ok());
  o->index = std::make_unique<InvertedIndex>();
  BuildStats stats;
  ASSERT_TRUE(o->index->BuildFromCorpus(o->corpus, "", &stats).ok());
}

// Serial oracle run with local docids mapped back to global space.
Status OracleSearch(const Oracle& o, const Query& q, RunType type,
                    const SearchOptions& opts, SearchResult* result) {
  SearchEngine engine(o.index.get());
  Status s = engine.Search(q, type, opts, result);
  if (!s.ok()) return s;
  for (int32_t& d : result->docids) d = o.globals[static_cast<size_t>(d)];
  return OkStatus();
}

// Copy of ir_test's rank-agreement check, for execution paths that legally
// differ in the last ulp (MaxScore vs score-all union, storage runs).
void ExpectRankingsEquivalent(const std::vector<int32_t>& docids_a,
                              const std::vector<float>& scores_a,
                              const std::vector<int32_t>& docids_b,
                              const std::vector<float>& scores_b, float tol) {
  ASSERT_EQ(docids_a.size(), docids_b.size());
  ASSERT_EQ(scores_a.size(), scores_b.size());
  const size_t n = docids_a.size();
  for (size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(scores_a[i], scores_b[i], tol) << "rank " << i;
    const bool tied_prev =
        i > 0 && std::abs(scores_a[i] - scores_a[i - 1]) <= tol;
    const bool tied_next =
        i + 1 < n && std::abs(scores_a[i] - scores_a[i + 1]) <= tol;
    if (!tied_prev && !tied_next && i + 1 < n) {
      EXPECT_EQ(docids_a[i], docids_b[i]) << "rank " << i;
    }
  }
}

// Full bitwise comparison battery: the score-all union path and both
// boolean plans must match the oracle exactly — same docids, same float
// bits (same per-document accumulation order by construction, DESIGN.md
// §10). MaxScore agrees to rank-equivalence.
void ExpectMatchesOracle(const core::Database& db, const Oracle& o,
                         const std::vector<Query>& queries) {
  SearchOptions exact;
  exact.maxscore_bm25 = false;
  exact.k = 50;
  SearchOptions maxscore;
  maxscore.k = 50;
  for (const Query& q : queries) {
    SearchResult got, want;
    ASSERT_TRUE(db.Search(q, RunType::kBm25, exact, &got).ok());
    ASSERT_TRUE(OracleSearch(o, q, RunType::kBm25, exact, &want).ok());
    EXPECT_EQ(got.docids, want.docids);
    EXPECT_EQ(got.scores, want.scores);

    SearchResult got_ms;
    ASSERT_TRUE(db.Search(q, RunType::kBm25, maxscore, &got_ms).ok());
    ExpectRankingsEquivalent(got_ms.docids, got_ms.scores, want.docids,
                             want.scores, 1e-4f);

    for (RunType type : {RunType::kBoolAnd, RunType::kBoolOr}) {
      SearchResult bg, bw;
      ASSERT_TRUE(db.Search(q, type, exact, &bg).ok());
      ASSERT_TRUE(OracleSearch(o, q, type, exact, &bw).ok());
      EXPECT_EQ(bg.docids, bw.docids);
    }
  }
}

// ---------------------------------------------------------------------------
// Tentpole: live adds/deletes, bit-identical to the rebuilt monolith.
// ---------------------------------------------------------------------------

TEST(SegmentTest, AddsAreVisibleAndBitIdenticalToRebuiltOracle) {
  core::DatabaseOptions dopts;
  dopts.corpus = TinyGenerated();
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());
  const uint64_t epoch0 = db.epoch();

  LiveModel model;
  model.InitFrom(db.corpus());
  Rng rng(41);
  for (int i = 0; i < 120; ++i) {
    const std::vector<uint32_t> terms = RandomDoc(&rng, model.vocab);
    int32_t docid = -1;
    ASSERT_TRUE(db.AddDocument(terms, &docid).ok());
    EXPECT_EQ(docid, model.Add(terms));  // docids allocated in add order
  }
  EXPECT_EQ(db.epoch(), epoch0 + 120);

  // Malformed adds are rejected without burning a docid.
  int32_t unused = -1;
  EXPECT_EQ(db.AddDocument({}, &unused).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.AddDocument({model.vocab}, &unused).code(),
            StatusCode::kInvalidArgument);
  const uint64_t epoch_after = db.epoch();
  EXPECT_EQ(epoch_after, epoch0 + 120);

  Oracle oracle;
  BuildOracle(model, &oracle);
  ExpectMatchesOracle(db, oracle, MakeQueries(db.corpus(), 25));

  // Results are stamped with the snapshot's epoch.
  SearchResult r;
  SearchOptions opts;
  const Query q = MakeQueries(db.corpus(), 1)[0];
  ASSERT_TRUE(db.Search(q, RunType::kBm25, opts, &r).ok());
  EXPECT_EQ(r.epoch, epoch_after);
}

TEST(SegmentTest, DeleteHidesDocsAndClassifiesErrors) {
  core::DatabaseOptions dopts;
  dopts.corpus = TinyGenerated();
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());

  LiveModel model;
  model.InitFrom(db.corpus());
  Rng rng(43);
  for (int i = 0; i < 60; ++i) {
    const std::vector<uint32_t> terms = RandomDoc(&rng, model.vocab);
    int32_t docid = -1;
    ASSERT_TRUE(db.AddDocument(terms, &docid).ok());
    model.Add(terms);
  }

  // Deletes span both tiers: base-segment docs and write-buffer docs.
  const int32_t base_docs = static_cast<int32_t>(db.corpus().num_docs());
  std::vector<int32_t> victims = {0, 7, base_docs - 1, base_docs + 3,
                                  base_docs + 59};
  for (int32_t d : victims) {
    ASSERT_TRUE(db.DeleteDocument(d).ok()) << d;
    model.Delete(d);
  }

  // Error classification: double delete and never-allocated docids.
  for (int32_t d : victims) {
    EXPECT_EQ(db.DeleteDocument(d).code(), StatusCode::kNotFound) << d;
  }
  EXPECT_EQ(db.DeleteDocument(-1).code(), StatusCode::kNotFound);
  EXPECT_EQ(db.DeleteDocument(base_docs + 60).code(), StatusCode::kNotFound);

  Oracle oracle;
  BuildOracle(model, &oracle);
  const auto queries = MakeQueries(db.corpus(), 25);
  ExpectMatchesOracle(db, oracle, queries);

  // Belt and braces: no run type ever returns a tombstoned docid.
  SearchOptions opts;
  opts.k = 1000;
  for (const Query& q : queries) {
    for (RunType type : {RunType::kBm25, RunType::kBoolAnd, RunType::kBoolOr}) {
      SearchResult r;
      ASSERT_TRUE(db.Search(q, type, opts, &r).ok());
      for (int32_t d : r.docids) {
        EXPECT_EQ(model.dead[static_cast<size_t>(d)], 0) << "docid " << d;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrent search during a background merge: bit-identical throughout.
// ---------------------------------------------------------------------------

TEST(SegmentTest, SearchDuringMergeIsBitIdenticalToOracle) {
  core::DatabaseOptions dopts;
  dopts.corpus = TinyGenerated();
  dopts.dir = FreshDir("db");
  dopts.storage.page_bytes = 4096;
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());

  LiveModel model;
  model.InitFrom(db.corpus());
  Rng rng(47);
  for (int i = 0; i < 200; ++i) {
    const std::vector<uint32_t> terms = RandomDoc(&rng, model.vocab);
    ASSERT_TRUE(db.AddDocument(terms, nullptr).ok());
    model.Add(terms);
  }
  for (int i = 0; i < 30; ++i) {
    const int32_t d = static_cast<int32_t>(
        rng.Next() % static_cast<uint64_t>(model.docs.size()));
    if (model.dead[static_cast<size_t>(d)]) continue;
    ASSERT_TRUE(db.DeleteDocument(d).ok());
    model.Delete(d);
  }

  // The logical corpus is frozen for the whole merge: StartMerge and the
  // commit bump the epoch but change no content, so ONE oracle covers the
  // before, during, and after views.
  Oracle oracle;
  BuildOracle(model, &oracle);
  const auto queries = MakeQueries(db.corpus(), 8);
  ExpectMatchesOracle(db, oracle, queries);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reader_queries{0};
  std::atomic<uint64_t> mismatches{0};

  // Readers hammer the exact-union path and both boolean plans while the
  // merge runs; EXPECT from a non-main thread is fine, but count too so
  // the main thread can assert the volume.
  auto reader = [&](int id) {
    SearchOptions exact;
    exact.maxscore_bm25 = false;
    exact.k = 50;
    size_t i = static_cast<size_t>(id);
    while (!done.load(std::memory_order_acquire)) {
      const Query& q = queries[i++ % queries.size()];
      SearchResult got, want;
      if (!db.Search(q, RunType::kBm25, exact, &got).ok() ||
          !OracleSearch(oracle, q, RunType::kBm25, exact, &want).ok()) {
        mismatches.fetch_add(1);
        continue;
      }
      if (got.docids != want.docids || got.scores != want.scores) {
        mismatches.fetch_add(1);
      }
      SearchResult bg, bw;
      if (!db.Search(q, RunType::kBoolOr, exact, &bg).ok() ||
          !OracleSearch(oracle, q, RunType::kBoolOr, exact, &bw).ok() ||
          bg.docids != bw.docids) {
        mismatches.fetch_add(1);
      }
      reader_queries.fetch_add(1);
    }
  };
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) readers.emplace_back(reader, t);

  ASSERT_TRUE(db.StartMerge().ok());
  EXPECT_EQ(db.StartMerge().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(db.WaitMerge().ok());
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(reader_queries.load(), 0u);

  // Post-merge: same oracle still holds, including the storage runs the
  // merged segment's materialized columns now serve (two-pass execution
  // differs in summation order: rank-equivalence, not bitwise).
  ExpectMatchesOracle(db, oracle, queries);
  SearchOptions opts;
  opts.k = 30;
  for (const Query& q : queries) {
    SearchResult got, want;
    ASSERT_TRUE(db.Search(q, RunType::kBm25TC, opts, &got).ok());
    ASSERT_TRUE(OracleSearch(oracle, q, RunType::kBm25, opts, &want).ok());
    ExpectRankingsEquivalent(got.docids, got.scores, want.docids, want.scores,
                             1e-3f);
  }
}

TEST(SegmentTest, DeletesDuringMergeLandOnTheMergedSegment) {
  core::DatabaseOptions dopts;
  dopts.corpus = TinyGenerated();
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());

  LiveModel model;
  model.InitFrom(db.corpus());
  Rng rng(53);
  for (int i = 0; i < 150; ++i) {
    const std::vector<uint32_t> terms = RandomDoc(&rng, model.vocab);
    ASSERT_TRUE(db.AddDocument(terms, nullptr).ok());
    model.Add(terms);
  }

  // Delete below the merge cutoff while the merge runs: the journal must
  // re-apply these as tombstones on the merged segment at commit. Whether
  // a given delete lands before or after the commit race-wise, the final
  // logical state is the same — which is exactly what the oracle checks.
  ASSERT_TRUE(db.StartMerge().ok());
  for (int32_t d = 3; d < 120; d += 17) {
    ASSERT_TRUE(db.DeleteDocument(d).ok()) << d;
    model.Delete(d);
  }
  ASSERT_TRUE(db.WaitMerge().ok());

  Oracle oracle;
  BuildOracle(model, &oracle);
  ExpectMatchesOracle(db, oracle, MakeQueries(db.corpus(), 15));

  // And they really are deletes, not ghosts: a re-delete is NotFound.
  EXPECT_EQ(db.DeleteDocument(3).code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Retirement: files + pages live exactly as long as the last snapshot.
// ---------------------------------------------------------------------------

TEST(SegmentTest, ReplacedSegmentRetiresOnLastSnapshotRelease) {
  core::DatabaseOptions dopts;
  dopts.corpus = TinyGenerated();
  dopts.dir = FreshDir("db");
  dopts.storage.page_bytes = 4096;
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());
  ASSERT_TRUE(db.has_storage());

  // Warm the base segment's compressed docid column so it owns pool pages.
  const auto queries = MakeQueries(db.corpus(), 4);
  SearchOptions opts;
  SearchResult r;
  ASSERT_TRUE(db.Search(queries[0], RunType::kBm25TC, opts, &r).ok());

  std::shared_ptr<const Snapshot> pin = db.Acquire();
  ASSERT_EQ(pin->segments.size(), 1u);
  const uint32_t base_file =
      db.index()->storage()->docid_compressed.file_id();
  storage::BufferManager* pool = db.index()->buffer_manager();
  EXPECT_GT(pool->ResidentPagesOfFile(base_file), 0u);
  const std::string base_meta = dopts.dir + "/" + kIndexMetaFile;
  ASSERT_TRUE(std::filesystem::exists(base_meta));

  Rng rng(59);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        db.AddDocument(RandomDoc(&rng, db.corpus().vocab_size()), nullptr)
            .ok());
  }
  ASSERT_TRUE(db.Merge().ok());

  // The commit replaced the base segment, but `pin` still holds it: its
  // files and pool pages must survive — a pinned reader may touch them.
  EXPECT_TRUE(std::filesystem::exists(base_meta));
  EXPECT_GT(pool->ResidentPagesOfFile(base_file), 0u);
  ASSERT_TRUE(
      SearchSnapshot(*pin, queries[0], RunType::kBm25TC, opts, &r).ok());

  // Last pin out: the base segment's root-layout files are deleted and
  // exactly its pages drop from the shared pool; the merged segment (and
  // the manifest) are untouched.
  pin.reset();
  EXPECT_FALSE(std::filesystem::exists(base_meta));
  EXPECT_EQ(pool->ResidentPagesOfFile(base_file), 0u);
  EXPECT_TRUE(std::filesystem::exists(dopts.dir + "/" + kManifestFile));
  EXPECT_TRUE(std::filesystem::exists(dopts.dir + "/seg_1/" +
                                      std::string(kIndexMetaFile)));

  // The post-merge database still serves storage runs from seg_1.
  ASSERT_TRUE(db.Search(queries[0], RunType::kBm25TCMQ8, opts, &r).ok());
}

// ---------------------------------------------------------------------------
// Durability: manifest adoption and torn-manifest fallback.
// ---------------------------------------------------------------------------

TEST(SegmentTest, ManifestReopenAdoptsMergedStateAndDeletes) {
  core::DatabaseOptions dopts;
  dopts.corpus = TinyGenerated();
  dopts.dir = FreshDir("db");
  dopts.storage.page_bytes = 4096;

  LiveModel model;
  std::vector<Query> queries;
  {
    core::Database db;
    ASSERT_TRUE(db.Open(dopts).ok());
    model.InitFrom(db.corpus());
    queries = MakeQueries(db.corpus(), 15);
    Rng rng(61);
    for (int i = 0; i < 80; ++i) {
      const std::vector<uint32_t> terms = RandomDoc(&rng, model.vocab);
      ASSERT_TRUE(db.AddDocument(terms, nullptr).ok());
      model.Add(terms);
    }
    for (int32_t d : {2, 50, 401, 430}) {
      ASSERT_TRUE(db.DeleteDocument(d).ok());
      model.Delete(d);
    }
    ASSERT_TRUE(db.Merge().ok());
    // A post-merge delete on a persisted segment doc must rewrite the
    // manifest — it has to survive the reopen below.
    ASSERT_TRUE(db.DeleteDocument(77).ok());
    model.Delete(77);
  }  // close: joins the merge pool, releases every snapshot

  core::Database db2;
  ASSERT_TRUE(db2.Open(dopts).ok());
  EXPECT_TRUE(db2.build_stats().reused_files);

  // Merged docs (including the formerly-volatile delta docs) survived;
  // every delete — including the post-merge one — stuck.
  Oracle oracle;
  BuildOracle(model, &oracle);
  ExpectMatchesOracle(db2, oracle, queries);
  EXPECT_EQ(db2.DeleteDocument(77).code(), StatusCode::kNotFound);
  EXPECT_EQ(db2.DeleteDocument(2).code(), StatusCode::kNotFound);

  // Docid allocation resumes after the persisted high-water mark.
  int32_t docid = -1;
  ASSERT_TRUE(db2.AddDocument({1, 2, 3}, &docid).ok());
  EXPECT_EQ(docid, static_cast<int32_t>(model.docs.size()));
}

TEST(SegmentTest, TornManifestFallsBackToCleanRebuild) {
  core::DatabaseOptions dopts;
  dopts.corpus = TinyGenerated();
  dopts.dir = FreshDir("db");
  dopts.storage.page_bytes = 4096;
  {
    core::Database db;
    ASSERT_TRUE(db.Open(dopts).ok());
    Rng rng(67);
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(
          db.AddDocument(RandomDoc(&rng, db.corpus().vocab_size()), nullptr)
              .ok());
    }
    ASSERT_TRUE(db.DeleteDocument(5).ok());
    ASSERT_TRUE(db.Merge().ok());
  }
  const std::string manifest = dopts.dir + "/" + kManifestFile;
  ASSERT_TRUE(std::filesystem::exists(manifest));
  ASSERT_TRUE(std::filesystem::exists(dopts.dir + "/seg_1"));

  // Tear the manifest mid-header.
  std::filesystem::resize_file(manifest, 9);

  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());

  // Clean rebuild: back to the corpus-only world — the merged segment and
  // its deletes are gone (delta docs were volatile, segment state was
  // unreadable), the stale segment directory is swept, and epoch restarts.
  EXPECT_EQ(db.epoch(), 0u);
  EXPECT_FALSE(std::filesystem::exists(dopts.dir + "/seg_1"));
  auto snap = db.Acquire();
  EXPECT_TRUE(snap->plain);
  EXPECT_EQ(snap->stats->num_docs, db.corpus().num_docs());
  int32_t docid = -1;
  ASSERT_TRUE(db.AddDocument({1, 2, 3}, &docid).ok());
  EXPECT_EQ(docid, static_cast<int32_t>(db.corpus().num_docs()));

  // And it queries like the monolith it is.
  LiveModel model;
  model.InitFrom(db.corpus());
  model.Add({1, 2, 3});
  Oracle oracle;
  BuildOracle(model, &oracle);
  ExpectMatchesOracle(db, oracle, MakeQueries(db.corpus(), 10));
}

// ---------------------------------------------------------------------------
// Soak: 1K seeded mixed ops, oracle-checked throughout, zero crashes.
// ---------------------------------------------------------------------------

TEST(SegmentTest, SoakMixedOpsHoldOracleInvariant) {
  core::DatabaseOptions dopts;
  dopts.corpus = TinyGenerated(/*num_docs=*/200);
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());

  LiveModel model;
  model.InitFrom(db.corpus());
  const auto queries = MakeQueries(db.corpus(), 10);

  Rng rng(2007);
  uint32_t merges_started = 0, verifies = 0;
  for (int op = 0; op < 1000; ++op) {
    const uint64_t roll = rng.Next() % 100;
    if (roll < 55) {
      const std::vector<uint32_t> terms = RandomDoc(&rng, model.vocab);
      int32_t docid = -1;
      ASSERT_TRUE(db.AddDocument(terms, &docid).ok());
      ASSERT_EQ(docid, model.Add(terms));
    } else if (roll < 80) {
      const int32_t d = static_cast<int32_t>(
          rng.Next() % static_cast<uint64_t>(model.docs.size()));
      const Status s = db.DeleteDocument(d);
      if (model.dead[static_cast<size_t>(d)]) {
        EXPECT_EQ(s.code(), StatusCode::kNotFound) << d;
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString();
        model.Delete(d);
      }
    } else if (roll < 92) {
      // Point-in-time verify: the test thread is the only mutator, so the
      // current snapshot equals the model even while a merge runs.
      const Query& q = queries[static_cast<size_t>(op) % queries.size()];
      Oracle oracle;
      BuildOracle(model, &oracle);
      SearchOptions exact;
      exact.maxscore_bm25 = false;
      exact.k = 40;
      SearchResult got, want;
      ASSERT_TRUE(db.Search(q, RunType::kBm25, exact, &got).ok());
      ASSERT_TRUE(OracleSearch(oracle, q, RunType::kBm25, exact, &want).ok());
      ASSERT_EQ(got.docids, want.docids) << "op " << op;
      ASSERT_EQ(got.scores, want.scores) << "op " << op;
      ++verifies;
    } else {
      const Status s = db.StartMerge();
      if (s.ok()) {
        ++merges_started;
      } else {
        EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
      }
    }
    if (op % 250 == 249) {
      ASSERT_TRUE(db.WaitMerge().ok());
      Oracle oracle;
      BuildOracle(model, &oracle);
      ExpectMatchesOracle(db, oracle, {queries[0], queries[5]});
    }
  }
  ASSERT_TRUE(db.WaitMerge().ok());
  EXPECT_GT(merges_started, 0u);
  EXPECT_GT(verifies, 0u);
  EXPECT_EQ(db.Acquire()->stats->num_docs, model.live_count());

  Oracle oracle;
  BuildOracle(model, &oracle);
  ExpectMatchesOracle(db, oracle, queries);
}

// ---------------------------------------------------------------------------
// Block-max metadata on segment paths (DESIGN.md §12.1)
// ---------------------------------------------------------------------------

// Same soundness property ir_test pins on the monolithic builder, applied
// to a segment's index: every persisted window bound dominates every
// posting's true idf-free contribution. Tombstones never touch the
// postings themselves — deletes only shrink a window's *true* maxima — so
// the stored bounds must hold regardless of the deletes layered on top.
void CheckSegmentBlockMaxSound(const InvertedIndex& index) {
  std::vector<int32_t> docid_col, tf_col;
  for (uint32_t t = 0; t < index.vocab_size(); ++t) {
    std::vector<int32_t> d, f;
    ASSERT_TRUE(index.DecodePostings(t, &d, &f).ok());
    docid_col.insert(docid_col.end(), d.begin(), d.end());
    tf_col.insert(tf_col.end(), f.begin(), f.end());
  }
  const uint64_t n = index.num_postings();
  ASSERT_EQ(docid_col.size(), n);
  const std::vector<BlockMaxEntry>& bm = index.block_max();
  ASSERT_EQ(bm.size(), (n + 127) / 128);
  const float inv_avgdl = static_cast<float>(1.0 / index.avg_doc_len());
  for (uint64_t p = 0; p < n; ++p) {
    const BlockMaxEntry& e = bm[p / 128];
    const int32_t dl = index.doc_lens()[docid_col[p]];
    ASSERT_GE(e.max_tf, tf_col[p]) << "posting " << p;
    ASSERT_LE(e.min_doclen, dl) << "posting " << p;
    ASSERT_GE(e.ub, Bm25One(1.0f, static_cast<float>(tf_col[p]),
                            static_cast<float>(dl),
                            InvertedIndex::kMaterializedK1,
                            InvertedIndex::kMaterializedB, inv_avgdl))
        << "posting " << p;
  }
}

TEST(SegmentTest, BlockMaxStaysSoundAcrossSealMergeAndDeletes) {
  const std::string dir = FreshDir("blockmax");
  core::DatabaseOptions dopts;
  dopts.corpus = TinyGenerated();
  dopts.dir = dir;
  core::Database db;
  ASSERT_TRUE(db.Open(dopts).ok());

  // Base + sealed delta: adds (odd doc lengths so windows land on hostile
  // offsets), deletes, then a merge that purges tombstones and re-encodes.
  Rng rng(47);
  for (int i = 0; i < 131; ++i) {
    const std::vector<uint32_t> terms = RandomDoc(&rng, 600);
    int32_t docid = -1;
    ASSERT_TRUE(db.AddDocument(terms, &docid).ok());
  }
  for (int32_t d = 0; d < 40; d += 3) {
    ASSERT_TRUE(db.DeleteDocument(d).ok());
  }
  ASSERT_TRUE(db.Merge().ok());
  for (int i = 0; i < 67; ++i) {
    const std::vector<uint32_t> terms = RandomDoc(&rng, 600);
    int32_t docid = -1;
    ASSERT_TRUE(db.AddDocument(terms, &docid).ok());
  }
  ASSERT_TRUE(db.DeleteDocument(200).ok());
  ASSERT_TRUE(db.Merge().ok());

  // Every segment of the committed view — the merged segment included —
  // carries a sound block-max table.
  auto snap = db.Acquire();
  ASSERT_FALSE(snap->segments.empty());
  for (const Snapshot::SegmentRead& read : snap->segments) {
    CheckSegmentBlockMaxSound(read.seg->index());
  }

  // And a manifest reopen reloads the tables (LoadFromDir path) intact.
  {
    core::Database reopened;
    ASSERT_TRUE(reopened.Open(dopts).ok());
    auto snap2 = reopened.Acquire();
    ASSERT_FALSE(snap2->segments.empty());
    for (const Snapshot::SegmentRead& read : snap2->segments) {
      CheckSegmentBlockMaxSound(read.seg->index());
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace x100ir::ir
