// Tests for the common support layer: Rng determinism + Fork, deadlines,
// the worker pool, branch-predictor simulation, string/table formatting,
// Status, timers, perf counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/branch_sim.h"
#include "common/deadline.h"
#include "common/perf_counters.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace x100ir {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next()) << "draw " << i;
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, GoldenFirstDraws) {
  // Pins the exact stream: synthetic corpora must be reproducible across
  // machines and future refactors.
  Rng rng(2007);
  Rng same(2007);
  const uint64_t first = rng.Next();
  EXPECT_EQ(first, same.Next());
  Rng again(2007);
  EXPECT_EQ(again.Next(), first);
}

TEST(Rng, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 30ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(Rng, BernoulliEdgesAndRate) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
  int hits = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

// The §9.1 per-query stream contract: Fork is a const derivation from the
// parent's seed and the ordinal — reproducible, order-independent, and
// non-consuming, so a service can hand query N its private stream no
// matter which thread runs it or when.
TEST(Rng, ForkIsDeterministicAndOrderIndependent) {
  Rng parent(2007);
  Rng a1 = parent.Fork(5);
  Rng b1 = parent.Fork(9);
  // Forking in the opposite order (from an identically-seeded parent)
  // yields the same child streams.
  Rng parent2(2007);
  Rng b2 = parent2.Fork(9);
  Rng a2 = parent2.Fork(5);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(a1.Next(), a2.Next()) << "draw " << i;
    ASSERT_EQ(b1.Next(), b2.Next()) << "draw " << i;
  }
  // Fork never consumes parent state.
  Rng fresh(2007);
  EXPECT_EQ(parent.Next(), fresh.Next());
}

TEST(Rng, ForkedStreamsDecorrelate) {
  Rng parent(123);
  // Consecutive ordinals (the service's submission counter) must not give
  // correlated streams.
  Rng a = parent.Fork(1000);
  Rng b = parent.Fork(1001);
  int equal = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Deadline, DefaultNeverExpiresButCancels) {
  Deadline d;
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.Check().ok());
  EXPECT_TRUE(d.remaining_seconds() > 1e18);
  d.Cancel();
  EXPECT_TRUE(d.cancelled());
  EXPECT_EQ(d.Check().code(), StatusCode::kUnavailable);
}

TEST(Deadline, ZeroOrNegativeIsAlreadyExpired) {
  Deadline zero(0.0);
  EXPECT_TRUE(zero.expired());
  EXPECT_EQ(zero.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LE(zero.remaining_seconds(), 0.0);
  Deadline negative(-5.0);
  EXPECT_TRUE(negative.expired());
}

TEST(Deadline, FutureDeadlineIsLiveAndCancelWins) {
  Deadline d(3600.0);
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.Check().ok());
  EXPECT_GT(d.remaining_seconds(), 3500.0);
  // Cancellation outranks a live deadline — a cancelled query reports the
  // service's shutdown, not a fake timeout.
  d.Cancel();
  EXPECT_EQ(d.Check().code(), StatusCode::kUnavailable);
}

TEST(Deadline, CancelIsVisibleAcrossThreads) {
  Deadline d(3600.0);
  std::atomic<bool> saw{false};
  std::thread watcher([&] {
    while (!d.cancelled()) std::this_thread::yield();
    saw.store(true);
  });
  d.Cancel();
  watcher.join();
  EXPECT_TRUE(saw.load());
}

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Shutdown();  // drains queued work before joining
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, SubmitFromInsideATask) {
  ThreadPool pool(2);
  std::atomic<int> outer{0}, inner{0};
  std::atomic<bool> chained{false};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      outer.fetch_add(1);
      pool.Submit([&] {
        inner.fetch_add(1);
        chained.store(true);
      });
    });
  }
  // Shutdown drains tasks queued *before* it, including the nested ones
  // already submitted by then; wait for the fan-out to settle first.
  while (inner.load() < 16) std::this_thread::yield();
  pool.Shutdown();
  EXPECT_EQ(outer.load(), 16);
  EXPECT_EQ(inner.load(), 16);
  EXPECT_TRUE(chained.load());
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Shutdown();
  EXPECT_TRUE(ran.load());
}

TEST(BranchSim, AllTakenIsNearlyPerfect) {
  BranchPredictorSim sim;
  for (int i = 0; i < 100000; ++i) sim.Predict(0x40, true);
  EXPECT_LT(sim.MissRatePercent(), 1.0);
  EXPECT_EQ(sim.predictions(), 100000u);
}

TEST(BranchSim, AlternatingIsLearnedViaHistory) {
  // A plain 2-bit bimodal predictor misses ~50% on T/N/T/N; gshare's
  // history register separates the two phases and learns the pattern.
  BranchPredictorSim sim;
  for (int i = 0; i < 100000; ++i) sim.Predict(0x40, (i & 1) != 0);
  EXPECT_LT(sim.MissRatePercent(), 5.0);
}

TEST(BranchSim, RandomBranchIsNearChance) {
  BranchPredictorSim sim;
  Rng rng(17);
  for (int i = 0; i < 100000; ++i) sim.Predict(0x40, rng.NextBernoulli(0.5));
  EXPECT_GT(sim.MissRatePercent(), 35.0);
  EXPECT_LT(sim.MissRatePercent(), 65.0);
}

TEST(BranchSim, BiasedBranchMissesTrackRate) {
  BranchPredictorSim sim;
  Rng rng(19);
  for (int i = 0; i < 100000; ++i) sim.Predict(0x40, rng.NextBernoulli(0.05));
  // A 5%-taken branch should miss well below chance.
  EXPECT_LT(sim.MissRatePercent(), 15.0);
}

TEST(BranchSim, ResetClearsState) {
  BranchPredictorSim sim;
  for (int i = 0; i < 100; ++i) sim.Predict(0x40, true);
  sim.Reset();
  EXPECT_EQ(sim.predictions(), 0u);
  EXPECT_EQ(sim.misses(), 0u);
  EXPECT_EQ(sim.MissRatePercent(), 0.0);
}

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d/%d", 3, 7), "3/7");
  EXPECT_EQ(StrFormat("%.2f GB/s", 3.14159), "3.14 GB/s");
  EXPECT_EQ(StrFormat("%s", ""), "");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StrFormat, HandlesResultsLargerThanStackBuffer) {
  std::string big(1000, 'x');
  std::string out = StrFormat("[%s]", big.c_str());
  EXPECT_EQ(out.size(), 1002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST(StrFormat, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(10ull * 1024 * 1024 * 1024), "10.0 GB");
}

TEST(TablePrinter, AlignsColumnsAndRows) {
  TablePrinter table({"name", "GB/s"});
  table.AddRow({"naive", "0.52"});
  table.AddRow({"patched", "3.50"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("patched"), std::string::npos);
  EXPECT_NE(out.find("3.50"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Numeric column is right-aligned under its header.
  EXPECT_NE(out.find("0.52"), std::string::npos);
}

TEST(TablePrinter, PadsMissingCells) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only-one"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(OkStatus().ok());
}

TEST(Status, ErrorRoundTrip) {
  Status s = InvalidArgument("bit_width must be in [1, 30]");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bit_width must be in [1, 30]");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bit_width must be in [1, 30]");
  Status io = IOError("disk on fire");
  EXPECT_EQ(io.code(), StatusCode::kIOError);
  EXPECT_NE(io.ToString().find("disk on fire"), std::string::npos);
}

TEST(Status, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Internal("boom"); };
  auto wrapper = [&]() -> Status {
    X100IR_RETURN_IF_ERROR(fails());
    return OkStatus();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(Timer, ElapsedIsMonotonicNonNegative) {
  WallTimer timer;
  double t0 = timer.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  double t1 = timer.ElapsedSeconds();
  EXPECT_GE(t1, t0);
  timer.Reset();
  EXPECT_LE(timer.ElapsedSeconds(), t1 + 1.0);
}

TEST(PerfCounters, GracefulWhenUnavailable) {
  // In containers perf_event_open is usually denied; either way the calls
  // must be safe and the reading well-defined.
  PerfCounterGroup counters;
  PerfReading reading;
  counters.Start();
  volatile int sink = 0;
  for (int i = 0; i < 10000; ++i) sink += i & 3;
  counters.Stop(&reading);
  if (!counters.Available()) {
    EXPECT_EQ(reading.branches, 0u);
    EXPECT_EQ(reading.BranchMissRate(), 0.0);
  } else {
    EXPECT_GT(reading.branches, 0u);
    EXPECT_GE(reading.BranchMissRate(), 0.0);
    EXPECT_LE(reading.BranchMissRate(), 100.0);
  }
}

}  // namespace
}  // namespace x100ir
