// End-to-end tests for the query API: corpus generation and qrels, the
// query generator, index build/persist/reuse, BoolAND/BoolOR result sets vs
// a naive set oracle, BM25 top-k vs a naive full-scan scorer (the golden
// retrieval test — acceptance pins agreement to 1e-5), top-k heap
// semantics, p@20 metrics, and vector-size validation through the public
// Database::Search API.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/database.h"
#include "ir/corpus.h"
#include "ir/custom_engine.h"
#include "ir/index_builder.h"
#include "ir/metrics.h"
#include "ir/query_gen.h"
#include "ir/search_engine.h"
#include "ir/topk.h"

namespace x100ir::ir {
namespace {

// ---------------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------------

// Naive BM25 scorer: full scan over the corpus, float arithmetic mirroring
// the fused kernel term by term (idf via the same formula the index
// builder uses), ranked (score desc, docid asc).
struct OracleHit {
  int32_t docid;
  float score;
};

std::vector<OracleHit> OracleBm25(const Corpus& corpus,
                                  const std::vector<uint32_t>& terms,
                                  const Bm25Params& params) {
  const uint32_t n_docs = corpus.num_docs();
  std::vector<uint32_t> sorted_terms = terms;
  std::sort(sorted_terms.begin(), sorted_terms.end());
  sorted_terms.erase(std::unique(sorted_terms.begin(), sorted_terms.end()),
                     sorted_terms.end());

  std::vector<float> idf(sorted_terms.size());
  for (size_t i = 0; i < sorted_terms.size(); ++i) {
    uint32_t df = 0;
    for (uint32_t d = 0; d < n_docs; ++d) {
      for (const DocTerm& p : corpus.doc(d)) {
        if (p.term == sorted_terms[i]) ++df;
      }
    }
    idf[i] = static_cast<float>(
        std::log(1.0 + (static_cast<double>(n_docs) - df + 0.5) / (df + 0.5)));
  }
  const float inv_avgdl = static_cast<float>(1.0 / corpus.avg_doc_len());

  std::vector<OracleHit> hits;
  for (uint32_t d = 0; d < n_docs; ++d) {
    float score = 0.0f;
    bool matched = false;
    for (size_t i = 0; i < sorted_terms.size(); ++i) {
      for (const DocTerm& p : corpus.doc(d)) {
        if (p.term != sorted_terms[i]) continue;
        const float w = idf[i] * (params.k1 + 1.0f);
        const float c0 = params.k1 * (1.0f - params.b);
        const float c1 = params.k1 * params.b * inv_avgdl;
        const float tff = static_cast<float>(p.tf);
        score += w * tff /
                 (tff + c0 + c1 * static_cast<float>(corpus.doc_len(d)));
        matched = true;
      }
    }
    if (matched) hits.push_back({static_cast<int32_t>(d), score});
  }
  std::sort(hits.begin(), hits.end(), [](const OracleHit& a,
                                         const OracleHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.docid < b.docid;
  });
  return hits;
}

// Naive boolean oracle over the corpus.
std::vector<int32_t> OracleBool(const Corpus& corpus,
                                const std::vector<uint32_t>& terms,
                                bool conjunctive) {
  std::vector<int32_t> out;
  for (uint32_t d = 0; d < corpus.num_docs(); ++d) {
    uint32_t present = 0;
    for (uint32_t t : terms) {
      for (const DocTerm& p : corpus.doc(d)) {
        if (p.term == t) {
          ++present;
          break;
        }
      }
    }
    const bool match =
        conjunctive ? present == terms.size() : present > 0;
    if (match) out.push_back(static_cast<int32_t>(d));
  }
  return out;
}

// Compares two ranked results that were produced by different execution
// paths of the same retrieval model. The paths sum per-term float
// contributions in different orders (score-all union: merge order;
// MaxScore: essential streams then probes strongest-first), so genuinely
// tied documents can differ in the last ulp and legally swap ranks or
// substitute across the k boundary. Scores must agree to `tol` rank by
// rank everywhere; docids must match exactly at every rank that is not
// score-tied with a neighbor.
void ExpectRankingsEquivalent(const std::vector<int32_t>& docids_a,
                              const std::vector<float>& scores_a,
                              const std::vector<int32_t>& docids_b,
                              const std::vector<float>& scores_b,
                              float tol) {
  ASSERT_EQ(docids_a.size(), docids_b.size());
  ASSERT_EQ(scores_a.size(), scores_b.size());
  const size_t n = docids_a.size();
  for (size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(scores_a[i], scores_b[i], tol) << "rank " << i;
    const bool tied_prev =
        i > 0 && std::abs(scores_a[i] - scores_a[i - 1]) <= tol;
    const bool tied_next =
        i + 1 < n && std::abs(scores_a[i] - scores_a[i + 1]) <= tol;
    // The last kept rank can also tie against the first *dropped* score,
    // which is not observable here, so it is exempt from exact equality.
    if (!tied_prev && !tied_next && i + 1 < n) {
      EXPECT_EQ(docids_a[i], docids_b[i]) << "rank " << i;
    }
  }
}

// The golden corpus: 8 tiny hand-built documents over a 10-term
// vocabulary, chosen so AND/OR/ranking all have non-trivial answers.
Corpus GoldenCorpus() {
  std::vector<std::vector<uint32_t>> docs = {
      {0, 1, 2, 2, 3},              // doc 0
      {1, 2, 4},                    // doc 1
      {0, 0, 0, 5, 6},              // doc 2
      {2, 2, 2, 2, 7},              // doc 3
      {1, 3, 5, 7, 9},              // doc 4
      {8, 8, 9},                    // doc 5
      {0, 1, 2, 3, 4, 5, 6, 7, 8},  // doc 6
      {2, 9},                       // doc 7
  };
  Corpus corpus;
  EXPECT_TRUE(Corpus::FromDocuments(docs, 10, &corpus).ok());
  return corpus;
}

CorpusOptions SmallGeneratedOptions() {
  CorpusOptions opts;
  opts.num_docs = 2000;
  opts.vocab_size = 3000;
  opts.zipf_s = 1.05;
  opts.doclen_mu = 3.5;  // ~35 terms/doc: keeps the oracle scan fast
  opts.doclen_sigma = 0.5;
  opts.num_topics = 12;
  opts.terms_per_topic = 5;
  opts.relevant_docs_per_topic = 40;
  opts.topical_mass = 0.35;
  opts.topic_rank_min = 20;
  opts.topic_rank_max = 300;
  opts.seed = 2007;
  return opts;
}

std::string TempIndexDir(const char* name) {
  return std::string(::testing::TempDir()) + "/x100ir_" + name;
}

// ---------------------------------------------------------------------------
// Corpus + query generator
// ---------------------------------------------------------------------------

TEST(Corpus, GenerateIsDeterministicAndShaped) {
  const CorpusOptions opts = SmallGeneratedOptions();
  Corpus a, b;
  ASSERT_TRUE(Corpus::Generate(opts, &a).ok());
  ASSERT_TRUE(Corpus::Generate(opts, &b).ok());
  ASSERT_EQ(a.num_docs(), opts.num_docs);
  ASSERT_EQ(a.num_postings(), b.num_postings());
  ASSERT_EQ(a.Fingerprint(), b.Fingerprint());
  for (uint32_t d = 0; d < a.num_docs(); d += 97) {
    ASSERT_EQ(a.doc(d).size(), b.doc(d).size()) << d;
    for (size_t i = 0; i < a.doc(d).size(); ++i) {
      ASSERT_EQ(a.doc(d)[i].term, b.doc(d)[i].term);
      ASSERT_EQ(a.doc(d)[i].tf, b.doc(d)[i].tf);
    }
  }
  // Log-normal(3.5, 0.5) has mean exp(3.5 + 0.125) ≈ 37.7.
  EXPECT_GT(a.avg_doc_len(), 25.0);
  EXPECT_LT(a.avg_doc_len(), 55.0);
  ASSERT_EQ(a.num_topics(), opts.num_topics);
  for (uint32_t t = 0; t < a.num_topics(); ++t) {
    ASSERT_EQ(a.topic_terms(t).size(), opts.terms_per_topic);
    ASSERT_EQ(a.relevant_docs(t).size(), opts.relevant_docs_per_topic);
    for (uint32_t term : a.topic_terms(t)) {
      EXPECT_GE(term, opts.topic_rank_min);
      EXPECT_LT(term, opts.topic_rank_max);
    }
  }
  // Zipf skew: the most frequent term's df dwarfs a mid-tail term's.
  Corpus* c = &a;
  auto df_of = [c](uint32_t term) {
    uint32_t df = 0;
    for (uint32_t d = 0; d < c->num_docs(); ++d) {
      for (const DocTerm& p : c->doc(d)) {
        if (p.term == term) ++df;
      }
    }
    return df;
  };
  EXPECT_GT(df_of(0), 10 * std::max<uint32_t>(1, df_of(1000)));

  // A different seed produces a different stream.
  CorpusOptions other = opts;
  other.seed = 4242;
  Corpus d2;
  ASSERT_TRUE(Corpus::Generate(other, &d2).ok());
  EXPECT_NE(a.Fingerprint(), d2.Fingerprint());
}

TEST(Corpus, RejectsInconsistentOptions) {
  Corpus c;
  CorpusOptions opts = SmallGeneratedOptions();
  opts.num_docs = 0;
  EXPECT_FALSE(Corpus::Generate(opts, &c).ok());

  opts = SmallGeneratedOptions();
  opts.topic_rank_max = opts.vocab_size + 1;
  EXPECT_FALSE(Corpus::Generate(opts, &c).ok());

  opts = SmallGeneratedOptions();
  opts.relevant_docs_per_topic = opts.num_docs;  // 12 topics won't fit
  EXPECT_FALSE(Corpus::Generate(opts, &c).ok());

  EXPECT_FALSE(Corpus::FromDocuments({{0, 11}}, 10, &c).ok());  // term range
  EXPECT_FALSE(Corpus::FromDocuments({{}}, 10, &c).ok());       // empty doc
}

TEST(QueryGen, EvalQueriesComeFromTopics) {
  Corpus corpus;
  ASSERT_TRUE(Corpus::Generate(SmallGeneratedOptions(), &corpus).ok());
  QueryGenOptions qopts;
  qopts.num_eval_queries = 30;
  QueryGenerator gen(corpus, qopts);
  const auto queries = gen.EvalQueries();
  ASSERT_EQ(queries.size(), 30u);
  for (const Query& q : queries) {
    ASSERT_GE(q.topic, 0);
    ASSERT_LT(static_cast<uint32_t>(q.topic), corpus.num_topics());
    ASSERT_GE(q.terms.size(), 1u);
    const auto& tt = corpus.topic_terms(static_cast<uint32_t>(q.topic));
    for (uint32_t term : q.terms) {
      EXPECT_NE(std::find(tt.begin(), tt.end(), term), tt.end());
    }
  }
  // Deterministic across calls.
  const auto again = gen.EvalQueries();
  ASSERT_EQ(again.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(again[i].terms, queries[i].terms);
  }
}

TEST(QueryGen, EfficiencyQueriesMatchLogShape) {
  Corpus corpus;
  ASSERT_TRUE(Corpus::Generate(SmallGeneratedOptions(), &corpus).ok());
  QueryGenOptions qopts;
  qopts.num_efficiency_queries = 2000;
  QueryGenerator gen(corpus, qopts);
  const auto queries = gen.EfficiencyQueries();
  ASSERT_EQ(queries.size(), 2000u);
  double terms = 0.0;
  for (const Query& q : queries) {
    EXPECT_EQ(q.topic, -1);
    ASSERT_GE(q.terms.size(), 1u);
    ASSERT_LE(q.terms.size(), 5u);
    std::set<uint32_t> distinct(q.terms.begin(), q.terms.end());
    EXPECT_EQ(distinct.size(), q.terms.size());
    for (uint32_t t : q.terms) ASSERT_LT(t, corpus.vocab_size());
    terms += static_cast<double>(q.terms.size());
  }
  const double avg = terms / static_cast<double>(queries.size());
  EXPECT_GT(avg, 2.0);  // paper's query log: 2.3 terms on average
  EXPECT_LT(avg, 2.6);
}

TEST(QueryGen, TinyVocabularyTerminates) {
  // Drawn query lengths can exceed a hand-built corpus's distinct-term
  // count; the generator must clamp instead of spinning forever.
  Corpus tiny;
  ASSERT_TRUE(Corpus::FromDocuments({{0, 1, 0}, {1, 2}}, 3, &tiny).ok());
  QueryGenOptions qopts;
  qopts.num_efficiency_queries = 50;
  QueryGenerator gen(tiny, qopts);
  const auto queries = gen.EfficiencyQueries();
  ASSERT_EQ(queries.size(), 50u);
  for (const Query& q : queries) {
    ASSERT_GE(q.terms.size(), 1u);
    ASSERT_LE(q.terms.size(), 3u);
  }
  EXPECT_TRUE(gen.EvalQueries().empty());  // no planted topics
}

// ---------------------------------------------------------------------------
// Index build, persistence, reuse
// ---------------------------------------------------------------------------

TEST(Index, PostingsRoundTripAgainstCorpus) {
  Corpus corpus = GoldenCorpus();
  InvertedIndex index;
  BuildStats stats;
  ASSERT_TRUE(index.BuildFromCorpus(corpus, "", &stats).ok());
  ASSERT_EQ(stats.num_postings, corpus.num_postings());
  ASSERT_EQ(index.num_docs(), corpus.num_docs());

  // Term 2 appears in docs 0 (tf 2), 1 (tf 1), 3 (tf 4), 6 (tf 1),
  // 7 (tf 1).
  std::vector<int32_t> docids, tfs;
  ASSERT_TRUE(index.DecodePostings(2, &docids, &tfs).ok());
  EXPECT_EQ(docids, (std::vector<int32_t>{0, 1, 3, 6, 7}));
  EXPECT_EQ(tfs, (std::vector<int32_t>{2, 1, 4, 1, 1}));
  EXPECT_EQ(index.term(2).doc_freq, 5u);

  // Every term's decoded postings match a corpus scan.
  for (uint32_t t = 0; t < corpus.vocab_size(); ++t) {
    ASSERT_TRUE(index.DecodePostings(t, &docids, &tfs).ok());
    std::vector<int32_t> want_docs;
    std::vector<int32_t> want_tfs;
    for (uint32_t d = 0; d < corpus.num_docs(); ++d) {
      for (const DocTerm& p : corpus.doc(d)) {
        if (p.term == t) {
          want_docs.push_back(static_cast<int32_t>(d));
          want_tfs.push_back(p.tf);
        }
      }
    }
    EXPECT_EQ(docids, want_docs) << "term " << t;
    EXPECT_EQ(tfs, want_tfs) << "term " << t;
  }
}

TEST(Index, PersistsAndReusesColumnFiles) {
  const std::string dir = TempIndexDir("reuse");
  std::filesystem::remove_all(dir);

  Corpus corpus;
  ASSERT_TRUE(Corpus::Generate(SmallGeneratedOptions(), &corpus).ok());

  InvertedIndex first;
  BuildStats stats;
  ASSERT_TRUE(first.BuildFromCorpus(corpus, dir, &stats).ok());
  EXPECT_FALSE(stats.reused_files);
  EXPECT_EQ(stats.num_postings, corpus.num_postings());
  for (const char* f : {kDocidRawFile, kDocidCompressedFile, kTfRawFile,
                        kTfCompressedFile, kIndexMetaFile}) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + f)) << f;
  }
  // Compression earns its keep on the synthetic collection.
  EXPECT_LT(std::filesystem::file_size(dir + "/" + kDocidCompressedFile),
            std::filesystem::file_size(dir + "/" + kDocidRawFile) / 2);

  InvertedIndex second;
  ASSERT_TRUE(second.BuildFromCorpus(corpus, dir, &stats).ok());
  EXPECT_TRUE(stats.reused_files);
  std::vector<int32_t> a, b;
  ASSERT_TRUE(first.DecodePostings(50, &a, nullptr).ok());
  ASSERT_TRUE(second.DecodePostings(50, &b, nullptr).ok());
  EXPECT_EQ(a, b);

  // A different corpus fingerprint must not reuse the files.
  CorpusOptions other_opts = SmallGeneratedOptions();
  other_opts.seed = 99;
  Corpus other;
  ASSERT_TRUE(Corpus::Generate(other_opts, &other).ok());
  InvertedIndex third;
  ASSERT_TRUE(third.BuildFromCorpus(other, dir, &stats).ok());
  EXPECT_FALSE(stats.reused_files);

  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Golden retrieval: engine vs oracles
// ---------------------------------------------------------------------------

class GoldenSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = GoldenCorpus();
    BuildStats stats;
    ASSERT_TRUE(index_.BuildFromCorpus(corpus_, "", &stats).ok());
    engine_.set_index(&index_);
  }

  Corpus corpus_;
  InvertedIndex index_;
  SearchEngine engine_;
};

TEST_F(GoldenSearchTest, BooleanRunsMatchSetOracle) {
  const std::vector<std::vector<uint32_t>> term_sets = {
      {2}, {0, 2}, {1, 2, 3}, {8, 9}, {0, 5}, {4, 6, 8}};
  for (const auto& terms : term_sets) {
    for (bool conjunctive : {true, false}) {
      Query q;
      q.terms = terms;
      SearchOptions opts;
      opts.k = 100;  // no truncation at this scale
      SearchResult result;
      ASSERT_TRUE(engine_
                      .Search(q,
                              conjunctive ? RunType::kBoolAnd
                                          : RunType::kBoolOr,
                              opts, &result)
                      .ok());
      const auto want = OracleBool(corpus_, terms, conjunctive);
      EXPECT_EQ(result.docids, want)
          << (conjunctive ? "AND" : "OR") << " terms[0]=" << terms[0];
      EXPECT_EQ(result.num_matches, want.size());
      EXPECT_TRUE(result.scores.empty());
    }
  }
}

TEST_F(GoldenSearchTest, BooleanRespectsResultCap) {
  Query q;
  q.terms = {2};
  SearchOptions opts;
  opts.k = 2;
  SearchResult result;
  ASSERT_TRUE(engine_.Search(q, RunType::kBoolOr, opts, &result).ok());
  EXPECT_EQ(result.docids, (std::vector<int32_t>{0, 1}));
  EXPECT_EQ(result.num_matches, 5u);  // full count survives the cap
}

TEST_F(GoldenSearchTest, Bm25TopKMatchesOracleTo1e5) {
  const std::vector<std::vector<uint32_t>> term_sets = {
      {2}, {0, 2}, {1, 2, 3}, {0, 1, 2, 3, 4}, {9}, {5, 8}};
  for (const auto& terms : term_sets) {
    Query q;
    q.terms = terms;
    SearchOptions opts;
    opts.k = 4;
    SearchResult result;
    ASSERT_TRUE(engine_.Search(q, RunType::kBm25, opts, &result).ok());
    const auto oracle = OracleBm25(corpus_, terms, opts.bm25);
    const size_t want_n = std::min<size_t>(opts.k, oracle.size());
    ASSERT_EQ(result.docids.size(), want_n) << "terms[0]=" << terms[0];
    ASSERT_EQ(result.scores.size(), want_n);
    EXPECT_EQ(result.num_matches, oracle.size());
    for (size_t i = 0; i < want_n; ++i) {
      EXPECT_EQ(result.docids[i], oracle[i].docid)
          << "rank " << i << " terms[0]=" << terms[0];
      EXPECT_NEAR(result.scores[i], oracle[i].score, 1e-5) << "rank " << i;
    }
    // Ranked output is ordered (score desc, docid asc).
    for (size_t i = 1; i < want_n; ++i) {
      const bool ordered =
          result.scores[i - 1] > result.scores[i] ||
          (result.scores[i - 1] == result.scores[i] &&
           result.docids[i - 1] < result.docids[i]);
      EXPECT_TRUE(ordered) << "rank " << i;
    }
  }
}

TEST_F(GoldenSearchTest, HandlesDuplicateTermsAndErrors) {
  Query q;
  q.terms = {2, 2, 0};
  SearchOptions opts;
  SearchResult dup, nodup;
  ASSERT_TRUE(engine_.Search(q, RunType::kBm25, opts, &dup).ok());
  q.terms = {0, 2};
  ASSERT_TRUE(engine_.Search(q, RunType::kBm25, opts, &nodup).ok());
  EXPECT_EQ(dup.docids, nodup.docids);

  q.terms = {};
  SearchResult r;
  EXPECT_FALSE(engine_.Search(q, RunType::kBm25, opts, &r).ok());
  q.terms = {1000};
  EXPECT_FALSE(engine_.Search(q, RunType::kBm25, opts, &r).ok());

  // Storage-era runs need an on-disk index; this engine is in-memory only.
  q.terms = {2};
  const Status s = engine_.Search(q, RunType::kBm25T, opts, &r);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

// The same oracle agreement on a generated corpus, through the Database
// facade, across several vector sizes (including ones that exercise
// refill paths mid-posting-list).
TEST(Database, Bm25MatchesOracleOnGeneratedCorpusAcrossVectorSizes) {
  core::Database db;
  core::DatabaseOptions dopts;
  dopts.corpus = SmallGeneratedOptions();
  ASSERT_TRUE(db.Open(dopts).ok());

  QueryGenOptions qopts;
  qopts.num_eval_queries = 6;
  QueryGenerator gen(db.corpus(), qopts);
  const auto queries = gen.EvalQueries();
  ASSERT_FALSE(queries.empty());

  for (const Query& q : queries) {
    SearchOptions opts;
    opts.k = 10;
    const auto oracle = OracleBm25(db.corpus(), q.terms, opts.bm25);
    for (uint32_t vs : {1u, 3u, 64u, 1024u, 1u << 15}) {
      opts.vector_size = vs;
      SearchResult result;
      ASSERT_TRUE(db.Search(q, RunType::kBm25, opts, &result).ok());
      const size_t want_n = std::min<size_t>(opts.k, oracle.size());
      ASSERT_EQ(result.docids.size(), want_n) << "vs=" << vs;
      for (size_t i = 0; i < want_n; ++i) {
        EXPECT_EQ(result.docids[i], oracle[i].docid)
            << "vs=" << vs << " rank " << i;
        EXPECT_NEAR(result.scores[i], oracle[i].score, 1e-5);
      }
    }
  }
}

TEST(Database, ValidatesVectorSizeThroughPublicApi) {
  core::Database db;
  core::DatabaseOptions dopts;
  CorpusOptions small = SmallGeneratedOptions();
  small.num_docs = 300;
  small.vocab_size = 500;
  small.num_topics = 4;
  small.relevant_docs_per_topic = 20;
  small.topic_rank_max = 300;
  dopts.corpus = small;
  ASSERT_TRUE(db.Open(dopts).ok());

  Query q;
  q.terms = {10, 20};
  SearchResult result;

  SearchOptions opts;
  opts.vector_size = 0;
  const Status s = db.Search(q, RunType::kBm25, opts, &result);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);

  // Oversize clamps (plan still runs) and agrees with the default size.
  SearchOptions big;
  big.vector_size = vec::ExecContext::kMaxVectorSize * 4;
  SearchResult clamped, base;
  ASSERT_TRUE(db.Search(q, RunType::kBm25, big, &clamped).ok());
  ASSERT_TRUE(db.Search(q, RunType::kBm25, SearchOptions{}, &base).ok());
  EXPECT_EQ(clamped.docids, base.docids);

  // Unopened database refuses queries.
  core::Database closed;
  EXPECT_FALSE(closed.Search(q, RunType::kBm25, SearchOptions{}, &result).ok());
}

// ---------------------------------------------------------------------------
// TopK
// ---------------------------------------------------------------------------

TEST(TopK, KeepsStrongestWithDocidTiebreak) {
  TopK topk(3);
  topk.Push(5, 1.0f);
  topk.Push(9, 3.0f);
  EXPECT_EQ(topk.threshold(), -std::numeric_limits<float>::infinity());
  topk.Push(1, 2.0f);
  EXPECT_FLOAT_EQ(topk.threshold(), 1.0f);
  topk.Push(7, 2.0f);   // evicts (5, 1.0)
  topk.Push(2, 2.0f);   // ties 2.0: docid 2 beats docid 7
  topk.Push(8, 0.5f);   // too weak
  topk.Push(11, 2.0f);  // ties 2.0 but docid 11 loses to 1 and 2

  std::vector<int32_t> docids;
  std::vector<float> scores;
  topk.FinishSorted(&docids, &scores);
  EXPECT_EQ(docids, (std::vector<int32_t>{9, 1, 2}));
  EXPECT_EQ(scores, (std::vector<float>{3.0f, 2.0f, 2.0f}));
}

TEST(TopK, KLargerThanStreamReturnsEverythingRanked) {
  TopK topk(10);
  topk.Push(3, 0.25f);
  topk.Push(1, 0.75f);
  std::vector<int32_t> docids;
  std::vector<float> scores;
  topk.FinishSorted(&docids, &scores);
  EXPECT_EQ(docids, (std::vector<int32_t>{1, 3}));
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Metrics, PrecisionAtKAgainstKnownQrels) {
  Corpus corpus;
  ASSERT_TRUE(Corpus::Generate(SmallGeneratedOptions(), &corpus).ok());
  Qrels qrels(corpus);
  const auto& rel = corpus.relevant_docs(0);
  ASSERT_GE(rel.size(), 10u);

  // 3 relevant docs in the top 4, then noise: p@4 = 0.75.
  std::vector<int32_t> ranked = {rel[0], rel[1], -1, rel[2]};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, 4, qrels, 0), 0.75);
  // Same list scored against a different topic: docs are topic-disjoint.
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, 4, qrels, 1), 0.0);
  // Short result lists divide by k, not by the list length.
  std::vector<int32_t> short_list = {rel[0]};
  EXPECT_DOUBLE_EQ(PrecisionAtK(short_list, 20, qrels, 0), 0.05);
  // Unjudged sentinel topic.
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, 4, qrels, -1), 0.0);
  EXPECT_DOUBLE_EQ(Mean({0.5, 1.0, 0.0}), 0.5);
}

// ---------------------------------------------------------------------------
// PR 4: streaming/skipping hot path vs the materializing PR 3 plans,
// request validation, ExecStats, custom-engine baselines
// ---------------------------------------------------------------------------

TEST_F(GoldenSearchTest, StreamingPathsAgreeWithMaterialized) {
  const std::vector<std::vector<uint32_t>> term_sets = {
      {2}, {0, 2}, {1, 2, 3}, {0, 1, 2, 3, 4}, {8, 9}, {4, 6, 8}};
  for (const auto& terms : term_sets) {
    Query q;
    q.terms = terms;
    for (uint32_t vs : {1u, 3u, 256u}) {
      SearchOptions streaming, materialized;
      streaming.vector_size = materialized.vector_size = vs;
      streaming.k = materialized.k = 100;
      materialized.streaming_and = false;
      materialized.maxscore_bm25 = false;

      SearchResult a, b;
      ASSERT_TRUE(engine_.Search(q, RunType::kBoolAnd, streaming, &a).ok());
      ASSERT_TRUE(
          engine_.Search(q, RunType::kBoolAnd, materialized, &b).ok());
      EXPECT_EQ(a.docids, b.docids) << "AND terms[0]=" << terms[0];
      EXPECT_EQ(a.num_matches, b.num_matches);

      streaming.k = materialized.k = 4;
      ASSERT_TRUE(engine_.Search(q, RunType::kBm25, streaming, &a).ok());
      ASSERT_TRUE(engine_.Search(q, RunType::kBm25, materialized, &b).ok());
      ExpectRankingsEquivalent(a.docids, a.scores, b.docids, b.scores,
                               1e-4f);
    }
  }
}

TEST_F(GoldenSearchTest, ValidatesRequestsUpFront) {
  Query q;
  q.terms = {2};
  SearchOptions opts;
  opts.k = 0;
  SearchResult r;
  for (RunType type :
       {RunType::kBoolAnd, RunType::kBoolOr, RunType::kBm25}) {
    const Status s = engine_.Search(q, type, opts, &r);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << RunTypeName(type);
  }
}

TEST(Search, UnknownTermsGetCleanEmptyResults) {
  // vocab covers 5 term ids but only 0..2 appear: 3 and 4 are "unknown"
  // words — in-vocabulary, zero postings.
  Corpus corpus;
  ASSERT_TRUE(
      Corpus::FromDocuments({{0, 1, 1}, {1, 2}, {0, 2}}, 5, &corpus).ok());
  InvertedIndex index;
  BuildStats stats;
  ASSERT_TRUE(index.BuildFromCorpus(corpus, "", &stats).ok());
  SearchEngine engine(&index);

  SearchOptions opts;
  SearchResult r;
  Query q;
  for (RunType type :
       {RunType::kBoolAnd, RunType::kBoolOr, RunType::kBm25}) {
    // All-unknown query: clean empty result, not an error or a crash.
    q.terms = {3, 4};
    Status s = engine.Search(q, type, opts, &r);
    ASSERT_TRUE(s.ok()) << RunTypeName(type) << ": " << s.ToString();
    EXPECT_TRUE(r.docids.empty()) << RunTypeName(type);
    EXPECT_EQ(r.num_matches, 0u);
  }

  // A conjunction containing an unknown term is empty...
  q.terms = {1, 3};
  ASSERT_TRUE(engine.Search(q, RunType::kBoolAnd, opts, &r).ok());
  EXPECT_TRUE(r.docids.empty());
  // ...while OR / ranked runs just drop it (term 1 is in docs 0 and 1).
  ASSERT_TRUE(engine.Search(q, RunType::kBoolOr, opts, &r).ok());
  EXPECT_EQ(r.docids, (std::vector<int32_t>{0, 1}));
  ASSERT_TRUE(engine.Search(q, RunType::kBm25, opts, &r).ok());
  EXPECT_EQ(r.num_matches, 2u);
}

TEST(Database, ExecStatsProveWindowSkipping) {
  core::Database db;
  core::DatabaseOptions dopts;
  dopts.corpus = SmallGeneratedOptions();
  ASSERT_TRUE(db.Open(dopts).ok());

  // Rare term AND frequent term: the candidate list is tiny, so the
  // frequent term's posting windows must be leapt over, not decoded.
  uint32_t rare = 0;
  for (uint32_t t = 0; t < db.index()->vocab_size(); ++t) {
    const uint32_t df = db.index()->term(t).doc_freq;
    if (df >= 1 && df <= 4) {
      rare = t;
      break;
    }
  }
  ASSERT_GT(db.index()->term(0).doc_freq, 500u);  // Zipf head
  Query q;
  q.terms = {0, rare};

  SearchOptions streaming;
  SearchResult r;
  ASSERT_TRUE(db.Search(q, RunType::kBoolAnd, streaming, &r).ok());
  EXPECT_GT(r.stats.windows_skipped, 0u);
  EXPECT_GT(r.stats.windows_decoded, 0u);
  // The skipped windows are real savings: far fewer decodes than the
  // frequent list's window count.
  const uint64_t frequent_windows = db.index()->term(0).doc_freq / 128;
  EXPECT_LT(r.stats.windows_decoded, frequent_windows / 2);

  // The materialized path decodes through scans (no skip counters).
  SearchOptions materialized;
  materialized.streaming_and = false;
  SearchResult rm;
  ASSERT_TRUE(db.Search(q, RunType::kBoolAnd, materialized, &rm).ok());
  EXPECT_EQ(rm.stats.windows_skipped, 0u);
  EXPECT_EQ(r.docids, rm.docids);

  // Both ranked paths report primitive calls.
  SearchOptions ranked;
  ASSERT_TRUE(db.Search(q, RunType::kBm25, ranked, &r).ok());
  EXPECT_GT(r.stats.primitive_calls, 0u);
  ranked.maxscore_bm25 = false;
  ASSERT_TRUE(db.Search(q, RunType::kBm25, ranked, &r).ok());
  EXPECT_GT(r.stats.primitive_calls, 0u);
}

TEST(Database, MaxScorePrunesAndAgreesOnGeneratedCorpus) {
  core::Database db;
  core::DatabaseOptions dopts;
  dopts.corpus = SmallGeneratedOptions();
  ASSERT_TRUE(db.Open(dopts).ok());

  QueryGenOptions qopts;
  qopts.num_eval_queries = 8;
  QueryGenerator gen(db.corpus(), qopts);
  uint64_t total_pruned = 0;
  for (Query q : gen.EvalQueries()) {
    // Mix in the heaviest Zipf term: low idf, long list — the textbook
    // non-essential term once the heap fills.
    q.terms.push_back(0);
    SearchOptions maxscore, union_all;
    maxscore.k = union_all.k = 5;
    maxscore.vector_size = union_all.vector_size = 64;
    union_all.maxscore_bm25 = false;
    SearchResult a, b;
    ASSERT_TRUE(db.Search(q, RunType::kBm25, maxscore, &a).ok());
    ASSERT_TRUE(db.Search(q, RunType::kBm25, union_all, &b).ok());
    ExpectRankingsEquivalent(a.docids, a.scores, b.docids, b.scores, 1e-4f);
    total_pruned += a.stats.vectors_pruned;
    // Pruning can only shrink the candidate set.
    EXPECT_LE(a.num_matches, b.num_matches);
  }
  EXPECT_GT(total_pruned, 0u);
}

TEST(CustomEngine, BaselinesAgreeWithDbmsBm25) {
  Corpus corpus = GoldenCorpus();
  InvertedIndex index;
  BuildStats stats;
  ASSERT_TRUE(index.BuildFromCorpus(corpus, "", &stats).ok());
  SearchEngine engine(&index);
  CustomIrEngine custom;
  ASSERT_TRUE(custom.Load(&index).ok());
  EXPECT_EQ(custom.resident_bytes(), corpus.num_postings() * 8);

  const std::vector<std::vector<uint32_t>> term_sets = {
      {2}, {0, 2}, {1, 2, 3}, {5, 8}, {0, 1, 2, 3, 4}};
  for (const auto& terms : term_sets) {
    Query q;
    q.terms = terms;
    SearchOptions opts;
    opts.k = 4;
    SearchResult want;
    ASSERT_TRUE(engine.Search(q, RunType::kBm25, opts, &want).ok());

    CustomSearchResult daat, taat, maxscore;
    ASSERT_TRUE(custom.SearchDaat(q, 4, &daat).ok());
    ASSERT_TRUE(custom.SearchTaat(q, 4, &taat).ok());
    ASSERT_TRUE(custom.SearchMaxScore(q, 4, &maxscore).ok());
    for (const CustomSearchResult* r : {&daat, &taat, &maxscore}) {
      ExpectRankingsEquivalent(r->docids, r->scores, want.docids,
                               want.scores, 1e-4f);
    }
    EXPECT_EQ(daat.num_matches, want.num_matches);
    EXPECT_EQ(taat.num_matches, want.num_matches);
  }

  // Validation mirrors the engine's.
  CustomSearchResult r;
  Query q;
  EXPECT_FALSE(custom.SearchDaat(q, 4, &r).ok());  // empty
  q.terms = {2};
  EXPECT_FALSE(custom.SearchDaat(q, 0, &r).ok());  // k == 0
  q.terms = {1000};
  EXPECT_FALSE(custom.SearchTaat(q, 4, &r).ok());  // out of vocabulary
}

// The planted topics give BM25 real signal: eval queries retrieve their
// topic's documents far better than chance, and better than BoolAND's
// unranked matches. Deterministic (fixed seeds), so thresholds are safe.
TEST(Metrics, Bm25BeatsBooleanOnPlantedTopics) {
  core::Database db;
  core::DatabaseOptions dopts;
  dopts.corpus = SmallGeneratedOptions();
  ASSERT_TRUE(db.Open(dopts).ok());
  Qrels qrels(db.corpus());

  QueryGenOptions qopts;
  qopts.num_eval_queries = 12;
  QueryGenerator gen(db.corpus(), qopts);
  std::vector<double> bm25_p20, and_p20;
  for (const Query& q : gen.EvalQueries()) {
    SearchOptions opts;
    SearchResult result;
    ASSERT_TRUE(db.Search(q, RunType::kBm25, opts, &result).ok());
    bm25_p20.push_back(PrecisionAtK(result.docids, 20, qrels, q.topic));
    ASSERT_TRUE(db.Search(q, RunType::kBoolAnd, opts, &result).ok());
    and_p20.push_back(PrecisionAtK(result.docids, 20, qrels, q.topic));
  }
  EXPECT_GT(Mean(bm25_p20), 0.2);
  EXPECT_GT(Mean(bm25_p20), Mean(and_p20));
}

// ---------------------------------------------------------------------------
// Block-Max metadata + Block-Max MaxScore + fused decode→score (DESIGN.md
// §12)
// ---------------------------------------------------------------------------

// Soundness property of the persisted block-max table: for every posting p
// in window w, max_tf dominates tf(p), min_doclen is dominated by
// doclen(p), and the stored build-parameter bound dominates the posting's
// true idf-free BM25 contribution. Windows are positional over the whole
// TD table, so the check flattens the columns in term order.
void CheckBlockMaxSound(const InvertedIndex& index) {
  std::vector<int32_t> docid_col, tf_col;
  for (uint32_t t = 0; t < index.vocab_size(); ++t) {
    std::vector<int32_t> d, f;
    ASSERT_TRUE(index.DecodePostings(t, &d, &f).ok());
    docid_col.insert(docid_col.end(), d.begin(), d.end());
    tf_col.insert(tf_col.end(), f.begin(), f.end());
  }
  const uint64_t n = index.num_postings();
  ASSERT_EQ(docid_col.size(), n);
  const std::vector<BlockMaxEntry>& bm = index.block_max();
  ASSERT_EQ(bm.size(), (n + 127) / 128);
  const float inv_avgdl = static_cast<float>(1.0 / index.avg_doc_len());
  for (uint64_t p = 0; p < n; ++p) {
    const BlockMaxEntry& e = bm[p / 128];
    const int32_t dl = index.doc_lens()[docid_col[p]];
    ASSERT_GE(e.max_tf, tf_col[p]) << "posting " << p;
    ASSERT_LE(e.min_doclen, dl) << "posting " << p;
    const float contrib = Bm25One(
        1.0f, static_cast<float>(tf_col[p]), static_cast<float>(dl),
        InvertedIndex::kMaterializedK1, InvertedIndex::kMaterializedB,
        inv_avgdl);
    ASSERT_GE(e.ub, contrib) << "posting " << p;
  }
}

// num_postings % 128 control: doc d repeats one private term `reps` times,
// so each doc is exactly one posting and doc lengths / tfs still vary.
Corpus UnitPostingCorpus(uint32_t n_postings) {
  std::vector<std::vector<uint32_t>> docs(n_postings);
  for (uint32_t d = 0; d < n_postings; ++d) {
    const uint32_t reps = 1 + (d * 7 + 3) % 5;
    docs[d].assign(reps, d);
  }
  Corpus corpus;
  EXPECT_TRUE(
      Corpus::FromDocuments(docs, n_postings == 0 ? 1 : n_postings, &corpus)
          .ok());
  return corpus;
}

TEST(BlockMax, PersistedBoundsDominateTrueContributions) {
  // The generated corpus: arbitrary window alignment, Zipf tf spread.
  Corpus corpus;
  ASSERT_TRUE(Corpus::Generate(SmallGeneratedOptions(), &corpus).ok());
  InvertedIndex index;
  BuildStats stats;
  ASSERT_TRUE(index.BuildFromCorpus(corpus, "", &stats).ok());
  CheckBlockMaxSound(index);

  // Hostile boundaries: num_postings % 128 in {0, 1, 127} — full last
  // window, lone posting, one-short window.
  for (uint32_t n : {256u, 1u, 127u, 129u, 383u}) {
    Corpus tiny = UnitPostingCorpus(n);
    InvertedIndex idx;
    ASSERT_TRUE(idx.BuildFromCorpus(tiny, "", &stats).ok());
    ASSERT_EQ(idx.num_postings(), n);
    CheckBlockMaxSound(idx);
  }
}

TEST(BlockMax, TableRoundTripsThroughReuseAndRejectsCorruption) {
  const std::string dir = TempIndexDir("blockmax_reuse");
  std::filesystem::remove_all(dir);
  Corpus corpus;
  ASSERT_TRUE(Corpus::Generate(SmallGeneratedOptions(), &corpus).ok());

  InvertedIndex first;
  BuildStats stats;
  ASSERT_TRUE(first.BuildFromCorpus(corpus, dir, &stats).ok());
  ASSERT_FALSE(stats.reused_files);
  ASSERT_TRUE(std::filesystem::exists(dir + "/" + kBlockMaxFile));

  // Reuse loads the table off disk, identically.
  InvertedIndex second;
  ASSERT_TRUE(second.BuildFromCorpus(corpus, dir, &stats).ok());
  ASSERT_TRUE(stats.reused_files);
  ASSERT_EQ(first.block_max().size(), second.block_max().size());
  for (size_t w = 0; w < first.block_max().size(); ++w) {
    EXPECT_EQ(first.block_max()[w].max_tf, second.block_max()[w].max_tf);
    EXPECT_EQ(first.block_max()[w].min_doclen,
              second.block_max()[w].min_doclen);
    EXPECT_EQ(first.block_max()[w].ub, second.block_max()[w].ub);
  }
  CheckBlockMaxSound(second);

  // A missing table must force a rebuild (which recreates it)...
  std::filesystem::remove(dir + "/" + kBlockMaxFile);
  InvertedIndex third;
  ASSERT_TRUE(third.BuildFromCorpus(corpus, dir, &stats).ok());
  EXPECT_FALSE(stats.reused_files);
  EXPECT_TRUE(std::filesystem::exists(dir + "/" + kBlockMaxFile));

  // ...and so must a truncated one.
  std::filesystem::resize_file(
      dir + "/" + kBlockMaxFile,
      std::filesystem::file_size(dir + "/" + kBlockMaxFile) / 2);
  InvertedIndex fourth;
  ASSERT_TRUE(fourth.BuildFromCorpus(corpus, dir, &stats).ok());
  EXPECT_FALSE(stats.reused_files);
  CheckBlockMaxSound(fourth);

  std::filesystem::remove_all(dir);
}

TEST(Database, BlockMaxSkipsWindowsAndAgreesWithOracle) {
  core::Database db;
  core::DatabaseOptions dopts;
  dopts.corpus = SmallGeneratedOptions();
  ASSERT_TRUE(db.Open(dopts).ok());

  // The workload mixes query lengths the way the efficiency log does.
  // Per-window skips need θ to beat Σ(other terms' static ubs) + the
  // window bound, so they fire on short queries over long lists (the
  // classic block-max win) and naturally fade as terms pile up — both
  // populations must agree with the unskipped oracle either way.
  QueryGenOptions qopts;
  qopts.num_eval_queries = 8;
  QueryGenerator gen(db.corpus(), qopts);
  std::vector<Query> workload = gen.EvalQueries();
  for (uint32_t t : {0u, 1u, 2u, 3u}) {
    Query single;
    single.terms = {t};
    workload.push_back(single);
    Query pair;
    pair.terms = {t, t + 40};
    workload.push_back(pair);
  }
  uint64_t total_blockmax_skipped = 0;
  for (const Query& q : workload) {
    SearchOptions with_bm, oracle;
    with_bm.k = oracle.k = 10;
    with_bm.vector_size = oracle.vector_size = 64;
    oracle.blockmax = false;
    oracle.fused_score = false;
    SearchResult a, b;
    ASSERT_TRUE(db.Search(q, RunType::kBm25, with_bm, &a).ok());
    ASSERT_TRUE(db.Search(q, RunType::kBm25, oracle, &b).ok());
    // Block-max skips may only drop candidates that are provably below θ:
    // the top-k itself must match the unskipped oracle (p@20 unchanged).
    ExpectRankingsEquivalent(a.docids, a.scores, b.docids, b.scores, 1e-5f);
    EXPECT_LE(a.num_matches, b.num_matches);
    total_blockmax_skipped += a.stats.windows_blockmax_skipped;
    EXPECT_EQ(b.stats.windows_blockmax_skipped, 0u);
  }
  // On this small organic corpus the bounds rarely fire (few windows per
  // list, similar maxima) — that is fine; the planted test below pins that
  // they *do* fire. Here only soundness is asserted.
  (void)total_blockmax_skipped;
}

// A corpus engineered so block-max bounds provably fire: term 0 appears in
// every doc, tf=8 in the first ten docs and tf=1 everywhere else, all
// doclens equal (unique filler terms pad each doc to length 10). The TD
// table sorts by (term, docid), so term 0's list is postings [0, 3000) —
// window 0 holds every tf=8 doc, and all ~22 later windows have
// max_tf == 1. Once the heap holds the ten tf=8 docs, θ equals their
// score and every remaining window's bound falls strictly below it.
TEST(Database, BlockMaxSkipsProvablyWeakWindows) {
  constexpr uint32_t kDocs = 3000;
  std::vector<std::vector<uint32_t>> docs(kDocs);
  uint32_t next_filler = 1;
  for (uint32_t d = 0; d < kDocs; ++d) {
    const uint32_t tf = d < 10 ? 8 : 1;
    docs[d].assign(tf, 0u);
    while (docs[d].size() < 10) docs[d].push_back(next_filler++);
  }
  Corpus corpus;
  ASSERT_TRUE(Corpus::FromDocuments(docs, next_filler, &corpus).ok());
  InvertedIndex index;
  BuildStats stats;
  ASSERT_TRUE(index.BuildFromCorpus(corpus, "", &stats).ok());
  SearchEngine engine(&index);

  Query q;
  q.terms = {0};
  SearchOptions with_bm, oracle;
  with_bm.k = oracle.k = 10;
  with_bm.vector_size = oracle.vector_size = 64;
  oracle.blockmax = false;
  SearchResult a, b;
  ASSERT_TRUE(engine.Search(q, RunType::kBm25, with_bm, &a).ok());
  ASSERT_TRUE(engine.Search(q, RunType::kBm25, oracle, &b).ok());

  // The top k are exactly the ten tf=8 docs, identically in both paths
  // (the skipped docs all score strictly below θ).
  EXPECT_EQ(a.docids, b.docids);
  EXPECT_EQ(a.scores, b.scores);
  ASSERT_EQ(a.docids.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.docids[i], static_cast<int32_t>(i));
  }

  // Most of the list's ~23 windows were rejected by their bound...
  EXPECT_EQ(b.stats.windows_blockmax_skipped, 0u);
  EXPECT_GT(a.stats.windows_blockmax_skipped, 15u);
  // ...which is real savings, and the skipped candidates are gone from
  // num_matches while the decoded+skipped partition still covers the list.
  EXPECT_LT(a.stats.windows_decoded, b.stats.windows_decoded);
  EXPECT_LT(a.num_matches, b.num_matches);
  EXPECT_EQ(a.stats.windows_decoded + a.stats.windows_skipped +
                a.stats.windows_blockmax_skipped,
            b.stats.windows_decoded + b.stats.windows_skipped);
}

TEST(Database, FusedScoreBitIdenticalToComposedPath) {
  core::Database db;
  core::DatabaseOptions dopts;
  dopts.corpus = SmallGeneratedOptions();
  ASSERT_TRUE(db.Open(dopts).ok());

  QueryGenOptions qopts;
  qopts.num_eval_queries = 8;
  QueryGenerator gen(db.corpus(), qopts);
  uint64_t total_fused = 0;
  for (Query q : gen.EvalQueries()) {
    q.terms.push_back(0);
    // Isolate the kernel: block-max off on both sides, so both runs merge
    // the exact same candidate stream and only the scoring path differs.
    SearchOptions fused, composed;
    fused.k = composed.k = 10;
    fused.blockmax = composed.blockmax = false;
    composed.fused_score = false;
    SearchResult a, b;
    ASSERT_TRUE(db.Search(q, RunType::kBm25, fused, &a).ok());
    ASSERT_TRUE(db.Search(q, RunType::kBm25, composed, &b).ok());
    // Bit-identical, not merely close (fused_score.h's contract) — and in
    // particular within the 1e-5 the golden retrieval tests pin.
    ASSERT_EQ(a.docids, b.docids);
    ASSERT_EQ(a.scores.size(), b.scores.size());
    for (size_t i = 0; i < a.scores.size(); ++i) {
      EXPECT_EQ(a.scores[i], b.scores[i]) << "rank " << i;
      EXPECT_NEAR(a.scores[i], b.scores[i], 1e-5) << "rank " << i;
    }
    EXPECT_EQ(a.num_matches, b.num_matches);
    total_fused += a.stats.fused_windows;
    EXPECT_EQ(b.stats.fused_windows, 0u);
    // Fused windows never decode a tf vector.
    EXPECT_LT(a.stats.tf_windows_decoded, b.stats.tf_windows_decoded);
  }
  EXPECT_GT(total_fused, 0u);
}

TEST(Database, WindowCountersPartitionSingleTermTraversal) {
  core::Database db;
  core::DatabaseOptions dopts;
  dopts.corpus = SmallGeneratedOptions();
  ASSERT_TRUE(db.Open(dopts).ok());

  // A single-term ranked query traverses the term's whole posting range
  // with no SkipTo and no probes, so every overlapped window must land in
  // exactly one of decoded / skipped / blockmax-skipped — the ExecStats
  // partition invariant (DESIGN.md §12.4). windows_decoded alone is *not*
  // monotone in θ (a tighter θ converts decodes into blockmax skips);
  // only the three-way sum is invariant.
  uint32_t tested = 0;
  for (uint32_t t = 0; t < db.index()->vocab_size() && tested < 6; ++t) {
    const TermInfo& info = db.index()->term(t);
    if (info.doc_freq < 2) continue;
    ++tested;
    const uint64_t first_w = info.posting_start / 128;
    const uint64_t last_w = (info.posting_start + info.doc_freq - 1) / 128;
    const uint64_t overlapped = last_w - first_w + 1;
    for (const uint32_t k : {3u, 100u}) {
      Query q;
      q.terms = {t};
      SearchOptions opts;
      opts.k = k;
      SearchResult r;
      ASSERT_TRUE(db.Search(q, RunType::kBm25, opts, &r).ok());
      EXPECT_EQ(r.stats.windows_decoded + r.stats.windows_skipped +
                    r.stats.windows_blockmax_skipped,
                overlapped)
          << "term " << t << " k " << k;
    }
  }
  ASSERT_GT(tested, 0u);
}

}  // namespace
}  // namespace x100ir::ir
