// Crash-recovery battery for the durable delta tier (DESIGN.md §13). The
// load-bearing structure is the kill-point sweep: for every CrashSite and
// every occurrence count of that site inside an operation, simulate a power
// cut exactly there (storage/crash_point.h freezes all further disk writes,
// including destructors), reopen the database, and assert the recovered
// state is bit-identical — documents, tombstones, frozen statistics — to
// either the pre-op or the post-op oracle, never a third state; and that an
// operation the caller saw acknowledged always recovers as the post-op
// state. Around the sweep: a torn-tail fuzzer (seeded truncations and
// single-bit flips over the log; replay recovers exactly the longest valid
// record prefix), a double-recovery idempotence property test (recovering
// twice from the same crash yields bitwise-identical dumps, and no
// acknowledged write is ever lost), group-commit concurrency (this binary
// runs in the TSan CI job), and frame/payload unit tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/database.h"
#include "ir/collection_stats.h"
#include "ir/delta_segment.h"
#include "ir/snapshot.h"
#include "storage/crash_point.h"
#include "storage/wal.h"

namespace x100ir::ir {
namespace {

namespace fs = std::filesystem;
using storage::CrashPoint;
using storage::CrashSite;
using storage::Wal;

std::string FreshDir(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string tag =
      info != nullptr
          ? std::string(info->test_suite_name()) + "_" + info->name()
          : std::string("global");
  const std::string dir =
      std::string(::testing::TempDir()) + "/x100ir_rec_" + tag + "_" + name;
  fs::remove_all(dir);
  return dir;
}

// Small corpus: the battery opens and reopens the database hundreds of
// times, each against a fresh directory.
CorpusOptions TinyGenerated() {
  CorpusOptions opts;
  opts.num_docs = 80;
  opts.vocab_size = 200;
  opts.doclen_mu = 3.0;
  opts.doclen_sigma = 0.4;
  opts.num_topics = 3;
  opts.terms_per_topic = 3;
  opts.relevant_docs_per_topic = 5;
  opts.topic_rank_min = 2;
  opts.topic_rank_max = 40;
  opts.seed = 2007;
  return opts;
}

constexpr uint32_t kVocab = 200;  // == TinyGenerated().vocab_size

core::DatabaseOptions DiskOptions(
    const std::string& dir,
    storage::WalSyncMode mode = storage::WalSyncMode::kGroupCommit) {
  core::DatabaseOptions dopts;
  dopts.dir = dir;
  dopts.corpus = TinyGenerated();
  dopts.storage.wal.enabled = true;
  dopts.storage.wal.mode = mode;
  return dopts;
}

// Deterministic live document, a function of `salt` alone: the same op
// sequence frames byte-identical WAL records in every battery iteration,
// which is what lets one oracle pass serve every kill-point run.
std::vector<uint32_t> DetDoc(uint64_t salt) {
  Rng rng(0x9E3779B97F4A7C15ull ^ salt);
  const uint32_t len = 6 + static_cast<uint32_t>(rng.NextBounded(20));
  std::vector<uint32_t> terms(len);
  for (uint32_t i = 0; i < len; ++i) {
    terms[i] = static_cast<uint32_t>(rng.NextBounded(kVocab));
  }
  return terms;
}

// Serializes the complete logical state of the database — every live
// document (global docid, length, normalized term:tf list) plus the frozen
// collection statistics scoring depends on. Two databases with equal dumps
// are indistinguishable to any query.
std::string DumpState(const core::Database& db) {
  std::shared_ptr<const Snapshot> snap = db.Acquire();
  std::map<int32_t, std::string> docs;
  for (const Snapshot::SegmentRead& sr : snap->segments) {
    const uint64_t* bits =
        sr.tombstones != nullptr ? sr.tombstones->data() : nullptr;
    for (uint32_t local = 0; local < sr.seg->num_docs(); ++local) {
      if (TombstoneTest(bits, static_cast<int32_t>(local))) continue;
      std::ostringstream d;
      d << "len=" << sr.seg->doc_len(local);
      for (const DocTerm& dt : sr.seg->doc(local)) {
        d << " " << dt.term << ":" << dt.tf;
      }
      docs[sr.seg->GlobalOf(static_cast<int32_t>(local))] = d.str();
    }
  }
  for (const Snapshot::DeltaRead& dr : snap->deltas) {
    const uint64_t* bits =
        dr.tombstones != nullptr ? dr.tombstones->data() : nullptr;
    for (uint32_t local = 0; local < dr.visible; ++local) {
      if (TombstoneTest(bits, static_cast<int32_t>(local))) continue;
      std::ostringstream d;
      d << "len=" << dr.delta->doc_len(local);
      for (const DocTerm& dt : dr.delta->doc(local)) {
        d << " " << dt.term << ":" << dt.tf;
      }
      docs[dr.delta->base_docid() + static_cast<int32_t>(local)] = d.str();
    }
  }
  std::ostringstream os;
  char avg[64];
  std::snprintf(avg, sizeof(avg), "%.17g", snap->stats->avg_doc_len);
  os << "num_docs=" << snap->stats->num_docs << " avg=" << avg << "\n";
  os << "df=";
  for (uint32_t f : snap->stats->df) os << f << ",";
  os << "\n";
  for (const auto& [g, body] : docs) os << g << " " << body << "\n";
  return os.str();
}

std::set<int32_t> LiveDocids(const core::Database& db) {
  std::set<int32_t> out;
  std::shared_ptr<const Snapshot> snap = db.Acquire();
  for (const Snapshot::SegmentRead& sr : snap->segments) {
    const uint64_t* bits =
        sr.tombstones != nullptr ? sr.tombstones->data() : nullptr;
    for (uint32_t local = 0; local < sr.seg->num_docs(); ++local) {
      if (TombstoneTest(bits, static_cast<int32_t>(local))) continue;
      out.insert(sr.seg->GlobalOf(static_cast<int32_t>(local)));
    }
  }
  for (const Snapshot::DeltaRead& dr : snap->deltas) {
    const uint64_t* bits =
        dr.tombstones != nullptr ? dr.tombstones->data() : nullptr;
    for (uint32_t local = 0; local < dr.visible; ++local) {
      if (TombstoneTest(bits, static_cast<int32_t>(local))) continue;
      out.insert(dr.delta->base_docid() + static_cast<int32_t>(local));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// The kill-point battery.
// ---------------------------------------------------------------------------

struct Scenario {
  const char* name;
  // Deterministic pre-state, applied to a freshly opened database with no
  // crash armed. Every status inside must be OK.
  std::function<void(core::Database*)> setup;
  // The one operation under test; its Status is the acknowledgment.
  std::function<Status(core::Database*)> op;
};

constexpr CrashSite kAllSites[] = {
    CrashSite::kWalAfterAppend,         CrashSite::kWalAfterFsync,
    CrashSite::kWalAfterRotate,         CrashSite::kWalBeforeDropFile,
    CrashSite::kMergeAfterSegmentBuild, CrashSite::kManifestAfterTmpWrite,
    CrashSite::kManifestAfterRename,
};

void RunKillPointBattery(const Scenario& sc) {
  uint64_t crashes_simulated = 0;
  // Oracle pass: the scenario with no crash armed, dumped before and after
  // the op. Dumps are directory-independent, so they oracle every run.
  std::string dump_pre, dump_post;
  {
    CrashPoint::Instance().Reset();
    const std::string dir = FreshDir(std::string(sc.name) + "_oracle");
    core::Database db;
    ASSERT_TRUE(db.Open(DiskOptions(dir)).ok());
    sc.setup(&db);
    dump_pre = DumpState(db);
    ASSERT_TRUE(sc.op(&db).ok());
    dump_post = DumpState(db);
  }

  for (CrashSite site : kAllSites) {
    for (uint64_t count = 1;; ++count) {
      ASSERT_LT(count, 64u) << storage::CrashSiteName(site)
                            << " never exhausts in " << sc.name;
      CrashPoint::Instance().Reset();
      const std::string dir =
          FreshDir(std::string(sc.name) + "_" + storage::CrashSiteName(site) +
                   "_" + std::to_string(count));
      Status op_status;
      {
        core::Database db;
        ASSERT_TRUE(db.Open(DiskOptions(dir)).ok());
        sc.setup(&db);
        // Armed only now: Open and setup ran crash-free by construction,
        // so `count` indexes occurrences inside the op alone.
        CrashPoint::Instance().Arm(site, count);
        op_status = sc.op(&db);
        // Background work must settle before the crashed flag is read and
        // the database torn down.
        (void)db.WaitMerge();
      }
      const bool fired = CrashPoint::Instance().IsCrashed();
      if (fired) ++crashes_simulated;
      CrashPoint::Instance().Reset();

      core::Database reopened;
      ASSERT_TRUE(reopened.Open(DiskOptions(dir)).ok())
          << sc.name << " @ " << storage::CrashSiteName(site) << "#" << count;
      const std::string dump = DumpState(reopened);
      const std::string ctx = std::string(sc.name) + " @ " +
                              storage::CrashSiteName(site) + "#" +
                              std::to_string(count) +
                              (fired ? " (crashed)" : " (clean)");
      // The two-state invariant: pre-op or post-op, never a third state.
      EXPECT_TRUE(dump == dump_pre || dump == dump_post)
          << ctx << "\nrecovered state matches neither oracle:\n"
          << dump;
      // Acknowledged writes are never lost.
      if (op_status.ok()) {
        EXPECT_EQ(dump, dump_post) << ctx << "\nacknowledged op missing";
      }
      // The recovered database is live: it accepts new writes.
      EXPECT_TRUE(reopened.AddDocument(DetDoc(9999), nullptr).ok()) << ctx;

      if (!fired) {
        // The site occurs fewer than `count` times inside this op: the run
        // was crash-free, so it must have succeeded — and the sweep of
        // this site is exhausted.
        EXPECT_TRUE(op_status.ok()) << ctx << ": " << op_status.ToString();
        break;
      }
    }
  }
  // Anti-vacuity: every scenario's op frames at least one WAL record, so at
  // minimum wal_after_append#1 and wal_after_fsync#1 must have crashed — a
  // sweep where nothing fired tested nothing.
  EXPECT_GE(crashes_simulated, 2u) << sc.name;
}

// Base-segment docids are [0, 80); delta docids start at 80.

TEST(KillPointBattery, AddDocument) {
  Scenario sc;
  sc.name = "add";
  sc.setup = [](core::Database* db) {
    for (uint64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(db->AddDocument(DetDoc(i), nullptr).ok());
    }
  };
  sc.op = [](core::Database* db) {
    return db->AddDocument(DetDoc(100), nullptr);
  };
  RunKillPointBattery(sc);
}

TEST(KillPointBattery, DeleteDeltaDocument) {
  Scenario sc;
  sc.name = "del_delta";
  sc.setup = [](core::Database* db) {
    for (uint64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(db->AddDocument(DetDoc(i), nullptr).ok());
    }
  };
  sc.op = [](core::Database* db) { return db->DeleteDocument(82); };
  RunKillPointBattery(sc);
}

TEST(KillPointBattery, DeleteSegmentDocument) {
  Scenario sc;
  sc.name = "del_seg";
  sc.setup = [](core::Database*) {};
  sc.op = [](core::Database* db) { return db->DeleteDocument(3); };
  RunKillPointBattery(sc);
}

TEST(KillPointBattery, Merge) {
  // A merge changes no logical content (dump_pre == dump_post), so here the
  // two-state invariant sharpens to "always the oracle state": no crash
  // point inside seal, compact, manifest commit, or WAL truncation may lose
  // a document, resurrect a tombstoned one, or corrupt the stats.
  Scenario sc;
  sc.name = "merge";
  sc.setup = [](core::Database* db) {
    for (uint64_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(db->AddDocument(DetDoc(i), nullptr).ok());
    }
    ASSERT_TRUE(db->DeleteDocument(2).ok());   // base-segment doc
    ASSERT_TRUE(db->DeleteDocument(83).ok());  // delta doc
  };
  sc.op = [](core::Database* db) { return db->Merge(); };
  RunKillPointBattery(sc);
}

TEST(KillPointBattery, SecondMergeAndPostMergeWrites) {
  // The rotated-log regime: a committed first merge (manifest present, WAL
  // truncated) followed by live writes and a second merge — DropFilesUpTo
  // now has genuinely obsolete files to unlink, and replay runs against an
  // adopted manifest instead of a clean rebuild.
  Scenario sc;
  sc.name = "merge2";
  sc.setup = [](core::Database* db) {
    for (uint64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(db->AddDocument(DetDoc(i), nullptr).ok());
    }
    ASSERT_TRUE(db->Merge().ok());
    for (uint64_t i = 10; i < 13; ++i) {
      ASSERT_TRUE(db->AddDocument(DetDoc(i), nullptr).ok());
    }
    ASSERT_TRUE(db->DeleteDocument(84).ok());
  };
  sc.op = [](core::Database* db) { return db->Merge(); };
  RunKillPointBattery(sc);
}

TEST(KillPointBattery, PostMergeAdd) {
  Scenario sc;
  sc.name = "post_merge_add";
  sc.setup = [](core::Database* db) {
    for (uint64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(db->AddDocument(DetDoc(i), nullptr).ok());
    }
    ASSERT_TRUE(db->Merge().ok());
    ASSERT_TRUE(db->AddDocument(DetDoc(20), nullptr).ok());
  };
  sc.op = [](core::Database* db) {
    return db->AddDocument(DetDoc(21), nullptr);
  };
  RunKillPointBattery(sc);
}

// ---------------------------------------------------------------------------
// Torn-tail fuzzer: truncations and bit flips over the log.
// ---------------------------------------------------------------------------

struct WalLayout {
  uint64_t header_end = 0;            // first byte after the file header
  std::vector<uint64_t> record_ends;  // byte offset just past record i
};

WalLayout ParseWalFile(const std::string& path) {
  WalLayout layout;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return layout;
  storage::WalFileHeader fh;
  EXPECT_EQ(std::fread(&fh, sizeof(fh), 1, f), 1u);
  EXPECT_EQ(fh.magic, storage::WalFileHeader::kMagic);
  layout.header_end = sizeof(fh);
  uint64_t off = sizeof(fh);
  storage::WalRecordHeader rh;
  while (std::fread(&rh, sizeof(rh), 1, f) == 1) {
    off += sizeof(rh) + rh.len;
    std::fseek(f, static_cast<long>(off), SEEK_SET);
    layout.record_ends.push_back(off);
  }
  std::fclose(f);
  return layout;
}

TEST(TornTailFuzzer, TruncationsAndBitFlipsRecoverLongestValidPrefix) {
  const std::string base = FreshDir("pristine");

  // One deterministic op per WAL record, dumping the oracle after each:
  // dumps[k] is exactly what a replay of the first k records must yield.
  std::vector<std::string> dumps;
  std::vector<int32_t> added;
  {
    CrashPoint::Instance().Reset();
    core::Database db;
    ASSERT_TRUE(db.Open(DiskOptions(base)).ok());
    dumps.push_back(DumpState(db));
    for (uint64_t i = 0; i < 10; ++i) {
      int32_t id = -1;
      ASSERT_TRUE(db.AddDocument(DetDoc(i), &id).ok());
      added.push_back(id);
      dumps.push_back(DumpState(db));
      if (i == 4 || i == 7) {
        ASSERT_TRUE(db.DeleteDocument(added[i / 2]).ok());
        dumps.push_back(DumpState(db));
      }
    }
  }
  const std::string wal_name = "wal_000000.log";
  const WalLayout layout = ParseWalFile(base + "/" + wal_name);
  ASSERT_EQ(layout.record_ends.size(), dumps.size() - 1);
  const uint64_t file_size = layout.record_ends.back();

  Rng rng(0xF022EDull);
  for (int trial = 0; trial < 40; ++trial) {
    const std::string dir = FreshDir("trial" + std::to_string(trial));
    fs::copy(base, dir, fs::copy_options::recursive);
    const std::string wal_path = dir + "/" + wal_name;

    const bool flip = rng.NextBounded(2) == 1;
    uint64_t off;
    if (flip) {
      // Flip one bit anywhere — file header, frame header, or payload.
      off = rng.NextBounded(file_size);
      const int bit = static_cast<int>(rng.NextBounded(8));
      std::FILE* f = std::fopen(wal_path.c_str(), "rb+");
      ASSERT_NE(f, nullptr);
      std::fseek(f, static_cast<long>(off), SEEK_SET);
      const int c = std::fgetc(f);
      ASSERT_NE(c, EOF);
      std::fseek(f, static_cast<long>(off), SEEK_SET);
      std::fputc(c ^ (1 << bit), f);
      std::fclose(f);
    } else {
      // Truncate anywhere: mid-file-header, mid-record, or on a boundary.
      off = rng.NextBounded(file_size + 1);
      fs::resize_file(wal_path, off);
    }
    // The survivor count: a damaged file header discards the whole log
    // (its identity can't be trusted); otherwise every record that ends
    // at or before the damage survives — CRC32 catches every single-bit
    // flip, and a truncated frame is a short read.
    size_t expect_records = 0;
    if (off >= layout.header_end) {
      while (expect_records < layout.record_ends.size() &&
             layout.record_ends[expect_records] <= off) {
        ++expect_records;
      }
    }

    core::Database db;
    // Never an outcome worse than losing the torn tail: Open succeeds.
    ASSERT_TRUE(db.Open(DiskOptions(dir)).ok()) << "trial " << trial;
    EXPECT_EQ(DumpState(db), dumps[expect_records])
        << "trial " << trial << (flip ? " flip@" : " truncate@") << off
        << ": expected the longest valid prefix of " << expect_records
        << " records";
    // The recovered log keeps accepting and persisting writes.
    ASSERT_TRUE(db.AddDocument(DetDoc(777), nullptr).ok());
  }
}

// ---------------------------------------------------------------------------
// Double-recovery idempotence + acknowledged-writes property test.
// ---------------------------------------------------------------------------

TEST(RecoveryProperty, DoubleRecoveryIsIdempotentAndKeepsAckedWrites) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const std::string dir = FreshDir("seed" + std::to_string(seed));
    Rng rng(seed * 0x9E3779B9ull);
    const CrashSite site = kAllSites[rng.NextBounded(
        sizeof(kAllSites) / sizeof(kAllSites[0]))];
    const uint64_t count = 1 + rng.NextBounded(4);

    std::set<int32_t> acked_adds;
    std::set<int32_t> acked_deletes;
    {
      CrashPoint::Instance().Reset();
      core::Database db;
      ASSERT_TRUE(db.Open(DiskOptions(dir)).ok());
      CrashPoint::Instance().Arm(site, count);
      for (int i = 0; i < 30; ++i) {
        const uint64_t dice = rng.NextBounded(10);
        if (dice < 6) {
          int32_t id = -1;
          if (db.AddDocument(DetDoc(seed * 1000 + i), &id).ok()) {
            acked_adds.insert(id);
          }
        } else if (dice < 8 && !acked_adds.empty()) {
          const int32_t victim = *acked_adds.begin();
          if (db.DeleteDocument(victim).ok()) {
            acked_adds.erase(victim);
            acked_deletes.insert(victim);
          }
        } else if (dice == 8) {
          if (db.DeleteDocument(i % 80).ok()) {
            acked_deletes.insert(i % 80);
          }
        } else {
          (void)db.Merge();
        }
      }
      (void)db.WaitMerge();
    }
    CrashPoint::Instance().Reset();

    std::string dump1;
    {
      core::Database db;
      ASSERT_TRUE(db.Open(DiskOptions(dir)).ok()) << "seed " << seed;
      dump1 = DumpState(db);
      const std::set<int32_t> live = LiveDocids(db);
      for (int32_t id : acked_adds) {
        EXPECT_TRUE(live.count(id) != 0)
            << "seed " << seed << ": acked add " << id << " lost";
      }
      for (int32_t id : acked_deletes) {
        EXPECT_TRUE(live.count(id) == 0)
            << "seed " << seed << ": acked delete " << id << " resurrected";
      }
    }
    // The first recovery truncated any torn tail and re-established the
    // log. Recovering again — a crash *during* recovery, at the worst
    // moment: right after that truncation — must be a fixed point.
    core::Database db2;
    ASSERT_TRUE(db2.Open(DiskOptions(dir)).ok()) << "seed " << seed;
    EXPECT_EQ(DumpState(db2), dump1)
        << "seed " << seed << ": double recovery diverged";
  }
}

// ---------------------------------------------------------------------------
// Group commit under concurrency (TSan coverage) + ack durability.
// ---------------------------------------------------------------------------

TEST(GroupCommit, ConcurrentAcknowledgedWritesAllSurviveReopen) {
  const std::string dir = FreshDir("writers");
  constexpr int kThreads = 8;
  constexpr int kDocsPerThread = 25;

  std::vector<std::vector<int32_t>> acked(kThreads);
  {
    CrashPoint::Instance().Reset();
    core::Database db;
    ASSERT_TRUE(db.Open(DiskOptions(dir)).ok());
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&db, &acked, t] {
        for (int i = 0; i < kDocsPerThread; ++i) {
          int32_t id = -1;
          const Status s = db.AddDocument(
              DetDoc(static_cast<uint64_t>(t) * 100 + i), &id);
          ASSERT_TRUE(s.ok()) << s.ToString();
          acked[t].push_back(id);
        }
      });
    }
    for (std::thread& w : writers) w.join();

    const storage::WalStats ws = db.wal_stats();
    EXPECT_GE(ws.appends, static_cast<uint64_t>(kThreads * kDocsPerThread));
    EXPECT_GE(ws.fsyncs, 1u);
    EXPECT_GE(ws.batch_records_max, 1u);
    // The accounting invariant: every framed record is covered by exactly
    // one group-commit batch. (That batches exceed one record is the
    // throughput win — the ingest bench gates on it; a functional test on
    // an unloaded box can't.)
    EXPECT_EQ(ws.batch_records_sum, ws.appends);
  }

  // Every acknowledged docid is distinct and survives the reopen.
  std::set<int32_t> all;
  for (const auto& per_thread : acked) {
    for (int32_t id : per_thread) {
      EXPECT_TRUE(all.insert(id).second) << "docid " << id << " reused";
    }
  }
  ASSERT_EQ(all.size(), static_cast<size_t>(kThreads * kDocsPerThread));

  core::Database reopened;
  ASSERT_TRUE(reopened.Open(DiskOptions(dir)).ok());
  const std::set<int32_t> live = LiveDocids(reopened);
  for (int32_t id : all) {
    EXPECT_TRUE(live.count(id) != 0) << "acked docid " << id << " lost";
  }
  EXPECT_EQ(live.size(), 80u + all.size());
}

TEST(GroupCommit, FsyncPerWriteModeAlsoRecovers) {
  const std::string dir = FreshDir("fsync_each");
  CrashPoint::Instance().Reset();
  std::string dump;
  {
    core::Database db;
    ASSERT_TRUE(
        db.Open(DiskOptions(dir, storage::WalSyncMode::kFsyncPerWrite)).ok());
    for (uint64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(db.AddDocument(DetDoc(i), nullptr).ok());
    }
    ASSERT_TRUE(db.DeleteDocument(81).ok());
    const storage::WalStats ws = db.wal_stats();
    EXPECT_EQ(ws.appends, 6u);
    EXPECT_GE(ws.fsyncs, 6u);  // one per acknowledged write
    dump = DumpState(db);
  }
  core::Database reopened;
  ASSERT_TRUE(
      reopened.Open(DiskOptions(dir, storage::WalSyncMode::kFsyncPerWrite))
          .ok());
  EXPECT_EQ(DumpState(reopened), dump);
}

TEST(WalDisabled, RestoresVolatileDeltaSemantics) {
  const std::string dir = FreshDir("off");
  CrashPoint::Instance().Reset();
  std::string dump_before_adds;
  {
    core::Database db;
    core::DatabaseOptions dopts = DiskOptions(dir);
    dopts.storage.wal.enabled = false;
    ASSERT_TRUE(db.Open(dopts).ok());
    dump_before_adds = DumpState(db);
    for (uint64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(db.AddDocument(DetDoc(i), nullptr).ok());
    }
    EXPECT_EQ(db.wal_stats().appends, 0u);
  }
  core::Database reopened;
  core::DatabaseOptions dopts = DiskOptions(dir);
  dopts.storage.wal.enabled = false;
  ASSERT_TRUE(reopened.Open(dopts).ok());
  // The pre-§13 contract, kept for benches isolating WAL cost: delta
  // documents are volatile and a reopen sheds them.
  EXPECT_EQ(DumpState(reopened), dump_before_adds);
}

// ---------------------------------------------------------------------------
// Units: frame CRC, payload codecs, seal idempotence, torn-manifest fallback.
// ---------------------------------------------------------------------------

TEST(WalUnits, Crc32MatchesTheIeeeCheckValue) {
  // The canonical CRC-32/ISO-HDLC check input.
  EXPECT_EQ(storage::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(storage::Crc32("", 0), 0u);
}

TEST(WalUnits, PayloadCodecsRoundTripAndRejectGarbage) {
  const std::vector<std::pair<uint32_t, int32_t>> terms = {
      {3, 1}, {7, 4}, {190, 2}};
  const std::vector<uint8_t> add = Wal::EncodeAdd(42, terms);
  storage::WalRecordView rec{storage::WalRecordType::kAddDocument, add.data(),
                             static_cast<uint32_t>(add.size())};
  Wal::AddPayload decoded;
  ASSERT_TRUE(Wal::DecodeAdd(rec, &decoded));
  EXPECT_EQ(decoded.docid, 42);
  EXPECT_EQ(decoded.terms, terms);
  rec.len -= 1;  // a truncated payload must not decode
  EXPECT_FALSE(Wal::DecodeAdd(rec, &decoded));

  const std::vector<uint8_t> del = Wal::EncodeDocid(7);
  storage::WalRecordView drec{storage::WalRecordType::kDeleteDocument,
                              del.data(), static_cast<uint32_t>(del.size())};
  int32_t docid = -1;
  ASSERT_TRUE(Wal::DecodeDocid(drec, &docid));
  EXPECT_EQ(docid, 7);

  const std::vector<uint8_t> mc = Wal::EncodeMergeCommitted(99, 12345);
  storage::WalRecordView mrec{storage::WalRecordType::kMergeCommitted,
                              mc.data(), static_cast<uint32_t>(mc.size())};
  int32_t cutoff = -1;
  uint64_t epoch = 0;
  ASSERT_TRUE(Wal::DecodeMergeCommitted(mrec, &cutoff, &epoch));
  EXPECT_EQ(cutoff, 99);
  EXPECT_EQ(epoch, 12345u);
}

TEST(WalUnits, SealIsIdempotent) {
  DeltaSegment delta(16, 100);
  int32_t id = -1;
  ASSERT_TRUE(delta.Add({{1, 2}, {5, 1}}, &id).ok());
  EXPECT_EQ(id, 100);
  delta.Seal();
  EXPECT_TRUE(delta.sealed());
  delta.Seal();  // re-sealing (WAL replay does this) changes nothing
  EXPECT_TRUE(delta.sealed());
  EXPECT_EQ(delta.num_docs(), 1u);
  EXPECT_EQ(delta.Add({{2, 1}}, &id).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(delta.doc_len(0), 3);
}

TEST(WalUnits, TornManifestWipesTheLogAndFallsBackClean) {
  const std::string dir = FreshDir("torn_manifest");
  CrashPoint::Instance().Reset();
  {
    core::Database db;
    ASSERT_TRUE(db.Open(DiskOptions(dir)).ok());
    for (uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(db.AddDocument(DetDoc(i), nullptr).ok());
    }
    ASSERT_TRUE(db.Merge().ok());
    ASSERT_TRUE(db.AddDocument(DetDoc(50), nullptr).ok());
  }
  // Tear the manifest. The WAL's records were framed against state the
  // clean rebuild cannot restore, so recovery must discard them with it —
  // replaying them against the rebuilt epoch-0 corpus would be corruption.
  fs::resize_file(dir + "/MANIFEST", 7);

  core::Database db;
  ASSERT_TRUE(db.Open(DiskOptions(dir)).ok());
  std::shared_ptr<const Snapshot> snap = db.Acquire();
  EXPECT_EQ(snap->stats->num_docs, 80u);  // the corpus alone
  EXPECT_EQ(db.epoch(), 0u);
  EXPECT_EQ(db.wal_stats().replayed_records, 0u);
}

}  // namespace
}  // namespace x100ir::ir
