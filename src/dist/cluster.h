// Doc-partitioned scatter-gather search (DESIGN.md §11) — the paper's
// Table 3 distributed runs, in-process: a Cluster doc-partitions the
// corpus into `total_partitions` contiguous global-docid ranges and
// stands up one node per opened partition, each node a full private
// engine stack (its own core::Database over its corpus slice, its own
// lock-striped BufferManager and simulated disk, its own `cores_per_node`
// worker pool standing in for one of the paper's dual-core Athlon64 X2
// servers). A query is scattered to every node, executed against the
// node's partition index with the *cluster-global* CollectionStats
// plumbed in (so every shard scores under one model and the merged
// ranking is the single-engine ranking), and the per-shard top-k are
// merged under the engine's total rank order (score desc, docid asc).
//
// Substitutions vs the paper's 8-machine LAN (DESIGN.md §11.5): nodes are
// threads, the network is a fixed per-query latency charge, and the
// heterogeneous hardware is per-node service-time stretch factors — a
// shard's simulated service time is its measured (real + simulated-I/O)
// query time scaled by `service_scale * speed_factor`, and the node's
// worker actually sleeps out the stretch, so queueing under closed-loop
// concurrency emerges from real contention rather than a formula.
//
// Shared-θ pruning (§11.3): in shared mode the coordinator allocates one
// SharedTheta channel per query; every shard publishes its local
// k-th-best and floors its MaxScore threshold with the channel, so late
// or slow shards skip work that independent top-k-then-merge must do.
// The merged result is unchanged (the channel is a provable lower bound
// on the global k-th best; boundary ties are never pruned) — only the
// probe/candidate work drops, which dist_test proves by counter.
#ifndef X100IR_DIST_CLUSTER_H_
#define X100IR_DIST_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/database.h"
#include "ir/collection_stats.h"
#include "ir/search_engine.h"

namespace x100ir::dist {

struct ClusterOptions {
  // Nodes this cluster opens: partitions [0, num_partitions) of the fixed
  // `total_partitions`-way split. Opening fewer nodes than partitions is
  // the paper's "using less servers, fixed partition size" configuration:
  // every node always holds a 1/total share, so the served collection
  // shrinks with the cluster. 1 <= num_partitions <= total_partitions;
  // at most 32 nodes (the per-query fault/straggle masks are 32-bit).
  uint32_t num_partitions = 8;
  uint32_t total_partitions = 8;

  // Worker threads per node (the paper's servers are dual-core).
  uint32_t cores_per_node = 2;

  // Fixed per-query network round-trip charge, added to reported query
  // latency (never slept: the LAN is not a node resource).
  double network_ms = 0.0;

  // Service-time model: a shard's simulated service time is
  // measured_total_seconds * service_scale * speed_factor[node], and the
  // node's worker sleeps out the difference so the stretch occupies the
  // node like real work. <= 0 disables the model (tests run at raw
  // speed). speed_factors empty = all 1.0, else one entry per opened
  // node; max/min ~2 reproduces the paper's LAN heterogeneity.
  double service_scale = 0.0;
  std::vector<double> speed_factors;

  // Each node's private buffer pool / simulated disk (storage-era runs).
  storage::StorageOptions storage;
};

// Per-query distributed knobs, wrapping the engine's SearchOptions.
struct DistSearchOptions {
  // Per-shard engine options. deadline/global_stats/shared_theta are
  // coordinator-owned and overwritten; everything else passes through.
  ir::SearchOptions search;

  // Shared-θ pruning across shards (MaxScore ranked runs). Off = the
  // independent top-k-then-merge baseline.
  bool share_theta = false;

  // Scatter shards one at a time on the calling thread instead of
  // through the node pools. Deterministic by construction — with
  // share_theta every shard after the first starts from its predecessors'
  // final published bound — so the θ-pruning tests and gates are
  // reproducible counter comparisons, not races.
  bool sequential = false;

  // Whole-query deadline, propagated into every shard's engine and
  // enforced across the simulated service stretch; 0 = none (the
  // coordinator then waits out the slowest shard, however slow).
  double deadline_seconds = 0.0;

  // Straggler / fault policy: fail the query on the first shard error, or
  // merge the responsive shards and flag the result partial.
  bool allow_partial = false;

  // Deterministic per-query fault hooks (dist_test's battery): bit i set
  // in fault_mask fails node i with IOError before it searches; bit i in
  // straggle_mask adds straggle_ms of service time to node i.
  uint32_t fault_mask = 0;
  uint32_t straggle_mask = 0;
  double straggle_ms = 0.0;
};

struct DistResult {
  // Merged result in *global* docid space. Rank order (score desc, docid
  // asc) for ranked runs; first-k in docid order for boolean runs.
  // Accounting fields (num_matches, io_seconds, stats) are the sum over
  // every merged shard (SearchResult::MergeAccounting); seconds is the
  // coordinator's scatter-to-merge wall time.
  ir::SearchResult merged;

  // True when allow_partial dropped at least one failed shard from the
  // merge (the result covers only the responsive partitions).
  bool partial = false;
  uint32_t shards_ok = 0;
  uint32_t shards_failed = 0;
  std::vector<Status> shard_status;  // per node, in node order

  // Simulated per-shard service times (stretch + straggle; zero for
  // faulted shards), and the query's reported latency: scatter-gather
  // wall time plus the network charge.
  std::vector<double> shard_service_ms;
  double latency_ms = 0.0;
};

// Closed-loop stream run aggregates — what Table 3's rows are made of.
struct StreamRunStats {
  struct Accum {
    double sum = 0.0;
    uint64_t n = 0;
    void Record(double x) {
      sum += x;
      ++n;
    }
    double Mean() const { return n == 0 ? 0.0 : sum / static_cast<double>(n); }
  };

  Accum query_latency_ms;
  std::vector<Accum> node_service_ms;  // one per node
  uint64_t queries = 0;
  uint64_t errors = 0;
  double wall_seconds = 0.0;
  // Cluster-wide execution counters, merged with ExecStats::operator+=
  // (the θ-mode comparison reads docs_probed/vectors_pruned from here).
  vec::ExecStats exec;

  // Amortized per-query time: wall clock over the whole closed-loop batch
  // divided by its query count — the paper's throughput-side number.
  double AmortizedMs() const {
    return queries == 0 ? 0.0
                        : wall_seconds * 1e3 / static_cast<double>(queries);
  }
  double MinNodeMs() const;
  double AvgNodeMs() const;
  double MaxNodeMs() const;
};

class Cluster {
 public:
  Cluster() = default;
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Partitions `corpus` and opens the nodes, building (or
  // fingerprint-reusing) each partition index under dir/part<i> in
  // parallel. Empty dir = fully in-memory nodes (no storage runs). The
  // corpus is only read during Open; the cluster keeps no reference.
  Status Open(const ir::Corpus& corpus, const std::string& dir,
              const ClusterOptions& opts);

  // One scatter-gather query. Thread-safe after Open (any number of
  // concurrent streams); see DistSearchOptions for the failure policy.
  Status Search(const ir::Query& query, ir::RunType type,
                const DistSearchOptions& opts, DistResult* out) const;

  // One unstretched pass over `queries` to populate every node's buffer
  // pool — the Table 3 "hot data" precondition.
  Status WarmUp(const std::vector<ir::Query>& queries, ir::RunType type,
                uint32_t k);

  // Closed-loop run: `streams` driver threads share the query list and
  // each drives one query at a time end to end. Fails on the first query
  // error (the batch's remaining queries still drain).
  Status RunStreams(const std::vector<ir::Query>& queries, ir::RunType type,
                    uint32_t k, uint32_t streams, bool share_theta,
                    StreamRunStats* out) const;

  bool is_open() const { return open_; }
  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }
  // First global docid of node i's partition (contiguous ranges: local
  // docid l on node i is global node_base(i) + l).
  int32_t node_base(uint32_t node) const { return nodes_[node]->base; }
  uint32_t node_num_docs(uint32_t node) const {
    return nodes_[node]->db.corpus().num_docs();
  }
  // The scoring model every shard runs under: exact counts over the
  // opened partitions (== the whole corpus when num_partitions ==
  // total_partitions).
  const ir::CollectionStats& collection_stats() const { return stats_; }
  const core::Database& node_db(uint32_t node) const {
    return nodes_[node]->db;
  }

 private:
  struct Node {
    uint32_t id = 0;
    int32_t base = 0;  // first global docid of this partition
    double speed_factor = 1.0;
    core::Database db;
    // Declared after db so shutdown joins in-flight shard tasks before
    // the database they read from dies.
    std::unique_ptr<ThreadPool> exec;
  };

  // One shard's leg of a query: engine call + service-time model.
  // `stretch` disables the model for warm-up passes.
  void RunShard(const Node& node, const ir::Query& query, ir::RunType type,
                const DistSearchOptions& opts, const Deadline* deadline,
                SharedTheta* theta, bool stretch, ir::SearchResult* result,
                Status* status, double* service_ms) const;

  bool open_ = false;
  ClusterOptions opts_;
  ir::CollectionStats stats_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace x100ir::dist

#endif  // X100IR_DIST_CLUSTER_H_
