// Cluster implementation: partition building, the scatter-gather
// coordinator, the per-shard service-time model, and closed-loop stream
// driving. Design notes in cluster.h and DESIGN.md §11.
#include "dist/cluster.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "common/shared_theta.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace x100ir::dist {
namespace {

// Smallest service-model sleep slice: long stretches stay responsive to
// the query deadline without burning a syscall per microsecond.
constexpr double kSleepSliceSeconds = 250e-6;

// Sleeps out `seconds` of simulated service time in deadline-checked
// slices. Returns DeadlineExceeded (or Unavailable after a cancel) if the
// deadline fires mid-sleep: the modeled service did not finish in time,
// so the shard's answer — however real — arrives too late to count.
Status SleepService(double seconds, const Deadline* deadline) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point end =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  for (;;) {
    if (deadline != nullptr) {
      X100IR_RETURN_IF_ERROR(deadline->Check());
    }
    const Clock::time_point now = Clock::now();
    if (now >= end) return OkStatus();
    const double left = std::chrono::duration<double>(end - now).count();
    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::min(left, kSleepSliceSeconds)));
  }
}

// The snapshot layer's rank order (score desc, docid asc) over merged
// shard candidates — docids are globally unique across shards, so the
// merge is deterministic regardless of shard completion order.
struct RankedCandidate {
  int32_t docid = 0;
  float score = 0.0f;
};
bool RankedBefore(const RankedCandidate& a, const RankedCandidate& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.docid < b.docid;
}

}  // namespace

double StreamRunStats::MinNodeMs() const {
  double best = 0.0;
  bool first = true;
  for (const Accum& a : node_service_ms) {
    if (first || a.Mean() < best) best = a.Mean();
    first = false;
  }
  return best;
}

double StreamRunStats::AvgNodeMs() const {
  if (node_service_ms.empty()) return 0.0;
  double total = 0.0;
  for (const Accum& a : node_service_ms) total += a.Mean();
  return total / static_cast<double>(node_service_ms.size());
}

double StreamRunStats::MaxNodeMs() const {
  double worst = 0.0;
  for (const Accum& a : node_service_ms) worst = std::max(worst, a.Mean());
  return worst;
}

Cluster::~Cluster() = default;

Status Cluster::Open(const ir::Corpus& corpus, const std::string& dir,
                     const ClusterOptions& opts) {
  open_ = false;
  nodes_.clear();
  stats_ = ir::CollectionStats();
  if (opts.num_partitions == 0) {
    return InvalidArgument("cluster needs at least one partition");
  }
  if (opts.num_partitions > opts.total_partitions) {
    return InvalidArgument("cannot open more nodes than partitions exist");
  }
  if (opts.num_partitions > 32) {
    return InvalidArgument("at most 32 nodes (32-bit fault/straggle masks)");
  }
  if (!opts.speed_factors.empty() &&
      opts.speed_factors.size() != opts.num_partitions) {
    return InvalidArgument("speed_factors must have one entry per node");
  }
  if (corpus.num_docs() < opts.total_partitions) {
    return InvalidArgument("fewer documents than partitions");
  }
  opts_ = opts;

  // Contiguous equal doc ranges: partition p owns global docids
  // [p*D/T, (p+1)*D/T). Contiguity keeps the local->global docid map a
  // single per-node offset and makes boolean merges a concatenation.
  const uint64_t docs = corpus.num_docs();
  const auto part_begin = [&](uint32_t p) -> uint32_t {
    return static_cast<uint32_t>(docs * p / opts.total_partitions);
  };

  // Scoring model over exactly the opened partitions, computed the way
  // Corpus::Finalize computes it (integer totals, one double division) so
  // a full-coverage cluster's stats — and therefore every Bm25Idf and
  // length normalization — are bit-identical to the single engine's
  // build-time values.
  const uint32_t opened_end = part_begin(opts.num_partitions);
  stats_.num_docs = opened_end;
  stats_.df.assign(corpus.vocab_size(), 0);
  uint64_t total_len = 0;
  for (uint32_t d = 0; d < opened_end; ++d) {
    total_len += static_cast<uint64_t>(corpus.doc_len(d));
    for (const ir::DocTerm& p : corpus.doc(d)) ++stats_.df[p.term];
  }
  stats_.avg_doc_len = opened_end == 0
                           ? 0.0
                           : static_cast<double>(total_len) /
                                 static_cast<double>(opened_end);

  // Stand the nodes up in parallel: slicing the corpus is cheap, but each
  // node's index build (first open) is the full encode pipeline.
  nodes_.resize(opts.num_partitions);
  std::vector<Status> status(opts.num_partitions);
  {
    ThreadPool build_pool(std::min<uint32_t>(
        opts.num_partitions,
        std::max(1u, std::thread::hardware_concurrency())));
    std::mutex mu;
    std::condition_variable cv;
    uint32_t pending = opts.num_partitions;
    for (uint32_t p = 0; p < opts.num_partitions; ++p) {
      build_pool.Submit([&, p] {
        auto node = std::make_unique<Node>();
        node->id = p;
        node->base = static_cast<int32_t>(part_begin(p));
        node->speed_factor =
            opts.speed_factors.empty() ? 1.0 : opts.speed_factors[p];
        const uint32_t begin = part_begin(p);
        const uint32_t end = part_begin(p + 1);
        std::vector<std::vector<ir::DocTerm>> slice(end - begin);
        for (uint32_t d = begin; d < end; ++d) {
          slice[d - begin] = corpus.doc(d);
        }
        ir::Corpus part;
        Status s = ir::Corpus::FromDocTerms(std::move(slice),
                                            corpus.vocab_size(), &part);
        if (s.ok()) {
          const std::string node_dir =
              dir.empty() ? std::string() : StrFormat("%s/part%u", dir.c_str(), p);
          s = node->db.OpenWithCorpus(std::move(part), node_dir,
                                      opts.storage);
        }
        if (s.ok()) {
          node->exec =
              std::make_unique<ThreadPool>(std::max(1u, opts.cores_per_node));
        }
        std::lock_guard<std::mutex> lock(mu);
        status[p] = std::move(s);
        nodes_[p] = std::move(node);
        if (--pending == 0) cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending == 0; });
  }
  for (uint32_t p = 0; p < opts.num_partitions; ++p) {
    if (!status[p].ok()) {
      nodes_.clear();
      return Status(status[p].code(),
                    StrFormat("node %u: %s", p, status[p].message().c_str()));
    }
  }
  open_ = true;
  return OkStatus();
}

void Cluster::RunShard(const Node& node, const ir::Query& query,
                       ir::RunType type, const DistSearchOptions& opts,
                       const Deadline* deadline, SharedTheta* theta,
                       bool stretch, ir::SearchResult* result, Status* status,
                       double* service_ms) const {
  *service_ms = 0.0;
  if ((opts.fault_mask >> node.id) & 1u) {
    *status = IOError(StrFormat("node %u: injected shard fault", node.id));
    return;
  }
  ir::SearchOptions sopts = opts.search;
  sopts.global_stats = &stats_;
  sopts.tombstones = nullptr;
  sopts.shared_theta = theta;
  if (deadline != nullptr) sopts.deadline = deadline;

  WallTimer timer;
  Status s = node.db.Search(query, type, sopts, result);
  const double elapsed = timer.ElapsedSeconds();
  double service_s = elapsed;
  if (s.ok() && stretch && opts_.service_scale > 0.0) {
    // The node's simulated service time; the worker sleeps out the
    // difference so the stretch occupies this node's core for real.
    service_s = result->TotalSeconds() * opts_.service_scale *
                node.speed_factor;
    if (service_s > elapsed) {
      s = SleepService(service_s - elapsed, deadline);
    }
  }
  if (s.ok() && ((opts.straggle_mask >> node.id) & 1u) &&
      opts.straggle_ms > 0.0) {
    service_s += opts.straggle_ms * 1e-3;
    s = SleepService(opts.straggle_ms * 1e-3, deadline);
  }
  *status = std::move(s);
  *service_ms = status->ok() ? service_s * 1e3 : 0.0;
}

Status Cluster::Search(const ir::Query& query, ir::RunType type,
                       const DistSearchOptions& opts, DistResult* out) const {
  if (out == nullptr) return InvalidArgument("null dist result");
  if (!open_) return InvalidArgument("cluster is not open");
  *out = DistResult();
  const uint32_t n = num_nodes();
  out->shard_status.resize(n);
  out->shard_service_ms.assign(n, 0.0);

  WallTimer timer;
  // Coordinator-owned per-query resources: the deadline covers scatter
  // through merge, the θ channel lives exactly as long as its query.
  std::unique_ptr<Deadline> deadline;
  if (opts.deadline_seconds > 0.0) {
    deadline = std::make_unique<Deadline>(opts.deadline_seconds);
  }
  const Deadline* dl =
      deadline != nullptr ? deadline.get() : opts.search.deadline;
  SharedTheta theta;
  SharedTheta* theta_ptr = opts.share_theta ? &theta : nullptr;

  std::vector<ir::SearchResult> shard_results(n);
  if (opts.sequential) {
    for (uint32_t i = 0; i < n; ++i) {
      RunShard(*nodes_[i], query, type, opts, dl, theta_ptr,
               /*stretch=*/true, &shard_results[i], &out->shard_status[i],
               &out->shard_service_ms[i]);
    }
  } else {
    std::mutex mu;
    std::condition_variable cv;
    uint32_t pending = n;
    for (uint32_t i = 0; i < n; ++i) {
      nodes_[i]->exec->Submit([&, i] {
        RunShard(*nodes_[i], query, type, opts, dl, theta_ptr,
                 /*stretch=*/true, &shard_results[i], &out->shard_status[i],
                 &out->shard_service_ms[i]);
        std::lock_guard<std::mutex> lock(mu);
        if (--pending == 0) cv.notify_all();
      });
    }
    // Gather waits for every shard — even expired ones return promptly
    // because the deadline is checked inside the engine and the service
    // sleep, so slowest-of-N is bounded by the deadline when one is set.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending == 0; });
  }

  Status first_error = OkStatus();
  for (uint32_t i = 0; i < n; ++i) {
    if (out->shard_status[i].ok()) {
      ++out->shards_ok;
    } else {
      ++out->shards_failed;
      if (first_error.ok()) first_error = out->shard_status[i];
    }
  }
  if (out->shards_failed > 0 &&
      (!opts.allow_partial || out->shards_ok == 0)) {
    return first_error;
  }
  out->partial = out->shards_failed > 0;

  // Merge in global docid space. Ranked: top-k under the engine's total
  // rank order over at most n*k candidates — never a re-score, so shard
  // scores pass through bit-exact. Boolean: partitions ascend in docid
  // space, so concatenation in node order is already docid-sorted and the
  // first k match the monolithic engine's first-k cap.
  const bool ranked_run =
      type != ir::RunType::kBoolAnd && type != ir::RunType::kBoolOr;
  std::vector<RankedCandidate> ranked;
  for (uint32_t i = 0; i < n; ++i) {
    if (!out->shard_status[i].ok()) continue;
    const ir::SearchResult& sr = shard_results[i];
    out->merged.MergeAccounting(sr);
    const int32_t base = nodes_[i]->base;
    if (ranked_run) {
      for (size_t r = 0; r < sr.docids.size(); ++r) {
        ranked.push_back({base + sr.docids[r], sr.scores[r]});
      }
    } else {
      for (int32_t d : sr.docids) out->merged.docids.push_back(base + d);
    }
  }
  if (ranked_run) {
    const size_t k = std::min<size_t>(opts.search.k, ranked.size());
    std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                      RankedBefore);
    out->merged.docids.reserve(k);
    out->merged.scores.reserve(k);
    for (size_t r = 0; r < k; ++r) {
      out->merged.docids.push_back(ranked[r].docid);
      out->merged.scores.push_back(ranked[r].score);
    }
  } else if (out->merged.docids.size() > opts.search.k) {
    out->merged.docids.resize(opts.search.k);
  }
  out->merged.seconds = timer.ElapsedSeconds();
  out->latency_ms = out->merged.seconds * 1e3 + opts_.network_ms;
  return OkStatus();
}

Status Cluster::WarmUp(const std::vector<ir::Query>& queries,
                       ir::RunType type, uint32_t k) {
  if (!open_) return InvalidArgument("cluster is not open");
  DistSearchOptions dopts;
  dopts.search.k = k;
  for (const ir::Query& q : queries) {
    const uint32_t n = num_nodes();
    std::vector<ir::SearchResult> results(n);
    std::vector<Status> status(n);
    std::vector<double> service(n, 0.0);
    std::mutex mu;
    std::condition_variable cv;
    uint32_t pending = n;
    for (uint32_t i = 0; i < n; ++i) {
      nodes_[i]->exec->Submit([&, i] {
        RunShard(*nodes_[i], q, type, dopts, nullptr, nullptr,
                 /*stretch=*/false, &results[i], &status[i], &service[i]);
        std::lock_guard<std::mutex> lock(mu);
        if (--pending == 0) cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending == 0; });
    for (uint32_t i = 0; i < n; ++i) {
      X100IR_RETURN_IF_ERROR(status[i]);
    }
  }
  return OkStatus();
}

Status Cluster::RunStreams(const std::vector<ir::Query>& queries,
                           ir::RunType type, uint32_t k, uint32_t streams,
                           bool share_theta, StreamRunStats* out) const {
  if (out == nullptr) return InvalidArgument("null stream stats");
  if (!open_) return InvalidArgument("cluster is not open");
  if (queries.empty()) return InvalidArgument("no queries to stream");
  *out = StreamRunStats();
  out->node_service_ms.resize(num_nodes());
  out->queries = queries.size();

  std::atomic<size_t> next{0};
  std::mutex agg_mu;
  Status first_error;  // guarded by agg_mu
  WallTimer timer;
  std::vector<std::thread> drivers;
  drivers.reserve(std::max(1u, streams));
  for (uint32_t t = 0; t < std::max(1u, streams); ++t) {
    drivers.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= queries.size()) return;
        DistSearchOptions dopts;
        dopts.search.k = k;
        dopts.share_theta = share_theta;
        DistResult r;
        Status s = Search(queries[i], type, dopts, &r);
        std::lock_guard<std::mutex> lock(agg_mu);
        if (!s.ok()) {
          ++out->errors;
          if (first_error.ok()) first_error = std::move(s);
          continue;
        }
        out->query_latency_ms.Record(r.latency_ms);
        for (uint32_t node = 0; node < num_nodes(); ++node) {
          out->node_service_ms[node].Record(r.shard_service_ms[node]);
        }
        out->exec += r.merged.stats;
      }
    });
  }
  for (std::thread& d : drivers) d.join();
  out->wall_seconds = timer.ElapsedSeconds();
  return first_error;
}

}  // namespace x100ir::dist
