#include "storage/buffer_manager.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace x100ir::storage {

BufferManager::BufferManager(uint64_t pool_bytes, SimulatedDisk* disk,
                             uint32_t page_bytes, uint32_t shards)
    : pool_bytes_(pool_bytes),
      page_bytes_(page_bytes == 0 ? 1 : page_bytes),
      disk_(disk) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (uint32_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->budget = pool_bytes / shards;
  }
  // The division remainder goes to shard 0 so the budgets sum to the pool;
  // with shards == 1 that makes the budget exactly pool_bytes.
  shards_[0]->budget += pool_bytes % shards;
}

Status BufferManager::RegisterFile(uint32_t file_id, const File* file) {
  if (file == nullptr || !file->is_open()) {
    return InvalidArgument("cannot register an unopened file");
  }
  if (file_id >= (1u << 24)) {
    return InvalidArgument("file id too large for the page key");
  }
  std::lock_guard<std::mutex> files_lock(files_mu_);
  if (files_.find(file_id) != files_.end()) {
    // The id is being rebound (index rebuild): resident pages of the old
    // file are stale and must be dropped — atomically across all shards,
    // so no concurrent Pin can hit a stale frame mid-rebind. They must all
    // be unpinned first: nobody can legitimately hold a pin into a file
    // being replaced.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (auto& shard : shards_) locks.emplace_back(shard->mu);
    Status dropped = DropFilePagesLocked(file_id);
    if (!dropped.ok()) {
      return FailedPrecondition("re-registering a file with pinned pages");
    }
  }
  files_[file_id] = file;
  return OkStatus();
}

Status BufferManager::DropFilePagesLocked(uint32_t file_id) {
  for (auto& shard : shards_) {
    for (const auto& [key, frame] : shard->frames) {
      if ((key >> 40) == file_id && frame.refcount != 0) {
        return FailedPrecondition(
            StrFormat("evicting file %u with pinned pages", file_id));
      }
    }
  }
  for (auto& shard : shards_) {
    for (auto fit = shard->frames.begin(); fit != shard->frames.end();) {
      if ((fit->first >> 40) == file_id) {
        if (fit->second.in_lru) shard->lru.erase(fit->second.lru_pos);
        shard->resident_bytes -= fit->second.data.size();
        fit = shard->frames.erase(fit);
      } else {
        ++fit;
      }
    }
  }
  return OkStatus();
}

Status BufferManager::EvictFile(uint32_t file_id) {
  std::lock_guard<std::mutex> files_lock(files_mu_);
  if (files_.find(file_id) == files_.end()) {
    return InvalidArgument(
        StrFormat("evicting unregistered file id %u", file_id));
  }
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) locks.emplace_back(shard->mu);
  return DropFilePagesLocked(file_id);
}

Status BufferManager::UnregisterFile(uint32_t file_id) {
  std::lock_guard<std::mutex> files_lock(files_mu_);
  auto fit = files_.find(file_id);
  if (fit == files_.end()) {
    return InvalidArgument(
        StrFormat("unregistering unknown file id %u", file_id));
  }
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) locks.emplace_back(shard->mu);
  X100IR_RETURN_IF_ERROR(DropFilePagesLocked(file_id));
  files_.erase(fit);
  return OkStatus();
}

Status BufferManager::Pin(uint32_t file_id, uint64_t page_no,
                          const uint8_t** data, uint32_t* len) {
  if (data == nullptr || len == nullptr) {
    return InvalidArgument("null pin output");
  }
  const File* file = nullptr;
  {
    std::lock_guard<std::mutex> files_lock(files_mu_);
    auto fit = files_.find(file_id);
    if (fit == files_.end()) {
      return InvalidArgument(StrFormat("unregistered file id %u", file_id));
    }
    file = fit->second;
  }

  const uint64_t key = Key(file_id, page_no);
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);

  auto it = shard.frames.find(key);
  if (it != shard.frames.end()) {
    Frame& frame = it->second;
    ++shard.stats.hits;
    if (frame.refcount == 0) {
      if (frame.in_lru) {
        shard.lru.erase(frame.lru_pos);
        frame.in_lru = false;
      }
      ++shard.pinned_pages;
    }
    ++frame.refcount;
    *data = frame.data.data();
    *len = static_cast<uint32_t>(frame.data.size());
    return OkStatus();
  }

  // Miss: size the page against the file, make room, fetch. The shard lock
  // is held across the read — a second thread pinning the *same* page must
  // wait for the fetch anyway, and other shards proceed unblocked.
  uint64_t file_size = 0;
  X100IR_RETURN_IF_ERROR(file->Size(&file_size));
  const uint64_t off = page_no * static_cast<uint64_t>(page_bytes_);
  if (off >= file_size) {
    return InvalidArgument(
        StrFormat("page %llu past end of file %u",
                  static_cast<unsigned long long>(page_no), file_id));
  }
  const uint32_t page_len = static_cast<uint32_t>(
      std::min<uint64_t>(page_bytes_, file_size - off));

  while (shard.resident_bytes + page_len > shard.budget) {
    if (shard.lru.empty()) {
      return ResourceExhausted(StrFormat(
          "buffer pool shard exhausted: %llu bytes resident are all pinned, "
          "%u more needed (shard budget %llu)",
          static_cast<unsigned long long>(shard.resident_bytes), page_len,
          static_cast<unsigned long long>(shard.budget)));
    }
    const uint64_t victim = shard.lru.front();
    shard.lru.pop_front();
    auto vit = shard.frames.find(victim);
    shard.resident_bytes -= vit->second.data.size();
    shard.frames.erase(vit);
    ++shard.stats.evictions;
  }

  // Fault injection happens at the same point a real device would fail:
  // after admission control, before any bytes land. A faulted page never
  // enters the pool, so a later retry re-fetches from scratch.
  if (FaultPlan* plan = fault_plan()) {
    switch (plan->Decide(file_id, page_no)) {
      case FaultKind::kTransientError:
        ++shard.stats.faults_transient;
        return Unavailable(StrFormat(
            "injected transient read error (file %u page %llu)", file_id,
            static_cast<unsigned long long>(page_no)));
      case FaultKind::kTornRead:
        ++shard.stats.faults_torn;
        return IOError(StrFormat(
            "injected torn read: page %llu of file %u came back short",
            static_cast<unsigned long long>(page_no), file_id));
      case FaultKind::kLatencySpike:
        if (disk_ != nullptr) {
          disk_->ChargeLatency(plan->options().latency_spike_seconds);
        }
        break;
      case FaultKind::kNone:
        break;
    }
  }

  Frame& frame = shard.frames[key];
  frame.data.resize(page_len);
  Status read = file->ReadAt(off, page_len, frame.data.data());
  if (!read.ok()) {
    // Drop the half-built frame: leaving it resident would make the next
    // Pin a "hit" on never-filled bytes.
    shard.frames.erase(key);
    return read;
  }
  if (disk_ != nullptr) disk_->Charge(page_len);
  ++shard.stats.misses;
  shard.stats.bytes_fetched += page_len;
  shard.resident_bytes += page_len;
  frame.refcount = 1;
  frame.in_lru = false;
  ++shard.pinned_pages;
  *data = frame.data.data();
  *len = page_len;
  return OkStatus();
}

void BufferManager::Unpin(uint32_t file_id, uint64_t page_no) {
  const uint64_t key = Key(file_id, page_no);
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(key);
  if (it == shard.frames.end() || it->second.refcount == 0) {
    // Unbalanced unpin: a caller bug. Loud in debug, harmless in release.
    assert(false && "unpin of an unpinned page");
    return;
  }
  Frame& frame = it->second;
  if (--frame.refcount == 0) {
    --shard.pinned_pages;
    frame.lru_pos = shard.lru.insert(shard.lru.end(), it->first);
    frame.in_lru = true;
  }
}

Status BufferManager::EvictAll() {
  // All-shard operation: take every shard lock in ascending index order
  // (the only order shard locks are ever held together, per §9.2), verify
  // nothing is pinned anywhere, then clear atomically.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) locks.emplace_back(shard->mu);
  uint64_t pinned = 0;
  for (auto& shard : shards_) pinned += shard->pinned_pages;
  if (pinned != 0) {
    return FailedPrecondition(StrFormat(
        "EvictAll with %llu pages still pinned",
        static_cast<unsigned long long>(pinned)));
  }
  for (auto& shard : shards_) {
    shard->frames.clear();
    shard->lru.clear();
    shard->resident_bytes = 0;
  }
  return OkStatus();
}

BufferStats BufferManager::stats() const {
  BufferStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
    total.bytes_fetched += shard->stats.bytes_fetched;
    total.faults_transient += shard->stats.faults_transient;
    total.faults_torn += shard->stats.faults_torn;
  }
  return total;
}

void BufferManager::ResetStats() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->stats = BufferStats{};
  }
}

uint64_t BufferManager::resident_bytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->resident_bytes;
  }
  return total;
}

uint64_t BufferManager::resident_pages() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->frames.size();
  }
  return total;
}

uint64_t BufferManager::ResidentPagesOfFile(uint32_t file_id) const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, frame] : shard->frames) {
      (void)frame;
      if ((key >> 40) == file_id) ++total;
    }
  }
  return total;
}

uint64_t BufferManager::pinned_pages() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->pinned_pages;
  }
  return total;
}

}  // namespace x100ir::storage
