#include "storage/buffer_manager.h"

#include <algorithm>

#include "common/string_util.h"

namespace x100ir::storage {

BufferManager::BufferManager(uint64_t pool_bytes, SimulatedDisk* disk,
                             uint32_t page_bytes)
    : pool_bytes_(pool_bytes),
      page_bytes_(page_bytes == 0 ? 1 : page_bytes),
      disk_(disk) {}

Status BufferManager::RegisterFile(uint32_t file_id, const File* file) {
  if (file == nullptr || !file->is_open()) {
    return InvalidArgument("cannot register an unopened file");
  }
  if (file_id >= (1u << 24)) {
    return InvalidArgument("file id too large for the page key");
  }
  auto it = files_.find(file_id);
  if (it != files_.end()) {
    // The id is being rebound (index rebuild): resident pages of the old
    // file are stale. They must all be unpinned — nobody can legitimately
    // hold a pin into a file being replaced.
    for (auto fit = frames_.begin(); fit != frames_.end();) {
      if ((fit->first >> 40) == file_id) {
        if (fit->second.refcount != 0) {
          return FailedPrecondition(
              "re-registering a file with pinned pages");
        }
        if (fit->second.in_lru) lru_.erase(fit->second.lru_pos);
        resident_bytes_ -= fit->second.data.size();
        fit = frames_.erase(fit);
      } else {
        ++fit;
      }
    }
  }
  files_[file_id] = file;
  return OkStatus();
}

Status BufferManager::Pin(uint32_t file_id, uint64_t page_no,
                          const uint8_t** data, uint32_t* len) {
  if (data == nullptr || len == nullptr) {
    return InvalidArgument("null pin output");
  }
  auto fit = files_.find(file_id);
  if (fit == files_.end()) {
    return InvalidArgument(StrFormat("unregistered file id %u", file_id));
  }
  const uint64_t key = Key(file_id, page_no);
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    Frame& frame = it->second;
    ++stats_.hits;
    if (frame.refcount == 0) {
      if (frame.in_lru) {
        lru_.erase(frame.lru_pos);
        frame.in_lru = false;
      }
      ++pinned_pages_;
    }
    ++frame.refcount;
    *data = frame.data.data();
    *len = static_cast<uint32_t>(frame.data.size());
    return OkStatus();
  }

  // Miss: size the page against the file, make room, fetch.
  uint64_t file_size = 0;
  X100IR_RETURN_IF_ERROR(fit->second->Size(&file_size));
  const uint64_t off = page_no * static_cast<uint64_t>(page_bytes_);
  if (off >= file_size) {
    return InvalidArgument(
        StrFormat("page %llu past end of file %u",
                  static_cast<unsigned long long>(page_no), file_id));
  }
  const uint32_t page_len = static_cast<uint32_t>(
      std::min<uint64_t>(page_bytes_, file_size - off));

  while (resident_bytes_ + page_len > pool_bytes_) {
    if (lru_.empty()) {
      return ResourceExhausted(StrFormat(
          "buffer pool exhausted: %llu bytes resident are all pinned, "
          "%u more needed (pool %llu)",
          static_cast<unsigned long long>(resident_bytes_), page_len,
          static_cast<unsigned long long>(pool_bytes_)));
    }
    const uint64_t victim = lru_.front();
    lru_.pop_front();
    auto vit = frames_.find(victim);
    resident_bytes_ -= vit->second.data.size();
    frames_.erase(vit);
    ++stats_.evictions;
  }

  Frame& frame = frames_[key];
  frame.data.resize(page_len);
  Status read = fit->second->ReadAt(off, page_len, frame.data.data());
  if (!read.ok()) {
    // Drop the half-built frame: leaving it resident would make the next
    // Pin a "hit" on never-filled bytes.
    frames_.erase(key);
    return read;
  }
  if (disk_ != nullptr) disk_->Charge(page_len);
  ++stats_.misses;
  stats_.bytes_fetched += page_len;
  resident_bytes_ += page_len;
  frame.refcount = 1;
  frame.in_lru = false;
  ++pinned_pages_;
  *data = frame.data.data();
  *len = page_len;
  return OkStatus();
}

void BufferManager::Unpin(uint32_t file_id, uint64_t page_no) {
  auto it = frames_.find(Key(file_id, page_no));
  if (it == frames_.end() || it->second.refcount == 0) {
    // Unbalanced unpin: a caller bug. Loud in debug, harmless in release.
    assert(false && "unpin of an unpinned page");
    return;
  }
  Frame& frame = it->second;
  if (--frame.refcount == 0) {
    --pinned_pages_;
    frame.lru_pos = lru_.insert(lru_.end(), it->first);
    frame.in_lru = true;
  }
}

Status BufferManager::EvictAll() {
  if (pinned_pages_ != 0) {
    return FailedPrecondition(StrFormat(
        "EvictAll with %llu pages still pinned",
        static_cast<unsigned long long>(pinned_pages_)));
  }
  frames_.clear();
  lru_.clear();
  resident_bytes_ = 0;
  return OkStatus();
}

}  // namespace x100ir::storage
