#include "storage/column_reader.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/string_util.h"
#include "compress/block_layout.h"
#include "ir/index_meta.h"

namespace x100ir::storage {

using ir::ColumnFileHeader;
using ir::Q8Params;

Status ColumnReader::Open(const std::string& path, uint32_t file_id,
                          BufferManager* bm) {
  if (bm == nullptr) return InvalidArgument("null buffer manager");
  X100IR_RETURN_IF_ERROR(File::OpenReadOnly(path, &file_));
  X100IR_RETURN_IF_ERROR(file_.Size(&file_size_));
  ColumnFileHeader hdr;
  if (file_size_ < sizeof(hdr)) {
    return IOError("column file shorter than its header: " + path);
  }
  X100IR_RETURN_IF_ERROR(file_.ReadAt(0, sizeof(hdr), &hdr));
  if (hdr.magic != ColumnFileHeader::kMagic) {
    return IOError("bad column magic in " + path);
  }
  encoding_ = hdr.encoding;
  value_count_ = hdr.value_count;
  payload_offset_ = sizeof(hdr);

  switch (encoding_) {
    case ColumnFileHeader::kRawI32:
    case ColumnFileHeader::kRawF32: {
      const uint64_t want = sizeof(hdr) + value_count_ * 4;
      if (file_size_ != want) {
        return IOError(StrFormat("column %s is %llu bytes, expected %llu",
                                 path.c_str(),
                                 static_cast<unsigned long long>(file_size_),
                                 static_cast<unsigned long long>(want)));
      }
      break;
    }
    case ColumnFileHeader::kQuantU8: {
      const uint64_t want = sizeof(hdr) + sizeof(Q8Params) + value_count_;
      if (file_size_ != want) {
        return IOError(StrFormat("column %s is %llu bytes, expected %llu",
                                 path.c_str(),
                                 static_cast<unsigned long long>(file_size_),
                                 static_cast<unsigned long long>(want)));
      }
      Q8Params params;
      X100IR_RETURN_IF_ERROR(
          file_.ReadAt(sizeof(hdr), sizeof(params), &params));
      if (!std::isfinite(params.scale) || !std::isfinite(params.bias) ||
          params.scale <= 0.0f) {
        return IOError("bad quantization parameters in " + path);
      }
      q8_scale_ = params.scale;
      q8_bias_ = params.bias;
      payload_offset_ += sizeof(params);
      break;
    }
    case ColumnFileHeader::kCompressedBlock: {
      // Keep the codec metadata prefix (header + entry points + dict)
      // resident; InitMeta revalidates every section offset against the
      // exact block size, so truncation anywhere past the metadata is
      // caught here too (the exceptions section's end is part of the
      // check).
      const uint64_t block_size = file_size_ - sizeof(hdr);
      constexpr size_t kBlockHeaderBytes =
          sizeof(compress::internal::BlockHeader);
      if (block_size < kBlockHeaderBytes) {
        return IOError("compressed block too small");
      }
      compress::internal::BlockHeader probe;
      X100IR_RETURN_IF_ERROR(
          file_.ReadAt(sizeof(hdr), sizeof(probe), &probe));
      const uint32_t code_offset = probe.code_offset;
      if (code_offset < kBlockHeaderBytes || code_offset > block_size) {
        return IOError("bad code offset in " + path);
      }
      block_meta_.resize(code_offset);
      X100IR_RETURN_IF_ERROR(
          file_.ReadAt(sizeof(hdr), code_offset, block_meta_.data()));
      X100IR_RETURN_IF_ERROR(
          decoder_.InitMeta(block_meta_.data(), block_meta_.size(),
                            block_size));
      if (decoder_.n() != value_count_) {
        return IOError("block value count disagrees with column header");
      }
      // The exception-record section stays resident alongside the entry
      // points (it is the block's patch data — small, shared by every
      // window, and needed by any decode that hits an exception).
      exc_section_offset_ = decoder_.ExcSectionOffset();
      exc_section_.resize(8ull * decoder_.n_exceptions());
      if (!exc_section_.empty()) {
        X100IR_RETURN_IF_ERROR(file_.ReadAt(sizeof(hdr) + exc_section_offset_,
                                            exc_section_.size(),
                                            exc_section_.data()));
      }
      break;
    }
    default:
      return IOError(StrFormat("unknown column encoding %u", encoding_));
  }

  file_id_ = file_id;
  bm_ = bm;
  return bm_->RegisterFile(file_id_, &file_);
}

bool ColumnReader::is_compressed() const {
  return encoding_ == ColumnFileHeader::kCompressedBlock;
}

// Classified retry (DESIGN.md §9.4): only Unavailable — the code the fault
// injector uses for transient read errors — is retried, with doubling
// backoff charged to the simulated disk (deterministic, never a real
// sleep). Torn reads (IOError), pool exhaustion, and everything else fail
// the query on the first attempt. Each retry is a fresh fetch: a faulted
// page never entered the pool, so no poisoned frame can be re-served.
Status ColumnReader::PinWithRetry(PinnedPage* pin, uint64_t page_no) {
  const RetryPolicy& retry = bm_->retry_policy();
  double backoff = retry.backoff_seconds;
  for (uint32_t attempt = 0;; ++attempt) {
    Status s = pin->Acquire(bm_, file_id_, page_no);
    if (s.ok() || !IsTransient(s) || attempt >= retry.budget) return s;
    if (bm_->disk() != nullptr) bm_->disk()->ChargeLatency(backoff);
    backoff *= 2.0;
  }
}

Status ColumnReader::FetchBytes(uint64_t offset, uint64_t len,
                                uint8_t* dst) {
  if (offset + len > file_size_) {
    return InvalidArgument("column byte range out of bounds");
  }
  const uint32_t page_bytes = bm_->page_bytes();
  while (len > 0) {
    const uint64_t page_no = offset / page_bytes;
    const uint64_t in_page = offset - page_no * page_bytes;
    PinnedPage pin;
    X100IR_RETURN_IF_ERROR(PinWithRetry(&pin, page_no));
    const uint64_t take = std::min<uint64_t>(len, pin.len() - in_page);
    std::memcpy(dst, pin.data() + in_page, take);
    dst += take;
    offset += take;
    len -= take;
  }
  return OkStatus();
}

uint32_t ColumnReader::num_windows() const {
  return is_compressed() ? decoder_.entry_count() : 0;
}

int32_t ColumnReader::WindowValueBase(uint32_t w) const {
  return decoder_.WindowValueBase(w);
}

bool ColumnReader::WindowIsDelta() const {
  return is_compressed() &&
         decoder_.scheme() == compress::Scheme::kPforDelta;
}

Status ColumnReader::DecodeWindow(uint32_t w, int32_t* dst, uint32_t* wn) {
  if (!is_compressed()) return Internal("DecodeWindow on a raw column");
  if (w >= decoder_.entry_count()) {
    return InvalidArgument("window index out of range");
  }
  // Stack scratch, not a member: DecodeWindow races with itself across
  // queries sharing this reader (§9.1), so per-call state stays per-call.
  alignas(8) uint8_t payload_scratch[4 * compress::kEntryPointStride + 8];
  const compress::WindowExtent ext = decoder_.WindowExtentOf(w);
  if (ext.payload_bytes > sizeof(payload_scratch) - 8) {
    return Internal("window extent exceeds scratch (corrupt metadata)");
  }
  const uint64_t exc_rel = ext.exc_offset - exc_section_offset_;
  if (exc_rel + ext.exc_count * 8ull > exc_section_.size()) {
    return Internal("window exception range outside the resident section");
  }
  X100IR_RETURN_IF_ERROR(FetchBytes(payload_offset_ + ext.payload_offset,
                                    ext.payload_bytes, payload_scratch));
  // Zero the unaligned-load slack past the payload (the decode kernels may
  // read up to 8 bytes beyond the last codeword).
  std::memset(payload_scratch + ext.payload_bytes, 0, 8);
  decoder_.DecodeWindowDetached(w, payload_scratch,
                                exc_section_.data() + exc_rel, dst);
  windows_decoded_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t base =
      static_cast<uint64_t>(w) * compress::kEntryPointStride;
  *wn = static_cast<uint32_t>(
      std::min<uint64_t>(compress::kEntryPointStride, value_count_ - base));
  return OkStatus();
}

Status ColumnReader::Read(uint64_t pos, uint32_t len, int32_t* dst) {
  if (pos + len > value_count_) {
    return InvalidArgument("column read out of range");
  }
  if (len == 0) return OkStatus();
  if (encoding_ == ColumnFileHeader::kRawI32) {
    return FetchBytes(payload_offset_ + pos * 4, 4ull * len,
                      reinterpret_cast<uint8_t*>(dst));
  }
  if (!is_compressed()) {
    return Internal("Read(i32) on a non-integer column");
  }
  constexpr uint32_t kStride = compress::kEntryPointStride;
  int32_t tmp[kStride];
  const uint64_t last = pos + len - 1;
  for (uint32_t w = static_cast<uint32_t>(pos / kStride);
       w <= static_cast<uint32_t>(last / kStride); ++w) {
    uint32_t wn = 0;
    X100IR_RETURN_IF_ERROR(DecodeWindow(w, tmp, &wn));
    const uint64_t base = static_cast<uint64_t>(w) * kStride;
    const uint32_t lo = static_cast<uint32_t>(pos > base ? pos - base : 0);
    const uint32_t hi = static_cast<uint32_t>(
        std::min<uint64_t>(wn, pos + len - base));
    std::memcpy(dst, tmp + lo, static_cast<size_t>(hi - lo) * 4);
    dst += hi - lo;
  }
  return OkStatus();
}

Status ColumnReader::ReadF32(uint64_t pos, uint32_t len, float* dst) {
  if (pos + len > value_count_) {
    return InvalidArgument("column read out of range");
  }
  if (len == 0) return OkStatus();
  if (encoding_ == ColumnFileHeader::kRawF32) {
    return FetchBytes(payload_offset_ + pos * 4, 4ull * len,
                      reinterpret_cast<uint8_t*>(dst));
  }
  if (encoding_ != ColumnFileHeader::kQuantU8) {
    return Internal("ReadF32 on a non-float column");
  }
  // Local staging (not a member buffer): concurrent ReadF32 calls on the
  // shared reader must not stomp each other's bytes.
  std::vector<uint8_t> bytes(len);
  X100IR_RETURN_IF_ERROR(
      FetchBytes(payload_offset_ + pos, len, bytes.data()));
  for (uint32_t i = 0; i < len; ++i) {
    dst[i] = q8_bias_ + q8_scale_ * static_cast<float>(bytes[i]);
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// SortedColumnCursor
// ---------------------------------------------------------------------------

Status SortedColumnCursor::Init(ColumnReader* col, uint64_t begin,
                                uint64_t end) {
  if (col == nullptr) return InvalidArgument("null column reader");
  if (begin > end || end > col->value_count()) {
    return InvalidArgument("cursor range out of bounds");
  }
  col_ = col;
  begin_ = begin;
  end_ = end;
  pos_ = begin;
  compressed_ = col->is_compressed();
  if (compressed_ && !col->WindowIsDelta()) {
    return InvalidArgument(
        "sorted cursor needs window value bases (PFOR-DELTA)");
  }
  win_ = kNoWindow;
  windows_skipped_ = 0;
  return OkStatus();
}

Status SortedColumnCursor::EnsureWindow() {
  const uint32_t w = static_cast<uint32_t>(pos_ / kStride);
  if (w == win_) return OkStatus();
  win_base_ = static_cast<uint64_t>(w) * kStride;
  if (compressed_) {
    X100IR_RETURN_IF_ERROR(col_->DecodeWindow(w, win_vals_, &win_len_));
  } else {
    win_len_ = static_cast<uint32_t>(
        std::min<uint64_t>(kStride, col_->value_count() - win_base_));
    X100IR_RETURN_IF_ERROR(col_->Read(win_base_, win_len_, win_vals_));
  }
  win_ = w;
  return OkStatus();
}

Status SortedColumnCursor::Value(int32_t* out) {
  X100IR_RETURN_IF_ERROR(EnsureWindow());
  *out = win_vals_[pos_ - win_base_];
  return OkStatus();
}

Status SortedColumnCursor::ValueAt(uint64_t p, int32_t* out) {
  if (win_ != kNoWindow && p >= win_base_ && p < win_base_ + win_len_) {
    *out = win_vals_[p - win_base_];
    return OkStatus();
  }
  return col_->Read(p, 1, out);
}

Status SortedColumnCursor::SkipTo(int32_t target, bool* found) {
  return compressed_ ? SkipToCompressed(target, found)
                     : SkipToRaw(target, found);
}

// Same boundary rules as compress::SortedRangeCursor::SkipTo (which the
// tests pin this against): windows with a successor entry point expose
// their max for free; the window containing end - 1 — or the block's final
// window — has no trustworthy successor and is always decoded as a
// candidate rather than skipped.
Status SortedColumnCursor::SkipToCompressed(int32_t target, bool* found) {
  while (!AtEnd()) {
    const uint32_t w_from = static_cast<uint32_t>(pos_ / kStride);
    const uint32_t w_last = static_cast<uint32_t>((end_ - 1) / kStride);
    const uint32_t full_end =
        std::min(static_cast<uint32_t>(end_ / kStride),
                 col_->num_windows() - 1);
    uint32_t lo = w_from;
    uint32_t hi = std::max(w_from, full_end);
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (col_->WindowValueBase(mid + 1) >= target) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    uint32_t cand = lo;
    if (cand >= full_end) {
      if (full_end > w_last) {
        pos_ = end_;
        *found = false;
        return OkStatus();
      }
      cand = w_last;
    }
    if (cand > w_from) {
      windows_skipped_ += cand - w_from - (win_ == w_from ? 1 : 0);
      pos_ = static_cast<uint64_t>(cand) * kStride;
    }
    X100IR_RETURN_IF_ERROR(EnsureWindow());
    const uint64_t cap = std::min<uint64_t>(end_, win_base_ + win_len_);
    uint32_t s = static_cast<uint32_t>(pos_ - win_base_);
    uint32_t e = static_cast<uint32_t>(cap - win_base_);
    while (s < e) {
      const uint32_t m = s + (e - s) / 2;
      if (win_vals_[m] >= target) {
        e = m;
      } else {
        s = m + 1;
      }
    }
    if (win_base_ + s < cap) {
      pos_ = win_base_ + s;
      *found = true;
      return OkStatus();
    }
    pos_ = cap;
  }
  *found = false;
  return OkStatus();
}

// Raw columns carry no skip metadata: gallop forward with point reads
// (each one page-granular through the pool), then binary-search the
// bracketed range.
Status SortedColumnCursor::SkipToRaw(int32_t target, bool* found) {
  if (AtEnd()) {
    *found = false;
    return OkStatus();
  }
  int32_t v = 0;
  X100IR_RETURN_IF_ERROR(ValueAt(pos_, &v));
  if (v >= target) {
    *found = true;
    return OkStatus();
  }
  uint64_t lo = pos_;       // value < target
  uint64_t step = 1;
  uint64_t hi = end_;       // first position with value >= target, or end_
  while (lo + step < end_) {
    X100IR_RETURN_IF_ERROR(ValueAt(lo + step, &v));
    if (v >= target) {
      hi = lo + step;
      break;
    }
    lo += step;
    step *= 2;
  }
  uint64_t s = lo + 1, e = hi;
  while (s < e) {
    const uint64_t m = s + (e - s) / 2;
    X100IR_RETURN_IF_ERROR(ValueAt(m, &v));
    if (v >= target) {
      e = m;
    } else {
      s = m + 1;
    }
  }
  pos_ = s;
  *found = pos_ < end_;
  return OkStatus();
}

}  // namespace x100ir::storage
