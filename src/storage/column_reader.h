// Storage-backed column access: a ColumnReader serves one on-disk .col file
// (ir/index_meta.h layout) through the buffer pool instead of a raw in-RAM
// array — the Table 2 cold runs' data path.
//
//   raw i32/f32   — value ranges map to byte ranges; reads pin the covering
//                   pages and copy out.
//   quantized u8  — same, plus dequantization (value = bias + scale * q)
//                   against the scale/bias stored in the file.
//   compressed    — the codec *metadata* (header + entry points + the
//                   exception-record section, a few % of the block) stays
//                   resident from Open, like a real system's cached block
//                   headers and patch data; window payloads are fetched
//                   through the pool per 128-value window
//                   (compress::WindowExtent) and decoded from a padded
//                   scratch, so a skipped window costs no I/O and an
//                   evicted one is re-fetched with its cost charged to
//                   the simulated disk.
//
// Open validates the header against the *exact* file size before trusting
// anything (torn-write safety: a truncated or grown file fails loudly here
// and the index builder falls back to a rebuild).
//
// Thread contract (DESIGN.md §9.1): after Open, one ColumnReader is shared
// by every concurrent query — Read/ReadF32/DecodeWindow keep all mutable
// state on the caller's stack and go through the thread-safe buffer pool,
// so they may race freely. The only member that moves is the
// windows_decoded_ telemetry counter (relaxed atomic: exact in total,
// approximate as a per-query delta under concurrency — the serial Table 2
// harness still reads exact deltas). SortedColumnCursor, by contrast, is
// per-query state: create one per query, never share it.
//
// Transient page faults (storage/fault_injection.h) are retried here, in
// FetchBytes — the single funnel every byte passes through — with a
// classified retry loop: Unavailable retries up to RetryPolicy::budget
// with doubling backoff charged to the simulated disk; any other failure
// (torn read -> IOError, pool exhaustion) propagates unchanged.
#ifndef X100IR_STORAGE_COLUMN_READER_H_
#define X100IR_STORAGE_COLUMN_READER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "compress/codec.h"
#include "storage/buffer_manager.h"
#include "storage/file.h"

namespace x100ir::storage {

class ColumnReader {
 public:
  ColumnReader() = default;
  ColumnReader(const ColumnReader&) = delete;
  ColumnReader& operator=(const ColumnReader&) = delete;

  // Opens and validates `path`, registers it with `bm` (borrowed, must
  // outlive the reader) under `file_id`. Header/metadata reads happen
  // directly (open-time cost, not charged to the query-time disk model).
  Status Open(const std::string& path, uint32_t file_id, BufferManager* bm);

  uint64_t value_count() const { return value_count_; }
  uint32_t encoding() const { return encoding_; }
  bool is_compressed() const;
  bool is_open() const { return file_.is_open(); }

  // Quantization parameters (kQuantU8 columns only).
  float q8_scale() const { return q8_scale_; }
  float q8_bias() const { return q8_bias_; }

  // dst[0..len) = values [pos, pos + len), fetched through the pool.
  // Read: i32 columns (raw i32 or compressed block);
  // ReadF32: f32 columns (raw f32, or u8 dequantized on the fly).
  Status Read(uint64_t pos, uint32_t len, int32_t* dst);
  Status ReadF32(uint64_t pos, uint32_t len, float* dst);

  // Compressed-column window interface (skip cursors). `dst` must hold
  // kEntryPointStride values; *wn receives the window's length.
  uint32_t num_windows() const;
  int32_t WindowValueBase(uint32_t w) const;
  bool WindowIsDelta() const;  // value bases meaningful (PFOR-DELTA)
  Status DecodeWindow(uint32_t w, int32_t* dst, uint32_t* wn);

  // Cumulative windows decoded (compressed columns) — ExecStats deltas.
  // Relaxed atomic: totals are exact, concurrent per-query deltas are not.
  uint64_t windows_decoded() const {
    return windows_decoded_.load(std::memory_order_relaxed);
  }

  // The pool id this column was opened under — what EvictFile /
  // UnregisterFile take for per-column cold resets and retirement.
  uint32_t file_id() const { return file_id_; }

 private:
  // Copies file bytes [offset, offset + len) out of pinned pages,
  // retrying transient faults per the pool's RetryPolicy.
  Status FetchBytes(uint64_t offset, uint64_t len, uint8_t* dst);

  // One pin attempt with the classified retry loop around it.
  Status PinWithRetry(PinnedPage* pin, uint64_t page_no);

  File file_;
  uint32_t file_id_ = 0;
  BufferManager* bm_ = nullptr;
  uint64_t file_size_ = 0;
  uint64_t value_count_ = 0;
  uint32_t encoding_ = 0;
  uint64_t payload_offset_ = 0;  // first value/block byte
  float q8_scale_ = 0.0f;
  float q8_bias_ = 0.0f;

  // Compressed columns: resident codec metadata + exception section. All
  // of it is immutable after Open; decode scratch lives on the stack of
  // each call so concurrent queries never share a buffer.
  std::vector<uint8_t> block_meta_;
  std::vector<uint8_t> exc_section_;
  uint64_t exc_section_offset_ = 0;  // block-relative
  compress::BlockDecoder decoder_;
  std::atomic<uint64_t> windows_decoded_{0};
};

// Forward cursor over a *sorted* sub-range [begin, end) of an i32 column —
// the storage twin of compress::SortedRangeCursor (same boundary rules,
// pinned against it by tests), reaching values through the pool:
//
//   compressed — SkipTo binary-searches the resident per-window value
//     bases, fetches + decodes only the one candidate window;
//   raw        — no window metadata exists, so SkipTo gallops with point
//     reads (each a page-granular pool access) and settles by binary
//     search; the decoded-window cache still serves dense forward walks.
//
// All accessors return Status: any access may fault a page in, and a pool
// smaller than the pinned working set must surface as an error, not a
// wrong result.
class SortedColumnCursor {
 public:
  // The reader must outlive the cursor; [begin, end) values nondecreasing.
  Status Init(ColumnReader* col, uint64_t begin, uint64_t end);

  bool AtEnd() const { return pos_ >= end_; }
  uint64_t position() const { return pos_; }
  void Next() { ++pos_; }

  // Current value; requires !AtEnd().
  Status Value(int32_t* out);

  // Advances to the first position >= the current one whose value is >=
  // target (nondecreasing targets). *found = false means the cursor
  // reached the end.
  Status SkipTo(int32_t target, bool* found);

  uint64_t windows_skipped() const { return windows_skipped_; }

 private:
  static constexpr uint32_t kStride = compress::kEntryPointStride;
  static constexpr uint32_t kNoWindow = 0xFFFFFFFFu;

  Status EnsureWindow();
  Status ValueAt(uint64_t p, int32_t* out);
  Status SkipToCompressed(int32_t target, bool* found);
  Status SkipToRaw(int32_t target, bool* found);

  ColumnReader* col_ = nullptr;
  uint64_t begin_ = 0, end_ = 0, pos_ = 0;
  bool compressed_ = false;
  uint32_t win_ = kNoWindow;
  uint64_t win_base_ = 0;
  uint32_t win_len_ = 0;
  int32_t win_vals_[kStride];
  uint64_t windows_skipped_ = 0;
};

}  // namespace x100ir::storage

#endif  // X100IR_STORAGE_COLUMN_READER_H_
