// ColumnBM's memory hierarchy seam (DESIGN.md §8): a fixed-budget buffer
// pool of file pages with pin/unpin refcounts and LRU eviction, fed by a
// deterministic simulated-disk cost model.
//
// Pages are fixed-size byte ranges of registered files (the last page of a
// file may be short). A Pin either hits a resident frame or fetches the
// page — charging the simulated disk one positioned read (seek + transfer)
// and evicting unpinned LRU frames until the fetch fits the budget. Pinned
// frames are never evicted; when everything resident is pinned and the
// budget is exhausted, Pin reports ResourceExhausted ("pool smaller than
// the pinned working set") instead of over-allocating, which the ablation
// bench surfaces as its smallest-pool row.
//
// The disk charges *simulated* seconds (it never sleeps): cold-run costs in
// Table 2 are deterministic and runner-independent, while wall-clock keeps
// measuring the real decode work. Stats counters (hits/misses/evictions/
// bytes) are exact and are what the unit battery asserts on.
#ifndef X100IR_STORAGE_BUFFER_MANAGER_H_
#define X100IR_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/file.h"

namespace x100ir::storage {

// Deterministic cold-I/O latency model, applied per positioned read. The
// defaults sketch one commodity disk (2 ms positioning, 200 MB/s
// sequential transfer) — Table 2 reproduces the paper's *ordering*, not
// its hardware.
struct DiskModelOptions {
  double seek_seconds = 2e-3;
  double bytes_per_second = 200e6;
};

class SimulatedDisk {
 public:
  SimulatedDisk() = default;
  explicit SimulatedDisk(const DiskModelOptions& opts) : opts_(opts) {}

  // One positioned read of `bytes`: a seek plus the transfer time.
  void Charge(uint64_t bytes) {
    ++seeks_;
    total_bytes_ += bytes;
    io_seconds_ += opts_.seek_seconds +
                   static_cast<double>(bytes) / opts_.bytes_per_second;
  }

  uint64_t seeks() const { return seeks_; }
  uint64_t total_bytes() const { return total_bytes_; }
  double io_seconds() const { return io_seconds_; }

  void ResetStats() {
    seeks_ = 0;
    total_bytes_ = 0;
    io_seconds_ = 0.0;
  }

 private:
  DiskModelOptions opts_;
  uint64_t seeks_ = 0;
  uint64_t total_bytes_ = 0;
  double io_seconds_ = 0.0;
};

struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;      // pressure evictions only, not EvictAll
  uint64_t bytes_fetched = 0;  // bytes read through the simulated disk

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

// Knobs the Database facade forwards down to the storage layer.
struct StorageOptions {
  uint64_t pool_bytes = 64ull << 20;
  uint32_t page_bytes = 256u << 10;
  DiskModelOptions disk;
};

class BufferManager {
 public:
  // `disk` is borrowed and must outlive the manager.
  BufferManager(uint64_t pool_bytes, SimulatedDisk* disk,
                uint32_t page_bytes = 256u << 10);

  // Registers `file` (borrowed, must outlive the manager) under a
  // caller-chosen id. Re-registering an id drops its resident pages (the
  // backing file changed, e.g. an index rebuild).
  Status RegisterFile(uint32_t file_id, const File* file);

  // Pins page `page_no` of `file_id`; *data/*len describe the frame and
  // stay valid until the matching Unpin. Pins nest (refcount).
  Status Pin(uint32_t file_id, uint64_t page_no, const uint8_t** data,
             uint32_t* len);
  void Unpin(uint32_t file_id, uint64_t page_no);

  // Drops every resident page — the Table 2 cold-run reset. Fails
  // (FailedPrecondition) if any page is still pinned; a cold run with pins
  // outstanding is a caller bug, not a colder cache.
  Status EvictAll();

  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferStats(); }

  uint64_t pool_bytes() const { return pool_bytes_; }
  uint32_t page_bytes() const { return page_bytes_; }
  uint64_t resident_bytes() const { return resident_bytes_; }
  uint64_t resident_pages() const { return frames_.size(); }
  uint64_t pinned_pages() const { return pinned_pages_; }

 private:
  struct Frame {
    std::vector<uint8_t> data;
    uint32_t refcount = 0;
    std::list<uint64_t>::iterator lru_pos;  // valid iff refcount == 0
    bool in_lru = false;
  };

  static uint64_t Key(uint32_t file_id, uint64_t page_no) {
    return (static_cast<uint64_t>(file_id) << 40) | page_no;
  }

  uint64_t pool_bytes_;
  uint32_t page_bytes_;
  SimulatedDisk* disk_;
  std::unordered_map<uint32_t, const File*> files_;
  std::unordered_map<uint64_t, Frame> frames_;
  std::list<uint64_t> lru_;  // front = coldest unpinned page
  uint64_t resident_bytes_ = 0;
  uint64_t pinned_pages_ = 0;
  BufferStats stats_;
};

// RAII pin: unpins on destruction. Movable, not copyable.
class PinnedPage {
 public:
  PinnedPage() = default;
  ~PinnedPage() { Release(); }
  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;
  PinnedPage(PinnedPage&& o) noexcept { *this = std::move(o); }
  PinnedPage& operator=(PinnedPage&& o) noexcept {
    if (this != &o) {
      Release();
      bm_ = o.bm_;
      file_id_ = o.file_id_;
      page_no_ = o.page_no_;
      data_ = o.data_;
      len_ = o.len_;
      o.bm_ = nullptr;
    }
    return *this;
  }

  Status Acquire(BufferManager* bm, uint32_t file_id, uint64_t page_no) {
    Release();
    X100IR_RETURN_IF_ERROR(bm->Pin(file_id, page_no, &data_, &len_));
    bm_ = bm;
    file_id_ = file_id;
    page_no_ = page_no;
    return OkStatus();
  }

  void Release() {
    if (bm_ != nullptr) {
      bm_->Unpin(file_id_, page_no_);
      bm_ = nullptr;
    }
  }

  bool held() const { return bm_ != nullptr; }
  const uint8_t* data() const { return data_; }
  uint32_t len() const { return len_; }

 private:
  BufferManager* bm_ = nullptr;
  uint32_t file_id_ = 0;
  uint64_t page_no_ = 0;
  const uint8_t* data_ = nullptr;
  uint32_t len_ = 0;
};

}  // namespace x100ir::storage

#endif  // X100IR_STORAGE_BUFFER_MANAGER_H_
