// ColumnBM's memory hierarchy seam (DESIGN.md §8, threading in §9): a
// fixed-budget buffer pool of file pages with pin/unpin refcounts and LRU
// eviction, fed by a deterministic simulated-disk cost model.
//
// Pages are fixed-size byte ranges of registered files (the last page of a
// file may be short). A Pin either hits a resident frame or fetches the
// page — charging the simulated disk one positioned read (seek + transfer)
// and evicting unpinned LRU frames until the fetch fits the budget. Pinned
// frames are never evicted; when everything resident is pinned and the
// budget is exhausted, Pin reports ResourceExhausted ("pool smaller than
// the pinned working set") instead of over-allocating, which the ablation
// bench surfaces as its smallest-pool row.
//
// Concurrency (DESIGN.md §9.2): the pool is lock-striped into `shards`
// partitions, each with its own mutex, frame map, LRU list, byte budget
// (pool_bytes / shards) and stats — concurrent queries pinning different
// pages contend only when they hash to the same shard. With shards == 1
// (the default, and what the deterministic Table 2 runs use) behavior is
// byte-identical to the pre-striping pool, just mutex-protected. Frame
// data pointers stay valid for exactly the pin's lifetime: frames live in
// node-based maps, and eviction skips pinned frames, so no lock is held
// while a caller reads pinned bytes.
//
// The disk charges *simulated* seconds (it never sleeps): cold-run costs in
// Table 2 are deterministic and runner-independent, while wall-clock keeps
// measuring the real decode work. Stats counters (hits/misses/evictions/
// bytes) are exact per shard; stats() aggregates a snapshot across shards
// (consistent per shard, not across them — a counter read never blocks the
// read path for long).
#ifndef X100IR_STORAGE_BUFFER_MANAGER_H_
#define X100IR_STORAGE_BUFFER_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/fault_injection.h"
#include "storage/file.h"
#include "storage/wal.h"

namespace x100ir::storage {

// Deterministic cold-I/O latency model, applied per positioned read. The
// defaults sketch one commodity disk (2 ms positioning, 200 MB/s
// sequential transfer) — Table 2 reproduces the paper's *ordering*, not
// its hardware.
struct DiskModelOptions {
  double seek_seconds = 2e-3;
  double bytes_per_second = 200e6;
};

// Thread-safe: counters are atomics (the io-seconds accumulator is a CAS
// loop), so concurrent page fetches from different pool shards never
// serialize on the disk model.
class SimulatedDisk {
 public:
  SimulatedDisk() = default;
  explicit SimulatedDisk(const DiskModelOptions& opts) : opts_(opts) {}
  SimulatedDisk(SimulatedDisk&& o) noexcept { *this = std::move(o); }
  SimulatedDisk& operator=(SimulatedDisk&& o) noexcept {
    if (this != &o) {
      opts_ = o.opts_;
      seeks_.store(o.seeks(), std::memory_order_relaxed);
      total_bytes_.store(o.total_bytes(), std::memory_order_relaxed);
      io_seconds_.store(o.io_seconds(), std::memory_order_relaxed);
    }
    return *this;
  }

  // One positioned read of `bytes`: a seek plus the transfer time.
  void Charge(uint64_t bytes) {
    seeks_.fetch_add(1, std::memory_order_relaxed);
    total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    AddSeconds(opts_.seek_seconds +
               static_cast<double>(bytes) / opts_.bytes_per_second);
  }

  // Pure latency with no positioned read: fault-injected spikes and the
  // retry loop's backoff — simulated, deterministic, never a sleep.
  void ChargeLatency(double seconds) { AddSeconds(seconds); }

  uint64_t seeks() const { return seeks_.load(std::memory_order_relaxed); }
  uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  double io_seconds() const {
    return io_seconds_.load(std::memory_order_relaxed);
  }

  void ResetStats() {
    seeks_.store(0, std::memory_order_relaxed);
    total_bytes_.store(0, std::memory_order_relaxed);
    io_seconds_.store(0.0, std::memory_order_relaxed);
  }

 private:
  void AddSeconds(double s) {
    double cur = io_seconds_.load(std::memory_order_relaxed);
    while (!io_seconds_.compare_exchange_weak(cur, cur + s,
                                              std::memory_order_relaxed)) {
    }
  }

  DiskModelOptions opts_;
  std::atomic<uint64_t> seeks_{0};
  std::atomic<uint64_t> total_bytes_{0};
  std::atomic<double> io_seconds_{0.0};
};

struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;      // pressure evictions only, not EvictAll
  uint64_t bytes_fetched = 0;  // bytes read through the simulated disk
  uint64_t faults_transient = 0;  // injected transient errors surfaced
  uint64_t faults_torn = 0;       // injected torn reads surfaced

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

// Classified-retry policy for transient page faults (common/status.h
// IsTransient): ColumnReader retries a failed pin up to `budget` extra
// attempts, charging `backoff_seconds` (doubling per attempt) of simulated
// latency to the disk model between attempts.
struct RetryPolicy {
  uint32_t budget = 3;
  double backoff_seconds = 1e-3;
};

// Knobs the Database facade forwards down to the storage layer.
struct StorageOptions {
  uint64_t pool_bytes = 64ull << 20;
  uint32_t page_bytes = 256u << 10;
  // Lock stripes. 1 (default) reproduces the single-partition LRU exactly
  // — what the deterministic Table 2 counters pin; the concurrent query
  // service opens its pool with ~2x worker threads.
  uint32_t shards = 1;
  RetryPolicy retry;
  DiskModelOptions disk;
  // Delta-tier durability (storage/wal.h). Only meaningful for on-disk
  // databases: in-memory ones have nowhere to log.
  WalOptions wal;
};

class BufferManager {
 public:
  // `disk` is borrowed and must outlive the manager.
  BufferManager(uint64_t pool_bytes, SimulatedDisk* disk,
                uint32_t page_bytes = 256u << 10, uint32_t shards = 1);

  // Registers `file` (borrowed, must outlive the manager) under a
  // caller-chosen id. Re-registering an id drops its resident pages (the
  // backing file changed, e.g. an index rebuild); fails FailedPrecondition
  // if any of them is pinned — by this or any other thread.
  Status RegisterFile(uint32_t file_id, const File* file);

  // Pins page `page_no` of `file_id`; *data/*len describe the frame and
  // stay valid until the matching Unpin. Pins nest (refcount). Thread-safe;
  // an injected fault surfaces as Unavailable (transient) or IOError
  // (torn, permanent) and the frame never enters the pool.
  Status Pin(uint32_t file_id, uint64_t page_no, const uint8_t** data,
             uint32_t* len);
  void Unpin(uint32_t file_id, uint64_t page_no);

  // Drops every resident page — the Table 2 cold-run reset. Locks all
  // shards (ascending, per the §9.2 lock order), and fails
  // (FailedPrecondition) if any page is still pinned by *any* thread: a
  // cold run with pins outstanding is a caller bug, not a colder cache.
  Status EvictAll();

  // Drops exactly `file_id`'s resident pages (segment retirement, per-run
  // cold resets) and leaves every other file's pages hot. Refuses
  // (FailedPrecondition) while any page of *that file* is pinned; other
  // files' pins don't block it. InvalidArgument for an unregistered id.
  // Like EvictAll, the drops are not counted as pressure `evictions`.
  Status EvictFile(uint32_t file_id);

  // EvictFile plus removal of the id→File binding — the pool holds no
  // trace of the file afterwards. A retired segment calls this before
  // closing its files so the pool never dangles on a dead File.
  Status UnregisterFile(uint32_t file_id);

  // Aggregated snapshot (per-shard-consistent). By value: there is no
  // single stats object once the pool is striped.
  BufferStats stats() const;
  void ResetStats();

  // Borrowed fault plan; pass nullptr to disarm. Only consulted on page
  // fetches, so attach/detach between queries is race-free in practice —
  // the pointer itself is atomic for the soak's mid-run disarm.
  void set_fault_plan(FaultPlan* plan) {
    fault_plan_.store(plan, std::memory_order_release);
  }
  FaultPlan* fault_plan() const {
    return fault_plan_.load(std::memory_order_acquire);
  }

  void set_retry_policy(const RetryPolicy& retry) { retry_ = retry; }
  const RetryPolicy& retry_policy() const { return retry_; }
  SimulatedDisk* disk() const { return disk_; }

  uint64_t pool_bytes() const { return pool_bytes_; }
  uint32_t page_bytes() const { return page_bytes_; }
  uint32_t shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint64_t resident_bytes() const;
  uint64_t resident_pages() const;
  uint64_t pinned_pages() const;
  // Resident pages belonging to one file — retirement tests pin down that
  // eviction dropped exactly the dead file's pages. O(resident) scan.
  uint64_t ResidentPagesOfFile(uint32_t file_id) const;

 private:
  struct Frame {
    std::vector<uint8_t> data;
    uint32_t refcount = 0;
    std::list<uint64_t>::iterator lru_pos;  // valid iff refcount == 0
    bool in_lru = false;
  };

  // One lock stripe: a self-contained pool partition.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Frame> frames;
    std::list<uint64_t> lru;  // front = coldest unpinned page
    uint64_t budget = 0;
    uint64_t resident_bytes = 0;
    uint64_t pinned_pages = 0;
    BufferStats stats;
  };

  static uint64_t Key(uint32_t file_id, uint64_t page_no) {
    return (static_cast<uint64_t>(file_id) << 40) | page_no;
  }

  // Drops `file_id`'s frames across all shards, or refuses if any is
  // pinned. Caller must hold files_mu_ and every shard mutex (ascending).
  Status DropFilePagesLocked(uint32_t file_id);

  Shard& ShardOf(uint64_t key) {
    // SplitMix64 finalizer: adjacent pages of one file spread across
    // shards, so one hot column doesn't serialize on one mutex.
    uint64_t x = key;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return *shards_[(x ^ (x >> 31)) % shards_.size()];
  }

  uint64_t pool_bytes_;
  uint32_t page_bytes_;
  SimulatedDisk* disk_;
  RetryPolicy retry_;
  std::atomic<FaultPlan*> fault_plan_{nullptr};

  // Lock order (§9.2): files_mu_ before any shard mutex; shard mutexes
  // only ever held together in ascending index order (EvictAll,
  // RegisterFile); nothing below storage/ is called with a lock held.
  mutable std::mutex files_mu_;
  std::unordered_map<uint32_t, const File*> files_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// RAII pin: unpins on destruction. Movable, not copyable.
class PinnedPage {
 public:
  PinnedPage() = default;
  ~PinnedPage() { Release(); }
  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;
  PinnedPage(PinnedPage&& o) noexcept { *this = std::move(o); }
  PinnedPage& operator=(PinnedPage&& o) noexcept {
    if (this != &o) {
      Release();
      bm_ = o.bm_;
      file_id_ = o.file_id_;
      page_no_ = o.page_no_;
      data_ = o.data_;
      len_ = o.len_;
      o.bm_ = nullptr;
    }
    return *this;
  }

  Status Acquire(BufferManager* bm, uint32_t file_id, uint64_t page_no) {
    Release();
    X100IR_RETURN_IF_ERROR(bm->Pin(file_id, page_no, &data_, &len_));
    bm_ = bm;
    file_id_ = file_id;
    page_no_ = page_no;
    return OkStatus();
  }

  void Release() {
    if (bm_ != nullptr) {
      bm_->Unpin(file_id_, page_no_);
      bm_ = nullptr;
    }
  }

  bool held() const { return bm_ != nullptr; }
  const uint8_t* data() const { return data_; }
  uint32_t len() const { return len_; }

 private:
  BufferManager* bm_ = nullptr;
  uint32_t file_id_ = 0;
  uint64_t page_no_ = 0;
  const uint8_t* data_ = nullptr;
  uint32_t len_ = 0;
};

}  // namespace x100ir::storage

#endif  // X100IR_STORAGE_BUFFER_MANAGER_H_
