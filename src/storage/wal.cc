#include "storage/wal.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <thread>

#include "storage/crash_point.h"

namespace x100ir::storage {

namespace fs = std::filesystem;

uint32_t Crc32(const void* data, size_t len) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

namespace {

constexpr const char* kWalPrefix = "wal_";
constexpr const char* kWalSuffix = ".log";
// Replay refuses frames claiming more payload than any record we write
// (the largest Add is nterms bounded by vocab size; 64 MiB is far past it).
constexpr uint32_t kMaxPayload = 64u << 20;

std::string WalFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%06llu%s", kWalPrefix,
                static_cast<unsigned long long>(seq), kWalSuffix);
  return buf;
}

// Parses "wal_<seq>.log"; false for anything else.
bool ParseWalFileName(const std::string& name, uint64_t* seq) {
  const size_t prefix = std::strlen(kWalPrefix);
  const size_t suffix = std::strlen(kWalSuffix);
  if (name.size() <= prefix + suffix) return false;
  if (name.compare(0, prefix, kWalPrefix) != 0) return false;
  if (name.compare(name.size() - suffix, suffix, kWalSuffix) != 0) return false;
  uint64_t v = 0;
  for (size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *seq = v;
  return true;
}

void AppendBytes(std::vector<uint8_t>* out, const void* p, size_t n) {
  const uint8_t* b = static_cast<const uint8_t*>(p);
  out->insert(out->end(), b, b + n);
}

template <typename T>
void AppendScalar(std::vector<uint8_t>* out, T v) {
  AppendBytes(out, &v, sizeof(v));
}

template <typename T>
bool ReadScalar(const uint8_t** p, const uint8_t* end, T* v) {
  if (static_cast<size_t>(end - *p) < sizeof(T)) return false;
  std::memcpy(v, *p, sizeof(T));
  *p += sizeof(T);
  return true;
}

}  // namespace

std::string Wal::FilePath(uint64_t seq) const {
  return dir_ + "/" + WalFileName(seq);
}

Status Wal::Open(const std::string& dir, uint64_t corpus_fingerprint,
                 const WalOptions& options) {
  std::lock_guard<std::mutex> lock(append_mu_);
  if (f_ != nullptr) return FailedPrecondition("wal already open");
  dir_ = dir;
  fingerprint_ = corpus_fingerprint;
  options_ = options;
  file_seqs_.clear();

  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    uint64_t seq = 0;
    if (!ParseWalFileName(entry.path().filename().string(), &seq)) continue;
    file_seqs_.push_back(seq);
  }
  if (ec) return IOError("wal: cannot scan " + dir_ + ": " + ec.message());
  std::sort(file_seqs_.begin(), file_seqs_.end());

  // A file whose header doesn't match this corpus (or can't be read at
  // all) belongs to a previous life of the directory: drop it and
  // everything after it — the valid prefix ends where continuity breaks.
  size_t keep = 0;
  for (; keep < file_seqs_.size(); ++keep) {
    std::FILE* f = std::fopen(FilePath(file_seqs_[keep]).c_str(), "rb");
    if (f == nullptr) break;
    WalFileHeader hdr;
    const bool ok = std::fread(&hdr, sizeof(hdr), 1, f) == 1 &&
                    hdr.magic == WalFileHeader::kMagic &&
                    hdr.version == WalFileHeader::kVersion &&
                    hdr.seq == file_seqs_[keep] &&
                    hdr.corpus_fingerprint == fingerprint_;
    std::fclose(f);
    if (!ok) break;
  }
  for (size_t i = keep; i < file_seqs_.size(); ++i) {
    fs::remove(FilePath(file_seqs_[i]), ec);
  }
  file_seqs_.resize(keep);

  if (file_seqs_.empty()) {
    seq_ = 0;
    return OpenFileForAppend(seq_, /*create=*/true);
  }
  seq_ = file_seqs_.back();
  file_seqs_.pop_back();  // OpenFileForAppend re-adds the live seq
  return OpenFileForAppend(seq_, /*create=*/false);
}

Status Wal::OpenFileForAppend(uint64_t seq, bool create) {
  // Caller holds append_mu_.
  if (CrashedNow()) return IOError("simulated crash");
  const std::string path = FilePath(seq);
  std::FILE* f = std::fopen(path.c_str(), create ? "wb" : "ab");
  if (f == nullptr) return IOError("wal: cannot open " + path);
  if (create) {
    WalFileHeader hdr;
    hdr.seq = seq;
    hdr.corpus_fingerprint = fingerprint_;
    if (std::fwrite(&hdr, sizeof(hdr), 1, f) != 1 || std::fflush(f) != 0) {
      std::fclose(f);
      return IOError("wal: cannot write header to " + path);
    }
  }
  f_ = f;
  fd_ = fileno(f);
  file_seqs_.push_back(seq);
  return OkStatus();
}

Status Wal::Replay(const std::function<Status(const WalRecordView&)>& fn) {
  std::unique_lock<std::mutex> lock(append_mu_);
  if (f_ == nullptr) return FailedPrecondition("wal not open");
  // No appends can have happened yet (Replay runs during Open, before the
  // manager publishes), so closing the live handle for re-reading is safe.
  std::fclose(f_);
  f_ = nullptr;
  fd_ = -1;

  uint64_t records = 0;
  uint64_t truncated = 0;
  Status result = OkStatus();
  size_t stop_file = file_seqs_.size();  // first file index to discard fully

  for (size_t i = 0; i < file_seqs_.size() && result.ok(); ++i) {
    const std::string path = FilePath(file_seqs_[i]);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return IOError("wal: cannot reopen " + path);
    std::fseek(f, 0, SEEK_END);
    const long file_size = std::ftell(f);
    std::fseek(f, static_cast<long>(sizeof(WalFileHeader)), SEEK_SET);

    long valid_end = static_cast<long>(sizeof(WalFileHeader));
    std::vector<uint8_t> buf;
    bool torn = false;
    while (true) {
      WalRecordHeader hdr;
      if (std::fread(&hdr, sizeof(hdr), 1, f) != 1) {
        torn = valid_end != file_size;  // trailing partial header
        break;
      }
      if (hdr.len > kMaxPayload) {
        torn = true;
        break;
      }
      buf.resize(sizeof(hdr.len) + sizeof(hdr.type) + hdr.len);
      std::memcpy(buf.data(), &hdr.len, sizeof(hdr.len));
      std::memcpy(buf.data() + sizeof(hdr.len), &hdr.type, sizeof(hdr.type));
      if (hdr.len > 0 &&
          std::fread(buf.data() + 8, 1, hdr.len, f) != hdr.len) {
        torn = true;  // trailing partial payload
        break;
      }
      if (Crc32(buf.data(), buf.size()) != hdr.crc) {
        torn = true;
        break;
      }
      WalRecordView rec{static_cast<WalRecordType>(hdr.type), buf.data() + 8,
                        hdr.len};
      Status s = fn(rec);
      if (s.code() == StatusCode::kOutOfRange) {
        // The caller judged the log inconsistent from here: cut the tail
        // as if it were torn, keep what already applied.
        torn = true;
        break;
      }
      if (!s.ok()) {
        result = s;
        break;
      }
      ++records;
      valid_end += static_cast<long>(sizeof(hdr) + hdr.len);
    }
    std::fclose(f);
    if (!result.ok()) break;
    if (torn) {
      truncated += static_cast<uint64_t>(file_size - valid_end);
      std::error_code ec;
      fs::resize_file(path, static_cast<uintmax_t>(valid_end), ec);
      if (ec) {
        return IOError("wal: cannot truncate torn tail of " + path + ": " +
                       ec.message());
      }
      stop_file = i + 1;
      break;
    }
  }
  if (!result.ok()) return result;

  // Drop every file after the torn one — records beyond a torn tail were
  // never acknowledged and must not resurface on the next recovery.
  for (size_t i = stop_file; i < file_seqs_.size(); ++i) {
    std::error_code ec;
    const uintmax_t sz = fs::file_size(FilePath(file_seqs_[i]), ec);
    if (!ec) truncated += static_cast<uint64_t>(sz);
    fs::remove(FilePath(file_seqs_[i]), ec);
  }
  if (stop_file < file_seqs_.size()) {
    seq_ = file_seqs_[stop_file - 1];
    file_seqs_.resize(stop_file);
  }

  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.replayed_records = records;
    stats_.truncated_bytes = truncated;
  }

  // Reopen the live file for appends; its size is the LSN origin.
  file_seqs_.pop_back();
  X100IR_RETURN_IF_ERROR(OpenFileForAppend(seq_, /*create=*/false));
  std::error_code size_ec;
  const uintmax_t live_size = fs::file_size(FilePath(seq_), size_ec);
  if (size_ec) {
    return IOError("wal: cannot stat " + FilePath(seq_) + ": " +
                   size_ec.message());
  }
  next_lsn_ = static_cast<uint64_t>(live_size);
  next_record_ = records;
  {
    std::lock_guard<std::mutex> slock(sync_mu_);
    durable_lsn_ = next_lsn_;
    durable_record_ = records;
  }
  return OkStatus();
}

Status Wal::Append(WalRecordType type, const void* payload, uint32_t len,
                   uint64_t* lsn) {
  std::lock_guard<std::mutex> lock(append_mu_);
  if (f_ == nullptr) return FailedPrecondition("wal not open");
  if (CrashedNow()) return IOError("simulated crash");

  WalRecordHeader hdr;
  hdr.len = len;
  hdr.type = static_cast<uint32_t>(type);
  std::vector<uint8_t> crc_buf(8 + len);
  std::memcpy(crc_buf.data(), &hdr.len, 4);
  std::memcpy(crc_buf.data() + 4, &hdr.type, 4);
  if (len > 0) std::memcpy(crc_buf.data() + 8, payload, len);
  hdr.crc = Crc32(crc_buf.data(), crc_buf.size());

  if (std::fwrite(&hdr, sizeof(hdr), 1, f_) != 1 ||
      (len > 0 && std::fwrite(payload, 1, len, f_) != len) ||
      std::fflush(f_) != 0) {
    return IOError("wal: append failed on " + FilePath(seq_));
  }
  next_lsn_ += sizeof(hdr) + len;
  ++next_record_;
  if (lsn != nullptr) *lsn = next_lsn_;
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.appends;
  }
  if (CrashReached(CrashSite::kWalAfterAppend)) {
    // The bytes are in the file (they survive the simulated power cut),
    // but the caller must treat the write as failed: never acknowledged.
    return IOError("simulated crash");
  }
  return OkStatus();
}

Status Wal::FsyncLocked() {
  // Caller holds append_mu_. Bypasses group commit: used by Rotate and by
  // kFsyncPerWrite mode.
  if (std::fflush(f_) != 0 || fsync(fd_) != 0) {
    return IOError("wal: fsync failed on " + FilePath(seq_));
  }
  return OkStatus();
}

Status Wal::Sync(uint64_t lsn) {
  if (options_.mode == WalSyncMode::kFsyncPerWrite) {
    uint64_t covered_lsn = 0;
    uint64_t covered_record = 0;
    {
      std::lock_guard<std::mutex> lock(append_mu_);
      if (f_ == nullptr) return FailedPrecondition("wal not open");
      if (CrashedNow()) return IOError("simulated crash");
      X100IR_RETURN_IF_ERROR(FsyncLocked());
      covered_lsn = next_lsn_;
      covered_record = next_record_;
    }
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.fsyncs;
      ++stats_.batches;
      ++stats_.batch_records_sum;
      stats_.batch_records_max = std::max<uint64_t>(
          stats_.batch_records_max, 1);
    }
    {
      std::lock_guard<std::mutex> slock(sync_mu_);
      durable_lsn_ = std::max(durable_lsn_, covered_lsn);
      durable_record_ = std::max(durable_record_, covered_record);
    }
    if (CrashReached(CrashSite::kWalAfterFsync)) {
      return IOError("simulated crash");
    }
    return OkStatus();
  }

  // Group commit. One waiter at a time is the flush leader; everyone whose
  // LSN an in-flight flush will cover just waits for it.
  sync_pending_.fetch_add(1, std::memory_order_relaxed);
  struct PendingGuard {
    std::atomic<uint32_t>* p;
    ~PendingGuard() { p->fetch_sub(1, std::memory_order_relaxed); }
  } pending_guard{&sync_pending_};
  std::unique_lock<std::mutex> lock(sync_mu_);
  bool waited = false;
  while (durable_lsn_ < lsn) {
    if (!sticky_error_.ok()) return sticky_error_;
    if (CrashedNow()) return IOError("simulated crash");
    if (flush_in_flight_) {
      waited = true;
      sync_cv_.wait(lock);
      continue;
    }
    // Become the leader: flush everything appended so far.
    flush_in_flight_ = true;
    lock.unlock();

    // The batching window (commit-siblings heuristic): if other Sync calls
    // are in flight, give their appends — and any appenders right behind
    // them — a moment to land before the flush target is captured, so one
    // fsync covers them all. A lone writer sees sync_pending_ == 1 and
    // proceeds immediately: serial latency is never taxed for a batch that
    // cannot form.
    if (options_.group_window_us > 0 &&
        sync_pending_.load(std::memory_order_relaxed) > 1) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.group_window_us));
    }

    uint64_t target_lsn = 0;
    uint64_t target_record = 0;
    Status s;
    {
      std::lock_guard<std::mutex> alock(append_mu_);
      if (f_ == nullptr) {
        s = FailedPrecondition("wal not open");
      } else if (CrashedNow()) {
        s = IOError("simulated crash");
      } else {
        target_lsn = next_lsn_;
        target_record = next_record_;
        if (std::fflush(f_) != 0) {
          s = IOError("wal: fflush failed on " + FilePath(seq_));
        }
      }
    }
    if (s.ok()) {
      // The actual fsync runs with append_mu_ released: concurrent
      // appenders keep filling the next batch while this one hardens.
      int fd;
      {
        std::lock_guard<std::mutex> alock(append_mu_);
        fd = fd_;
      }
      if (fsync(fd) != 0) s = IOError("wal: fsync failed");
    }

    lock.lock();
    flush_in_flight_ = false;
    if (s.ok()) {
      const uint64_t batch = target_record - durable_record_;
      durable_lsn_ = std::max(durable_lsn_, target_lsn);
      durable_record_ = std::max(durable_record_, target_record);
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.fsyncs;
      if (batch > 0) {
        ++stats_.batches;
        stats_.batch_records_sum += batch;
        stats_.batch_records_max = std::max(stats_.batch_records_max, batch);
      }
    } else {
      sticky_error_ = s;
    }
    sync_cv_.notify_all();
    if (!s.ok()) return s;
    if (CrashReached(CrashSite::kWalAfterFsync)) {
      // Durable but unacknowledged: the record is on disk, the caller is
      // told the write failed. Recovery may legitimately surface it.
      sync_cv_.notify_all();
      return IOError("simulated crash");
    }
  }
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    if (waited) ++stats_.sync_waits;
  }
  if (CrashedNow()) return IOError("simulated crash");
  return OkStatus();
}

Status Wal::Rotate(uint64_t* sealed_seq) {
  // Drain any in-flight group-commit flush first so the fd we're about to
  // close isn't being fsynced concurrently.
  {
    std::unique_lock<std::mutex> lock(sync_mu_);
    sync_cv_.wait(lock, [this] { return !flush_in_flight_; });
    flush_in_flight_ = true;  // block new leaders while we swap files
  }
  Status s;
  uint64_t old_seq = 0;
  uint64_t covered_lsn = 0;
  uint64_t covered_record = 0;
  {
    std::lock_guard<std::mutex> lock(append_mu_);
    if (f_ == nullptr) {
      s = FailedPrecondition("wal not open");
    } else if (CrashedNow()) {
      s = IOError("simulated crash");
    } else {
      s = FsyncLocked();
      if (s.ok() && CrashReached(CrashSite::kWalAfterFsync)) {
        s = IOError("simulated crash");
      }
      if (s.ok()) {
        std::lock_guard<std::mutex> slock(stats_mu_);
        ++stats_.fsyncs;
      }
      if (s.ok()) {
        covered_lsn = next_lsn_;
        covered_record = next_record_;
        old_seq = seq_;
        std::fclose(f_);
        f_ = nullptr;
        fd_ = -1;
        seq_ = old_seq + 1;
        s = OpenFileForAppend(seq_, /*create=*/true);
        if (s.ok() && CrashReached(CrashSite::kWalAfterRotate)) {
          s = IOError("simulated crash");
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
    flush_in_flight_ = false;
    if (s.ok()) {
      // Everything in the closed file is now durable.
      durable_lsn_ = std::max(durable_lsn_, covered_lsn);
      durable_record_ = std::max(durable_record_, covered_record);
    } else if (sticky_error_.ok() && CrashedNow()) {
      sticky_error_ = IOError("simulated crash");
    }
  }
  sync_cv_.notify_all();
  if (s.ok() && sealed_seq != nullptr) *sealed_seq = old_seq;
  return s;
}

Status Wal::DropFilesUpTo(uint64_t upto_seq) {
  std::lock_guard<std::mutex> lock(append_mu_);
  if (CrashedNow()) return IOError("simulated crash");
  std::vector<uint64_t> kept;
  Status s = OkStatus();
  for (uint64_t seq : file_seqs_) {
    if (!s.ok() || seq > upto_seq || seq == seq_) {
      kept.push_back(seq);
      continue;
    }
    if (CrashReached(CrashSite::kWalBeforeDropFile)) {
      s = IOError("simulated crash");
      kept.push_back(seq);
      continue;
    }
    std::error_code ec;
    fs::remove(FilePath(seq), ec);
  }
  file_seqs_ = std::move(kept);
  return s;
}

void Wal::Close() {
  std::lock_guard<std::mutex> lock(append_mu_);
  if (f_ == nullptr) return;
  // A crashed process writes nothing more — not even the close-time
  // flush; stdio may still flush buffered bytes in fclose, so everything
  // is fflushed at append time and fclose has nothing buffered.
  std::fclose(f_);
  f_ = nullptr;
  fd_ = -1;
}

void Wal::RemoveFiles(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t seq = 0;
    if (!ParseWalFileName(entry.path().filename().string(), &seq)) continue;
    std::error_code rec;
    fs::remove(entry.path(), rec);
  }
}

WalStats Wal::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

uint64_t Wal::current_seq() const {
  std::lock_guard<std::mutex> lock(append_mu_);
  return seq_;
}

// --- Payload encode/decode -------------------------------------------------

std::vector<uint8_t> Wal::EncodeAdd(
    int32_t docid, const std::vector<std::pair<uint32_t, int32_t>>& terms) {
  std::vector<uint8_t> out;
  out.reserve(8 + terms.size() * 8);
  AppendScalar(&out, docid);
  AppendScalar(&out, static_cast<uint32_t>(terms.size()));
  for (const auto& [term, tf] : terms) {
    AppendScalar(&out, term);
    AppendScalar(&out, tf);
  }
  return out;
}

bool Wal::DecodeAdd(const WalRecordView& rec, AddPayload* out) {
  const uint8_t* p = rec.payload;
  const uint8_t* end = rec.payload + rec.len;
  uint32_t nterms = 0;
  if (!ReadScalar(&p, end, &out->docid) || !ReadScalar(&p, end, &nterms)) {
    return false;
  }
  if (static_cast<size_t>(end - p) != static_cast<size_t>(nterms) * 8) {
    return false;
  }
  out->terms.clear();
  out->terms.reserve(nterms);
  for (uint32_t i = 0; i < nterms; ++i) {
    uint32_t term;
    int32_t tf;
    ReadScalar(&p, end, &term);
    ReadScalar(&p, end, &tf);
    out->terms.emplace_back(term, tf);
  }
  return true;
}

std::vector<uint8_t> Wal::EncodeDocid(int32_t docid) {
  std::vector<uint8_t> out;
  AppendScalar(&out, docid);
  return out;
}

bool Wal::DecodeDocid(const WalRecordView& rec, int32_t* docid) {
  const uint8_t* p = rec.payload;
  return ReadScalar(&p, rec.payload + rec.len, docid) &&
         p == rec.payload + rec.len;
}

std::vector<uint8_t> Wal::EncodeMergeCommitted(int32_t cutoff,
                                               uint64_t epoch) {
  std::vector<uint8_t> out;
  AppendScalar(&out, cutoff);
  AppendScalar(&out, epoch);
  return out;
}

bool Wal::DecodeMergeCommitted(const WalRecordView& rec, int32_t* cutoff,
                               uint64_t* epoch) {
  const uint8_t* p = rec.payload;
  const uint8_t* end = rec.payload + rec.len;
  return ReadScalar(&p, end, cutoff) && ReadScalar(&p, end, epoch) &&
         p == end;
}

}  // namespace x100ir::storage
