// Seeded, deterministic disk-fault injection (DESIGN.md §9.4). A FaultPlan
// is attached to a BufferManager and consulted once per page *fetch
// attempt* (pool hits never fault — the data is already resident, like a
// real page cache). Each attempt draws from a counter-indexed hash of
// (seed, file, page, attempt ordinal), so:
//
//   - a given single-threaded call sequence faults identically on every
//     run (the unit battery replays exact fault sites);
//   - a retry of the same page is a *fresh* draw (transient faults clear
//     with probability 1 - rate, which is what makes retry-with-backoff
//     converge);
//   - under concurrency the ordinal interleaving varies, but fault sites
//     remain per-attempt independent — the soak's invariant is outcome
//     classification + OK bit-identity, not which queries got hit.
//
// Fault classification (see common/status.h IsTransient):
//   transient read error -> Unavailable   (retryable: ColumnReader retries
//                                          with simulated backoff)
//   torn short-read      -> IOError       (permanent: the page never
//                                          enters the pool, the query
//                                          fails cleanly)
//   latency spike        -> no error      (extra seconds charged to the
//                                          simulated disk; surfaces as a
//                                          slow query the deadline layer
//                                          must catch)
#ifndef X100IR_STORAGE_FAULT_INJECTION_H_
#define X100IR_STORAGE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>

namespace x100ir::storage {

enum class FaultKind : uint8_t {
  kNone = 0,
  kTransientError,  // fails this attempt; a retry draws fresh
  kTornRead,        // permanent for the query: short page, not poolable
  kLatencySpike,    // succeeds, but charges extra simulated latency
};

struct FaultPlanOptions {
  uint64_t seed = 1;
  // Independent per-attempt probabilities; their sum must be <= 1.
  double transient_rate = 0.0;
  double torn_rate = 0.0;
  double latency_spike_rate = 0.0;
  double latency_spike_seconds = 20e-3;  // one "hiccup" = 10 cold seeks
};

class FaultPlan {
 public:
  explicit FaultPlan(const FaultPlanOptions& opts) : opts_(opts) {}
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // One draw per fetch attempt. Thread-safe; the ordinal is a global
  // atomic so every attempt (including retries) is independent.
  FaultKind Decide(uint32_t file_id, uint64_t page_no) {
    const uint64_t ordinal = ordinal_.fetch_add(1, std::memory_order_relaxed);
    const double u = Uniform(opts_.seed, file_id, page_no, ordinal);
    if (u < opts_.transient_rate) {
      transient_injected_.fetch_add(1, std::memory_order_relaxed);
      return FaultKind::kTransientError;
    }
    if (u < opts_.transient_rate + opts_.torn_rate) {
      torn_injected_.fetch_add(1, std::memory_order_relaxed);
      return FaultKind::kTornRead;
    }
    if (u < opts_.transient_rate + opts_.torn_rate +
                opts_.latency_spike_rate) {
      spikes_injected_.fetch_add(1, std::memory_order_relaxed);
      return FaultKind::kLatencySpike;
    }
    return FaultKind::kNone;
  }

  const FaultPlanOptions& options() const { return opts_; }
  uint64_t attempts() const {
    return ordinal_.load(std::memory_order_relaxed);
  }
  uint64_t transient_injected() const {
    return transient_injected_.load(std::memory_order_relaxed);
  }
  uint64_t torn_injected() const {
    return torn_injected_.load(std::memory_order_relaxed);
  }
  uint64_t spikes_injected() const {
    return spikes_injected_.load(std::memory_order_relaxed);
  }

 private:
  // SplitMix64 over the mixed identity -> uniform double in [0, 1). Same
  // finalizer as common/rng.h, restated here so storage/ stays independent
  // of the query-path RNG contract (no shared stream, per §9.1).
  static double Uniform(uint64_t seed, uint32_t file_id, uint64_t page_no,
                        uint64_t ordinal) {
    uint64_t x = seed + 0x9E3779B97F4A7C15ull * (ordinal + 1);
    x ^= (static_cast<uint64_t>(file_id) << 40) ^ page_no;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
  }

  const FaultPlanOptions opts_;
  std::atomic<uint64_t> ordinal_{0};
  std::atomic<uint64_t> transient_injected_{0};
  std::atomic<uint64_t> torn_injected_{0};
  std::atomic<uint64_t> spikes_injected_{0};
};

}  // namespace x100ir::storage

#endif  // X100IR_STORAGE_FAULT_INJECTION_H_
