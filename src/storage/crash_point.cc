#include "storage/crash_point.h"

namespace x100ir::storage {

CrashPoint& CrashPoint::Instance() {
  static CrashPoint instance;
  return instance;
}

void CrashPoint::Arm(CrashSite site, uint64_t countdown) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_site_ = site;
  countdown_ = countdown;
  crashed_.store(false, std::memory_order_release);
  armed_.store(countdown > 0, std::memory_order_release);
}

void CrashPoint::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_site_ = CrashSite::kNumSites;
  countdown_ = 0;
  for (uint64_t& h : hits_) h = 0;
  crashed_.store(false, std::memory_order_release);
  armed_.store(false, std::memory_order_release);
}

bool CrashPoint::Reached(CrashSite site) {
  // Fast path: nothing armed, no crash — one relaxed load, no lock. The
  // counters only advance while a battery is armed, which keeps this off
  // the production append path entirely.
  if (!armed_.load(std::memory_order_relaxed)) {
    return crashed_.load(std::memory_order_acquire);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_.load(std::memory_order_acquire)) return true;
  ++hits_[static_cast<size_t>(site)];
  if (site == armed_site_ && countdown_ > 0 &&
      hits_[static_cast<size_t>(site)] == countdown_) {
    crashed_.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

uint64_t CrashPoint::hits(CrashSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_[static_cast<size_t>(site)];
}

}  // namespace x100ir::storage
