// Deterministic kill-point injection for crash-recovery testing
// (DESIGN.md §13.3). A CrashSite marks one instant in a durable-write
// protocol — after a WAL record hits the file but before its fsync, after
// MANIFEST.tmp is complete but before the rename, and so on. Test code arms
// a site with a 1-based countdown; the countdown-th time execution reaches
// that site the singleton flips to "crashed" and every durable-write path
// in the process refuses to touch disk from then on (wal.cc, the manifest
// writer, the segment builder, and segment retirement all check
// CrashPoint::IsCrashed()). The net effect is exactly a power cut at that
// instant: bytes already written stay, nothing later is written — including
// by destructors — so a test can destroy the Database object and reopen
// against the on-disk state the "crash" left behind.
//
// The un-armed fast path is one relaxed atomic load, cheap enough to sit on
// the per-record WAL append path. Arm/Reset are test-only and not meant to
// race live traffic; Reached() itself is thread-safe (the background merge
// thread hits sites concurrently with the test thread's bookkeeping).
#ifndef X100IR_STORAGE_CRASH_POINT_H_
#define X100IR_STORAGE_CRASH_POINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>

namespace x100ir::storage {

enum class CrashSite : uint32_t {
  // WAL record bytes are in the file (fwrite + fflush), fsync not yet
  // issued — the record may or may not survive a real power cut; in the
  // simulation it survives, and the torn-tail fuzzer covers the loss case.
  kWalAfterAppend = 0,
  // fsync returned: the record is durable, but the caller has not been
  // acknowledged yet.
  kWalAfterFsync,
  // A rotation created the next WAL file (header written) but the
  // DeltaSealed boundary's bookkeeping after it has not run.
  kWalAfterRotate,
  // About to unlink one obsolete WAL file after a merge commit (hit once
  // per file, so counted arming covers mid-truncation crashes).
  kWalBeforeDropFile,
  // The merged segment's column files are complete on disk, manifest not
  // yet written — the segment exists but nothing references it.
  kMergeAfterSegmentBuild,
  // MANIFEST.tmp fully written, rename not yet issued.
  kManifestAfterTmpWrite,
  // rename(MANIFEST.tmp, MANIFEST) returned — the commit point passed,
  // post-commit cleanup (MergeCommitted record, WAL truncation) pending.
  kManifestAfterRename,
  kNumSites,
};

inline const char* CrashSiteName(CrashSite s) {
  switch (s) {
    case CrashSite::kWalAfterAppend: return "wal_after_append";
    case CrashSite::kWalAfterFsync: return "wal_after_fsync";
    case CrashSite::kWalAfterRotate: return "wal_after_rotate";
    case CrashSite::kWalBeforeDropFile: return "wal_before_drop_file";
    case CrashSite::kMergeAfterSegmentBuild: return "merge_after_segment_build";
    case CrashSite::kManifestAfterTmpWrite: return "manifest_after_tmp_write";
    case CrashSite::kManifestAfterRename: return "manifest_after_rename";
    case CrashSite::kNumSites: break;
  }
  return "unknown";
}

class CrashPoint {
 public:
  static CrashPoint& Instance();

  // Arms `site` to crash on its `countdown`-th future hit (1-based).
  // Re-arming replaces any previous arming; only one site is armed at a
  // time (the battery iterates sites one by one).
  void Arm(CrashSite site, uint64_t countdown);

  // Clears the armed site, the crashed flag, and all hit counters.
  void Reset();

  // True once an armed countdown fired. Durable-write code checks this at
  // entry and refuses with IOError("simulated crash") — the process is
  // conceptually dead.
  bool IsCrashed() const {
    return crashed_.load(std::memory_order_acquire);
  }

  // Marks execution reaching `site`. Returns true when this hit fired the
  // armed countdown (or the process already crashed): the caller must
  // abandon the operation without further writes.
  bool Reached(CrashSite site);

  // Hits per site since the last Reset — how the battery discovers when a
  // site's occurrence count is exhausted for a given operation.
  uint64_t hits(CrashSite site) const;

 private:
  CrashPoint() = default;

  std::atomic<bool> armed_{false};
  std::atomic<bool> crashed_{false};
  mutable std::mutex mu_;
  CrashSite armed_site_ = CrashSite::kNumSites;
  uint64_t countdown_ = 0;
  uint64_t hits_[static_cast<size_t>(CrashSite::kNumSites)] = {};
};

// Convenience wrappers for the call sites.
inline bool CrashReached(CrashSite site) {
  return CrashPoint::Instance().Reached(site);
}
inline bool CrashedNow() { return CrashPoint::Instance().IsCrashed(); }

}  // namespace x100ir::storage

#endif  // X100IR_STORAGE_CRASH_POINT_H_
