// Durable write-ahead log for the delta tier (DESIGN.md §13). The
// segmented index's write buffer is in-memory; every mutation that touches
// it (AddDocument, DeleteDocument, the seal that starts a merge, the merge
// commit) is first framed into this append-only, CRC32-guarded log so a
// reopen can replay the exact pre-crash visible state against the manifest.
//
// Format. A log is a sequence of files `wal_<seq>.log` under the database
// directory. Each file starts with a WalFileHeader (magic, version,
// sequence number, corpus fingerprint — a log is paired with the database
// it was written for, like the manifest). Records follow back to back:
//
//   WalRecordHeader { uint32 crc; uint32 len; uint32 type; }
//   uint8 payload[len]
//
// crc is CRC-32 (IEEE) over [len, type, payload]. Replay accepts the
// longest valid prefix: a short header, short payload, impossible length,
// or CRC mismatch ends the log — the torn tail is physically truncated and
// any later files are dropped, so garbage is never served and never
// resurfaces on the next recovery (replay twice = same state, the
// double-recovery property test).
//
// Rotation. StartMerge seals the active delta; the DeltaSealed record is
// the last record of the current file and a fresh file begins. At merge
// commit, everything at or below the sealed file's sequence is redundant
// (the merged segment + manifest carry it), so after the manifest rename
// the manager appends MergeCommitted to the live file and drops the
// obsolete ones. A crash between rename and drop leaves stale files whose
// records replay idempotently (docids below the manifest high-water mark
// are skipped; deletes of already-gone docs are no-ops).
//
// Group commit. Append (cheap: fwrite + fflush under the append mutex)
// assigns a monotonically increasing LSN; Sync(lsn) blocks until an fsync
// covers it. In kGroupCommit mode one waiter becomes the flush leader;
// when other Sync calls are already in flight it waits a bounded window
// (the commit-siblings heuristic — a lone writer skips it) so the batch
// can fill, then fsyncs *everything appended so far* without holding the
// append mutex — concurrent writers keep appending into the next batch —
// and wakes every waiter the batch covered: one fsync amortized over the
// whole batch.
// kFsyncPerWrite serializes an fsync per Sync call (the bench baseline).
// "Off" is represented by not constructing a Wal at all.
//
// Crash simulation: every durable step consults storage/crash_point.h, so
// the recovery battery can kill the process model between any append,
// fsync, rename, and truncation.
#ifndef X100IR_STORAGE_WAL_H_
#define X100IR_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace x100ir::storage {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the frame checksum.
// Exposed so tests and the torn-tail fuzzer can build and break frames.
uint32_t Crc32(const void* data, size_t len);

enum class WalSyncMode : uint8_t {
  kFsyncPerWrite = 0,  // every Sync issues its own fsync, serialized
  kGroupCommit = 1,    // leader-based batching: one fsync per window
};

struct WalOptions {
  // Whether on-disk databases keep a WAL at all. Off = the pre-§13
  // volatile delta tier (benches use it to isolate WAL cost).
  bool enabled = true;
  WalSyncMode mode = WalSyncMode::kGroupCommit;
  // Group-commit batching window: before flushing, the leader sleeps this
  // long so concurrent appenders can join the batch — but only when other
  // Sync calls are already in flight (the commit-siblings heuristic), so a
  // lone serial writer never pays it. 0 disables the window.
  uint32_t group_window_us = 150;
};

enum class WalRecordType : uint32_t {
  kAddDocument = 1,    // i32 docid, u32 nterms, nterms x {u32 term, i32 tf}
  kDeleteDocument = 2, // i32 docid
  kDeltaSealed = 3,    // i32 cutoff docid (== next_docid at seal)
  kMergeCommitted = 4, // i32 cutoff docid, u64 epoch (post-rename marker)
};

struct WalFileHeader {
  static constexpr uint32_t kMagic = 0x4C415758;  // "XWAL"
  static constexpr uint32_t kVersion = 1;

  uint32_t magic = kMagic;
  uint32_t version = kVersion;
  uint64_t seq = 0;
  uint64_t corpus_fingerprint = 0;
};

struct WalRecordHeader {
  uint32_t crc = 0;
  uint32_t len = 0;
  uint32_t type = 0;
};

// One decoded record handed to the replay callback.
struct WalRecordView {
  WalRecordType type;
  const uint8_t* payload;
  uint32_t len;
};

// Monotonic counters since Open (stats() snapshots them under the lock).
struct WalStats {
  uint64_t appends = 0;       // records framed into the log
  uint64_t fsyncs = 0;        // fsync syscalls issued
  uint64_t sync_waits = 0;    // Sync calls that waited on another flush
  uint64_t batches = 0;       // group-commit flushes (== fsyncs in practice)
  uint64_t batch_records_sum = 0;  // records covered across all batches
  uint64_t batch_records_max = 0;  // largest single batch
  uint64_t replayed_records = 0;   // records accepted by the last Replay
  uint64_t truncated_bytes = 0;    // torn tail removed by the last Replay
};

class Wal {
 public:
  Wal() = default;
  ~Wal() { Close(); }
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Scans `dir` for wal_<seq>.log files belonging to `corpus_fingerprint`
  // (mismatched or unreadable headers read as "no log") and prepares for
  // Replay + append. Creates the first file when none exists.
  Status Open(const std::string& dir, uint64_t corpus_fingerprint,
              const WalOptions& options);

  // Replays every valid record, in (file seq, offset) order, through `fn`.
  // The longest valid prefix wins: the first torn/corrupt frame truncates
  // its file there and drops all later files. `fn` returning OutOfRange
  // also truncates at that record (the caller judged the log inconsistent
  // from there — defense in depth); any other non-OK status aborts and is
  // returned. Call once, after Open, before the first Append.
  Status Replay(const std::function<Status(const WalRecordView&)>& fn);

  // Frames one record into the live file (fwrite + fflush; durable only
  // after a covering Sync). Thread-safe. *lsn (may be null) receives the
  // record's LSN for Sync.
  Status Append(WalRecordType type, const void* payload, uint32_t len,
                uint64_t* lsn);

  // Blocks until an fsync covers `lsn`. Group-commit batching per the
  // header comment. Thread-safe.
  Status Sync(uint64_t lsn);

  // Fsyncs the live file, closes it, and starts wal_<seq+1>.log. The
  // caller serializes rotation against itself (the manager's commit mutex
  // does); concurrent Append/Sync are excluded internally. Returns the
  // sequence number the *closed* file had via *sealed_seq.
  Status Rotate(uint64_t* sealed_seq);

  // Unlinks every log file with seq <= `upto_seq` (the post-merge-commit
  // truncation). Hits CrashSite::kWalBeforeDropFile before each unlink.
  Status DropFilesUpTo(uint64_t upto_seq);

  void Close();

  // Removes every wal_*.log under `dir` — the torn-manifest fallback: a
  // log is only meaningful against the manifest it was written with.
  static void RemoveFiles(const std::string& dir);

  WalStats stats() const;
  uint64_t current_seq() const;

  // --- Payload encode/decode helpers (shared by manager and tests) ------
  struct AddPayload {
    int32_t docid = 0;
    std::vector<std::pair<uint32_t, int32_t>> terms;  // (term, tf)
  };
  static std::vector<uint8_t> EncodeAdd(
      int32_t docid, const std::vector<std::pair<uint32_t, int32_t>>& terms);
  static bool DecodeAdd(const WalRecordView& rec, AddPayload* out);
  static std::vector<uint8_t> EncodeDocid(int32_t docid);
  static bool DecodeDocid(const WalRecordView& rec, int32_t* docid);
  static std::vector<uint8_t> EncodeMergeCommitted(int32_t cutoff,
                                                   uint64_t epoch);
  static bool DecodeMergeCommitted(const WalRecordView& rec, int32_t* cutoff,
                                   uint64_t* epoch);

 private:
  std::string FilePath(uint64_t seq) const;
  Status OpenFileForAppend(uint64_t seq, bool create);
  Status FsyncLocked();

  std::string dir_;
  uint64_t fingerprint_ = 0;
  WalOptions options_;

  // append_mu_ protects the FILE*, the LSN/record counters, and the file
  // list; sync_mu_/sync_cv_ carry the group-commit flush state. An fsync
  // runs with append_mu_ *released* so writers keep appending into the
  // next batch (stdio FILE is internally locked, so fflush/fwrite overlap
  // is safe).
  mutable std::mutex append_mu_;
  std::FILE* f_ = nullptr;
  int fd_ = -1;
  uint64_t seq_ = 0;
  uint64_t next_lsn_ = 0;      // bytes framed, monotone across rotations
  uint64_t next_record_ = 0;   // records framed
  std::vector<uint64_t> file_seqs_;  // every live file, ascending

  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  // Sync calls currently in flight (group mode): the leader's window-wait
  // trigger. Atomic so the leader reads it without re-taking sync_mu_.
  std::atomic<uint32_t> sync_pending_{0};
  bool flush_in_flight_ = false;
  uint64_t durable_lsn_ = 0;
  uint64_t durable_record_ = 0;
  Status sticky_error_;  // a failed flush poisons later Syncs

  mutable std::mutex stats_mu_;
  WalStats stats_;
};

}  // namespace x100ir::storage

#endif  // X100IR_STORAGE_WAL_H_
