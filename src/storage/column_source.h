// Adapts a storage-backed column range to vec::VectorSource, so the same
// relational plans (Scan → score → union → top-k) run unchanged over cold
// storage — the paper's flexibility claim, and the data path of the
// Table 2 second-pass runs.
//
// VectorSource::Read cannot report failure, but a pool access can fail
// (e.g. pool smaller than the pinned working set). The adapter latches the
// first error and zero-fills all further reads — downstream operators see
// well-defined values, and the engine checks status() after the plan runs
// so a failed query surfaces as an error, never as garbage results.
#ifndef X100IR_STORAGE_COLUMN_SOURCE_H_
#define X100IR_STORAGE_COLUMN_SOURCE_H_

#include <cstring>

#include "common/status.h"
#include "storage/column_reader.h"
#include "vec/scan.h"

namespace x100ir::storage {

class ColumnSliceSource : public vec::VectorSource {
 public:
  // A [offset, offset + len) view over `col` (borrowed, must outlive the
  // source). `type` must match the column's value type: kI32 for raw-i32 /
  // compressed columns, kF32 for f32 / quantized columns.
  ColumnSliceSource(ColumnReader* col, uint64_t offset, uint64_t len,
                    vec::TypeId type)
      : col_(col), offset_(offset), len_(len), type_(type) {}

  uint64_t size() const override { return len_; }
  vec::TypeId type() const override { return type_; }

  void Read(uint64_t pos, uint32_t len, void* dst) const override {
    if (status_.ok()) {
      status_ = type_ == vec::TypeId::kI32
                    ? col_->Read(offset_ + pos, len,
                                 static_cast<int32_t*>(dst))
                    : col_->ReadF32(offset_ + pos, len,
                                    static_cast<float*>(dst));
      if (status_.ok()) return;
    }
    std::memset(dst, 0, static_cast<size_t>(len) * vec::kTypeWidth);
  }

  const Status& status() const { return status_; }

 private:
  ColumnReader* col_;
  uint64_t offset_;
  uint64_t len_;
  vec::TypeId type_;
  mutable Status status_;
};

}  // namespace x100ir::storage

#endif  // X100IR_STORAGE_COLUMN_SOURCE_H_
