#include "storage/file.h"

#include <unistd.h>

#include <cerrno>
#include <utility>

namespace x100ir::storage {

File& File::operator=(File&& o) noexcept {
  if (this != &o) {
    Close();
    f_ = o.f_;
    size_ = o.size_;
    o.f_ = nullptr;
  }
  return *this;
}

Status File::OpenReadOnly(const std::string& path, File* out) {
  if (out == nullptr) return InvalidArgument("null file");
  out->Close();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return NotFound("cannot open " + path);
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return IOError("cannot seek " + path);
  }
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    return IOError("cannot size " + path);
  }
  out->f_ = f;
  out->size_ = static_cast<uint64_t>(end);
  return OkStatus();
}

Status File::Size(uint64_t* out) const {
  if (f_ == nullptr) return Internal("file not open");
  *out = size_;
  return OkStatus();
}

Status File::ReadAt(uint64_t offset, uint64_t len, void* dst) const {
  if (f_ == nullptr) return Internal("file not open");
  if (offset + len > size_ || offset + len < offset) {
    return InvalidArgument("read past end of file");
  }
  if (len == 0) return OkStatus();
  // pread, not fseek+fread: FILE* keeps one shared cursor, which would race
  // when concurrent queries fetch different pages of the same column.
  uint8_t* out = static_cast<uint8_t*>(dst);
  uint64_t done = 0;
  while (done < len) {
    const ssize_t n = pread(fileno(f_), out + done, len - done,
                            static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return IOError("pread failed");
    }
    if (n == 0) return IOError("short read");
    done += static_cast<uint64_t>(n);
  }
  return OkStatus();
}

void File::Close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
  size_ = 0;
}

}  // namespace x100ir::storage
