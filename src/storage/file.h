// Thin positioned-read file wrapper — the only place storage/ touches the
// OS. Everything above it (buffer manager, column readers) deals in byte
// ranges, so the real-I/O seam stays one class wide and the simulated disk
// cost model (buffer_manager.h) can charge deterministic latencies
// independent of what the host filesystem actually does.
#ifndef X100IR_STORAGE_FILE_H_
#define X100IR_STORAGE_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/status.h"

namespace x100ir::storage {

class File {
 public:
  File() = default;
  ~File() { Close(); }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  File(File&& o) noexcept : f_(o.f_), size_(o.size_) { o.f_ = nullptr; }
  File& operator=(File&& o) noexcept;

  static Status OpenReadOnly(const std::string& path, File* out);

  bool is_open() const { return f_ != nullptr; }
  Status Size(uint64_t* out) const;

  // Reads exactly [offset, offset + len) into dst; a short read (EOF or
  // I/O error) is an error, never a partial fill. Thread-safe: positioned
  // pread, no shared file cursor — concurrent page fetches from different
  // buffer-pool shards may overlap freely on one File.
  Status ReadAt(uint64_t offset, uint64_t len, void* dst) const;

  void Close();

 private:
  std::FILE* f_ = nullptr;
  uint64_t size_ = 0;
};

}  // namespace x100ir::storage

#endif  // X100IR_STORAGE_FILE_H_
