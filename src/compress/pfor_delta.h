// PFOR-DELTA: PFOR over the first-order deltas of a (partially) sorted
// column — the docid representation of §3.3. Reconstruction is a prefix sum
// (LOOP3), seeded per 128-value window from the entry points so range
// decodes never scan from the block start.
#ifndef X100IR_COMPRESS_PFOR_DELTA_H_
#define X100IR_COMPRESS_PFOR_DELTA_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "compress/codec.h"

namespace x100ir::compress {

// Encodes values[0..n). Deltas (values[i] - values[i-1], with values[-1]
// taken as 0) must be representable in 32 bits — always true for sorted
// input. opts.bit_width == 0 auto-selects on the delta distribution.
Status PforDeltaEncode(const int32_t* values, uint32_t n,
                       const EncodeOptions& opts, std::vector<uint8_t>* out,
                       BlockStats* stats);

}  // namespace x100ir::compress

#endif  // X100IR_COMPRESS_PFOR_DELTA_H_
