// PDICT: dictionary compression with patched exceptions (§3.3). Codewords
// index a per-block dictionary of the most frequent values; values outside
// the dictionary are exceptions patched by LOOP2. LOOP1 is a branch-free
// unpack + gather.
#ifndef X100IR_COMPRESS_PDICT_H_
#define X100IR_COMPRESS_PDICT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "compress/codec.h"

namespace x100ir::compress {

// Encodes values[0..n). With opts.bit_width == 0 the width is the smallest
// covering all distinct values (capped at kMaxDictBitWidth); with a given
// width the 2^b most frequent values form the dictionary and the rest
// become exceptions. naive_layout is not supported for PDICT.
Status PdictEncode(const int32_t* values, uint32_t n,
                   const EncodeOptions& opts, std::vector<uint8_t>* out,
                   BlockStats* stats);

}  // namespace x100ir::compress

#endif  // X100IR_COMPRESS_PDICT_H_
