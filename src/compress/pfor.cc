#include "compress/pfor.h"

#include <algorithm>

#include "compress/block_layout.h"

namespace x100ir::compress {

Status PforEncode(const int32_t* values, uint32_t n,
                  const EncodeOptions& opts, std::vector<uint8_t>* out,
                  BlockStats* stats) {
  if (n > 0 && values == nullptr) return InvalidArgument("null values");

  int32_t base = 0;
  if (!opts.force_base && n > 0) {
    base = *std::min_element(values, values + n);
  }

  std::vector<int64_t> syms(n);
  for (uint32_t i = 0; i < n; ++i) {
    syms[i] = static_cast<int64_t>(values[i]) - base;
  }

  int b = opts.bit_width;
  if (b == 0) {
    b = internal::ChooseBitWidth(syms.data(), n, opts.naive_layout);
  }

  internal::BlockBuildInput in;
  in.scheme = Scheme::kPfor;
  in.bit_width = b;
  in.naive_layout = opts.naive_layout;
  in.base = base;
  in.n = n;
  in.syms = syms.data();
  in.payloads = values;  // exceptions store the raw value
  return internal::BuildBlock(in, out, stats);
}

}  // namespace x100ir::compress
