#include "compress/pfor_delta.h"

#include <algorithm>
#include <cstdint>

#include "compress/block_layout.h"

namespace x100ir::compress {

Status PforDeltaEncode(const int32_t* values, uint32_t n,
                       const EncodeOptions& opts, std::vector<uint8_t>* out,
                       BlockStats* stats) {
  if (n > 0 && values == nullptr) return InvalidArgument("null values");

  std::vector<int32_t> deltas(n);
  int32_t prev = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const int64_t d = static_cast<int64_t>(values[i]) - prev;
    if (d < INT32_MIN || d > INT32_MAX) {
      return InvalidArgument("delta exceeds 32 bits (unsorted input?)");
    }
    deltas[i] = static_cast<int32_t>(d);
    prev = values[i];
  }

  int32_t base = 0;
  if (!opts.force_base && n > 0) {
    base = *std::min_element(deltas.begin(), deltas.end());
  }

  std::vector<int64_t> syms(n);
  for (uint32_t i = 0; i < n; ++i) {
    syms[i] = static_cast<int64_t>(deltas[i]) - base;
  }

  int b = opts.bit_width;
  if (b == 0) {
    b = internal::ChooseBitWidth(syms.data(), n, opts.naive_layout);
  }

  // Running value before each window, so LOOP3 can prefix-sum any window
  // independently.
  const uint32_t entry_count =
      (n + kEntryPointStride - 1) / kEntryPointStride;
  std::vector<int32_t> window_bases(entry_count);
  for (uint32_t w = 0; w < entry_count; ++w) {
    window_bases[w] = w == 0 ? 0 : values[w * kEntryPointStride - 1];
  }

  internal::BlockBuildInput in;
  in.scheme = Scheme::kPforDelta;
  in.bit_width = b;
  in.naive_layout = opts.naive_layout;
  in.base = base;
  in.n = n;
  in.syms = syms.data();
  in.payloads = deltas.data();  // exceptions store the raw delta
  in.window_value_bases = window_bases.data();
  return internal::BuildBlock(in, out, stats);
}

}  // namespace x100ir::compress
