// PFOR: frame-of-reference + patched exceptions (§3.3). Values are encoded
// as b-bit offsets from a base (the column minimum, or 0 with
// EncodeOptions::force_base); values outside [base, base + 2^b) become
// exceptions. Decode via BlockDecoder (codec.h).
#ifndef X100IR_COMPRESS_PFOR_H_
#define X100IR_COMPRESS_PFOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "compress/codec.h"

namespace x100ir::compress {

// Encodes values[0..n) into a self-describing block. With
// opts.bit_width == 0 the width is chosen to minimize estimated block size.
Status PforEncode(const int32_t* values, uint32_t n, const EncodeOptions& opts,
                  std::vector<uint8_t>* out, BlockStats* stats);

}  // namespace x100ir::compress

#endif  // X100IR_COMPRESS_PFOR_H_
