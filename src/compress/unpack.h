// LOOP1 kernel dispatch (internal): the branch-free bit-unpacking kernels
// behind BlockDecoder's decode paths.
//
// Two kernel families exist for the FOR-add shape (out[i] = base + code[i]):
//
//   - scalar: one unaligned 64-bit load + shift/mask per codeword,
//     specialized per width via a template table (moved here from codec.cc);
//     always available, and the ground truth the SIMD kernels must match
//     bit-exactly (Codec.SimdUnpackBitExact sweeps the agreement).
//   - SIMD shuffle-table kernels for the byte-friendly widths b in
//     {4, 8, 16}: one 16-byte load expands to 8..32 decoded values through
//     pshufb (SSSE3) or tbl/zip (NEON) byte shuffles — no per-codeword
//     shifting at all. Selected at runtime (DESIGN.md §7.3):
//     __builtin_cpu_supports("ssse3") on x86-64 (kernels carry
//     __attribute__((target("ssse3"))) so no global -m flags are needed),
//     unconditionally on AArch64, scalar anywhere else.
//   - a generic AVX2 kernel family covering *every* width b in
//     [1, kMaxBitWidth] (DESIGN.md §12.2): 8 values per iteration. A group
//     of 8 b-bit codewords spans exactly b bytes, so every group starts
//     byte-aligned; two 16-byte loads (the second at byte (4b)>>3) put each
//     value's dword in reach of an in-lane vpshufb, then a per-lane
//     variable shift + mask isolates the codeword. Widths b >= 26 can
//     straddle a dword (shift + b > 32); a second shuffle fetches the
//     spill byte and a left-shift ORs the missing high bits in. Selected
//     via __builtin_cpu_supports("avx2"), preferred over the SSSE3 kernels.
//
// LOOP2 (exception patching) also has a dispatchable kernel: GetPatch()
// returns either the scalar record loop or an AVX2 variant that
// deinterleaves four 8-byte {value, pos} records per 32-byte load before
// the (inherently scalar) scattered stores.
//
// The dictionary-gather shape (PDICT) stays scalar: PDICT is off the
// posting-list hot path.
//
// SetSimdUnpackEnabled(false) forces the scalar table — the test/bench hook
// for bit-exactness sweeps and the SIMD-vs-scalar speedup measurement
// (bench_table1_systems). Not thread-safe; flip it only in single-threaded
// setup code.
#ifndef X100IR_COMPRESS_UNPACK_H_
#define X100IR_COMPRESS_UNPACK_H_

#include <cstdint>

namespace x100ir::compress::internal {

// Kernel contracts (identical to the scalar loops they replace):
//   - codewords are packed LSB-first from src, n values, width implied by
//     the kernel;
//   - the caller guarantees readable slack past the last codeword
//     (kBlockPadBytes for the scalar 8-byte loads; the SIMD kernels bound
//     their 16-byte loads to full groups inside src and finish the tail
//     with the scalar loop, so they never read further than scalar would);
//   - exception slots decode to garbage links, patched later by LOOP2, so
//     the add is two's-complement wraparound (unsigned / paddd semantics).
using UnpackAddFn = void (*)(const uint8_t* src, uint32_t n, int32_t base,
                             int32_t* out);
using UnpackDictFn = void (*)(const uint8_t* src, uint32_t n,
                              const int32_t* dict, int32_t* out);
// LOOP2: out[rec.pos - out_base] = rec.value for each 8-byte
// {int32 value, uint32 pos} ExceptionRecord in recs[0..count). Positions
// are block-absolute; out_base rebases them (0 for whole-block patching,
// the window's first position for per-window patching). The caller
// guarantees every rebased position is in bounds (Validate() vets records
// once per block).
using PatchFn = void (*)(const uint8_t* recs, uint32_t count,
                         uint32_t out_base, int32_t* out);

// Always-scalar kernels (test oracle). b in [1, kMaxBitWidth].
UnpackAddFn ScalarUnpackAdd(int b);
UnpackDictFn ScalarUnpackDict(int b);
PatchFn ScalarPatch();

// Dispatched kernels: SIMD when available and enabled (all widths at
// kAvx2, b in {4, 8, 16} at kSse/kNeon), scalar otherwise.
UnpackAddFn GetUnpackAdd(int b);
UnpackDictFn GetUnpackDict(int b);
PatchFn GetPatch();

enum class SimdLevel : uint8_t {
  kScalar = 0,
  kSse = 1,
  kNeon = 2,
  kAvx2 = 3,
};
const char* SimdLevelName(SimdLevel level);

// What the dispatcher currently resolves to: the detected host level, or
// kScalar while SIMD is disabled.
SimdLevel ActiveSimdLevel();

// True iff GetUnpackAdd(b) would return a SIMD kernel right now.
bool SimdUnpackAvailable(int b);

void SetSimdUnpackEnabled(bool enabled);
bool SimdUnpackEnabled();

}  // namespace x100ir::compress::internal

#endif  // X100IR_COMPRESS_UNPACK_H_
