// Block-skipping scan support: a forward cursor over a *sorted* sub-range
// of a PFOR-DELTA block (one term's posting window of the TD.docid column)
// whose SkipTo(target) decodes only windows that can contain the probe.
//
// The trick is that every entry point already stores the running value
// before its window (value_base, needed by LOOP3's seeded prefix sum), so
// the last value of window w is WindowValueBase(w + 1) — readable without
// decoding anything. Over a sorted range those per-window maxima are
// nondecreasing, which turns "first window that can contain target" into a
// binary search over entry points; only the one candidate window is then
// range-decoded (128 values) and searched. Windows the search jumps over
// are never touched — the paper's fine-granularity skipping, upgraded from
// positional (Decode(pos, len)) to value-based.
//
// Boundary care, pinned by Codec.SortedRangeCursor* tests:
//   - the range is a *sub-range*: positions outside [begin, end) may belong
//     to other terms and are not sorted relative to it (force_base makes
//     each term-boundary reset a plain exception, invisible here);
//   - the window containing end - 1 may extend past the range; its stored
//     value_base successor would describe out-of-range values, so it is
//     always treated as a decode candidate rather than trusted;
//   - SkipTo never moves backwards: probes must be nondecreasing, which the
//     merge-join guarantees (docids ascend).
//
// The cursor is cheap to construct (no allocation beyond a 128-value window
// buffer) and single-threaded like everything else in a plan.
#ifndef X100IR_COMPRESS_SKIP_CURSOR_H_
#define X100IR_COMPRESS_SKIP_CURSOR_H_

#include <algorithm>
#include <cstdint>

#include "common/status.h"
#include "compress/codec.h"

namespace x100ir::compress {

// Per-cursor skipping telemetry, folded into the query's ExecStats by the
// operators that own cursors.
//
// Partition invariant (pinned by Codec.SkipStatsPartitionExact): for any
// driver that decodes or skips every window it traverses (value() /
// CurrentRunView() / SkipTo / SkipCurrentWindowBlockMax — the engine's
// refill loop is such a driver), every 128-value window overlapping the
// cursor's [begin, end) range lands in exactly one of windows_decoded,
// windows_skipped, or windows_blockmax_skipped by the time the cursor
// exhausts. windows_decoded is *not* monotone in θ: a higher threshold can
// skip a window early that a lower one would have decoded, then decode a
// later window the lower one never reached — only the three-way sum is
// invariant, which is why the drift audit checks the partition, not any
// single counter.
struct SkipStats {
  uint64_t windows_decoded = 0;  // 128-value windows actually decoded
  uint64_t windows_skipped = 0;  // windows SkipTo jumped without decoding
  // Windows rejected by a Block-Max bound (score upper bound < θ) without
  // decoding. Disjoint from windows_skipped: value-based skips come from
  // SkipTo's entry-point search, block-max skips from the caller's bound.
  uint64_t windows_blockmax_skipped = 0;
  uint64_t skip_calls = 0;       // SkipTo invocations
};

class SortedRangeCursor {
 public:
  SortedRangeCursor() = default;

  // The decoder (and its block) must outlive the cursor. Values at
  // positions [begin, end) must be nondecreasing — the caller's contract,
  // true for any single term's slice of TD.docid.
  Status Init(const BlockDecoder* dec, uint64_t begin, uint64_t end) {
    if (dec == nullptr) return InvalidArgument("null decoder");
    if (dec->scheme() != Scheme::kPforDelta) {
      return InvalidArgument(
          "skip cursor needs window value bases (PFOR-DELTA)");
    }
    if (begin > end || end > dec->n()) {
      return InvalidArgument("cursor range out of bounds");
    }
    dec_ = dec;
    begin_ = begin;
    end_ = end;
    pos_ = begin;
    win_ = kNoWindow;
    stats_ = SkipStats();
    return OkStatus();
  }

  bool AtEnd() const { return pos_ >= end_; }
  uint64_t position() const { return pos_; }
  const SkipStats& stats() const { return stats_; }

  // Current value; requires !AtEnd(). Decodes the containing window on
  // first access (lazily, so a cursor that is only ever skipped past a
  // window never pays for it).
  int32_t value() {
    EnsureWindow();
    return win_vals_[pos_ - win_base_];
  }

  // Advances one position; returns false at end.
  bool Next() { return ++pos_ < end_; }

  // --- Window-granular bulk access (Block-Max MaxScore, DESIGN.md §12) ---

  // Index of the window containing the cursor; requires !AtEnd().
  uint32_t CurrentWindowIndex() const {
    return static_cast<uint32_t>(pos_ / kEntryPointStride);
  }

  // Jumps past the current window without decoding it — the Block-Max
  // reject, taken when the caller's per-window score upper bound cannot
  // beat θ. Counted as blockmax-skipped unless the window is already
  // decoded (then windows_decoded already owns it; each window lands in
  // exactly one counter). Returns false when the cursor exhausts.
  bool SkipCurrentWindowBlockMax() {
    const uint32_t w = CurrentWindowIndex();
    if (win_ != w) ++stats_.windows_blockmax_skipped;
    pos_ = std::min<uint64_t>(
        end_, static_cast<uint64_t>(w + 1) * kEntryPointStride);
    return pos_ < end_;
  }

  // One decoded window's in-range slice: vals[lo..hi) are the values at
  // block-absolute positions [win_base + lo, win_base + hi), all >= the
  // cursor position and < end.
  struct RunView {
    const int32_t* vals = nullptr;  // the full decoded window
    uint32_t win_index = 0;
    uint64_t win_base = 0;  // block-absolute position of vals[0]
    uint32_t win_len = 0;   // decoded values (may extend past the range)
    uint32_t lo = 0;        // first in-range slot (== pos - win_base)
    uint32_t hi = 0;        // one past the last in-range slot
  };

  // Decodes (if needed) the window containing the cursor and returns its
  // in-range slice; requires !AtEnd(). The pointer stays valid until the
  // cursor decodes another window.
  RunView CurrentRunView() {
    EnsureWindow();
    RunView rv;
    rv.vals = win_vals_;
    rv.win_index = win_;
    rv.win_base = win_base_;
    rv.win_len = win_len_;
    rv.lo = static_cast<uint32_t>(pos_ - win_base_);
    rv.hi = static_cast<uint32_t>(
        std::min<uint64_t>(end_, win_base_ + win_len_) - win_base_);
    return rv;
  }

  // Forward-only positional advance (to the end of a consumed run); moves
  // to min(pos, end) and never backwards.
  void AdvanceTo(uint64_t pos) {
    pos_ = std::max(pos_, std::min(pos, end_));
  }

  // Advances to the first position >= the current one whose value is
  // >= target; returns false (cursor at end) when no such position exists.
  // Probes must be nondecreasing across calls.
  bool SkipTo(int32_t target) {
    ++stats_.skip_calls;
    while (!AtEnd()) {
      constexpr uint32_t kStride = kEntryPointStride;
      const uint32_t w_from = static_cast<uint32_t>(pos_ / kStride);
      const uint32_t w_last = static_cast<uint32_t>((end_ - 1) / kStride);
      // Windows x < full_end have their last value in-range AND stored in
      // the next entry point: f(x) = WindowValueBase(x + 1) is the window
      // max without decoding. The block's final window has no successor
      // entry, so it is excluded even when the range covers it exactly.
      const uint32_t full_end =
          std::min(static_cast<uint32_t>(end_ / kStride),
                   dec_->entry_count() - 1);
      uint32_t lo = w_from;
      uint32_t hi = std::max(w_from, full_end);
      while (lo < hi) {
        const uint32_t mid = lo + (hi - lo) / 2;
        if (dec_->WindowValueBase(mid + 1) >= target) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      uint32_t cand = lo;
      if (cand >= full_end) {
        // Every full-info window tops out below target. If the range ends
        // with a window whose max is unknown (partial coverage or the
        // block's final window), that window is the last candidate;
        // otherwise the range holds no value >= target.
        if (full_end > w_last) {
          // The jump to end passes windows w_from..w_last without decoding
          // them; they must still land in the skip count or the partition
          // invariant (SkipStats comment) would leak exactly this branch.
          stats_.windows_skipped +=
              w_last - w_from + 1 - (win_ == w_from ? 1 : 0);
          pos_ = end_;
          return false;
        }
        cand = w_last;
      }
      if (cand > w_from) {
        stats_.windows_skipped +=
            cand - w_from - (win_ == w_from ? 1 : 0);
        pos_ = static_cast<uint64_t>(cand) * kStride;
      }
      EnsureWindow();
      // Lower bound within the window's in-range tail [pos_, cap).
      const uint64_t cap = std::min<uint64_t>(end_, win_base_ + win_len_);
      uint32_t s = static_cast<uint32_t>(pos_ - win_base_);
      uint32_t e = static_cast<uint32_t>(cap - win_base_);
      while (s < e) {
        const uint32_t m = s + (e - s) / 2;
        if (win_vals_[m] >= target) {
          e = m;
        } else {
          s = m + 1;
        }
      }
      if (win_base_ + s < cap) {
        pos_ = win_base_ + s;
        return true;
      }
      // Only reachable when cand was the unknown-max trailing window and
      // its in-range values all fall below target: exhaust it and let the
      // loop observe AtEnd.
      pos_ = cap;
    }
    return false;
  }

 private:
  static constexpr uint32_t kNoWindow = 0xFFFFFFFFu;

  void EnsureWindow() {
    const uint32_t w = static_cast<uint32_t>(pos_ / kEntryPointStride);
    if (w == win_) return;
    win_ = w;
    win_base_ = static_cast<uint64_t>(w) * kEntryPointStride;
    win_len_ = static_cast<uint32_t>(
        std::min<uint64_t>(kEntryPointStride, dec_->n() - win_base_));
    dec_->Decode(static_cast<uint32_t>(win_base_), win_len_, win_vals_);
    ++stats_.windows_decoded;
  }

  const BlockDecoder* dec_ = nullptr;
  uint64_t begin_ = 0;
  uint64_t end_ = 0;
  uint64_t pos_ = 0;

  uint32_t win_ = kNoWindow;  // index of the decoded window, or kNoWindow
  uint64_t win_base_ = 0;
  uint32_t win_len_ = 0;
  int32_t win_vals_[kEntryPointStride];

  SkipStats stats_;
};

}  // namespace x100ir::compress

#endif  // X100IR_COMPRESS_SKIP_CURSOR_H_
