// Shared block builder + BlockDecoder (LOOP1/LOOP2 patched decode, naive
// sentinel decode, dense-window escape, entry-point range decode). See
// codec.h for the format.
#include "compress/codec.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "compress/block_layout.h"
#include "compress/unpack.h"

namespace x100ir::compress {

using internal::BlockBuildInput;
using internal::BlockHeader;
using internal::DenseWins;
using internal::EntryPoint;
using internal::ExceptionRecord;
using internal::kBlockMagic;
using internal::kBlockPadBytes;
using internal::kDenseWindow;
using internal::kFlagNaiveLayout;
using internal::kNoException;
using internal::WindowBytes;

namespace {

// ---------------------------------------------------------------------------
// Bit packing / unpacking.
//
// Codewords are packed LSB-first into a little-endian bitstream. Every
// access goes through one unaligned 64-bit load: with b <= 30 the widest
// codeword spans at most ceil((7 + 30) / 8) = 5 bytes, so a single load
// always covers it. Callers guarantee 8 readable bytes past the last
// codeword (kBlockPadBytes).
// ---------------------------------------------------------------------------

inline uint32_t ReadCode(const uint8_t* src, uint64_t index, int b) {
  const uint64_t bit = index * static_cast<uint64_t>(b);
  uint64_t word;
  std::memcpy(&word, src + (bit >> 3), sizeof(word));
  const uint64_t mask = (1ull << b) - 1;
  return static_cast<uint32_t>((word >> (bit & 7)) & mask);
}

inline void WriteCode(uint8_t* dst, uint64_t index, int b, uint32_t code) {
  const uint64_t bit = index * static_cast<uint64_t>(b);
  const uint64_t mask = (1ull << b) - 1;
  uint64_t word;
  std::memcpy(&word, dst + (bit >> 3), sizeof(word));
  word |= (static_cast<uint64_t>(code) & mask) << (bit & 7);
  std::memcpy(dst + (bit >> 3), &word, sizeof(word));
}

// LOOP1 kernels live in unpack.h / simd_unpack.cc: per-width scalar
// templates plus SIMD shuffle kernels for b in {4, 8, 16}, resolved at
// runtime through internal::GetUnpackAdd / GetUnpackDict.

inline uint32_t Align8(uint32_t x) { return (x + 7u) & ~7u; }

// LOOP3: in-place prefix sum seeded from `acc`; returns the running value
// so DecodeAll can carry it across batches.
inline int32_t PrefixSumInPlace(int32_t* dst, uint32_t n, int32_t acc) {
  for (uint32_t i = 0; i < n; ++i) {
    acc += dst[i];
    dst[i] = acc;
  }
  return acc;
}

}  // namespace

namespace internal {

int ChooseBitWidth(const int64_t* syms, uint32_t n, bool naive_layout) {
  if (n == 0) return 1;
  // hist[k]: symbols needing exactly k bits; eq_all_ones[k]: symbols equal
  // to 2^k - 1 (the naive sentinel at width k, hence exceptions there).
  uint64_t hist[33] = {0};
  uint64_t eq_all_ones[33] = {0};
  for (uint32_t i = 0; i < n; ++i) {
    const int64_t s = syms[i];
    if (s < 0 || s > 0x7FFFFFFFll) {
      hist[32]++;  // never encodable
      continue;
    }
    int bits = 0;
    uint64_t u = static_cast<uint64_t>(s);
    while (u >> bits) ++bits;
    if (bits == 0) bits = 1;
    hist[bits]++;
    if (s == (1ll << bits) - 1) eq_all_ones[bits]++;
  }
  // suffix[k] = symbols needing more than k bits.
  uint64_t suffix[34] = {0};
  for (int k = 31; k >= 0; --k) suffix[k] = suffix[k + 1] + hist[k + 1];

  int best_b = 1;
  uint64_t best_bytes = ~0ull;
  for (int b = 1; b <= kMaxBitWidth; ++b) {
    uint64_t exc = suffix[b];
    if (naive_layout) exc += eq_all_ones[b];
    const uint64_t bytes = (static_cast<uint64_t>(n) * b + 7) / 8 +
                           sizeof(ExceptionRecord) * exc;
    if (bytes < best_bytes) {
      best_bytes = bytes;
      best_b = b;
    }
  }
  return best_b;
}

Status BuildBlock(const BlockBuildInput& in, std::vector<uint8_t>* out,
                  BlockStats* stats) {
  if (out == nullptr) return InvalidArgument("null output");
  if (in.bit_width < 1 || in.bit_width > kMaxBitWidth) {
    return InvalidArgument("bit_width must be in [1, 30]");
  }
  if (in.n > 0 && (in.syms == nullptr || in.payloads == nullptr)) {
    return InvalidArgument("null input arrays");
  }

  const int b = in.bit_width;
  const int64_t mask = (1ll << b) - 1;
  // Naive layout reserves the all-ones codeword as the exception sentinel.
  const int64_t max_normal = in.naive_layout ? mask - 1 : mask;
  // Patched links store (gap - 1); the largest representable gap.
  const uint32_t max_gap = 1u << b;

  const uint32_t entry_count =
      (in.n + kEntryPointStride - 1) / kEntryPointStride;
  std::vector<EntryPoint> entries(entry_count);
  std::vector<uint32_t> codes(in.n, 0);
  std::vector<ExceptionRecord> exc_records;
  std::vector<uint32_t> window_exc;  // scratch: window-relative slots
  uint64_t n_compulsory = 0;
  uint32_t n_dense = 0;
  uint32_t payload_off = 0;

  for (uint32_t w = 0; w < entry_count; ++w) {
    const uint32_t begin = w * kEntryPointStride;
    const uint32_t wn = std::min(kEntryPointStride, in.n - begin);
    EntryPoint& ep = entries[w];
    ep.exc_start = static_cast<uint32_t>(exc_records.size());
    ep.first_exc = kNoException;
    ep.value_base =
        in.window_value_bases != nullptr ? in.window_value_bases[w] : 0;
    ep.payload_off = payload_off;

    if (in.naive_layout) {
      for (uint32_t i = 0; i < wn; ++i) {
        const int64_t s = in.syms[begin + i];
        if (s < 0 || s > max_normal) {
          codes[begin + i] = static_cast<uint32_t>(mask);
          exc_records.push_back({in.payloads[begin + i], begin + i});
          if (ep.first_exc == kNoException) ep.first_exc = i;
        } else {
          codes[begin + i] = static_cast<uint32_t>(s);
        }
      }
      payload_off += WindowBytes(wn, b);
      continue;
    }

    // Patched layout: collect natural exceptions, then force compulsory
    // ones wherever the gap between two consecutive exceptions exceeds the
    // largest link (2^b).
    window_exc.clear();
    uint64_t naturals = 0;
    for (uint32_t i = 0; i < wn; ++i) {
      const int64_t s = in.syms[begin + i];
      const bool natural = s < 0 || s > max_normal;
      if (!natural) {
        codes[begin + i] = static_cast<uint32_t>(s);
        continue;
      }
      ++naturals;
      if (!window_exc.empty()) {
        uint32_t prev = window_exc.back();
        while (i - prev > max_gap) {
          prev += max_gap;
          window_exc.push_back(prev);  // compulsory exception
        }
      }
      window_exc.push_back(i);
    }

    // Dense escape: when the patched form would be no smaller than raw
    // values, store the window raw — smaller, and decode is a memcpy.
    if (DenseWins(wn, b, window_exc.size())) {
      ep.first_exc = kDenseWindow;
      payload_off += 4 * wn;
      ++n_dense;
      continue;
    }

    n_compulsory += window_exc.size() - naturals;
    for (size_t k = 0; k < window_exc.size(); ++k) {
      const uint32_t pos = window_exc[k];
      // Link to the next exception; the last link is never followed.
      const uint32_t link =
          k + 1 < window_exc.size() ? window_exc[k + 1] - pos - 1 : 0;
      codes[begin + pos] = link;
      exc_records.push_back({in.payloads[begin + pos], begin + pos});
    }
    if (!window_exc.empty()) ep.first_exc = window_exc[0];
    payload_off += WindowBytes(wn, b);
  }

  // ---- Layout ----
  const uint32_t payload_bytes = payload_off;
  const uint32_t dict_bytes =
      in.dict != nullptr ? (4u << b) : 0;  // padded to 1 << b entries

  BlockHeader hdr;
  std::memset(&hdr, 0, sizeof(hdr));
  hdr.magic = kBlockMagic;
  hdr.scheme = static_cast<uint8_t>(in.scheme);
  hdr.bit_width = static_cast<uint8_t>(b);
  hdr.flags = in.naive_layout ? kFlagNaiveLayout : 0;
  hdr.n = in.n;
  hdr.base = in.base;
  hdr.n_exceptions = static_cast<uint32_t>(exc_records.size());
  hdr.dict_count = in.dict_count;
  hdr.entry_count = entry_count;
  const uint32_t entries_offset = sizeof(BlockHeader);
  const uint32_t entries_bytes =
      entry_count * static_cast<uint32_t>(sizeof(EntryPoint));
  hdr.dict_offset = in.dict != nullptr ? entries_offset + entries_bytes : 0;
  hdr.code_offset = entries_offset + entries_bytes + dict_bytes;
  hdr.exc_offset = Align8(hdr.code_offset + payload_bytes);

  const size_t total = hdr.exc_offset +
                       sizeof(ExceptionRecord) * exc_records.size() +
                       kBlockPadBytes;
  out->assign(total, 0);
  uint8_t* base_ptr = out->data();
  std::memcpy(base_ptr, &hdr, sizeof(hdr));
  if (entry_count > 0) {
    std::memcpy(base_ptr + entries_offset, entries.data(),
                entries.size() * sizeof(EntryPoint));
  }
  if (in.dict != nullptr) {
    std::memcpy(base_ptr + hdr.dict_offset, in.dict, dict_bytes);
  }
  // Write window payloads. WriteCode's 8-byte read-modify-write only sets
  // its own bit range and writes neighbouring bytes back unchanged, so the
  // spill past a window's payload is harmless; exception records are copied
  // afterwards because the last window's spill can reach into their space.
  uint8_t* payload_ptr = base_ptr + hdr.code_offset;
  for (uint32_t w = 0; w < entry_count; ++w) {
    const uint32_t begin = w * kEntryPointStride;
    const uint32_t wn = std::min(kEntryPointStride, in.n - begin);
    uint8_t* wptr = payload_ptr + entries[w].payload_off;
    if (entries[w].first_exc == kDenseWindow) {
      std::memcpy(wptr, in.payloads + begin, 4ull * wn);
    } else {
      for (uint32_t i = 0; i < wn; ++i) {
        WriteCode(wptr, i, b, codes[begin + i]);
      }
    }
  }
  if (!exc_records.empty()) {
    std::memcpy(base_ptr + hdr.exc_offset, exc_records.data(),
                exc_records.size() * sizeof(ExceptionRecord));
  }

  if (stats != nullptr) {
    stats->n = in.n;
    stats->bit_width = b;
    stats->n_exceptions = static_cast<uint32_t>(exc_records.size());
    stats->n_compulsory_exceptions = static_cast<uint32_t>(n_compulsory);
    stats->n_dense_windows = n_dense;
    stats->compressed_bytes = total;
  }
  return OkStatus();
}

}  // namespace internal

// ---------------------------------------------------------------------------
// BlockDecoder
// ---------------------------------------------------------------------------

Status BlockDecoder::Init(const uint8_t* data, size_t size) {
  return InitInternal(data, size, size, /*meta_only=*/false);
}

Status BlockDecoder::InitMeta(const uint8_t* meta, size_t meta_size,
                              size_t full_size) {
  return InitInternal(meta, meta_size, full_size, /*meta_only=*/true);
}

Status BlockDecoder::InitInternal(const uint8_t* data, size_t size,
                                  size_t full_size, bool meta_only) {
  if (data == nullptr || size < sizeof(BlockHeader)) {
    return InvalidArgument("block too small");
  }
  if ((reinterpret_cast<uintptr_t>(data) & 3u) != 0) {
    return InvalidArgument("block must be 4-byte aligned");
  }
  BlockHeader hdr;
  std::memcpy(&hdr, data, sizeof(hdr));
  if (hdr.magic != kBlockMagic) return InvalidArgument("bad block magic");
  if (hdr.bit_width < 1 || hdr.bit_width > kMaxBitWidth) {
    return InvalidArgument("bad bit width");
  }
  if (hdr.scheme > static_cast<uint8_t>(Scheme::kPdict)) {
    return InvalidArgument("bad scheme");
  }
  const uint64_t expected_entries =
      (static_cast<uint64_t>(hdr.n) + kEntryPointStride - 1) /
      kEntryPointStride;
  if (hdr.entry_count != expected_entries) {
    return InvalidArgument("bad entry count");
  }
  const uint64_t entries_end =
      sizeof(BlockHeader) +
      sizeof(EntryPoint) * static_cast<uint64_t>(hdr.entry_count);
  const uint64_t exc_end = static_cast<uint64_t>(hdr.exc_offset) +
                           sizeof(ExceptionRecord) *
                               static_cast<uint64_t>(hdr.n_exceptions);
  if (entries_end > hdr.code_offset || hdr.code_offset > hdr.exc_offset ||
      exc_end + kBlockPadBytes > full_size) {
    return InvalidArgument("truncated block");
  }
  if (meta_only) {
    // The caller hands us only the metadata prefix; everything up to the
    // window payloads must be present, and the naive layout is rejected
    // outright (per-window exception slots live in absent payload bytes).
    if (size < hdr.code_offset) {
      return InvalidArgument("metadata prefix shorter than code offset");
    }
    if ((hdr.flags & kFlagNaiveLayout) != 0) {
      return InvalidArgument("metadata-only init on a naive-layout block");
    }
  }
  if ((hdr.exc_offset & 3u) != 0 || (hdr.dict_offset & 3u) != 0) {
    return InvalidArgument("misaligned section offset");
  }
  // Only PDICT blocks carry a dictionary. A crafted PFOR/PFOR-DELTA block
  // can place a bounds-consistent dictionary section between the entry
  // points and the (shifted) payloads; accepting it would let fuzzed
  // payloads smuggle an unvalidated section the decoder silently ignores.
  if (hdr.scheme != static_cast<uint8_t>(Scheme::kPdict) &&
      hdr.dict_offset != 0) {
    return InvalidArgument("unexpected dictionary section");
  }
  if (hdr.dict_offset != 0 &&
      (hdr.dict_offset < entries_end ||
       static_cast<uint64_t>(hdr.dict_offset) + (4ull << hdr.bit_width) >
           hdr.code_offset)) {
    return InvalidArgument("dictionary out of bounds");
  }
  if (hdr.scheme == static_cast<uint8_t>(Scheme::kPdict) &&
      hdr.bit_width > kMaxDictBitWidth) {
    return InvalidArgument("pdict bit width too large");
  }

  data_ = data;
  size_ = size;
  scheme_ = static_cast<Scheme>(hdr.scheme);
  bit_width_ = hdr.bit_width;
  naive_layout_ = (hdr.flags & kFlagNaiveLayout) != 0;
  meta_only_ = meta_only;
  base_ = hdr.base;
  n_ = hdr.n;
  n_exceptions_ = hdr.n_exceptions;
  entry_count_ = hdr.entry_count;
  meta_bytes_ = hdr.code_offset;
  code_offset_ = hdr.code_offset;
  exc_offset_ = hdr.exc_offset;
  entries_ = data + sizeof(BlockHeader);
  codes_ = meta_only ? nullptr : data + hdr.code_offset;
  exceptions_ = meta_only ? nullptr : data + hdr.exc_offset;
  dict_ = hdr.dict_offset != 0
              ? reinterpret_cast<const int32_t*>(data + hdr.dict_offset)
              : nullptr;
  if (scheme_ == Scheme::kPdict && dict_ == nullptr) {
    return InvalidArgument("pdict block without dictionary");
  }

  // Structural check of the entry points (O(entry_count), cheap relative
  // to any decode): exception starts monotone, and payload offsets exactly
  // canonical — each window's payload immediately follows the previous
  // one's, which also guarantees the contiguity DecodeAll's batched LOOP1
  // relies on. Exception record *positions* are not scanned here — that is
  // O(n_exceptions); call Validate() before decoding blocks from untrusted
  // sources.
  const uint32_t payload_bytes = hdr.exc_offset - hdr.code_offset;
  uint32_t prev_exc = 0;
  uint32_t expected_off = 0;
  for (uint32_t w = 0; w < entry_count_; ++w) {
    const Entry ep = EntryAt(w);
    const uint32_t wn = WindowLen(w);
    if (ep.exc_start < prev_exc || ep.exc_start > n_exceptions_) {
      return InvalidArgument("entry exception index out of order");
    }
    prev_exc = ep.exc_start;
    if (ep.payload_off != expected_off) {
      return InvalidArgument("non-canonical window payload offset");
    }
    expected_off += ep.first_exc == kDenseWindow
                        ? 4 * wn
                        : WindowBytes(wn, bit_width_);
    if (expected_off > payload_bytes) {
      return InvalidArgument("window payload out of bounds");
    }
    if (ep.first_exc != kNoException && ep.first_exc != kDenseWindow &&
        ep.first_exc >= wn) {
      return InvalidArgument("bad first exception slot");
    }
  }
  return OkStatus();
}

Status BlockDecoder::Validate() const {
  if (data_ == nullptr) return Internal("Init not called");
  if (meta_only_) {
    return Internal("payload not resident (metadata-only init)");
  }
  const auto* exc = reinterpret_cast<const ExceptionRecord*>(exceptions_);
  const uint32_t sentinel = (1u << bit_width_) - 1;
  for (uint32_t w = 0; w < entry_count_; ++w) {
    Entry ep;
    const uint32_t nexc = ExceptionsInWindow(w, &ep);
    const uint32_t begin = w * kEntryPointStride;
    const uint32_t wn = WindowLen(w);
    // Record positions: corruption would turn LOOP2's out[pos] into an
    // out-of-bounds write.
    for (uint32_t k = 0; k < nexc; ++k) {
      const uint32_t pos = exc[ep.exc_start + k].pos;
      if (pos < begin || pos - begin >= wn) {
        return InvalidArgument("exception position outside its window");
      }
    }
    // Naive layout: each sentinel codeword consumes one record during
    // decode; more sentinels than records would read past the exceptions
    // section.
    if (naive_layout_) {
      const uint8_t* src = codes_ + ep.payload_off;
      uint32_t sentinels = 0;
      for (uint32_t i = 0; i < wn; ++i) {
        if (ReadCode(src, i, bit_width_) == sentinel) ++sentinels;
      }
      if (sentinels != nexc) {
        return InvalidArgument("sentinel count does not match records");
      }
    }
  }
  return OkStatus();
}

int32_t BlockDecoder::WindowValueBase(uint32_t w) const {
  return EntryAt(w).value_base;
}

WindowExtent BlockDecoder::WindowExtentOf(uint32_t w) const {
  Entry ep;
  const uint32_t nexc = ExceptionsInWindow(w, &ep);
  const uint32_t wn = WindowLen(w);
  WindowExtent ext;
  ext.payload_offset = code_offset_ + ep.payload_off;
  ext.payload_bytes = ep.first_exc == kDenseWindow
                          ? 4 * wn
                          : WindowBytes(wn, bit_width_);
  ext.exc_offset = exc_offset_ +
                   static_cast<uint64_t>(ep.exc_start) *
                       sizeof(ExceptionRecord);
  ext.exc_count = nexc;
  return ext;
}

WindowView BlockDecoder::WindowViewOf(uint32_t w) const {
  assert(!meta_only_ && "payload not resident (metadata-only init)");
  WindowView view;
  if (meta_only_) return view;
  Entry ep;
  view.exc_count = ExceptionsInWindow(w, &ep);
  view.payload = codes_ + ep.payload_off;
  view.exc = exceptions_ +
             static_cast<size_t>(ep.exc_start) * sizeof(ExceptionRecord);
  view.begin = w * kEntryPointStride;
  view.len = WindowLen(w);
  view.bit_width = bit_width_;
  view.base = base_;
  view.dense = ep.first_exc == kDenseWindow;
  if (view.dense) view.exc_count = 0;
  return view;
}

void BlockDecoder::DecodeWindowDetached(uint32_t w, const uint8_t* payload,
                                        const uint8_t* exc,
                                        int32_t* dst) const {
  const uint32_t wn = WindowLen(w);
  Entry ep;
  const uint32_t nexc = ExceptionsInWindow(w, &ep);
  if (ep.first_exc == kDenseWindow) {
    std::memcpy(dst, payload, 4ull * wn);
  } else {
    if (scheme_ == Scheme::kPdict) {
      internal::GetUnpackDict(bit_width_)(payload, wn, dict_, dst);
    } else {
      internal::GetUnpackAdd(bit_width_)(payload, wn, base_, dst);
    }
    // LOOP2 from the caller's record buffer. Unlike the resident path —
    // whose record positions Validate() vets once per block — these records
    // come straight off storage at query time, so out-of-window positions
    // are clamped here: a torn or corrupt file may yield wrong values but
    // never an out-of-bounds store.
    const auto* recs = reinterpret_cast<const ExceptionRecord*>(exc);
    const uint32_t begin = w * kEntryPointStride;
    for (uint32_t k = 0; k < nexc; ++k) {
      const uint32_t slot = recs[k].pos - begin;
      if (slot < wn) dst[slot] = recs[k].value;
    }
  }
  if (scheme_ == Scheme::kPforDelta) {
    PrefixSumInPlace(dst, wn, ep.value_base);
  }
}

BlockDecoder::Entry BlockDecoder::EntryAt(uint32_t w) const {
  EntryPoint ep;
  std::memcpy(&ep, entries_ + static_cast<size_t>(w) * sizeof(EntryPoint),
              sizeof(ep));
  return Entry{ep.exc_start, ep.first_exc, ep.value_base, ep.payload_off};
}

uint32_t BlockDecoder::WindowLen(uint32_t w) const {
  const uint32_t begin = w * kEntryPointStride;
  return std::min(kEntryPointStride, n_ - begin);
}

uint32_t BlockDecoder::ExceptionsInWindow(uint32_t w, Entry* entry) const {
  *entry = EntryAt(w);
  const uint32_t next_start =
      w + 1 < entry_count_ ? EntryAt(w + 1).exc_start : n_exceptions_;
  return next_start - entry->exc_start;
}

void BlockDecoder::DecodeWindow(uint32_t w, int32_t* dst) const {
  const uint32_t wn = WindowLen(w);
  Entry ep;
  const uint32_t nexc = ExceptionsInWindow(w, &ep);
  const uint8_t* src = codes_ + ep.payload_off;

  if (ep.first_exc == kDenseWindow) {
    std::memcpy(dst, src, 4ull * wn);
  } else {
    // LOOP1: branch-free unpack (exception slots decode to garbage links;
    // LOOP2 overwrites them).
    if (scheme_ == Scheme::kPdict) {
      internal::GetUnpackDict(bit_width_)(src, wn, dict_, dst);
    } else {
      internal::GetUnpackAdd(bit_width_)(src, wn, base_, dst);
    }
    // LOOP2: patch exceptions from the materialized records — sequential
    // reads, scattered stores, no data-dependent branches.
    internal::GetPatch()(
        exceptions_ + static_cast<size_t>(ep.exc_start) *
                          sizeof(ExceptionRecord),
        nexc, w * kEntryPointStride, dst);
  }

  // LOOP3 (PFOR-DELTA): prefix-sum the patched deltas from the window's
  // running base.
  if (scheme_ == Scheme::kPforDelta) {
    PrefixSumInPlace(dst, wn, ep.value_base);
  }
}

void BlockDecoder::DecodeWindowNaive(uint32_t w, int32_t* dst) const {
  const uint32_t wn = WindowLen(w);
  Entry ep = EntryAt(w);
  const uint8_t* src = codes_ + ep.payload_off;
  const auto* excv = reinterpret_cast<const ExceptionRecord*>(exceptions_);
  const uint32_t sentinel = (1u << bit_width_) - 1;
  uint32_t j = ep.exc_start;
  uint64_t bit = 0;
  const int b = bit_width_;
  for (uint32_t i = 0; i < wn; ++i, bit += b) {
    uint64_t word;
    std::memcpy(&word, src + (bit >> 3), sizeof(word));
    const uint32_t code =
        static_cast<uint32_t>((word >> (bit & 7)) & sentinel);
    // The branch Figure 3 is about: unpredictable when the exception rate
    // nears 50%.
    if (code == sentinel) {
      dst[i] = excv[j].value;
      ++j;
    } else {
      dst[i] = base_ + static_cast<int32_t>(code);
    }
  }
  if (scheme_ == Scheme::kPforDelta) {
    PrefixSumInPlace(dst, wn, ep.value_base);
  }
}

namespace {
// Windows per decode batch: 8 windows = 4 KB of output, comfortably
// L1-resident so LOOP2 patches lines LOOP1 just wrote.
constexpr uint32_t kBatchWindows = 8;
}  // namespace

void BlockDecoder::DecodeAll(int32_t* out) const {
  assert(!meta_only_ && "payload not resident (metadata-only init)");
  if (meta_only_) return;
  if (naive_layout_) {
    for (uint32_t w = 0; w < entry_count_; ++w) {
      DecodeWindowNaive(w, out + static_cast<size_t>(w) * kEntryPointStride);
    }
    return;
  }

  const bool dict_scheme = scheme_ == Scheme::kPdict;
  const auto unpack_add = internal::GetUnpackAdd(bit_width_);
  const auto unpack_dict = internal::GetUnpackDict(bit_width_);
  const auto patch = internal::GetPatch();
  int32_t delta_acc = 0;

  // Process kBatchWindows windows per batch: LOOP1 unpacks the batch (a few
  // KB — stays in L1), LOOP2 patches the still-hot batch, LOOP3 prefix-sums
  // it. When no window in the batch is dense, their payloads are one
  // contiguous bitstream (full windows occupy exactly 16 * b bytes), so
  // LOOP1 is a single call.
  for (uint32_t w0 = 0; w0 < entry_count_; w0 += kBatchWindows) {
    const uint32_t nlanes = std::min(kBatchWindows, entry_count_ - w0);
    const uint32_t begin = w0 * kEntryPointStride;
    const uint32_t batch_n = std::min(nlanes * kEntryPointStride, n_ - begin);
    int32_t* batch_dst = out + begin;

    Entry eps[kBatchWindows];
    bool any_dense = false;
    for (uint32_t l = 0; l < nlanes; ++l) {
      eps[l] = EntryAt(w0 + l);
      any_dense = any_dense || eps[l].first_exc == kDenseWindow;
    }
    const uint32_t exc_hi = w0 + nlanes < entry_count_
                                ? EntryAt(w0 + nlanes).exc_start
                                : n_exceptions_;

    if (!any_dense) {
      // LOOP1 over the whole batch at once.
      const uint8_t* batch_src = codes_ + eps[0].payload_off;
      if (dict_scheme) {
        unpack_dict(batch_src, batch_n, dict_, batch_dst);
      } else {
        unpack_add(batch_src, batch_n, base_, batch_dst);
      }
      // LOOP2: one flat run over the batch's slice of the exception
      // records. One sequential 8-byte load and one scattered store per
      // exception — no data-dependent branches, no pointer chase.
      patch(exceptions_ + static_cast<size_t>(eps[0].exc_start) *
                              sizeof(ExceptionRecord),
            exc_hi - eps[0].exc_start, 0, out);
    } else {
      // Mixed batch: per window, memcpy dense payloads, unpack + patch the
      // rest.
      for (uint32_t l = 0; l < nlanes; ++l) {
        const uint32_t wbegin = (w0 + l) * kEntryPointStride;
        const uint32_t wn = std::min(kEntryPointStride, n_ - wbegin);
        const uint8_t* src = codes_ + eps[l].payload_off;
        int32_t* dst = out + wbegin;
        if (eps[l].first_exc == kDenseWindow) {
          std::memcpy(dst, src, 4ull * wn);
          continue;
        }
        if (dict_scheme) {
          unpack_dict(src, wn, dict_, dst);
        } else {
          unpack_add(src, wn, base_, dst);
        }
        const uint32_t wexc_hi =
            l + 1 < nlanes ? eps[l + 1].exc_start : exc_hi;
        patch(exceptions_ + static_cast<size_t>(eps[l].exc_start) *
                                sizeof(ExceptionRecord),
              wexc_hi - eps[l].exc_start, 0, out);
      }
    }

    // LOOP3 (PFOR-DELTA): prefix-sum the batch; the accumulator carries
    // across batches, and window value_bases are only needed for range
    // decodes.
    if (scheme_ == Scheme::kPforDelta) {
      delta_acc = PrefixSumInPlace(batch_dst, batch_n, delta_acc);
    }
  }
}

void BlockDecoder::DecodeNaive(int32_t* out) const { DecodeAll(out); }

void BlockDecoder::Decode(uint32_t pos, uint32_t len, int32_t* out) const {
  assert(!meta_only_ && "payload not resident (metadata-only init)");
  if (meta_only_) return;
  // Edge cases pinned by Codec.RangeDecodeHostileEdges: len == 0 and
  // pos >= n_ (including pos == n_ exactly) write nothing; pos + len past
  // n_ (including uint32 wrap, e.g. pos = n_ - 1, len = UINT32_MAX) clamps
  // to the block. The end is computed in 64-bit to make the no-wrap
  // argument local: the previous min(len, n_ - pos) form was equally
  // correct but relied on the pos < n_ guard above.
  if (pos >= n_ || len == 0) return;
  const uint64_t end =
      std::min<uint64_t>(static_cast<uint64_t>(pos) + len, n_);
  len = static_cast<uint32_t>(end - pos);
  const uint32_t w0 = pos / kEntryPointStride;
  const uint32_t w1 = (pos + len - 1) / kEntryPointStride;
  int32_t tmp[kEntryPointStride];
  int32_t* outp = out;
  for (uint32_t w = w0; w <= w1; ++w) {
    const uint32_t begin = w * kEntryPointStride;
    const uint32_t wn = WindowLen(w);
    const uint32_t lo = w == w0 ? pos - begin : 0;
    const uint32_t hi = w == w1 ? pos + len - begin : wn;
    if (lo == 0 && hi == wn) {
      if (naive_layout_) {
        DecodeWindowNaive(w, outp);
      } else {
        DecodeWindow(w, outp);
      }
    } else {
      if (naive_layout_) {
        DecodeWindowNaive(w, tmp);
      } else {
        DecodeWindow(w, tmp);
      }
      std::memcpy(outp, tmp + lo, static_cast<size_t>(hi - lo) * 4);
    }
    outp += hi - lo;
  }
}

void BlockDecoder::ExceptionMask(std::vector<bool>* mask) const {
  assert(!meta_only_ && "payload not resident (metadata-only init)");
  mask->assign(n_, false);
  if (meta_only_) return;
  const uint32_t sentinel = (1u << bit_width_) - 1;
  for (uint32_t w = 0; w < entry_count_; ++w) {
    const uint32_t begin = w * kEntryPointStride;
    const uint32_t wn = WindowLen(w);
    Entry ep;
    const uint32_t nexc = ExceptionsInWindow(w, &ep);
    const uint8_t* src = codes_ + ep.payload_off;
    if (naive_layout_) {
      for (uint32_t i = 0; i < wn; ++i) {
        if (ReadCode(src, i, bit_width_) == sentinel) {
          (*mask)[begin + i] = true;
        }
      }
    } else if (ep.first_exc == kDenseWindow) {
      // Dense windows store no exceptions.
    } else if (nexc > 0) {
      // Walk the in-slot linked exception list — the paper's traversal,
      // which the branch-trace sims model. Clamped to the window so a
      // corrupt link can't walk out of bounds.
      uint32_t cur = ep.first_exc;
      for (uint32_t k = 0; k < nexc && cur < wn; ++k) {
        (*mask)[begin + cur] = true;
        cur += ReadCode(src, cur, bit_width_) + 1;
      }
    }
  }
}

}  // namespace x100ir::compress
