// Block format and decoder for the superscalar compression schemes of
// MonetDB/X100 (§3.3): PFOR, PFOR-DELTA and PDICT.
//
// A block is a self-describing byte buffer:
//
//   [header | entry points | dictionary (PDICT) | window payloads |
//    exception records | pad]
//
// Codewords are b-bit, bit-packed per 128-value window (kEntryPointStride).
// Each window's payload starts 4-byte aligned at its entry point's offset,
// so Decode(pos, len) can jump to any window without scanning — the
// fine-granularity skipping used when merging inverted lists. Values that
// don't fit b bits are *exceptions*: their codeword slot stores the paper's
// linked exception list (distance to the next exception in the window), and
// an 8-byte record {value, position} lands in the exceptions section.
// Decompression is two tight loops:
//
//   LOOP1: branch-free bit-unpacking of all codewords (+FOR base / dict
//          gather) — no data-dependent branches at all;
//   LOOP2: patch the decoded array from the exception records — sequential
//          loads, scattered stores, no data-dependent branches; the
//          materialized positions keep the slot links off the critical
//          path, so patching pipelines instead of pointer-chasing.
//
// Two escape hatches complete the scheme:
//   - dense windows: when the patched form of a window would be no smaller
//     than raw (high exception density), the encoder stores the 128 values
//     raw and decode is a memcpy — bandwidth degrades toward memcpy speed
//     as the exception rate climbs, never toward zero;
//   - the naive layout (EncodeOptions::naive_layout) reserves the top
//     codeword as an exception sentinel and tests it per value — the
//     if-then-else decoder whose branch-miss collapse Figure 3 plots.
//
// The format assumes a little-endian host (x86/ARM); headers and codewords
// are stored in host byte order.
#ifndef X100IR_COMPRESS_CODEC_H_
#define X100IR_COMPRESS_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace x100ir::compress {

// Window granularity for entry points / skipping. Every window starts
// byte-aligned in the codeword section and has its own exception-list head.
inline constexpr uint32_t kEntryPointStride = 128;

// Maximum codeword width. 30 keeps `base + code` safely inside int32 and
// every unaligned 64-bit load self-contained (7 + 30 < 64 bits).
inline constexpr int kMaxBitWidth = 30;

// PDICT dictionaries are padded to 1 << b entries; cap the width so a
// degenerate dictionary can't explode the block.
inline constexpr int kMaxDictBitWidth = 20;

enum class Scheme : uint8_t {
  kPfor = 0,
  kPforDelta = 1,
  kPdict = 2,
};

struct EncodeOptions {
  // Codeword width in bits (1..kMaxBitWidth). 0 = choose automatically by
  // minimizing estimated compressed size.
  int bit_width = 0;

  // Use the branchy sentinel layout instead of patching (Figure 3 baseline).
  // Not supported for PDICT.
  bool naive_layout = false;

  // Use 0 as the frame-of-reference base instead of the column minimum.
  // Keeps codewords equal to raw values, which benches rely on for
  // controlled exception rates.
  bool force_base = false;
};

struct BlockStats {
  uint32_t n = 0;
  int bit_width = 0;
  // Total exceptions stored, including compulsory ones (values that fit b
  // bits but were forced into the exception list to keep a link
  // representable).
  uint32_t n_exceptions = 0;
  uint32_t n_compulsory_exceptions = 0;
  // Windows stored raw because the patched form would have been larger
  // ("compression never loses to raw", applied per 128-value window).
  uint32_t n_dense_windows = 0;
  size_t compressed_bytes = 0;

  double BitsPerValue() const {
    return n == 0 ? 0.0
                  : 8.0 * static_cast<double>(compressed_bytes) /
                        static_cast<double>(n);
  }
};

// Byte extents of one window's decode inputs within a block — what a
// storage layer must fetch (and may cache/evict at window granularity) to
// decode window w without the rest of the block resident. Offsets are from
// the block start; `payload_bytes` excludes the 8-byte unaligned-load slack
// the decode kernels need past the payload (DecodeWindowDetached's caller
// provides it, e.g. by copying into a padded scratch buffer).
struct WindowExtent {
  uint64_t payload_offset = 0;
  uint32_t payload_bytes = 0;
  uint64_t exc_offset = 0;   // first exception record of the window
  uint32_t exc_count = 0;    // 8-byte records, contiguous per window
};

// Borrowed pointers into one window's resident decode inputs — what a fused
// consumer (ir/fused_score.h) needs to unpack-and-transform a window without
// materializing the intermediate int32 vector. Only meaningful for
// full-payload inits (Init, not InitMeta) of patched-layout blocks.
// `payload` has the block's trailing slack behind it, so the LOOP1 kernels'
// over-reads stay in bounds. For kPfor, value = base + codeword (exceptions
// override with their record value); dense windows store raw int32 values
// and carry no exception records.
struct WindowView {
  const uint8_t* payload = nullptr;  // packed codewords, or raw int32 (dense)
  const uint8_t* exc = nullptr;      // this window's exception records
  uint32_t exc_count = 0;
  uint32_t begin = 0;  // block-absolute index of the window's first value
  uint32_t len = 0;    // values in the window (<= kEntryPointStride)
  int bit_width = 0;
  int32_t base = 0;    // FOR base added to every unpacked codeword
  bool dense = false;
};

class BlockDecoder {
 public:
  BlockDecoder() = default;

  // Parses the header and structurally validates it (magic, offsets,
  // entry points — O(entry_count)). Only PDICT blocks may carry a
  // dictionary section; a nonzero dict_offset under any other scheme is
  // rejected. The decoder borrows `data` (must stay alive and must be
  // 4-byte aligned — vector<uint8_t>::data() is).
  Status Init(const uint8_t* data, size_t size);

  // Metadata-only init for storage-backed blocks: `meta` holds at least the
  // first MetaBytes() of the block (header + entry points + dictionary),
  // `full_size` is the complete on-disk block size the section offsets are
  // checked against. After this, only the metadata accessors (n, scheme,
  // WindowValueBase, WindowExtentOf, MetaBytes) and DecodeWindowDetached
  // are usable — the whole-block entry points would read absent payload
  // memory, so Validate reports Internal and the Decode* methods assert in
  // debug builds / write nothing in release. Naive-layout blocks are
  // rejected: stored columns never use the naive layout.
  Status InitMeta(const uint8_t* meta, size_t meta_size, size_t full_size);

  // Header + entry points + dictionary: the prefix a storage layer keeps
  // resident to serve window-granular decodes. Valid after either init.
  size_t MetaBytes() const { return meta_bytes_; }

  // Byte offset of the exception-record section (n_exceptions() 8-byte
  // records) — the other block region a storage layer keeps resident.
  uint64_t ExcSectionOffset() const { return exc_offset_; }

  // Byte extents of window w's decode inputs (w < entry_count()).
  WindowExtent WindowExtentOf(uint32_t w) const;

  // Resident-pointer view of window w for fused decode→transform kernels.
  // Requires a full Init (asserts / returns an empty view after InitMeta)
  // and the patched layout; exception positions must have been vetted by
  // Validate() if the block is untrusted.
  WindowView WindowViewOf(uint32_t w) const;

  // Decodes window w into dst[0..WindowLen(w)) from detached buffers:
  // `payload` points at the window's payload bytes with at least 8 readable
  // bytes beyond them (copy into a padded scratch when fetching from page
  // frames), `exc` at its exc_count exception records (4-byte aligned).
  // Works after Init or InitMeta; the patched layout only.
  void DecodeWindowDetached(uint32_t w, const uint8_t* payload,
                            const uint8_t* exc, int32_t* dst) const;

  // Deep validation of the block payload (O(n)): exception record
  // positions (corruption would become an out-of-bounds write in LOOP2)
  // and, for naive blocks, the sentinel/record count match (corruption
  // would read past the exceptions section). Init skips it to keep the
  // open-and-decode hot path lean; call this before decoding blocks from
  // untrusted sources.
  Status Validate() const;

  uint32_t n() const { return n_; }
  Scheme scheme() const { return scheme_; }
  int bit_width() const { return bit_width_; }
  bool naive_layout() const { return naive_layout_; }
  int32_t base() const { return base_; }
  uint32_t n_exceptions() const { return n_exceptions_; }
  uint32_t entry_count() const { return entry_count_; }

  // Decompresses the whole block into out[0..n). Uses the two-loop patched
  // decoder (LOOP1 branch-free unpack, LOOP2 exception patching); on
  // naive-layout blocks falls back to the sentinel decoder.
  void DecodeAll(int32_t* out) const;

  // The Figure 3 baseline: per-value if-then-else on the exception sentinel.
  // Only meaningful on naive-layout blocks (delegates to DecodeAll
  // otherwise).
  void DecodeNaive(int32_t* out) const;

  // Range decode: out[0..len) = values[pos..pos+len). Touches only the
  // windows overlapping the range (cost scales with len, not block size).
  // Out-of-range [pos, pos+len) is clamped to the block: the end is
  // computed in 64-bit (pos + len may wrap uint32), len == 0 and
  // pos >= n() write nothing.
  void Decode(uint32_t pos, uint32_t len, int32_t* out) const;

  // Entry-point metadata for skip-aware consumers (skip_cursor.h): the
  // running value immediately before window w — i.e. the last value of
  // window w - 1. Meaningful for PFOR-DELTA blocks (always 0 elsewhere);
  // w must be < entry_count(). Over a sorted sub-range this is the
  // window-max oracle that lets SkipTo reject whole windows without
  // decoding them.
  int32_t WindowValueBase(uint32_t w) const;

  // mask[i] = true iff value i is stored as an exception. For branch-trace
  // simulation (DESIGN.md §3.5).
  void ExceptionMask(std::vector<bool>* mask) const;

 private:
  struct Entry {
    uint32_t exc_start;
    uint32_t first_exc;
    int32_t value_base;
    uint32_t payload_off;
  };

  // Shared by Init and InitMeta; `meta_only` relaxes the size check to the
  // metadata prefix and leaves codes_/exceptions_ null.
  Status InitInternal(const uint8_t* data, size_t size, size_t full_size,
                      bool meta_only);

  Entry EntryAt(uint32_t w) const;
  uint32_t WindowLen(uint32_t w) const;
  uint32_t ExceptionsInWindow(uint32_t w, Entry* entry) const;
  // Decodes window w fully into dst[0..WindowLen(w)).
  void DecodeWindow(uint32_t w, int32_t* dst) const;
  void DecodeWindowNaive(uint32_t w, int32_t* dst) const;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  const uint8_t* entries_ = nullptr;
  const uint8_t* codes_ = nullptr;
  // 8-byte {value, block-absolute pos} records (internal::ExceptionRecord).
  const uint8_t* exceptions_ = nullptr;
  const int32_t* dict_ = nullptr;

  Scheme scheme_ = Scheme::kPfor;
  int bit_width_ = 0;
  bool naive_layout_ = false;
  bool meta_only_ = false;
  int32_t base_ = 0;
  uint32_t n_ = 0;
  uint32_t n_exceptions_ = 0;
  uint32_t entry_count_ = 0;
  size_t meta_bytes_ = 0;
  uint64_t code_offset_ = 0;
  uint64_t exc_offset_ = 0;
};

}  // namespace x100ir::compress

#endif  // X100IR_COMPRESS_CODEC_H_
