// LOOP1 unpack kernels: the scalar per-width template table (the portable
// ground truth), the SSE/NEON shuffle-table kernels for b in {4, 8, 16},
// the generic AVX2 kernels for every b in [1, kMaxBitWidth], the LOOP2
// exception-patch kernels, plus the runtime dispatch described in unpack.h.
#include "compress/unpack.h"

#include <array>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "compress/block_layout.h"
#include "compress/codec.h"

#if defined(__x86_64__) || defined(_M_X64)
#define X100IR_UNPACK_SSE 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define X100IR_UNPACK_NEON 1
#include <arm_neon.h>
#endif

namespace x100ir::compress::internal {
namespace {

// ---------------------------------------------------------------------------
// Scalar kernels (moved verbatim from codec.cc). One unaligned 64-bit load
// per codeword; callers guarantee 8 readable bytes past the last codeword.
// ---------------------------------------------------------------------------

template <int B>
void UnpackAdd(const uint8_t* src, uint32_t n, int32_t base, int32_t* out) {
  constexpr uint64_t kMask = (1ull << B) - 1;
  const uint32_t ubase = static_cast<uint32_t>(base);
  uint64_t bit = 0;
  for (uint32_t i = 0; i < n; ++i, bit += B) {
    uint64_t word;
    std::memcpy(&word, src + (bit >> 3), sizeof(word));
    // Unsigned add so exception slots (whose codeword is a link, not a
    // value) can't hit signed overflow before LOOP2 patches them.
    out[i] = static_cast<int32_t>(
        ubase + static_cast<uint32_t>((word >> (bit & 7)) & kMask));
  }
}

template <int B>
void UnpackDict(const uint8_t* src, uint32_t n, const int32_t* dict,
                int32_t* out) {
  constexpr uint64_t kMask = (1ull << B) - 1;
  uint64_t bit = 0;
  for (uint32_t i = 0; i < n; ++i, bit += B) {
    uint64_t word;
    std::memcpy(&word, src + (bit >> 3), sizeof(word));
    // The dictionary is padded to 1 << B entries, so even link codewords in
    // exception slots (patched later by LOOP2) index in-bounds.
    out[i] = dict[(word >> (bit & 7)) & kMask];
  }
}

template <std::size_t... I>
constexpr std::array<UnpackAddFn, sizeof...(I)> MakeUnpackAddTable(
    std::index_sequence<I...>) {
  return {{&UnpackAdd<static_cast<int>(I)>...}};
}

template <std::size_t... I>
constexpr std::array<UnpackDictFn, sizeof...(I)> MakeUnpackDictTable(
    std::index_sequence<I...>) {
  return {{&UnpackDict<static_cast<int>(I)>...}};
}

constexpr auto kScalarUnpackAdd =
    MakeUnpackAddTable(std::make_index_sequence<kMaxBitWidth + 1>{});
constexpr auto kScalarUnpackDict =
    MakeUnpackDictTable(std::make_index_sequence<kMaxBitWidth + 1>{});

// ---------------------------------------------------------------------------
// SSE (SSSE3) kernels. Each processes whole 16-byte input groups — the
// group never reads past the bytes its own codewords occupy, so no extra
// slack beyond the scalar contract is needed — and hands the sub-group
// tail to the scalar kernel at a byte-aligned resume point (b=4 groups are
// 32 codes, so the resume bit offset is always a whole byte).
// ---------------------------------------------------------------------------

#if defined(X100IR_UNPACK_SSE)

__attribute__((target("ssse3"))) void UnpackAdd8Sse(const uint8_t* src,
                                                    uint32_t n, int32_t base,
                                                    int32_t* out) {
  const __m128i vbase = _mm_set1_epi32(base);
  // Shuffle tables: spread bytes j..j+3 of the load into the low byte of
  // each 32-bit lane; 0x80 lanes zero-fill (the pshufb sign-bit rule).
  const __m128i m0 = _mm_setr_epi8(0, -128, -128, -128, 1, -128, -128, -128,
                                   2, -128, -128, -128, 3, -128, -128, -128);
  const __m128i m1 = _mm_setr_epi8(4, -128, -128, -128, 5, -128, -128, -128,
                                   6, -128, -128, -128, 7, -128, -128, -128);
  const __m128i m2 = _mm_setr_epi8(8, -128, -128, -128, 9, -128, -128, -128,
                                   10, -128, -128, -128, 11, -128, -128,
                                   -128);
  const __m128i m3 = _mm_setr_epi8(12, -128, -128, -128, 13, -128, -128,
                                   -128, 14, -128, -128, -128, 15, -128,
                                   -128, -128);
  uint32_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_add_epi32(_mm_shuffle_epi8(v, m0), vbase));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                     _mm_add_epi32(_mm_shuffle_epi8(v, m1), vbase));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 8),
                     _mm_add_epi32(_mm_shuffle_epi8(v, m2), vbase));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 12),
                     _mm_add_epi32(_mm_shuffle_epi8(v, m3), vbase));
  }
  if (i < n) UnpackAdd<8>(src + i, n - i, base, out + i);
}

__attribute__((target("ssse3"))) void UnpackAdd16Sse(const uint8_t* src,
                                                     uint32_t n, int32_t base,
                                                     int32_t* out) {
  const __m128i vbase = _mm_set1_epi32(base);
  const __m128i mlo = _mm_setr_epi8(0, 1, -128, -128, 2, 3, -128, -128, 4, 5,
                                    -128, -128, 6, 7, -128, -128);
  const __m128i mhi = _mm_setr_epi8(8, 9, -128, -128, 10, 11, -128, -128, 12,
                                    13, -128, -128, 14, 15, -128, -128);
  uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 2 * i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_add_epi32(_mm_shuffle_epi8(v, mlo), vbase));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                     _mm_add_epi32(_mm_shuffle_epi8(v, mhi), vbase));
  }
  if (i < n) UnpackAdd<16>(src + 2 * i, n - i, base, out + i);
}

__attribute__((target("ssse3"))) void UnpackAdd4Sse(const uint8_t* src,
                                                    uint32_t n, int32_t base,
                                                    int32_t* out) {
  const __m128i vbase = _mm_set1_epi32(base);
  const __m128i nib = _mm_set1_epi8(0x0f);
  const __m128i m0 = _mm_setr_epi8(0, -128, -128, -128, 1, -128, -128, -128,
                                   2, -128, -128, -128, 3, -128, -128, -128);
  const __m128i m1 = _mm_setr_epi8(4, -128, -128, -128, 5, -128, -128, -128,
                                   6, -128, -128, -128, 7, -128, -128, -128);
  const __m128i m2 = _mm_setr_epi8(8, -128, -128, -128, 9, -128, -128, -128,
                                   10, -128, -128, -128, 11, -128, -128,
                                   -128);
  const __m128i m3 = _mm_setr_epi8(12, -128, -128, -128, 13, -128, -128,
                                   -128, 14, -128, -128, -128, 15, -128,
                                   -128, -128);
  uint32_t i = 0;
  for (; i + 32 <= n; i += 32) {
    // 16 bytes = 32 nibbles. LSB-first packing puts the even code in the
    // low nibble: interleaving (lo, hi) per byte restores code order.
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i / 2));
    const __m128i lo = _mm_and_si128(v, nib);
    const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), nib);
    const __m128i c0 = _mm_unpacklo_epi8(lo, hi);  // codes 0..15 as bytes
    const __m128i c1 = _mm_unpackhi_epi8(lo, hi);  // codes 16..31
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_add_epi32(_mm_shuffle_epi8(c0, m0), vbase));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                     _mm_add_epi32(_mm_shuffle_epi8(c0, m1), vbase));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 8),
                     _mm_add_epi32(_mm_shuffle_epi8(c0, m2), vbase));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 12),
                     _mm_add_epi32(_mm_shuffle_epi8(c0, m3), vbase));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 16),
                     _mm_add_epi32(_mm_shuffle_epi8(c1, m0), vbase));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 20),
                     _mm_add_epi32(_mm_shuffle_epi8(c1, m1), vbase));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 24),
                     _mm_add_epi32(_mm_shuffle_epi8(c1, m2), vbase));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 28),
                     _mm_add_epi32(_mm_shuffle_epi8(c1, m3), vbase));
  }
  if (i < n) UnpackAdd<4>(src + i / 2, n - i, base, out + i);
}

// ---------------------------------------------------------------------------
// Generic AVX2 kernels: LOOP1 unpack for *every* width b in
// [1, kMaxBitWidth], 8 values per iteration. A group of 8 b-bit codewords
// spans exactly b bytes, so group g starts byte-aligned at src + g*b. Two
// 16-byte loads — the group start and byte (4b)>>3 — are stacked into one
// 256-bit register so lane l's codeword dword is reachable by the in-lane
// vpshufb (source index <= 15 for every b <= 30); a per-lane variable
// right shift + mask then isolates the codeword. Widths b >= 26 can
// straddle the shuffled dword (shift + b > 32): a second shuffle fetches
// the spill byte and a variable left shift ORs the missing high bits in.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m128i LoadU128(const uint8_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

// Per-lane layout constants for one 8-value group at width B. Lanes 0..3
// shuffle from the low 16-byte load, lanes 4..7 from the high load at byte
// (4B)>>3; Off() is the byte offset *within the lane's half*.
template <int B>
struct Avx2Lane {
  static constexpr int Off(int l) {
    return l < 4 ? (l * B) >> 3 : ((l * B) >> 3) - ((4 * B) >> 3);
  }
  static constexpr int Shift(int l) { return (l * B) & 7; }
  // True when the codeword straddles its shuffled dword (only b >= 26).
  static constexpr bool Spill(int l) { return Shift(l) + B > 32; }
};

// Four vpshufb control bytes selecting lane l's dword (bytes Off..Off+3 of
// its half), and the spill-byte control (byte Off+4 into the lane's low
// byte, or 0x80 = zero-fill for lanes that don't straddle).
#define X100IR_AVX2_LANE(l)                           \
  static_cast<char>(Avx2Lane<B>::Off(l)),             \
      static_cast<char>(Avx2Lane<B>::Off(l) + 1),     \
      static_cast<char>(Avx2Lane<B>::Off(l) + 2),     \
      static_cast<char>(Avx2Lane<B>::Off(l) + 3)
#define X100IR_AVX2_SPILL(l)                                         \
  static_cast<char>(Avx2Lane<B>::Spill(l) ? Avx2Lane<B>::Off(l) + 4  \
                                          : -128),                   \
      -128, -128, -128

template <int B>
__attribute__((target("avx2"))) void UnpackAddAvx2(const uint8_t* src,
                                                   uint32_t n, int32_t base,
                                                   int32_t* out) {
  static_assert(B >= 1 && B <= kMaxBitWidth, "width out of range");
  constexpr uint32_t kHoff = (4 * B) >> 3;
  const __m256i shuf = _mm256_setr_epi8(
      X100IR_AVX2_LANE(0), X100IR_AVX2_LANE(1), X100IR_AVX2_LANE(2),
      X100IR_AVX2_LANE(3), X100IR_AVX2_LANE(4), X100IR_AVX2_LANE(5),
      X100IR_AVX2_LANE(6), X100IR_AVX2_LANE(7));
  const __m256i shifts = _mm256_setr_epi32(
      Avx2Lane<B>::Shift(0), Avx2Lane<B>::Shift(1), Avx2Lane<B>::Shift(2),
      Avx2Lane<B>::Shift(3), Avx2Lane<B>::Shift(4), Avx2Lane<B>::Shift(5),
      Avx2Lane<B>::Shift(6), Avx2Lane<B>::Shift(7));
  const __m256i mask = _mm256_set1_epi32(static_cast<int32_t>((1u << B) - 1));
  const __m256i vbase = _mm256_set1_epi32(base);
  // Bound full groups so the 16-byte loads stay inside the bytes the scalar
  // kernel may touch: the codewords plus the guaranteed kBlockPadBytes of
  // slack. Group g's furthest load ends at byte g*B + kHoff + 16.
  const uint64_t readable =
      (static_cast<uint64_t>(n) * B + 7) / 8 + kBlockPadBytes;
  uint64_t groups = n / 8;
  if (readable < kHoff + 16) {
    groups = 0;
  } else {
    const uint64_t fit = (readable - kHoff - 16) / B + 1;
    if (fit < groups) groups = fit;
  }
  uint32_t i = 0;
  for (uint64_t g = 0; g < groups; ++g, i += 8) {
    const uint8_t* p = src + static_cast<size_t>(g) * B;
    const __m256i v = _mm256_set_m128i(LoadU128(p + kHoff), LoadU128(p));
    __m256i w = _mm256_srlv_epi32(_mm256_shuffle_epi8(v, shuf), shifts);
    if constexpr (B >= 26) {
      const __m256i spill_shuf = _mm256_setr_epi8(
          X100IR_AVX2_SPILL(0), X100IR_AVX2_SPILL(1), X100IR_AVX2_SPILL(2),
          X100IR_AVX2_SPILL(3), X100IR_AVX2_SPILL(4), X100IR_AVX2_SPILL(5),
          X100IR_AVX2_SPILL(6), X100IR_AVX2_SPILL(7));
      // Left shift by 32 - shift places the spill byte's bit 0 exactly
      // where the right-shifted dword ran out; lanes without a spill got a
      // zero byte (0x80 control) and a shift >= 32 also yields zero.
      const __m256i lshifts = _mm256_setr_epi32(
          32 - Avx2Lane<B>::Shift(0), 32 - Avx2Lane<B>::Shift(1),
          32 - Avx2Lane<B>::Shift(2), 32 - Avx2Lane<B>::Shift(3),
          32 - Avx2Lane<B>::Shift(4), 32 - Avx2Lane<B>::Shift(5),
          32 - Avx2Lane<B>::Shift(6), 32 - Avx2Lane<B>::Shift(7));
      w = _mm256_or_si256(
          w, _mm256_sllv_epi32(_mm256_shuffle_epi8(v, spill_shuf), lshifts));
    }
    w = _mm256_add_epi32(_mm256_and_si256(w, mask), vbase);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), w);
  }
  // Scalar tail resumes byte-aligned: i is a multiple of 8, so i*B bits is
  // exactly i/8 * B bytes.
  if (i < n) {
    UnpackAdd<B>(src + static_cast<size_t>(i / 8) * B, n - i, base, out + i);
  }
}

#undef X100IR_AVX2_LANE
#undef X100IR_AVX2_SPILL

template <std::size_t I>
constexpr UnpackAddFn Avx2EntryOrNull() {
  if constexpr (I >= 1 && I <= kMaxBitWidth) {
    return &UnpackAddAvx2<static_cast<int>(I)>;
  } else {
    return nullptr;  // b == 0 (constant run) stays scalar
  }
}

template <std::size_t... I>
constexpr std::array<UnpackAddFn, sizeof...(I)> MakeAvx2UnpackAddTable(
    std::index_sequence<I...>) {
  return {{Avx2EntryOrNull<I>()...}};
}

constexpr auto kAvx2UnpackAdd =
    MakeAvx2UnpackAddTable(std::make_index_sequence<kMaxBitWidth + 1>{});

#endif  // X100IR_UNPACK_SSE

// ---------------------------------------------------------------------------
// LOOP2 exception-patch kernels. The scattered stores are inherently scalar
// (no int32 scatter below AVX-512), but the AVX2 variant deinterleaves four
// 8-byte {value, pos} records per 32-byte load so the address/value lanes
// arrive as two contiguous quads instead of eight strided loads.
// ---------------------------------------------------------------------------

void PatchScalar(const uint8_t* recs, uint32_t count, uint32_t out_base,
                 int32_t* out) {
  for (uint32_t k = 0; k < count; ++k) {
    ExceptionRecord rec;
    std::memcpy(&rec, recs + static_cast<size_t>(k) * sizeof(ExceptionRecord),
                sizeof(rec));
    out[rec.pos - out_base] = rec.value;
  }
}

#if defined(X100IR_UNPACK_SSE)

__attribute__((target("avx2"))) void PatchAvx2(const uint8_t* recs,
                                               uint32_t count,
                                               uint32_t out_base,
                                               int32_t* out) {
  const __m256i deint = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  uint32_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256i r = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        recs + static_cast<size_t>(k) * sizeof(ExceptionRecord)));
    alignas(32) int32_t lanes[8];  // [v0 v1 v2 v3 | p0 p1 p2 p3]
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                       _mm256_permutevar8x32_epi32(r, deint));
    // Positions are unique within a block, so store order is irrelevant.
    out[static_cast<uint32_t>(lanes[4]) - out_base] = lanes[0];
    out[static_cast<uint32_t>(lanes[5]) - out_base] = lanes[1];
    out[static_cast<uint32_t>(lanes[6]) - out_base] = lanes[2];
    out[static_cast<uint32_t>(lanes[7]) - out_base] = lanes[3];
  }
  if (k < count) {
    PatchScalar(recs + static_cast<size_t>(k) * sizeof(ExceptionRecord),
                count - k, out_base, out);
  }
}

#endif  // X100IR_UNPACK_SSE

// ---------------------------------------------------------------------------
// NEON kernels (AArch64: NEON is architectural, no runtime check needed).
// Same group structure as the SSE kernels: whole 16-byte groups, scalar
// tail at a byte-aligned resume point.
// ---------------------------------------------------------------------------

#if defined(X100IR_UNPACK_NEON)

void UnpackAdd8Neon(const uint8_t* src, uint32_t n, int32_t base,
                    int32_t* out) {
  const int32x4_t vbase = vdupq_n_s32(base);
  uint32_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v = vld1q_u8(src + i);
    const uint16x8_t lo = vmovl_u8(vget_low_u8(v));
    const uint16x8_t hi = vmovl_u8(vget_high_u8(v));
    vst1q_s32(out + i, vaddq_s32(vreinterpretq_s32_u32(
                                     vmovl_u16(vget_low_u16(lo))),
                                 vbase));
    vst1q_s32(out + i + 4, vaddq_s32(vreinterpretq_s32_u32(
                                         vmovl_u16(vget_high_u16(lo))),
                                     vbase));
    vst1q_s32(out + i + 8, vaddq_s32(vreinterpretq_s32_u32(
                                         vmovl_u16(vget_low_u16(hi))),
                                     vbase));
    vst1q_s32(out + i + 12, vaddq_s32(vreinterpretq_s32_u32(
                                          vmovl_u16(vget_high_u16(hi))),
                                      vbase));
  }
  if (i < n) UnpackAdd<8>(src + i, n - i, base, out + i);
}

void UnpackAdd16Neon(const uint8_t* src, uint32_t n, int32_t base,
                     int32_t* out) {
  const int32x4_t vbase = vdupq_n_s32(base);
  uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint16x8_t v = vreinterpretq_u16_u8(vld1q_u8(src + 2 * i));
    vst1q_s32(out + i, vaddq_s32(vreinterpretq_s32_u32(
                                     vmovl_u16(vget_low_u16(v))),
                                 vbase));
    vst1q_s32(out + i + 4, vaddq_s32(vreinterpretq_s32_u32(
                                         vmovl_u16(vget_high_u16(v))),
                                     vbase));
  }
  if (i < n) UnpackAdd<16>(src + 2 * i, n - i, base, out + i);
}

void UnpackAdd4Neon(const uint8_t* src, uint32_t n, int32_t base,
                    int32_t* out) {
  const int32x4_t vbase = vdupq_n_s32(base);
  const uint8x16_t nib = vdupq_n_u8(0x0f);
  uint32_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const uint8x16_t v = vld1q_u8(src + i / 2);
    const uint8x16_t lo = vandq_u8(v, nib);
    const uint8x16_t hi = vandq_u8(vshrq_n_u8(v, 4), nib);
    // LSB-first: even code in the low nibble; zip restores code order.
    const uint8x16_t c0 = vzip1q_u8(lo, hi);  // codes 0..15 as bytes
    const uint8x16_t c1 = vzip2q_u8(lo, hi);  // codes 16..31
    const uint16x8_t w0 = vmovl_u8(vget_low_u8(c0));
    const uint16x8_t w1 = vmovl_u8(vget_high_u8(c0));
    const uint16x8_t w2 = vmovl_u8(vget_low_u8(c1));
    const uint16x8_t w3 = vmovl_u8(vget_high_u8(c1));
    vst1q_s32(out + i, vaddq_s32(vreinterpretq_s32_u32(
                                     vmovl_u16(vget_low_u16(w0))),
                                 vbase));
    vst1q_s32(out + i + 4, vaddq_s32(vreinterpretq_s32_u32(
                                         vmovl_u16(vget_high_u16(w0))),
                                     vbase));
    vst1q_s32(out + i + 8, vaddq_s32(vreinterpretq_s32_u32(
                                         vmovl_u16(vget_low_u16(w1))),
                                     vbase));
    vst1q_s32(out + i + 12, vaddq_s32(vreinterpretq_s32_u32(
                                          vmovl_u16(vget_high_u16(w1))),
                                      vbase));
    vst1q_s32(out + i + 16, vaddq_s32(vreinterpretq_s32_u32(
                                          vmovl_u16(vget_low_u16(w2))),
                                      vbase));
    vst1q_s32(out + i + 20, vaddq_s32(vreinterpretq_s32_u32(
                                          vmovl_u16(vget_high_u16(w2))),
                                      vbase));
    vst1q_s32(out + i + 24, vaddq_s32(vreinterpretq_s32_u32(
                                          vmovl_u16(vget_low_u16(w3))),
                                      vbase));
    vst1q_s32(out + i + 28, vaddq_s32(vreinterpretq_s32_u32(
                                          vmovl_u16(vget_high_u16(w3))),
                                      vbase));
  }
  if (i < n) UnpackAdd<4>(src + i / 2, n - i, base, out + i);
}

#endif  // X100IR_UNPACK_NEON

SimdLevel DetectSimdLevel() {
#if defined(X100IR_UNPACK_SSE)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  return __builtin_cpu_supports("ssse3") ? SimdLevel::kSse
                                         : SimdLevel::kScalar;
#elif defined(X100IR_UNPACK_NEON)
  return SimdLevel::kNeon;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel HostSimdLevel() {
  static const SimdLevel level = DetectSimdLevel();
  return level;
}

UnpackAddFn SimdUnpackAddOrNull(int b) {
  switch (HostSimdLevel()) {
#if defined(X100IR_UNPACK_SSE)
    case SimdLevel::kAvx2:
      if (b >= 0 && b <= static_cast<int>(kMaxBitWidth)) {
        return kAvx2UnpackAdd[b];
      }
      return nullptr;
    case SimdLevel::kSse:
      if (b == 4) return &UnpackAdd4Sse;
      if (b == 8) return &UnpackAdd8Sse;
      if (b == 16) return &UnpackAdd16Sse;
      return nullptr;
#endif
#if defined(X100IR_UNPACK_NEON)
    case SimdLevel::kNeon:
      if (b == 4) return &UnpackAdd4Neon;
      if (b == 8) return &UnpackAdd8Neon;
      if (b == 16) return &UnpackAdd16Neon;
      return nullptr;
#endif
    default:
      return nullptr;
  }
}

// Default: SIMD on. X100IR_FORCE_SCALAR=1 in the environment starts the
// process with the dispatcher pinned to scalar — how CI's sanitizer
// matrix runs the same suite over both kernel families without a
// rebuild. SetSimdUnpackEnabled still overrides at runtime (tests toggle
// both ways regardless of the starting state).
bool InitialSimdEnabled() {
  const char* e = std::getenv("X100IR_FORCE_SCALAR");
  return e == nullptr || e[0] == '\0' || e[0] == '0';
}

bool g_simd_enabled = InitialSimdEnabled();

}  // namespace

UnpackAddFn ScalarUnpackAdd(int b) { return kScalarUnpackAdd[b]; }
UnpackDictFn ScalarUnpackDict(int b) { return kScalarUnpackDict[b]; }

UnpackAddFn GetUnpackAdd(int b) {
  if (g_simd_enabled) {
    if (UnpackAddFn fn = SimdUnpackAddOrNull(b)) return fn;
  }
  return kScalarUnpackAdd[b];
}

UnpackDictFn GetUnpackDict(int b) { return kScalarUnpackDict[b]; }

PatchFn ScalarPatch() { return &PatchScalar; }

PatchFn GetPatch() {
#if defined(X100IR_UNPACK_SSE)
  if (g_simd_enabled && HostSimdLevel() == SimdLevel::kAvx2) {
    return &PatchAvx2;
  }
#endif
  return &PatchScalar;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse:
      return "ssse3";
    case SimdLevel::kNeon:
      return "neon";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel ActiveSimdLevel() {
  return g_simd_enabled ? HostSimdLevel() : SimdLevel::kScalar;
}

bool SimdUnpackAvailable(int b) {
  return g_simd_enabled && SimdUnpackAddOrNull(b) != nullptr;
}

void SetSimdUnpackEnabled(bool enabled) { g_simd_enabled = enabled; }
bool SimdUnpackEnabled() { return g_simd_enabled; }

}  // namespace x100ir::compress::internal
