#include "compress/pdict.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "compress/block_layout.h"

namespace x100ir::compress {

Status PdictEncode(const int32_t* values, uint32_t n,
                   const EncodeOptions& opts, std::vector<uint8_t>* out,
                   BlockStats* stats) {
  if (n > 0 && values == nullptr) return InvalidArgument("null values");
  if (opts.naive_layout) {
    return InvalidArgument("naive layout is not supported for PDICT");
  }
  if (opts.bit_width < 0 || opts.bit_width > kMaxDictBitWidth) {
    return InvalidArgument("pdict bit_width must be in [0, 20]");
  }

  std::unordered_map<int32_t, uint32_t> freq;
  freq.reserve(1024);
  for (uint32_t i = 0; i < n; ++i) ++freq[values[i]];

  // Deterministic candidate order: frequency desc, then value asc.
  std::vector<std::pair<int32_t, uint32_t>> candidates(freq.begin(),
                                                       freq.end());
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second > b.second
                                          : a.first < b.first;
            });

  int b = opts.bit_width;
  if (b == 0) {
    b = 1;
    while (b < kMaxDictBitWidth &&
           (1ull << b) < candidates.size()) {
      ++b;
    }
  }

  const size_t dict_count =
      std::min(candidates.size(), static_cast<size_t>(1ull << b));
  // Sorted dictionary: decode order is value-stable and future PRs can
  // range-predicate directly on codes.
  std::vector<int32_t> dict_values(dict_count);
  for (size_t i = 0; i < dict_count; ++i) dict_values[i] = candidates[i].first;
  std::sort(dict_values.begin(), dict_values.end());

  std::unordered_map<int32_t, uint32_t> code_of;
  code_of.reserve(dict_count * 2);
  for (size_t i = 0; i < dict_values.size(); ++i) {
    code_of.emplace(dict_values[i], static_cast<uint32_t>(i));
  }

  // LOOP1 gathers dict[code] for *every* slot, including exception slots
  // whose codeword is a link — pad the stored dictionary to 2^b entries so
  // those gathers stay in bounds.
  std::vector<int32_t> padded_dict(static_cast<size_t>(1ull << b), 0);
  std::copy(dict_values.begin(), dict_values.end(), padded_dict.begin());

  std::vector<int64_t> syms(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto it = code_of.find(values[i]);
    syms[i] = it != code_of.end() ? static_cast<int64_t>(it->second) : -1;
  }

  internal::BlockBuildInput in;
  in.scheme = Scheme::kPdict;
  in.bit_width = b;
  in.naive_layout = false;
  in.base = 0;
  in.n = n;
  in.syms = syms.data();
  in.payloads = values;  // exceptions store the raw value
  in.dict = padded_dict.data();
  in.dict_count = static_cast<uint32_t>(dict_count);
  return internal::BuildBlock(in, out, stats);
}

}  // namespace x100ir::compress
