// Internal block wire format + the shared block builder used by the three
// encoders (pfor.cc, pfor_delta.cc, pdict.cc). Not part of the public API.
#ifndef X100IR_COMPRESS_BLOCK_LAYOUT_H_
#define X100IR_COMPRESS_BLOCK_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "compress/codec.h"

namespace x100ir::compress::internal {

inline constexpr uint32_t kBlockMagic = 0x58314330;  // "0C1X" on LE disk
inline constexpr uint32_t kNoException = 0xFFFFFFFFu;
// Trailing slack so LOOP1's unaligned 64-bit loads on the last codewords
// never read past the buffer.
inline constexpr uint32_t kBlockPadBytes = 8;

struct BlockHeader {
  uint32_t magic;
  uint8_t scheme;
  uint8_t bit_width;
  uint8_t flags;  // bit 0: naive layout
  uint8_t reserved;
  uint32_t n;
  int32_t base;
  uint32_t n_exceptions;
  uint32_t dict_count;   // logical dictionary entries (PDICT), 0 otherwise
  uint32_t entry_count;  // ceil(n / kEntryPointStride)
  uint32_t dict_offset;  // byte offsets from block start; 0 when absent
  uint32_t code_offset;
  uint32_t exc_offset;
};
static_assert(sizeof(BlockHeader) == 40, "packed header layout");

// first_exc == kDenseWindow marks a window stored raw (see EntryPoint).
inline constexpr uint32_t kDenseWindow = 0xFFFFFFFEu;

struct EntryPoint {
  uint32_t exc_start;    // index of this window's first exception record
  uint32_t first_exc;    // in-window slot of the first exception,
                         // kNoException, or kDenseWindow
  int32_t value_base;    // running value before the window (PFOR-DELTA)
  uint32_t payload_off;  // window payload, bytes from code_offset: packed
                         // codewords, or raw int32 values (dense)
};
static_assert(sizeof(EntryPoint) == 16, "packed entry layout");

// One entry in the exceptions section: the decoded value plus the
// block-absolute slot it patches. The codeword slots still carry the
// paper's linked exception list (first_exc + per-slot links), which
// ExceptionMask and the branch-trace sims walk; the materialized positions
// are what turn LOOP2 from a serial pointer chase (each link load feeds the
// next slot address) into a dependence-free sequential scan — one 8-byte
// load, one scattered store per exception, pipelining at store throughput.
struct ExceptionRecord {
  int32_t value;
  uint32_t pos;
};
static_assert(sizeof(ExceptionRecord) == 8, "packed exception layout");

inline constexpr uint8_t kFlagNaiveLayout = 1;

// Bytes occupied by a window of `wn` packed codewords at width b, padded to
// 4-byte alignment so raw (dense) windows interleave cleanly in the same
// payload section. Full windows occupy exactly 16*b bytes (128*b bits).
inline uint32_t WindowBytes(uint32_t wn, int b) {
  return ((wn * static_cast<uint32_t>(b) + 7) / 8 + 3u) & ~3u;
}

// A window is stored dense (raw int32 payload, no codewords, no exception
// records) whenever that is no larger than the patched form — the
// "compression must never lose to raw" rule applied per window. Decode-side
// a dense window is a memcpy, so bandwidth degrades toward memcpy speed —
// not toward zero — as the exception rate climbs.
inline bool DenseWins(uint32_t wn, int b, size_t nexc) {
  return 4u * wn < WindowBytes(wn, b) + sizeof(ExceptionRecord) * nexc;
}

// Everything BuildBlock needs, pre-transformed by the scheme encoder:
//   syms[i]     — the codeword-domain symbol (value-base, delta-base, or
//                 dictionary code; any value outside [0, max_code] marks a
//                 natural exception; pdict uses -1 for out-of-dict),
//   payloads[i] — the 32-bit value to store in the exceptions section if
//                 position i ends up an exception (raw value or raw delta).
struct BlockBuildInput {
  Scheme scheme = Scheme::kPfor;
  int bit_width = 0;  // resolved, 1..kMaxBitWidth
  bool naive_layout = false;
  int32_t base = 0;
  uint32_t n = 0;
  const int64_t* syms = nullptr;
  const int32_t* payloads = nullptr;
  // Per-window running bases (PFOR-DELTA); nullptr = all zero.
  const int32_t* window_value_bases = nullptr;
  // Padded dictionary of (1 << bit_width) int32 entries (PDICT only).
  const int32_t* dict = nullptr;
  uint32_t dict_count = 0;
};

Status BuildBlock(const BlockBuildInput& in, std::vector<uint8_t>* out,
                  BlockStats* stats);

// Auto width selection: minimizes estimated bytes (codewords plus
// sizeof(ExceptionRecord) per natural exception; compulsory exceptions and
// dense-window savings are ignored in the estimate).
int ChooseBitWidth(const int64_t* syms, uint32_t n, bool naive_layout);

}  // namespace x100ir::compress::internal

#endif  // X100IR_COMPRESS_BLOCK_LAYOUT_H_
