// Skip-aware access to one term's postings — the adapters between the
// compressed TD columns (index_builder.h) and the streaming operators:
//
//   DocidSkipCursor — vec::SkipCursor over the term's slice of TD.docid,
//     backed by compress::SortedRangeCursor so SkipTo decodes only windows
//     that can contain the probe. Decode/skip counters fold into the plan's
//     ExecStats at Close.
//   TfWindowReader — random access to TD.tf at posting positions, cached
//     per 128-value window. tf is only read for postings that actually get
//     scored, so a skipped docid window never costs a tf decode — and a
//     MaxScore probe that misses costs neither.
//
// Both are per-query objects over borrowed index state (the index must
// outlive them), like SliceVectorSource.
#ifndef X100IR_IR_POSTING_CURSOR_H_
#define X100IR_IR_POSTING_CURSOR_H_

#include <algorithm>
#include <cstdint>

#include "common/status.h"
#include "compress/skip_cursor.h"
#include "ir/index_builder.h"
#include "vec/streaming_merge.h"

namespace x100ir::ir {

class DocidSkipCursor : public vec::SkipCursor {
 public:
  // Cursor over postings [start + offset, start + doc_freq) of `term`.
  // A nonzero offset resumes mid-list — how MaxScore turns a demoted
  // term's already-advanced stream into a probe cursor.
  Status Init(const InvertedIndex* index, uint32_t term,
              uint64_t offset = 0) {
    if (index == nullptr) return InvalidArgument("null index");
    if (term >= index->vocab_size()) {
      return InvalidArgument("term outside vocabulary");
    }
    const TermInfo& info = index->term(term);
    if (offset > info.doc_freq) {
      return InvalidArgument("posting offset past the list");
    }
    return cursor_.Init(index->docid_decoder(), info.posting_start + offset,
                        info.posting_start + info.doc_freq);
  }

  bool AtEnd() override { return cursor_.AtEnd(); }
  int32_t value() override { return cursor_.value(); }
  uint64_t position() override { return cursor_.position(); }
  bool Next() override { return cursor_.Next(); }
  bool SkipTo(int32_t target) override { return cursor_.SkipTo(target); }

  void FoldStats(vec::ExecStats* stats) override {
    stats->windows_decoded += cursor_.stats().windows_decoded;
    stats->windows_skipped += cursor_.stats().windows_skipped;
    stats->windows_blockmax_skipped +=
        cursor_.stats().windows_blockmax_skipped;
  }

  const compress::SkipStats& skip_stats() const { return cursor_.stats(); }

  // The underlying range cursor, for window-granular drivers (the Block-Max
  // MaxScore refill loop: CurrentWindowIndex / SkipCurrentWindowBlockMax /
  // CurrentRunView / AdvanceTo).
  compress::SortedRangeCursor& range_cursor() { return cursor_; }

 private:
  compress::SortedRangeCursor cursor_;
};

class TfWindowReader {
 public:
  // The source must outlive the reader (the index's whole-table tf column).
  void Init(const vec::VectorSource* tf_source) {
    src_ = tf_source;
    win_base_ = kNoWindow;
    windows_decoded_ = 0;
  }

  // tf at absolute posting position `pos` (caller guarantees in-range).
  int32_t TfAt(uint64_t pos) {
    const uint64_t base = pos & ~static_cast<uint64_t>(kStride - 1);
    if (base != win_base_) {
      win_base_ = base;
      const uint32_t len = static_cast<uint32_t>(
          std::min<uint64_t>(kStride, src_->size() - base));
      src_->Read(base, len, win_);
      ++windows_decoded_;
    }
    return win_[pos - win_base_];
  }

  uint64_t windows_decoded() const { return windows_decoded_; }

 private:
  static constexpr uint32_t kStride = compress::kEntryPointStride;
  static constexpr uint64_t kNoWindow = ~0ull;

  const vec::VectorSource* src_ = nullptr;
  uint64_t win_base_ = kNoWindow;
  int32_t win_[kStride];
  uint64_t windows_decoded_ = 0;
};

}  // namespace x100ir::ir

#endif  // X100IR_IR_POSTING_CURSOR_H_
