#include "ir/segment.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/string_util.h"
#include "ir/index_meta.h"
#include "storage/crash_point.h"

namespace x100ir::ir {
namespace {

Status WriteSegmentMeta(const std::string& path, uint32_t seg_id,
                        const std::vector<int32_t>& global_docids) {
  SegmentMetaHeader hdr;
  hdr.seg_id = seg_id;
  hdr.num_docs = static_cast<uint32_t>(global_docids.size());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IOError("cannot create " + path);
  bool ok = std::fwrite(&hdr, sizeof(hdr), 1, f) == 1;
  ok = ok && (global_docids.empty() ||
              std::fwrite(global_docids.data(),
                          global_docids.size() * sizeof(int32_t), 1, f) == 1);
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return IOError("short write to " + path);
  return OkStatus();
}

Status ReadSegmentMeta(const std::string& path, uint32_t expect_seg_id,
                       uint32_t expect_num_docs,
                       std::vector<int32_t>* global_docids) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return NotFound("cannot open " + path);
  SegmentMetaHeader hdr;
  bool ok = std::fread(&hdr, sizeof(hdr), 1, f) == 1;
  ok = ok && hdr.magic == SegmentMetaHeader::kMagic &&
       hdr.version == SegmentMetaHeader::kVersion &&
       hdr.seg_id == expect_seg_id && hdr.num_docs == expect_num_docs;
  if (ok) {
    global_docids->resize(hdr.num_docs);
    ok = hdr.num_docs == 0 ||
         std::fread(global_docids->data(), hdr.num_docs * sizeof(int32_t), 1,
                    f) == 1;
  }
  std::fclose(f);
  if (!ok) return IOError("bad or torn segment meta " + path);
  for (uint32_t i = 1; i < hdr.num_docs; ++i) {
    if ((*global_docids)[i] <= (*global_docids)[i - 1]) {
      return IOError("segment docid map not strictly increasing in " + path);
    }
  }
  return OkStatus();
}

}  // namespace

Status Segment::OpenBase(const Corpus* corpus, const std::string& dir,
                         BuildStats* stats, const StorageBinding& binding,
                         std::unique_ptr<Segment>* out) {
  if (corpus == nullptr) return InvalidArgument("base segment needs a corpus");
  auto seg = std::unique_ptr<Segment>(new Segment());
  seg->seg_id_ = 0;
  seg->dir_ = dir;
  seg->file_id_base_ = binding.file_id_base;
  seg->base_layout_ = true;
  seg->base_corpus_ = corpus;
  X100IR_RETURN_IF_ERROR(
      seg->index_.BuildFromCorpusShared(*corpus, dir, stats, binding));
  *out = std::move(seg);
  return OkStatus();
}

Status Segment::Build(std::vector<std::vector<DocTerm>> docs,
                      std::vector<int32_t> global_docids, uint32_t vocab_size,
                      const std::string& dir, const StorageBinding& binding,
                      uint32_t seg_id, std::unique_ptr<Segment>* out) {
  if (docs.size() != global_docids.size()) {
    return InvalidArgument("segment build: docs / docid map size mismatch");
  }
  // A simulated crash freezes the disk: the background merge must not keep
  // materializing column files after the power cut.
  if (storage::CrashedNow()) return IOError("simulated crash");
  for (size_t i = 1; i < global_docids.size(); ++i) {
    if (global_docids[i] <= global_docids[i - 1]) {
      return InvalidArgument(
          "segment build: global docids must be strictly increasing");
    }
  }
  auto seg = std::unique_ptr<Segment>(new Segment());
  seg->seg_id_ = seg_id;
  seg->dir_ = dir;
  seg->file_id_base_ = binding.file_id_base;
  seg->owned_corpus_ = std::make_unique<Corpus>();
  X100IR_RETURN_IF_ERROR(Corpus::FromDocTerms(std::move(docs), vocab_size,
                                              seg->owned_corpus_.get()));
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return IOError("cannot create segment dir " + dir);
  }
  BuildStats stats;
  X100IR_RETURN_IF_ERROR(seg->index_.BuildFromCorpusShared(
      *seg->owned_corpus_, dir, &stats, binding));
  seg->docid_map_ = std::move(global_docids);
  if (!dir.empty()) {
    X100IR_RETURN_IF_ERROR(WriteSegmentMeta(dir + "/" + kSegmentMetaFile,
                                            seg_id, seg->docid_map_));
  }
  *out = std::move(seg);
  return OkStatus();
}

Status Segment::Load(const std::string& dir, const StorageBinding& binding,
                     uint32_t seg_id, uint32_t expect_num_docs,
                     std::unique_ptr<Segment>* out) {
  auto seg = std::unique_ptr<Segment>(new Segment());
  seg->seg_id_ = seg_id;
  seg->dir_ = dir;
  seg->file_id_base_ = binding.file_id_base;
  X100IR_RETURN_IF_ERROR(seg->index_.LoadFromDir(dir, binding));
  if (seg->index_.num_docs() != expect_num_docs) {
    return IOError(StrFormat("segment %u holds %u docs, manifest says %u",
                             seg_id, seg->index_.num_docs(),
                             expect_num_docs));
  }
  X100IR_RETURN_IF_ERROR(ReadSegmentMeta(dir + "/" + kSegmentMetaFile, seg_id,
                                         expect_num_docs, &seg->docid_map_));
  // Reconstruct the forward store by inverting the postings. Terms ascend
  // in the outer loop, so each rebuilt document is normalized by
  // construction; the doclens FromDocTerms recomputes are cross-checked
  // against the persisted doclen column below.
  const uint32_t n = seg->index_.num_docs();
  std::vector<std::vector<DocTerm>> docs(n);
  std::vector<int32_t> docids, tfs;
  for (uint32_t t = 0; t < seg->index_.vocab_size(); ++t) {
    if (seg->index_.term(t).doc_freq == 0) continue;
    X100IR_RETURN_IF_ERROR(seg->index_.DecodePostings(t, &docids, &tfs));
    for (size_t i = 0; i < docids.size(); ++i) {
      if (docids[i] < 0 || static_cast<uint32_t>(docids[i]) >= n) {
        return IOError("segment postings reference an out-of-range docid");
      }
      docs[docids[i]].push_back({t, tfs[i]});
    }
  }
  seg->owned_corpus_ = std::make_unique<Corpus>();
  X100IR_RETURN_IF_ERROR(Corpus::FromDocTerms(
      std::move(docs), seg->index_.vocab_size(), seg->owned_corpus_.get()));
  if (seg->owned_corpus_->doc_lens() != seg->index_.doc_lens()) {
    return IOError("segment postings disagree with the doclen column");
  }
  *out = std::move(seg);
  return OkStatus();
}

int32_t Segment::LocalOf(int32_t global) const {
  if (docid_map_.empty()) {
    return global >= 0 && static_cast<uint32_t>(global) < num_docs() ? global
                                                                     : -1;
  }
  const auto it =
      std::lower_bound(docid_map_.begin(), docid_map_.end(), global);
  if (it == docid_map_.end() || *it != global) return -1;
  return static_cast<int32_t>(it - docid_map_.begin());
}

Segment::~Segment() {
  // Order matters: drop the pages and id→File bindings from the shared
  // pool first (closing files out from under registered ids would leave
  // the pool dangling), then the files themselves can go.
  index_.DetachSharedStorage();
  if (!retire_.load(std::memory_order_acquire) || dir_.empty()) return;
  // After a simulated crash nothing touches disk — not even retirement.
  // Leftover files of never-committed segments are swept on the next Open.
  if (storage::CrashedNow()) return;
  std::error_code ec;
  if (base_layout_) {
    // The base segment shares the database root with the manifest — delete
    // exactly its own files, never the directory.
    for (const char* name :
         {kDocidRawFile, kDocidCompressedFile, kTfRawFile, kTfCompressedFile,
          kScoreF32File, kScoreQ8File, kTermsFile, kDoclenFile,
          kIndexMetaFile}) {
      std::filesystem::remove(dir_ + "/" + name, ec);
    }
  } else {
    std::filesystem::remove_all(dir_, ec);
  }
}

}  // namespace x100ir::ir
