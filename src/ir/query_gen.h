// Query batches for the paper's two experiment kinds (bench_util.h):
//
//   - *eval* queries — one per planted topic, drawn from the topic's term
//     set, carrying the topic id so p@20 can be scored against qrels (the
//     paper's "subset of 50 preselected queries");
//   - *efficiency* queries — a large unjudged batch with the short,
//     mid-rank-skewed term profile of a web query log (the paper's 20,000
//     efficiency-task queries, avg 2.3 terms).
//
// Generation is deterministic from (corpus, options.seed); repeated calls
// return identical batches.
#ifndef X100IR_IR_QUERY_GEN_H_
#define X100IR_IR_QUERY_GEN_H_

#include <cstdint>
#include <vector>

#include "ir/corpus.h"

namespace x100ir::ir {

struct QueryGenOptions {
  uint32_t num_eval_queries = 50;
  uint32_t num_efficiency_queries = 1000;
  uint64_t seed = 7;
};

struct Query {
  std::vector<uint32_t> terms;  // distinct term ids
  int32_t topic = -1;           // qrels topic for eval queries, else -1
};

class QueryGenerator {
 public:
  // The corpus must outlive the generator.
  QueryGenerator(const Corpus& corpus, const QueryGenOptions& opts)
      : corpus_(&corpus), opts_(opts) {}

  // Topic queries: 2..terms_per_topic terms from the topic's term set.
  // Topics are used round-robin when num_eval_queries exceeds the topic
  // count. Empty when the corpus has no planted topics.
  std::vector<Query> EvalQueries() const;

  // Unjudged speed-test batch, ~2.3 terms per query, terms Zipf-skewed but
  // with the head of the vocabulary damped (real query logs are not made
  // of stopwords).
  std::vector<Query> EfficiencyQueries() const;

 private:
  const Corpus* corpus_;
  QueryGenOptions opts_;
};

}  // namespace x100ir::ir

#endif  // X100IR_IR_QUERY_GEN_H_
