// Engine-internal plan operators shared by the ranked-run paths
// (search_engine.cc) and the storage-era runs (storage_runs.cc):
//
//   Bm25ScoreOperator — per-term map: gathers doclen for the vector's
//     docids and runs the fused MapBm25 kernel (ir/bm25.h), emitting
//     (docid, score). The docid column passes through zero-copy.
//   MergeUnionOperator — streaming N-ary union of docid-sorted children,
//     vector-at-a-time: distinct docids (BoolOR) or per-docid score sums
//     (the BM25 disjunction). Children decode lazily, so a union never
//     materializes whole posting lists — constant memory per child.
//
// Moved out of search_engine.cc when storage/ landed: the Table 2 runs
// execute the same plan shapes over cold columns (the paper's flexibility
// claim), so the operators are shared rather than duplicated. Not part of
// the public API.
#ifndef X100IR_IR_PLAN_OPS_H_
#define X100IR_IR_PLAN_OPS_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/string_util.h"
#include "ir/bm25.h"
#include "ir/search_engine.h"
#include "vec/scan.h"
#include "vec/vector.h"

namespace x100ir::ir {

class Bm25ScoreOperator : public vec::Operator {
 public:
  Bm25ScoreOperator(vec::ExecContext* ctx, vec::OperatorPtr child, float idf,
                    Bm25Params params, const int32_t* doclens,
                    float inv_avgdl)
      : ctx_(ctx),
        child_(std::move(child)),
        idf_(idf),
        params_(params),
        doclens_(doclens),
        inv_avgdl_(inv_avgdl) {}

  Status Open() override {
    if (child_ == nullptr) return InvalidArgument("bm25-score needs a child");
    if (ctx_ == nullptr) {
      return InvalidArgument("bm25-score needs an execution context");
    }
    X100IR_RETURN_IF_ERROR(ctx_->Validate());
    X100IR_RETURN_IF_ERROR(child_->Open());
    const vec::Schema& cs = child_->schema();
    if (cs.NumColumns() != 2 || cs.type(0) != vec::TypeId::kI32 ||
        cs.type(1) != vec::TypeId::kI32) {
      return InvalidArgument(
          "bm25-score child must produce (docid i32, tf i32)");
    }
    schema_ = vec::Schema();
    schema_.Add("docid", vec::TypeId::kI32);
    schema_.Add("score", vec::TypeId::kF32);
    doclen_vec_.Reset(vec::TypeId::kI32, ctx_->vector_size);
    score_vec_.Reset(vec::TypeId::kF32, ctx_->vector_size);
    return OkStatus();
  }

  Status Next(vec::Batch** out) override {
    if (out == nullptr) return InvalidArgument("null output");
    vec::Batch* b = nullptr;
    X100IR_RETURN_IF_ERROR(child_->Next(&b));
    if (b == nullptr) {
      *out = nullptr;
      return OkStatus();
    }
    const int32_t* docids = b->columns[0]->Data<int32_t>();
    const int32_t* tfs = b->columns[1]->Data<int32_t>();
    int32_t* dl = doclen_vec_.Data<int32_t>();
    // Doclen gather, then the fused scoring kernel; both honor the child's
    // selection vector (scans emit dense batches, but the operator contract
    // does not require it).
    if (b->sel == nullptr) {
      for (uint32_t i = 0; i < b->count; ++i) dl[i] = doclens_[docids[i]];
    } else {
      for (uint32_t j = 0; j < b->sel_count; ++j) {
        const vec::sel_t i = b->sel[j];
        dl[i] = doclens_[docids[i]];
      }
    }
    MapBm25Sel(b->count, b->sel, b->sel_count, score_vec_.Data<float>(), tfs,
               dl, idf_, params_.k1, params_.b, inv_avgdl_);
    ++ctx_->stats.primitive_calls;
    // Zero-copy docid passthrough: the child's vector stays valid until
    // its next Next(), which happens only after ours.
    batch_.columns = {b->columns[0], &score_vec_};
    batch_.count = b->count;
    batch_.sel = b->sel;
    batch_.sel_count = b->sel_count;
    *out = &batch_;
    return OkStatus();
  }

  void Close() override {
    if (child_ != nullptr) child_->Close();
  }

 private:
  vec::ExecContext* ctx_;
  vec::OperatorPtr child_;
  float idf_;
  Bm25Params params_;
  const int32_t* doclens_;
  float inv_avgdl_;
  vec::Vector doclen_vec_, score_vec_;
  vec::Batch batch_;
};

// Streaming N-ary union on column 0 (i32 docid, strictly increasing per
// child). Output: distinct docids ascending; with sum_scores, column 1
// carries the sum of the children's scores for that docid.
class MergeUnionOperator : public vec::Operator {
 public:
  MergeUnionOperator(vec::ExecContext* ctx,
                     std::vector<vec::OperatorPtr> children, bool sum_scores)
      : ctx_(ctx), children_(std::move(children)), sum_scores_(sum_scores) {}

  Status Open() override {
    if (children_.empty()) {
      return InvalidArgument("union needs at least one child");
    }
    if (ctx_ == nullptr) {
      return InvalidArgument("union needs an execution context");
    }
    X100IR_RETURN_IF_ERROR(ctx_->Validate());
    schema_ = vec::Schema();
    schema_.Add("docid", vec::TypeId::kI32);
    if (sum_scores_) schema_.Add("score", vec::TypeId::kF32);
    states_.assign(children_.size(), ChildState());
    for (size_t c = 0; c < children_.size(); ++c) {
      if (children_[c] == nullptr) return InvalidArgument("null child");
      X100IR_RETURN_IF_ERROR(children_[c]->Open());
      const vec::Schema& cs = children_[c]->schema();
      const uint32_t want = sum_scores_ ? 2 : 1;
      if (cs.NumColumns() < want || cs.type(0) != vec::TypeId::kI32 ||
          (sum_scores_ && cs.type(1) != vec::TypeId::kF32)) {
        return InvalidArgument(StrFormat(
            "union child %zu must lead with docid i32%s", c,
            sum_scores_ ? " and carry a f32 score" : ""));
      }
      X100IR_RETURN_IF_ERROR(Refill(c));
    }
    out_docid_.Reset(vec::TypeId::kI32, ctx_->vector_size);
    if (sum_scores_) out_score_.Reset(vec::TypeId::kF32, ctx_->vector_size);
    batch_.columns.clear();
    batch_.columns.push_back(&out_docid_);
    if (sum_scores_) batch_.columns.push_back(&out_score_);
    return OkStatus();
  }

  Status Next(vec::Batch** out) override {
    if (out == nullptr) return InvalidArgument("null output");
    int32_t* out_d = out_docid_.Data<int32_t>();
    float* out_s = sum_scores_ ? out_score_.Data<float>() : nullptr;
    uint32_t filled = 0;
    while (filled < ctx_->vector_size) {
      // Head of the merge: smallest live docid (term counts are tiny, a
      // linear sweep beats a heap).
      int32_t min_d = 0;
      bool any = false;
      for (const ChildState& st : states_) {
        if (st.cur == nullptr) continue;
        const int32_t d = st.docids[st.off];
        if (!any || d < min_d) {
          min_d = d;
          any = true;
        }
      }
      if (!any) break;
      float sum = 0.0f;
      for (size_t c = 0; c < states_.size(); ++c) {
        ChildState& st = states_[c];
        if (st.cur == nullptr || st.docids[st.off] != min_d) continue;
        if (sum_scores_) sum += st.scores[st.off];
        X100IR_RETURN_IF_ERROR(Advance(c, min_d));
      }
      out_d[filled] = min_d;
      if (out_s != nullptr) out_s[filled] = sum;
      ++filled;
    }
    if (filled == 0) {
      *out = nullptr;
      return OkStatus();
    }
    batch_.count = filled;
    batch_.sel = nullptr;
    batch_.sel_count = 0;
    *out = &batch_;
    return OkStatus();
  }

  void Close() override {
    for (auto& child : children_) {
      if (child != nullptr) child->Close();
    }
  }

 private:
  struct ChildState {
    vec::Batch* cur = nullptr;  // null = exhausted or awaiting refill
    uint32_t off = 0;
    const int32_t* docids = nullptr;
    const float* scores = nullptr;
  };

  Status Refill(size_t c) {
    ChildState& st = states_[c];
    for (;;) {
      vec::Batch* b = nullptr;
      X100IR_RETURN_IF_ERROR(children_[c]->Next(&b));
      if (b == nullptr) {
        st.cur = nullptr;
        return OkStatus();
      }
      if (b->sel != nullptr) {
        return Internal("union children must emit dense batches");
      }
      if (b->count == 0) continue;
      st.cur = b;
      st.off = 0;
      st.docids = b->columns[0]->Data<int32_t>();
      st.scores = sum_scores_ ? b->columns[1]->Data<float>() : nullptr;
      return OkStatus();
    }
  }

  Status Advance(size_t c, int32_t prev_docid) {
    ChildState& st = states_[c];
    if (++st.off >= st.cur->count) {
      X100IR_RETURN_IF_ERROR(Refill(c));
    }
    if (st.cur != nullptr && st.docids[st.off] <= prev_docid) {
      return InvalidArgument("union input docids must be strictly increasing");
    }
    return OkStatus();
  }

  vec::ExecContext* ctx_;
  std::vector<vec::OperatorPtr> children_;
  bool sum_scores_;
  std::vector<ChildState> states_;
  vec::Vector out_docid_, out_score_;
  vec::Batch batch_;
};

}  // namespace x100ir::ir

#endif  // X100IR_IR_PLAN_OPS_H_
