#include "ir/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/string_util.h"
#include "ir/index_meta.h"
#include "storage/crash_point.h"
#include "storage/wal.h"

namespace x100ir::ir {
namespace {

// Copy-on-write tombstone set: never mutates the shared current bitmap
// (snapshots born earlier keep reading their version), publishes a copy
// with one more bit. `capacity_docs` is the owning structure's current doc
// count: the copy is sized to cover ALL of it, not just the highest set
// bit, because readers (TombstoneTest in the engine and the delta scans)
// index by arbitrary live docids with no bounds check of their own — a
// short bitmap would be an out-of-bounds read, not a "not deleted".
TombstoneBits SetBitCow(const TombstoneBits& cur, uint32_t bit,
                        uint32_t capacity_docs) {
  const size_t need =
      std::max<size_t>(bit / 64 + 1, capacity_docs / 64 + 1);
  auto next = std::make_shared<std::vector<uint64_t>>(
      cur != nullptr ? *cur : std::vector<uint64_t>());
  if (next->size() < need) next->resize(need, 0);
  (*next)[bit / 64] |= 1ull << (bit % 64);
  return next;
}

std::string SegDir(const std::string& root, uint32_t seg_id) {
  return root + "/seg_" + std::to_string(seg_id);
}

// Deletes every on-disk trace of segmented state under `root` (manifest
// and seg_* directories) — the clean-rebuild fallback for a torn or
// mismatched manifest. The base segment's column files stay: the fresh
// open will reuse or rebuild them through the normal fingerprint check.
void RemoveSegmentedState(const std::string& root) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::remove(root + "/" + kManifestFile, ec);
  fs::remove(root + "/" + kManifestTmpFile, ec);
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (entry.is_directory(ec) &&
        entry.path().filename().string().rfind("seg_", 0) == 0) {
      fs::remove_all(entry.path(), ec);
    }
  }
}

// Sweeps seg_* directories the adopted manifest does not reference, plus a
// stranded MANIFEST.tmp — the debris a crash between segment build and
// manifest commit (or between commit and retirement) leaves behind. Safe
// because every committed segment is listed in the manifest by definition,
// and seg-id reuse after a crashed merge overwrites rather than trips.
void SweepUnreferencedSegments(const std::string& root,
                               const std::vector<uint32_t>& live_ids) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::remove(root + "/" + kManifestTmpFile, ec);
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    const std::string name = entry.path().filename().string();
    if (!entry.is_directory(ec) || name.rfind("seg_", 0) != 0) continue;
    uint32_t id = 0;
    bool numeric = name.size() > 4;
    for (size_t i = 4; numeric && i < name.size(); ++i) {
      numeric = name[i] >= '0' && name[i] <= '9';
      if (numeric) id = id * 10 + static_cast<uint32_t>(name[i] - '0');
    }
    if (!numeric) continue;
    if (std::find(live_ids.begin(), live_ids.end(), id) == live_ids.end()) {
      fs::remove_all(entry.path(), ec);
    }
  }
}

}  // namespace

SnapshotManager::~SnapshotManager() {
  // Joining here (not relying on merge_pool_'s own destructor) makes the
  // shutdown order explicit: the background merge finishes before any
  // member it touches starts dying.
  merge_pool_.Shutdown();
}

StorageBinding SnapshotManager::BindingFor(uint32_t seg_id) const {
  StorageBinding b;
  b.pool = pool_.get();
  b.file_id_base = seg_id * IndexStorage::kFilesPerIndex;
  return b;
}

Status SnapshotManager::Open(const Corpus* corpus, const std::string& dir,
                             const storage::StorageOptions& storage,
                             BuildStats* stats) {
  if (corpus == nullptr) return InvalidArgument("snapshot manager needs a corpus");
  if (stats == nullptr) return InvalidArgument("null build stats");
  corpus_ = corpus;
  dir_ = dir;
  storage_opts_ = storage;
  if (!dir_.empty()) {
    disk_ = std::make_unique<storage::SimulatedDisk>(storage.disk);
    pool_ = std::make_unique<storage::BufferManager>(
        storage.pool_bytes, disk_.get(), storage.page_bytes, storage.shards);
    pool_->set_retry_policy(storage.retry);
  }

  std::lock_guard<std::mutex> lock(mu_);
  Status adopted = dir_.empty() ? NotFound("in-memory database")
                                : TryLoadManifest(stats);
  if (adopted.ok()) {
    // Clear the debris of crashed merges: built-but-uncommitted segment
    // dirs and a stranded MANIFEST.tmp.
    std::vector<uint32_t> live_ids;
    for (const Snapshot::SegmentRead& sr : segments_) {
      live_ids.push_back(sr.seg->seg_id());
    }
    SweepUnreferencedSegments(dir_, live_ids);
  } else {
    // No manifest (fresh/legacy directory) or an unusable one (torn swap,
    // corpus mismatch, torn segment): clean rebuild from the corpus. The
    // corpus is generative, so this loses nothing that was ever merged
    // under a *valid* manifest — only state the torn write already lost.
    // An *unusable* (vs merely absent) manifest also invalidates the WAL:
    // its records were framed against state the rebuild does not restore.
    if (!dir_.empty()) {
      RemoveSegmentedState(dir_);
      if (adopted.code() != StatusCode::kNotFound) {
        storage::Wal::RemoveFiles(dir_);
      }
    }
    segments_.clear();
    std::unique_ptr<Segment> base;
    X100IR_RETURN_IF_ERROR(
        Segment::OpenBase(corpus_, dir_, stats, BindingFor(0), &base));
    segments_.push_back({std::shared_ptr<Segment>(std::move(base)), nullptr});
    epoch_ = 0;
    next_seg_id_ = 1;
    next_docid_ = static_cast<int32_t>(corpus_->num_docs());
    live_num_docs_ = corpus_->num_docs();
    live_total_len_ = 0;
    for (int32_t len : corpus_->doc_lens()) {
      live_total_len_ += static_cast<uint64_t>(len);
    }
    live_df_.assign(corpus_->vocab_size(), 0);
    const InvertedIndex& idx = segments_[0].seg->index();
    for (uint32_t t = 0; t < idx.vocab_size(); ++t) {
      live_df_[t] = idx.term(t).doc_freq;
    }
  }
  sealed_.clear();
  sealed_tombs_.clear();
  delta_ = std::make_shared<DeltaSegment>(corpus_->vocab_size(), next_docid_);
  delta_tombs_.reset();
  merge_deletes_.clear();
  if (!dir_.empty() && storage.wal.enabled) {
    wal_ = std::make_unique<storage::Wal>();
    X100IR_RETURN_IF_ERROR(
        wal_->Open(dir_, corpus_->Fingerprint(), storage.wal));
    X100IR_RETURN_IF_ERROR(ReplayWalLocked());
  }
  PublishLocked();
  return OkStatus();
}

Status SnapshotManager::ReplayWalLocked() {
  return wal_->Replay([this](const storage::WalRecordView& rec) -> Status {
    switch (rec.type) {
      case storage::WalRecordType::kAddDocument: {
        storage::Wal::AddPayload p;
        if (!storage::Wal::DecodeAdd(rec, &p)) {
          return OutOfRange("undecodable add record");
        }
        // Below the current high-water mark = already applied (committed
        // segment of a stale file a crash kept past its merge, or a record
        // seen once already in a double recovery): idempotent skip.
        if (p.docid < next_docid_) return OkStatus();
        if (p.docid > next_docid_) {
          return OutOfRange("docid gap in wal — truncating here");
        }
        std::vector<DocTerm> doc;
        int32_t len = 0;
        uint32_t prev_term = 0;
        for (const auto& [term, tf] : p.terms) {
          if (term >= corpus_->vocab_size() || tf <= 0 ||
              (!doc.empty() && term <= prev_term)) {
            return OutOfRange("malformed add payload");
          }
          doc.push_back({term, tf});
          len += tf;
          prev_term = term;
        }
        if (doc.empty()) return OutOfRange("empty add payload");
        int32_t id = -1;
        return ApplyAddLocked(std::move(doc), len, &id);
      }
      case storage::WalRecordType::kDeleteDocument: {
        int32_t docid = -1;
        if (!storage::Wal::DecodeDocid(rec, &docid)) {
          return OutOfRange("undecodable delete record");
        }
        DeleteTarget target;
        Status found = FindDeleteTargetLocked(docid, &target);
        // Idempotent: the delete may already be durable via the manifest
        // (it was journaled into a merge, or the doc merged away).
        if (found.code() == StatusCode::kNotFound) return OkStatus();
        X100IR_RETURN_IF_ERROR(found);
        ApplyDeleteLocked(target, docid);
        return OkStatus();
      }
      case storage::WalRecordType::kDeltaSealed: {
        int32_t cutoff = -1;
        if (!storage::Wal::DecodeDocid(rec, &cutoff)) {
          return OutOfRange("undecodable seal record");
        }
        if (cutoff < next_docid_) return OkStatus();  // stale era
        if (cutoff > next_docid_) {
          return OutOfRange("seal cutoff beyond replayed docids");
        }
        if (delta_->num_docs() > 0) {
          delta_->Seal();
          sealed_.push_back(delta_);
          sealed_tombs_.push_back(delta_tombs_);
          delta_ = std::make_shared<DeltaSegment>(corpus_->vocab_size(),
                                                  next_docid_);
          delta_tombs_.reset();
        }
        return OkStatus();
      }
      case storage::WalRecordType::kMergeCommitted:
        // Purely informational: the manifest rename is the commit, and the
        // manifest was adopted before replay started.
        return OkStatus();
    }
    return OutOfRange("unknown wal record type");
  });
}

Status SnapshotManager::TryLoadManifest(BuildStats* stats) {
  const std::string path = dir_ + "/" + kManifestFile;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return NotFound("no manifest under " + dir_);
  ManifestHeader hdr;
  bool ok = std::fread(&hdr, sizeof(hdr), 1, f) == 1;
  ok = ok && hdr.magic == ManifestHeader::kMagic &&
       hdr.version == ManifestHeader::kVersion &&
       hdr.corpus_fingerprint == corpus_->Fingerprint() &&
       hdr.num_segments <= 1u << 20;
  std::vector<ManifestSegment> entries;
  std::vector<std::vector<uint64_t>> tomb_words;
  if (ok) {
    entries.resize(hdr.num_segments);
    tomb_words.resize(hdr.num_segments);
    for (uint32_t i = 0; ok && i < hdr.num_segments; ++i) {
      ok = std::fread(&entries[i], sizeof(ManifestSegment), 1, f) == 1;
      const uint32_t max_words = entries[i].num_docs / 64 + 1;
      ok = ok && entries[i].num_tombstone_words <= max_words;
      if (ok && entries[i].num_tombstone_words > 0) {
        tomb_words[i].resize(entries[i].num_tombstone_words);
        ok = std::fread(tomb_words[i].data(),
                        entries[i].num_tombstone_words * sizeof(uint64_t), 1,
                        f) == 1;
      }
    }
  }
  std::fclose(f);
  if (!ok) return IOError("torn or mismatched manifest under " + dir_);

  std::vector<Snapshot::SegmentRead> segs;
  int32_t max_global = -1;
  uint32_t max_seg_id = 0;
  for (uint32_t i = 0; i < hdr.num_segments; ++i) {
    const ManifestSegment& e = entries[i];
    std::unique_ptr<Segment> seg;
    if (e.seg_id == 0) {
      if (e.num_docs != corpus_->num_docs()) {
        return IOError("manifest base segment disagrees with the corpus");
      }
      X100IR_RETURN_IF_ERROR(
          Segment::OpenBase(corpus_, dir_, stats, BindingFor(0), &seg));
    } else {
      X100IR_RETURN_IF_ERROR(Segment::Load(SegDir(dir_, e.seg_id),
                                           BindingFor(e.seg_id), e.seg_id,
                                           e.num_docs, &seg));
      // A manifest-loaded reuse is a reuse for reporting purposes.
      stats->reused_files = true;
      stats->num_postings += seg->index().num_postings();
    }
    max_seg_id = std::max(max_seg_id, e.seg_id);
    if (seg->num_docs() > 0) {
      max_global = std::max(max_global,
                            seg->GlobalOf(static_cast<int32_t>(
                                seg->num_docs() - 1)));
    }
    TombstoneBits tombs;
    if (!tomb_words[i].empty()) {
      // Manifests written by this code are full-coverage already; pad any
      // shorter (but magic-valid) bitmap rather than trust it.
      tomb_words[i].resize(seg->num_docs() / 64 + 1, 0);
      tombs = std::make_shared<std::vector<uint64_t>>(
          std::move(tomb_words[i]));
    }
    segs.push_back({std::shared_ptr<Segment>(std::move(seg)), tombs});
  }
  if (hdr.next_seg_id <= max_seg_id && hdr.num_segments > 0) {
    return IOError("manifest seg-id allocator behind its own segments");
  }
  if (hdr.next_docid <= max_global) {
    return IOError("manifest docid allocator behind its own segments");
  }
  std::sort(segs.begin(), segs.end(),
            [](const Snapshot::SegmentRead& a, const Snapshot::SegmentRead& b) {
              return a.seg->min_global() < b.seg->min_global();
            });
  segments_ = std::move(segs);
  epoch_ = hdr.epoch;
  next_seg_id_ = hdr.next_seg_id;
  next_docid_ = hdr.next_docid;
  RecountLiveStatsLocked();
  return OkStatus();
}

void SnapshotManager::RecountLiveStatsLocked() {
  live_num_docs_ = 0;
  live_total_len_ = 0;
  live_df_.assign(corpus_->vocab_size(), 0);
  for (const Snapshot::SegmentRead& sr : segments_) {
    const uint64_t* bits =
        sr.tombstones != nullptr ? sr.tombstones->data() : nullptr;
    for (uint32_t local = 0; local < sr.seg->num_docs(); ++local) {
      if (TombstoneTest(bits, static_cast<int32_t>(local))) continue;
      ++live_num_docs_;
      live_total_len_ += static_cast<uint64_t>(sr.seg->doc_len(local));
      for (const DocTerm& dt : sr.seg->doc(local)) ++live_df_[dt.term];
    }
  }
}

std::shared_ptr<const CollectionStats> SnapshotManager::FreezeStatsLocked()
    const {
  auto stats = std::make_shared<CollectionStats>();
  stats->num_docs = live_num_docs_;
  stats->avg_doc_len =
      live_num_docs_ == 0
          ? 0.0
          : static_cast<double>(live_total_len_) /
                static_cast<double>(live_num_docs_);
  stats->df = live_df_;
  return stats;
}

void SnapshotManager::PublishLocked() {
  auto snap = std::make_shared<Snapshot>();
  snap->epoch = epoch_;
  snap->segments = segments_;
  for (size_t i = 0; i < sealed_.size(); ++i) {
    snap->deltas.push_back(
        {sealed_[i], sealed_[i]->num_docs(), sealed_tombs_[i]});
  }
  const uint32_t active_visible = delta_->num_docs();
  if (active_visible > 0) {
    snap->deltas.push_back({delta_, active_visible, delta_tombs_});
  }
  snap->stats = FreezeStatsLocked();
  bool no_tombs = true;
  for (const Snapshot::SegmentRead& sr : segments_) {
    no_tombs = no_tombs && sr.tombstones == nullptr;
  }
  snap->plain = segments_.size() == 1 && segments_[0].seg->identity_map() &&
                snap->deltas.empty() && no_tombs;
  current_ = std::move(snap);
}

std::shared_ptr<const Snapshot> SnapshotManager::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t SnapshotManager::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

Status SnapshotManager::AddDocument(const std::vector<uint32_t>& terms,
                                    int32_t* docid) {
  if (terms.empty()) return InvalidArgument("document has no terms");
  std::vector<uint32_t> sorted = terms;
  for (uint32_t t : sorted) {
    if (t >= corpus_->vocab_size()) {
      return InvalidArgument(StrFormat("term %u outside vocabulary", t));
    }
  }
  std::sort(sorted.begin(), sorted.end());
  std::vector<DocTerm> doc;
  int32_t len = 0;
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    doc.push_back({sorted[i], static_cast<int32_t>(j - i)});
    len += static_cast<int32_t>(j - i);
    i = j;
  }

  int32_t id = -1;
  uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<uint32_t, int32_t>> pairs;
    if (wal_ != nullptr) {
      pairs.reserve(doc.size());
      for (const DocTerm& dt : doc) pairs.emplace_back(dt.term, dt.tf);
    }
    X100IR_RETURN_IF_ERROR(ApplyAddLocked(std::move(doc), len, &id));
    if (wal_ != nullptr) {
      // Logged under the same critical section that applied it, so the
      // log's record order IS the apply order. A failed append leaves the
      // document in memory but unacknowledged — the caller must assume it
      // is lost on the next crash, which is exactly what the error says.
      const std::vector<uint8_t> payload = storage::Wal::EncodeAdd(id, pairs);
      Status appended =
          wal_->Append(storage::WalRecordType::kAddDocument, payload.data(),
                       static_cast<uint32_t>(payload.size()), &lsn);
      if (!appended.ok()) {
        PublishLocked();
        return appended;
      }
    }
    PublishLocked();
  }
  // The acknowledgment barrier: OK only after an fsync covers the record.
  // Deliberately outside mu_ — this wait is where group commit batches.
  if (wal_ != nullptr) X100IR_RETURN_IF_ERROR(wal_->Sync(lsn));
  if (docid != nullptr) *docid = id;
  return OkStatus();
}

Status SnapshotManager::ApplyAddLocked(std::vector<DocTerm> doc, int32_t len,
                                       int32_t* docid) {
  // The active delta is only ever sealed while holding mu_ (StartMerge),
  // and sealing installs a fresh active delta in the same critical
  // section, so this Add cannot race a seal.
  int32_t id = -1;
  X100IR_RETURN_IF_ERROR(delta_->Add(std::move(doc), &id));
  // Keep the coverage invariant (SetBitCow): an existing delta bitmap must
  // span the delta's new doc count, or readers of the next snapshot would
  // index past it. COW — earlier snapshots keep their pairing.
  if (delta_tombs_ != nullptr &&
      delta_tombs_->size() < delta_->num_docs() / 64 + 1) {
    auto grown = std::make_shared<std::vector<uint64_t>>(*delta_tombs_);
    grown->resize(delta_->num_docs() / 64 + 1, 0);
    delta_tombs_ = std::move(grown);
  }
  ++live_num_docs_;
  live_total_len_ += static_cast<uint64_t>(len);
  for (const DocTerm& dt : delta_->doc(static_cast<uint32_t>(
           id - delta_->base_docid()))) {
    ++live_df_[dt.term];
  }
  ++next_docid_;
  ++epoch_;
  *docid = id;
  return OkStatus();
}

Status SnapshotManager::FindDeleteTargetLocked(int32_t docid,
                                               DeleteTarget* target) const {
  if (docid < 0 || docid >= next_docid_) {
    return NotFound(StrFormat("docid %d was never allocated", docid));
  }
  if (docid >= delta_->base_docid()) {
    const uint32_t local = static_cast<uint32_t>(docid - delta_->base_docid());
    if (local >= delta_->num_docs()) {
      return NotFound(StrFormat("docid %d was never allocated", docid));
    }
    const uint64_t* bits =
        delta_tombs_ != nullptr ? delta_tombs_->data() : nullptr;
    if (TombstoneTest(bits, static_cast<int32_t>(local))) {
      return NotFound(StrFormat("docid %d is already deleted", docid));
    }
    target->kind = DeleteTarget::Kind::kActiveDelta;
    target->local = local;
    target->doc = &delta_->doc(local);
    target->len = delta_->doc_len(local);
    return OkStatus();
  }
  for (size_t i = 0; i < sealed_.size(); ++i) {
    const DeltaSegment& sd = *sealed_[i];
    if (docid < sd.base_docid() ||
        docid >= sd.base_docid() + static_cast<int32_t>(sd.num_docs())) {
      continue;
    }
    const uint32_t local = static_cast<uint32_t>(docid - sd.base_docid());
    const uint64_t* bits =
        sealed_tombs_[i] != nullptr ? sealed_tombs_[i]->data() : nullptr;
    if (TombstoneTest(bits, static_cast<int32_t>(local))) {
      return NotFound(StrFormat("docid %d is already deleted", docid));
    }
    target->kind = DeleteTarget::Kind::kSealedDelta;
    target->index = i;
    target->local = local;
    target->doc = &sd.doc(local);
    target->len = sd.doc_len(local);
    return OkStatus();
  }
  for (size_t i = 0; i < segments_.size(); ++i) {
    const Snapshot::SegmentRead& sr = segments_[i];
    const int32_t local = sr.seg->LocalOf(docid);
    if (local < 0) continue;
    const uint64_t* bits =
        sr.tombstones != nullptr ? sr.tombstones->data() : nullptr;
    if (TombstoneTest(bits, local)) {
      return NotFound(StrFormat("docid %d is already deleted", docid));
    }
    target->kind = DeleteTarget::Kind::kSegment;
    target->index = i;
    target->local = static_cast<uint32_t>(local);
    target->doc = &sr.seg->doc(static_cast<uint32_t>(local));
    target->len = sr.seg->doc_len(static_cast<uint32_t>(local));
    return OkStatus();
  }
  // Allocated range but between structures: the doc was merged away and
  // its segment replaced — only possible for an already-deleted doc
  // (merges carry every live doc forward).
  return NotFound(StrFormat("docid %d is already deleted", docid));
}

void SnapshotManager::ApplyDeleteLocked(const DeleteTarget& target,
                                        int32_t docid) {
  switch (target.kind) {
    case DeleteTarget::Kind::kActiveDelta:
      delta_tombs_ = SetBitCow(delta_tombs_, target.local,
                               delta_->num_docs());
      break;
    case DeleteTarget::Kind::kSealedDelta:
      sealed_tombs_[target.index] =
          SetBitCow(sealed_tombs_[target.index], target.local,
                    sealed_[target.index]->num_docs());
      break;
    case DeleteTarget::Kind::kSegment:
      segments_[target.index].tombstones =
          SetBitCow(segments_[target.index].tombstones, target.local,
                    segments_[target.index].seg->num_docs());
      break;
  }
  --live_num_docs_;
  live_total_len_ -= static_cast<uint64_t>(target.len);
  for (const DocTerm& dt : *target.doc) --live_df_[dt.term];
  if (merge_running_ && docid < merge_cutoff_) {
    merge_deletes_.push_back(docid);
  }
  ++epoch_;
}

Status SnapshotManager::DeleteDocument(int32_t docid) {
  uint64_t lsn = 0;
  Status persisted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DeleteTarget target;
    X100IR_RETURN_IF_ERROR(FindDeleteTargetLocked(docid, &target));
    const bool persistent_owner =
        target.kind == DeleteTarget::Kind::kSegment;
    ApplyDeleteLocked(target, docid);
    if (wal_ != nullptr) {
      // The WAL is the durability story for every delete — including
      // segment docs, whose tombstones replay onto the adopted manifest —
      // so the per-delete manifest rewrite the volatile era needed is gone.
      const std::vector<uint8_t> payload = storage::Wal::EncodeDocid(docid);
      persisted =
          wal_->Append(storage::WalRecordType::kDeleteDocument,
                       payload.data(), static_cast<uint32_t>(payload.size()),
                       &lsn);
    } else if (persistent_owner && !dir_.empty()) {
      // No WAL: deletes of persisted documents are made durable the old
      // way, re-writing the manifest. A failure leaves the in-memory
      // delete applied and reports the error — the reopen then
      // resurrects, it never loses.
      persisted = WriteManifestLocked();
    }
    PublishLocked();
  }
  if (!persisted.ok()) return persisted;
  // Acknowledgment barrier, outside mu_ (same as AddDocument).
  if (wal_ != nullptr) X100IR_RETURN_IF_ERROR(wal_->Sync(lsn));
  return OkStatus();
}

Status SnapshotManager::WriteManifestLocked(bool* renamed) {
  if (renamed != nullptr) *renamed = false;
  if (storage::CrashedNow()) return IOError("simulated crash");
  const std::string tmp = dir_ + "/" + kManifestTmpFile;
  const std::string path = dir_ + "/" + kManifestFile;
  ManifestHeader hdr;
  hdr.corpus_fingerprint = corpus_->Fingerprint();
  hdr.epoch = epoch_;
  hdr.num_segments = static_cast<uint32_t>(segments_.size());
  hdr.next_seg_id = next_seg_id_;
  hdr.next_docid = next_docid_;
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return IOError("cannot create " + tmp);
  bool ok = std::fwrite(&hdr, sizeof(hdr), 1, f) == 1;
  for (const Snapshot::SegmentRead& sr : segments_) {
    ManifestSegment e;
    e.seg_id = sr.seg->seg_id();
    e.num_docs = sr.seg->num_docs();
    e.num_tombstone_words =
        sr.tombstones != nullptr
            ? static_cast<uint32_t>(sr.tombstones->size())
            : 0;
    ok = ok && std::fwrite(&e, sizeof(e), 1, f) == 1;
    if (e.num_tombstone_words > 0) {
      ok = ok && std::fwrite(sr.tombstones->data(),
                             e.num_tombstone_words * sizeof(uint64_t), 1,
                             f) == 1;
    }
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return IOError("short write to " + tmp);
  if (storage::CrashReached(storage::CrashSite::kManifestAfterTmpWrite)) {
    return IOError("simulated crash");
  }
  // The atomic commit point: the manifest appears complete or not at all.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return IOError("cannot swap manifest into place");
  }
  if (renamed != nullptr) *renamed = true;
  if (storage::CrashReached(storage::CrashSite::kManifestAfterRename)) {
    return IOError("simulated crash");
  }
  return OkStatus();
}

bool SnapshotManager::merge_running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merge_running_;
}

storage::WalStats SnapshotManager::wal_stats() const {
  return wal_ != nullptr ? wal_->stats() : storage::WalStats{};
}

Status SnapshotManager::StartMerge() {
  MergeInput input;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (merge_running_) {
      return FailedPrecondition("a merge is already running");
    }
    if (wal_ != nullptr) {
      // Log the seal boundary and rotate BEFORE mutating anything: if
      // either fails, the delta stays active and no merge starts. The
      // rotation's fsync makes the DeltaSealed record (and everything
      // before it) durable; a replay that sees it reseals at the same
      // cutoff. A DeltaSealed record without a merge behind it is
      // harmless — replay reseals, content is unchanged.
      const std::vector<uint8_t> payload =
          storage::Wal::EncodeDocid(next_docid_);
      X100IR_RETURN_IF_ERROR(
          wal_->Append(storage::WalRecordType::kDeltaSealed, payload.data(),
                       static_cast<uint32_t>(payload.size()), nullptr));
      X100IR_RETURN_IF_ERROR(wal_->Rotate(&input.wal_sealed_seq));
    }
    delta_->Seal();
    sealed_.push_back(delta_);
    sealed_tombs_.push_back(delta_tombs_);
    delta_ = std::make_shared<DeltaSegment>(corpus_->vocab_size(),
                                            next_docid_);
    delta_tombs_.reset();
    input.segments = segments_;
    for (size_t i = 0; i < sealed_.size(); ++i) {
      input.deltas.push_back(
          {sealed_[i], sealed_[i]->num_docs(), sealed_tombs_[i]});
    }
    input.seg_id = next_seg_id_++;
    merge_cutoff_ = next_docid_;
    merge_deletes_.clear();
    merge_running_ = true;
    merge_status_ = OkStatus();
    ++epoch_;
    PublishLocked();
  }
  merge_pool_.Submit(
      [this, in = std::move(input)]() mutable { RunMerge(std::move(in)); });
  return OkStatus();
}

Status SnapshotManager::WaitMerge() {
  std::unique_lock<std::mutex> lock(mu_);
  merge_cv_.wait(lock, [this] { return !merge_running_; });
  return merge_status_;
}

Status SnapshotManager::Merge() {
  X100IR_RETURN_IF_ERROR(StartMerge());
  return WaitMerge();
}

Status SnapshotManager::BuildMergedSegment(const MergeInput& input,
                                           std::shared_ptr<Segment>* out) {
  // Gather every live input document in global docid order: segments come
  // first (ascending bases, ascending within), then the sealed deltas —
  // whose bases are by construction above every committed segment's
  // globals.
  std::vector<std::vector<DocTerm>> docs;
  std::vector<int32_t> globals;
  for (const Snapshot::SegmentRead& sr : input.segments) {
    const uint64_t* bits =
        sr.tombstones != nullptr ? sr.tombstones->data() : nullptr;
    for (uint32_t local = 0; local < sr.seg->num_docs(); ++local) {
      if (TombstoneTest(bits, static_cast<int32_t>(local))) continue;
      globals.push_back(sr.seg->GlobalOf(static_cast<int32_t>(local)));
      docs.push_back(sr.seg->doc(local));
    }
  }
  for (const Snapshot::DeltaRead& dr : input.deltas) {
    const uint64_t* bits =
        dr.tombstones != nullptr ? dr.tombstones->data() : nullptr;
    for (uint32_t local = 0; local < dr.visible; ++local) {
      if (TombstoneTest(bits, static_cast<int32_t>(local))) continue;
      globals.push_back(dr.delta->base_docid() + static_cast<int32_t>(local));
      docs.push_back(dr.delta->doc(local));
    }
  }
  if (docs.empty()) {
    // Everything is deleted: the merge commits an empty segment set.
    out->reset();
    return OkStatus();
  }
  const std::string dir = dir_.empty() ? "" : SegDir(dir_, input.seg_id);
  std::unique_ptr<Segment> seg;
  X100IR_RETURN_IF_ERROR(Segment::Build(std::move(docs), std::move(globals),
                                        corpus_->vocab_size(), dir,
                                        BindingFor(input.seg_id),
                                        input.seg_id, &seg));
  *out = std::shared_ptr<Segment>(std::move(seg));
  return OkStatus();
}

void SnapshotManager::RunMerge(MergeInput input) {
  std::shared_ptr<Segment> merged;
  Status s = BuildMergedSegment(input, &merged);
  if (s.ok() &&
      storage::CrashReached(storage::CrashSite::kMergeAfterSegmentBuild)) {
    // The segment's files are complete on disk but nothing references
    // them; the next Open sweeps the orphan directory.
    s = IOError("simulated crash");
  }
  bool committed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (s.ok()) s = CommitMergeLocked(input, merged, &committed);
    if (!s.ok() && !committed && merged != nullptr) {
      // The built-but-uncommitted segment is garbage: arm deletion and let
      // the release below (outside no snapshot ever saw it) clean up. A
      // *committed* merge that failed post-commit (MergeCommitted append,
      // WAL truncation) keeps its segment — it is live in the manifest.
      merged->set_retire_on_release();
    }
    merge_status_ = s;
  }
  // Drop every reference this merge holds BEFORE announcing completion: a
  // WaitMerge caller may be the only other holder of a replaced segment and
  // expects its release to be the last one. Retirement deletes files, so it
  // must also happen outside mu_.
  merged.reset();
  input = MergeInput();
  {
    std::lock_guard<std::mutex> lock(mu_);
    merge_running_ = false;
  }
  merge_cv_.notify_all();
}

Status SnapshotManager::CommitMergeLocked(const MergeInput& input,
                                          std::shared_ptr<Segment> merged,
                                          bool* committed) {
  *committed = false;
  // Deletes that landed during the merge targeted documents the merge
  // carried forward — re-apply them as tombstones on the new segment.
  TombstoneBits merged_tombs;
  if (merged != nullptr) {
    std::vector<uint64_t> words;
    for (int32_t g : merge_deletes_) {
      const int32_t local = merged->LocalOf(g);
      if (local < 0) return Internal("merge journal names an unmerged doc");
      // Full-coverage sizing, same invariant as SetBitCow.
      words.resize(merged->num_docs() / 64 + 1, 0);
      words[static_cast<uint32_t>(local) / 64] |=
          1ull << (static_cast<uint32_t>(local) % 64);
    }
    if (!words.empty()) {
      merged_tombs = std::make_shared<std::vector<uint64_t>>(std::move(words));
    }
  }

  std::vector<Snapshot::SegmentRead> old = std::move(segments_);
  segments_.clear();
  if (merged != nullptr) segments_.push_back({merged, merged_tombs});
  sealed_.clear();
  sealed_tombs_.clear();
  ++epoch_;
  if (!dir_.empty()) {
    bool renamed = false;
    Status written = WriteManifestLocked(&renamed);
    if (!written.ok() && !renamed) {
      // The swap never happened: restore the old segment set so the
      // in-memory state keeps matching the on-disk manifest. The sealed
      // delta was already compacted INTO `merged`, which we are dropping —
      // re-adopt it so no document is lost.
      segments_ = std::move(old);
      for (const Snapshot::DeltaRead& dr : input.deltas) {
        sealed_.push_back(dr.delta);
        sealed_tombs_.push_back(dr.tombstones);
      }
      // Deletes that were journaled for the merged segment are already in
      // the old structures' tombstones (DeleteDocument sets both), so
      // nothing to replay.
      PublishLocked();
      return written;
    }
    // The rename happened: the merge is committed on disk even if the
    // crash simulation fired right after it. Finish the in-memory commit
    // and report the failure without undoing anything.
    *committed = true;
    Status post = written;
    if (post.ok() && wal_ != nullptr) {
      // Marker + truncation. The marker is informational (replay skips
      // it); the truncation is what reclaims the pre-rotation files whose
      // every record the manifest now carries. Failures here leave stale
      // files whose replay is idempotent, so the commit stands.
      const std::vector<uint8_t> payload = storage::Wal::EncodeMergeCommitted(
          merge_cutoff_, epoch_);
      uint64_t lsn = 0;
      post = wal_->Append(storage::WalRecordType::kMergeCommitted,
                          payload.data(),
                          static_cast<uint32_t>(payload.size()), &lsn);
      if (post.ok()) post = wal_->Sync(lsn);
      if (post.ok()) post = wal_->DropFilesUpTo(input.wal_sealed_seq);
    }
    if (!post.ok()) {
      for (const Snapshot::SegmentRead& sr : old) {
        sr.seg->set_retire_on_release();
      }
      PublishLocked();
      return post;
    }
  }
  for (const Snapshot::SegmentRead& sr : old) {
    sr.seg->set_retire_on_release();
  }
  PublishLocked();
  return OkStatus();
}

}  // namespace x100ir::ir
