#include "ir/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/string_util.h"
#include "ir/index_meta.h"

namespace x100ir::ir {
namespace {

// Copy-on-write tombstone set: never mutates the shared current bitmap
// (snapshots born earlier keep reading their version), publishes a copy
// with one more bit. `capacity_docs` is the owning structure's current doc
// count: the copy is sized to cover ALL of it, not just the highest set
// bit, because readers (TombstoneTest in the engine and the delta scans)
// index by arbitrary live docids with no bounds check of their own — a
// short bitmap would be an out-of-bounds read, not a "not deleted".
TombstoneBits SetBitCow(const TombstoneBits& cur, uint32_t bit,
                        uint32_t capacity_docs) {
  const size_t need =
      std::max<size_t>(bit / 64 + 1, capacity_docs / 64 + 1);
  auto next = std::make_shared<std::vector<uint64_t>>(
      cur != nullptr ? *cur : std::vector<uint64_t>());
  if (next->size() < need) next->resize(need, 0);
  (*next)[bit / 64] |= 1ull << (bit % 64);
  return next;
}

std::string SegDir(const std::string& root, uint32_t seg_id) {
  return root + "/seg_" + std::to_string(seg_id);
}

// Deletes every on-disk trace of segmented state under `root` (manifest
// and seg_* directories) — the clean-rebuild fallback for a torn or
// mismatched manifest. The base segment's column files stay: the fresh
// open will reuse or rebuild them through the normal fingerprint check.
void RemoveSegmentedState(const std::string& root) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::remove(root + "/" + kManifestFile, ec);
  fs::remove(root + "/" + kManifestTmpFile, ec);
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (entry.is_directory(ec) &&
        entry.path().filename().string().rfind("seg_", 0) == 0) {
      fs::remove_all(entry.path(), ec);
    }
  }
}

}  // namespace

SnapshotManager::~SnapshotManager() {
  // Joining here (not relying on merge_pool_'s own destructor) makes the
  // shutdown order explicit: the background merge finishes before any
  // member it touches starts dying.
  merge_pool_.Shutdown();
}

StorageBinding SnapshotManager::BindingFor(uint32_t seg_id) const {
  StorageBinding b;
  b.pool = pool_.get();
  b.file_id_base = seg_id * IndexStorage::kFilesPerIndex;
  return b;
}

Status SnapshotManager::Open(const Corpus* corpus, const std::string& dir,
                             const storage::StorageOptions& storage,
                             BuildStats* stats) {
  if (corpus == nullptr) return InvalidArgument("snapshot manager needs a corpus");
  if (stats == nullptr) return InvalidArgument("null build stats");
  corpus_ = corpus;
  dir_ = dir;
  storage_opts_ = storage;
  if (!dir_.empty()) {
    disk_ = std::make_unique<storage::SimulatedDisk>(storage.disk);
    pool_ = std::make_unique<storage::BufferManager>(
        storage.pool_bytes, disk_.get(), storage.page_bytes, storage.shards);
    pool_->set_retry_policy(storage.retry);
  }

  std::lock_guard<std::mutex> lock(mu_);
  Status adopted = dir_.empty() ? NotFound("in-memory database")
                                : TryLoadManifest(stats);
  if (!adopted.ok()) {
    // No manifest (fresh/legacy directory) or an unusable one (torn swap,
    // corpus mismatch, torn segment): clean rebuild from the corpus. The
    // corpus is generative, so this loses nothing that was ever merged
    // under a *valid* manifest — only state the torn write already lost.
    if (!dir_.empty()) RemoveSegmentedState(dir_);
    segments_.clear();
    std::unique_ptr<Segment> base;
    X100IR_RETURN_IF_ERROR(
        Segment::OpenBase(corpus_, dir_, stats, BindingFor(0), &base));
    segments_.push_back({std::shared_ptr<Segment>(std::move(base)), nullptr});
    epoch_ = 0;
    next_seg_id_ = 1;
    next_docid_ = static_cast<int32_t>(corpus_->num_docs());
    live_num_docs_ = corpus_->num_docs();
    live_total_len_ = 0;
    for (int32_t len : corpus_->doc_lens()) {
      live_total_len_ += static_cast<uint64_t>(len);
    }
    live_df_.assign(corpus_->vocab_size(), 0);
    const InvertedIndex& idx = segments_[0].seg->index();
    for (uint32_t t = 0; t < idx.vocab_size(); ++t) {
      live_df_[t] = idx.term(t).doc_freq;
    }
  }
  sealed_.clear();
  sealed_tombs_.clear();
  delta_ = std::make_shared<DeltaSegment>(corpus_->vocab_size(), next_docid_);
  delta_tombs_.reset();
  merge_deletes_.clear();
  PublishLocked();
  return OkStatus();
}

Status SnapshotManager::TryLoadManifest(BuildStats* stats) {
  const std::string path = dir_ + "/" + kManifestFile;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return NotFound("no manifest under " + dir_);
  ManifestHeader hdr;
  bool ok = std::fread(&hdr, sizeof(hdr), 1, f) == 1;
  ok = ok && hdr.magic == ManifestHeader::kMagic &&
       hdr.version == ManifestHeader::kVersion &&
       hdr.corpus_fingerprint == corpus_->Fingerprint() &&
       hdr.num_segments <= 1u << 20;
  std::vector<ManifestSegment> entries;
  std::vector<std::vector<uint64_t>> tomb_words;
  if (ok) {
    entries.resize(hdr.num_segments);
    tomb_words.resize(hdr.num_segments);
    for (uint32_t i = 0; ok && i < hdr.num_segments; ++i) {
      ok = std::fread(&entries[i], sizeof(ManifestSegment), 1, f) == 1;
      const uint32_t max_words = entries[i].num_docs / 64 + 1;
      ok = ok && entries[i].num_tombstone_words <= max_words;
      if (ok && entries[i].num_tombstone_words > 0) {
        tomb_words[i].resize(entries[i].num_tombstone_words);
        ok = std::fread(tomb_words[i].data(),
                        entries[i].num_tombstone_words * sizeof(uint64_t), 1,
                        f) == 1;
      }
    }
  }
  std::fclose(f);
  if (!ok) return IOError("torn or mismatched manifest under " + dir_);

  std::vector<Snapshot::SegmentRead> segs;
  int32_t max_global = -1;
  uint32_t max_seg_id = 0;
  for (uint32_t i = 0; i < hdr.num_segments; ++i) {
    const ManifestSegment& e = entries[i];
    std::unique_ptr<Segment> seg;
    if (e.seg_id == 0) {
      if (e.num_docs != corpus_->num_docs()) {
        return IOError("manifest base segment disagrees with the corpus");
      }
      X100IR_RETURN_IF_ERROR(
          Segment::OpenBase(corpus_, dir_, stats, BindingFor(0), &seg));
    } else {
      X100IR_RETURN_IF_ERROR(Segment::Load(SegDir(dir_, e.seg_id),
                                           BindingFor(e.seg_id), e.seg_id,
                                           e.num_docs, &seg));
      // A manifest-loaded reuse is a reuse for reporting purposes.
      stats->reused_files = true;
      stats->num_postings += seg->index().num_postings();
    }
    max_seg_id = std::max(max_seg_id, e.seg_id);
    if (seg->num_docs() > 0) {
      max_global = std::max(max_global,
                            seg->GlobalOf(static_cast<int32_t>(
                                seg->num_docs() - 1)));
    }
    TombstoneBits tombs;
    if (!tomb_words[i].empty()) {
      // Manifests written by this code are full-coverage already; pad any
      // shorter (but magic-valid) bitmap rather than trust it.
      tomb_words[i].resize(seg->num_docs() / 64 + 1, 0);
      tombs = std::make_shared<std::vector<uint64_t>>(
          std::move(tomb_words[i]));
    }
    segs.push_back({std::shared_ptr<Segment>(std::move(seg)), tombs});
  }
  if (hdr.next_seg_id <= max_seg_id && hdr.num_segments > 0) {
    return IOError("manifest seg-id allocator behind its own segments");
  }
  if (hdr.next_docid <= max_global) {
    return IOError("manifest docid allocator behind its own segments");
  }
  std::sort(segs.begin(), segs.end(),
            [](const Snapshot::SegmentRead& a, const Snapshot::SegmentRead& b) {
              return a.seg->min_global() < b.seg->min_global();
            });
  segments_ = std::move(segs);
  epoch_ = hdr.epoch;
  next_seg_id_ = hdr.next_seg_id;
  next_docid_ = hdr.next_docid;
  RecountLiveStatsLocked();
  return OkStatus();
}

void SnapshotManager::RecountLiveStatsLocked() {
  live_num_docs_ = 0;
  live_total_len_ = 0;
  live_df_.assign(corpus_->vocab_size(), 0);
  for (const Snapshot::SegmentRead& sr : segments_) {
    const uint64_t* bits =
        sr.tombstones != nullptr ? sr.tombstones->data() : nullptr;
    for (uint32_t local = 0; local < sr.seg->num_docs(); ++local) {
      if (TombstoneTest(bits, static_cast<int32_t>(local))) continue;
      ++live_num_docs_;
      live_total_len_ += static_cast<uint64_t>(sr.seg->doc_len(local));
      for (const DocTerm& dt : sr.seg->doc(local)) ++live_df_[dt.term];
    }
  }
}

std::shared_ptr<const CollectionStats> SnapshotManager::FreezeStatsLocked()
    const {
  auto stats = std::make_shared<CollectionStats>();
  stats->num_docs = live_num_docs_;
  stats->avg_doc_len =
      live_num_docs_ == 0
          ? 0.0
          : static_cast<double>(live_total_len_) /
                static_cast<double>(live_num_docs_);
  stats->df = live_df_;
  return stats;
}

void SnapshotManager::PublishLocked() {
  auto snap = std::make_shared<Snapshot>();
  snap->epoch = epoch_;
  snap->segments = segments_;
  for (size_t i = 0; i < sealed_.size(); ++i) {
    snap->deltas.push_back(
        {sealed_[i], sealed_[i]->num_docs(), sealed_tombs_[i]});
  }
  const uint32_t active_visible = delta_->num_docs();
  if (active_visible > 0) {
    snap->deltas.push_back({delta_, active_visible, delta_tombs_});
  }
  snap->stats = FreezeStatsLocked();
  bool no_tombs = true;
  for (const Snapshot::SegmentRead& sr : segments_) {
    no_tombs = no_tombs && sr.tombstones == nullptr;
  }
  snap->plain = segments_.size() == 1 && segments_[0].seg->identity_map() &&
                snap->deltas.empty() && no_tombs;
  current_ = std::move(snap);
}

std::shared_ptr<const Snapshot> SnapshotManager::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t SnapshotManager::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

Status SnapshotManager::AddDocument(const std::vector<uint32_t>& terms,
                                    int32_t* docid) {
  if (terms.empty()) return InvalidArgument("document has no terms");
  std::vector<uint32_t> sorted = terms;
  for (uint32_t t : sorted) {
    if (t >= corpus_->vocab_size()) {
      return InvalidArgument(StrFormat("term %u outside vocabulary", t));
    }
  }
  std::sort(sorted.begin(), sorted.end());
  std::vector<DocTerm> doc;
  int32_t len = 0;
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    doc.push_back({sorted[i], static_cast<int32_t>(j - i)});
    len += static_cast<int32_t>(j - i);
    i = j;
  }

  std::lock_guard<std::mutex> lock(mu_);
  // The active delta is only ever sealed while holding mu_ (StartMerge),
  // and sealing installs a fresh active delta in the same critical
  // section, so this Add cannot race a seal.
  int32_t id = -1;
  X100IR_RETURN_IF_ERROR(delta_->Add(std::move(doc), &id));
  // Keep the coverage invariant (SetBitCow): an existing delta bitmap must
  // span the delta's new doc count, or readers of the next snapshot would
  // index past it. COW — earlier snapshots keep their pairing.
  if (delta_tombs_ != nullptr &&
      delta_tombs_->size() < delta_->num_docs() / 64 + 1) {
    auto grown = std::make_shared<std::vector<uint64_t>>(*delta_tombs_);
    grown->resize(delta_->num_docs() / 64 + 1, 0);
    delta_tombs_ = std::move(grown);
  }
  ++live_num_docs_;
  live_total_len_ += static_cast<uint64_t>(len);
  for (const DocTerm& dt : delta_->doc(static_cast<uint32_t>(
           id - delta_->base_docid()))) {
    ++live_df_[dt.term];
  }
  ++next_docid_;
  ++epoch_;
  PublishLocked();
  if (docid != nullptr) *docid = id;
  return OkStatus();
}

Status SnapshotManager::DeleteDocument(int32_t docid) {
  std::lock_guard<std::mutex> lock(mu_);
  if (docid < 0 || docid >= next_docid_) {
    return NotFound(StrFormat("docid %d was never allocated", docid));
  }

  const std::vector<DocTerm>* doc = nullptr;
  int32_t len = 0;
  bool persistent_owner = false;

  if (docid >= delta_->base_docid()) {
    const uint32_t local = static_cast<uint32_t>(docid - delta_->base_docid());
    if (local >= delta_->num_docs()) {
      return NotFound(StrFormat("docid %d was never allocated", docid));
    }
    const uint64_t* bits =
        delta_tombs_ != nullptr ? delta_tombs_->data() : nullptr;
    if (TombstoneTest(bits, static_cast<int32_t>(local))) {
      return NotFound(StrFormat("docid %d is already deleted", docid));
    }
    delta_tombs_ = SetBitCow(delta_tombs_, local, delta_->num_docs());
    doc = &delta_->doc(local);
    len = delta_->doc_len(local);
  } else {
    for (size_t i = 0; doc == nullptr && i < sealed_.size(); ++i) {
      DeltaSegment& sd = *sealed_[i];
      if (docid < sd.base_docid() ||
          docid >= sd.base_docid() + static_cast<int32_t>(sd.num_docs())) {
        continue;
      }
      const uint32_t local = static_cast<uint32_t>(docid - sd.base_docid());
      const uint64_t* bits =
          sealed_tombs_[i] != nullptr ? sealed_tombs_[i]->data() : nullptr;
      if (TombstoneTest(bits, static_cast<int32_t>(local))) {
        return NotFound(StrFormat("docid %d is already deleted", docid));
      }
      sealed_tombs_[i] = SetBitCow(sealed_tombs_[i], local, sd.num_docs());
      doc = &sd.doc(local);
      len = sd.doc_len(local);
    }
    for (size_t i = 0; doc == nullptr && i < segments_.size(); ++i) {
      Snapshot::SegmentRead& sr = segments_[i];
      const int32_t local = sr.seg->LocalOf(docid);
      if (local < 0) continue;
      const uint64_t* bits =
          sr.tombstones != nullptr ? sr.tombstones->data() : nullptr;
      if (TombstoneTest(bits, local)) {
        return NotFound(StrFormat("docid %d is already deleted", docid));
      }
      sr.tombstones = SetBitCow(sr.tombstones, static_cast<uint32_t>(local),
                                sr.seg->num_docs());
      doc = &sr.seg->doc(static_cast<uint32_t>(local));
      len = sr.seg->doc_len(static_cast<uint32_t>(local));
      persistent_owner = true;
    }
  }
  if (doc == nullptr) {
    // Allocated range but between structures: the doc was merged away and
    // its segment replaced — only possible for an already-deleted doc
    // (merges carry every live doc forward).
    return NotFound(StrFormat("docid %d is already deleted", docid));
  }

  --live_num_docs_;
  live_total_len_ -= static_cast<uint64_t>(len);
  for (const DocTerm& dt : *doc) --live_df_[dt.term];
  if (merge_running_ && docid < merge_cutoff_) {
    merge_deletes_.push_back(docid);
  }
  ++epoch_;
  // Deletes of persisted documents are durable: re-write the manifest so a
  // reopen does not resurrect the doc. (Delta documents are volatile by
  // design, so their tombstones are too.) A manifest write failure leaves
  // the in-memory delete applied and reports the error — the reopen then
  // resurrects, it never loses.
  Status persisted =
      persistent_owner && !dir_.empty() ? WriteManifestLocked() : OkStatus();
  PublishLocked();
  return persisted;
}

Status SnapshotManager::WriteManifestLocked() {
  const std::string tmp = dir_ + "/" + kManifestTmpFile;
  const std::string path = dir_ + "/" + kManifestFile;
  ManifestHeader hdr;
  hdr.corpus_fingerprint = corpus_->Fingerprint();
  hdr.epoch = epoch_;
  hdr.num_segments = static_cast<uint32_t>(segments_.size());
  hdr.next_seg_id = next_seg_id_;
  hdr.next_docid = next_docid_;
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return IOError("cannot create " + tmp);
  bool ok = std::fwrite(&hdr, sizeof(hdr), 1, f) == 1;
  for (const Snapshot::SegmentRead& sr : segments_) {
    ManifestSegment e;
    e.seg_id = sr.seg->seg_id();
    e.num_docs = sr.seg->num_docs();
    e.num_tombstone_words =
        sr.tombstones != nullptr
            ? static_cast<uint32_t>(sr.tombstones->size())
            : 0;
    ok = ok && std::fwrite(&e, sizeof(e), 1, f) == 1;
    if (e.num_tombstone_words > 0) {
      ok = ok && std::fwrite(sr.tombstones->data(),
                             e.num_tombstone_words * sizeof(uint64_t), 1,
                             f) == 1;
    }
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return IOError("short write to " + tmp);
  // The atomic commit point: the manifest appears complete or not at all.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return IOError("cannot swap manifest into place");
  }
  return OkStatus();
}

bool SnapshotManager::merge_running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merge_running_;
}

Status SnapshotManager::StartMerge() {
  MergeInput input;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (merge_running_) {
      return FailedPrecondition("a merge is already running");
    }
    delta_->Seal();
    sealed_.push_back(delta_);
    sealed_tombs_.push_back(delta_tombs_);
    delta_ = std::make_shared<DeltaSegment>(corpus_->vocab_size(),
                                            next_docid_);
    delta_tombs_.reset();
    input.segments = segments_;
    for (size_t i = 0; i < sealed_.size(); ++i) {
      input.deltas.push_back(
          {sealed_[i], sealed_[i]->num_docs(), sealed_tombs_[i]});
    }
    input.seg_id = next_seg_id_++;
    merge_cutoff_ = next_docid_;
    merge_deletes_.clear();
    merge_running_ = true;
    merge_status_ = OkStatus();
    ++epoch_;
    PublishLocked();
  }
  merge_pool_.Submit(
      [this, in = std::move(input)]() mutable { RunMerge(std::move(in)); });
  return OkStatus();
}

Status SnapshotManager::WaitMerge() {
  std::unique_lock<std::mutex> lock(mu_);
  merge_cv_.wait(lock, [this] { return !merge_running_; });
  return merge_status_;
}

Status SnapshotManager::Merge() {
  X100IR_RETURN_IF_ERROR(StartMerge());
  return WaitMerge();
}

Status SnapshotManager::BuildMergedSegment(const MergeInput& input,
                                           std::shared_ptr<Segment>* out) {
  // Gather every live input document in global docid order: segments come
  // first (ascending bases, ascending within), then the sealed deltas —
  // whose bases are by construction above every committed segment's
  // globals.
  std::vector<std::vector<DocTerm>> docs;
  std::vector<int32_t> globals;
  for (const Snapshot::SegmentRead& sr : input.segments) {
    const uint64_t* bits =
        sr.tombstones != nullptr ? sr.tombstones->data() : nullptr;
    for (uint32_t local = 0; local < sr.seg->num_docs(); ++local) {
      if (TombstoneTest(bits, static_cast<int32_t>(local))) continue;
      globals.push_back(sr.seg->GlobalOf(static_cast<int32_t>(local)));
      docs.push_back(sr.seg->doc(local));
    }
  }
  for (const Snapshot::DeltaRead& dr : input.deltas) {
    const uint64_t* bits =
        dr.tombstones != nullptr ? dr.tombstones->data() : nullptr;
    for (uint32_t local = 0; local < dr.visible; ++local) {
      if (TombstoneTest(bits, static_cast<int32_t>(local))) continue;
      globals.push_back(dr.delta->base_docid() + static_cast<int32_t>(local));
      docs.push_back(dr.delta->doc(local));
    }
  }
  if (docs.empty()) {
    // Everything is deleted: the merge commits an empty segment set.
    out->reset();
    return OkStatus();
  }
  const std::string dir = dir_.empty() ? "" : SegDir(dir_, input.seg_id);
  std::unique_ptr<Segment> seg;
  X100IR_RETURN_IF_ERROR(Segment::Build(std::move(docs), std::move(globals),
                                        corpus_->vocab_size(), dir,
                                        BindingFor(input.seg_id),
                                        input.seg_id, &seg));
  *out = std::shared_ptr<Segment>(std::move(seg));
  return OkStatus();
}

void SnapshotManager::RunMerge(MergeInput input) {
  std::shared_ptr<Segment> merged;
  Status s = BuildMergedSegment(input, &merged);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (s.ok()) s = CommitMergeLocked(input, merged);
    if (!s.ok() && merged != nullptr) {
      // The built-but-uncommitted segment is garbage: arm deletion and let
      // the release below (outside no snapshot ever saw it) clean up.
      merged->set_retire_on_release();
    }
    merge_status_ = s;
  }
  // Drop every reference this merge holds BEFORE announcing completion: a
  // WaitMerge caller may be the only other holder of a replaced segment and
  // expects its release to be the last one. Retirement deletes files, so it
  // must also happen outside mu_.
  merged.reset();
  input = MergeInput();
  {
    std::lock_guard<std::mutex> lock(mu_);
    merge_running_ = false;
  }
  merge_cv_.notify_all();
}

Status SnapshotManager::CommitMergeLocked(const MergeInput& input,
                                          std::shared_ptr<Segment> merged) {
  // Deletes that landed during the merge targeted documents the merge
  // carried forward — re-apply them as tombstones on the new segment.
  TombstoneBits merged_tombs;
  if (merged != nullptr) {
    std::vector<uint64_t> words;
    for (int32_t g : merge_deletes_) {
      const int32_t local = merged->LocalOf(g);
      if (local < 0) return Internal("merge journal names an unmerged doc");
      // Full-coverage sizing, same invariant as SetBitCow.
      words.resize(merged->num_docs() / 64 + 1, 0);
      words[static_cast<uint32_t>(local) / 64] |=
          1ull << (static_cast<uint32_t>(local) % 64);
    }
    if (!words.empty()) {
      merged_tombs = std::make_shared<std::vector<uint64_t>>(std::move(words));
    }
  }

  std::vector<Snapshot::SegmentRead> old = std::move(segments_);
  segments_.clear();
  if (merged != nullptr) segments_.push_back({merged, merged_tombs});
  sealed_.clear();
  sealed_tombs_.clear();
  ++epoch_;
  if (!dir_.empty()) {
    Status written = WriteManifestLocked();
    if (!written.ok()) {
      // The swap never happened: restore the old segment set so the
      // in-memory state keeps matching the on-disk manifest. The sealed
      // delta was already compacted INTO `merged`, which we are dropping —
      // re-adopt it so no document is lost.
      segments_ = std::move(old);
      for (const Snapshot::DeltaRead& dr : input.deltas) {
        sealed_.push_back(dr.delta);
        sealed_tombs_.push_back(dr.tombstones);
      }
      // Deletes that were journaled for the merged segment are already in
      // the old structures' tombstones (DeleteDocument sets both), so
      // nothing to replay.
      PublishLocked();
      return written;
    }
  }
  for (const Snapshot::SegmentRead& sr : old) {
    sr.seg->set_retire_on_release();
  }
  PublishLocked();
  return OkStatus();
}

}  // namespace x100ir::ir
