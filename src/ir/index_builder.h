// Builds the inverted index from a Corpus as compressed columns and serves
// per-term posting ranges to the search engine.
//
// The index owns two block-backed VectorSources (TD.docid via PFOR-DELTA,
// TD.tf via PFOR) over the whole TD table; a query scans a term's postings
// through a SliceVectorSource window — range decode touches only the
// 128-value windows overlapping the term's range, which is the paper's
// fine-granularity skipping. The uncompressed doclen column stays in memory
// (4 bytes/doc; the gather in the BM25 score operator wants O(1) access).
//
// With a non-empty directory, BuildFromCorpus persists the columns (raw +
// compressed + index.meta) and on the next open reuses the compressed
// files when the corpus fingerprint matches — Database::Open's
// build-or-reuse contract.
#ifndef X100IR_IR_INDEX_BUILDER_H_
#define X100IR_IR_INDEX_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/corpus.h"
#include "ir/index_meta.h"
#include "storage/buffer_manager.h"
#include "storage/column_reader.h"
#include "vec/mem_source.h"

namespace x100ir::ir {

// Binding of an index onto a *shared* buffer pool: the segmented database
// opens every segment's columns through one pool (one memory budget, one
// simulated disk) instead of a pool per index. `file_id_base` is the first
// of kFilesPerIndex consecutive pool file ids reserved for this index;
// segment retirement evicts exactly those ids.
struct StorageBinding {
  storage::BufferManager* pool = nullptr;  // borrowed, outlives the index
  uint32_t file_id_base = 0;
};

// The storage-backed face of the index (Table 2 runs): every persisted
// column opened through a buffer pool over a simulated disk — a private
// pool when the index was built standalone (the monolithic path), or the
// database-wide shared pool when built under a StorageBinding. Absent (and
// the storage-era RunTypes unavailable) for in-memory-only indexes.
struct IndexStorage {
  // Pool file ids an index consumes, starting at file_id_base: six live
  // columns plus headroom so per-segment bases can stay a fixed stride.
  static constexpr uint32_t kFilesPerIndex = 8;

  storage::SimulatedDisk disk;  // meaningful only when the pool is owned
  std::unique_ptr<storage::BufferManager> owned_pool;
  storage::BufferManager* pool = nullptr;  // owned_pool.get() or external
  uint32_t file_id_base = 0;
  storage::ColumnReader docid_raw;
  storage::ColumnReader tf_raw;
  storage::ColumnReader docid_compressed;
  storage::ColumnReader tf_compressed;
  storage::ColumnReader score_f32;
  storage::ColumnReader score_q8;
};

class InvertedIndex {
 public:
  // Builds (or reloads, see above) the index. `dir` empty = in-memory only.
  // The corpus must outlive the index (doclen and stats are shared).
  // With a directory, every persisted column (raw, compressed, and the
  // materialized f32/q8 score columns) is additionally opened through a
  // buffer pool configured by `storage` — any open/validation failure
  // (torn writes included) falls back to a clean rebuild.
  Status BuildFromCorpus(const Corpus& corpus, const std::string& dir,
                         BuildStats* stats,
                         const storage::StorageOptions& storage = {});

  // Same build-or-reuse contract, but the columns open through a shared
  // pool instead of a private one — the segmented database's path, one
  // pool across all segments. `dir` empty still means in-memory only (the
  // binding is then unused).
  Status BuildFromCorpusShared(const Corpus& corpus, const std::string& dir,
                               BuildStats* stats,
                               const StorageBinding& binding);

  // Opens a v3 index directory without a corpus: side tables (terms,
  // doclens) come off disk, postings from the compressed columns, storage
  // through the shared binding. Any missing/torn/version-mismatched file
  // is an error — the caller (Segment::Load on a manifest reopen) treats
  // it as "fall back to a rebuild", never "serve garbage".
  Status LoadFromDir(const std::string& dir, const StorageBinding& binding);

  uint32_t num_docs() const { return num_docs_; }
  uint32_t vocab_size() const {
    return static_cast<uint32_t>(terms_.size());
  }
  uint64_t num_postings() const { return num_postings_; }
  double avg_doc_len() const { return avg_doc_len_; }
  // Shortest document in the collection (MaxScore upper bounds).
  int32_t min_doc_len() const { return min_doc_len_; }

  const TermInfo& term(uint32_t t) const { return terms_[t]; }
  const std::vector<int32_t>& doc_lens() const { return doc_lens_; }

  // Per-128-window block-max metadata over the whole TD table, one entry
  // per window of the docid/tf columns (Block-Max MaxScore, DESIGN.md
  // §12). Built alongside the columns and persisted (kBlockMaxFile);
  // always populated, for in-memory, rebuilt, and reused/loaded indexes.
  const std::vector<BlockMaxEntry>& block_max() const { return blockmax_; }

  // Whole-TD-table columns; slice with [term(t).posting_start,
  // + term(t).doc_freq) for one posting list.
  const vec::VectorSource* docid_source() const { return docid_source_.get(); }
  const vec::VectorSource* tf_source() const { return tf_source_.get(); }

  // Raw block decoders behind the columns, for skip-aware access
  // (posting_cursor.h). Borrowed; valid as long as the index.
  const compress::BlockDecoder* docid_decoder() const {
    return docid_source_->decoder();
  }
  const compress::BlockDecoder* tf_decoder() const {
    return tf_source_->decoder();
  }

  // Convenience full decode of one term's postings (tests, oracles;
  // queries go through ScanOperator instead). Either output may be null.
  Status DecodePostings(uint32_t term, std::vector<int32_t>* docids,
                        std::vector<int32_t>* tfs) const;

  // Storage-era surface (null/failing for in-memory-only indexes). The
  // accessors hand out mutable storage state from a const index: the pool
  // is a cache, so pinning/eviction never changes what a query observes —
  // the bit-identity the eviction-stress tests pin.
  bool has_storage() const { return storage_ != nullptr; }
  IndexStorage* storage() const { return storage_.get(); }
  storage::BufferManager* buffer_manager() const {
    return storage_ == nullptr ? nullptr : storage_->pool;
  }
  const storage::SimulatedDisk* disk() const {
    return storage_ == nullptr ? nullptr : storage_->pool->disk();
  }
  // Empties the buffer pool — the Table 2 cold-run reset. Fails without
  // storage or with pins outstanding.
  Status EvictAll() const;

  // For a shared-pool index: drops this index's pages and file-id
  // registrations from the pool, then closes the readers. Must be called
  // before a shared-pool index dies (Segment's destructor does) — without
  // it the pool would keep id→File bindings to closed files. No-op for
  // owned or absent storage.
  void DetachSharedStorage();

  // Build-time BM25 parameters baked into the materialized score columns
  // (the TCM/TCMQ8 runs score with these).
  static constexpr float kMaterializedK1 = 1.2f;
  static constexpr float kMaterializedB = 0.75f;

 private:
  // The build-or-reuse engine behind both public build entry points:
  // exactly one of `owned` / `shared` is non-null and decides how storage
  // attaches.
  Status BuildImpl(const Corpus& corpus, const std::string& dir,
                   BuildStats* stats, const storage::StorageOptions* owned,
                   const StorageBinding* shared);
  // Loads the compressed column files from a fingerprint-matched dir; any
  // failure (missing, truncated, corrupt) means "rebuild", not "error".
  Status TryLoadColumns(const std::string& dir);
  // True when the persisted side tables byte-match the corpus-derived
  // terms_/doc_lens_ — reuse must reject a torn terms or doclen file the
  // same way it rejects a torn column.
  bool SideTablesMatch(const std::string& dir) const;
  // Reads the side tables into terms_/doc_lens_ (the corpus-free path).
  Status LoadSideTables(const std::string& dir);
  // Fills blockmax_ from the TD columns (every build path).
  void ComputeBlockMax(const std::vector<int32_t>& docid_col,
                       const std::vector<int32_t>& tf_col);
  // Reads kBlockMaxFile into blockmax_ with structural validation; any
  // failure means "rebuild" on the reuse path and a hard error on
  // LoadFromDir — v4 directories must carry a sane block-max table.
  Status LoadBlockMax(const std::string& dir);
  Status EncodeAndPersist(const std::string& dir, uint64_t corpus_fingerprint,
                          const std::vector<int32_t>& docid_col,
                          const std::vector<int32_t>& tf_col);
  // Computes the per-posting BM25 score column (build-time parameters) and
  // writes the f32 + quantized files.
  Status MaterializeScores(const std::string& dir,
                           const std::vector<int32_t>& docid_col,
                           const std::vector<int32_t>& tf_col) const;
  // Opens every persisted column through a fresh private pool (`owned`) or
  // the database-wide one (`shared`); failure = rebuild.
  Status AttachStorage(const std::string& dir,
                       const storage::StorageOptions* owned,
                       const StorageBinding* shared);
  // Opens the six column readers through `pool` at `file_id_base`.
  Status OpenColumns(const std::string& dir, storage::BufferManager* pool,
                     uint32_t file_id_base);

  uint32_t num_docs_ = 0;
  uint64_t num_postings_ = 0;
  double avg_doc_len_ = 0.0;
  int32_t min_doc_len_ = 0;
  std::vector<TermInfo> terms_;
  std::vector<int32_t> doc_lens_;
  std::vector<BlockMaxEntry> blockmax_;
  std::unique_ptr<vec::BlockVectorSource> docid_source_;
  std::unique_ptr<vec::BlockVectorSource> tf_source_;
  std::unique_ptr<IndexStorage> storage_;
};

}  // namespace x100ir::ir

#endif  // X100IR_IR_INDEX_BUILDER_H_
