// Retrieval-effectiveness metrics over the corpus's planted qrels: the
// paper reports early precision (p@20 over the judged queries) for every
// Table 1/2 run.
#ifndef X100IR_IR_METRICS_H_
#define X100IR_IR_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ir/corpus.h"

namespace x100ir::ir {

// Relevance judgments, lifted from the corpus's planted topics. The
// corpus must outlive the Qrels (relevant-doc lists are borrowed).
class Qrels {
 public:
  explicit Qrels(const Corpus& corpus) : corpus_(&corpus) {}

  uint32_t num_topics() const { return corpus_->num_topics(); }

  bool IsRelevant(int32_t topic, int32_t docid) const {
    if (topic < 0 ||
        static_cast<uint32_t>(topic) >= corpus_->num_topics()) {
      return false;
    }
    const auto& rel = corpus_->relevant_docs(static_cast<uint32_t>(topic));
    return std::binary_search(rel.begin(), rel.end(), docid);
  }

 private:
  const Corpus* corpus_;
};

// Fraction of the first k ranked docids that are relevant to `topic`.
// Fewer than k results count the missing tail as non-relevant (the TREC
// convention: p@20 divides by 20 regardless).
inline double PrecisionAtK(const std::vector<int32_t>& ranked, uint32_t k,
                           const Qrels& qrels, int32_t topic) {
  if (k == 0) return 0.0;
  const uint32_t n = std::min<uint32_t>(k, ranked.size());
  uint32_t hits = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (qrels.IsRelevant(topic, ranked[i])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

}  // namespace x100ir::ir

#endif  // X100IR_IR_METRICS_H_
