// Hand-built IR engine baselines for the Table 1 bake-off
// (bench_table1_systems): the paper's context is that "custom-built
// information retrieval engines have always outperformed generic database
// technology", and its claim is that a vectorized DBMS closes the gap.
// These are the custom engines for that comparison — classic
// document-at-a-time and term-at-a-time evaluation plus a MaxScore DAAT,
// all over raw uncompressed in-RAM posting arrays (no operators, no
// vectors, no compression: every structural advantage a bespoke engine
// enjoys, and the memory bill that comes with it — resident_bytes() is
// ~8 bytes/posting vs the index's compressed blocks).
//
// Scoring is the identical BM25 (same idf from the shared index, same
// kernel formula), so precision is equal by construction and the bench
// isolates execution architecture.
#ifndef X100IR_IR_CUSTOM_ENGINE_H_
#define X100IR_IR_CUSTOM_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ir/index_builder.h"
#include "ir/query_gen.h"
#include "ir/search_engine.h"

namespace x100ir::ir {

struct CustomSearchResult {
  // Rank order (score desc, docid asc) — same determinism contract as the
  // DBMS path, so results are comparable doc for doc.
  std::vector<int32_t> docids;
  std::vector<float> scores;
  uint64_t num_matches = 0;  // documents scored (DAAT/TAAT) or considered
  double cpu_seconds = 0.0;
};

class CustomIrEngine {
 public:
  // Decodes every posting list into flat in-RAM arrays. The index must
  // outlive the engine (doclens and term stats are shared).
  Status Load(const InvertedIndex* index);

  // Bytes of raw posting data held resident (docids + tfs).
  size_t resident_bytes() const {
    return (docids_.size() + tfs_.size()) * sizeof(int32_t);
  }

  void set_params(const Bm25Params& params) { params_ = params; }

  // Document-at-a-time: k-way linear merge of the query's posting lists,
  // scoring each document once, bounded min-heap for the top k.
  Status SearchDaat(const Query& query, uint32_t k,
                    CustomSearchResult* result) const;

  // Term-at-a-time: one pass per term accumulating scores into a
  // docid-indexed array, then a top-k sweep. The classic trade: no merge
  // logic, but O(num_docs) accumulator traffic per query.
  Status SearchTaat(const Query& query, uint32_t k,
                    CustomSearchResult* result) const;

  // DAAT + MaxScore pruning (galloping skips on the raw arrays): the
  // strongest conventional baseline, and the mirror of the DBMS path's
  // threshold propagation.
  Status SearchMaxScore(const Query& query, uint32_t k,
                        CustomSearchResult* result) const;

 private:
  // Validates + dedups query terms into `terms` (posting-bearing only).
  Status PrepareTerms(const Query& query, uint32_t k,
                      std::vector<uint32_t>* terms) const;

  const InvertedIndex* index_ = nullptr;
  // Flat TD copies, indexed via the shared TermInfo posting ranges.
  std::vector<int32_t> docids_;
  std::vector<int32_t> tfs_;
  Bm25Params params_;
};

}  // namespace x100ir::ir

#endif  // X100IR_IR_CUSTOM_ENGINE_H_
