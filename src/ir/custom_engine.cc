#include "ir/custom_engine.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/timer.h"
#include "ir/bm25.h"  // Bm25One — the shared scalar scoring kernel
#include "ir/topk.h"
#include "vec/merge_join.h"  // GallopLowerBound for MaxScore skips

namespace x100ir::ir {

Status CustomIrEngine::Load(const InvertedIndex* index) {
  if (index == nullptr) return InvalidArgument("null index");
  if (index->num_postings() == 0) {
    return InvalidArgument("index has no postings");
  }
  index_ = index;
  docids_.resize(index->num_postings());
  tfs_.resize(index->num_postings());
  // One bulk range-decode per column: the custom engine pays the decode
  // once at load and never again — the "all raw, all resident" design
  // point Table 1's hand-built engines occupy.
  index->docid_source()->Read(0, static_cast<uint32_t>(docids_.size()),
                              docids_.data());
  index->tf_source()->Read(0, static_cast<uint32_t>(tfs_.size()),
                           tfs_.data());
  return OkStatus();
}

Status CustomIrEngine::PrepareTerms(const Query& query, uint32_t k,
                                    std::vector<uint32_t>* terms) const {
  if (index_ == nullptr) return InvalidArgument("engine not loaded");
  if (k == 0) return InvalidArgument("k must be > 0");
  *terms = query.terms;
  std::sort(terms->begin(), terms->end());
  terms->erase(std::unique(terms->begin(), terms->end()), terms->end());
  if (terms->empty()) return InvalidArgument("query has no terms");
  for (uint32_t t : *terms) {
    if (t >= index_->vocab_size()) {
      return InvalidArgument("query term outside vocabulary");
    }
  }
  terms->erase(std::remove_if(terms->begin(), terms->end(),
                              [this](uint32_t t) {
                                return index_->term(t).doc_freq == 0;
                              }),
               terms->end());
  return OkStatus();
}

Status CustomIrEngine::SearchDaat(const Query& query, uint32_t k,
                                  CustomSearchResult* result) const {
  if (result == nullptr) return InvalidArgument("null result");
  std::vector<uint32_t> terms;
  X100IR_RETURN_IF_ERROR(PrepareTerms(query, k, &terms));
  *result = CustomSearchResult();
  WallTimer timer;

  const float k1 = params_.k1, b = params_.b;
  const float inv_avgdl =
      index_->avg_doc_len() > 0.0
          ? static_cast<float>(1.0 / index_->avg_doc_len())
          : 0.0f;
  const int32_t* doclens = index_->doc_lens().data();

  struct List {
    const int32_t* d;
    const int32_t* tf;
    uint32_t n;
    uint32_t i = 0;
    float idf;
  };
  std::vector<List> lists;
  lists.reserve(terms.size());
  for (uint32_t t : terms) {
    const TermInfo& info = index_->term(t);
    lists.push_back({docids_.data() + info.posting_start,
                     tfs_.data() + info.posting_start, info.doc_freq, 0,
                     info.idf});
  }

  TopK topk(k);
  for (;;) {
    int32_t d = 0;
    bool any = false;
    for (const List& l : lists) {
      if (l.i < l.n && (!any || l.d[l.i] < d)) {
        d = l.d[l.i];
        any = true;
      }
    }
    if (!any) break;
    float score = 0.0f;
    for (List& l : lists) {
      if (l.i < l.n && l.d[l.i] == d) {
        score += Bm25One(l.idf, static_cast<float>(l.tf[l.i]),
                         static_cast<float>(doclens[d]), k1, b, inv_avgdl);
        ++l.i;
      }
    }
    topk.Push(d, score);
    ++result->num_matches;
  }
  topk.FinishSorted(&result->docids, &result->scores);
  result->cpu_seconds = timer.ElapsedSeconds();
  return OkStatus();
}

Status CustomIrEngine::SearchTaat(const Query& query, uint32_t k,
                                  CustomSearchResult* result) const {
  if (result == nullptr) return InvalidArgument("null result");
  std::vector<uint32_t> terms;
  X100IR_RETURN_IF_ERROR(PrepareTerms(query, k, &terms));
  *result = CustomSearchResult();
  WallTimer timer;

  const float k1 = params_.k1, b = params_.b;
  const float inv_avgdl =
      index_->avg_doc_len() > 0.0
          ? static_cast<float>(1.0 / index_->avg_doc_len())
          : 0.0f;
  const int32_t* doclens = index_->doc_lens().data();

  // The accumulator array is the TAAT signature: simple per-term loops, at
  // the price of touching O(num_docs) memory per query.
  std::vector<float> acc(index_->num_docs(), 0.0f);
  for (uint32_t t : terms) {
    const TermInfo& info = index_->term(t);
    const int32_t* d = docids_.data() + info.posting_start;
    const int32_t* tf = tfs_.data() + info.posting_start;
    const float idf = info.idf;
    for (uint32_t i = 0; i < info.doc_freq; ++i) {
      acc[d[i]] += Bm25One(idf, static_cast<float>(tf[i]),
                           static_cast<float>(doclens[d[i]]), k1, b,
                           inv_avgdl);
    }
  }
  TopK topk(k);
  for (uint32_t d = 0; d < acc.size(); ++d) {
    if (acc[d] > 0.0f) {
      topk.Push(static_cast<int32_t>(d), acc[d]);
      ++result->num_matches;
    }
  }
  topk.FinishSorted(&result->docids, &result->scores);
  result->cpu_seconds = timer.ElapsedSeconds();
  return OkStatus();
}

Status CustomIrEngine::SearchMaxScore(const Query& query, uint32_t k,
                                      CustomSearchResult* result) const {
  if (result == nullptr) return InvalidArgument("null result");
  std::vector<uint32_t> terms;
  X100IR_RETURN_IF_ERROR(PrepareTerms(query, k, &terms));
  *result = CustomSearchResult();
  WallTimer timer;

  const float k1 = params_.k1, b = params_.b;
  const float inv_avgdl =
      index_->avg_doc_len() > 0.0
          ? static_cast<float>(1.0 / index_->avg_doc_len())
          : 0.0f;
  const int32_t* doclens = index_->doc_lens().data();
  const float min_dl = static_cast<float>(index_->min_doc_len());

  struct List {
    const int32_t* d;
    const int32_t* tf;
    uint32_t n;
    uint32_t i = 0;
    float idf;
    float ub;
  };
  std::vector<List> lists;
  lists.reserve(terms.size());
  for (uint32_t t : terms) {
    const TermInfo& info = index_->term(t);
    const float tf_max = static_cast<float>(info.max_tf);
    lists.push_back({docids_.data() + info.posting_start,
                     tfs_.data() + info.posting_start, info.doc_freq, 0,
                     info.idf,
                     Bm25One(info.idf, tf_max, min_dl, k1, b, inv_avgdl)});
  }
  // Weakest first; prefix[i] = sum of ubs of lists[0..i].
  std::sort(lists.begin(), lists.end(),
            [](const List& a, const List& b2) { return a.ub < b2.ub; });
  const size_t m = lists.size();
  std::vector<float> prefix(m);
  float acc = 0.0f;
  for (size_t i = 0; i < m; ++i) {
    acc += lists[i].ub;
    prefix[i] = acc;
  }

  TopK topk(k);
  size_t ness = 0;  // lists[0..ness) are non-essential (probe-only)
  for (;;) {
    const float theta = topk.threshold();
    while (ness < m && prefix[ness] < theta) ++ness;
    if (ness == m) break;
    // Candidate: smallest head among essential lists.
    int32_t d = 0;
    bool any = false;
    for (size_t i = ness; i < m; ++i) {
      const List& l = lists[i];
      if (l.i < l.n && (!any || l.d[l.i] < d)) {
        d = l.d[l.i];
        any = true;
      }
    }
    if (!any) break;
    float score = 0.0f;
    for (size_t i = ness; i < m; ++i) {
      List& l = lists[i];
      if (l.i < l.n && l.d[l.i] == d) {
        score += Bm25One(l.idf, static_cast<float>(l.tf[l.i]),
                         static_cast<float>(doclens[d]), k1, b, inv_avgdl);
        ++l.i;
      }
    }
    ++result->num_matches;
    // Probe non-essential lists strongest-first while the bound allows.
    float remaining = ness > 0 ? prefix[ness - 1] : 0.0f;
    bool viable = true;
    for (size_t p = ness; p-- > 0;) {
      if (topk.full() && score + remaining < topk.threshold()) {
        viable = false;
        break;
      }
      List& l = lists[p];
      remaining -= l.ub;
      l.i = vec::GallopLowerBound(l.d, l.i, l.n, d);
      if (l.i < l.n && l.d[l.i] == d) {
        score += Bm25One(l.idf, static_cast<float>(l.tf[l.i]),
                         static_cast<float>(doclens[d]), k1, b, inv_avgdl);
      }
    }
    if (viable) topk.Push(d, score);
  }
  topk.FinishSorted(&result->docids, &result->scores);
  result->cpu_seconds = timer.ElapsedSeconds();
  return OkStatus();
}

}  // namespace x100ir::ir
