// The Table 2 storage-era runs (DESIGN.md §8.5): BM25T / BM25TC / BM25TCM /
// BM25TCMQ8, all reading cold columns through the buffer pool. The four
// runs share one two-pass evaluation and differ only in which columns they
// scan:
//
//             docid column   value column        score =
//   BM25T     raw i32        raw tf              Bm25One(tf, doclen)
//   BM25TC    PFOR-DELTA     PFOR tf             Bm25One(tf, doclen)
//   BM25TCM   PFOR-DELTA     f32 score           the value itself
//   BM25TCMQ8 PFOR-DELTA     u8 quantized score  bias + scale * q
//
// Two-pass protocol (the paper's BM25T trick): pass 1 fully evaluates only
// the *selective* terms (df below a cutoff), completing each candidate's
// score with forward skip-probes into the long lists — so a cold query
// reads the short lists plus a sliver of the long ones. Any document
// outside the candidate set lives only in long lists and is bounded by
// U = Σ ub(long terms); when the pass-1 top-k threshold θ exceeds U the
// answer is provably exact. Otherwise the *second pass* runs — the same
// relational plan as the in-memory BM25 run (Scan → [Bm25Score] →
// MergeUnion → TopK), just over pool-served cold columns; for the
// materialized runs the Bm25Score operator drops out of the plan entirely,
// which is the point of materialization.
//
// The materialized runs score with the build-time BM25 parameters baked
// into the score column (InvertedIndex::kMaterialized*), not opts.bm25.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "common/status.h"
#include "ir/bm25.h"
#include "ir/index_builder.h"
#include "ir/plan_ops.h"
#include "ir/search_engine.h"
#include "ir/topk.h"
#include "storage/column_reader.h"
#include "storage/column_source.h"
#include "vec/scan.h"

namespace x100ir::ir {
namespace {

// Which columns a run scans and how their values become scores.
struct RunColumns {
  storage::ColumnReader* docid = nullptr;
  storage::ColumnReader* value = nullptr;
  bool value_is_score = false;  // f32/q8: the value column IS the score
  float k1 = 0.0f, b = 0.0f;    // effective scoring parameters
  float ub_slack = 0.0f;        // per-term upper-bound slack (q8 rounding)
};

RunColumns ColumnsFor(RunType type, IndexStorage* st,
                      const SearchOptions& opts) {
  RunColumns c;
  switch (type) {
    case RunType::kBm25T:
      c.docid = &st->docid_raw;
      c.value = &st->tf_raw;
      c.k1 = opts.bm25.k1;
      c.b = opts.bm25.b;
      break;
    case RunType::kBm25TC:
      c.docid = &st->docid_compressed;
      c.value = &st->tf_compressed;
      c.k1 = opts.bm25.k1;
      c.b = opts.bm25.b;
      break;
    case RunType::kBm25TCM:
      c.docid = &st->docid_compressed;
      c.value = &st->score_f32;
      c.value_is_score = true;
      c.k1 = InvertedIndex::kMaterializedK1;
      c.b = InvertedIndex::kMaterializedB;
      break;
    case RunType::kBm25TCMQ8:
    default:
      c.docid = &st->docid_compressed;
      c.value = &st->score_q8;
      c.value_is_score = true;
      c.k1 = InvertedIndex::kMaterializedK1;
      c.b = InvertedIndex::kMaterializedB;
      // Dequantized values can exceed the analytic bound by half a step.
      c.ub_slack = st->score_q8.q8_scale() * 0.5f;
      break;
  }
  return c;
}

// Forward value access with a decoded-window cache: pass-1 probes ascend,
// so consecutive hits to the same 128-value window cost one pool read.
class ValueWindowCache {
 public:
  void Init(storage::ColumnReader* col) {
    col_ = col;
    base_ = ~0ull;
  }

  Status ScoreAt(uint64_t p, float* out) {
    X100IR_RETURN_IF_ERROR(Ensure(p));
    *out = f32_[p - base_];
    return OkStatus();
  }
  Status TfAt(uint64_t p, int32_t* out) {
    X100IR_RETURN_IF_ERROR(Ensure(p));
    *out = i32_[p - base_];
    return OkStatus();
  }

 private:
  Status Ensure(uint64_t p) {
    constexpr uint64_t kStride = 128;
    const uint64_t base = p & ~(kStride - 1);
    if (base == base_) return OkStatus();
    const uint32_t len = static_cast<uint32_t>(
        std::min<uint64_t>(kStride, col_->value_count() - base));
    const bool f32 =
        col_->encoding() == ColumnFileHeader::kRawF32 ||
        col_->encoding() == ColumnFileHeader::kQuantU8;
    X100IR_RETURN_IF_ERROR(f32 ? col_->ReadF32(base, len, f32_)
                               : col_->Read(base, len, i32_));
    base_ = base;
    return OkStatus();
  }

  storage::ColumnReader* col_ = nullptr;
  uint64_t base_ = ~0ull;
  union {
    int32_t i32_[128];
    float f32_[128];
  };
};

// One query term's state across the two passes.
struct ColdTerm {
  uint32_t term = 0;
  const TermInfo* info = nullptr;
  // Scoring idf: the snapshot's live idf for the tf-scoring runs (T/TC),
  // always the build-time idf for the materialized runs — their score
  // columns were baked with it, so live stats cannot apply.
  float idf = 0.0f;
  float ub = 0.0f;
  bool selective = false;

  // Pass 1, selective: fully materialized (docid, score) pairs.
  std::vector<int32_t> docids;
  std::vector<float> scores;
  size_t off = 0;

  // Pass 1, long: forward skip cursor + value completion cache.
  storage::SortedColumnCursor cursor;
  ValueWindowCache values;
};

}  // namespace

Status SearchEngine::SearchColdRun(RunType type,
                                   const std::vector<uint32_t>& terms,
                                   const SearchOptions& opts,
                                   SearchResult* result) const {
  IndexStorage* st = index_->storage();
  RunColumns cols = ColumnsFor(type, st, opts);
  vec::ExecContext ctx;
  ctx.vector_size = opts.vector_size;
  ctx.rng = Rng(opts.rng_seed);
  X100IR_RETURN_IF_ERROR(ctx.Validate());

  // The tf-scoring runs (T/TC) score under the snapshot's live stats when
  // present; the materialized runs keep the build-time stats their score
  // columns were baked with (both for the values and for the upper bounds
  // — a bound computed under different stats than the scores would not be
  // a bound).
  const double eff_avgdl = cols.value_is_score
                               ? index_->avg_doc_len()
                               : EffectiveAvgDocLen(opts, *index_);
  const float inv_avgdl =
      eff_avgdl > 0.0 ? static_cast<float>(1.0 / eff_avgdl) : 0.0f;
  const float min_dl = static_cast<float>(index_->min_doc_len());
  const int32_t* doclens = index_->doc_lens().data();
  const uint32_t df_cutoff =
      opts.twopass_df_cutoff != 0
          ? opts.twopass_df_cutoff
          : std::max<uint32_t>(64, index_->num_docs() / 16);
  const uint64_t windows_before = cols.docid->windows_decoded() +
                                  cols.value->windows_decoded();

  const size_t m = terms.size();
  std::vector<ColdTerm> states(m);
  for (size_t i = 0; i < m; ++i) {
    ColdTerm& ts = states[i];
    ts.term = terms[i];
    ts.info = &index_->term(terms[i]);
    ts.idf = cols.value_is_score ? ts.info->idf
                                 : EffectiveIdf(opts, *index_, terms[i]);
    ts.ub = Bm25One(ts.idf, static_cast<float>(ts.info->max_tf),
                    min_dl, cols.k1, cols.b, inv_avgdl) +
            cols.ub_slack;
    ts.selective = ts.info->doc_freq <= df_cutoff;
  }
  // Long lists strongest-first: probe completion retires the largest
  // upper bounds first, so the early-abandon test bites soonest.
  std::vector<uint32_t> longs, shorts;
  for (uint32_t i = 0; i < m; ++i) {
    (states[i].selective ? shorts : longs).push_back(i);
  }
  std::sort(longs.begin(), longs.end(), [&states](uint32_t a, uint32_t b) {
    if (states[a].ub != states[b].ub) return states[a].ub > states[b].ub;
    return states[a].term < states[b].term;
  });
  float u_long = 0.0f;
  for (uint32_t i : longs) u_long += states[i].ub;

  TopK topk(opts.k);
  uint64_t candidates = 0;
  uint64_t windows_skipped = 0;
  bool exact = false;

  // Window-count accounting, shared by the normal exit and the deadline
  // bail-outs so a DeadlineExceeded result still carries its real stats.
  // (The reader counters are process-wide totals; under concurrency the
  // delta is approximate — see column_reader.h.)
  const auto account_windows = [&] {
    ctx.stats.windows_decoded += cols.docid->windows_decoded() +
                                 cols.value->windows_decoded() -
                                 windows_before;
    ctx.stats.windows_skipped += windows_skipped;
    result->stats = ctx.stats;
  };

  if (!shorts.empty()) {
    // ---- Pass 1: evaluate the short lists fully. ----
    for (uint32_t i : shorts) {
      ColdTerm& ts = states[i];
      const uint64_t start = ts.info->posting_start;
      const uint32_t df = ts.info->doc_freq;
      ts.docids.resize(df);
      ts.scores.resize(df);
      X100IR_RETURN_IF_ERROR(
          cols.docid->Read(start, df, ts.docids.data()));
      if (cols.value_is_score) {
        X100IR_RETURN_IF_ERROR(
            cols.value->ReadF32(start, df, ts.scores.data()));
      } else {
        std::vector<int32_t> tfs(df), dls(df);
        X100IR_RETURN_IF_ERROR(cols.value->Read(start, df, tfs.data()));
        for (uint32_t j = 0; j < df; ++j) dls[j] = doclens[ts.docids[j]];
        MapBm25(df, ts.scores.data(), tfs.data(), dls.data(), ts.idf,
                cols.k1, cols.b, inv_avgdl);
        ++ctx.stats.primitive_calls;
      }
    }
    for (uint32_t i : longs) {
      ColdTerm& ts = states[i];
      X100IR_RETURN_IF_ERROR(ts.cursor.Init(
          cols.docid, ts.info->posting_start,
          ts.info->posting_start + ts.info->doc_freq));
      ts.values.Init(cols.value);
    }

    // Merge the short lists in docid order; complete each candidate from
    // the long lists with forward probes, abandoning as soon as the
    // remaining upper bounds cannot reach the live threshold.
    uint64_t merge_steps = 0;
    for (;;) {
      // Deadline checkpoint every 128 candidates (§9.3) — the pass-1 merge
      // is scalar, so per-iteration checks would cost more than the merge.
      if (opts.deadline != nullptr && (merge_steps++ & 127u) == 0) {
        Status live = opts.deadline->Check();
        if (!live.ok()) {
          result->num_matches = candidates;
          account_windows();
          return live;
        }
      }
      int32_t d = 0;
      bool any = false;
      for (uint32_t i : shorts) {
        const ColdTerm& ts = states[i];
        if (ts.off >= ts.docids.size()) continue;
        if (!any || ts.docids[ts.off] < d) {
          d = ts.docids[ts.off];
          any = true;
        }
      }
      if (!any) break;
      float s = 0.0f;
      for (uint32_t i : shorts) {
        ColdTerm& ts = states[i];
        if (ts.off < ts.docids.size() && ts.docids[ts.off] == d) {
          s += ts.scores[ts.off];
          ++ts.off;
        }
      }
      // Segmented read with deletes: a dead doc is consumed off the short
      // lists (positional) but never becomes a candidate.
      if (TombstoneTest(opts.tombstones, d)) continue;
      ++candidates;
      float remaining = u_long;
      bool viable = true;
      for (uint32_t i : longs) {
        const float live = topk.threshold();
        if (s + remaining < live) {
          viable = false;
          break;
        }
        ColdTerm& ts = states[i];
        remaining -= ts.ub;
        bool found = false;
        X100IR_RETURN_IF_ERROR(ts.cursor.SkipTo(d, &found));
        if (found) {
          int32_t v = 0;
          X100IR_RETURN_IF_ERROR(ts.cursor.Value(&v));
          if (v == d) {
            const uint64_t p = ts.cursor.position();
            if (cols.value_is_score) {
              float contrib = 0.0f;
              X100IR_RETURN_IF_ERROR(ts.values.ScoreAt(p, &contrib));
              s += contrib;
            } else {
              int32_t tf = 0;
              X100IR_RETURN_IF_ERROR(ts.values.TfAt(p, &tf));
              s += Bm25One(ts.idf, static_cast<float>(tf),
                           static_cast<float>(doclens[d]), cols.k1, cols.b,
                           inv_avgdl);
            }
            ++ctx.stats.docs_probed;
          }
        }
      }
      if (viable) topk.Push(d, s);
    }
    // Exact iff no document outside the candidate set can beat the
    // threshold. Strict >: at exact equality a long-lists-only document
    // could still win its tie on docid order.
    exact = longs.empty() || (topk.full() && topk.threshold() > u_long);
    for (uint32_t i : longs) {
      windows_skipped += states[i].cursor.windows_skipped();
    }
  }

  if (exact) {
    topk.FinishSorted(&result->docids, &result->scores);
    result->num_matches = candidates;
  } else {
    // ---- Pass 2: the full relational plan over the cold columns. ----
    result->used_second_pass = !shorts.empty();
    std::vector<storage::ColumnSliceSource*> raw_sources;
    std::vector<vec::OperatorPtr> scored;
    scored.reserve(m);
    for (size_t i = 0; i < m; ++i) {
      const TermInfo& info = *states[i].info;
      vec::Schema schema;
      schema.Add("docid", vec::TypeId::kI32);
      schema.Add(cols.value_is_score ? "score" : "tf",
                 cols.value_is_score ? vec::TypeId::kF32
                                     : vec::TypeId::kI32);
      std::vector<vec::VectorSourcePtr> sources;
      auto dsrc = std::make_unique<storage::ColumnSliceSource>(
          cols.docid, info.posting_start, info.doc_freq, vec::TypeId::kI32);
      auto vsrc = std::make_unique<storage::ColumnSliceSource>(
          cols.value, info.posting_start, info.doc_freq,
          cols.value_is_score ? vec::TypeId::kF32 : vec::TypeId::kI32);
      raw_sources.push_back(dsrc.get());
      raw_sources.push_back(vsrc.get());
      sources.push_back(std::move(dsrc));
      sources.push_back(std::move(vsrc));
      vec::OperatorPtr scan = std::make_unique<vec::ScanOperator>(
          &ctx, std::move(schema), std::move(sources));
      if (cols.value_is_score) {
        // Materialized runs: the scan already yields (docid, score) — no
        // scoring operator at all.
        scored.push_back(std::move(scan));
      } else {
        scored.push_back(std::make_unique<Bm25ScoreOperator>(
            &ctx, std::move(scan), states[i].idf, opts.bm25, doclens,
            inv_avgdl));
      }
    }
    auto union_op = std::make_unique<MergeUnionOperator>(
        &ctx, std::move(scored), /*sum_scores=*/true);
    auto topk_op =
        std::make_unique<TopKOperator>(&ctx, std::move(union_op), opts.k);
    topk_op->set_tombstones(opts.tombstones);
    TopKOperator* topk_raw = topk_op.get();
    vec::OperatorPtr root = std::move(topk_op);
    X100IR_RETURN_IF_ERROR(root->Open());
    vec::Batch* batch = nullptr;
    Status exec;
    for (;;) {
      if (opts.deadline != nullptr) {
        exec = opts.deadline->Check();
        if (!exec.ok()) break;
      }
      exec = root->Next(&batch);
      if (!exec.ok() || batch == nullptr) break;
      const int32_t* docids = batch->columns[0]->Data<int32_t>();
      const float* scores = batch->columns[1]->Data<float>();
      result->docids.insert(result->docids.end(), docids,
                            docids + batch->count);
      result->scores.insert(result->scores.end(), scores,
                            scores + batch->count);
    }
    result->num_matches = topk_raw->rows_consumed();
    root->Close();
    if (!exec.ok()) {
      account_windows();
      return exec;
    }
    // A pool failure inside a VectorSource cannot surface through the
    // void Read interface; it latches in the source and is checked here —
    // a failed query errors out instead of returning zero-filled garbage.
    for (const storage::ColumnSliceSource* src : raw_sources) {
      X100IR_RETURN_IF_ERROR(src->status());
    }
  }

  account_windows();
  return OkStatus();
}

}  // namespace x100ir::ir
