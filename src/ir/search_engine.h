// The engine's public query API: RunType selects the paper's Table 2 run
// configuration, SearchOptions carries the §4 demonstration knobs
// (vector_size) and the retrieval model parameters, and SearchEngine lowers
// a (query, run) pair onto a vec:: operator plan over the inverted index's
// compressed posting columns.
//
// Plan shapes (DESIGN.md §6.2):
//   kBoolAnd — Scan(docid)ₜ per term  → MergeJoin(intersect)      → collect
//   kBoolOr  — Scan(docid)ₜ per term  → MergeUnion(distinct)      → collect
//   kBm25    — Scan(docid,tf)ₜ        → Bm25Score(idfₜ, doclen)
//                                     → MergeUnion(sum scores)    → TopK(k)
//
// The storage-era runs (DESIGN.md §8.5) execute the same ranked plan
// shapes over *cold* columns served through the buffer pool, preceded by a
// two-pass candidate phase; they require an on-disk index. What each adds:
//   kBm25T     two-pass evaluation over the raw (uncompressed) columns
//   kBm25TC    + compressed columns (cold I/O shrinks by the §3.3 ratio)
//   kBm25TCM   + materialized f32 score column (no tf decode, no doclen
//                gather, no float kernel on the hot path)
//   kBm25TCMQ8 + 8-bit quantized scores (cold I/O shrinks 4x vs f32)
#ifndef X100IR_IR_SEARCH_ENGINE_H_
#define X100IR_IR_SEARCH_ENGINE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "common/shared_theta.h"
#include "common/status.h"
#include "ir/bm25.h"
#include "ir/collection_stats.h"
#include "ir/index_builder.h"
#include "ir/query_gen.h"
#include "vec/scan.h"

namespace x100ir::ir {

enum class RunType : uint8_t {
  kBoolAnd = 0,
  kBoolOr = 1,
  kBm25 = 2,
  kBm25T = 3,      // + two-pass candidate cutoff
  kBm25TC = 4,     // + compressed cold I/O accounting
  kBm25TCM = 5,    // + materialized score column
  kBm25TCMQ8 = 6,  // + 8-bit quantized scores
};

inline const char* RunTypeName(RunType t) {
  switch (t) {
    case RunType::kBoolAnd:
      return "BoolAND";
    case RunType::kBoolOr:
      return "BoolOR";
    case RunType::kBm25:
      return "BM25";
    case RunType::kBm25T:
      return "BM25T";
    case RunType::kBm25TC:
      return "BM25TC";
    case RunType::kBm25TCM:
      return "BM25TCM";
    case RunType::kBm25TCMQ8:
      return "BM25TCMQ8";
  }
  return "UNKNOWN";
}

inline std::array<RunType, 7> AllRunTypes() {
  return {RunType::kBoolAnd,  RunType::kBoolOr,   RunType::kBm25,
          RunType::kBm25T,    RunType::kBm25TC,   RunType::kBm25TCM,
          RunType::kBm25TCMQ8};
}

struct Bm25Params {
  float k1 = 1.2f;
  float b = 0.75f;
};

struct SearchOptions {
  // Execution vector size (the §4 knob bench_vector_size sweeps). Plans
  // validate at open: 0 is rejected, oversizes clamp to
  // vec::ExecContext::kMaxVectorSize.
  uint32_t vector_size = 1024;
  // Results to return (ranked runs) / result-set cap (boolean runs).
  // k == 0 is rejected (Search validates the whole request up front).
  uint32_t k = 20;
  Bm25Params bm25;

  // Execution-path selection (DESIGN.md §7). Defaults are the streaming,
  // skip-aware hot paths; the PR 3 materializing plans stay reachable for
  // A/B benching (bench_table1_systems) and oracle tests.
  //
  // BoolAND: streaming galloping merge-join driving SkipTo over the
  // compressed docid windows, vs materialize-then-intersect.
  bool streaming_and = true;
  // BM25: threshold-propagated MaxScore evaluation (per-term upper bounds,
  // essential/non-essential partition, probe completion), vs score-all
  // union.
  bool maxscore_bm25 = true;
  // Block-Max refinement of MaxScore (DESIGN.md §12): before decoding a
  // 128-posting window of an essential term, test the window's stored
  // (max_tf, min_doclen) score bound against the live threshold and skip
  // the decode outright when it cannot beat θ. Off = PR 8's term-level
  // bounds only — the agreement oracle (skips never change the top-k,
  // only num_matches and the window counters).
  bool blockmax = true;
  // Score essential-term tf windows with the fused decode→score kernel
  // (fused_score.h) instead of decode-then-MapBm25. Bit-identical by
  // contract; off = the composed two-step path, kept as the agreement
  // oracle.
  bool fused_score = true;

  // Storage runs: document-frequency cutoff separating pass 1's short
  // ("selective") lists from the long lists that are only probed. 0 picks
  // the default (num_docs / 16); tests pin both pass shapes by forcing it
  // high (everything selective) or to 1 (everything long → always a full
  // second pass).
  uint32_t twopass_df_cutoff = 0;

  // Borrowed per-query deadline/cancellation token (DESIGN.md §9.3), or
  // nullptr for no limit. The engine checks it at vector-batch granularity
  // and returns DeadlineExceeded with the stats accumulated so far — a
  // partial result is reported as a failure, never as a short answer.
  const Deadline* deadline = nullptr;
  // Seed for the query's private ExecContext::rng stream. The engine never
  // draws from global state, so any fixed seed gives a reproducible query.
  uint64_t rng_seed = 0;

  // Segmented-read plumbing (DESIGN.md §10), set by SearchSnapshot per
  // segment — not part of the user-facing knob surface. Both borrowed,
  // valid for the duration of the call; null means "score with the
  // index's own build-time stats / no deletes", which is the monolithic
  // behavior every pre-segmentation test pins.
  //
  // Live collection stats: per-term idf and avg_doc_len override the
  // segment-local values so every segment of a snapshot scores under one
  // global model.
  const CollectionStats* global_stats = nullptr;
  // Tombstone bitmap over *this index's local docids* (bit d = doc d
  // deleted). Filtered in every path: boolean collect, union TopK drain,
  // MaxScore candidates, and both storage-run passes. Deleted docs are
  // excluded from results and from num_matches. (TombstoneTest lives in
  // collection_stats.h.)
  const uint64_t* tombstones = nullptr;

  // Distributed shared-θ channel (DESIGN.md §11.3), set by the dist/
  // coordinator for doc-partitioned scatter-gather queries; null for every
  // single-engine call. When present, SearchBm25MaxScore floors its
  // pruning threshold with the channel's global k-th-best lower bound at
  // every vector-batch boundary (pruning candidates, demoting terms, and
  // bailing out of probe completion that a shard-local threshold could
  // not) and publishes its own k-th-best back. Results whose score is
  // provably below the global bound may then be *omitted* from this
  // engine's top-k — sound for the coordinator (they cannot enter the
  // merged top-k; exact ties at the bound are always kept so the docid
  // tiebreak stays intact), but it means a seeded engine's result is a
  // top-k of the cluster, not of this shard alone.
  SharedTheta* shared_theta = nullptr;
};

// Effective scoring statistics: the snapshot's live collection stats when
// the call is a segmented read, the index's own build-time values
// otherwise. Every scoring path (union, MaxScore, both storage passes)
// resolves idf and avg_doc_len through these, so a segment always scores
// under the global live model.
inline float EffectiveIdf(const SearchOptions& opts, const InvertedIndex& idx,
                          uint32_t term) {
  return opts.global_stats != nullptr
             ? Bm25Idf(opts.global_stats->num_docs,
                       opts.global_stats->df[term])
             : idx.term(term).idf;
}
inline double EffectiveAvgDocLen(const SearchOptions& opts,
                                 const InvertedIndex& idx) {
  return opts.global_stats != nullptr ? opts.global_stats->avg_doc_len
                                      : idx.avg_doc_len();
}

struct SearchResult {
  // Ranked runs: top-k docids with scores, rank order (score desc, docid
  // asc tiebreak). Boolean runs: up to k matching docids in docid order,
  // scores empty.
  std::vector<int32_t> docids;
  std::vector<float> scores;
  // Full match count before the k cap. For ranked runs: candidate
  // documents considered. Under MaxScore pruning this counts documents
  // reached through the essential lists — documents provably unable to
  // enter the top k are never candidates, so the count can be lower than
  // the score-all union's. The two-pass storage runs count pass-1
  // candidates, or the full union when the second pass ran.
  uint64_t num_matches = 0;
  // Two-pass storage runs: true when pass 1's threshold could not rule out
  // documents living only in the long lists and the full evaluation ran.
  bool used_second_pass = false;
  // Wall-clock of the run (real decode/score work).
  double seconds = 0.0;
  // Simulated cold-I/O seconds charged by the storage layer's disk model
  // (zero for in-memory runs and for fully pool-resident storage runs).
  double io_seconds = 0.0;

  // Per-query execution telemetry (windows decoded/skipped, primitive
  // calls, vectors pruned, probes) — what the skipping tests and the
  // bench_table1_systems gates assert on.
  vec::ExecStats stats;

  // Snapshot epoch the query executed against (0 until the first live
  // update). Set by Database::Search; the during-merge bit-identity tests
  // use it to pick which serial oracle a result must match.
  uint64_t epoch = 0;

  // What Table 2 reports: real work plus simulated disk time.
  double TotalSeconds() const { return seconds + io_seconds; }

  // Folds another structure's execution accounting into this result — the
  // one-call aggregation every multi-structure read uses (per-segment
  // results in SearchSnapshot, per-shard results in the dist/
  // coordinator). Docids/scores/epoch are NOT touched: result merging is
  // rank- and structure-specific, accounting aggregation is not. Matches
  // are additive because the merged structures partition the docid space.
  void MergeAccounting(const SearchResult& o) {
    num_matches += o.num_matches;
    used_second_pass = used_second_pass || o.used_second_pass;
    io_seconds += o.io_seconds;
    stats += o.stats;
  }
};

class SearchEngine {
 public:
  SearchEngine() = default;
  // The index must outlive the engine.
  explicit SearchEngine(const InvertedIndex* index) : index_(index) {}

  void set_index(const InvertedIndex* index) { index_ = index; }

  // Runs one query. Builds the plan, executes it, fills `result`
  // (overwritten), and records wall time in result->seconds.
  //
  // Const and thread-safe (DESIGN.md §9.1): the engine holds no per-query
  // state — every query builds its own plan over the immutable index, all
  // scratch lives in the per-query ExecContext, and the storage path goes
  // through the thread-safe buffer pool. Any number of threads may Search
  // through one engine concurrently.
  Status Search(const Query& query, RunType type, const SearchOptions& opts,
                SearchResult* result) const;

 private:
  Status SearchBool(const std::vector<uint32_t>& terms, bool conjunctive,
                    const SearchOptions& opts, SearchResult* result) const;
  Status SearchBm25(const std::vector<uint32_t>& terms,
                    const SearchOptions& opts, SearchResult* result) const;
  Status SearchBm25MaxScore(const std::vector<uint32_t>& terms,
                            const SearchOptions& opts,
                            SearchResult* result) const;
  // The storage-era two-pass runs (storage_runs.cc): BM25T/TC/TCM/TCMQ8
  // over pool-served cold columns. Requires index_->has_storage().
  Status SearchColdRun(RunType type, const std::vector<uint32_t>& terms,
                       const SearchOptions& opts,
                       SearchResult* result) const;

  const InvertedIndex* index_ = nullptr;
};

}  // namespace x100ir::ir

#endif  // X100IR_IR_SEARCH_ENGINE_H_
