// Snapshot reads and live updates over the segmented index (DESIGN.md §10).
//
// The SnapshotManager owns the database's mutable truth: the immutable
// Segment set, per-segment tombstone bitmaps, the active DeltaSegment write
// buffer (plus any sealed delta a running merge has adopted), the live
// CollectionStats, and the docid/segment-id allocators. Every mutation
// (AddDocument, DeleteDocument, merge commit) happens under one commit
// mutex and ends by publishing a brand-new immutable Snapshot; Acquire
// hands a query a shared_ptr to the current one. In-flight queries
// therefore pin a consistent segment set for their whole duration —
// shared_ptr refcounts ARE the pin counts, and a segment replaced by a
// merge is marked retire-on-release so the last pin's release (not the
// commit) deletes its files and drops its pages from the shared pool.
//
// Tombstones are copy-on-write: DeleteDocument copies the affected
// bitmap, sets one bit, and publishes the copy; snapshots hold the version
// they were born with, so a query never sees a delete that committed after
// it started.
//
// Merge protocol (one background merge at a time, on a 1-thread pool):
//   StartMerge  seals the active delta, adopts it + every segment as merge
//               input, starts a fresh delta at the next docid, and kicks
//               the background compaction. Queries keep running against
//               the sealed delta + old segments throughout.
//   background  compacts every live input document (global docid order)
//               into one new compressed Segment under dir/seg_<id>.
//   commit      re-checks deletes that landed during the merge (the
//               journal) and turns them into tombstones on the new
//               segment, writes the manifest tmp+rename (the atomic
//               switch; meta-written-last discipline), swaps the segment
//               set, and retires the old segments.
//   failure     leaves the old state fully live: the sealed delta stays
//               queryable and becomes input to the next merge attempt.
//
// Durability (DESIGN.md §13): merges persist through the manifest; the
// delta tier persists through the write-ahead log (storage/wal.h). Every
// AddDocument/DeleteDocument appends a WAL record under the commit mutex
// and is acknowledged only after a covering fsync (group-committed), so a
// reopen replays the log against the adopted manifest and reconstructs the
// exact acknowledged pre-crash state. StartMerge writes a DeltaSealed
// record and rotates the log; the merge commit appends MergeCommitted
// after the manifest rename and drops the now-redundant files. A torn or
// mismatched manifest (or any torn segment under it) falls back to a clean
// rebuild from the corpus and discards the log — WAL records are only
// meaningful against the manifest they were written with.
#ifndef X100IR_IR_SNAPSHOT_H_
#define X100IR_IR_SNAPSHOT_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "ir/collection_stats.h"
#include "ir/corpus.h"
#include "ir/delta_segment.h"
#include "ir/search_engine.h"
#include "ir/segment.h"
#include "storage/buffer_manager.h"

namespace x100ir::ir {

using TombstoneBits = std::shared_ptr<const std::vector<uint64_t>>;

// One consistent, immutable view of the collection. Everything is held by
// shared_ptr: the snapshot outlives any commit that happens after it.
struct Snapshot {
  struct SegmentRead {
    std::shared_ptr<Segment> seg;
    TombstoneBits tombstones;  // local-docid bitmap; null = no deletes
  };
  struct DeltaRead {
    std::shared_ptr<DeltaSegment> delta;
    uint32_t visible = 0;      // doc-count prefix this snapshot may read
    TombstoneBits tombstones;  // delta-local bitmap; null = no deletes
  };

  uint64_t epoch = 0;
  // Segments in ascending global-docid order, then deltas in ascending
  // base order — concatenating per-structure docid-ordered results yields
  // globally docid-ordered results.
  std::vector<SegmentRead> segments;
  std::vector<DeltaRead> deltas;
  std::shared_ptr<const CollectionStats> stats;
  // True when this view is exactly the monolithic index: one identity-map
  // segment, no visible delta documents, no tombstones. Database::Search
  // then routes through the engine with no segmented-read plumbing at all
  // — byte-identical to the pre-segmentation hot path.
  bool plain = false;
};

// Executes one query against a snapshot: every segment through the normal
// SearchEngine (with the snapshot's live stats and tombstones plumbed into
// SearchOptions), the delta buffers by exact scalar evaluation, results
// merged in global docid space. Thread-safe; `user_opts.global_stats` and
// `user_opts.tombstones` must be null (they are per-segment outputs of
// this function, not inputs to it).
Status SearchSnapshot(const Snapshot& snap, const Query& query, RunType type,
                      const SearchOptions& user_opts, SearchResult* result);

class SnapshotManager {
 public:
  SnapshotManager() = default;
  ~SnapshotManager();
  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  // Opens the segmented index: adopts a valid manifest under `dir` (v3
  // reopen), else builds-or-reuses the base segment from the corpus
  // (legacy layout, epoch 0). `corpus` is borrowed and must outlive the
  // manager. Empty dir = fully in-memory (no manifest, no storage runs).
  Status Open(const Corpus* corpus, const std::string& dir,
              const storage::StorageOptions& storage, BuildStats* stats);

  // Current snapshot; never null after a successful Open.
  std::shared_ptr<const Snapshot> Acquire() const;

  uint64_t epoch() const;

  // Appends one document (term occurrences, any order; duplicates become
  // tf) to the write buffer. Returns its global docid — docids are
  // allocated in add order and never reused.
  Status AddDocument(const std::vector<uint32_t>& terms, int32_t* docid);

  // Tombstones one live document. NotFound when the docid was never
  // allocated or is already deleted.
  Status DeleteDocument(int32_t docid);

  // Background merge controls. StartMerge fails FailedPrecondition while a
  // merge is running; WaitMerge blocks until the running merge (if any)
  // finishes and returns its status; Merge() is the synchronous pair.
  Status StartMerge();
  Status WaitMerge();
  Status Merge();
  bool merge_running() const;

  // Shared storage (null for in-memory databases).
  storage::BufferManager* pool() const { return pool_.get(); }
  const storage::SimulatedDisk* disk() const { return disk_.get(); }

  // Write-path durability counters (zeros when the WAL is off/in-memory).
  storage::WalStats wal_stats() const;

 private:
  struct MergeInput {
    std::vector<Snapshot::SegmentRead> segments;
    std::vector<Snapshot::DeltaRead> deltas;  // sealed, fully visible
    uint32_t seg_id = 0;
    // WAL file sequence sealed by the StartMerge rotation; everything at or
    // below it becomes droppable once this merge's manifest commits.
    uint64_t wal_sealed_seq = 0;
  };

  // One resolved DeleteDocument target: which structure owns the docid and
  // where, so validation (Find) can precede mutation (Apply).
  struct DeleteTarget {
    enum class Kind { kActiveDelta, kSealedDelta, kSegment } kind =
        Kind::kActiveDelta;
    size_t index = 0;    // sealed_/segments_ index (unused for active)
    uint32_t local = 0;  // structure-local docid
    const std::vector<DocTerm>* doc = nullptr;
    int32_t len = 0;
  };

  StorageBinding BindingFor(uint32_t seg_id) const;
  // Rebuilds live num_docs/total_len/df from the current segment set and
  // tombstones (manifest reopen).
  void RecountLiveStatsLocked();
  // Freezes the live counters into a CollectionStats (exactly the numbers
  // a fresh monolithic build over the live corpus would compute).
  std::shared_ptr<const CollectionStats> FreezeStatsLocked() const;
  // Publishes a new Snapshot of the current state at epoch_.
  void PublishLocked();
  // Serializes the committed segment set to MANIFEST via tmp + rename.
  // *renamed (may be null) reports whether the rename — the commit point —
  // happened, so a caller can distinguish pre- from post-commit failure.
  Status WriteManifestLocked(bool* renamed = nullptr);
  // Applies one normalized document to the active delta (stats + epoch, no
  // WAL, no publish) — the shared tail of AddDocument and WAL replay.
  Status ApplyAddLocked(std::vector<DocTerm> doc, int32_t len, int32_t* docid);
  // Resolves a docid to its owning structure. NotFound for never-allocated
  // or already-deleted docids.
  Status FindDeleteTargetLocked(int32_t docid, DeleteTarget* target) const;
  // Tombstones a resolved target (stats + merge journal + epoch, no WAL,
  // no manifest, no publish).
  void ApplyDeleteLocked(const DeleteTarget& target, int32_t docid);
  // Replays the opened WAL against the adopted state (Open only).
  Status ReplayWalLocked();
  // Adopts dir_'s manifest: loads the listed segments and tombstones.
  // NotFound when no manifest exists; any other failure means the caller
  // should fall back to a clean rebuild.
  Status TryLoadManifest(BuildStats* stats);
  // The background compaction body (runs on merge_pool_).
  void RunMerge(MergeInput input);
  Status BuildMergedSegment(const MergeInput& input,
                            std::shared_ptr<Segment>* out);
  // *committed reports whether the merge passed its commit point (manifest
  // rename) — a post-commit failure must not retire the now-live segment.
  Status CommitMergeLocked(const MergeInput& input,
                           std::shared_ptr<Segment> merged, bool* committed);

  const Corpus* corpus_ = nullptr;
  std::string dir_;
  storage::StorageOptions storage_opts_;
  // Declaration order is destruction order in reverse: merge_pool_ (last)
  // joins the background merge first, then snapshots/segments release and
  // detach from pool_, then pool_/disk_ die.
  std::unique_ptr<storage::SimulatedDisk> disk_;
  std::unique_ptr<storage::BufferManager> pool_;
  // Null when durability is off (in-memory database or wal.enabled=false).
  // Appends happen under mu_; Sync (the fsync wait) deliberately outside.
  std::unique_ptr<storage::Wal> wal_;

  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
  uint32_t next_seg_id_ = 1;
  int32_t next_docid_ = 0;
  std::vector<Snapshot::SegmentRead> segments_;
  std::vector<std::shared_ptr<DeltaSegment>> sealed_;
  std::vector<TombstoneBits> sealed_tombs_;
  std::shared_ptr<DeltaSegment> delta_;
  TombstoneBits delta_tombs_;
  uint32_t live_num_docs_ = 0;
  uint64_t live_total_len_ = 0;
  std::vector<uint32_t> live_df_;
  std::shared_ptr<const Snapshot> current_;

  bool merge_running_ = false;
  Status merge_status_;
  std::condition_variable merge_cv_;
  // Global docids deleted while a merge runs that fall below the merge
  // cutoff (== are part of the merge's input): re-applied as tombstones on
  // the merged segment at commit.
  std::vector<int32_t> merge_deletes_;
  int32_t merge_cutoff_ = 0;

  ThreadPool merge_pool_{1};
};

}  // namespace x100ir::ir

#endif  // X100IR_IR_SNAPSHOT_H_
