// Fused decode→score kernel (DESIGN.md §12.3): scores one tf window
// straight from its packed PFOR payload,
//
//   out[i] = w * tf[i] / ((tf[i] + c0) + c1 * doclen[i]),  i in [0, len)
//
// without ever materializing the tf vector — LOOP1 unpacks 8 codewords
// into AVX2 registers, converts to float, and applies the BM25 map in the
// same iteration; exceptions are patched afterwards in the *score* domain
// (one Bm25 evaluation per record). On hosts without AVX2 (or with the
// SIMD toggle off) the window is unpacked into a stack buffer and scored
// there — still no heap materialization, still one pass.
//
// Bit-identity contract, pinned by Ir.FusedScoreAgreesWithComposedPath:
// the kernel performs exactly the scalar composed path's operation
// sequence (cast, mul, add, mul, add, div — each elementwise and exactly
// rounded, no FMA contraction), so fused and two-step scores are
// identical floats, not merely close.
//
// Fallback rules (the caller keeps the two-step decode + MapBm25 path):
//   - returns false for delta-coded or dictionary views (tf columns are
//     plain PFOR; anything else needs LOOP3/dict plumbing);
//   - callers that need the raw tfs (probe completion, Table 2 runs) never
//     call this — the fused kernel only exists for the score-only refill.
#ifndef X100IR_IR_FUSED_SCORE_H_
#define X100IR_IR_FUSED_SCORE_H_

#include <cstdint>

#include "compress/codec.h"

namespace x100ir::ir {

// Scores view's window into out[0..view.len). doclens[i] must be the
// doclen of the document holding posting view.begin + i (the caller
// gathers it from the decoded docid window). w/c0/c1 are MapBm25's folded
// constants: w = idf*(k1+1), c0 = k1*(1-b), c1 = k1*b*inv_avgdl.
// Returns false (out untouched) when the view cannot be fused.
bool FusedScoreTfWindow(const compress::WindowView& view,
                        const int32_t* doclens, float w, float c0, float c1,
                        float* out);

// The kernel's feed: out[i] = base[idx[i]] for i in [0, n) — gathers the
// decoded docid window's doclens. AVX2 hardware gather when available,
// scalar loop otherwise; identical output either way.
void GatherI32(const int32_t* base, const int32_t* idx, uint32_t n,
               int32_t* out);

}  // namespace x100ir::ir

#endif  // X100IR_IR_FUSED_SCORE_H_
