// Layout of the inverted index, relationally (the paper's §3 schema): one
// TD table sorted by (term, docid) stored as columns, plus per-document and
// per-term side tables.
//
//   TD.docid  — int32, ascending within each term's posting range;
//               PFOR-DELTA-compressed (term-boundary resets become
//               exceptions, §3.3's 11.98 bits/tuple column)
//   TD.tf     — int32 term frequency; PFOR-compressed (§3.3's 8.13 bits)
//   D.doclen  — int32 per-document length (BM25 normalization)
//   T         — per-term posting range [start, start + count) into TD,
//               document frequency (== count) and precomputed BM25 idf
//
// On disk each column is one file under the index directory (named below,
// shared with the storage/ benches); `index.meta` carries the corpus
// fingerprint that gates reuse. The builder lives in index_builder.h.
#ifndef X100IR_IR_INDEX_META_H_
#define X100IR_IR_INDEX_META_H_

#include <cstdint>

namespace x100ir::ir {

// Column file names under the index directory. "raw" files are plain int32
// arrays behind a ColumnFileHeader; "pfor*" files hold one compressed block
// (compress/codec.h) behind the same header; the score files carry the
// materialized per-posting BM25 contributions (f32, and 8-bit quantized
// with stored scale/bias) that the BM25TCM/BM25TCMQ8 runs scan instead of
// recomputing scores.
inline constexpr char kDocidRawFile[] = "td_docid_raw.col";
inline constexpr char kDocidCompressedFile[] = "td_docid_pfordelta.col";
inline constexpr char kTfRawFile[] = "td_tf_raw.col";
inline constexpr char kTfCompressedFile[] = "td_tf_pfor.col";
inline constexpr char kScoreF32File[] = "td_score_f32.col";
inline constexpr char kScoreQ8File[] = "td_score_q8.col";
inline constexpr char kIndexMetaFile[] = "index.meta";
// Side tables (v3): the T table (packed TermRecords) and the D.doclen
// column, persisted so a segment directory is self-describing — a manifest
// reopen loads them instead of recomputing from a corpus it doesn't have.
inline constexpr char kTermsFile[] = "t_terms.col";
inline constexpr char kDoclenFile[] = "d_doclen.col";
// Block-max side table (v4): one BlockMaxEntry per 128-posting window of
// the whole TD table (ceil(num_postings / kEntryPointStride) records,
// encoding kOpaque). Windows are positional — they span term boundaries,
// which only over-estimates any single term's bound and stays sound.
inline constexpr char kBlockMaxFile[] = "td_blockmax.col";
// Per-segment local→global docid map (absent for the base segment, whose
// map is the identity), and the segment-set manifest at the database root.
// The manifest is written to kManifestTmpFile and renamed into place —
// the atomic commit point of a merge (DESIGN.md §10).
inline constexpr char kSegmentMetaFile[] = "segment.meta";
inline constexpr char kManifestFile[] = "MANIFEST";
inline constexpr char kManifestTmpFile[] = "MANIFEST.tmp";

// Every column file starts with this header. storage::ColumnReader (the
// buffer-pool-backed access path) consumes this same layout, so the format
// is defined once, here with the rest of the TD schema.
struct ColumnFileHeader {
  static constexpr uint32_t kMagic = 0x58434F4C;  // "XCOL"
  enum Encoding : uint32_t {
    kRawI32 = 0,           // payload: value_count * int32
    kCompressedBlock = 1,  // payload: one self-describing codec block
    kRawF32 = 2,           // payload: value_count * float (materialized
                           // BM25 score column, kScoreF32File)
    kQuantU8 = 3,          // payload: Q8Params, then value_count * uint8;
                           // value = bias + scale * q (kScoreQ8File)
    kOpaque = 4,           // payload: value_count packed records whose
                           // layout the consumer defines (kTermsFile)
  };

  uint32_t magic = kMagic;
  uint32_t encoding = kRawI32;
  uint64_t value_count = 0;
};

// Quantization parameters of a kQuantU8 column, stored at the head of its
// payload. scale/bias map the full u8 range onto [min, max] of the source
// column: q = round((v - bias) / scale), so every dequantized value is
// within scale/2 of the original — the bound the quantization tests pin.
struct Q8Params {
  float scale = 1.0f;
  float bias = 0.0f;
  uint64_t reserved = 0;
};
static_assert(sizeof(Q8Params) == 16, "packed q8 params");

// index.meta payload: identifies which corpus the column files were built
// from. Everything else (term ranges, doclens, idf) is recomputed from the
// corpus, which is itself deterministic.
struct IndexMetaHeader {
  static constexpr uint32_t kMagic = 0x5844584D;  // "XDXM"
  // v2: the index directory additionally carries the materialized score
  // columns (kScoreF32File/kScoreQ8File). v3: plus the persisted side
  // tables (kTermsFile/kDoclenFile), making the directory loadable without
  // the corpus — what Segment::Load needs on a manifest reopen. v4: plus
  // the block-max side table (kBlockMaxFile) behind Block-Max MaxScore.
  // Bumping makes every older directory read as "rebuild", never as
  // "reuse with files missing".
  static constexpr uint32_t kVersion = 4;

  uint32_t magic = kMagic;
  uint32_t version = kVersion;
  uint64_t corpus_fingerprint = 0;
  uint64_t num_postings = 0;
  uint32_t num_docs = 0;
  uint32_t vocab_size = 0;
};

// On-disk record of one T-table entry (kTermsFile, encoding kOpaque):
// fields written packed in this order, 20 bytes per term, no padding. Kept
// separate from TermInfo so the in-memory struct can keep natural
// alignment without persisting its tail padding.
inline constexpr size_t kTermRecordBytes = 8 + 4 + 4 + 4;

// segment.meta payload: the local→global docid map of a merged segment.
// Header then num_docs packed int32 global docids (strictly increasing —
// merges preserve global docid order, which keeps cross-segment top-k
// merges a concatenation).
struct SegmentMetaHeader {
  static constexpr uint32_t kMagic = 0x4754584D;  // "MXTG"
  static constexpr uint32_t kVersion = 1;

  uint32_t magic = kMagic;
  uint32_t version = kVersion;
  uint32_t seg_id = 0;
  uint32_t num_docs = 0;
};

// MANIFEST payload: the committed segment set. Header, then per segment a
// ManifestSegment followed by its tombstone bitmap words (usually zero of
// them — a merge purges tombstones; only deletes that landed *during* the
// merge are re-applied to the new segment and persisted here). The
// manifest is the last file written (tmp + rename): a directory with
// columns but no manifest and no index.meta reads as "rebuild".
struct ManifestHeader {
  static constexpr uint32_t kMagic = 0x464E4D58;  // "XMNF"
  static constexpr uint32_t kVersion = 1;

  uint32_t magic = kMagic;
  uint32_t version = kVersion;
  // Fingerprint of the *base* corpus the database was opened with. A
  // reopen under different corpus options must not adopt this manifest.
  uint64_t corpus_fingerprint = 0;
  uint64_t epoch = 0;
  uint32_t num_segments = 0;
  uint32_t next_seg_id = 0;
  int32_t next_docid = 0;
  uint32_t reserved = 0;
};

struct ManifestSegment {
  uint32_t seg_id = 0;
  uint32_t num_docs = 0;
  uint32_t num_tombstone_words = 0;
  uint32_t reserved = 0;
};

// On-disk record of one 128-posting TD window (kBlockMaxFile, encoding
// kOpaque): fields packed in this order, 12 bytes per window. max_tf and
// min_doclen bound the window's postings; BM25 is increasing in tf and
// decreasing in doclen, so for any query term overlapping the window and
// any (k1, b, idf), score <= Bm25One(idf, max_tf, min_doclen) — the engine
// recomputes that bound with live parameters rather than trusting `ub`,
// which is the build-parameter (k1=1.2, b=0.75, idf=1) bound kept for
// format validation and the soundness property test. Deletes only shrink a
// window's true maxima, so stale bounds under tombstones stay sound.
inline constexpr size_t kBlockMaxRecordBytes = 4 + 4 + 4;

struct BlockMaxEntry {
  int32_t max_tf = 0;
  int32_t min_doclen = 0;
  float ub = 0.0f;
};

// Per-term entry of the T table.
struct TermInfo {
  uint64_t posting_start = 0;
  uint32_t doc_freq = 0;
  float idf = 0.0f;
  // Largest tf in the term's postings. BM25 is increasing in tf and
  // decreasing in doclen, so score(tf, dl) <= score(max_tf, min_doclen):
  // the per-term score upper bound MaxScore pruning needs, computable at
  // query time for any (k1, b) without touching the postings.
  int32_t max_tf = 0;
};

// What Database::Open reports about index construction (bench_util.h
// prints it).
struct BuildStats {
  uint64_t num_postings = 0;
  double build_seconds = 0.0;
  // True when the compressed column files on disk matched the corpus
  // fingerprint and were loaded instead of re-encoded.
  bool reused_files = false;
};

}  // namespace x100ir::ir

#endif  // X100IR_IR_INDEX_META_H_
