// Plan construction for the in-memory runs. The shared ranked-run
// operators (Bm25ScoreOperator, MergeUnionOperator) live in ir/plan_ops.h
// since storage/ landed — the Table 2 runs (storage_runs.cc) execute the
// same plan shapes over cold columns. Everything else here is composition
// of existing vec/ operators (Scan over SliceVectorSource windows of the
// compressed TD columns, MergeJoin for conjunctions) plus the TopKOperator
// plan root (topk.h).
#include "ir/search_engine.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>
#include <string>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"
#include "ir/bm25.h"
#include "ir/plan_ops.h"
#include "ir/posting_cursor.h"
#include "ir/topk.h"
#include "vec/mem_source.h"
#include "vec/merge_join.h"
#include "vec/primitives.h"
#include "vec/scan.h"
#include "vec/streaming_merge.h"

namespace x100ir::ir {
namespace {

// Leaf of every plan: a scan over one term's window of the compressed TD
// columns (docid always, tf when the run scores).
vec::OperatorPtr MakeTermScan(const InvertedIndex& index,
                              vec::ExecContext* ctx, uint32_t term,
                              bool with_tf) {
  const TermInfo& info = index.term(term);
  vec::Schema schema;
  schema.Add("docid", vec::TypeId::kI32);
  if (with_tf) schema.Add("tf", vec::TypeId::kI32);
  std::vector<vec::VectorSourcePtr> sources;
  sources.push_back(std::make_unique<vec::SliceVectorSource>(
      index.docid_source(), info.posting_start, info.doc_freq));
  if (with_tf) {
    sources.push_back(std::make_unique<vec::SliceVectorSource>(
        index.tf_source(), info.posting_start, info.doc_freq));
  }
  return std::make_unique<vec::ScanOperator>(ctx, std::move(schema),
                                             std::move(sources));
}

}  // namespace

Status SearchEngine::Search(const Query& query, RunType type,
                            const SearchOptions& opts,
                            SearchResult* result) const {
  if (result == nullptr) return InvalidArgument("null search result");
  if (index_ == nullptr) return InvalidArgument("search engine has no index");
  WallTimer timer;
  *result = SearchResult();

  // Request validation happens here, up front, with specific messages —
  // not by whichever operator deep in the plan would have tripped first.
  if (opts.k == 0) {
    return InvalidArgument("k must be > 0 (no run returns zero results)");
  }
  const bool storage_run = type == RunType::kBm25T ||
                           type == RunType::kBm25TC ||
                           type == RunType::kBm25TCM ||
                           type == RunType::kBm25TCMQ8;
  if (storage_run && !index_->has_storage()) {
    return FailedPrecondition(
        std::string(RunTypeName(type)) +
        " needs an on-disk index (Database opened with a directory): the "
        "storage runs read cold columns through the buffer pool");
  }
  std::vector<uint32_t> terms = query.terms;
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  if (terms.empty()) return InvalidArgument("query has no terms");
  for (uint32_t t : terms) {
    if (t >= index_->vocab_size()) {
      return InvalidArgument(StrFormat("query term %u outside vocabulary", t));
    }
  }
  // In-vocabulary terms with no postings ("unknown" words) match nothing:
  // a conjunction containing one is empty, and a disjunction/ranked run
  // simply drops them. Either way the result is a clean empty set, never a
  // plan built over zero-length columns.
  const size_t with_postings_end = std::stable_partition(
      terms.begin(), terms.end(), [this](uint32_t t) {
        return index_->term(t).doc_freq > 0;
      }) - terms.begin();
  const bool any_unknown = with_postings_end != terms.size();
  terms.resize(with_postings_end);
  if (terms.empty() || (type == RunType::kBoolAnd && any_unknown)) {
    result->seconds = timer.ElapsedSeconds();
    return OkStatus();
  }
  // A query admitted past its deadline (queue wait ate the budget) fails
  // here, before any plan is built.
  if (opts.deadline != nullptr) {
    X100IR_RETURN_IF_ERROR(opts.deadline->Check());
  }

  Status s;
  switch (type) {
    case RunType::kBoolAnd:
      s = SearchBool(terms, /*conjunctive=*/true, opts, result);
      break;
    case RunType::kBoolOr:
      s = SearchBool(terms, /*conjunctive=*/false, opts, result);
      break;
    case RunType::kBm25:
      s = opts.maxscore_bm25 ? SearchBm25MaxScore(terms, opts, result)
                             : SearchBm25(terms, opts, result);
      break;
    case RunType::kBm25T:
    case RunType::kBm25TC:
    case RunType::kBm25TCM:
    case RunType::kBm25TCMQ8: {
      // Simulated I/O is charged to the shared disk; the per-query share
      // is the delta across this run (single-threaded engine).
      const double io_before = index_->disk()->io_seconds();
      s = SearchColdRun(type, terms, opts, result);
      result->io_seconds = index_->disk()->io_seconds() - io_before;
      break;
    }
    default:
      return Internal("unreachable run type");
  }
  result->seconds = timer.ElapsedSeconds();
  return s;
}

Status SearchEngine::SearchBool(const std::vector<uint32_t>& terms,
                                bool conjunctive, const SearchOptions& opts,
                                SearchResult* result) const {
  vec::ExecContext ctx;
  ctx.vector_size = opts.vector_size;
  ctx.rng = Rng(opts.rng_seed);
  vec::OperatorPtr root;
  if (conjunctive && opts.streaming_and) {
    // Streaming skip join: cursors rarest-first so the shortest list
    // drives and the long lists are only probed (DESIGN.md §7.2).
    std::vector<uint32_t> by_df = terms;
    std::sort(by_df.begin(), by_df.end(), [this](uint32_t a, uint32_t b) {
      if (index_->term(a).doc_freq != index_->term(b).doc_freq) {
        return index_->term(a).doc_freq < index_->term(b).doc_freq;
      }
      return a < b;
    });
    std::vector<vec::SkipCursorPtr> cursors;
    cursors.reserve(by_df.size());
    for (uint32_t t : by_df) {
      auto cursor = std::make_unique<DocidSkipCursor>();
      X100IR_RETURN_IF_ERROR(cursor->Init(index_, t));
      cursors.push_back(std::move(cursor));
    }
    root = std::make_unique<vec::StreamingMergeJoinOperator>(
        &ctx, std::move(cursors));
  } else {
    std::vector<vec::OperatorPtr> children;
    children.reserve(terms.size());
    for (uint32_t t : terms) {
      children.push_back(MakeTermScan(*index_, &ctx, t, /*with_tf=*/false));
    }
    if (conjunctive) {
      root = std::make_unique<vec::MergeJoinOperator>(
          &ctx, std::move(children), vec::MergeMode::kIntersect);
    } else {
      root = std::make_unique<MergeUnionOperator>(&ctx, std::move(children),
                                                  /*sum_scores=*/false);
    }
  }
  X100IR_RETURN_IF_ERROR(root->Open());
  vec::Batch* b = nullptr;
  for (;;) {
    // Deadline checkpoint: once per batch (§9.3), so an expiring query
    // surfaces within one vector's worth of work, with its partial stats.
    if (opts.deadline != nullptr) {
      Status live = opts.deadline->Check();
      if (!live.ok()) {
        root->Close();
        result->stats = ctx.stats;
        return live;
      }
    }
    X100IR_RETURN_IF_ERROR(root->Next(&b));
    if (b == nullptr) break;
    const int32_t* docids = b->columns[0]->Data<int32_t>();
    if (opts.tombstones == nullptr) {
      result->num_matches += b->count;
      const uint32_t room =
          opts.k > result->docids.size()
              ? opts.k - static_cast<uint32_t>(result->docids.size())
              : 0;
      const uint32_t take = std::min(room, b->count);
      result->docids.insert(result->docids.end(), docids, docids + take);
    } else {
      // Segmented read with deletes: only live docids count toward
      // num_matches and the k cap, so the result matches an index rebuilt
      // without the deleted documents.
      for (uint32_t i = 0; i < b->count; ++i) {
        if (TombstoneTest(opts.tombstones, docids[i])) continue;
        ++result->num_matches;
        if (result->docids.size() < opts.k) {
          result->docids.push_back(docids[i]);
        }
      }
    }
  }
  root->Close();
  result->stats = ctx.stats;
  return OkStatus();
}

Status SearchEngine::SearchBm25(const std::vector<uint32_t>& terms,
                                const SearchOptions& opts,
                                SearchResult* result) const {
  vec::ExecContext ctx;
  ctx.vector_size = opts.vector_size;
  ctx.rng = Rng(opts.rng_seed);
  const double avgdl = EffectiveAvgDocLen(opts, *index_);
  const float inv_avgdl =
      avgdl > 0.0 ? static_cast<float>(1.0 / avgdl) : 0.0f;
  const int32_t* doclens = index_->doc_lens().data();

  std::vector<vec::OperatorPtr> scored;
  scored.reserve(terms.size());
  for (uint32_t t : terms) {
    scored.push_back(std::make_unique<Bm25ScoreOperator>(
        &ctx, MakeTermScan(*index_, &ctx, t, /*with_tf=*/true),
        EffectiveIdf(opts, *index_, t), opts.bm25, doclens, inv_avgdl));
  }
  auto union_op = std::make_unique<MergeUnionOperator>(&ctx, std::move(scored),
                                                       /*sum_scores=*/true);
  auto topk = std::make_unique<TopKOperator>(&ctx, std::move(union_op),
                                             opts.k);
  topk->set_tombstones(opts.tombstones);
  TopKOperator* topk_raw = topk.get();
  vec::OperatorPtr root = std::move(topk);
  X100IR_RETURN_IF_ERROR(root->Open());
  vec::Batch* b = nullptr;
  for (;;) {
    if (opts.deadline != nullptr) {
      Status live = opts.deadline->Check();
      if (!live.ok()) {
        result->num_matches = topk_raw->rows_consumed();
        root->Close();
        result->stats = ctx.stats;
        return live;
      }
    }
    X100IR_RETURN_IF_ERROR(root->Next(&b));
    if (b == nullptr) break;
    const int32_t* docids = b->columns[0]->Data<int32_t>();
    const float* scores = b->columns[1]->Data<float>();
    result->docids.insert(result->docids.end(), docids, docids + b->count);
    result->scores.insert(result->scores.end(), scores, scores + b->count);
  }
  result->num_matches = topk_raw->rows_consumed();
  root->Close();
  result->stats = ctx.stats;
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Streaming BM25 with MaxScore pruning (DESIGN.md §7.4).
//
// Per term: a score upper bound ub = idf * (k1+1) * max_tf /
// (max_tf + c0 + c1 * min_doclen) — BM25 is monotone in tf and doclen, so
// no posting of the term can contribute more. Terms sorted by ub ascending
// give prefix sums P[i]; once the top-k threshold θ exceeds P[i], the i+1
// weakest terms are *non-essential*: a document appearing only in them
// tops out below θ and can never enter the heap. Their streams stop being
// merged (whole vectors pruned) and they are only probed — SkipTo on the
// compressed docid windows — to complete the scores of candidates that
// survive a branch-free threshold select.
//
// The evaluation stays vector-at-a-time: each essential term decodes and
// scores vector_size postings per refill with the fused kernel, the merge
// emits candidate vectors of (docid, partial score), and one SelectColVal
// per vector rejects candidates whose partial + Σ(non-essential ubs) falls
// below θ. Only survivors touch the probe cursors and the branchy heap.
// ---------------------------------------------------------------------------

namespace {

// Per-term state for the MaxScore evaluation.
struct MsTerm {
  uint32_t term = 0;
  float idf = 0.0f;
  float ub = 0.0f;
  uint32_t df = 0;

  // Essential phase: sequential stream + vectorized scoring buffers.
  DocidSkipCursor stream;
  TfWindowReader tf_reader;
  uint64_t refilled = 0;  // postings pulled off the stream so far
  std::vector<int32_t> docids, tfs, doclens;
  std::vector<float> scores;
  uint32_t voff = 0, vlen = 0;

  // Non-essential phase: forward probe cursor from the first unconsumed
  // posting (the stream read ahead by up to one vector; that tail is
  // re-covered by the probe cursor, never lost).
  bool demoted = false;
  DocidSkipCursor probe;
};

}  // namespace

Status SearchEngine::SearchBm25MaxScore(const std::vector<uint32_t>& terms,
                                        const SearchOptions& opts,
                                        SearchResult* result) const {
  vec::ExecContext ctx;
  ctx.vector_size = opts.vector_size;
  ctx.rng = Rng(opts.rng_seed);
  X100IR_RETURN_IF_ERROR(ctx.Validate());
  const uint32_t vsize = ctx.vector_size;
  const float k1 = opts.bm25.k1;
  const float bb = opts.bm25.b;
  const double avgdl = EffectiveAvgDocLen(opts, *index_);
  const float inv_avgdl =
      avgdl > 0.0 ? static_cast<float>(1.0 / avgdl) : 0.0f;
  const int32_t* doclens = index_->doc_lens().data();
  const float min_dl = static_cast<float>(index_->min_doc_len());

  const size_t m = terms.size();
  std::vector<MsTerm> states(m);
  for (size_t i = 0; i < m; ++i) {
    MsTerm& ts = states[i];
    const TermInfo& info = index_->term(terms[i]);
    ts.term = terms[i];
    ts.idf = EffectiveIdf(opts, *index_, terms[i]);
    ts.df = info.doc_freq;
    ts.ub = Bm25One(ts.idf, static_cast<float>(info.max_tf), min_dl, k1, bb,
                    inv_avgdl);
    X100IR_RETURN_IF_ERROR(ts.stream.Init(index_, ts.term));
    ts.tf_reader.Init(index_->tf_source());
    ts.docids.resize(vsize);
    ts.tfs.resize(vsize);
    ts.doclens.resize(vsize);
    ts.scores.resize(vsize);
  }

  // Weakest-first order and upper-bound prefix sums: order[0..ness) is the
  // demoted (non-essential) prefix.
  std::vector<uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&states](uint32_t a, uint32_t b) {
    if (states[a].ub != states[b].ub) return states[a].ub < states[b].ub;
    return states[a].term < states[b].term;
  });
  std::vector<float> prefix(m);
  float acc = 0.0f;
  for (size_t i = 0; i < m; ++i) {
    acc += states[order[i]].ub;
    prefix[i] = acc;
  }

  const auto refill = [&](MsTerm& ts) {
    ts.voff = 0;
    ts.vlen = 0;
    while (ts.vlen < vsize && !ts.stream.AtEnd()) {
      ts.docids[ts.vlen] = ts.stream.value();
      ts.tfs[ts.vlen] = ts.tf_reader.TfAt(ts.stream.position());
      ++ts.vlen;
      ts.stream.Next();
    }
    ts.refilled += ts.vlen;
    if (ts.vlen > 0) {
      for (uint32_t i = 0; i < ts.vlen; ++i) {
        ts.doclens[i] = doclens[ts.docids[i]];
      }
      MapBm25(ts.vlen, ts.scores.data(), ts.tfs.data(), ts.doclens.data(),
              ts.idf, k1, bb, inv_avgdl);
      ++ctx.stats.primitive_calls;
    }
  };
  for (MsTerm& ts : states) refill(ts);

  TopK topk(opts.k);
  std::vector<int32_t> cand_d(vsize);
  std::vector<float> cand_s(vsize);
  std::vector<vec::sel_t> cand_sel(vsize);
  uint64_t candidates = 0;
  size_t ness = 0;  // order[0..ness) are demoted

  // Distributed θ floor (DESIGN.md §11.3): the local heap's threshold,
  // raised to the cluster-wide k-th-best lower bound when a shared
  // channel is plumbed in. Every pruning decision below (term demotion,
  // the candidate select, probe-completion viability) goes through this,
  // so a shard seeded by a faster peer starts pruning where that peer
  // left off. Scores exactly at the bound always survive the >= / strict-<
  // pruning tests, so the (score desc, docid asc) tiebreak at the global
  // boundary is never cut off.
  SharedTheta* shared = opts.shared_theta;
  const auto live_theta = [&]() -> float {
    const float local = topk.threshold();
    return shared != nullptr ? std::max(local, shared->Load()) : local;
  };

  // Folds the per-term cursor stats into ctx.stats — shared by the normal
  // exit and the deadline bail-out, so a DeadlineExceeded result still
  // reports everything the query actually did.
  const auto fold_stats = [&] {
    result->num_matches = candidates;
    for (MsTerm& ts : states) {
      ts.stream.FoldStats(&ctx.stats);
      if (ts.demoted) ts.probe.FoldStats(&ctx.stats);
      ctx.stats.tf_windows_decoded += ts.tf_reader.windows_decoded();
    }
    result->stats = ctx.stats;
  };

  for (;;) {
    // Deadline checkpoint: once per candidate vector (§9.3).
    if (opts.deadline != nullptr) {
      Status live = opts.deadline->Check();
      if (!live.ok()) {
        fold_stats();
        return live;
      }
    }
    const float theta = live_theta();
    // Re-partition between vectors: θ only grows, so demotion is one-way.
    while (ness < m && prefix[ness] < theta) {
      MsTerm& ts = states[order[ness]];
      ts.demoted = true;
      const uint64_t consumed = ts.refilled - (ts.vlen - ts.voff);
      X100IR_RETURN_IF_ERROR(ts.probe.Init(index_, ts.term, consumed));
      const uint64_t remaining = ts.df - consumed;
      ctx.stats.vectors_pruned += (remaining + vsize - 1) / vsize;
      ts.voff = ts.vlen = 0;  // drop the read-ahead tail; probes re-cover it
      ++ness;
    }
    if (ness == m) break;  // even all terms together cannot reach θ
    const float ness_bound = ness > 0 ? prefix[ness - 1] : 0.0f;

    // Merge one vector of candidates from the essential streams.
    uint32_t fill = 0;
    while (fill < vsize) {
      int32_t d = 0;
      bool any = false;
      for (const MsTerm& ts : states) {
        if (ts.demoted || ts.voff >= ts.vlen) continue;
        const int32_t v = ts.docids[ts.voff];
        if (!any || v < d) {
          d = v;
          any = true;
        }
      }
      if (!any) break;
      float partial = 0.0f;
      for (MsTerm& ts : states) {
        if (ts.demoted || ts.voff >= ts.vlen || ts.docids[ts.voff] != d) {
          continue;
        }
        partial += ts.scores[ts.voff];
        if (++ts.voff == ts.vlen) refill(ts);
      }
      // Segmented read with deletes: the streams still advance past a dead
      // doc (posting consumption is positional) but it is never a
      // candidate — not scored, not probed, not counted.
      if (TombstoneTest(opts.tombstones, d)) continue;
      cand_d[fill] = d;
      cand_s[fill] = partial;
      ++fill;
    }
    if (fill == 0) break;  // essential streams exhausted
    candidates += fill;

    // Branch-free threshold select: partial + ness_bound >= θ, i.e.
    // partial >= θ - ness_bound (−inf until the heap fills: keep all).
    const float cut = theta - ness_bound;
    const uint32_t n_cand = vec::SelectColVal<vec::GeCmp, float>(
        fill, nullptr, 0, cand_sel.data(), cand_s.data(), cut);
    ++ctx.stats.primitive_calls;

    for (uint32_t j = 0; j < n_cand; ++j) {
      const uint32_t i = cand_sel[j];
      const int32_t d = cand_d[i];
      float s = cand_s[i];
      // Complete the score from the demoted lists, strongest first, with
      // the live threshold: each probe either adds the term's real
      // contribution or retires its ub from the remaining headroom.
      float remaining = ness_bound;
      bool viable = true;
      for (size_t p = ness; p-- > 0;) {
        const float live = live_theta();
        if (s + remaining < live) {
          viable = false;
          break;
        }
        MsTerm& nt = states[order[p]];
        remaining -= nt.ub;
        if (nt.probe.SkipTo(d) && nt.probe.value() == d) {
          const float tf = static_cast<float>(
              nt.tf_reader.TfAt(nt.probe.position()));
          s += Bm25One(nt.idf, tf, static_cast<float>(doclens[d]), k1, bb,
                       inv_avgdl);
          ++ctx.stats.docs_probed;
        }
      }
      if (viable) topk.Push(d, s);
    }
    // Publish once per candidate vector, not per push: the channel is a
    // bound, not a log, and the heap's threshold after the batch is the
    // tightest value this shard can prove.
    if (shared != nullptr) shared->RaiseTo(topk.threshold());
  }

  if (shared != nullptr) shared->RaiseTo(topk.threshold());
  topk.FinishSorted(&result->docids, &result->scores);
  fold_stats();
  return OkStatus();
}

}  // namespace x100ir::ir
