// Plan construction for the in-memory runs. The shared ranked-run
// operators (Bm25ScoreOperator, MergeUnionOperator) live in ir/plan_ops.h
// since storage/ landed — the Table 2 runs (storage_runs.cc) execute the
// same plan shapes over cold columns. Everything else here is composition
// of existing vec/ operators (Scan over SliceVectorSource windows of the
// compressed TD columns, MergeJoin for conjunctions) plus the TopKOperator
// plan root (topk.h).
#include "ir/search_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <numeric>
#include <string>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"
#include "ir/bm25.h"
#include "ir/fused_score.h"
#include "ir/plan_ops.h"
#include "ir/posting_cursor.h"
#include "ir/topk.h"
#include "vec/mem_source.h"
#include "vec/merge_join.h"
#include "vec/primitives.h"
#include "vec/scan.h"
#include "vec/streaming_merge.h"

namespace x100ir::ir {
namespace {

// Leaf of every plan: a scan over one term's window of the compressed TD
// columns (docid always, tf when the run scores).
vec::OperatorPtr MakeTermScan(const InvertedIndex& index,
                              vec::ExecContext* ctx, uint32_t term,
                              bool with_tf) {
  const TermInfo& info = index.term(term);
  vec::Schema schema;
  schema.Add("docid", vec::TypeId::kI32);
  if (with_tf) schema.Add("tf", vec::TypeId::kI32);
  std::vector<vec::VectorSourcePtr> sources;
  sources.push_back(std::make_unique<vec::SliceVectorSource>(
      index.docid_source(), info.posting_start, info.doc_freq));
  if (with_tf) {
    sources.push_back(std::make_unique<vec::SliceVectorSource>(
        index.tf_source(), info.posting_start, info.doc_freq));
  }
  return std::make_unique<vec::ScanOperator>(ctx, std::move(schema),
                                             std::move(sources));
}

}  // namespace

Status SearchEngine::Search(const Query& query, RunType type,
                            const SearchOptions& opts,
                            SearchResult* result) const {
  if (result == nullptr) return InvalidArgument("null search result");
  if (index_ == nullptr) return InvalidArgument("search engine has no index");
  WallTimer timer;
  *result = SearchResult();

  // Request validation happens here, up front, with specific messages —
  // not by whichever operator deep in the plan would have tripped first.
  if (opts.k == 0) {
    return InvalidArgument("k must be > 0 (no run returns zero results)");
  }
  const bool storage_run = type == RunType::kBm25T ||
                           type == RunType::kBm25TC ||
                           type == RunType::kBm25TCM ||
                           type == RunType::kBm25TCMQ8;
  if (storage_run && !index_->has_storage()) {
    return FailedPrecondition(
        std::string(RunTypeName(type)) +
        " needs an on-disk index (Database opened with a directory): the "
        "storage runs read cold columns through the buffer pool");
  }
  std::vector<uint32_t> terms = query.terms;
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  if (terms.empty()) return InvalidArgument("query has no terms");
  for (uint32_t t : terms) {
    if (t >= index_->vocab_size()) {
      return InvalidArgument(StrFormat("query term %u outside vocabulary", t));
    }
  }
  // In-vocabulary terms with no postings ("unknown" words) match nothing:
  // a conjunction containing one is empty, and a disjunction/ranked run
  // simply drops them. Either way the result is a clean empty set, never a
  // plan built over zero-length columns.
  const size_t with_postings_end = std::stable_partition(
      terms.begin(), terms.end(), [this](uint32_t t) {
        return index_->term(t).doc_freq > 0;
      }) - terms.begin();
  const bool any_unknown = with_postings_end != terms.size();
  terms.resize(with_postings_end);
  if (terms.empty() || (type == RunType::kBoolAnd && any_unknown)) {
    result->seconds = timer.ElapsedSeconds();
    return OkStatus();
  }
  // A query admitted past its deadline (queue wait ate the budget) fails
  // here, before any plan is built.
  if (opts.deadline != nullptr) {
    X100IR_RETURN_IF_ERROR(opts.deadline->Check());
  }

  Status s;
  switch (type) {
    case RunType::kBoolAnd:
      s = SearchBool(terms, /*conjunctive=*/true, opts, result);
      break;
    case RunType::kBoolOr:
      s = SearchBool(terms, /*conjunctive=*/false, opts, result);
      break;
    case RunType::kBm25:
      s = opts.maxscore_bm25 ? SearchBm25MaxScore(terms, opts, result)
                             : SearchBm25(terms, opts, result);
      break;
    case RunType::kBm25T:
    case RunType::kBm25TC:
    case RunType::kBm25TCM:
    case RunType::kBm25TCMQ8: {
      // Simulated I/O is charged to the shared disk; the per-query share
      // is the delta across this run (single-threaded engine).
      const double io_before = index_->disk()->io_seconds();
      s = SearchColdRun(type, terms, opts, result);
      result->io_seconds = index_->disk()->io_seconds() - io_before;
      break;
    }
    default:
      return Internal("unreachable run type");
  }
  result->seconds = timer.ElapsedSeconds();
  return s;
}

Status SearchEngine::SearchBool(const std::vector<uint32_t>& terms,
                                bool conjunctive, const SearchOptions& opts,
                                SearchResult* result) const {
  vec::ExecContext ctx;
  ctx.vector_size = opts.vector_size;
  ctx.rng = Rng(opts.rng_seed);
  vec::OperatorPtr root;
  if (conjunctive && opts.streaming_and) {
    // Streaming skip join: cursors rarest-first so the shortest list
    // drives and the long lists are only probed (DESIGN.md §7.2).
    std::vector<uint32_t> by_df = terms;
    std::sort(by_df.begin(), by_df.end(), [this](uint32_t a, uint32_t b) {
      if (index_->term(a).doc_freq != index_->term(b).doc_freq) {
        return index_->term(a).doc_freq < index_->term(b).doc_freq;
      }
      return a < b;
    });
    std::vector<vec::SkipCursorPtr> cursors;
    cursors.reserve(by_df.size());
    for (uint32_t t : by_df) {
      auto cursor = std::make_unique<DocidSkipCursor>();
      X100IR_RETURN_IF_ERROR(cursor->Init(index_, t));
      cursors.push_back(std::move(cursor));
    }
    root = std::make_unique<vec::StreamingMergeJoinOperator>(
        &ctx, std::move(cursors));
  } else {
    std::vector<vec::OperatorPtr> children;
    children.reserve(terms.size());
    for (uint32_t t : terms) {
      children.push_back(MakeTermScan(*index_, &ctx, t, /*with_tf=*/false));
    }
    if (conjunctive) {
      root = std::make_unique<vec::MergeJoinOperator>(
          &ctx, std::move(children), vec::MergeMode::kIntersect);
    } else {
      root = std::make_unique<MergeUnionOperator>(&ctx, std::move(children),
                                                  /*sum_scores=*/false);
    }
  }
  X100IR_RETURN_IF_ERROR(root->Open());
  vec::Batch* b = nullptr;
  for (;;) {
    // Deadline checkpoint: once per batch (§9.3), so an expiring query
    // surfaces within one vector's worth of work, with its partial stats.
    if (opts.deadline != nullptr) {
      Status live = opts.deadline->Check();
      if (!live.ok()) {
        root->Close();
        result->stats = ctx.stats;
        return live;
      }
    }
    X100IR_RETURN_IF_ERROR(root->Next(&b));
    if (b == nullptr) break;
    const int32_t* docids = b->columns[0]->Data<int32_t>();
    if (opts.tombstones == nullptr) {
      result->num_matches += b->count;
      const uint32_t room =
          opts.k > result->docids.size()
              ? opts.k - static_cast<uint32_t>(result->docids.size())
              : 0;
      const uint32_t take = std::min(room, b->count);
      result->docids.insert(result->docids.end(), docids, docids + take);
    } else {
      // Segmented read with deletes: only live docids count toward
      // num_matches and the k cap, so the result matches an index rebuilt
      // without the deleted documents.
      for (uint32_t i = 0; i < b->count; ++i) {
        if (TombstoneTest(opts.tombstones, docids[i])) continue;
        ++result->num_matches;
        if (result->docids.size() < opts.k) {
          result->docids.push_back(docids[i]);
        }
      }
    }
  }
  root->Close();
  result->stats = ctx.stats;
  return OkStatus();
}

Status SearchEngine::SearchBm25(const std::vector<uint32_t>& terms,
                                const SearchOptions& opts,
                                SearchResult* result) const {
  vec::ExecContext ctx;
  ctx.vector_size = opts.vector_size;
  ctx.rng = Rng(opts.rng_seed);
  const double avgdl = EffectiveAvgDocLen(opts, *index_);
  const float inv_avgdl =
      avgdl > 0.0 ? static_cast<float>(1.0 / avgdl) : 0.0f;
  const int32_t* doclens = index_->doc_lens().data();

  std::vector<vec::OperatorPtr> scored;
  scored.reserve(terms.size());
  for (uint32_t t : terms) {
    scored.push_back(std::make_unique<Bm25ScoreOperator>(
        &ctx, MakeTermScan(*index_, &ctx, t, /*with_tf=*/true),
        EffectiveIdf(opts, *index_, t), opts.bm25, doclens, inv_avgdl));
  }
  auto union_op = std::make_unique<MergeUnionOperator>(&ctx, std::move(scored),
                                                       /*sum_scores=*/true);
  auto topk = std::make_unique<TopKOperator>(&ctx, std::move(union_op),
                                             opts.k);
  topk->set_tombstones(opts.tombstones);
  TopKOperator* topk_raw = topk.get();
  vec::OperatorPtr root = std::move(topk);
  X100IR_RETURN_IF_ERROR(root->Open());
  vec::Batch* b = nullptr;
  for (;;) {
    if (opts.deadline != nullptr) {
      Status live = opts.deadline->Check();
      if (!live.ok()) {
        result->num_matches = topk_raw->rows_consumed();
        root->Close();
        result->stats = ctx.stats;
        return live;
      }
    }
    X100IR_RETURN_IF_ERROR(root->Next(&b));
    if (b == nullptr) break;
    const int32_t* docids = b->columns[0]->Data<int32_t>();
    const float* scores = b->columns[1]->Data<float>();
    result->docids.insert(result->docids.end(), docids, docids + b->count);
    result->scores.insert(result->scores.end(), scores, scores + b->count);
  }
  result->num_matches = topk_raw->rows_consumed();
  root->Close();
  result->stats = ctx.stats;
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Streaming BM25 with MaxScore pruning (DESIGN.md §7.4).
//
// Per term: a score upper bound ub = idf * (k1+1) * max_tf /
// (max_tf + c0 + c1 * min_doclen) — BM25 is monotone in tf and doclen, so
// no posting of the term can contribute more. Terms sorted by ub ascending
// give prefix sums P[i]; once the top-k threshold θ exceeds P[i], the i+1
// weakest terms are *non-essential*: a document appearing only in them
// tops out below θ and can never enter the heap. Their streams stop being
// merged (whole vectors pruned) and they are only probed — SkipTo on the
// compressed docid windows — to complete the scores of candidates that
// survive a branch-free threshold select.
//
// The evaluation stays vector-at-a-time, and refills are *window-granular*
// (Block-Max MaxScore, DESIGN.md §12): an essential stream advances one
// 128-posting window at a time. Before decoding a window, the term's
// stored (max_tf, min_doclen) block bound — recomputed under the live
// (k1, b, idf) — is tested against θ: when even Σ(other terms' ubs) plus
// this window's bound cannot reach θ, no document in the window can enter
// the top k through *any* merge, so the window is skipped without
// decoding (windows_blockmax_skipped). Decoded windows are scored with
// the fused decode→score kernel (fused_score.h): the tf codewords go from
// packed payload to BM25 contributions without materializing a tf vector.
// The merge emits candidate vectors of (docid, partial score), and one
// SelectColVal per vector rejects candidates whose partial +
// Σ(non-essential ubs) falls below θ. Only survivors touch the probe
// cursors and the branchy heap.
//
// Soundness of the per-term window skip: it fires only when
// other_bound + ub_w < θ, where other_bound sums the *static* ubs of
// every other query term. Any document d in the skipped window has
// score(d) <= other_bound + ub_w < θ, so even when d still surfaces as a
// candidate through another essential list, its completed score stays
// below θ and the heap push is a no-op — the top k (and p@20) are
// bit-identical to the unskipped oracle; only num_matches and the window
// counters may differ. The same argument covers the demotion probe: a
// probe cursor starts at the demoted stream's current vector, never
// before, so it may miss contributions from earlier skipped windows —
// missing them only lowers a score that is already provably below θ.
// ---------------------------------------------------------------------------

namespace {

// Per-term state for the MaxScore evaluation.
struct MsTerm {
  uint32_t term = 0;
  float idf = 0.0f;
  float ub = 0.0f;
  // Σ of every *other* query term's ub — the companion bound of the
  // per-window skip test.
  float other_bound = 0.0f;
  uint32_t df = 0;
  uint64_t posting_start = 0;

  // Essential phase: sequential stream + vectorized scoring buffers. The
  // buffers hold up to a full extra window past vector_size (refills
  // append whole window slices); vec_start is the stream position of the
  // current buffer's first posting — what a demotion hands the probe
  // cursor as its resume offset (re-covering at most one buffered vector,
  // which forward-only SkipTo crosses for free).
  DocidSkipCursor stream;
  TfWindowReader tf_reader;
  uint64_t vec_start = 0;
  std::vector<int32_t> docids;
  std::vector<float> scores;
  uint32_t voff = 0, vlen = 0;

  // Non-essential phase: forward probe cursor from the first unconsumed
  // posting (the stream read ahead by up to one vector; that tail is
  // re-covered by the probe cursor, never lost).
  bool demoted = false;
  DocidSkipCursor probe;
};

}  // namespace

Status SearchEngine::SearchBm25MaxScore(const std::vector<uint32_t>& terms,
                                        const SearchOptions& opts,
                                        SearchResult* result) const {
  vec::ExecContext ctx;
  ctx.vector_size = opts.vector_size;
  ctx.rng = Rng(opts.rng_seed);
  X100IR_RETURN_IF_ERROR(ctx.Validate());
  const uint32_t vsize = ctx.vector_size;
  const float k1 = opts.bm25.k1;
  const float bb = opts.bm25.b;
  const double avgdl = EffectiveAvgDocLen(opts, *index_);
  const float inv_avgdl =
      avgdl > 0.0 ? static_cast<float>(1.0 / avgdl) : 0.0f;
  const int32_t* doclens = index_->doc_lens().data();
  const float min_dl = static_cast<float>(index_->min_doc_len());

  const size_t m = terms.size();
  // A single-term query never leaves the solo-stream fast path, which
  // reads decoded windows in place — no per-term buffers, no candidate
  // staging, no initial refill. (Tombstoned reads use the generic merge.)
  const bool solo_only = m == 1 && opts.tombstones == nullptr;
  // Per-thread scratch, reused across queries: the posting buffers and
  // cursor window caches keep their capacity (and their cache heat), so a
  // steady query stream allocates nothing here after warm-up. The pool
  // never shrinks — states[0..m) is this query's slice; every per-query
  // field (voff/vlen/demoted/vec_start included) is re-initialized below,
  // and cursor Init fully resets position and skip stats.
  static thread_local std::vector<MsTerm> states_pool;
  static thread_local std::vector<uint32_t> order;
  static thread_local std::vector<float> prefix;
  static thread_local std::vector<vec::sel_t> cand_sel;
  if (states_pool.size() < m) states_pool.resize(m);
  MsTerm* const states = states_pool.data();
  for (size_t i = 0; i < m; ++i) {
    MsTerm& ts = states[i];
    const TermInfo& info = index_->term(terms[i]);
    ts.term = terms[i];
    ts.idf = EffectiveIdf(opts, *index_, terms[i]);
    ts.df = info.doc_freq;
    ts.ub = Bm25One(ts.idf, static_cast<float>(info.max_tf), min_dl, k1, bb,
                    inv_avgdl);
    ts.posting_start = info.posting_start;
    ts.voff = 0;
    ts.vlen = 0;
    ts.vec_start = 0;
    ts.demoted = false;
    X100IR_RETURN_IF_ERROR(ts.stream.Init(index_, ts.term));
    ts.tf_reader.Init(index_->tf_source());
    if (!solo_only) {
      const uint32_t cap = vsize + compress::kEntryPointStride;
      ts.docids.resize(cap);
      ts.scores.resize(cap);
    }
  }

  // Weakest-first order and upper-bound prefix sums: order[0..ness) is the
  // demoted (non-essential) prefix.
  order.resize(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&states](uint32_t a, uint32_t b) {
    if (states[a].ub != states[b].ub) return states[a].ub < states[b].ub;
    return states[a].term < states[b].term;
  });
  prefix.resize(m);
  float acc = 0.0f;
  for (size_t i = 0; i < m; ++i) {
    acc += states[order[i]].ub;
    prefix[i] = acc;
  }
  const float total_ub = m > 0 ? prefix[m - 1] : 0.0f;
  for (size_t i = 0; i < m; ++i) states[i].other_bound = total_ub - states[i].ub;

  TopK topk(opts.k);
  if (!solo_only) {
    // The solo fast path's buffer-drain pass selects over a whole buffered
    // run, which can be up to one window longer than a candidate vector.
    cand_sel.resize(vsize + compress::kEntryPointStride);
  }
  uint64_t candidates = 0;
  size_t ness = 0;  // order[0..ness) are demoted

  // Distributed θ floor (DESIGN.md §11.3): the local heap's threshold,
  // raised to the cluster-wide k-th-best lower bound when a shared
  // channel is plumbed in. Every pruning decision below (the per-window
  // block-max test, term demotion, the candidate select, probe-completion
  // viability) goes through this, so a shard seeded by a faster peer
  // starts pruning — and block-max-skipping windows — where that peer
  // left off. Scores exactly at the bound always survive the >= /
  // strict-< pruning tests, so the (score desc, docid asc) tiebreak at
  // the global boundary is never cut off.
  SharedTheta* shared = opts.shared_theta;
  const auto live_theta = [&]() -> float {
    const float local = topk.threshold();
    return shared != nullptr ? std::max(local, shared->Load()) : local;
  };

  // Block-max table and fused-kernel eligibility. The fused kernel wants
  // resident PFOR tf windows in the patched layout; anything else (naive
  // layout A/B builds, PDICT) keeps the composed decode+MapBm25 path —
  // the "raw tfs needed" fallback of DESIGN.md §12.3.
  const std::vector<BlockMaxEntry>& blockmax = index_->block_max();
  const bool use_blockmax = opts.blockmax && !blockmax.empty();
  const compress::BlockDecoder* tf_dec = index_->tf_decoder();
  const bool can_fuse = opts.fused_score && tf_dec != nullptr &&
                        tf_dec->scheme() == compress::Scheme::kPfor &&
                        !tf_dec->naive_layout();

  // Window-granular refill: append whole [lo, hi) window slices until the
  // buffer holds at least vector_size postings or the stream ends. Each
  // window is either rejected by its block bound without decoding, or
  // docid-decoded once and scored in one kernel call.
  const auto refill = [&](MsTerm& ts) {
    ts.voff = 0;
    ts.vlen = 0;
    ts.vec_start = ts.stream.position();
    compress::SortedRangeCursor& cur = ts.stream.range_cursor();
    alignas(32) int32_t wdl[compress::kEntryPointStride];
    alignas(32) int32_t wtf[compress::kEntryPointStride];
    alignas(32) float wscore[compress::kEntryPointStride];
    while (ts.vlen < vsize && !ts.stream.AtEnd()) {
      const uint32_t w = cur.CurrentWindowIndex();
      if (use_blockmax) {
        const BlockMaxEntry& bm = blockmax[w];
        const float wb =
            Bm25One(ts.idf, static_cast<float>(bm.max_tf),
                    static_cast<float>(bm.min_doclen), k1, bb, inv_avgdl);
        if (ts.other_bound + wb < live_theta()) {
          cur.SkipCurrentWindowBlockMax();
          // Leading skips move the buffer's start: vec_start must name the
          // first posting actually buffered (or the end, if none are).
          if (ts.vlen == 0) ts.vec_start = ts.stream.position();
          continue;
        }
      }
      const compress::SortedRangeCursor::RunView rv = cur.CurrentRunView();
      const uint32_t cnt = rv.hi - rv.lo;
      if (can_fuse) {
        const compress::WindowView view = tf_dec->WindowViewOf(rv.win_index);
        GatherI32(doclens, rv.vals, rv.win_len, wdl);
        if (FusedScoreTfWindow(view, wdl, ts.idf * (k1 + 1.0f),
                               k1 * (1.0f - bb), k1 * bb * inv_avgdl,
                               wscore)) {
          std::memcpy(ts.docids.data() + ts.vlen, rv.vals + rv.lo,
                      sizeof(int32_t) * cnt);
          std::memcpy(ts.scores.data() + ts.vlen, wscore + rv.lo,
                      sizeof(float) * cnt);
          ++ctx.stats.fused_windows;
          ++ctx.stats.primitive_calls;
          ts.vlen += cnt;
          cur.AdvanceTo(rv.win_base + rv.hi);
          continue;
        }
      }
      // Composed two-step path (also the fused kernel's agreement oracle):
      // decode the tf slice, then one MapBm25 over it. The tf/doclen
      // staging never outlives the kernel call, so it lives on the stack
      // instead of per-term buffers (a window is at most one stride).
      for (uint32_t i = 0; i < cnt; ++i) {
        const uint32_t slot = rv.lo + i;
        ts.docids[ts.vlen + i] = rv.vals[slot];
        wtf[i] = ts.tf_reader.TfAt(rv.win_base + slot);
        wdl[i] = doclens[rv.vals[slot]];
      }
      MapBm25(cnt, ts.scores.data() + ts.vlen, wtf, wdl, ts.idf, k1, bb,
              inv_avgdl);
      ++ctx.stats.primitive_calls;
      ts.vlen += cnt;
      cur.AdvanceTo(rv.win_base + rv.hi);
    }
  };
  if (!solo_only) {
    for (size_t i = 0; i < m; ++i) refill(states[i]);
  }

  // Folds the per-term cursor stats into ctx.stats — shared by the normal
  // exit and the deadline bail-out, so a DeadlineExceeded result still
  // reports everything the query actually did.
  const auto fold_stats = [&] {
    result->num_matches = candidates;
    for (size_t i = 0; i < m; ++i) {
      MsTerm& ts = states[i];
      ts.stream.FoldStats(&ctx.stats);
      if (ts.demoted) ts.probe.FoldStats(&ctx.stats);
      ctx.stats.tf_windows_decoded += ts.tf_reader.windows_decoded();
    }
    result->stats = ctx.stats;
  };

  // Window staging for the solo-stream fast path (one stride each; the
  // docids never need staging — the cursor's decoded run is used in place).
  alignas(32) int32_t sdl[compress::kEntryPointStride];
  alignas(32) int32_t stf[compress::kEntryPointStride];
  alignas(32) float sscore[compress::kEntryPointStride];
  vec::sel_t wsel[compress::kEntryPointStride];

  // Completes a candidate's partial score from the demoted lists,
  // strongest first, with the live threshold: each probe either adds the
  // term's real contribution or retires its ub from the remaining
  // headroom; a candidate that provably cannot reach θ is dropped
  // mid-chain. θ cannot rise inside one chain (no push until it ends), so
  // one load covers it. Returns true after a heap push attempt — the
  // caller's cached cut may be stale then.
  const auto complete_and_push = [&](int32_t d, float s, size_t ness_now,
                                     float bound) -> bool {
    const float live = live_theta();
    float remaining = bound;
    for (size_t p = ness_now; p-- > 0;) {
      if (s + remaining < live) return false;
      MsTerm& nt = states[order[p]];
      remaining -= nt.ub;
      if (nt.probe.SkipTo(d) && nt.probe.value() == d) {
        const float tf =
            static_cast<float>(nt.tf_reader.TfAt(nt.probe.position()));
        s += Bm25One(nt.idf, tf, static_cast<float>(doclens[d]), k1, bb,
                     inv_avgdl);
        ++ctx.stats.docs_probed;
      }
    }
    topk.Push(d, s);
    return true;
  };

  for (;;) {
    // Deadline checkpoint: once per candidate vector (§9.3).
    if (opts.deadline != nullptr) {
      Status live = opts.deadline->Check();
      if (!live.ok()) {
        fold_stats();
        return live;
      }
    }
    const float theta = live_theta();
    // Re-partition between vectors: θ only grows, so demotion is one-way.
    while (ness < m && prefix[ness] < theta) {
      MsTerm& ts = states[order[ness]];
      ts.demoted = true;
      // Resume the probe at the current buffer's first posting: forward
      // SkipTo crosses the already-consumed prefix for free, and anything
      // block-max skipping dropped before this point is provably below θ
      // (see the soundness note above).
      const uint64_t consumed = ts.vec_start - ts.posting_start;
      X100IR_RETURN_IF_ERROR(ts.probe.Init(index_, ts.term, consumed));
      const uint64_t remaining = ts.df - consumed;
      ctx.stats.vectors_pruned += (remaining + vsize - 1) / vsize;
      ts.voff = ts.vlen = 0;  // drop the read-ahead tail; probes re-cover it
      ++ness;
    }
    if (ness == m) break;  // even all terms together cannot reach θ
    const float ness_bound = ness > 0 ? prefix[ness - 1] : 0.0f;

    // Solo-stream fast path: with a single essential list left — every
    // 1-term query, and every multi-term query once demotion has eaten the
    // rest — there is nothing to merge. The cursor's decoded docid run is
    // the candidate vector and the score kernel's output feeds the
    // threshold select directly, so postings flow window-at-a-time from
    // decode to select to heap with no staging copies at all.
    // (Tombstoned reads keep the generic merge, which filters per doc.)
    if (m - ness == 1 && opts.tombstones == nullptr) {
      MsTerm* solo = nullptr;
      for (size_t i = 0; i < m; ++i) {
        if (!states[i].demoted) solo = &states[i];
      }
      MsTerm& ts = *solo;
      // Drain whatever the buffered multi-stream phase left behind with
      // one select pass; streaming takes over on the next iteration.
      const uint32_t batch = ts.vlen - ts.voff;
      if (batch > 0) {
        const int32_t* bd = ts.docids.data() + ts.voff;
        const float* bs = ts.scores.data() + ts.voff;
        candidates += batch;
        const float cut = theta - ness_bound;
        const uint32_t n_cand =
            vec::SelectGeFloatVal(batch, cand_sel.data(), bs, cut);
        ++ctx.stats.primitive_calls;
        for (uint32_t j = 0; j < n_cand; ++j) {
          complete_and_push(bd[cand_sel[j]], bs[cand_sel[j]], ness,
                            ness_bound);
        }
        ts.voff = ts.vlen = 0;
        ts.vec_start = ts.stream.position();
        if (shared != nullptr) shared->RaiseTo(topk.threshold());
        continue;
      }
      if (ts.stream.AtEnd()) break;
      // Window-at-a-time streaming, one candidate vector's worth per outer
      // iteration (keeps the deadline / re-partition granularity).
      compress::SortedRangeCursor& cur = ts.stream.range_cursor();
      uint32_t consumed = 0;
      while (consumed < vsize && !ts.stream.AtEnd()) {
        const uint32_t w = cur.CurrentWindowIndex();
        if (use_blockmax) {
          const BlockMaxEntry& bm = blockmax[w];
          const float wb =
              Bm25One(ts.idf, static_cast<float>(bm.max_tf),
                      static_cast<float>(bm.min_doclen), k1, bb, inv_avgdl);
          if (ts.other_bound + wb < live_theta()) {
            cur.SkipCurrentWindowBlockMax();
            continue;
          }
        }
        const compress::SortedRangeCursor::RunView rv = cur.CurrentRunView();
        const uint32_t cnt = rv.hi - rv.lo;
        const int32_t* vd = rv.vals + rv.lo;
        const float* ws = nullptr;
        bool fused_ok = false;
        if (can_fuse) {
          const compress::WindowView view =
              tf_dec->WindowViewOf(rv.win_index);
          GatherI32(doclens, rv.vals, rv.win_len, sdl);
          fused_ok = FusedScoreTfWindow(view, sdl, ts.idf * (k1 + 1.0f),
                                        k1 * (1.0f - bb),
                                        k1 * bb * inv_avgdl, sscore);
          if (fused_ok) {
            ws = sscore + rv.lo;
            ++ctx.stats.fused_windows;
            ++ctx.stats.primitive_calls;
          }
        }
        if (!fused_ok) {
          for (uint32_t i = 0; i < cnt; ++i) {
            const uint32_t slot = rv.lo + i;
            stf[i] = ts.tf_reader.TfAt(rv.win_base + slot);
            sdl[i] = doclens[rv.vals[slot]];
          }
          MapBm25(cnt, sscore, stf, sdl, ts.idf, k1, bb, inv_avgdl);
          ++ctx.stats.primitive_calls;
          ws = sscore;
        }
        candidates += cnt;
        const float cut = live_theta() - ness_bound;
        const uint32_t n_cand = vec::SelectGeFloatVal(cnt, wsel, ws, cut);
        ++ctx.stats.primitive_calls;
        for (uint32_t j = 0; j < n_cand; ++j) {
          complete_and_push(vd[wsel[j]], ws[wsel[j]], ness, ness_bound);
        }
        cur.AdvanceTo(rv.win_base + rv.hi);
        consumed += cnt;
      }
      ts.vec_start = ts.stream.position();
      if (shared != nullptr) shared->RaiseTo(topk.threshold());
      continue;
    }

    // Merge one vector of candidates from the essential streams. The
    // active set (essential, non-empty) is gathered once per vector —
    // streams leave it only by running dry, so the per-doc loops never
    // re-test demotion or emptiness across the whole states array. The
    // threshold filter (partial + ness_bound >= θ, i.e. partial >= θ −
    // ness_bound; −inf until the heap fills) is fused into the merge, and
    // survivors complete and push immediately — θ therefore rises *within*
    // the vector and the cached cut is refreshed after every push attempt,
    // so later docs in the same vector face the freshest threshold.
    float cut = theta - ness_bound;
    uint32_t seen = 0;
    MsTerm* act[16];
    MsTerm** act_heap = nullptr;
    std::vector<MsTerm*> act_big;
    MsTerm** ap = act;
    size_t na = 0;
    if (m > 16) {
      act_big.resize(m);
      act_heap = act_big.data();
      ap = act_heap;
    }
    for (size_t i = 0; i < m; ++i) {
      MsTerm& ts = states[i];
      if (!ts.demoted && ts.voff < ts.vlen) ap[na++] = &ts;
    }
    while (seen < vsize && na == 2) {
      // Two-pointer union — the workhorse shape (2-term queries, and
      // 3-term queries after one demotion). On a union merge the docid
      // comparison is a coin flip, so the advance is computed branch-free
      // (conditional moves). Both cursors are hoisted into locals for the
      // inner loop: nothing in the loop body touches the MsTerm objects
      // (probes and the heap live elsewhere), so the compiler keeps the
      // six hot values in registers instead of re-deriving them through
      // the state array every posting.
      MsTerm& a = *ap[0];
      MsTerm& b = *ap[1];
      const int32_t* ad = a.docids.data();
      const float* as = a.scores.data();
      const int32_t* bd = b.docids.data();
      const float* bs = b.scores.data();
      uint32_t ai = a.voff;
      const uint32_t an = a.vlen;
      uint32_t bi = b.voff;
      const uint32_t bn = b.vlen;
      while (seen < vsize && ai < an && bi < bn) {
        const int32_t da = ad[ai];
        const int32_t db = bd[bi];
        const float sa = as[ai];
        const float sb = bs[bi];
        const int32_t d = da < db ? da : db;
        const float partial = (da == d ? sa : 0.0f) + (db == d ? sb : 0.0f);
        ai += (da == d);
        bi += (db == d);
        if (TombstoneTest(opts.tombstones, d)) continue;
        ++seen;
        if (partial >= cut) {
          if (complete_and_push(d, partial, ness, ness_bound)) {
            cut = live_theta() - ness_bound;
          }
        }
      }
      a.voff = ai;
      b.voff = bi;
      if (ai >= an) refill(a);
      if (bi >= bn) refill(b);
      if (ap[1]->voff >= ap[1]->vlen) --na;
      if (ap[0]->voff >= ap[0]->vlen) {
        ap[0] = ap[na - 1];
        --na;
      }
    }
    // The find-min scan reads a local head array (maintained on every
    // advance) instead of chasing three dependent loads per stream through
    // the active-set pointers.
    int32_t heads[16];
    std::vector<int32_t> heads_big;
    int32_t* hp = heads;
    if (m > 16) {
      heads_big.resize(m);
      hp = heads_big.data();
    }
    for (size_t i = 0; i < na; ++i) hp[i] = ap[i]->docids[ap[i]->voff];
    while (seen < vsize && na > 0) {
      int32_t d = hp[0];
      for (size_t i = 1; i < na; ++i) {
        if (hp[i] < d) d = hp[i];
      }
      float partial = 0.0f;
      for (size_t i = 0; i < na; ++i) {
        if (hp[i] != d) continue;
        MsTerm& ts = *ap[i];
        partial += ts.scores[ts.voff];
        if (++ts.voff == ts.vlen) {
          refill(ts);
          if (ts.voff >= ts.vlen) {  // stream dry: drop from the active set
            ap[i] = ap[na - 1];
            hp[i] = hp[na - 1];
            --na;
            --i;
            continue;
          }
        }
        hp[i] = ts.docids[ts.voff];
      }
      // Segmented read with deletes: the streams still advance past a dead
      // doc (posting consumption is positional) but it is never a
      // candidate — not scored, not probed, not counted.
      if (TombstoneTest(opts.tombstones, d)) continue;
      ++seen;
      if (partial >= cut) {
        if (complete_and_push(d, partial, ness, ness_bound)) {
          cut = live_theta() - ness_bound;
        }
      }
    }
    if (seen == 0) break;  // essential streams exhausted
    candidates += seen;
    // Publish once per candidate vector, not per push: the channel is a
    // bound, not a log, and the heap's threshold after the batch is the
    // tightest value this shard can prove.
    if (shared != nullptr) shared->RaiseTo(topk.threshold());
  }

  if (shared != nullptr) shared->RaiseTo(topk.threshold());
  topk.FinishSorted(&result->docids, &result->scores);
  fold_stats();
  return OkStatus();
}

}  // namespace x100ir::ir
