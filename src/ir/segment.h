// One immutable segment of the segmented index (DESIGN.md §10): a compressed
// InvertedIndex over a subset of the global document space, plus the
// local→global docid map that places it there.
//
// Three ways a segment comes to exist:
//   OpenBase — the database's original corpus-built index (segment 0). Its
//     column files sit flat at the database root — the exact layout every
//     pre-segmentation test and bench knows — and its docid map is the
//     identity.
//   Build    — a merge's output: forward documents (already normalized) are
//     compacted into a fresh compressed index under its own directory, and
//     the strictly-increasing global docid list is persisted as
//     segment.meta. The segment owns the Corpus it was built from, which
//     doubles as its forward store for later merges and delete accounting.
//   Load     — a manifest reopen: the index loads corpus-free from its v3
//     side tables, the docid map from segment.meta, and the forward store
//     is reconstructed by inverting the postings (terms ascending, so each
//     rebuilt document comes out normalized).
//
// Retirement: after a merge commits, the SnapshotManager marks replaced
// segments retire-on-release and drops its reference; in-flight snapshots
// keep them alive (shared_ptr refcount = the pin count). The LAST release
// runs the destructor, which detaches the segment's pages and file ids
// from the shared buffer pool (BufferManager::EvictFile semantics — exactly
// the dead pages drop, hot segments stay hot) and then deletes its files.
#ifndef X100IR_IR_SEGMENT_H_
#define X100IR_IR_SEGMENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/corpus.h"
#include "ir/index_builder.h"

namespace x100ir::ir {

class Segment {
 public:
  // Builds or reuses the base index at the database root. `corpus` is
  // borrowed and must outlive the segment. Empty dir = in-memory segment.
  static Status OpenBase(const Corpus* corpus, const std::string& dir,
                         BuildStats* stats, const StorageBinding& binding,
                         std::unique_ptr<Segment>* out);

  // Builds a merged segment under `dir` (created if absent) from forward
  // documents; `global_docids` (strictly increasing, parallel to `docs`)
  // becomes the docid map. Empty dir = in-memory segment.
  static Status Build(std::vector<std::vector<DocTerm>> docs,
                      std::vector<int32_t> global_docids, uint32_t vocab_size,
                      const std::string& dir, const StorageBinding& binding,
                      uint32_t seg_id, std::unique_ptr<Segment>* out);

  // Reopens a merged segment directory without a corpus. Any
  // missing/torn/mismatched file is an error; the caller falls back to a
  // clean rebuild.
  static Status Load(const std::string& dir, const StorageBinding& binding,
                     uint32_t seg_id, uint32_t expect_num_docs,
                     std::unique_ptr<Segment>* out);

  ~Segment();
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  uint32_t seg_id() const { return seg_id_; }
  uint32_t num_docs() const { return index_.num_docs(); }
  const std::string& dir() const { return dir_; }
  uint32_t file_id_base() const { return file_id_base_; }
  const InvertedIndex& index() const { return index_; }

  // Identity for the base segment; strictly increasing in `local` always,
  // so local result order IS global result order.
  bool identity_map() const { return docid_map_.empty(); }
  int32_t GlobalOf(int32_t local) const {
    return docid_map_.empty() ? local : docid_map_[local];
  }
  // Smallest global docid the segment could hold content for (segment
  // ordering when concatenating results).
  int32_t min_global() const {
    return docid_map_.empty() || num_docs() == 0 ? 0 : docid_map_.front();
  }
  // Local docid of `global`, or -1 when the segment doesn't hold it.
  int32_t LocalOf(int32_t global) const;

  // Forward store: doc `local`'s normalized term list and length.
  const std::vector<DocTerm>& doc(uint32_t local) const {
    return base_corpus_ != nullptr ? base_corpus_->doc(local)
                                   : owned_corpus_->doc(local);
  }
  int32_t doc_len(uint32_t local) const {
    return base_corpus_ != nullptr ? base_corpus_->doc_len(local)
                                   : owned_corpus_->doc_len(local);
  }

  // Arms file deletion on destruction (called by the merge that replaced
  // this segment, after the manifest no longer references it).
  void set_retire_on_release() {
    retire_.store(true, std::memory_order_release);
  }

 private:
  Segment() = default;

  uint32_t seg_id_ = 0;
  std::string dir_;
  uint32_t file_id_base_ = 0;
  bool base_layout_ = false;  // files flat at the database root
  std::atomic<bool> retire_{false};

  const Corpus* base_corpus_ = nullptr;      // OpenBase: borrowed
  std::unique_ptr<Corpus> owned_corpus_;     // Build/Load: owned
  std::vector<int32_t> docid_map_;           // empty = identity
  InvertedIndex index_;
};

}  // namespace x100ir::ir

#endif  // X100IR_IR_SEGMENT_H_
