// Fused BM25 scoring kernel — the "speed" end of the paper's
// flexibility-vs-speed trade-off. The composed formulation spends ~5
// primitive calls and 4 intermediate vectors per term:
//
//   cast_f32(tf); norm = k1(1-b) + (k1*b/avgdl)*len;
//   score = idf(k1+1) * tf / (tf + norm)
//
// while this kernel evaluates the same formula in one pass with no
// intermediates. bench_primitives (BM_Bm25ComposedVsFused) measures the
// gap; tests/vec_test.cc pins agreement to 1e-5.
#ifndef X100IR_IR_BM25_H_
#define X100IR_IR_BM25_H_

#include <cmath>
#include <cstdint>

#include "vec/vector.h"

namespace x100ir::ir {

// BM25 idf, the +1 variant (always positive, so a ubiquitous term can
// never flip a document's score negative). One definition shared by the
// index builder, the snapshot layer's live collection stats, and the test
// oracles: a segmented search scoring with live (num_docs, df) must be
// bit-identical to a monolithic index rebuilt over the same live corpus.
inline float Bm25Idf(uint32_t num_docs, uint32_t df) {
  const double n = static_cast<double>(num_docs);
  const double d = static_cast<double>(df);
  return static_cast<float>(std::log(1.0 + (n - d + 0.5) / (d + 0.5)));
}

// Scalar single-posting BM25 — the same formula, constant folding, and
// operation order as MapBm25 below, for call sites that score one posting
// at a time (MaxScore upper bounds and probe completion, the custom-engine
// baselines). One definition keeps every path bit-identical: the
// cross-path agreement tests and Table 1's "identical p@20" column depend
// on no copy drifting.
inline float Bm25One(float idf, float tf, float doclen, float k1, float b,
                     float inv_avgdl) {
  return idf * (k1 + 1.0f) * tf /
         (tf + k1 * (1.0f - b) + k1 * b * inv_avgdl * doclen);
}

// out[i] = idf * (k1 + 1) * tf[i] / (tf[i] + k1*(1 - b) + k1*b*doclen[i]/avgdl)
// for i in [0, n). Takes 1/avgdl so the caller hoists the division out of
// the per-term loop.
inline void MapBm25(uint32_t n, float* out, const int32_t* tf,
                    const int32_t* doclen, float idf, float k1, float b,
                    float inv_avgdl) {
  const float w = idf * (k1 + 1.0f);
  const float c0 = k1 * (1.0f - b);
  const float c1 = k1 * b * inv_avgdl;
  for (uint32_t i = 0; i < n; ++i) {
    const float tff = static_cast<float>(tf[i]);
    out[i] = w * tff / (tff + c0 + c1 * static_cast<float>(doclen[i]));
  }
}

// Selection-vector variant: scores only the listed rows, writing through
// sel (same ownership rules as the vec/ map primitives, DESIGN.md §4).
inline void MapBm25Sel(uint32_t n, const x100ir::vec::sel_t* sel,
                       uint32_t sel_count, float* out, const int32_t* tf,
                       const int32_t* doclen, float idf, float k1, float b,
                       float inv_avgdl) {
  if (sel == nullptr) {
    MapBm25(n, out, tf, doclen, idf, k1, b, inv_avgdl);
    return;
  }
  const float w = idf * (k1 + 1.0f);
  const float c0 = k1 * (1.0f - b);
  const float c1 = k1 * b * inv_avgdl;
  for (uint32_t j = 0; j < sel_count; ++j) {
    const uint32_t i = sel[j];
    const float tff = static_cast<float>(tf[i]);
    out[i] = w * tff / (tff + c0 + c1 * static_cast<float>(doclen[i]));
  }
}

}  // namespace x100ir::ir

namespace x100ir {
// Surface the scoring kernels at engine scope: call sites live in other
// subsystem namespaces (vec/ operators, benches) and the kernels take only
// raw pointers, so argument-dependent lookup never finds them in ir::.
using ir::Bm25Idf;
using ir::Bm25One;
using ir::MapBm25;
using ir::MapBm25Sel;
}  // namespace x100ir

#endif  // X100IR_IR_BM25_H_
