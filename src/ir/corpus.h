// Synthetic GOV2 stand-in (DESIGN.md §3.1): the paper's TREC-TB experiments
// at laptop scale, preserving the workload's *shape* — Zipf term skew (the
// posting-list length distribution that makes compression and list skipping
// interesting), log-normal document lengths, and planted topics with
// relevance judgments so precision@20 has signal.
//
// Everything derives from the deterministic Rng (xorshift64*): a seed
// fully determines the corpus on a given platform, and the stream is
// stable across platforms up to libm last-ulp differences (pow/exp/cos in
// the samplers). Fingerprint() hashes the actual term stream — not just
// the options — so on-disk index reuse stays safe even if two platforms
// ever disagree. The corpus lives in memory as per-document (term, tf)
// lists; the inverted index (index_builder.h) is built from it.
#ifndef X100IR_IR_CORPUS_H_
#define X100IR_IR_CORPUS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace x100ir::ir {

// Knobs for the generator. Defaults match bench_util.h's default scale.
struct CorpusOptions {
  uint32_t num_docs = 60000;
  uint32_t vocab_size = 40000;

  // Term-draw distribution: P(rank r) ∝ 1 / r^zipf_s over ranks 1..vocab.
  double zipf_s = 1.05;

  // Document lengths ~ round(lognormal(mu, sigma)), clamped to >= 1.
  double doclen_mu = 5.0;
  double doclen_sigma = 0.5;

  // Planted topics: each topic owns `terms_per_topic` terms drawn from the
  // Zipf rank band [topic_rank_min, topic_rank_max) (mid-rank terms — rare
  // enough to be discriminative, common enough to appear), plus
  // `relevant_docs_per_topic` documents that draw a `topical_mass` fraction
  // of their terms from the topic's term set instead of the global Zipf.
  uint32_t num_topics = 60;
  uint32_t terms_per_topic = 6;
  uint32_t relevant_docs_per_topic = 120;
  double topical_mass = 0.30;
  uint32_t topic_rank_min = 30;
  uint32_t topic_rank_max = 400;

  uint64_t seed = 2007;
};

// One posting inside a document: term id and its in-document frequency.
struct DocTerm {
  uint32_t term;
  int32_t tf;
};

class Corpus {
 public:
  // Generates a corpus from options. Fails on inconsistent options (empty
  // collection, topic rank band outside the vocabulary, ...).
  static Status Generate(const CorpusOptions& opts, Corpus* out);

  // Hand-built corpus for tests: docs[d] lists doc d's term occurrences
  // (unsorted, duplicates = tf). vocab_size must cover every term id.
  // Produces no topics/qrels.
  static Status FromDocuments(const std::vector<std::vector<uint32_t>>& docs,
                              uint32_t vocab_size, Corpus* out);

  // Same contract but from already-normalized (term, tf) lists — each doc
  // sorted by term, distinct terms, positive tfs — moved in without the
  // occurrence-expansion round trip. This is how a merge builds the corpus
  // for a compacted segment from the forward documents it already holds.
  static Status FromDocTerms(std::vector<std::vector<DocTerm>> docs,
                             uint32_t vocab_size, Corpus* out);

  const CorpusOptions& options() const { return options_; }
  uint32_t num_docs() const { return static_cast<uint32_t>(docs_.size()); }
  uint32_t vocab_size() const { return options_.vocab_size; }

  // Doc d's distinct terms, sorted by term id, with per-term frequencies.
  const std::vector<DocTerm>& doc(uint32_t d) const { return docs_[d]; }
  // Total term occurrences in doc d (the BM25 document length).
  int32_t doc_len(uint32_t d) const { return doc_lens_[d]; }
  const std::vector<int32_t>& doc_lens() const { return doc_lens_; }
  double avg_doc_len() const { return avg_doc_len_; }
  uint64_t num_postings() const { return num_postings_; }

  // Planted topics (empty for FromDocuments corpora).
  uint32_t num_topics() const {
    return static_cast<uint32_t>(topic_terms_.size());
  }
  const std::vector<uint32_t>& topic_terms(uint32_t t) const {
    return topic_terms_[t];
  }
  // Relevant docids for topic t, sorted ascending.
  const std::vector<int32_t>& relevant_docs(uint32_t t) const {
    return relevant_docs_[t];
  }

  // A stable fingerprint of the generator inputs (options + generator
  // version), used by the index builder to decide whether on-disk column
  // files belong to this corpus.
  uint64_t Fingerprint() const;

 private:
  Status Finalize();  // fills doc_lens_/avg_doc_len_/num_postings_

  CorpusOptions options_;
  std::vector<std::vector<DocTerm>> docs_;
  std::vector<int32_t> doc_lens_;
  double avg_doc_len_ = 0.0;
  uint64_t num_postings_ = 0;
  std::vector<std::vector<uint32_t>> topic_terms_;
  std::vector<std::vector<int32_t>> relevant_docs_;
  bool hand_built_ = false;
};

}  // namespace x100ir::ir

#endif  // X100IR_IR_CORPUS_H_
