// The in-memory write buffer of the segmented index (DESIGN.md §10): newly
// added documents live here — uncompressed, forward (per-doc term lists)
// AND inverted (per-term posting vectors) — until a background merge
// compacts them into an immutable compressed Segment.
//
// Docid space: the delta owns the global docid range [base_docid, base +
// num_docs). Documents are append-only, so within every term's posting
// vector the docids ascend — the same invariant the compressed segments
// have, which keeps cross-structure result merging a concatenation.
//
// Snapshot reads (visible-prefix semantics): a snapshot captures the
// document count at acquire time and scans only postings whose doc index is
// below it. Appends after the capture are invisible to that snapshot, so a
// query sees one consistent document set without blocking writers for its
// whole duration. Readers copy postings out under a shared lock (the
// posting vectors reallocate under Add, so borrowed pointers would dangle);
// the forward stores are deques, whose element references survive appends,
// so per-doc accessors can return without copying.
//
// Thread contract: Add under the writer lock; every accessor is safe
// concurrently with Add. Seal() flips the buffer read-only (merge prep);
// a sealed delta is scanned lock-free by convention but the accessors keep
// taking the shared lock anyway — uncontended, and TSan-clean by
// construction rather than by argument.
#ifndef X100IR_IR_DELTA_SEGMENT_H_
#define X100IR_IR_DELTA_SEGMENT_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "common/status.h"
#include "ir/corpus.h"

namespace x100ir::ir {

class DeltaSegment {
 public:
  DeltaSegment(uint32_t vocab_size, int32_t base_docid)
      : vocab_size_(vocab_size), base_(base_docid), postings_(vocab_size) {}
  DeltaSegment(const DeltaSegment&) = delete;
  DeltaSegment& operator=(const DeltaSegment&) = delete;

  uint32_t vocab_size() const { return vocab_size_; }
  int32_t base_docid() const { return base_; }

  // Appends one document (normalized: terms strictly ascending, tfs > 0 —
  // the caller validated) and returns its global docid. Fails
  // FailedPrecondition on a sealed delta.
  Status Add(std::vector<DocTerm> doc, int32_t* global_docid);

  // Current document count (== how many are visible to a snapshot acquired
  // now).
  uint32_t num_docs() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return static_cast<uint32_t>(doc_lens_.size());
  }

  // Flips the buffer read-only; Add fails afterwards. Called by the merge
  // that adopts this delta as input, and again by WAL replay when a
  // DeltaSealed record re-seals a recovered delta. Idempotent: sealing a
  // sealed delta changes nothing (the double-recovery property test leans
  // on this — replaying the same log twice must not diverge).
  void Seal() {
    std::unique_lock<std::shared_mutex> lock(mu_);
    sealed_ = true;
  }
  bool sealed() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return sealed_;
  }

  // Copies term t's postings with doc index < visible out as parallel
  // (delta-local doc index, tf) vectors, docids ascending. Overwrites the
  // outputs.
  void CollectPostings(uint32_t term, uint32_t visible,
                       std::vector<int32_t>* local_idx,
                       std::vector<int32_t>* tfs) const;

  // Per-document forward access, valid for local < the visible count the
  // caller captured. The returned reference stays valid across concurrent
  // Adds (deque-backed).
  int32_t doc_len(uint32_t local) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return doc_lens_[local];
  }
  const std::vector<DocTerm>& doc(uint32_t local) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return docs_[local];
  }

 private:
  const uint32_t vocab_size_;
  const int32_t base_;

  mutable std::shared_mutex mu_;
  bool sealed_ = false;
  // Inverted: postings_[t] = (delta-local doc index, tf), index ascending.
  std::vector<std::vector<std::pair<int32_t, int32_t>>> postings_;
  // Forward: deques so element references survive appends.
  std::deque<std::vector<DocTerm>> docs_;
  std::deque<int32_t> doc_lens_;
};

}  // namespace x100ir::ir

#endif  // X100IR_IR_DELTA_SEGMENT_H_
