// Collection-wide BM25 scoring statistics at one snapshot epoch. In the
// monolithic engine these live inside the InvertedIndex (num_docs,
// avg_doc_len, per-term idf computed at build time); once the index is
// segmented they must come from the *live* collection — documents across
// all segments plus the delta, minus tombstones — or a segment built last
// week would score with stale df. The SnapshotManager maintains the live
// counters incrementally under its commit lock and freezes a copy into
// every published snapshot; SearchOptions carries a borrowed pointer so
// each per-segment engine invocation scores with the global numbers.
//
// Exactness contract: num_docs/df are exact integer counts over live
// documents and avg_doc_len is computed the way Corpus::Finalize computes
// it (integer total length, one double division). idf is deliberately NOT
// materialized: it depends on num_docs, so every commit would recompute a
// vocab-sized float vector — instead consumers derive idf[t] =
// Bm25Idf(num_docs, df[t]) for just their query terms (the same function
// the index builder bakes into TermInfo, so scoring with these stats is
// bit-identical to a monolithic index freshly rebuilt over the live
// corpus).
#ifndef X100IR_IR_COLLECTION_STATS_H_
#define X100IR_IR_COLLECTION_STATS_H_

#include <cstdint>
#include <vector>

namespace x100ir::ir {

struct CollectionStats {
  uint32_t num_docs = 0;
  double avg_doc_len = 0.0;
  // Vocab-sized: df[t] = live documents containing t.
  std::vector<uint32_t> df;
};

// Tombstone bitmap probe (bit d set = doc d deleted). Bitmaps are
// word-arrays of ceil(num_docs / 64) uint64s; a null pointer means "no
// deletes", so every call site can pass the optional bitmap straight
// through.
inline bool TombstoneTest(const uint64_t* bits, int32_t docid) {
  return bits != nullptr &&
         ((bits[static_cast<uint32_t>(docid) >> 6] >>
           (static_cast<uint32_t>(docid) & 63)) &
          1) != 0;
}

}  // namespace x100ir::ir

#endif  // X100IR_IR_COLLECTION_STATS_H_
