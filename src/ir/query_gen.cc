#include "ir/query_gen.h"

#include <algorithm>

#include "common/rng.h"

namespace x100ir::ir {
namespace {

// Term-count distribution for efficiency queries: mean 2.3 (the paper's
// query-log average), support 1..5.
uint32_t DrawQueryLen(Rng* rng) {
  const double u = rng->NextDouble();
  if (u < 0.25) return 1;
  if (u < 0.65) return 2;
  if (u < 0.85) return 3;
  if (u < 0.95) return 4;
  return 5;
}

}  // namespace

std::vector<Query> QueryGenerator::EvalQueries() const {
  std::vector<Query> out;
  const uint32_t topics = corpus_->num_topics();
  if (topics == 0 || opts_.num_eval_queries == 0) return out;
  Rng rng(opts_.seed ^ 0x45564151ull);  // "EVAQ"
  out.reserve(opts_.num_eval_queries);
  for (uint32_t i = 0; i < opts_.num_eval_queries; ++i) {
    const uint32_t t = i % topics;
    const auto& terms = corpus_->topic_terms(t);
    const uint32_t want = 2 + static_cast<uint32_t>(rng.NextBounded(
                                  std::max<size_t>(1, terms.size() - 1)));
    // Distinct subset by index rejection (term sets are tiny).
    Query q;
    q.topic = static_cast<int32_t>(t);
    while (q.terms.size() < std::min<size_t>(want, terms.size())) {
      const uint32_t term = terms[rng.NextBounded(terms.size())];
      if (std::find(q.terms.begin(), q.terms.end(), term) == q.terms.end()) {
        q.terms.push_back(term);
      }
    }
    std::sort(q.terms.begin(), q.terms.end());
    out.push_back(std::move(q));
  }
  return out;
}

std::vector<Query> QueryGenerator::EfficiencyQueries() const {
  std::vector<Query> out;
  if (opts_.num_efficiency_queries == 0) return out;
  Rng rng(opts_.seed ^ 0x45464651ull);  // "EFFQ"
  const uint32_t vocab = corpus_->vocab_size();
  // Skip the hyper-frequent head: query terms come from ranks
  // [head, vocab). With a tiny vocabulary fall back to the full range.
  const uint32_t head = vocab > 64 ? 8 : 0;
  out.reserve(opts_.num_efficiency_queries);
  for (uint32_t i = 0; i < opts_.num_efficiency_queries; ++i) {
    // Clamp to the drawable range: a hand-built corpus can have fewer
    // distinct terms than the drawn query length, and the rejection loop
    // below would never terminate.
    const uint32_t len = std::min(DrawQueryLen(&rng), vocab - head);
    Query q;
    while (q.terms.size() < len) {
      // Zipf-ish skew without a CDF: u^4 concentrates draws toward the
      // (damped) head, keeping posting lists long enough that queries do
      // real work, with a long tail of rarer terms.
      const double u = rng.NextDouble();
      const double skew = u * u * u * u;
      const uint32_t term =
          head + static_cast<uint32_t>(skew * static_cast<double>(vocab - head));
      if (term >= vocab) continue;
      if (std::find(q.terms.begin(), q.terms.end(), term) == q.terms.end()) {
        q.terms.push_back(term);
      }
    }
    std::sort(q.terms.begin(), q.terms.end());
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace x100ir::ir
