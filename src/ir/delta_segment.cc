#include "ir/delta_segment.h"

namespace x100ir::ir {

Status DeltaSegment::Add(std::vector<DocTerm> doc, int32_t* global_docid) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (sealed_) {
    return FailedPrecondition("delta segment is sealed (merge in progress)");
  }
  const int32_t local = static_cast<int32_t>(doc_lens_.size());
  int32_t len = 0;
  for (const DocTerm& dt : doc) {
    postings_[dt.term].emplace_back(local, dt.tf);
    len += dt.tf;
  }
  doc_lens_.push_back(len);
  docs_.push_back(std::move(doc));
  if (global_docid != nullptr) *global_docid = base_ + local;
  return OkStatus();
}

void DeltaSegment::CollectPostings(uint32_t term, uint32_t visible,
                                   std::vector<int32_t>* local_idx,
                                   std::vector<int32_t>* tfs) const {
  local_idx->clear();
  tfs->clear();
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [local, tf] : postings_[term]) {
    if (static_cast<uint32_t>(local) >= visible) break;  // index ascending
    local_idx->push_back(local);
    tfs->push_back(tf);
  }
}

}  // namespace x100ir::ir
