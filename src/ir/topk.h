// Top-k selection for ranked runs, in two layers:
//
//   - TopK: a bounded min-heap of (score, docid). The weakest kept entry
//     sits at the root, so the running admission threshold is O(1).
//   - TopKOperator: the plan root for ranked queries. It drains its child's
//     (docid, score) stream, filtering each vector *branch-free* through
//     SelectColVal (score >= threshold emits candidate positions with no
//     mispredictable branch — the same trick as the select primitives and
//     the codec's LOOP2) and only the few survivors touch the branchy heap.
//     Once the heap holds k entries the threshold is the kth score and
//     nearly every vector position is rejected in the tight select loop.
//
// Memory ownership (DESIGN.md §6.3): the operator owns the heap and the
// materialized, rank-sorted result vectors; emitted batches borrow them and
// stay valid until the operator's Close. Ordering is score descending with
// docid ascending as the tiebreak, which makes ranked output deterministic
// and lets tests compare against a naive oracle exactly.
#ifndef X100IR_IR_TOPK_H_
#define X100IR_IR_TOPK_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "ir/collection_stats.h"
#include "vec/primitives.h"
#include "vec/scan.h"

namespace x100ir::ir {

class TopK {
 public:
  explicit TopK(uint32_t k) : k_(k) {}

  uint32_t k() const { return k_; }
  bool full() const { return entries_.size() >= k_; }

  // Scores strictly below the threshold can never be admitted. Until the
  // heap fills this is -inf (everything is a candidate).
  float threshold() const {
    return full() ? entries_.front().score
                  : -std::numeric_limits<float>::infinity();
  }

  void Push(int32_t docid, float score) {
    if (!full()) {
      entries_.push_back({score, docid});
      std::push_heap(entries_.begin(), entries_.end(), Stronger);
      return;
    }
    if (Stronger(Entry{score, docid}, entries_.front())) {
      std::pop_heap(entries_.begin(), entries_.end(), Stronger);
      entries_.back() = {score, docid};
      std::push_heap(entries_.begin(), entries_.end(), Stronger);
    }
  }

  // Drains the heap in rank order (score desc, docid asc) and resets it.
  void FinishSorted(std::vector<int32_t>* docids,
                    std::vector<float>* scores) {
    std::sort(entries_.begin(), entries_.end(), Stronger);
    docids->resize(entries_.size());
    scores->resize(entries_.size());
    for (size_t i = 0; i < entries_.size(); ++i) {
      (*docids)[i] = entries_[i].docid;
      (*scores)[i] = entries_[i].score;
    }
    entries_.clear();
  }

 private:
  struct Entry {
    float score;
    int32_t docid;
  };

  // Rank order. Used as the heap comparator: the "largest" element under
  // it is the weakest entry, which std::push_heap keeps at the root.
  static bool Stronger(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.docid < b.docid;
  }

  uint32_t k_;
  std::vector<Entry> entries_;
};

// Plan root for ranked runs. Child schema: (docid i32, score f32). Output:
// the same schema, rows in rank order, emitted vector-at-a-time.
class TopKOperator : public vec::Operator {
 public:
  TopKOperator(vec::ExecContext* ctx, vec::OperatorPtr child, uint32_t k)
      : ctx_(ctx), child_(std::move(child)), topk_(k) {}

  // Documents the child drained into the heap (== total candidate matches
  // for a disjunctive ranked query). Valid after the first Next.
  uint64_t rows_consumed() const { return rows_consumed_; }

  // Borrowed tombstone bitmap over the child's docid space (segmented
  // reads, search_engine.h). Deleted rows are dropped before the heap and
  // excluded from rows_consumed. Must be set before Open.
  void set_tombstones(const uint64_t* bits) { tombstones_ = bits; }

  Status Open() override {
    if (child_ == nullptr) return InvalidArgument("top-k needs a child");
    if (ctx_ == nullptr) {
      return InvalidArgument("top-k needs an execution context");
    }
    X100IR_RETURN_IF_ERROR(ctx_->Validate());
    if (topk_.k() == 0) return InvalidArgument("top-k needs k > 0");
    X100IR_RETURN_IF_ERROR(child_->Open());
    const vec::Schema& cs = child_->schema();
    if (cs.NumColumns() != 2 || cs.type(0) != vec::TypeId::kI32 ||
        cs.type(1) != vec::TypeId::kF32) {
      return InvalidArgument("top-k child must produce (docid i32, score f32)");
    }
    schema_ = cs;
    cand_sel_.resize(ctx_->vector_size);
    drained_ = false;
    pos_ = 0;
    rows_consumed_ = 0;
    result_docids_.clear();
    result_scores_.clear();
    return OkStatus();
  }

  Status Next(vec::Batch** out) override {
    if (out == nullptr) return InvalidArgument("null output");
    if (!drained_) {
      X100IR_RETURN_IF_ERROR(Drain());
      drained_ = true;
    }
    const uint64_t remaining = result_docids_.size() - pos_;
    if (remaining == 0) {
      *out = nullptr;
      return OkStatus();
    }
    const uint32_t len = static_cast<uint32_t>(
        std::min<uint64_t>(ctx_->vector_size, remaining));
    if (batch_.columns.empty()) {
      out_docid_.Reset(vec::TypeId::kI32, ctx_->vector_size);
      out_score_.Reset(vec::TypeId::kF32, ctx_->vector_size);
      batch_.columns = {&out_docid_, &out_score_};
    }
    std::copy_n(result_docids_.data() + pos_, len,
                out_docid_.Data<int32_t>());
    std::copy_n(result_scores_.data() + pos_, len, out_score_.Data<float>());
    pos_ += len;
    batch_.count = len;
    batch_.sel = nullptr;
    batch_.sel_count = 0;
    *out = &batch_;
    return OkStatus();
  }

  void Close() override {
    if (child_ != nullptr) child_->Close();
  }

 private:
  Status Drain() {
    vec::Batch* b = nullptr;
    for (;;) {
      X100IR_RETURN_IF_ERROR(child_->Next(&b));
      if (b == nullptr) break;
      const int32_t* docids = b->columns[0]->Data<int32_t>();
      const float* scores = b->columns[1]->Data<float>();
      if (tombstones_ == nullptr) {
        rows_consumed_ += b->ActiveCount();
        // Branch-free candidate filter: >= (not >) so a score tying the
        // current kth can still win on the docid tiebreak inside Push.
        const uint32_t n_cand = vec::SelectColVal<vec::GeCmp, float>(
            b->count, b->sel, b->sel_count, cand_sel_.data(), scores,
            topk_.threshold());
        ++ctx_->stats.primitive_calls;
        for (uint32_t j = 0; j < n_cand; ++j) {
          const vec::sel_t i = cand_sel_[j];
          topk_.Push(docids[i], scores[i]);
        }
      } else {
        // Segmented read with deletes: drop dead rows before the heap and
        // keep num_matches an exact live count. The heap's final content
        // is push-order-independent (exact top-k under (score, docid)),
        // so this branchy path stays bit-identical to an index rebuilt
        // without the deleted docs.
        const uint32_t active =
            b->sel != nullptr ? b->sel_count : b->count;
        for (uint32_t j = 0; j < active; ++j) {
          const uint32_t i = b->sel != nullptr ? b->sel[j] : j;
          if (TombstoneTest(tombstones_, docids[i])) continue;
          ++rows_consumed_;
          if (scores[i] >= topk_.threshold()) topk_.Push(docids[i], scores[i]);
        }
      }
    }
    topk_.FinishSorted(&result_docids_, &result_scores_);
    return OkStatus();
  }

  vec::ExecContext* ctx_;
  vec::OperatorPtr child_;
  TopK topk_;
  const uint64_t* tombstones_ = nullptr;
  std::vector<vec::sel_t> cand_sel_;
  std::vector<int32_t> result_docids_;
  std::vector<float> result_scores_;
  vec::Vector out_docid_, out_score_;
  vec::Batch batch_;
  uint64_t pos_ = 0;
  uint64_t rows_consumed_ = 0;
  bool drained_ = false;
};

}  // namespace x100ir::ir

#endif  // X100IR_IR_TOPK_H_
