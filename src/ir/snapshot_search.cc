// Query execution over a Snapshot (DESIGN.md §10): every compressed
// segment runs through the normal SearchEngine — with the snapshot's live
// CollectionStats and the segment's tombstone bitmap plumbed into
// SearchOptions — and the delta write buffers are evaluated exactly, in
// scalar, with the same Bm25One kernel and the same ascending-term
// accumulation order the vectorized union plan uses. Docid spaces are
// disjoint, so the cross-structure merge is a concatenation (boolean runs)
// or a top-k selection over at most (#structures + 1) * k candidates
// (ranked runs) — never a re-score.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "ir/bm25.h"
#include "ir/snapshot.h"

namespace x100ir::ir {
namespace {

struct RankedCandidate {
  int32_t docid = 0;
  float score = 0.0f;
};

// The TopKOperator's rank order: score descending, docid ascending on
// exact float ties. Docids are globally unique, so this is a total order
// and the merge result is independent of candidate arrival order.
bool RankedBefore(const RankedCandidate& a, const RankedCandidate& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.docid < b.docid;
}

// Exact scalar evaluation of one delta buffer. Ranked runs accumulate
// per-document scores term-by-term in ascending term order — the same
// float addition order MergeUnionOperator uses (children are built in
// ascending term order and partial sums fold in child order), so a delta
// document's score is bit-identical to what a rebuilt monolithic index
// would produce for it.
void EvalDelta(const Snapshot::DeltaRead& dr,
               const std::vector<uint32_t>& terms, RunType type,
               const SearchOptions& opts, const CollectionStats& stats,
               std::vector<RankedCandidate>* ranked, uint64_t* num_matches,
               std::vector<int32_t>* bool_matches) {
  const uint64_t* tombs =
      dr.tombstones != nullptr ? dr.tombstones->data() : nullptr;
  const bool ranked_run = type != RunType::kBoolAnd && type != RunType::kBoolOr;
  const float inv_avgdl = stats.avg_doc_len > 0.0
                              ? static_cast<float>(1.0 / stats.avg_doc_len)
                              : 0.0f;

  std::vector<float> acc(dr.visible, 0.0f);
  std::vector<uint32_t> hit_terms(dr.visible, 0);
  std::vector<int32_t> locals, tfs;
  for (uint32_t t : terms) {  // ascending: the accumulation-order contract
    dr.delta->CollectPostings(t, dr.visible, &locals, &tfs);
    if (locals.empty()) continue;
    const float idf = Bm25Idf(stats.num_docs, stats.df[t]);
    for (size_t i = 0; i < locals.size(); ++i) {
      const int32_t local = locals[i];
      if (TombstoneTest(tombs, local)) continue;
      ++hit_terms[local];
      if (ranked_run) {
        acc[local] += Bm25One(idf, static_cast<float>(tfs[i]),
                              static_cast<float>(dr.delta->doc_len(local)),
                              opts.bm25.k1, opts.bm25.b, inv_avgdl);
      }
    }
  }

  const uint32_t need =
      type == RunType::kBoolAnd ? static_cast<uint32_t>(terms.size()) : 1;
  for (uint32_t local = 0; local < dr.visible; ++local) {
    if (hit_terms[local] < need) continue;
    ++*num_matches;
    const int32_t global = dr.delta->base_docid() + static_cast<int32_t>(local);
    if (ranked_run) {
      ranked->push_back({global, acc[local]});
    } else {
      bool_matches->push_back(global);
    }
  }
}

}  // namespace

Status SearchSnapshot(const Snapshot& snap, const Query& query, RunType type,
                      const SearchOptions& user_opts, SearchResult* result) {
  if (result == nullptr) return InvalidArgument("null search result");
  if (snap.stats == nullptr) {
    return InvalidArgument("snapshot carries no collection stats");
  }
  WallTimer timer;
  *result = SearchResult();
  result->epoch = snap.epoch;

  // Mirror the monolithic engine's up-front validation (same messages,
  // same order) so the segmented path rejects exactly what it would.
  if (user_opts.k == 0) {
    return InvalidArgument("k must be > 0 (no run returns zero results)");
  }
  const bool storage_run = type == RunType::kBm25T ||
                           type == RunType::kBm25TC ||
                           type == RunType::kBm25TCM ||
                           type == RunType::kBm25TCMQ8;
  if (storage_run) {
    for (const Snapshot::SegmentRead& sr : snap.segments) {
      if (!sr.seg->index().has_storage()) {
        return FailedPrecondition(
            std::string(RunTypeName(type)) +
            " needs an on-disk index (Database opened with a directory): the "
            "storage runs read cold columns through the buffer pool");
      }
    }
  }
  std::vector<uint32_t> terms = query.terms;
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  if (terms.empty()) return InvalidArgument("query has no terms");
  for (uint32_t t : terms) {
    if (t >= snap.stats->df.size()) {
      return InvalidArgument(StrFormat("query term %u outside vocabulary", t));
    }
  }
  // "Unknown" means zero LIVE documents hold the term — the rebuilt
  // monolithic oracle would not have it at all. (A term whose only
  // occurrences are tombstoned counts as unknown too.)
  const size_t with_postings_end =
      std::stable_partition(terms.begin(), terms.end(),
                            [&snap](uint32_t t) {
                              return snap.stats->df[t] > 0;
                            }) -
      terms.begin();
  const bool any_unknown = with_postings_end != terms.size();
  terms.resize(with_postings_end);
  if (terms.empty() || (type == RunType::kBoolAnd && any_unknown)) {
    result->seconds = timer.ElapsedSeconds();
    return OkStatus();
  }
  if (user_opts.deadline != nullptr) {
    X100IR_RETURN_IF_ERROR(user_opts.deadline->Check());
  }

  const bool ranked_run = type != RunType::kBoolAnd && type != RunType::kBoolOr;
  Query sub;
  sub.terms = terms;
  sub.topic = query.topic;

  std::vector<RankedCandidate> ranked;
  std::vector<int32_t> bool_matches;  // global docid order by construction

  for (const Snapshot::SegmentRead& sr : snap.segments) {
    SearchOptions seg_opts = user_opts;
    seg_opts.global_stats = snap.stats.get();
    seg_opts.tombstones =
        sr.tombstones != nullptr ? sr.tombstones->data() : nullptr;
    SearchEngine engine(&sr.seg->index());
    SearchResult seg_result;
    X100IR_RETURN_IF_ERROR(engine.Search(sub, type, seg_opts, &seg_result));
    result->MergeAccounting(seg_result);
    const bool identity = sr.seg->identity_map();
    if (ranked_run) {
      for (size_t i = 0; i < seg_result.docids.size(); ++i) {
        const int32_t g = identity ? seg_result.docids[i]
                                   : sr.seg->GlobalOf(seg_result.docids[i]);
        ranked.push_back({g, seg_result.scores[i]});
      }
    } else {
      for (int32_t d : seg_result.docids) {
        bool_matches.push_back(identity ? d : sr.seg->GlobalOf(d));
      }
    }
  }

  for (const Snapshot::DeltaRead& dr : snap.deltas) {
    if (user_opts.deadline != nullptr) {
      X100IR_RETURN_IF_ERROR(user_opts.deadline->Check());
    }
    EvalDelta(dr, terms, type, user_opts, *snap.stats, &ranked,
              &result->num_matches, &bool_matches);
  }

  if (ranked_run) {
    const size_t k = std::min<size_t>(user_opts.k, ranked.size());
    std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                      RankedBefore);
    result->docids.reserve(k);
    result->scores.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      result->docids.push_back(ranked[i].docid);
      result->scores.push_back(ranked[i].score);
    }
  } else {
    // Segments ascend in global docid space and every delta base exceeds
    // every committed global, so the concatenation is already docid-sorted;
    // the monolithic boolean runs cap at the FIRST k matches.
    if (bool_matches.size() > user_opts.k) bool_matches.resize(user_opts.k);
    result->docids = std::move(bool_matches);
  }
  result->seconds = timer.ElapsedSeconds();
  return OkStatus();
}

}  // namespace x100ir::ir
