#include "ir/index_builder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"
#include "compress/pfor.h"
#include "compress/pfor_delta.h"
#include "ir/bm25.h"

namespace x100ir::ir {
namespace {

Status WriteColumnFile(const std::string& path, uint32_t encoding,
                       uint64_t value_count, const void* payload,
                       size_t payload_bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IOError("cannot create " + path);
  ColumnFileHeader hdr;
  hdr.encoding = encoding;
  hdr.value_count = value_count;
  bool ok = std::fwrite(&hdr, sizeof(hdr), 1, f) == 1;
  ok = ok && (payload_bytes == 0 ||
              std::fwrite(payload, payload_bytes, 1, f) == 1);
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return IOError("short write to " + path);
  return OkStatus();
}

Status ReadColumnFile(const std::string& path, uint32_t expected_encoding,
                      uint64_t* value_count, std::vector<uint8_t>* payload) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return NotFound("cannot open " + path);
  ColumnFileHeader hdr;
  if (std::fread(&hdr, sizeof(hdr), 1, f) != 1 ||
      hdr.magic != ColumnFileHeader::kMagic ||
      hdr.encoding != expected_encoding) {
    std::fclose(f);
    return IOError("bad column header in " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < static_cast<long>(sizeof(hdr))) {
    std::fclose(f);
    return IOError("truncated column file " + path);
  }
  payload->resize(static_cast<size_t>(end) - sizeof(hdr));
  std::fseek(f, sizeof(hdr), SEEK_SET);
  const bool ok = payload->empty() ||
                  std::fread(payload->data(), payload->size(), 1, f) == 1;
  std::fclose(f);
  if (!ok) return IOError("short read from " + path);
  *value_count = hdr.value_count;
  return OkStatus();
}

// index.meta match is all-or-nothing: any mismatch (fingerprint, counts,
// version) means rebuild.
bool MetaMatches(const std::string& path, uint64_t fingerprint,
                 uint64_t num_postings, uint32_t num_docs,
                 uint32_t vocab_size) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  IndexMetaHeader meta;
  const bool read_ok = std::fread(&meta, sizeof(meta), 1, f) == 1;
  std::fclose(f);
  return read_ok && meta.magic == IndexMetaHeader::kMagic &&
         meta.version == IndexMetaHeader::kVersion &&
         meta.corpus_fingerprint == fingerprint &&
         meta.num_postings == num_postings && meta.num_docs == num_docs &&
         meta.vocab_size == vocab_size;
}

Status WriteMeta(const std::string& path, uint64_t fingerprint,
                 uint64_t num_postings, uint32_t num_docs,
                 uint32_t vocab_size) {
  IndexMetaHeader meta;
  meta.corpus_fingerprint = fingerprint;
  meta.num_postings = num_postings;
  meta.num_docs = num_docs;
  meta.vocab_size = vocab_size;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IOError("cannot create " + path);
  bool ok = std::fwrite(&meta, sizeof(meta), 1, f) == 1;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return IOError("short write to " + path);
  return OkStatus();
}

// The T table packed as kTermRecordBytes-byte records (index_meta.h): the
// in-memory TermInfo has tail padding, so fields are copied one by one.
std::vector<uint8_t> PackTerms(const std::vector<TermInfo>& terms) {
  std::vector<uint8_t> bytes(terms.size() * kTermRecordBytes);
  uint8_t* p = bytes.data();
  for (const TermInfo& t : terms) {
    std::memcpy(p, &t.posting_start, 8);
    std::memcpy(p + 8, &t.doc_freq, 4);
    std::memcpy(p + 12, &t.idf, 4);
    std::memcpy(p + 16, &t.max_tf, 4);
    p += kTermRecordBytes;
  }
  return bytes;
}

Status UnpackTerms(const std::vector<uint8_t>& bytes, uint64_t count,
                   std::vector<TermInfo>* terms) {
  if (bytes.size() != count * kTermRecordBytes) {
    return Internal("terms file payload size mismatch");
  }
  terms->assign(count, TermInfo());
  const uint8_t* p = bytes.data();
  for (TermInfo& t : *terms) {
    std::memcpy(&t.posting_start, p, 8);
    std::memcpy(&t.doc_freq, p + 8, 4);
    std::memcpy(&t.idf, p + 12, 4);
    std::memcpy(&t.max_tf, p + 16, 4);
    p += kTermRecordBytes;
  }
  return OkStatus();
}

// kBlockMaxFile packed as kBlockMaxRecordBytes-byte records, field by field
// like PackTerms so struct padding never leaks into the format.
std::vector<uint8_t> PackBlockMax(const std::vector<BlockMaxEntry>& entries) {
  std::vector<uint8_t> bytes(entries.size() * kBlockMaxRecordBytes);
  uint8_t* p = bytes.data();
  for (const BlockMaxEntry& e : entries) {
    std::memcpy(p, &e.max_tf, 4);
    std::memcpy(p + 4, &e.min_doclen, 4);
    std::memcpy(p + 8, &e.ub, 4);
    p += kBlockMaxRecordBytes;
  }
  return bytes;
}

Status MakeBlockSource(std::vector<uint8_t> block,
                       std::unique_ptr<vec::BlockVectorSource>* out,
                       uint64_t expected_n, const char* what) {
  auto src_or = vec::BlockVectorSource::Create(std::move(block));
  if (!src_or.ok()) return src_or.status();
  if (src_or.value()->size() != expected_n) {
    return Internal(StrFormat("%s block holds %llu values, expected %llu",
                              what,
                              static_cast<unsigned long long>(
                                  src_or.value()->size()),
                              static_cast<unsigned long long>(expected_n)));
  }
  *out = std::move(src_or.value());
  return OkStatus();
}

}  // namespace

Status InvertedIndex::TryLoadColumns(const std::string& dir) {
  // BlockVectorSource::Create deep-validates the payloads, so a corrupt
  // file fails loudly here and the caller falls back to a rebuild.
  const uint64_t n = num_postings_;
  std::vector<uint8_t> docid_block, tf_block;
  uint64_t docid_n = 0, tf_n = 0;
  X100IR_RETURN_IF_ERROR(ReadColumnFile(dir + "/" + kDocidCompressedFile,
                                        ColumnFileHeader::kCompressedBlock,
                                        &docid_n, &docid_block));
  X100IR_RETURN_IF_ERROR(ReadColumnFile(dir + "/" + kTfCompressedFile,
                                        ColumnFileHeader::kCompressedBlock,
                                        &tf_n, &tf_block));
  if (docid_n != n || tf_n != n) {
    return Internal("column files disagree with index.meta");
  }
  X100IR_RETURN_IF_ERROR(
      MakeBlockSource(std::move(docid_block), &docid_source_, n, "docid"));
  return MakeBlockSource(std::move(tf_block), &tf_source_, n, "tf");
}

bool InvertedIndex::SideTablesMatch(const std::string& dir) const {
  std::vector<uint8_t> payload;
  uint64_t count = 0;
  if (!ReadColumnFile(dir + "/" + kTermsFile, ColumnFileHeader::kOpaque,
                      &count, &payload)
           .ok() ||
      count != terms_.size() || payload != PackTerms(terms_)) {
    return false;
  }
  if (!ReadColumnFile(dir + "/" + kDoclenFile, ColumnFileHeader::kRawI32,
                      &count, &payload)
           .ok() ||
      count != doc_lens_.size() ||
      payload.size() != doc_lens_.size() * sizeof(int32_t) ||
      std::memcmp(payload.data(), doc_lens_.data(), payload.size()) != 0) {
    return false;
  }
  return true;
}

Status InvertedIndex::LoadSideTables(const std::string& dir) {
  std::vector<uint8_t> payload;
  uint64_t count = 0;
  X100IR_RETURN_IF_ERROR(ReadColumnFile(
      dir + "/" + kTermsFile, ColumnFileHeader::kOpaque, &count, &payload));
  X100IR_RETURN_IF_ERROR(UnpackTerms(payload, count, &terms_));
  X100IR_RETURN_IF_ERROR(ReadColumnFile(dir + "/" + kDoclenFile,
                                        ColumnFileHeader::kRawI32, &count,
                                        &payload));
  if (payload.size() != count * sizeof(int32_t)) {
    return Internal("doclen file payload size mismatch");
  }
  doc_lens_.assign(count, 0);
  std::memcpy(doc_lens_.data(), payload.data(), payload.size());
  return OkStatus();
}

// Fills blockmax_ from the TD columns (DESIGN.md §12.1). Windows are
// positional (kEntryPointStride postings), so a record can span term
// boundaries — mixing terms only raises max_tf / lowers min_doclen, i.e.
// over-estimates any single term's bound, which stays sound. `ub` is the
// bound under the build parameters with idf = 1; query engines recompute
// Bm25One(idf, max_tf, min_doclen) with live parameters instead of
// scaling this float (scaling could round below the true bound).
void InvertedIndex::ComputeBlockMax(const std::vector<int32_t>& docid_col,
                                    const std::vector<int32_t>& tf_col) {
  constexpr uint64_t kStride = compress::kEntryPointStride;
  const uint64_t n = docid_col.size();
  const uint64_t windows = (n + kStride - 1) / kStride;
  blockmax_.assign(windows, BlockMaxEntry());
  const float inv_avgdl =
      avg_doc_len_ > 0.0 ? static_cast<float>(1.0 / avg_doc_len_) : 0.0f;
  for (uint64_t w = 0; w < windows; ++w) {
    const uint64_t lo = w * kStride;
    const uint64_t hi = std::min<uint64_t>(n, lo + kStride);
    int32_t max_tf = 0;
    int32_t min_dl = std::numeric_limits<int32_t>::max();
    for (uint64_t p = lo; p < hi; ++p) {
      max_tf = std::max(max_tf, tf_col[p]);
      min_dl = std::min(min_dl, doc_lens_[docid_col[p]]);
    }
    BlockMaxEntry& e = blockmax_[w];
    e.max_tf = max_tf;
    e.min_doclen = min_dl;
    e.ub = Bm25One(1.0f, static_cast<float>(max_tf),
                   static_cast<float>(min_dl), kMaterializedK1,
                   kMaterializedB, inv_avgdl);
  }
}

Status InvertedIndex::LoadBlockMax(const std::string& dir) {
  std::vector<uint8_t> payload;
  uint64_t count = 0;
  X100IR_RETURN_IF_ERROR(ReadColumnFile(dir + "/" + kBlockMaxFile,
                                        ColumnFileHeader::kOpaque, &count,
                                        &payload));
  constexpr uint64_t kStride = compress::kEntryPointStride;
  const uint64_t windows = (num_postings_ + kStride - 1) / kStride;
  if (count != windows ||
      payload.size() != windows * kBlockMaxRecordBytes) {
    return Internal("block-max file disagrees with index.meta");
  }
  blockmax_.assign(windows, BlockMaxEntry());
  const uint8_t* p = payload.data();
  for (BlockMaxEntry& e : blockmax_) {
    std::memcpy(&e.max_tf, p, 4);
    std::memcpy(&e.min_doclen, p + 4, 4);
    std::memcpy(&e.ub, p + 8, 4);
    // Structural sanity: negative maxima or a non-finite bound cannot come
    // from any build and would poison the skip condition.
    if (e.max_tf < 0 || e.min_doclen < 0 || !std::isfinite(e.ub) ||
        e.ub < 0.0f) {
      return Internal("corrupt block-max record in " + dir);
    }
    p += kBlockMaxRecordBytes;
  }
  return OkStatus();
}

Status InvertedIndex::EncodeAndPersist(const std::string& dir,
                                       uint64_t corpus_fingerprint,
                                       const std::vector<int32_t>& docid_col,
                                       const std::vector<int32_t>& tf_col) {
  const uint64_t n = docid_col.size();
  // Block-max metadata rides along every build (in-memory, persisted, and
  // segment/merge builds all funnel through here).
  ComputeBlockMax(docid_col, tf_col);
  // Docid deltas keep FOR base 0 (force_base): within a posting
  // list deltas are small positives, and the one large negative delta at
  // each term boundary becomes an exception instead of dragging the frame
  // base down for the whole block.
  compress::EncodeOptions docid_opts;
  docid_opts.force_base = true;
  std::vector<uint8_t> docid_block, tf_block;
  compress::BlockStats docid_stats, tf_stats;
  X100IR_RETURN_IF_ERROR(compress::PforDeltaEncode(
      docid_col.data(), static_cast<uint32_t>(n), docid_opts, &docid_block,
      &docid_stats));
  X100IR_RETURN_IF_ERROR(compress::PforEncode(tf_col.data(),
                                              static_cast<uint32_t>(n), {},
                                              &tf_block, &tf_stats));

  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return IOError("cannot create index dir " + dir);
    X100IR_RETURN_IF_ERROR(WriteColumnFile(
        dir + "/" + kDocidRawFile, ColumnFileHeader::kRawI32, n,
        docid_col.data(), docid_col.size() * sizeof(int32_t)));
    X100IR_RETURN_IF_ERROR(WriteColumnFile(
        dir + "/" + kTfRawFile, ColumnFileHeader::kRawI32, n, tf_col.data(),
        tf_col.size() * sizeof(int32_t)));
    X100IR_RETURN_IF_ERROR(WriteColumnFile(
        dir + "/" + kDocidCompressedFile, ColumnFileHeader::kCompressedBlock,
        n, docid_block.data(), docid_block.size()));
    X100IR_RETURN_IF_ERROR(WriteColumnFile(
        dir + "/" + kTfCompressedFile, ColumnFileHeader::kCompressedBlock, n,
        tf_block.data(), tf_block.size()));
    X100IR_RETURN_IF_ERROR(MaterializeScores(dir, docid_col, tf_col));
    // Side tables, so the directory is loadable without the corpus.
    const std::vector<uint8_t> term_bytes = PackTerms(terms_);
    X100IR_RETURN_IF_ERROR(WriteColumnFile(
        dir + "/" + kTermsFile, ColumnFileHeader::kOpaque, terms_.size(),
        term_bytes.data(), term_bytes.size()));
    X100IR_RETURN_IF_ERROR(WriteColumnFile(
        dir + "/" + kDoclenFile, ColumnFileHeader::kRawI32, doc_lens_.size(),
        doc_lens_.data(), doc_lens_.size() * sizeof(int32_t)));
    const std::vector<uint8_t> blockmax_bytes = PackBlockMax(blockmax_);
    X100IR_RETURN_IF_ERROR(WriteColumnFile(
        dir + "/" + kBlockMaxFile, ColumnFileHeader::kOpaque,
        blockmax_.size(), blockmax_bytes.data(), blockmax_bytes.size()));
    // Meta last: a torn run leaves columns without meta, which reads as
    // "rebuild" next time instead of "trust stale files".
    X100IR_RETURN_IF_ERROR(WriteMeta(dir + "/" + kIndexMetaFile,
                                     corpus_fingerprint, n, num_docs_,
                                     vocab_size()));
  }

  X100IR_RETURN_IF_ERROR(
      MakeBlockSource(std::move(docid_block), &docid_source_, n, "docid"));
  return MakeBlockSource(std::move(tf_block), &tf_source_, n, "tf");
}

// The materialized score columns (DESIGN.md §8.4): score[p] is posting p's
// full BM25 contribution under the build-time parameters, so the TCM run
// replaces (tf decode + doclen gather + float kernel) with one column
// scan. The quantized twin stores q = round((score - bias) / scale) with
// scale spanning [min, max] of the column across the full u8 range —
// per-score error is at most scale/2.
Status InvertedIndex::MaterializeScores(
    const std::string& dir, const std::vector<int32_t>& docid_col,
    const std::vector<int32_t>& tf_col) const {
  const uint64_t n = docid_col.size();
  std::vector<float> scores(n);
  const float inv_avgdl =
      avg_doc_len_ > 0.0 ? static_cast<float>(1.0 / avg_doc_len_) : 0.0f;
  for (uint32_t t = 0; t < vocab_size(); ++t) {
    const TermInfo& info = terms_[t];
    for (uint64_t p = info.posting_start;
         p < info.posting_start + info.doc_freq; ++p) {
      scores[p] = Bm25One(info.idf, static_cast<float>(tf_col[p]),
                          static_cast<float>(doc_lens_[docid_col[p]]),
                          kMaterializedK1, kMaterializedB, inv_avgdl);
    }
  }
  X100IR_RETURN_IF_ERROR(WriteColumnFile(
      dir + "/" + kScoreF32File, ColumnFileHeader::kRawF32, n, scores.data(),
      scores.size() * sizeof(float)));

  float lo = 0.0f, hi = 0.0f;
  if (n > 0) {
    const auto [mn, mx] = std::minmax_element(scores.begin(), scores.end());
    lo = *mn;
    hi = *mx;
  }
  Q8Params params;
  params.bias = lo;
  params.scale = hi > lo ? (hi - lo) / 255.0f : 1.0f;
  std::vector<uint8_t> q8(sizeof(Q8Params) + n);
  std::memcpy(q8.data(), &params, sizeof(params));
  const float inv_scale = 1.0f / params.scale;
  for (uint64_t p = 0; p < n; ++p) {
    const float q = std::nearbyint((scores[p] - params.bias) * inv_scale);
    q8[sizeof(Q8Params) + p] = static_cast<uint8_t>(
        q < 0.0f ? 0.0f : (q > 255.0f ? 255.0f : q));
  }
  return WriteColumnFile(dir + "/" + kScoreQ8File,
                         ColumnFileHeader::kQuantU8, n, q8.data(),
                         q8.size());
}

Status InvertedIndex::AttachStorage(const std::string& dir,
                                    const storage::StorageOptions* owned,
                                    const StorageBinding* shared) {
  storage_.reset();
  auto st = std::make_unique<IndexStorage>();
  if (shared != nullptr) {
    if (shared->pool == nullptr) {
      return InvalidArgument("storage binding without a pool");
    }
    st->pool = shared->pool;
    st->file_id_base = shared->file_id_base;
  } else {
    st->disk = storage::SimulatedDisk(owned->disk);
    st->owned_pool = std::make_unique<storage::BufferManager>(
        owned->pool_bytes, &st->disk, owned->page_bytes, owned->shards);
    st->owned_pool->set_retry_policy(owned->retry);
    st->pool = st->owned_pool.get();
  }
  storage_ = std::move(st);
  Status opened = OpenColumns(dir, storage_->pool, storage_->file_id_base);
  if (!opened.ok()) {
    if (shared != nullptr) {
      // A shared pool outlives this attach attempt: drop whatever ids the
      // partial open registered so the pool never dangles on closed files.
      for (uint32_t i = 0; i < IndexStorage::kFilesPerIndex; ++i) {
        Status unused = shared->pool->UnregisterFile(shared->file_id_base + i);
        (void)unused;
      }
    }
    storage_.reset();
  }
  return opened;
}

Status InvertedIndex::OpenColumns(const std::string& dir,
                                  storage::BufferManager* pool,
                                  uint32_t file_id_base) {
  IndexStorage* st = storage_.get();
  struct ColumnSpec {
    storage::ColumnReader* reader;
    const char* file;
  };
  const ColumnSpec specs[] = {
      {&st->docid_raw, kDocidRawFile},
      {&st->tf_raw, kTfRawFile},
      {&st->docid_compressed, kDocidCompressedFile},
      {&st->tf_compressed, kTfCompressedFile},
      {&st->score_f32, kScoreF32File},
      {&st->score_q8, kScoreQ8File},
  };
  uint32_t file_id = file_id_base;
  for (const ColumnSpec& spec : specs) {
    X100IR_RETURN_IF_ERROR(
        spec.reader->Open(dir + "/" + spec.file, file_id++, pool));
    if (spec.reader->value_count() != num_postings_) {
      return Internal(StrFormat("%s holds %llu values, expected %llu",
                                spec.file,
                                static_cast<unsigned long long>(
                                    spec.reader->value_count()),
                                static_cast<unsigned long long>(
                                    num_postings_)));
    }
  }
  return OkStatus();
}

void InvertedIndex::DetachSharedStorage() {
  if (storage_ == nullptr || storage_->owned_pool != nullptr) return;
  for (uint32_t i = 0; i < IndexStorage::kFilesPerIndex; ++i) {
    Status unused =
        storage_->pool->UnregisterFile(storage_->file_id_base + i);
    (void)unused;
  }
  storage_.reset();
}

Status InvertedIndex::EvictAll() const {
  if (storage_ == nullptr) {
    return FailedPrecondition("index has no storage layer (in-memory only)");
  }
  return storage_->pool->EvictAll();
}

Status InvertedIndex::BuildFromCorpus(const Corpus& corpus,
                                      const std::string& dir,
                                      BuildStats* stats,
                                      const storage::StorageOptions& storage) {
  return BuildImpl(corpus, dir, stats, &storage, nullptr);
}

Status InvertedIndex::BuildFromCorpusShared(const Corpus& corpus,
                                            const std::string& dir,
                                            BuildStats* stats,
                                            const StorageBinding& binding) {
  return BuildImpl(corpus, dir, stats, nullptr, &binding);
}

Status InvertedIndex::BuildImpl(const Corpus& corpus, const std::string& dir,
                                BuildStats* stats,
                                const storage::StorageOptions* owned,
                                const StorageBinding* shared) {
  if (stats == nullptr) return InvalidArgument("null build stats");
  *stats = BuildStats();
  if (corpus.num_postings() == 0) {
    return InvalidArgument("corpus has no postings");
  }
  if (corpus.num_postings() > UINT32_MAX) {
    return InvalidArgument("TD table exceeds one block (2^32 postings)");
  }
  WallTimer timer;

  num_docs_ = corpus.num_docs();
  num_postings_ = corpus.num_postings();
  avg_doc_len_ = corpus.avg_doc_len();
  doc_lens_ = corpus.doc_lens();
  min_doc_len_ = doc_lens_.empty()
                     ? 0
                     : *std::min_element(doc_lens_.begin(), doc_lens_.end());

  // Counting sort into (term, docid) order: df histogram, prefix sums,
  // then one sequential pass over the documents (docids ascend within each
  // term's range because docs are visited in docid order). The same pass
  // collects per-term max tf (the MaxScore bound ingredient), so it is
  // available even when the encoded columns are reused from disk.
  const uint32_t vocab = corpus.vocab_size();
  terms_.assign(vocab, TermInfo());
  for (uint32_t d = 0; d < num_docs_; ++d) {
    for (const DocTerm& p : corpus.doc(d)) {
      TermInfo& info = terms_[p.term];
      ++info.doc_freq;
      info.max_tf = std::max(info.max_tf, p.tf);
    }
  }
  uint64_t start = 0;
  for (uint32_t t = 0; t < vocab; ++t) {
    terms_[t].posting_start = start;
    start += terms_[t].doc_freq;
    terms_[t].idf = Bm25Idf(num_docs_, terms_[t].doc_freq);
  }

  // Reuse check before materializing the TD columns: a fingerprint match
  // makes the counting sort + encode (the expensive part, ~8 bytes/posting
  // of scratch) unnecessary, so don't pay for it on every reopen. Reuse
  // requires *every* persisted column to load and validate — the storage
  // attach revalidates the raw and score files against their exact
  // expected sizes, so a torn write to any of them (truncation at any
  // offset) reads as "rebuild", never as "serve garbage".
  const uint64_t fingerprint = corpus.Fingerprint();
  if (!dir.empty() &&
      MetaMatches(dir + "/" + kIndexMetaFile, fingerprint, num_postings_,
                  num_docs_, vocab_size()) &&
      SideTablesMatch(dir) && TryLoadColumns(dir).ok() &&
      LoadBlockMax(dir).ok() && AttachStorage(dir, owned, shared).ok()) {
    stats->reused_files = true;
  } else {
    storage_.reset();
    std::vector<int32_t> docid_col(num_postings_);
    std::vector<int32_t> tf_col(num_postings_);
    std::vector<uint64_t> fill(vocab);
    for (uint32_t t = 0; t < vocab; ++t) fill[t] = terms_[t].posting_start;
    for (uint32_t d = 0; d < num_docs_; ++d) {
      for (const DocTerm& p : corpus.doc(d)) {
        const uint64_t pos = fill[p.term]++;
        docid_col[pos] = static_cast<int32_t>(d);
        tf_col[pos] = p.tf;
      }
    }
    X100IR_RETURN_IF_ERROR(
        EncodeAndPersist(dir, fingerprint, docid_col, tf_col));
    // A fresh build must attach cleanly — failure here is a real error,
    // not a rebuild trigger.
    if (!dir.empty()) {
      X100IR_RETURN_IF_ERROR(AttachStorage(dir, owned, shared));
    }
  }
  stats->num_postings = num_postings_;
  stats->build_seconds = timer.ElapsedSeconds();
  return OkStatus();
}

Status InvertedIndex::LoadFromDir(const std::string& dir,
                                  const StorageBinding& binding) {
  if (dir.empty()) return InvalidArgument("LoadFromDir needs a directory");
  std::FILE* f = std::fopen((dir + "/" + kIndexMetaFile).c_str(), "rb");
  if (f == nullptr) return NotFound("no index.meta under " + dir);
  IndexMetaHeader meta;
  const bool read_ok = std::fread(&meta, sizeof(meta), 1, f) == 1;
  std::fclose(f);
  if (!read_ok || meta.magic != IndexMetaHeader::kMagic ||
      meta.version != IndexMetaHeader::kVersion) {
    return IOError("bad index.meta under " + dir);
  }
  num_postings_ = meta.num_postings;
  num_docs_ = meta.num_docs;

  X100IR_RETURN_IF_ERROR(LoadSideTables(dir));
  if (terms_.size() != meta.vocab_size ||
      doc_lens_.size() != meta.num_docs) {
    return Internal("side tables disagree with index.meta");
  }
  // Recompute the derived stats exactly the way Corpus::Finalize does
  // (integer total, one double division) so a loaded segment scores
  // bit-identically to one built from the corpus.
  uint64_t total_len = 0;
  for (int32_t len : doc_lens_) total_len += static_cast<uint64_t>(len);
  avg_doc_len_ = num_docs_ == 0 ? 0.0
                                : static_cast<double>(total_len) /
                                      static_cast<double>(num_docs_);
  min_doc_len_ = doc_lens_.empty()
                     ? 0
                     : *std::min_element(doc_lens_.begin(), doc_lens_.end());
  uint64_t expect_start = 0;
  for (const TermInfo& t : terms_) {
    if (t.posting_start != expect_start) {
      return Internal("terms file posting ranges are not contiguous");
    }
    expect_start += t.doc_freq;
  }
  if (expect_start != num_postings_) {
    return Internal("terms file df sum disagrees with index.meta");
  }
  X100IR_RETURN_IF_ERROR(TryLoadColumns(dir));
  X100IR_RETURN_IF_ERROR(LoadBlockMax(dir));
  return AttachStorage(dir, nullptr, &binding);
}

Status InvertedIndex::DecodePostings(uint32_t term,
                                     std::vector<int32_t>* docids,
                                     std::vector<int32_t>* tfs) const {
  if (term >= terms_.size()) return InvalidArgument("term out of range");
  const TermInfo& info = terms_[term];
  if (docids != nullptr) {
    docids->resize(info.doc_freq);
    if (info.doc_freq > 0) {
      docid_source_->Read(info.posting_start, info.doc_freq, docids->data());
    }
  }
  if (tfs != nullptr) {
    tfs->resize(info.doc_freq);
    if (info.doc_freq > 0) {
      tf_source_->Read(info.posting_start, info.doc_freq, tfs->data());
    }
  }
  return OkStatus();
}

}  // namespace x100ir::ir
