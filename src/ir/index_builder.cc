#include "ir/index_builder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"
#include "compress/pfor.h"
#include "compress/pfor_delta.h"
#include "ir/bm25.h"

namespace x100ir::ir {
namespace {

// BM25 idf, the +1 variant (always positive, so a ubiquitous term can
// never flip a document's score negative).
float Bm25Idf(uint32_t num_docs, uint32_t df) {
  const double n = static_cast<double>(num_docs);
  const double d = static_cast<double>(df);
  return static_cast<float>(std::log(1.0 + (n - d + 0.5) / (d + 0.5)));
}

Status WriteColumnFile(const std::string& path, uint32_t encoding,
                       uint64_t value_count, const void* payload,
                       size_t payload_bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IOError("cannot create " + path);
  ColumnFileHeader hdr;
  hdr.encoding = encoding;
  hdr.value_count = value_count;
  bool ok = std::fwrite(&hdr, sizeof(hdr), 1, f) == 1;
  ok = ok && (payload_bytes == 0 ||
              std::fwrite(payload, payload_bytes, 1, f) == 1);
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return IOError("short write to " + path);
  return OkStatus();
}

Status ReadColumnFile(const std::string& path, uint32_t expected_encoding,
                      uint64_t* value_count, std::vector<uint8_t>* payload) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return NotFound("cannot open " + path);
  ColumnFileHeader hdr;
  if (std::fread(&hdr, sizeof(hdr), 1, f) != 1 ||
      hdr.magic != ColumnFileHeader::kMagic ||
      hdr.encoding != expected_encoding) {
    std::fclose(f);
    return IOError("bad column header in " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < static_cast<long>(sizeof(hdr))) {
    std::fclose(f);
    return IOError("truncated column file " + path);
  }
  payload->resize(static_cast<size_t>(end) - sizeof(hdr));
  std::fseek(f, sizeof(hdr), SEEK_SET);
  const bool ok = payload->empty() ||
                  std::fread(payload->data(), payload->size(), 1, f) == 1;
  std::fclose(f);
  if (!ok) return IOError("short read from " + path);
  *value_count = hdr.value_count;
  return OkStatus();
}

// index.meta match is all-or-nothing: any mismatch (fingerprint, counts,
// version) means rebuild.
bool MetaMatches(const std::string& path, uint64_t fingerprint,
                 uint64_t num_postings, uint32_t num_docs,
                 uint32_t vocab_size) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  IndexMetaHeader meta;
  const bool read_ok = std::fread(&meta, sizeof(meta), 1, f) == 1;
  std::fclose(f);
  return read_ok && meta.magic == IndexMetaHeader::kMagic &&
         meta.version == IndexMetaHeader::kVersion &&
         meta.corpus_fingerprint == fingerprint &&
         meta.num_postings == num_postings && meta.num_docs == num_docs &&
         meta.vocab_size == vocab_size;
}

Status WriteMeta(const std::string& path, uint64_t fingerprint,
                 uint64_t num_postings, uint32_t num_docs,
                 uint32_t vocab_size) {
  IndexMetaHeader meta;
  meta.corpus_fingerprint = fingerprint;
  meta.num_postings = num_postings;
  meta.num_docs = num_docs;
  meta.vocab_size = vocab_size;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IOError("cannot create " + path);
  bool ok = std::fwrite(&meta, sizeof(meta), 1, f) == 1;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return IOError("short write to " + path);
  return OkStatus();
}

Status MakeBlockSource(std::vector<uint8_t> block,
                       std::unique_ptr<vec::BlockVectorSource>* out,
                       uint64_t expected_n, const char* what) {
  auto src_or = vec::BlockVectorSource::Create(std::move(block));
  if (!src_or.ok()) return src_or.status();
  if (src_or.value()->size() != expected_n) {
    return Internal(StrFormat("%s block holds %llu values, expected %llu",
                              what,
                              static_cast<unsigned long long>(
                                  src_or.value()->size()),
                              static_cast<unsigned long long>(expected_n)));
  }
  *out = std::move(src_or.value());
  return OkStatus();
}

}  // namespace

Status InvertedIndex::TryLoadColumns(const std::string& dir) {
  // BlockVectorSource::Create deep-validates the payloads, so a corrupt
  // file fails loudly here and the caller falls back to a rebuild.
  const uint64_t n = num_postings_;
  std::vector<uint8_t> docid_block, tf_block;
  uint64_t docid_n = 0, tf_n = 0;
  X100IR_RETURN_IF_ERROR(ReadColumnFile(dir + "/" + kDocidCompressedFile,
                                        ColumnFileHeader::kCompressedBlock,
                                        &docid_n, &docid_block));
  X100IR_RETURN_IF_ERROR(ReadColumnFile(dir + "/" + kTfCompressedFile,
                                        ColumnFileHeader::kCompressedBlock,
                                        &tf_n, &tf_block));
  if (docid_n != n || tf_n != n) {
    return Internal("column files disagree with index.meta");
  }
  X100IR_RETURN_IF_ERROR(
      MakeBlockSource(std::move(docid_block), &docid_source_, n, "docid"));
  return MakeBlockSource(std::move(tf_block), &tf_source_, n, "tf");
}

Status InvertedIndex::EncodeAndPersist(const std::string& dir,
                                       uint64_t corpus_fingerprint,
                                       const std::vector<int32_t>& docid_col,
                                       const std::vector<int32_t>& tf_col) {
  const uint64_t n = docid_col.size();
  // Docid deltas keep FOR base 0 (force_base): within a posting
  // list deltas are small positives, and the one large negative delta at
  // each term boundary becomes an exception instead of dragging the frame
  // base down for the whole block.
  compress::EncodeOptions docid_opts;
  docid_opts.force_base = true;
  std::vector<uint8_t> docid_block, tf_block;
  compress::BlockStats docid_stats, tf_stats;
  X100IR_RETURN_IF_ERROR(compress::PforDeltaEncode(
      docid_col.data(), static_cast<uint32_t>(n), docid_opts, &docid_block,
      &docid_stats));
  X100IR_RETURN_IF_ERROR(compress::PforEncode(tf_col.data(),
                                              static_cast<uint32_t>(n), {},
                                              &tf_block, &tf_stats));

  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return IOError("cannot create index dir " + dir);
    X100IR_RETURN_IF_ERROR(WriteColumnFile(
        dir + "/" + kDocidRawFile, ColumnFileHeader::kRawI32, n,
        docid_col.data(), docid_col.size() * sizeof(int32_t)));
    X100IR_RETURN_IF_ERROR(WriteColumnFile(
        dir + "/" + kTfRawFile, ColumnFileHeader::kRawI32, n, tf_col.data(),
        tf_col.size() * sizeof(int32_t)));
    X100IR_RETURN_IF_ERROR(WriteColumnFile(
        dir + "/" + kDocidCompressedFile, ColumnFileHeader::kCompressedBlock,
        n, docid_block.data(), docid_block.size()));
    X100IR_RETURN_IF_ERROR(WriteColumnFile(
        dir + "/" + kTfCompressedFile, ColumnFileHeader::kCompressedBlock, n,
        tf_block.data(), tf_block.size()));
    X100IR_RETURN_IF_ERROR(MaterializeScores(dir, docid_col, tf_col));
    // Meta last: a torn run leaves columns without meta, which reads as
    // "rebuild" next time instead of "trust stale files".
    X100IR_RETURN_IF_ERROR(WriteMeta(dir + "/" + kIndexMetaFile,
                                     corpus_fingerprint, n, num_docs_,
                                     vocab_size()));
  }

  X100IR_RETURN_IF_ERROR(
      MakeBlockSource(std::move(docid_block), &docid_source_, n, "docid"));
  return MakeBlockSource(std::move(tf_block), &tf_source_, n, "tf");
}

// The materialized score columns (DESIGN.md §8.4): score[p] is posting p's
// full BM25 contribution under the build-time parameters, so the TCM run
// replaces (tf decode + doclen gather + float kernel) with one column
// scan. The quantized twin stores q = round((score - bias) / scale) with
// scale spanning [min, max] of the column across the full u8 range —
// per-score error is at most scale/2.
Status InvertedIndex::MaterializeScores(
    const std::string& dir, const std::vector<int32_t>& docid_col,
    const std::vector<int32_t>& tf_col) const {
  const uint64_t n = docid_col.size();
  std::vector<float> scores(n);
  const float inv_avgdl =
      avg_doc_len_ > 0.0 ? static_cast<float>(1.0 / avg_doc_len_) : 0.0f;
  for (uint32_t t = 0; t < vocab_size(); ++t) {
    const TermInfo& info = terms_[t];
    for (uint64_t p = info.posting_start;
         p < info.posting_start + info.doc_freq; ++p) {
      scores[p] = Bm25One(info.idf, static_cast<float>(tf_col[p]),
                          static_cast<float>(doc_lens_[docid_col[p]]),
                          kMaterializedK1, kMaterializedB, inv_avgdl);
    }
  }
  X100IR_RETURN_IF_ERROR(WriteColumnFile(
      dir + "/" + kScoreF32File, ColumnFileHeader::kRawF32, n, scores.data(),
      scores.size() * sizeof(float)));

  float lo = 0.0f, hi = 0.0f;
  if (n > 0) {
    const auto [mn, mx] = std::minmax_element(scores.begin(), scores.end());
    lo = *mn;
    hi = *mx;
  }
  Q8Params params;
  params.bias = lo;
  params.scale = hi > lo ? (hi - lo) / 255.0f : 1.0f;
  std::vector<uint8_t> q8(sizeof(Q8Params) + n);
  std::memcpy(q8.data(), &params, sizeof(params));
  const float inv_scale = 1.0f / params.scale;
  for (uint64_t p = 0; p < n; ++p) {
    const float q = std::nearbyint((scores[p] - params.bias) * inv_scale);
    q8[sizeof(Q8Params) + p] = static_cast<uint8_t>(
        q < 0.0f ? 0.0f : (q > 255.0f ? 255.0f : q));
  }
  return WriteColumnFile(dir + "/" + kScoreQ8File,
                         ColumnFileHeader::kQuantU8, n, q8.data(),
                         q8.size());
}

Status InvertedIndex::AttachStorage(const std::string& dir,
                                    const storage::StorageOptions& opts) {
  storage_.reset();
  auto st = std::make_unique<IndexStorage>();
  st->disk = storage::SimulatedDisk(opts.disk);
  st->pool = std::make_unique<storage::BufferManager>(
      opts.pool_bytes, &st->disk, opts.page_bytes, opts.shards);
  st->pool->set_retry_policy(opts.retry);
  struct ColumnSpec {
    storage::ColumnReader* reader;
    const char* file;
  };
  const ColumnSpec specs[] = {
      {&st->docid_raw, kDocidRawFile},
      {&st->tf_raw, kTfRawFile},
      {&st->docid_compressed, kDocidCompressedFile},
      {&st->tf_compressed, kTfCompressedFile},
      {&st->score_f32, kScoreF32File},
      {&st->score_q8, kScoreQ8File},
  };
  uint32_t file_id = 0;
  for (const ColumnSpec& spec : specs) {
    X100IR_RETURN_IF_ERROR(
        spec.reader->Open(dir + "/" + spec.file, file_id++, st->pool.get()));
    if (spec.reader->value_count() != num_postings_) {
      return Internal(StrFormat("%s holds %llu values, expected %llu",
                                spec.file,
                                static_cast<unsigned long long>(
                                    spec.reader->value_count()),
                                static_cast<unsigned long long>(
                                    num_postings_)));
    }
  }
  storage_ = std::move(st);
  return OkStatus();
}

Status InvertedIndex::EvictAll() const {
  if (storage_ == nullptr) {
    return FailedPrecondition("index has no storage layer (in-memory only)");
  }
  return storage_->pool->EvictAll();
}

Status InvertedIndex::BuildFromCorpus(const Corpus& corpus,
                                      const std::string& dir,
                                      BuildStats* stats,
                                      const storage::StorageOptions& storage) {
  if (stats == nullptr) return InvalidArgument("null build stats");
  *stats = BuildStats();
  if (corpus.num_postings() == 0) {
    return InvalidArgument("corpus has no postings");
  }
  if (corpus.num_postings() > UINT32_MAX) {
    return InvalidArgument("TD table exceeds one block (2^32 postings)");
  }
  WallTimer timer;

  num_docs_ = corpus.num_docs();
  num_postings_ = corpus.num_postings();
  avg_doc_len_ = corpus.avg_doc_len();
  doc_lens_ = corpus.doc_lens();
  min_doc_len_ = doc_lens_.empty()
                     ? 0
                     : *std::min_element(doc_lens_.begin(), doc_lens_.end());

  // Counting sort into (term, docid) order: df histogram, prefix sums,
  // then one sequential pass over the documents (docids ascend within each
  // term's range because docs are visited in docid order). The same pass
  // collects per-term max tf (the MaxScore bound ingredient), so it is
  // available even when the encoded columns are reused from disk.
  const uint32_t vocab = corpus.vocab_size();
  terms_.assign(vocab, TermInfo());
  for (uint32_t d = 0; d < num_docs_; ++d) {
    for (const DocTerm& p : corpus.doc(d)) {
      TermInfo& info = terms_[p.term];
      ++info.doc_freq;
      info.max_tf = std::max(info.max_tf, p.tf);
    }
  }
  uint64_t start = 0;
  for (uint32_t t = 0; t < vocab; ++t) {
    terms_[t].posting_start = start;
    start += terms_[t].doc_freq;
    terms_[t].idf = Bm25Idf(num_docs_, terms_[t].doc_freq);
  }

  // Reuse check before materializing the TD columns: a fingerprint match
  // makes the counting sort + encode (the expensive part, ~8 bytes/posting
  // of scratch) unnecessary, so don't pay for it on every reopen. Reuse
  // requires *every* persisted column to load and validate — the storage
  // attach revalidates the raw and score files against their exact
  // expected sizes, so a torn write to any of them (truncation at any
  // offset) reads as "rebuild", never as "serve garbage".
  const uint64_t fingerprint = corpus.Fingerprint();
  if (!dir.empty() &&
      MetaMatches(dir + "/" + kIndexMetaFile, fingerprint, num_postings_,
                  num_docs_, vocab_size()) &&
      TryLoadColumns(dir).ok() && AttachStorage(dir, storage).ok()) {
    stats->reused_files = true;
  } else {
    storage_.reset();
    std::vector<int32_t> docid_col(num_postings_);
    std::vector<int32_t> tf_col(num_postings_);
    std::vector<uint64_t> fill(vocab);
    for (uint32_t t = 0; t < vocab; ++t) fill[t] = terms_[t].posting_start;
    for (uint32_t d = 0; d < num_docs_; ++d) {
      for (const DocTerm& p : corpus.doc(d)) {
        const uint64_t pos = fill[p.term]++;
        docid_col[pos] = static_cast<int32_t>(d);
        tf_col[pos] = p.tf;
      }
    }
    X100IR_RETURN_IF_ERROR(
        EncodeAndPersist(dir, fingerprint, docid_col, tf_col));
    // A fresh build must attach cleanly — failure here is a real error,
    // not a rebuild trigger.
    if (!dir.empty()) X100IR_RETURN_IF_ERROR(AttachStorage(dir, storage));
  }
  stats->num_postings = num_postings_;
  stats->build_seconds = timer.ElapsedSeconds();
  return OkStatus();
}

Status InvertedIndex::DecodePostings(uint32_t term,
                                     std::vector<int32_t>* docids,
                                     std::vector<int32_t>* tfs) const {
  if (term >= terms_.size()) return InvalidArgument("term out of range");
  const TermInfo& info = terms_[term];
  if (docids != nullptr) {
    docids->resize(info.doc_freq);
    if (info.doc_freq > 0) {
      docid_source_->Read(info.posting_start, info.doc_freq, docids->data());
    }
  }
  if (tfs != nullptr) {
    tfs->resize(info.doc_freq);
    if (info.doc_freq > 0) {
      tf_source_->Read(info.posting_start, info.doc_freq, tfs->data());
    }
  }
  return OkStatus();
}

}  // namespace x100ir::ir
