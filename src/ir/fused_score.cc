#include "ir/fused_score.h"

#include <cstring>

#include "compress/block_layout.h"
#include "compress/unpack.h"

#if defined(__x86_64__) || defined(_M_X64)
#define X100IR_FUSED_AVX2 1
#include <immintrin.h>
#endif

namespace x100ir::ir {
namespace {

using compress::kEntryPointStride;
using compress::WindowView;
using compress::internal::ActiveSimdLevel;
using compress::internal::GetUnpackAdd;
using compress::internal::SimdLevel;

// One BM25 contribution, in exactly MapBm25's operation order (bm25.h):
// (w * tff) / ((tff + c0) + (c1 * dlf)). Every op is elementwise and
// exactly rounded, so the vector path below computing the same sequence
// with AVX2 mul/add/div (no FMA) produces bit-identical floats.
inline float ScoreOne(float tff, float dlf, float w, float c0, float c1) {
  return w * tff / (tff + c0 + c1 * dlf);
}

// Exception record layout (block_layout.h): {int32 value, uint32 pos},
// positions block-absolute. Patched in the score domain: the codeword in
// an exception slot is a garbage link, so whatever score the bulk loop
// wrote there is overwritten with the real value's contribution.
void PatchScores(const WindowView& view, const int32_t* doclens, float w,
                 float c0, float c1, float* out) {
  for (uint32_t k = 0; k < view.exc_count; ++k) {
    int32_t value;
    uint32_t pos;
    std::memcpy(&value, view.exc + 8ull * k, 4);
    std::memcpy(&pos, view.exc + 8ull * k + 4, 4);
    const uint32_t slot = pos - view.begin;
    if (slot < view.len) {
      out[slot] = ScoreOne(static_cast<float>(value),
                           static_cast<float>(doclens[slot]), w, c0, c1);
    }
  }
}

#if defined(X100IR_FUSED_AVX2)

__attribute__((target("avx2"))) inline __m128i FusedLoadU128(
    const uint8_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

// True fusion: unpack 8 b-bit codewords into a YMM register (the same
// two-load + in-lane-shuffle + variable-shift scheme as UnpackAddAvx2 in
// simd_unpack.cc, but with the shuffle/shift controls built at runtime —
// one window amortizes the ~30 scalar setup ops over up to 16 groups),
// convert to float, and apply the BM25 map before anything is stored. The
// tf vector never exists in memory.
__attribute__((target("avx2"))) void Avx2UnpackScore(
    const uint8_t* src, uint32_t n, int b, int32_t base,
    const int32_t* doclens, float w, float c0, float c1, float* out) {
  const uint32_t hoff = (4u * static_cast<uint32_t>(b)) >> 3;

  alignas(32) int8_t shuf_b[32];
  alignas(32) int8_t spill_b[32];
  alignas(32) int32_t rsh[8];
  alignas(32) int32_t lsh[8];
  bool any_spill = false;
  for (int l = 0; l < 8; ++l) {
    const uint32_t bit = static_cast<uint32_t>(l) * static_cast<uint32_t>(b);
    const uint32_t off = l < 4 ? (bit >> 3) : (bit >> 3) - hoff;
    for (int k = 0; k < 4; ++k) {
      shuf_b[4 * l + k] = static_cast<int8_t>(off + static_cast<uint32_t>(k));
    }
    rsh[l] = static_cast<int32_t>(bit & 7u);
    lsh[l] = 32 - rsh[l];  // >= 32 shifts whole lanes to zero (vpsllvd)
    const bool spill = rsh[l] + b > 32;
    any_spill |= spill;
    spill_b[4 * l + 0] = spill ? static_cast<int8_t>(off + 4) : -128;
    spill_b[4 * l + 1] = -128;
    spill_b[4 * l + 2] = -128;
    spill_b[4 * l + 3] = -128;
  }

  const __m256i vshuf =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(shuf_b));
  const __m256i vspill =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(spill_b));
  const __m256i vrsh = _mm256_load_si256(reinterpret_cast<const __m256i*>(rsh));
  const __m256i vlsh = _mm256_load_si256(reinterpret_cast<const __m256i*>(lsh));
  const __m256i vmask = _mm256_set1_epi32(
      static_cast<int32_t>((1u << static_cast<uint32_t>(b)) - 1u));
  const __m256i vbase = _mm256_set1_epi32(base);
  const __m256 vw = _mm256_set1_ps(w);
  const __m256 vc0 = _mm256_set1_ps(c0);
  const __m256 vc1 = _mm256_set1_ps(c1);

  // Same over-read guard as the LOOP1 kernels: a group's second 16-byte
  // load starts at byte g*b + hoff; bound it to the window payload plus
  // the block's trailing slack.
  const uint32_t readable =
      (n * static_cast<uint32_t>(b) + 7u) / 8u +
      compress::internal::kBlockPadBytes;
  uint32_t groups = n / 8u;
  const uint32_t fit =
      readable >= hoff + 16u
          ? (readable - hoff - 16u) / static_cast<uint32_t>(b) + 1u
          : 0u;
  if (groups > fit) groups = fit;

  uint32_t i = 0;
  for (uint32_t g = 0; g < groups; ++g, i += 8) {
    const uint8_t* p = src + static_cast<size_t>(g) * static_cast<size_t>(b);
    const __m256i v =
        _mm256_set_m128i(FusedLoadU128(p + hoff), FusedLoadU128(p));
    __m256i codes = _mm256_srlv_epi32(_mm256_shuffle_epi8(v, vshuf), vrsh);
    if (any_spill) {
      codes = _mm256_or_si256(
          codes, _mm256_sllv_epi32(_mm256_shuffle_epi8(v, vspill), vlsh));
    }
    const __m256i tf =
        _mm256_add_epi32(_mm256_and_si256(codes, vmask), vbase);
    const __m256 tff = _mm256_cvtepi32_ps(tf);
    const __m256 dlf = _mm256_cvtepi32_ps(_mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(doclens + i)));
    const __m256 num = _mm256_mul_ps(vw, tff);
    const __m256 den =
        _mm256_add_ps(_mm256_add_ps(tff, vc0), _mm256_mul_ps(vc1, dlf));
    _mm256_storeu_ps(out + i, _mm256_div_ps(num, den));
  }

  // Scalar tail, resuming at the (byte-aligned) next group boundary.
  if (i < n) {
    int32_t tmp[kEntryPointStride];
    GetUnpackAdd(b)(src + static_cast<size_t>(i / 8u) * static_cast<size_t>(b),
                    n - i, base, tmp);
    for (uint32_t j = 0; j < n - i; ++j) {
      out[i + j] = ScoreOne(static_cast<float>(tmp[j]),
                            static_cast<float>(doclens[i + j]), w, c0, c1);
    }
  }
}

// 8-lane hardware gather: the doclen feed's indices are valid docids, so
// full 8-groups gather unmasked; the tail stays scalar (a masked gather
// of garbage lanes could fault — the decoded window buffer holds exactly
// win_len values).
__attribute__((target("avx2"))) void Avx2GatherI32(const int32_t* base,
                                                   const int32_t* idx,
                                                   uint32_t n, int32_t* out) {
  uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i ix =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_i32gather_epi32(base, ix, 4));
  }
  for (; i < n; ++i) out[i] = base[idx[i]];
}

#endif  // X100IR_FUSED_AVX2

}  // namespace

void GatherI32(const int32_t* base, const int32_t* idx, uint32_t n,
               int32_t* out) {
#if defined(X100IR_FUSED_AVX2)
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    Avx2GatherI32(base, idx, n, out);
    return;
  }
#endif
  for (uint32_t i = 0; i < n; ++i) out[i] = base[idx[i]];
}

bool FusedScoreTfWindow(const WindowView& view, const int32_t* doclens,
                        float w, float c0, float c1, float* out) {
  if (view.payload == nullptr || view.len == 0 ||
      view.len > kEntryPointStride) {
    return false;
  }
  const uint32_t n = view.len;

  if (view.dense) {
    // Raw int32 payload; no exceptions by construction.
    for (uint32_t i = 0; i < n; ++i) {
      int32_t tf;
      std::memcpy(&tf, view.payload + 4ull * i, 4);
      out[i] = ScoreOne(static_cast<float>(tf),
                        static_cast<float>(doclens[i]), w, c0, c1);
    }
    return true;
  }
  if (view.bit_width == 0) {
    // Constant run: every codeword is 0, value == base everywhere.
    const float tff = static_cast<float>(view.base);
    for (uint32_t i = 0; i < n; ++i) {
      out[i] = ScoreOne(tff, static_cast<float>(doclens[i]), w, c0, c1);
    }
    PatchScores(view, doclens, w, c0, c1, out);
    return true;
  }

#if defined(X100IR_FUSED_AVX2)
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    Avx2UnpackScore(view.payload, n, view.bit_width, view.base, doclens, w,
                    c0, c1, out);
    PatchScores(view, doclens, w, c0, c1, out);
    return true;
  }
#endif

  // No AVX2 (or SIMD disabled): unpack into a stack window, score in place.
  int32_t tmp[kEntryPointStride];
  GetUnpackAdd(view.bit_width)(view.payload, n, view.base, tmp);
  for (uint32_t i = 0; i < n; ++i) {
    out[i] = ScoreOne(static_cast<float>(tmp[i]),
                      static_cast<float>(doclens[i]), w, c0, c1);
  }
  PatchScores(view, doclens, w, c0, c1, out);
  return true;
}

}  // namespace x100ir::ir
