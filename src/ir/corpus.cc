// Corpus generator. Sampling is deliberately boring and fully deterministic:
// Zipf via binary search on a precomputed CDF, log-normal via Box-Muller on
// Rng draws, per-document tf counting via sort (no unordered containers —
// their iteration order is implementation-defined and would leak into the
// generated stream).
#include "ir/corpus.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/rng.h"
#include "common/string_util.h"

namespace x100ir::ir {
namespace {

// Bump when the generated stream changes shape: the fingerprint guards
// on-disk index reuse, so a generator change must invalidate old files.
constexpr uint64_t kGeneratorVersion = 1;

// Zipf over term ids 0..vocab-1 (id = rank - 1, so id 0 is the most
// frequent term): P(id) ∝ 1 / (id + 1)^s. CDF + binary search keeps a draw
// O(log vocab) and platform-stable.
class ZipfSampler {
 public:
  ZipfSampler(uint32_t vocab, double s) : cdf_(vocab) {
    double total = 0.0;
    for (uint32_t i = 0; i < vocab; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  uint32_t Draw(Rng* rng) const {
    const double u = rng->NextDouble();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? static_cast<uint32_t>(cdf_.size() - 1)
                            : static_cast<uint32_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

// Standard normal via Box-Muller. u1 is shifted off zero so log(u1) is
// finite for every Rng draw.
double NextNormal(Rng* rng) {
  const double u1 =
      (static_cast<double>(rng->Next() >> 11) + 0.5) / 9007199254740992.0;
  const double u2 = rng->NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

// Samples `k` distinct uint32s from [lo, hi) by rejection (k << hi - lo at
// every call site), returned sorted.
std::vector<uint32_t> SampleDistinct(Rng* rng, uint32_t lo, uint32_t hi,
                                     uint32_t k) {
  std::vector<uint32_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const uint32_t v = lo + static_cast<uint32_t>(rng->NextBounded(hi - lo));
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t FnvMix(uint64_t h, uint64_t v) {
  h ^= v;
  return h * 0x100000001B3ull;
}

uint64_t FnvMixDouble(uint64_t h, double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d), "double must be 64-bit");
  std::memcpy(&bits, &d, sizeof(bits));
  return FnvMix(h, bits);
}

}  // namespace

Status Corpus::Finalize() {
  const uint32_t n = num_docs();
  doc_lens_.assign(n, 0);
  num_postings_ = 0;
  uint64_t total_len = 0;
  for (uint32_t d = 0; d < n; ++d) {
    int64_t len = 0;
    for (const DocTerm& p : docs_[d]) len += p.tf;
    doc_lens_[d] = static_cast<int32_t>(len);
    total_len += static_cast<uint64_t>(len);
    num_postings_ += docs_[d].size();
  }
  avg_doc_len_ = n == 0 ? 0.0
                        : static_cast<double>(total_len) /
                              static_cast<double>(n);
  return OkStatus();
}

Status Corpus::Generate(const CorpusOptions& opts, Corpus* out) {
  if (out == nullptr) return InvalidArgument("null corpus output");
  if (opts.num_docs == 0 || opts.vocab_size == 0) {
    return InvalidArgument("corpus needs docs and a vocabulary");
  }
  if (opts.zipf_s <= 0.0) return InvalidArgument("zipf_s must be positive");
  if (opts.topical_mass < 0.0 || opts.topical_mass > 1.0) {
    return InvalidArgument("topical_mass must be in [0, 1]");
  }
  if (opts.num_topics > 0) {
    if (opts.topic_rank_min >= opts.topic_rank_max ||
        opts.topic_rank_max > opts.vocab_size) {
      return InvalidArgument("topic rank band outside the vocabulary");
    }
    if (opts.terms_per_topic == 0 ||
        opts.terms_per_topic > opts.topic_rank_max - opts.topic_rank_min) {
      return InvalidArgument("terms_per_topic exceeds the topic rank band");
    }
    const uint64_t planted = static_cast<uint64_t>(opts.num_topics) *
                             opts.relevant_docs_per_topic;
    if (planted > opts.num_docs) {
      return InvalidArgument(
          StrFormat("cannot plant %llu relevant docs in %u documents",
                    static_cast<unsigned long long>(planted), opts.num_docs));
    }
  }

  *out = Corpus();
  out->options_ = opts;
  Rng rng(opts.seed);
  const ZipfSampler zipf(opts.vocab_size, opts.zipf_s);

  // Topics: term sets from the mid-rank band, then disjoint relevant-doc
  // sets (a document argues for at most one topic, which keeps qrels
  // unambiguous).
  out->topic_terms_.resize(opts.num_topics);
  out->relevant_docs_.resize(opts.num_topics);
  std::vector<int32_t> doc_topic(opts.num_docs, -1);
  for (uint32_t t = 0; t < opts.num_topics; ++t) {
    out->topic_terms_[t] = SampleDistinct(&rng, opts.topic_rank_min,
                                          opts.topic_rank_max,
                                          opts.terms_per_topic);
    auto& rel = out->relevant_docs_[t];
    rel.reserve(opts.relevant_docs_per_topic);
    while (rel.size() < opts.relevant_docs_per_topic) {
      const uint32_t d =
          static_cast<uint32_t>(rng.NextBounded(opts.num_docs));
      if (doc_topic[d] < 0) {
        doc_topic[d] = static_cast<int32_t>(t);
        rel.push_back(static_cast<int32_t>(d));
      }
    }
    std::sort(rel.begin(), rel.end());
  }

  // Documents: length from the log-normal, then `len` term draws — from the
  // owning topic's term set with probability topical_mass for planted docs,
  // from the global Zipf otherwise. tf counting via sort+run-length.
  out->docs_.resize(opts.num_docs);
  std::vector<uint32_t> draws;
  for (uint32_t d = 0; d < opts.num_docs; ++d) {
    const double raw =
        std::exp(opts.doclen_mu + opts.doclen_sigma * NextNormal(&rng));
    const uint32_t len = std::max<uint32_t>(
        1, static_cast<uint32_t>(std::lround(raw)));
    draws.clear();
    draws.reserve(len);
    const int32_t topic = doc_topic[d];
    for (uint32_t i = 0; i < len; ++i) {
      if (topic >= 0 && rng.NextBernoulli(opts.topical_mass)) {
        const auto& terms = out->topic_terms_[static_cast<uint32_t>(topic)];
        draws.push_back(terms[rng.NextBounded(terms.size())]);
      } else {
        draws.push_back(zipf.Draw(&rng));
      }
    }
    std::sort(draws.begin(), draws.end());
    auto& doc = out->docs_[d];
    for (size_t i = 0; i < draws.size();) {
      size_t j = i;
      while (j < draws.size() && draws[j] == draws[i]) ++j;
      doc.push_back({draws[i], static_cast<int32_t>(j - i)});
      i = j;
    }
  }
  return out->Finalize();
}

Status Corpus::FromDocuments(const std::vector<std::vector<uint32_t>>& docs,
                             uint32_t vocab_size, Corpus* out) {
  if (out == nullptr) return InvalidArgument("null corpus output");
  if (docs.empty() || vocab_size == 0) {
    return InvalidArgument("hand-built corpus needs docs and a vocabulary");
  }
  *out = Corpus();
  out->hand_built_ = true;
  out->options_ = CorpusOptions{};
  out->options_.num_docs = static_cast<uint32_t>(docs.size());
  out->options_.vocab_size = vocab_size;
  out->options_.num_topics = 0;
  out->docs_.resize(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    if (docs[d].empty()) {
      return InvalidArgument(StrFormat("document %zu is empty", d));
    }
    std::vector<uint32_t> sorted = docs[d];
    for (uint32_t term : sorted) {
      if (term >= vocab_size) {
        return InvalidArgument(
            StrFormat("term %u outside vocabulary of %u", term, vocab_size));
      }
    }
    std::sort(sorted.begin(), sorted.end());
    auto& doc = out->docs_[d];
    for (size_t i = 0; i < sorted.size();) {
      size_t j = i;
      while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
      doc.push_back({sorted[i], static_cast<int32_t>(j - i)});
      i = j;
    }
  }
  return out->Finalize();
}

Status Corpus::FromDocTerms(std::vector<std::vector<DocTerm>> docs,
                            uint32_t vocab_size, Corpus* out) {
  if (out == nullptr) return InvalidArgument("null corpus output");
  if (docs.empty() || vocab_size == 0) {
    return InvalidArgument("hand-built corpus needs docs and a vocabulary");
  }
  for (size_t d = 0; d < docs.size(); ++d) {
    if (docs[d].empty()) {
      return InvalidArgument(StrFormat("document %zu is empty", d));
    }
    uint32_t prev = 0;
    bool first = true;
    for (const DocTerm& p : docs[d]) {
      if (p.term >= vocab_size) {
        return InvalidArgument(StrFormat("term %u outside vocabulary of %u",
                                         p.term, vocab_size));
      }
      if (p.tf <= 0 || (!first && p.term <= prev)) {
        return InvalidArgument(
            StrFormat("document %zu is not normalized", d));
      }
      prev = p.term;
      first = false;
    }
  }
  *out = Corpus();
  out->hand_built_ = true;
  out->options_ = CorpusOptions{};
  out->options_.num_docs = static_cast<uint32_t>(docs.size());
  out->options_.vocab_size = vocab_size;
  out->options_.num_topics = 0;
  out->docs_ = std::move(docs);
  return out->Finalize();
}

uint64_t Corpus::Fingerprint() const {
  uint64_t h = 0xCBF29CE484222325ull;
  h = FnvMix(h, kGeneratorVersion);
  h = FnvMix(h, hand_built_ ? 1 : 0);
  // Content hash over the full term stream, not just the options: it
  // distinguishes hand-built corpora the options can't, and it catches
  // generator drift (libm last-ulp differences between platforms can shift
  // a Zipf/Box-Muller draw), so stale on-disk columns can never
  // fingerprint-match a subtly different corpus. One linear pass, ~ms at
  // bench scale — noise next to generation itself.
  h = FnvMix(h, num_postings_);
  for (const auto& doc : docs_) {
    h = FnvMix(h, doc.size());
    for (const DocTerm& p : doc) {
      h = FnvMix(h, (static_cast<uint64_t>(p.term) << 32) |
                        static_cast<uint32_t>(p.tf));
    }
  }
  h = FnvMix(h, options_.num_docs);
  h = FnvMix(h, options_.vocab_size);
  h = FnvMixDouble(h, options_.zipf_s);
  h = FnvMixDouble(h, options_.doclen_mu);
  h = FnvMixDouble(h, options_.doclen_sigma);
  h = FnvMix(h, options_.num_topics);
  h = FnvMix(h, options_.terms_per_topic);
  h = FnvMix(h, options_.relevant_docs_per_topic);
  h = FnvMixDouble(h, options_.topical_mass);
  h = FnvMix(h, options_.topic_rank_min);
  h = FnvMix(h, options_.topic_rank_max);
  h = FnvMix(h, options_.seed);
  return h;
}

}  // namespace x100ir::ir
