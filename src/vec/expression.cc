// Expression compiler: resolves an Expr tree against a Schema into a DAG of
// compiled nodes, each of which makes exactly one primitive call per batch.
// Structurally identical subtrees are interned into one node (CSE, keyed on
// op + resolved column indices + literal bits); an eval epoch caches a
// shared node's output so it runs once per batch regardless of fan-out.
#include "vec/expression.h"

#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "vec/primitives.h"

namespace x100ir::vec {
namespace internal {

class Node {
 public:
  virtual ~Node() = default;

  // Evaluates this node's subtree over the batch's active rows, at most
  // once per epoch (parents sharing this node get the cached vector).
  // Cannot fail: all checks happen at compile time.
  const Vector* Eval(const Batch& batch, uint64_t epoch) {
    if (epoch_ != epoch) {
      cached_ = EvalImpl(batch, epoch);
      epoch_ = epoch;
    }
    return cached_;
  }

 protected:
  virtual const Vector* EvalImpl(const Batch& batch, uint64_t epoch) = 0;

 private:
  uint64_t epoch_ = 0;
  const Vector* cached_ = nullptr;
};

namespace {

using NodePtr = std::unique_ptr<Node>;

// Everything CompileOperand threads through the recursion: the node pool
// (ownership), the CSE memo (structural key -> interned node), and the
// primitive-call counter the instrumented nodes bump at run time.
struct CompileCtx {
  const Schema& schema;
  uint32_t max_n;
  std::vector<NodePtr>* pool;
  std::unordered_map<std::string, Node*>* memo;
  uint64_t* calls;
};

// Structural keys. Literal f32s are keyed on their bit pattern so -0.0f /
// 0.0f (different semantics under division) never unify.
std::string KeyI32(int32_t v) { return "i" + std::to_string(v); }
std::string KeyF32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return "f" + std::to_string(bits);
}

template <typename MakeFn>
Node* Intern(CompileCtx& ctx, const std::string& key, MakeFn make) {
  auto it = ctx.memo->find(key);
  if (it != ctx.memo->end()) return it->second;
  ctx.pool->push_back(make());
  Node* node = ctx.pool->back().get();
  ctx.memo->emplace(key, node);
  return node;
}

// Bare column reference: zero-copy passthrough of the batch column.
class ColumnNode : public Node {
 public:
  explicit ColumnNode(uint32_t idx) : idx_(idx) {}

 protected:
  const Vector* EvalImpl(const Batch& batch, uint64_t) override {
    return batch.columns[idx_];
  }

 private:
  uint32_t idx_;
};

// Literal materialized as a broadcast vector. Only reached when a literal
// is not foldable into a *_val primitive shape (e.g. the whole expression
// is one constant); Call compilation folds literal operands instead.
template <typename T>
class ConstNode : public Node {
 public:
  ConstNode(TypeId type, T value, uint32_t max_n) : out_(type, max_n) {
    T* dst = out_.Data<T>();
    for (uint32_t i = 0; i < max_n; ++i) dst[i] = value;
  }

 protected:
  const Vector* EvalImpl(const Batch&, uint64_t) override { return &out_; }

 private:
  Vector out_;
};

template <typename Op, typename TRes, typename T>
class ColColNode : public Node {
 public:
  ColColNode(TypeId out_type, Node* a, Node* b, uint32_t max_n,
             uint64_t* calls)
      : a_(a), b_(b), out_(out_type, max_n), calls_(calls) {}

 protected:
  const Vector* EvalImpl(const Batch& batch, uint64_t epoch) override {
    const Vector* va = a_->Eval(batch, epoch);
    const Vector* vb = b_->Eval(batch, epoch);
    ++*calls_;
    MapColCol<Op, TRes, T, T>(batch.count, batch.sel, batch.sel_count,
                              out_.Data<TRes>(), va->Data<T>(), vb->Data<T>());
    return &out_;
  }

 private:
  Node* a_;
  Node* b_;
  Vector out_;
  uint64_t* calls_;
};

template <typename Op, typename TRes, typename T>
class ColValNode : public Node {
 public:
  ColValNode(TypeId out_type, Node* a, T val, uint32_t max_n, uint64_t* calls)
      : a_(a), val_(val), out_(out_type, max_n), calls_(calls) {}

 protected:
  const Vector* EvalImpl(const Batch& batch, uint64_t epoch) override {
    const Vector* va = a_->Eval(batch, epoch);
    ++*calls_;
    MapColVal<Op, TRes, T, T>(batch.count, batch.sel, batch.sel_count,
                              out_.Data<TRes>(), va->Data<T>(), val_);
    return &out_;
  }

 private:
  Node* a_;
  T val_;
  Vector out_;
  uint64_t* calls_;
};

template <typename Op, typename TRes, typename T>
class ValColNode : public Node {
 public:
  ValColNode(TypeId out_type, T val, Node* b, uint32_t max_n, uint64_t* calls)
      : b_(b), val_(val), out_(out_type, max_n), calls_(calls) {}

 protected:
  const Vector* EvalImpl(const Batch& batch, uint64_t epoch) override {
    const Vector* vb = b_->Eval(batch, epoch);
    ++*calls_;
    MapValCol<Op, TRes, T, T>(batch.count, batch.sel, batch.sel_count,
                              out_.Data<TRes>(), val_, vb->Data<T>());
    return &out_;
  }

 private:
  Node* b_;
  T val_;
  Vector out_;
  uint64_t* calls_;
};

class CastF32Node : public Node {
 public:
  CastF32Node(Node* a, uint32_t max_n, uint64_t* calls)
      : a_(a), out_(TypeId::kF32, max_n), calls_(calls) {}

 protected:
  const Vector* EvalImpl(const Batch& batch, uint64_t epoch) override {
    const Vector* va = a_->Eval(batch, epoch);
    ++*calls_;
    MapCol<CastF32Op, float, int32_t>(batch.count, batch.sel, batch.sel_count,
                                      out_.Data<float>(), va->Data<int32_t>());
    return &out_;
  }

 private:
  Node* a_;
  Vector out_;
  uint64_t* calls_;
};

// A compiled operand: either an interned node or a still-scalar literal.
// `key` is the structural identity used for CSE (folded literals carry
// their value key so e.g. add(1, 2) and literal 3 unify).
struct Operand {
  Node* node = nullptr;  // null for literals; owned by the pool
  std::string key;
  TypeId type = TypeId::kI32;
  bool is_const = false;
  int32_t i32 = 0;
  float f32 = 0.0f;
};

enum class OpKind : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLt,
  kGt,
  kLe,
  kGe,
  kEq,
  kNe,
  kCastF32,
  kUnknown,
};

OpKind LookupOp(const std::string& name) {
  if (name == "add") return OpKind::kAdd;
  if (name == "sub") return OpKind::kSub;
  if (name == "mul") return OpKind::kMul;
  if (name == "div") return OpKind::kDiv;
  if (name == "lt") return OpKind::kLt;
  if (name == "gt") return OpKind::kGt;
  if (name == "le") return OpKind::kLe;
  if (name == "ge") return OpKind::kGe;
  if (name == "eq") return OpKind::kEq;
  if (name == "ne") return OpKind::kNe;
  if (name == "cast_f32") return OpKind::kCastF32;
  return OpKind::kUnknown;
}

bool IsComparison(OpKind op) {
  return op == OpKind::kLt || op == OpKind::kGt || op == OpKind::kLe ||
         op == OpKind::kGe || op == OpKind::kEq || op == OpKind::kNe;
}

template <typename T>
T ScalarOf(const Operand& o) {
  return o.type == TypeId::kI32 ? static_cast<T>(o.i32)
                                : static_cast<T>(o.f32);
}

// Builds (or reuses, via the memo) the binary node for one (Op, value type)
// pair, folding literal operands into *_val shapes. TRes differs from T
// only for comparisons.
template <typename Op, typename T, typename TRes>
Operand MakeBinary(CompileCtx& ctx, const char* op_name, TypeId out_type,
                   Operand a, Operand b) {
  Operand r;
  r.type = out_type;
  if (a.is_const && b.is_const) {
    // Fold to a literal; the parent call (or Compile's root handling)
    // decides whether it ever needs materializing.
    const TRes v = static_cast<TRes>(Op::Apply(ScalarOf<T>(a), ScalarOf<T>(b)));
    r.is_const = true;
    if (out_type == TypeId::kI32) {
      r.i32 = static_cast<int32_t>(v);
      r.key = KeyI32(r.i32);
    } else {
      r.f32 = static_cast<float>(v);
      r.key = KeyF32(r.f32);
    }
    return r;
  }
  r.key = std::string(op_name) + "(" + a.key + "," + b.key + ")";
  const uint32_t max_n = ctx.max_n;
  uint64_t* calls = ctx.calls;
  if (b.is_const) {
    const T val = ScalarOf<T>(b);
    r.node = Intern(ctx, r.key, [&] {
      return std::make_unique<ColValNode<Op, TRes, T>>(out_type, a.node, val,
                                                       max_n, calls);
    });
  } else if (a.is_const) {
    const T val = ScalarOf<T>(a);
    r.node = Intern(ctx, r.key, [&] {
      return std::make_unique<ValColNode<Op, TRes, T>>(out_type, val, b.node,
                                                       max_n, calls);
    });
  } else {
    r.node = Intern(ctx, r.key, [&] {
      return std::make_unique<ColColNode<Op, TRes, T>>(out_type, a.node,
                                                       b.node, max_n, calls);
    });
  }
  return r;
}

// Dispatches (op kind, operand type) to the right MakeBinary instantiation.
template <typename T>
Operand MakeBinaryForOp(CompileCtx& ctx, OpKind op, Operand a, Operand b) {
  switch (op) {
    case OpKind::kAdd:
      return MakeBinary<AddOp, T, T>(ctx, "add", a.type, std::move(a),
                                     std::move(b));
    case OpKind::kSub:
      return MakeBinary<SubOp, T, T>(ctx, "sub", a.type, std::move(a),
                                     std::move(b));
    case OpKind::kMul:
      return MakeBinary<MulOp, T, T>(ctx, "mul", a.type, std::move(a),
                                     std::move(b));
    case OpKind::kDiv:
      return MakeBinary<DivOp, T, T>(ctx, "div", a.type, std::move(a),
                                     std::move(b));
    case OpKind::kLt:
      return MakeBinary<LtCmp, T, int32_t>(ctx, "lt", TypeId::kI32,
                                           std::move(a), std::move(b));
    case OpKind::kGt:
      return MakeBinary<GtCmp, T, int32_t>(ctx, "gt", TypeId::kI32,
                                           std::move(a), std::move(b));
    case OpKind::kLe:
      return MakeBinary<LeCmp, T, int32_t>(ctx, "le", TypeId::kI32,
                                           std::move(a), std::move(b));
    case OpKind::kGe:
      return MakeBinary<GeCmp, T, int32_t>(ctx, "ge", TypeId::kI32,
                                           std::move(a), std::move(b));
    case OpKind::kEq:
      return MakeBinary<EqCmp, T, int32_t>(ctx, "eq", TypeId::kI32,
                                           std::move(a), std::move(b));
    case OpKind::kNe:
      return MakeBinary<NeCmp, T, int32_t>(ctx, "ne", TypeId::kI32,
                                           std::move(a), std::move(b));
    default:
      return Operand{};  // unreachable; callers validate op first
  }
}

Status CompileOperand(const ExprPtr& expr, CompileCtx& ctx, Operand* out);

Status CompileCall(const Expr& call, CompileCtx& ctx, Operand* out) {
  const OpKind op = LookupOp(call.name());
  if (op == OpKind::kUnknown) {
    return InvalidArgument("unknown primitive op: " + call.name());
  }

  if (op == OpKind::kCastF32) {
    if (call.args().size() != 1) {
      return InvalidArgument("cast_f32 takes exactly one argument");
    }
    Operand a;
    X100IR_RETURN_IF_ERROR(CompileOperand(call.args()[0], ctx, &a));
    if (a.type == TypeId::kF32) {
      *out = std::move(a);  // already f32: no-op
      return OkStatus();
    }
    out->type = TypeId::kF32;
    if (a.is_const) {
      out->is_const = true;
      out->f32 = static_cast<float>(a.i32);
      out->key = KeyF32(out->f32);
      return OkStatus();
    }
    out->key = "cast_f32(" + a.key + ")";
    Node* child = a.node;
    out->node = Intern(ctx, out->key, [&] {
      return std::make_unique<CastF32Node>(child, ctx.max_n, ctx.calls);
    });
    return OkStatus();
  }

  if (call.args().size() != 2) {
    return InvalidArgument("op " + call.name() +
                           " takes exactly two arguments");
  }
  Operand a, b;
  X100IR_RETURN_IF_ERROR(CompileOperand(call.args()[0], ctx, &a));
  X100IR_RETURN_IF_ERROR(CompileOperand(call.args()[1], ctx, &b));
  if (a.type != b.type) {
    return InvalidArgument(
        StrFormat("type mismatch in %s: %s vs %s (use cast_f32)",
                  call.name().c_str(), TypeName(a.type), TypeName(b.type)));
  }
  // i32 division UB is caught where it is decidable: a zero literal
  // divisor would trap in the constant fold (and in every batch at run
  // time), and INT32_MIN / -1 overflows in the fold. f32 division is
  // well-defined (inf/nan).
  if (op == OpKind::kDiv && a.type == TypeId::kI32 && b.is_const) {
    if (b.i32 == 0) {
      return InvalidArgument("division by zero literal");
    }
    if (b.i32 == -1 && a.is_const && a.i32 == INT32_MIN) {
      return InvalidArgument("INT32_MIN / -1 overflows");
    }
  }
  *out = a.type == TypeId::kI32
             ? MakeBinaryForOp<int32_t>(ctx, op, std::move(a), std::move(b))
             : MakeBinaryForOp<float>(ctx, op, std::move(a), std::move(b));
  return OkStatus();
}

Status CompileOperand(const ExprPtr& expr, CompileCtx& ctx, Operand* out) {
  if (expr == nullptr) return InvalidArgument("null expression");
  switch (expr->kind()) {
    case Expr::Kind::kConstI32:
      out->is_const = true;
      out->type = TypeId::kI32;
      out->i32 = expr->i32();
      out->key = KeyI32(out->i32);
      return OkStatus();
    case Expr::Kind::kConstF32:
      out->is_const = true;
      out->type = TypeId::kF32;
      out->f32 = expr->f32();
      out->key = KeyF32(out->f32);
      return OkStatus();
    case Expr::Kind::kCol: {
      const int idx = ctx.schema.IndexOf(expr->name());
      if (idx < 0) {
        return InvalidArgument("unknown column: " + expr->name());
      }
      out->type = ctx.schema.type(static_cast<uint32_t>(idx));
      out->key = "c" + std::to_string(idx);
      out->node = Intern(ctx, out->key, [&] {
        return std::make_unique<ColumnNode>(static_cast<uint32_t>(idx));
      });
      return OkStatus();
    }
    case Expr::Kind::kCall:
      return CompileCall(*expr, ctx, out);
  }
  return Internal("unreachable expression kind");
}

// cmp(col, literal) detection for the direct-select fast path.
template <typename Cmp, typename T>
std::function<uint32_t(const Batch&, sel_t*)> MakeDirectSelect(uint32_t idx,
                                                               T val) {
  return [idx, val](const Batch& batch, sel_t* out_sel) {
    return SelectColVal<Cmp, T>(batch.count, batch.sel, batch.sel_count,
                                out_sel, batch.columns[idx]->Data<T>(), val);
  };
}

template <typename T>
std::function<uint32_t(const Batch&, sel_t*)> DirectSelectForOp(OpKind op,
                                                                uint32_t idx,
                                                                T val) {
  switch (op) {
    case OpKind::kLt:
      return MakeDirectSelect<LtCmp, T>(idx, val);
    case OpKind::kGt:
      return MakeDirectSelect<GtCmp, T>(idx, val);
    case OpKind::kLe:
      return MakeDirectSelect<LeCmp, T>(idx, val);
    case OpKind::kGe:
      return MakeDirectSelect<GeCmp, T>(idx, val);
    case OpKind::kEq:
      return MakeDirectSelect<EqCmp, T>(idx, val);
    case OpKind::kNe:
      return MakeDirectSelect<NeCmp, T>(idx, val);
    default:
      return nullptr;
  }
}

std::function<uint32_t(const Batch&, sel_t*)> TryDirectSelect(
    const ExprPtr& expr, const Schema& schema) {
  if (expr->kind() != Expr::Kind::kCall || expr->args().size() != 2) {
    return nullptr;
  }
  const OpKind op = LookupOp(expr->name());
  if (!IsComparison(op)) return nullptr;
  const ExprPtr& lhs = expr->args()[0];
  const ExprPtr& rhs = expr->args()[1];
  if (lhs->kind() != Expr::Kind::kCol) return nullptr;
  const int idx = schema.IndexOf(lhs->name());
  if (idx < 0) return nullptr;
  const TypeId col_type = schema.type(static_cast<uint32_t>(idx));
  if (rhs->kind() == Expr::Kind::kConstI32 && col_type == TypeId::kI32) {
    return DirectSelectForOp<int32_t>(op, static_cast<uint32_t>(idx),
                                      rhs->i32());
  }
  if (rhs->kind() == Expr::Kind::kConstF32 && col_type == TypeId::kF32) {
    return DirectSelectForOp<float>(op, static_cast<uint32_t>(idx),
                                    rhs->f32());
  }
  return nullptr;
}

}  // namespace
}  // namespace internal

CompiledExpr::~CompiledExpr() = default;

StatusOr<std::unique_ptr<CompiledExpr>> CompiledExpr::Compile(
    const ExprPtr& expr, const Schema& schema, uint32_t max_vector_size) {
  if (max_vector_size == 0) {
    return Status(InvalidArgument("max_vector_size must be positive"));
  }
  std::unique_ptr<CompiledExpr> compiled(new CompiledExpr());
  std::unordered_map<std::string, internal::Node*> memo;
  internal::CompileCtx ctx{schema, max_vector_size, &compiled->nodes_, &memo,
                           &compiled->primitive_calls_};
  internal::Operand root;
  Status s = internal::CompileOperand(expr, ctx, &root);
  if (!s.ok()) return s;

  compiled->out_type_ = root.type;
  compiled->max_vector_size_ = max_vector_size;
  if (root.is_const) {
    // Whole expression folded to a literal: materialize once.
    if (root.type == TypeId::kI32) {
      compiled->nodes_.push_back(
          std::make_unique<internal::ConstNode<int32_t>>(
              TypeId::kI32, root.i32, max_vector_size));
    } else {
      compiled->nodes_.push_back(std::make_unique<internal::ConstNode<float>>(
          TypeId::kF32, root.f32, max_vector_size));
    }
    compiled->root_ = compiled->nodes_.back().get();
  } else {
    compiled->root_ = root.node;
  }
  compiled->direct_select_ = internal::TryDirectSelect(expr, schema);
  return compiled;
}

Status CompiledExpr::Eval(const Batch& batch, const Vector** out) {
  if (out == nullptr) return InvalidArgument("null output");
  if (batch.count > max_vector_size_) {
    return InvalidArgument("batch larger than compiled vector size");
  }
  *out = root_->Eval(batch, ++epoch_);
  return OkStatus();
}

Status CompiledExpr::EvalSelect(const Batch& batch, sel_t* out_sel,
                                uint32_t* out_count) {
  if (out_sel == nullptr || out_count == nullptr) {
    return InvalidArgument("null output");
  }
  if (batch.count > max_vector_size_) {
    return InvalidArgument("batch larger than compiled vector size");
  }
  if (direct_select_) {
    *out_count = direct_select_(batch, out_sel);
    return OkStatus();
  }
  if (out_type_ != TypeId::kI32) {
    return InvalidArgument("select predicate must evaluate to i32");
  }
  const Vector* flags = root_->Eval(batch, ++epoch_);
  *out_count =
      SelectColVal<NeCmp, int32_t>(batch.count, batch.sel, batch.sel_count,
                                   out_sel, flags->Data<int32_t>(), 0);
  return OkStatus();
}

}  // namespace x100ir::vec
