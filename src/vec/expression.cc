// Expression compiler: resolves an Expr tree against a Schema into compiled
// nodes, each of which makes exactly one primitive call per batch.
#include "vec/expression.h"

#include <memory>
#include <string>
#include <utility>

#include "common/string_util.h"
#include "vec/primitives.h"

namespace x100ir::vec {
namespace internal {

class Node {
 public:
  virtual ~Node() = default;
  // Evaluates this node's subtree over the batch's active rows. Cannot
  // fail: all checks happen at compile time.
  virtual const Vector* Eval(const Batch& batch) = 0;
};

namespace {

using NodePtr = std::unique_ptr<Node>;

// Bare column reference: zero-copy passthrough of the batch column.
class ColumnNode : public Node {
 public:
  explicit ColumnNode(uint32_t idx) : idx_(idx) {}
  const Vector* Eval(const Batch& batch) override {
    return batch.columns[idx_];
  }

 private:
  uint32_t idx_;
};

// Literal materialized as a broadcast vector. Only reached when a literal
// is not foldable into a *_val primitive shape (e.g. the whole expression
// is one constant); Call compilation folds literal operands instead.
template <typename T>
class ConstNode : public Node {
 public:
  ConstNode(TypeId type, T value, uint32_t max_n) : out_(type, max_n) {
    T* dst = out_.Data<T>();
    for (uint32_t i = 0; i < max_n; ++i) dst[i] = value;
  }
  const Vector* Eval(const Batch&) override { return &out_; }

 private:
  Vector out_;
};

template <typename Op, typename TRes, typename T>
class ColColNode : public Node {
 public:
  ColColNode(TypeId out_type, NodePtr a, NodePtr b, uint32_t max_n)
      : a_(std::move(a)), b_(std::move(b)), out_(out_type, max_n) {}
  const Vector* Eval(const Batch& batch) override {
    const Vector* va = a_->Eval(batch);
    const Vector* vb = b_->Eval(batch);
    MapColCol<Op, TRes, T, T>(batch.count, batch.sel, batch.sel_count,
                              out_.Data<TRes>(), va->Data<T>(), vb->Data<T>());
    return &out_;
  }

 private:
  NodePtr a_, b_;
  Vector out_;
};

template <typename Op, typename TRes, typename T>
class ColValNode : public Node {
 public:
  ColValNode(TypeId out_type, NodePtr a, T val, uint32_t max_n)
      : a_(std::move(a)), val_(val), out_(out_type, max_n) {}
  const Vector* Eval(const Batch& batch) override {
    const Vector* va = a_->Eval(batch);
    MapColVal<Op, TRes, T, T>(batch.count, batch.sel, batch.sel_count,
                              out_.Data<TRes>(), va->Data<T>(), val_);
    return &out_;
  }

 private:
  NodePtr a_;
  T val_;
  Vector out_;
};

template <typename Op, typename TRes, typename T>
class ValColNode : public Node {
 public:
  ValColNode(TypeId out_type, T val, NodePtr b, uint32_t max_n)
      : b_(std::move(b)), val_(val), out_(out_type, max_n) {}
  const Vector* Eval(const Batch& batch) override {
    const Vector* vb = b_->Eval(batch);
    MapValCol<Op, TRes, T, T>(batch.count, batch.sel, batch.sel_count,
                              out_.Data<TRes>(), val_, vb->Data<T>());
    return &out_;
  }

 private:
  NodePtr b_;
  T val_;
  Vector out_;
};

class CastF32Node : public Node {
 public:
  CastF32Node(NodePtr a, uint32_t max_n)
      : a_(std::move(a)), out_(TypeId::kF32, max_n) {}
  const Vector* Eval(const Batch& batch) override {
    const Vector* va = a_->Eval(batch);
    MapCol<CastF32Op, float, int32_t>(batch.count, batch.sel, batch.sel_count,
                                      out_.Data<float>(), va->Data<int32_t>());
    return &out_;
  }

 private:
  NodePtr a_;
  Vector out_;
};

// A compiled operand: either a node or a still-scalar literal.
struct Operand {
  NodePtr node;  // null for literals
  TypeId type = TypeId::kI32;
  bool is_const = false;
  int32_t i32 = 0;
  float f32 = 0.0f;
};

enum class OpKind : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLt,
  kGt,
  kLe,
  kGe,
  kEq,
  kNe,
  kCastF32,
  kUnknown,
};

OpKind LookupOp(const std::string& name) {
  if (name == "add") return OpKind::kAdd;
  if (name == "sub") return OpKind::kSub;
  if (name == "mul") return OpKind::kMul;
  if (name == "div") return OpKind::kDiv;
  if (name == "lt") return OpKind::kLt;
  if (name == "gt") return OpKind::kGt;
  if (name == "le") return OpKind::kLe;
  if (name == "ge") return OpKind::kGe;
  if (name == "eq") return OpKind::kEq;
  if (name == "ne") return OpKind::kNe;
  if (name == "cast_f32") return OpKind::kCastF32;
  return OpKind::kUnknown;
}

bool IsComparison(OpKind op) {
  return op == OpKind::kLt || op == OpKind::kGt || op == OpKind::kLe ||
         op == OpKind::kGe || op == OpKind::kEq || op == OpKind::kNe;
}

template <typename T>
T ScalarOf(const Operand& o) {
  return o.type == TypeId::kI32 ? static_cast<T>(o.i32)
                                : static_cast<T>(o.f32);
}

// Builds the binary node for one (Op, value type) pair, folding literal
// operands into *_val shapes. TRes differs from T only for comparisons.
template <typename Op, typename T, typename TRes>
Operand MakeBinary(TypeId out_type, Operand a, Operand b, uint32_t max_n) {
  Operand r;
  r.type = out_type;
  if (a.is_const && b.is_const) {
    // Fold to a literal; the parent call (or Compile's root handling)
    // decides whether it ever needs materializing.
    const TRes v = static_cast<TRes>(Op::Apply(ScalarOf<T>(a), ScalarOf<T>(b)));
    r.is_const = true;
    if (out_type == TypeId::kI32) {
      r.i32 = static_cast<int32_t>(v);
    } else {
      r.f32 = static_cast<float>(v);
    }
    return r;
  }
  if (b.is_const) {
    r.node = std::make_unique<ColValNode<Op, TRes, T>>(
        out_type, std::move(a.node), ScalarOf<T>(b), max_n);
  } else if (a.is_const) {
    r.node = std::make_unique<ValColNode<Op, TRes, T>>(
        out_type, ScalarOf<T>(a), std::move(b.node), max_n);
  } else {
    r.node = std::make_unique<ColColNode<Op, TRes, T>>(
        out_type, std::move(a.node), std::move(b.node), max_n);
  }
  return r;
}

// Dispatches (op kind, operand type) to the right MakeBinary instantiation.
template <typename T>
Operand MakeBinaryForOp(OpKind op, Operand a, Operand b, uint32_t max_n) {
  switch (op) {
    case OpKind::kAdd:
      return MakeBinary<AddOp, T, T>(a.type, std::move(a), std::move(b),
                                     max_n);
    case OpKind::kSub:
      return MakeBinary<SubOp, T, T>(a.type, std::move(a), std::move(b),
                                     max_n);
    case OpKind::kMul:
      return MakeBinary<MulOp, T, T>(a.type, std::move(a), std::move(b),
                                     max_n);
    case OpKind::kDiv:
      return MakeBinary<DivOp, T, T>(a.type, std::move(a), std::move(b),
                                     max_n);
    case OpKind::kLt:
      return MakeBinary<LtCmp, T, int32_t>(TypeId::kI32, std::move(a),
                                           std::move(b), max_n);
    case OpKind::kGt:
      return MakeBinary<GtCmp, T, int32_t>(TypeId::kI32, std::move(a),
                                           std::move(b), max_n);
    case OpKind::kLe:
      return MakeBinary<LeCmp, T, int32_t>(TypeId::kI32, std::move(a),
                                           std::move(b), max_n);
    case OpKind::kGe:
      return MakeBinary<GeCmp, T, int32_t>(TypeId::kI32, std::move(a),
                                           std::move(b), max_n);
    case OpKind::kEq:
      return MakeBinary<EqCmp, T, int32_t>(TypeId::kI32, std::move(a),
                                           std::move(b), max_n);
    case OpKind::kNe:
      return MakeBinary<NeCmp, T, int32_t>(TypeId::kI32, std::move(a),
                                           std::move(b), max_n);
    default:
      return Operand{};  // unreachable; callers validate op first
  }
}

Status CompileOperand(const ExprPtr& expr, const Schema& schema,
                      uint32_t max_n, Operand* out);

Status CompileCall(const Expr& call, const Schema& schema, uint32_t max_n,
                   Operand* out) {
  const OpKind op = LookupOp(call.name());
  if (op == OpKind::kUnknown) {
    return InvalidArgument("unknown primitive op: " + call.name());
  }

  if (op == OpKind::kCastF32) {
    if (call.args().size() != 1) {
      return InvalidArgument("cast_f32 takes exactly one argument");
    }
    Operand a;
    X100IR_RETURN_IF_ERROR(CompileOperand(call.args()[0], schema, max_n, &a));
    if (a.type == TypeId::kF32) {
      *out = std::move(a);  // already f32: no-op
      return OkStatus();
    }
    out->type = TypeId::kF32;
    if (a.is_const) {
      out->is_const = true;
      out->f32 = static_cast<float>(a.i32);
      return OkStatus();
    }
    out->node = std::make_unique<CastF32Node>(std::move(a.node), max_n);
    return OkStatus();
  }

  if (call.args().size() != 2) {
    return InvalidArgument("op " + call.name() +
                           " takes exactly two arguments");
  }
  Operand a, b;
  X100IR_RETURN_IF_ERROR(CompileOperand(call.args()[0], schema, max_n, &a));
  X100IR_RETURN_IF_ERROR(CompileOperand(call.args()[1], schema, max_n, &b));
  if (a.type != b.type) {
    return InvalidArgument(
        StrFormat("type mismatch in %s: %s vs %s (use cast_f32)",
                  call.name().c_str(), TypeName(a.type), TypeName(b.type)));
  }
  // i32 division UB is caught where it is decidable: a zero literal
  // divisor would trap in the constant fold (and in every batch at run
  // time), and INT32_MIN / -1 overflows in the fold. f32 division is
  // well-defined (inf/nan).
  if (op == OpKind::kDiv && a.type == TypeId::kI32 && b.is_const) {
    if (b.i32 == 0) {
      return InvalidArgument("division by zero literal");
    }
    if (b.i32 == -1 && a.is_const && a.i32 == INT32_MIN) {
      return InvalidArgument("INT32_MIN / -1 overflows");
    }
  }
  *out = a.type == TypeId::kI32
             ? MakeBinaryForOp<int32_t>(op, std::move(a), std::move(b), max_n)
             : MakeBinaryForOp<float>(op, std::move(a), std::move(b), max_n);
  return OkStatus();
}

Status CompileOperand(const ExprPtr& expr, const Schema& schema,
                      uint32_t max_n, Operand* out) {
  if (expr == nullptr) return InvalidArgument("null expression");
  switch (expr->kind()) {
    case Expr::Kind::kConstI32:
      out->is_const = true;
      out->type = TypeId::kI32;
      out->i32 = expr->i32();
      return OkStatus();
    case Expr::Kind::kConstF32:
      out->is_const = true;
      out->type = TypeId::kF32;
      out->f32 = expr->f32();
      return OkStatus();
    case Expr::Kind::kCol: {
      const int idx = schema.IndexOf(expr->name());
      if (idx < 0) {
        return InvalidArgument("unknown column: " + expr->name());
      }
      out->type = schema.type(static_cast<uint32_t>(idx));
      out->node = std::make_unique<ColumnNode>(static_cast<uint32_t>(idx));
      return OkStatus();
    }
    case Expr::Kind::kCall:
      return CompileCall(*expr, schema, max_n, out);
  }
  return Internal("unreachable expression kind");
}

// cmp(col, literal) detection for the direct-select fast path.
template <typename Cmp, typename T>
std::function<uint32_t(const Batch&, sel_t*)> MakeDirectSelect(uint32_t idx,
                                                               T val) {
  return [idx, val](const Batch& batch, sel_t* out_sel) {
    return SelectColVal<Cmp, T>(batch.count, batch.sel, batch.sel_count,
                                out_sel, batch.columns[idx]->Data<T>(), val);
  };
}

template <typename T>
std::function<uint32_t(const Batch&, sel_t*)> DirectSelectForOp(OpKind op,
                                                                uint32_t idx,
                                                                T val) {
  switch (op) {
    case OpKind::kLt:
      return MakeDirectSelect<LtCmp, T>(idx, val);
    case OpKind::kGt:
      return MakeDirectSelect<GtCmp, T>(idx, val);
    case OpKind::kLe:
      return MakeDirectSelect<LeCmp, T>(idx, val);
    case OpKind::kGe:
      return MakeDirectSelect<GeCmp, T>(idx, val);
    case OpKind::kEq:
      return MakeDirectSelect<EqCmp, T>(idx, val);
    case OpKind::kNe:
      return MakeDirectSelect<NeCmp, T>(idx, val);
    default:
      return nullptr;
  }
}

std::function<uint32_t(const Batch&, sel_t*)> TryDirectSelect(
    const ExprPtr& expr, const Schema& schema) {
  if (expr->kind() != Expr::Kind::kCall || expr->args().size() != 2) {
    return nullptr;
  }
  const OpKind op = LookupOp(expr->name());
  if (!IsComparison(op)) return nullptr;
  const ExprPtr& lhs = expr->args()[0];
  const ExprPtr& rhs = expr->args()[1];
  if (lhs->kind() != Expr::Kind::kCol) return nullptr;
  const int idx = schema.IndexOf(lhs->name());
  if (idx < 0) return nullptr;
  const TypeId col_type = schema.type(static_cast<uint32_t>(idx));
  if (rhs->kind() == Expr::Kind::kConstI32 && col_type == TypeId::kI32) {
    return DirectSelectForOp<int32_t>(op, static_cast<uint32_t>(idx),
                                      rhs->i32());
  }
  if (rhs->kind() == Expr::Kind::kConstF32 && col_type == TypeId::kF32) {
    return DirectSelectForOp<float>(op, static_cast<uint32_t>(idx),
                                    rhs->f32());
  }
  return nullptr;
}

}  // namespace
}  // namespace internal

CompiledExpr::~CompiledExpr() = default;

StatusOr<std::unique_ptr<CompiledExpr>> CompiledExpr::Compile(
    const ExprPtr& expr, const Schema& schema, uint32_t max_vector_size) {
  if (max_vector_size == 0) {
    return Status(InvalidArgument("max_vector_size must be positive"));
  }
  internal::Operand root;
  Status s = internal::CompileOperand(expr, schema, max_vector_size, &root);
  if (!s.ok()) return s;

  std::unique_ptr<CompiledExpr> compiled(new CompiledExpr());
  compiled->out_type_ = root.type;
  compiled->max_vector_size_ = max_vector_size;
  if (root.is_const) {
    // Whole expression folded to a literal: materialize once.
    if (root.type == TypeId::kI32) {
      compiled->root_ = std::make_unique<internal::ConstNode<int32_t>>(
          TypeId::kI32, root.i32, max_vector_size);
    } else {
      compiled->root_ = std::make_unique<internal::ConstNode<float>>(
          TypeId::kF32, root.f32, max_vector_size);
    }
  } else {
    compiled->root_ = std::move(root.node);
  }
  compiled->direct_select_ = internal::TryDirectSelect(expr, schema);
  return compiled;
}

Status CompiledExpr::Eval(const Batch& batch, const Vector** out) {
  if (out == nullptr) return InvalidArgument("null output");
  if (batch.count > max_vector_size_) {
    return InvalidArgument("batch larger than compiled vector size");
  }
  *out = root_->Eval(batch);
  return OkStatus();
}

Status CompiledExpr::EvalSelect(const Batch& batch, sel_t* out_sel,
                                uint32_t* out_count) {
  if (out_sel == nullptr || out_count == nullptr) {
    return InvalidArgument("null output");
  }
  if (batch.count > max_vector_size_) {
    return InvalidArgument("batch larger than compiled vector size");
  }
  if (direct_select_) {
    *out_count = direct_select_(batch, out_sel);
    return OkStatus();
  }
  if (out_type_ != TypeId::kI32) {
    return InvalidArgument("select predicate must evaluate to i32");
  }
  const Vector* flags = root_->Eval(batch);
  *out_count =
      SelectColVal<NeCmp, int32_t>(batch.count, batch.sel, batch.sel_count,
                                   out_sel, flags->Data<int32_t>(), 0);
  return OkStatus();
}

}  // namespace x100ir::vec
