// AVX2 kernel behind SelectGeFloatVal (primitives.h): the dense top-k
// threshold filter is the one select left on the ranked hot path, and
// after the heap fills almost every 8-lane group has no survivor — one
// compare + movemask retires the whole group, and the bit-walk only runs
// on the rare groups that still qualify. Output is identical to the
// scalar SelectColVal<GeCmp, float> loop: same ordered >= comparison,
// ascending absolute positions.
#include "compress/unpack.h"
#include "vec/primitives.h"

#if defined(__x86_64__) || defined(_M_X64)
#define X100IR_SELECT_AVX2 1
#include <immintrin.h>
#endif

namespace x100ir::vec {
namespace {

#if defined(X100IR_SELECT_AVX2)
__attribute__((target("avx2"))) uint32_t SelectGeAvx2(uint32_t n, sel_t* res,
                                                      const float* a,
                                                      float val) {
  uint32_t k = 0;
  const __m256 cut = _mm256_set1_ps(val);
  uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(a + i);
    unsigned m = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_cmp_ps(v, cut, _CMP_GE_OQ)));
    while (m != 0) {
      res[k++] = i + static_cast<uint32_t>(__builtin_ctz(m));
      m &= m - 1;
    }
  }
  for (; i < n; ++i) {
    res[k] = i;
    k += static_cast<uint32_t>(a[i] >= val);
  }
  return k;
}
#endif

}  // namespace

uint32_t SelectGeFloatVal(uint32_t n, sel_t* res, const float* a, float val) {
#if defined(X100IR_SELECT_AVX2)
  if (compress::internal::ActiveSimdLevel() ==
      compress::internal::SimdLevel::kAvx2) {
    return SelectGeAvx2(n, res, a, val);
  }
#endif
  return SelectColVal<GeCmp, float>(n, nullptr, 0, res, a, val);
}

}  // namespace x100ir::vec
