// Vector-at-a-time (Volcano-with-vectors) operator interface and the leaf
// scan operator. Operators pull batches of up to ExecContext::vector_size
// rows — the §4 demonstration knob bench_vector_size sweeps: size 1
// degenerates to tuple-at-a-time interpretation, huge sizes spill the
// cache, the optimum sits in between.
#ifndef X100IR_VEC_SCAN_H_
#define X100IR_VEC_SCAN_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "vec/vector.h"

namespace x100ir::vec {

// Per-query execution telemetry, accumulated by the operators of one plan
// into the shared ExecContext and surfaced through SearchResult::stats.
// Counters are only incremented by code that actually did the work, so
// tests and the bench gates can assert that skipping *happened* (e.g.
// windows_skipped > 0 on a selective conjunctive query) instead of trusting
// wall-clock.
struct ExecStats {
  // Compressed 128-value docid windows range-decoded by skip cursors.
  uint64_t windows_decoded = 0;
  // Windows a SkipTo jumped over without decoding (block skipping).
  uint64_t windows_skipped = 0;
  // Windows rejected by a Block-Max score bound without decoding (the
  // per-window BM25 upper bound could not beat θ). With windows_decoded
  // and windows_skipped this partitions a cursor's candidate windows
  // exactly (SkipStats invariant, DESIGN.md §12.4).
  uint64_t windows_blockmax_skipped = 0;
  // tf windows decoded for scoring/probes (separate column, separate cost).
  uint64_t tf_windows_decoded = 0;
  // tf windows scored by the fused decode→score kernel (never materialized
  // as an int32 vector; counted against tf_windows_decoded's two-step
  // path).
  uint64_t fused_windows = 0;
  // Vectorized kernel invocations (map/select/fused-score primitives).
  uint64_t primitive_calls = 0;
  // Whole term vectors never decoded/scored because the term fell below
  // the top-k threshold (MaxScore pruning).
  uint64_t vectors_pruned = 0;
  // Individual non-essential-list lookups during MaxScore completion.
  uint64_t docs_probed = 0;

  ExecStats& operator+=(const ExecStats& o) {
    windows_decoded += o.windows_decoded;
    windows_skipped += o.windows_skipped;
    windows_blockmax_skipped += o.windows_blockmax_skipped;
    tf_windows_decoded += o.tf_windows_decoded;
    fused_windows += o.fused_windows;
    primitive_calls += o.primitive_calls;
    vectors_pruned += o.vectors_pruned;
    docs_probed += o.docs_probed;
    return *this;
  }
  void Add(const ExecStats& o) { *this += o; }
};

// Per-query execution knobs, shared by every operator in a plan.
struct ExecContext {
  // Largest vector any operator will allocate. Past ~1M values a single
  // column vector is 4 MB — far beyond any cache level, so bigger sizes
  // only waste memory; callers sweeping the knob (bench_vector_size) get
  // clamped instead of OOM-ing the plan.
  static constexpr uint32_t kMaxVectorSize = 1u << 20;

  uint32_t vector_size = 1024;

  // Filled in by the plan's operators as they run; read (and reset) by the
  // engine around each query.
  ExecStats stats;

  // Per-query random stream (DESIGN.md §9.1): every ExecContext owns its
  // own Rng, seeded from SearchOptions::rng_seed, so nothing in a plan
  // ever draws from shared mutable state — concurrent queries stay
  // bit-identical to their serial runs.
  Rng rng{0};

  // Called by every operator at Open: vector_size arrives from user-facing
  // APIs (SearchOptions), so the plan rejects 0 and clamps oversizes here
  // instead of trusting callers. Mutates in place; idempotent, so N
  // operators sharing one context can all validate.
  Status Validate() {
    if (vector_size == 0) {
      return InvalidArgument("vector_size must be > 0");
    }
    if (vector_size > kMaxVectorSize) vector_size = kMaxVectorSize;
    return OkStatus();
  }
};

// Pull-based operator. Lifecycle: Open() once, Next() until *out == nullptr
// (end of stream), Close() once. The returned Batch and everything it
// points at belong to the operator and stay valid until its next
// Next()/Close().
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open() = 0;
  virtual Status Next(Batch** out) = 0;
  virtual void Close() {}

  const Schema& schema() const { return schema_; }

 protected:
  Schema schema_;
};

using OperatorPtr = std::unique_ptr<Operator>;

// A readable column: the scan's abstraction over in-memory arrays
// (MemVectorSource) and compressed blocks decoded on the fly via
// BlockDecoder::Decode range decode (BlockVectorSource) — both in
// mem_source.h.
class VectorSource {
 public:
  virtual ~VectorSource() = default;

  virtual uint64_t size() const = 0;
  virtual TypeId type() const = 0;
  // Fills dst[0..len) with values [pos, pos + len); the caller guarantees
  // pos + len <= size().
  virtual void Read(uint64_t pos, uint32_t len, void* dst) const = 0;
};

using VectorSourcePtr = std::unique_ptr<VectorSource>;

// Leaf operator: streams the sources' columns in lockstep, vector_size
// values per Next(). All sources must have equal size and match the
// schema's column count and types.
class ScanOperator : public Operator {
 public:
  ScanOperator(ExecContext* ctx, Schema schema,
               std::vector<VectorSourcePtr> sources);

  Status Open() override;
  Status Next(Batch** out) override;
  void Close() override;

 private:
  ExecContext* ctx_;
  std::vector<VectorSourcePtr> sources_;
  std::vector<Vector> vectors_;
  Batch batch_;
  uint64_t pos_ = 0;
  uint64_t n_ = 0;
};

}  // namespace x100ir::vec

#endif  // X100IR_VEC_SCAN_H_
