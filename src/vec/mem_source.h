// VectorSource implementations: borrowed in-memory arrays and compressed
// blocks range-decoded through BlockDecoder::Decode(pos, len), so a scan
// over a compressed column touches only the 128-value windows overlapping
// each vector — the paper's decompress-into-the-cache pipeline.
#ifndef X100IR_VEC_MEM_SOURCE_H_
#define X100IR_VEC_MEM_SOURCE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "compress/codec.h"
#include "vec/scan.h"

namespace x100ir::vec {

namespace internal {
template <typename T>
struct TypeIdOf;
template <>
struct TypeIdOf<int32_t> {
  static constexpr TypeId value = TypeId::kI32;
};
template <>
struct TypeIdOf<float> {
  static constexpr TypeId value = TypeId::kF32;
};
}  // namespace internal

// Borrows a caller-owned array; the data must outlive the source. Zero
// copy on construction, one memcpy per vector on Read.
template <typename T>
class MemVectorSource : public VectorSource {
 public:
  explicit MemVectorSource(const std::vector<T>& values)
      : data_(values.data()), n_(values.size()) {}
  MemVectorSource(const T* data, uint64_t n) : data_(data), n_(n) {}

  uint64_t size() const override { return n_; }
  TypeId type() const override { return internal::TypeIdOf<T>::value; }
  void Read(uint64_t pos, uint32_t len, void* dst) const override {
    std::memcpy(dst, data_ + pos, static_cast<size_t>(len) * sizeof(T));
  }

 private:
  const T* data_;
  uint64_t n_;
};

// A contiguous [offset, offset + len) view over another source — how a
// per-term posting range becomes a scannable column without copying. The
// base source must outlive the slice (the inverted index owns the base
// block sources; slices are per-query). An out-of-range window asserts in
// debug builds and clamps to the base in release: a buggy caller (e.g. a
// corrupt term table) then reads a visibly short column instead of
// forwarding out-of-range positions into the decoder.
class SliceVectorSource : public VectorSource {
 public:
  SliceVectorSource(const VectorSource* base, uint64_t offset, uint64_t len)
      : base_(base),
        offset_(offset > base->size() ? base->size() : offset),
        len_(len < base->size() - offset_ ? len : base->size() - offset_) {
    assert(offset + len <= base->size());
  }

  uint64_t size() const override { return len_; }
  TypeId type() const override { return base_->type(); }
  void Read(uint64_t pos, uint32_t len, void* dst) const override {
    base_->Read(offset_ + pos, len, dst);
  }

 private:
  const VectorSource* base_;
  uint64_t offset_;
  uint64_t len_;
};

// Owns a compressed block (PFOR / PFOR-DELTA / PDICT) and serves reads via
// the decoder's entry-point range decode: cost scales with the span read,
// not the block size.
class BlockVectorSource : public VectorSource {
 public:
  // Takes ownership of the block bytes; validates the header (Init) and
  // the payload (Validate — scans are exactly the "decode blocks from
  // storage" path deep validation exists for).
  static StatusOr<std::unique_ptr<BlockVectorSource>> Create(
      std::vector<uint8_t> block) {
    std::unique_ptr<BlockVectorSource> src(new BlockVectorSource());
    src->block_ = std::move(block);
    Status s = src->decoder_.Init(src->block_.data(), src->block_.size());
    if (!s.ok()) return s;
    s = src->decoder_.Validate();
    if (!s.ok()) return s;
    return StatusOr<std::unique_ptr<BlockVectorSource>>(std::move(src));
  }

  uint64_t size() const override { return decoder_.n(); }
  TypeId type() const override { return TypeId::kI32; }
  void Read(uint64_t pos, uint32_t len, void* dst) const override {
    decoder_.Decode(static_cast<uint32_t>(pos), len,
                    static_cast<int32_t*>(dst));
  }

  // For skip-aware consumers (compress::SortedRangeCursor) that need the
  // entry-point metadata, not just flat reads. Borrowed; valid as long as
  // the source.
  const compress::BlockDecoder* decoder() const { return &decoder_; }

 private:
  BlockVectorSource() = default;

  std::vector<uint8_t> block_;
  compress::BlockDecoder decoder_;
};

}  // namespace x100ir::vec

#endif  // X100IR_VEC_MEM_SOURCE_H_
