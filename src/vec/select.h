// Filter operator over a compiled predicate, in the two modes whose
// trade-off bench_primitives' BM_SelectOperatorModes measures:
//
//   kSelectionVector — attach the qualifying positions as the outgoing
//     batch's selection vector. Zero data movement; downstream primitives
//     pay sparse iteration instead (DESIGN.md §4).
//   kCompact — gather qualifying rows into fresh dense vectors. Pays one
//     copy per surviving value; downstream runs dense loops.
#ifndef X100IR_VEC_SELECT_H_
#define X100IR_VEC_SELECT_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "vec/expression.h"
#include "vec/scan.h"
#include "vec/vector.h"

namespace x100ir::vec {

enum class SelectMode : uint8_t {
  kSelectionVector = 0,
  kCompact = 1,
};

class SelectOperator : public Operator {
 public:
  SelectOperator(ExecContext* ctx, OperatorPtr child, ExprPtr predicate,
                 SelectMode mode);

  Status Open() override;
  Status Next(Batch** out) override;
  void Close() override;

 private:
  ExecContext* ctx_;
  OperatorPtr child_;
  ExprPtr predicate_;
  SelectMode mode_;

  std::unique_ptr<CompiledExpr> compiled_;
  std::vector<sel_t> sel_;
  std::vector<Vector> compacted_;  // kCompact output columns
  Batch batch_;
};

}  // namespace x100ir::vec

#endif  // X100IR_VEC_SELECT_H_
