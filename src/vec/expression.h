// Composable expression trees evaluated vector-at-a-time over the map/select
// primitives — the "flexible" half of the paper's flexibility-vs-speed
// trade-off (a fused kernel like ir/bm25.h is the other half, and
// bench_primitives measures the gap).
//
// An Expr is a cheap immutable description (column ref, literal, call).
// CompiledExpr::Compile resolves names against a Schema, type-checks, folds
// literal operands into the *_col_val / _val_col primitive shapes (constants
// never materialize into vectors unless both operands are literals), and
// builds a DAG of compiled nodes each owning its output Vector. Structurally
// identical subtrees (same op, same resolved columns, same literals) are
// interned into one shared node — common-subexpression elimination — and an
// eval epoch makes a shared node run its primitive once per batch no matter
// how many parents reference it. Eval thus runs one primitive call per
// *distinct* node per batch — the interpretation overhead the vector size
// amortizes; primitive_calls() exposes the running call count so tests can
// pin the CSE effect.
//
// Supported ops: add, sub, mul, div (i32/i32 or f32/f32), cast_f32
// (i32 -> f32), and the comparisons lt, gt, le, ge, eq, ne (result i32
// 0/1). Mixed-type calls are rejected at compile time; cast explicitly.
#ifndef X100IR_VEC_EXPRESSION_H_
#define X100IR_VEC_EXPRESSION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "vec/vector.h"

namespace x100ir::vec {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  enum class Kind : uint8_t { kCol, kConstI32, kConstF32, kCall };

  static ExprPtr Col(std::string name) {
    auto e = std::make_shared<Expr>();
    e->kind_ = Kind::kCol;
    e->name_ = std::move(name);
    return e;
  }
  static ExprPtr ConstI32(int32_t v) {
    auto e = std::make_shared<Expr>();
    e->kind_ = Kind::kConstI32;
    e->i32_ = v;
    return e;
  }
  static ExprPtr ConstF32(float v) {
    auto e = std::make_shared<Expr>();
    e->kind_ = Kind::kConstF32;
    e->f32_ = v;
    return e;
  }
  static ExprPtr Call(std::string op, std::vector<ExprPtr> args) {
    auto e = std::make_shared<Expr>();
    e->kind_ = Kind::kCall;
    e->name_ = std::move(op);
    e->args_ = std::move(args);
    return e;
  }

  Kind kind() const { return kind_; }
  const std::string& name() const { return name_; }  // column or op name
  int32_t i32() const { return i32_; }
  float f32() const { return f32_; }
  const std::vector<ExprPtr>& args() const { return args_; }

 private:
  Kind kind_ = Kind::kCol;
  std::string name_;
  int32_t i32_ = 0;
  float f32_ = 0.0f;
  std::vector<ExprPtr> args_;
};

namespace internal {
class Node;  // compiled expression node (expression.cc)
}  // namespace internal

class CompiledExpr {
 public:
  // Compiles `expr` against `schema` for batches of up to max_vector_size
  // rows (output vectors are sized once, here — Eval never allocates).
  static StatusOr<std::unique_ptr<CompiledExpr>> Compile(
      const ExprPtr& expr, const Schema& schema, uint32_t max_vector_size);

  ~CompiledExpr();
  CompiledExpr(CompiledExpr&&) = delete;

  TypeId out_type() const { return out_type_; }

  // Total primitive invocations (map/cast calls by non-leaf nodes) across
  // every Eval/EvalSelect so far. A shared subtree counts once per batch —
  // the observable CSE win (direct-select fast paths bypass nodes and are
  // not counted).
  uint64_t primitive_calls() const { return primitive_calls_; }

  // Distinct compiled nodes after CSE (column refs included).
  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }

  // Evaluates over the batch's active rows; *out points at a vector owned
  // by this CompiledExpr (or at a batch column for a bare column ref),
  // valid until the next Eval.
  Status Eval(const Batch& batch, const Vector** out);

  // Predicate evaluation: writes the active row indices satisfying the
  // (i32, top-level comparison) expression into out_sel — ascending,
  // composable with batch.sel — and returns their count in *out_count.
  // out_sel must have room for batch.ActiveCount() entries. Comparisons of
  // the form cmp(col, literal) skip materializing the 0/1 vector and run
  // one select primitive directly.
  Status EvalSelect(const Batch& batch, sel_t* out_sel, uint32_t* out_count);

 private:
  CompiledExpr() = default;

  // Node pool: owns every distinct node of the DAG; nodes reference each
  // other (and root_ references into the pool) with raw pointers.
  std::vector<std::unique_ptr<internal::Node>> nodes_;
  internal::Node* root_ = nullptr;
  // Fast path for cmp(col, literal): one SelectColVal call, no
  // intermediate vector. Unset for every other shape.
  std::function<uint32_t(const Batch&, sel_t*)> direct_select_;
  TypeId out_type_ = TypeId::kI32;
  uint32_t max_vector_size_ = 0;
  // Eval epoch: bumped once per Eval/EvalSelect; shared nodes cache their
  // output vector per epoch so a DAG node evaluates once per batch.
  uint64_t epoch_ = 0;
  uint64_t primitive_calls_ = 0;
};

}  // namespace x100ir::vec

#endif  // X100IR_VEC_EXPRESSION_H_
