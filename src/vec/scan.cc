#include "vec/scan.h"

#include <algorithm>

#include "common/string_util.h"

namespace x100ir::vec {

ScanOperator::ScanOperator(ExecContext* ctx, Schema schema,
                           std::vector<VectorSourcePtr> sources)
    : ctx_(ctx), sources_(std::move(sources)) {
  schema_ = std::move(schema);
}

Status ScanOperator::Open() {
  if (ctx_ == nullptr) {
    return InvalidArgument("scan needs an execution context");
  }
  X100IR_RETURN_IF_ERROR(ctx_->Validate());
  if (sources_.size() != schema_.NumColumns()) {
    return InvalidArgument(
        StrFormat("scan has %zu sources but schema has %u columns",
                  sources_.size(), schema_.NumColumns()));
  }
  n_ = sources_.empty() ? 0 : sources_[0]->size();
  for (uint32_t c = 0; c < sources_.size(); ++c) {
    if (sources_[c] == nullptr) return InvalidArgument("null source");
    if (sources_[c]->size() != n_) {
      return InvalidArgument("scan sources differ in length");
    }
    if (sources_[c]->type() != schema_.type(c)) {
      return InvalidArgument("source type does not match schema for column " +
                             schema_.name(c));
    }
  }
  vectors_.clear();
  vectors_.reserve(sources_.size());
  batch_.columns.clear();
  for (uint32_t c = 0; c < sources_.size(); ++c) {
    vectors_.emplace_back(schema_.type(c), ctx_->vector_size);
  }
  // Vector storage is stable from here on (no reallocation), so batch
  // column pointers can be wired once.
  for (auto& v : vectors_) batch_.columns.push_back(&v);
  pos_ = 0;
  return OkStatus();
}

Status ScanOperator::Next(Batch** out) {
  if (out == nullptr) return InvalidArgument("null output");
  const uint64_t remaining = n_ - pos_;
  if (remaining == 0) {
    *out = nullptr;
    return OkStatus();
  }
  const uint32_t len = static_cast<uint32_t>(
      std::min<uint64_t>(ctx_->vector_size, remaining));
  for (uint32_t c = 0; c < sources_.size(); ++c) {
    sources_[c]->Read(pos_, len, vectors_[c].RawData());
  }
  pos_ += len;
  batch_.count = len;
  batch_.sel = nullptr;
  batch_.sel_count = 0;
  *out = &batch_;
  return OkStatus();
}

void ScanOperator::Close() {
  pos_ = n_;
}

}  // namespace x100ir::vec
