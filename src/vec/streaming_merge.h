// Streaming, skip-aware merge-join — the replacement for the hot path of
// MergeJoinOperator's materialize-then-intersect (which stays as the
// reference/oracle; DESIGN.md §7.2).
//
// The operator drives SkipCursor children with a leapfrog intersection:
// take the head of one list as the candidate, SkipTo(candidate) on each
// other list; any overshoot becomes the new candidate, and agreement by all
// children emits a row. Each SkipTo lands directly on the first block
// window that can contain the probe (skip_cursor.h), so a selective
// conjunction decodes only a sliver of the long lists — the cost profile of
// a hand-built DAAT engine, reached through the relational operator tree.
//
// Children must be strictly increasing (docids are unique per list). The
// engine passes cursors rarest-first: the shortest list is the candidate
// generator, so probe count is O(shortest), and galloping inside SkipTo
// makes each probe logarithmic in the distance jumped.
#ifndef X100IR_VEC_STREAMING_MERGE_H_
#define X100IR_VEC_STREAMING_MERGE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "vec/merge_join.h"
#include "vec/scan.h"
#include "vec/vector.h"

namespace x100ir::vec {

// A sorted i32 stream with value-based skipping — what the streaming join
// drives. Implementations: ir::DocidSkipCursor (compressed posting slice
// via compress::SortedRangeCursor) and MemSkipCursor below (raw arrays;
// tests and the custom-engine baselines).
class SkipCursor {
 public:
  virtual ~SkipCursor() = default;

  virtual bool AtEnd() = 0;
  // Current value / ordinal position; require !AtEnd().
  virtual int32_t value() = 0;
  virtual uint64_t position() = 0;
  // Advance one position; false at end.
  virtual bool Next() = 0;
  // Advance to the first position >= the current one with value >= target
  // (nondecreasing targets across calls); false at end.
  virtual bool SkipTo(int32_t target) = 0;
  // Fold decode/skip counters into `stats` (called once, at plan Close).
  virtual void FoldStats(ExecStats* stats) { (void)stats; }
};

using SkipCursorPtr = std::unique_ptr<SkipCursor>;

// Cursor over a borrowed sorted array (must outlive the cursor). SkipTo
// gallops, so skewed intersections keep their O(short * log(long/short))
// bound even without block structure.
class MemSkipCursor : public SkipCursor {
 public:
  MemSkipCursor(const int32_t* data, uint64_t n) : data_(data), n_(n) {}
  explicit MemSkipCursor(const std::vector<int32_t>& v)
      : data_(v.data()), n_(v.size()) {}

  bool AtEnd() override { return pos_ >= n_; }
  int32_t value() override { return data_[pos_]; }
  uint64_t position() override { return pos_; }
  bool Next() override { return ++pos_ < n_; }
  bool SkipTo(int32_t target) override {
    pos_ = GallopLowerBound(data_, static_cast<uint32_t>(pos_),
                            static_cast<uint32_t>(n_), target);
    return pos_ < n_;
  }

 private:
  const int32_t* data_;
  uint64_t n_;
  uint64_t pos_ = 0;
};

// N-ary streaming intersection of SkipCursors on their values. Output
// schema: one dense i32 "docid" column, strictly increasing. Constant
// memory: one output vector, no materialization.
class StreamingMergeJoinOperator : public Operator {
 public:
  StreamingMergeJoinOperator(ExecContext* ctx,
                             std::vector<SkipCursorPtr> cursors);

  Status Open() override;
  Status Next(Batch** out) override;
  void Close() override;

 private:
  ExecContext* ctx_;
  std::vector<SkipCursorPtr> cursors_;
  Vector out_docid_;
  Batch batch_;
  bool done_ = false;
  bool stats_folded_ = false;
};

}  // namespace x100ir::vec

#endif  // X100IR_VEC_STREAMING_MERGE_H_
