// Core value types of the X100-style vectorized execution layer (§2 of the
// paper): fixed-capacity typed vectors, batches with optional selection
// vectors, and column schemas.
//
// Selection-vector convention (DESIGN.md §4): a Batch carries `count` rows
// of which either all are active (`sel == nullptr`) or only the positions
// listed in `sel[0..sel_count)` are. Selection vectors hold *absolute* row
// indices in ascending order, so they compose: a select over an already
// selected batch emits a subset of the incoming positions. Primitives write
// results *through* the selection vector (res[sel[j]] = ...) instead of
// compacting, so a filter costs nothing at filter time and downstream
// operators keep zero-copy access to unselected payload columns.
#ifndef X100IR_VEC_VECTOR_H_
#define X100IR_VEC_VECTOR_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace x100ir::vec {

// Selection-vector element: an absolute row index within a batch.
using sel_t = uint32_t;

// Column value types. All 4 bytes wide, which lets type-agnostic code
// (compaction, gathers) move values as raw 32-bit words.
enum class TypeId : uint8_t {
  kI32 = 0,
  kF32 = 1,
};

inline const char* TypeName(TypeId t) {
  return t == TypeId::kI32 ? "i32" : "f32";
}

inline constexpr size_t kTypeWidth = 4;  // bytes, for every TypeId

// A fixed-capacity, untyped-storage vector. Ownership of the buffer stays
// with the Vector; Batches reference Vectors by pointer and never own them.
class Vector {
 public:
  Vector() = default;
  Vector(TypeId type, uint32_t capacity) { Reset(type, capacity); }

  void Reset(TypeId type, uint32_t capacity) {
    type_ = type;
    capacity_ = capacity;
    buf_.resize(static_cast<size_t>(capacity) * kTypeWidth);
  }

  TypeId type() const { return type_; }
  uint32_t capacity() const { return capacity_; }

  template <typename T>
  T* Data() {
    static_assert(sizeof(T) == kTypeWidth, "vector element must be 4 bytes");
    return reinterpret_cast<T*>(buf_.data());
  }
  template <typename T>
  const T* Data() const {
    static_assert(sizeof(T) == kTypeWidth, "vector element must be 4 bytes");
    return reinterpret_cast<const T*>(buf_.data());
  }

  void* RawData() { return buf_.data(); }
  const void* RawData() const { return buf_.data(); }

  // Copies src[0..n) into the vector (n <= capacity).
  template <typename T>
  void Fill(const T* src, uint32_t n) {
    static_assert(sizeof(T) == kTypeWidth, "vector element must be 4 bytes");
    assert(n <= capacity_);
    std::memcpy(buf_.data(), src, static_cast<size_t>(n) * sizeof(T));
  }

 private:
  TypeId type_ = TypeId::kI32;
  uint32_t capacity_ = 0;
  std::vector<uint8_t> buf_;
};

// A horizontal slice of columns flowing between operators. Non-owning:
// column Vectors (and the selection vector) belong to the producing
// operator and stay valid until its next Next()/Close().
struct Batch {
  uint32_t count = 0;              // rows present in the column vectors
  std::vector<Vector*> columns;
  const sel_t* sel = nullptr;      // nullptr = all `count` rows active
  uint32_t sel_count = 0;

  // Rows a consumer actually sees.
  uint32_t ActiveCount() const { return sel != nullptr ? sel_count : count; }
};

// Ordered, named, typed column list.
class Schema {
 public:
  void Add(std::string name, TypeId type) {
    names_.push_back(std::move(name));
    types_.push_back(type);
  }

  uint32_t NumColumns() const { return static_cast<uint32_t>(names_.size()); }
  const std::string& name(uint32_t i) const { return names_[i]; }
  TypeId type(uint32_t i) const { return types_[i]; }

  // Index of `name`, or -1 when absent.
  int IndexOf(const std::string& name) const {
    for (size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

 private:
  std::vector<std::string> names_;
  std::vector<TypeId> types_;
};

}  // namespace x100ir::vec

#endif  // X100IR_VEC_VECTOR_H_
