#include "vec/select.h"

#include <utility>

namespace x100ir::vec {

SelectOperator::SelectOperator(ExecContext* ctx, OperatorPtr child,
                               ExprPtr predicate, SelectMode mode)
    : ctx_(ctx),
      child_(std::move(child)),
      predicate_(std::move(predicate)),
      mode_(mode) {}

Status SelectOperator::Open() {
  if (child_ == nullptr) return InvalidArgument("select needs a child");
  if (ctx_ == nullptr) {
    return InvalidArgument("select needs an execution context");
  }
  X100IR_RETURN_IF_ERROR(ctx_->Validate());
  X100IR_RETURN_IF_ERROR(child_->Open());
  schema_ = child_->schema();
  auto compiled_or =
      CompiledExpr::Compile(predicate_, schema_, ctx_->vector_size);
  if (!compiled_or.ok()) return compiled_or.status();
  compiled_ = std::move(compiled_or.value());
  sel_.resize(ctx_->vector_size);
  batch_.columns.clear();
  compacted_.clear();
  if (mode_ == SelectMode::kCompact) {
    for (uint32_t c = 0; c < schema_.NumColumns(); ++c) {
      compacted_.emplace_back(schema_.type(c), ctx_->vector_size);
    }
    for (auto& v : compacted_) batch_.columns.push_back(&v);
  }
  return OkStatus();
}

Status SelectOperator::Next(Batch** out) {
  if (out == nullptr) return InvalidArgument("null output");
  Batch* in = nullptr;
  X100IR_RETURN_IF_ERROR(child_->Next(&in));
  if (in == nullptr) {
    *out = nullptr;
    return OkStatus();
  }
  uint32_t qualifying = 0;
  X100IR_RETURN_IF_ERROR(
      compiled_->EvalSelect(*in, sel_.data(), &qualifying));

  if (mode_ == SelectMode::kSelectionVector) {
    // Zero copy: pass the child's vectors through, narrowed by sel.
    batch_.columns = in->columns;
    batch_.count = in->count;
    batch_.sel = sel_.data();
    batch_.sel_count = qualifying;
  } else {
    // Compact: gather survivors into dense vectors. All column types are
    // 4 bytes wide, so the gather is type-agnostic.
    for (uint32_t c = 0; c < in->columns.size(); ++c) {
      const int32_t* src = in->columns[c]->Data<int32_t>();
      int32_t* dst = compacted_[c].Data<int32_t>();
      for (uint32_t j = 0; j < qualifying; ++j) dst[j] = src[sel_[j]];
    }
    batch_.count = qualifying;
    batch_.sel = nullptr;
    batch_.sel_count = 0;
  }
  *out = &batch_;
  return OkStatus();
}

void SelectOperator::Close() {
  if (child_ != nullptr) child_->Close();
}

}  // namespace x100ir::vec
