#include "vec/merge_join.h"

#include <cstring>
#include <utility>

#include "common/string_util.h"

namespace x100ir::vec {

MergeJoinOperator::MergeJoinOperator(ExecContext* ctx,
                                     std::vector<OperatorPtr> children,
                                     MergeMode mode)
    : ctx_(ctx), children_(std::move(children)), mode_(mode) {}

Status MergeJoinOperator::DrainChild(Operator* child, Input* input) {
  const uint32_t ncols = child->schema().NumColumns();
  input->payloads.resize(ncols - 1);
  Batch* b = nullptr;
  for (;;) {
    X100IR_RETURN_IF_ERROR(child->Next(&b));
    if (b == nullptr) return OkStatus();
    const int32_t* keys = b->columns[0]->Data<int32_t>();
    const uint32_t active = b->ActiveCount();
    for (uint32_t j = 0; j < active; ++j) {
      const uint32_t row = b->sel != nullptr ? b->sel[j] : j;
      if (!input->keys.empty() && keys[row] <= input->keys.back()) {
        return InvalidArgument(
            "merge-join input keys must be strictly increasing");
      }
      input->keys.push_back(keys[row]);
      for (uint32_t c = 1; c < ncols; ++c) {
        input->payloads[c - 1].push_back(
            b->columns[c]->Data<int32_t>()[row]);
      }
    }
  }
}

Status MergeJoinOperator::Open() {
  if (children_.empty()) {
    return InvalidArgument("merge-join needs at least one child");
  }
  if (ctx_ == nullptr) {
    return InvalidArgument("merge-join needs an execution context");
  }
  X100IR_RETURN_IF_ERROR(ctx_->Validate());
  if (mode_ != MergeMode::kIntersect) {
    return Unimplemented("only kIntersect is implemented");
  }
  schema_ = Schema();
  for (size_t c = 0; c < children_.size(); ++c) {
    if (children_[c] == nullptr) return InvalidArgument("null child");
    X100IR_RETURN_IF_ERROR(children_[c]->Open());
    const Schema& cs = children_[c]->schema();
    if (cs.NumColumns() == 0 || cs.type(0) != TypeId::kI32) {
      return InvalidArgument(
          StrFormat("merge-join child %zu must lead with an i32 key", c));
    }
    if (c == 0) schema_.Add(cs.name(0), TypeId::kI32);
    for (uint32_t p = 1; p < cs.NumColumns(); ++p) {
      schema_.Add(cs.name(p), cs.type(p));
    }
  }

  // Materialize every child, then intersect the key columns pairwise with
  // the galloping kernel, carrying per-child row indices for the payload
  // gather.
  std::vector<Input> inputs(children_.size());
  for (size_t c = 0; c < children_.size(); ++c) {
    X100IR_RETURN_IF_ERROR(DrainChild(children_[c].get(), &inputs[c]));
  }

  std::vector<int32_t> keys = std::move(inputs[0].keys);
  std::vector<std::vector<uint32_t>> rows(children_.size());
  rows[0].resize(keys.size());
  for (uint32_t i = 0; i < rows[0].size(); ++i) rows[0][i] = i;

  std::vector<sel_t> out_a, out_b;
  for (size_t c = 1; c < children_.size(); ++c) {
    const auto& ckeys = inputs[c].keys;
    const uint32_t cap = static_cast<uint32_t>(
        std::min(keys.size(), ckeys.size()));
    out_a.resize(cap);
    out_b.resize(cap);
    const uint32_t k = MergeIntersectGalloping(
        keys.data(), static_cast<uint32_t>(keys.size()), ckeys.data(),
        static_cast<uint32_t>(ckeys.size()), out_a.data(), out_b.data());
    ++ctx_->stats.primitive_calls;
    std::vector<int32_t> new_keys(k);
    for (uint32_t t = 0; t < k; ++t) new_keys[t] = keys[out_a[t]];
    for (size_t p = 0; p < c; ++p) {
      std::vector<uint32_t> remapped(k);
      for (uint32_t t = 0; t < k; ++t) remapped[t] = rows[p][out_a[t]];
      rows[p] = std::move(remapped);
    }
    rows[c].assign(out_b.begin(), out_b.begin() + k);
    keys = std::move(new_keys);
  }

  // Gather the joined columns: key first, then each child's payloads.
  result_rows_ = keys.size();
  result_cols_.clear();
  result_cols_.push_back(std::move(keys));
  for (size_t c = 0; c < children_.size(); ++c) {
    for (const auto& payload : inputs[c].payloads) {
      std::vector<int32_t> col(result_rows_);
      for (uint64_t t = 0; t < result_rows_; ++t) {
        col[t] = payload[rows[c][t]];
      }
      result_cols_.push_back(std::move(col));
    }
  }

  vectors_.clear();
  vectors_.reserve(result_cols_.size());
  batch_.columns.clear();
  for (uint32_t c = 0; c < result_cols_.size(); ++c) {
    vectors_.emplace_back(schema_.type(c), ctx_->vector_size);
  }
  for (auto& v : vectors_) batch_.columns.push_back(&v);
  pos_ = 0;
  return OkStatus();
}

Status MergeJoinOperator::Next(Batch** out) {
  if (out == nullptr) return InvalidArgument("null output");
  const uint64_t remaining = result_rows_ - pos_;
  if (remaining == 0) {
    *out = nullptr;
    return OkStatus();
  }
  const uint32_t len = static_cast<uint32_t>(
      std::min<uint64_t>(ctx_->vector_size, remaining));
  for (size_t c = 0; c < result_cols_.size(); ++c) {
    std::memcpy(vectors_[c].RawData(), result_cols_[c].data() + pos_,
                static_cast<size_t>(len) * kTypeWidth);
  }
  pos_ += len;
  batch_.count = len;
  batch_.sel = nullptr;
  batch_.sel_count = 0;
  *out = &batch_;
  return OkStatus();
}

void MergeJoinOperator::Close() {
  for (auto& child : children_) {
    if (child != nullptr) child->Close();
  }
}

}  // namespace x100ir::vec
