// Sorted-int32 merge-join — the inverted-list intersection kernel of the
// paper's relational IR formulation (a conjunctive query is a merge-join of
// posting lists on docid).
//
// Two layers:
//   - free kernels MergeIntersectNaive / MergeIntersectGalloping over raw
//     sorted arrays, emitting matching index pairs. Galloping (exponential
//     probe + binary search) makes skewed intersections — a rare term
//     against a huge posting list — cost O(short * log(long / short))
//     instead of O(long);
//   - MergeJoinOperator, which materializes its children's streams at Open
//     (posting lists arrive from block-resident columns anyway), intersects
//     the key columns with the galloping kernel, and re-emits the joined
//     rows vector-at-a-time.
//
// Keys must be strictly increasing within each input (docids are unique).
#ifndef X100IR_VEC_MERGE_JOIN_H_
#define X100IR_VEC_MERGE_JOIN_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "vec/scan.h"
#include "vec/vector.h"

namespace x100ir::vec {

// First index in v[lo..n) with v[index] >= key (n if none): exponential
// probe from lo, then binary search inside the bracketed run. Cheap when
// the answer is near lo (dense intersections degrade to two-pointer), and
// logarithmic in the skip distance when it is far (sparse-vs-dense skew).
inline uint32_t GallopLowerBound(const int32_t* v, uint32_t lo, uint32_t n,
                                 int32_t key) {
  if (lo >= n || v[lo] >= key) return lo;
  // 64-bit probe arithmetic: with n - prev > 2^31 a uint32 step would
  // double to 0 and the probe loop would never advance again.
  uint64_t step = 1;
  uint64_t prev = lo;
  // Invariant: v[prev] < key.
  while (step < n - prev && v[prev + step] < key) {
    prev += step;
    step <<= 1;
  }
  const uint64_t hi = std::min<uint64_t>(n, prev + step);
  return static_cast<uint32_t>(
      std::lower_bound(v + prev + 1, v + hi, key) - v);
}

// Reference two-pointer intersection. out_a/out_b receive the matching
// indices into a/b; returns the match count. Outputs must have room for
// min(na, nb) entries.
inline uint32_t MergeIntersectNaive(const int32_t* a, uint32_t na,
                                    const int32_t* b, uint32_t nb,
                                    sel_t* out_a, sel_t* out_b) {
  uint32_t i = 0, j = 0, k = 0;
  while (i < na && j < nb) {
    if (a[i] == b[j]) {
      out_a[k] = i;
      out_b[k] = j;
      ++k;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return k;
}

// Galloping intersection: same contract as MergeIntersectNaive, but each
// miss skips ahead exponentially in the lagging list.
inline uint32_t MergeIntersectGalloping(const int32_t* a, uint32_t na,
                                        const int32_t* b, uint32_t nb,
                                        sel_t* out_a, sel_t* out_b) {
  uint32_t i = 0, j = 0, k = 0;
  while (i < na && j < nb) {
    if (a[i] == b[j]) {
      out_a[k] = i;
      out_b[k] = j;
      ++k;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      i = GallopLowerBound(a, i + 1, na, b[j]);
    } else {
      j = GallopLowerBound(b, j + 1, nb, a[i]);
    }
  }
  return k;
}

enum class MergeMode : uint8_t {
  kIntersect = 0,  // conjunctive query: keys present in every child
};

// N-ary merge-join on column 0 (kI32, strictly increasing). Output schema:
// child 0's key column, then every child's payload columns in child order.
class MergeJoinOperator : public Operator {
 public:
  MergeJoinOperator(ExecContext* ctx, std::vector<OperatorPtr> children,
                    MergeMode mode);

  Status Open() override;
  Status Next(Batch** out) override;
  void Close() override;

 private:
  // One drained child: key column plus payload columns as raw 32-bit rows.
  struct Input {
    std::vector<int32_t> keys;
    std::vector<std::vector<int32_t>> payloads;
  };

  Status DrainChild(Operator* child, Input* input);

  ExecContext* ctx_;
  std::vector<OperatorPtr> children_;
  MergeMode mode_;

  // Joined result, materialized at Open.
  std::vector<std::vector<int32_t>> result_cols_;
  std::vector<Vector> vectors_;
  Batch batch_;
  uint64_t pos_ = 0;
  uint64_t result_rows_ = 0;
};

}  // namespace x100ir::vec

#endif  // X100IR_VEC_MERGE_JOIN_H_
