#include "vec/streaming_merge.h"

namespace x100ir::vec {

StreamingMergeJoinOperator::StreamingMergeJoinOperator(
    ExecContext* ctx, std::vector<SkipCursorPtr> cursors)
    : ctx_(ctx), cursors_(std::move(cursors)) {}

Status StreamingMergeJoinOperator::Open() {
  if (cursors_.empty()) {
    return InvalidArgument("streaming merge-join needs at least one cursor");
  }
  if (ctx_ == nullptr) {
    return InvalidArgument("streaming merge-join needs an execution context");
  }
  X100IR_RETURN_IF_ERROR(ctx_->Validate());
  for (const SkipCursorPtr& c : cursors_) {
    if (c == nullptr) return InvalidArgument("null cursor");
  }
  schema_ = Schema();
  schema_.Add("docid", TypeId::kI32);
  out_docid_.Reset(TypeId::kI32, ctx_->vector_size);
  batch_.columns = {&out_docid_};
  done_ = false;
  stats_folded_ = false;
  // An empty child empties the intersection before any probing starts.
  for (const SkipCursorPtr& c : cursors_) {
    if (c->AtEnd()) {
      done_ = true;
      break;
    }
  }
  return OkStatus();
}

Status StreamingMergeJoinOperator::Next(Batch** out) {
  if (out == nullptr) return InvalidArgument("null output");
  int32_t* dst = out_docid_.Data<int32_t>();
  uint32_t filled = 0;
  const size_t n = cursors_.size();
  while (!done_ && filled < ctx_->vector_size) {
    // Leapfrog: candidate from cursor 0 (rarest list), every overshoot by
    // another cursor becomes the new candidate until all n agree.
    int32_t d = cursors_[0]->value();
    size_t agree = 1;
    size_t i = 1 % n;
    while (agree < n) {
      if (!cursors_[i]->SkipTo(d)) {
        done_ = true;
        break;
      }
      const int32_t v = cursors_[i]->value();
      if (v == d) {
        ++agree;
      } else {
        // Strictly increasing inputs guarantee v > d here; a misordered
        // child would loop, so fail loudly instead.
        if (v < d) {
          return Internal("skip cursor moved backwards (unsorted input)");
        }
        d = v;
        agree = 1;
      }
      i = (i + 1) % n;
    }
    if (done_) break;
    dst[filled++] = d;
    if (!cursors_[0]->Next()) done_ = true;
  }
  if (filled == 0) {
    *out = nullptr;
    return OkStatus();
  }
  batch_.count = filled;
  batch_.sel = nullptr;
  batch_.sel_count = 0;
  *out = &batch_;
  return OkStatus();
}

void StreamingMergeJoinOperator::Close() {
  if (!stats_folded_ && ctx_ != nullptr) {
    for (const SkipCursorPtr& c : cursors_) {
      if (c != nullptr) c->FoldStats(&ctx_->stats);
    }
    stats_folded_ = true;
  }
}

}  // namespace x100ir::vec
