// X100-style vectorized primitives (§2 of the paper): tight loops over
// cache-resident vectors, one primitive call per vector instead of one
// interpretation step per tuple.
//
// Naming follows the paper's map_<op>_<type>_col_<type>_{col,val} family,
// rendered as templates: MapColCol<AddOp, float, float, float> is
// map_add_f32_col_f32_col. Every primitive has two specialized paths:
//
//   - dense (sel == nullptr): a branch-free 0..n loop the compiler can
//     auto-vectorize;
//   - selection vector: iterate sel[0..sel_count) and write results
//     *through* the selection vector (res[sel[j]]), never compacting —
//     the ownership rules are in DESIGN.md §4.
//
// Select primitives emit the qualifying positions branch-free: the store
// `res[k] = i` is unconditional and only the increment of k is data-
// dependent, so there is no mispredictable branch on the comparison
// outcome (the same trick the codec's LOOP2 uses).
//
// Primitives are deliberately NOT inlined into callers: in the engine they
// are always reached through the expression interpreter's indirect call,
// and the per-call overhead amortized over the vector is exactly the §2
// curve bench_primitives plots. Inlining them into a bench loop would
// optimize away the thing being measured.
#ifndef X100IR_VEC_PRIMITIVES_H_
#define X100IR_VEC_PRIMITIVES_H_

#include <cstdint>

#include "vec/vector.h"

#if defined(__GNUC__) || defined(__clang__)
#define X100IR_NOINLINE __attribute__((noinline))
#else
#define X100IR_NOINLINE
#endif

namespace x100ir::vec {

// ---------------------------------------------------------------------------
// Op functors. Apply is templated so one functor serves every value type.
// ---------------------------------------------------------------------------

struct AddOp {
  template <typename T>
  static T Apply(T a, T b) {
    return a + b;
  }
};

struct SubOp {
  template <typename T>
  static T Apply(T a, T b) {
    return a - b;
  }
};

struct MulOp {
  template <typename T>
  static T Apply(T a, T b) {
    return a * b;
  }
};

struct DivOp {
  template <typename T>
  static T Apply(T a, T b) {
    return a / b;
  }
};

struct GtCmp {
  template <typename T>
  static bool Apply(T a, T b) {
    return a > b;
  }
};

struct LtCmp {
  template <typename T>
  static bool Apply(T a, T b) {
    return a < b;
  }
};

struct GeCmp {
  template <typename T>
  static bool Apply(T a, T b) {
    return a >= b;
  }
};

struct LeCmp {
  template <typename T>
  static bool Apply(T a, T b) {
    return a <= b;
  }
};

struct EqCmp {
  template <typename T>
  static bool Apply(T a, T b) {
    return a == b;
  }
};

struct NeCmp {
  template <typename T>
  static bool Apply(T a, T b) {
    return a != b;
  }
};

// ---------------------------------------------------------------------------
// Map family: res[i] = Op(a[i], b) for active positions i.
// ---------------------------------------------------------------------------

template <typename Op, typename TRes, typename TA, typename TB>
X100IR_NOINLINE void MapColCol(uint32_t n, const sel_t* sel,
                               uint32_t sel_count, TRes* res, const TA* a,
                               const TB* b) {
  if (sel == nullptr) {
    for (uint32_t i = 0; i < n; ++i) {
      res[i] = static_cast<TRes>(Op::Apply(a[i], b[i]));
    }
  } else {
    for (uint32_t j = 0; j < sel_count; ++j) {
      const sel_t i = sel[j];
      res[i] = static_cast<TRes>(Op::Apply(a[i], b[i]));
    }
  }
}

template <typename Op, typename TRes, typename TA, typename TB>
X100IR_NOINLINE void MapColVal(uint32_t n, const sel_t* sel,
                               uint32_t sel_count, TRes* res, const TA* a,
                               TB val) {
  if (sel == nullptr) {
    for (uint32_t i = 0; i < n; ++i) {
      res[i] = static_cast<TRes>(Op::Apply(a[i], val));
    }
  } else {
    for (uint32_t j = 0; j < sel_count; ++j) {
      const sel_t i = sel[j];
      res[i] = static_cast<TRes>(Op::Apply(a[i], val));
    }
  }
}

template <typename Op, typename TRes, typename TA, typename TB>
X100IR_NOINLINE void MapValCol(uint32_t n, const sel_t* sel,
                               uint32_t sel_count, TRes* res, TA val,
                               const TB* b) {
  if (sel == nullptr) {
    for (uint32_t i = 0; i < n; ++i) {
      res[i] = static_cast<TRes>(Op::Apply(val, b[i]));
    }
  } else {
    for (uint32_t j = 0; j < sel_count; ++j) {
      const sel_t i = sel[j];
      res[i] = static_cast<TRes>(Op::Apply(val, b[i]));
    }
  }
}

// Unary map: res[i] = Op(a[i]). Used for casts.
template <typename Op, typename TRes, typename TA>
X100IR_NOINLINE void MapCol(uint32_t n, const sel_t* sel, uint32_t sel_count,
                            TRes* res, const TA* a) {
  if (sel == nullptr) {
    for (uint32_t i = 0; i < n; ++i) {
      res[i] = static_cast<TRes>(Op::Apply(a[i]));
    }
  } else {
    for (uint32_t j = 0; j < sel_count; ++j) {
      const sel_t i = sel[j];
      res[i] = static_cast<TRes>(Op::Apply(a[i]));
    }
  }
}

struct CastF32Op {
  static float Apply(int32_t a) { return static_cast<float>(a); }
};

// ---------------------------------------------------------------------------
// Select family: emit qualifying active positions into res, branch-free.
// Returns the number of positions written. Emitted indices are absolute
// row indices, ascending — directly usable as the next selection vector.
// res must have room for every active position.
// ---------------------------------------------------------------------------

template <typename Cmp, typename T>
X100IR_NOINLINE uint32_t SelectColVal(uint32_t n, const sel_t* sel,
                                      uint32_t sel_count, sel_t* res,
                                      const T* a, T val) {
  uint32_t k = 0;
  if (sel == nullptr) {
    for (uint32_t i = 0; i < n; ++i) {
      res[k] = i;
      k += static_cast<uint32_t>(Cmp::Apply(a[i], val));
    }
  } else {
    for (uint32_t j = 0; j < sel_count; ++j) {
      const sel_t i = sel[j];
      res[k] = i;
      k += static_cast<uint32_t>(Cmp::Apply(a[i], val));
    }
  }
  return k;
}

// Dispatched dense float >= select (simd_select.cc): output-identical to
// SelectColVal<GeCmp, float>(n, nullptr, 0, res, a, val), but resolved to
// an AVX2 compare/movemask kernel when the host (and the SIMD toggle)
// allow it. The ranked hot path's threshold filter calls this.
uint32_t SelectGeFloatVal(uint32_t n, sel_t* res, const float* a, float val);

template <typename Cmp, typename T>
X100IR_NOINLINE uint32_t SelectColCol(uint32_t n, const sel_t* sel,
                                      uint32_t sel_count, sel_t* res,
                                      const T* a, const T* b) {
  uint32_t k = 0;
  if (sel == nullptr) {
    for (uint32_t i = 0; i < n; ++i) {
      res[k] = i;
      k += static_cast<uint32_t>(Cmp::Apply(a[i], b[i]));
    }
  } else {
    for (uint32_t j = 0; j < sel_count; ++j) {
      const sel_t i = sel[j];
      res[k] = i;
      k += static_cast<uint32_t>(Cmp::Apply(a[i], b[i]));
    }
  }
  return k;
}

}  // namespace x100ir::vec

#endif  // X100IR_VEC_PRIMITIVES_H_
