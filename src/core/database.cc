#include "core/database.h"

#include <utility>

namespace x100ir::core {

Status Database::Open(const DatabaseOptions& options) {
  open_ = false;
  // The old manager borrows the old corpus (and may be merging over it):
  // it must die before the corpus is regenerated.
  manager_.reset();
  build_stats_ = ir::BuildStats();
  X100IR_RETURN_IF_ERROR(ir::Corpus::Generate(options.corpus, &corpus_));
  return OpenPrepared(options.dir, options.storage);
}

Status Database::OpenWithCorpus(ir::Corpus corpus, const std::string& dir,
                                const storage::StorageOptions& storage) {
  open_ = false;
  manager_.reset();  // same teardown-before-corpus-swap order as Open
  build_stats_ = ir::BuildStats();
  corpus_ = std::move(corpus);
  return OpenPrepared(dir, storage);
}

Status Database::OpenPrepared(const std::string& dir,
                              const storage::StorageOptions& storage) {
  manager_ = std::make_unique<ir::SnapshotManager>();
  X100IR_RETURN_IF_ERROR(
      manager_->Open(&corpus_, dir, storage, &build_stats_));
  open_ = true;
  return OkStatus();
}

Status Database::Search(const ir::Query& query, ir::RunType type,
                        const ir::SearchOptions& opts,
                        ir::SearchResult* result) const {
  if (!open_) return InvalidArgument("database is not open");
  std::shared_ptr<const ir::Snapshot> snap = manager_->Acquire();
  if (snap->plain) {
    // Exactly the monolithic index (no delta docs, no tombstones, identity
    // docid map): run the pre-segmentation hot path, byte for byte.
    ir::SearchEngine engine(&snap->segments[0].seg->index());
    Status s = engine.Search(query, type, opts, result);
    if (result != nullptr) result->epoch = snap->epoch;
    return s;
  }
  return ir::SearchSnapshot(*snap, query, type, opts, result);
}

Status Database::AddDocument(const std::vector<uint32_t>& terms,
                             int32_t* docid) {
  if (!open_) return InvalidArgument("database is not open");
  return manager_->AddDocument(terms, docid);
}

Status Database::DeleteDocument(int32_t docid) {
  if (!open_) return InvalidArgument("database is not open");
  return manager_->DeleteDocument(docid);
}

Status Database::StartMerge() {
  if (!open_) return InvalidArgument("database is not open");
  return manager_->StartMerge();
}

Status Database::WaitMerge() {
  if (!open_) return InvalidArgument("database is not open");
  return manager_->WaitMerge();
}

Status Database::Merge() {
  if (!open_) return InvalidArgument("database is not open");
  return manager_->Merge();
}

bool Database::merge_running() const {
  return open_ && manager_->merge_running();
}

uint64_t Database::epoch() const {
  return open_ ? manager_->epoch() : 0;
}

std::shared_ptr<const ir::Snapshot> Database::Acquire() const {
  return open_ ? manager_->Acquire() : nullptr;
}

const ir::InvertedIndex* Database::index() const {
  if (!open_) return nullptr;
  std::shared_ptr<const ir::Snapshot> snap = manager_->Acquire();
  return snap->segments.empty() ? nullptr : &snap->segments[0].seg->index();
}

}  // namespace x100ir::core
