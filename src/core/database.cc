#include "core/database.h"

namespace x100ir::core {

Status Database::Open(const DatabaseOptions& options) {
  open_ = false;
  X100IR_RETURN_IF_ERROR(ir::Corpus::Generate(options.corpus, &corpus_));
  X100IR_RETURN_IF_ERROR(index_.BuildFromCorpus(corpus_, options.dir,
                                                &build_stats_,
                                                options.storage));
  engine_.set_index(&index_);
  open_ = true;
  return OkStatus();
}

Status Database::Search(const ir::Query& query, ir::RunType type,
                        const ir::SearchOptions& opts,
                        ir::SearchResult* result) const {
  if (!open_) return InvalidArgument("database is not open");
  return engine_.Search(query, type, opts, result);
}

}  // namespace x100ir::core
