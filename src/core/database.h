// The engine facade the benches (and any embedder) program against: Open
// generates the deterministic corpus and stands up the segmented index
// (ir::SnapshotManager) over it — building or reusing the compressed base
// segment under options.dir — and Search runs one query against the
// current snapshot.
//
// This is the API seam between the retrieval model (ir/) and the relational
// executor (vec/): later layers (storage/ buffer manager, dist/ partitions)
// slot in behind this interface without touching callers (DESIGN.md §6.1).
//
// Live updates (DESIGN.md §10): AddDocument appends to the in-memory write
// buffer, DeleteDocument tombstones, StartMerge kicks the background
// compaction. Search stays const and thread-safe throughout — every query
// pins one immutable Snapshot for its whole duration, so readers never
// block on writers or on a running merge.
#ifndef X100IR_CORE_DATABASE_H_
#define X100IR_CORE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/corpus.h"
#include "ir/index_builder.h"
#include "ir/search_engine.h"
#include "ir/snapshot.h"

namespace x100ir::core {

struct DatabaseOptions {
  // Index directory. Column files are written here on first build and
  // reused when the corpus fingerprint matches. Empty = in-memory only
  // (the storage-era RunTypes then report FailedPrecondition).
  std::string dir;
  ir::CorpusOptions corpus;
  // Buffer pool / page size / simulated-disk model for the storage runs.
  // Only meaningful with a non-empty dir. One pool serves every segment.
  storage::StorageOptions storage;
};

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Generates the corpus and opens the segmented index over it (adopting a
  // valid manifest under options.dir, else building or reusing the base
  // segment). Safe to call again (rebuilds against the new options).
  Status Open(const DatabaseOptions& options);

  // Opens over a caller-built corpus instead of generating one — the
  // dist/ path: a cluster node adopts its doc-partition slice
  // (Corpus::FromDocTerms over a contiguous global-docid range) and gets
  // the same build-or-reuse, segmented-index, private-buffer-pool stack a
  // generated database gets. The corpus is moved in; the on-disk reuse
  // check keys on its content fingerprint, so a reopened node only
  // rebuilds when its slice actually changed.
  Status OpenWithCorpus(ir::Corpus corpus, const std::string& dir,
                        const storage::StorageOptions& storage);

  // Runs one query against the current snapshot; fails before Open. Const
  // and thread-safe after Open (DESIGN.md §9.1/§10): the query pins the
  // snapshot's segments for its whole duration, so concurrent adds,
  // deletes, and merge commits never change what it observes. Stamps
  // result->epoch with the snapshot's epoch.
  Status Search(const ir::Query& query, ir::RunType type,
                const ir::SearchOptions& opts,
                ir::SearchResult* result) const;

  // Live updates — see ir::SnapshotManager for the contracts.
  Status AddDocument(const std::vector<uint32_t>& terms, int32_t* docid);
  Status DeleteDocument(int32_t docid);
  Status StartMerge();
  Status WaitMerge();
  Status Merge();
  bool merge_running() const;
  uint64_t epoch() const;
  std::shared_ptr<const ir::Snapshot> Acquire() const;

  bool is_open() const { return open_; }
  const ir::Corpus& corpus() const { return corpus_; }
  // The base (oldest) segment's index — the monolithic view every
  // pre-segmentation test and bench programs against. Valid until the next
  // merge commit replaces the segment set; null only when every document
  // has been deleted and merged away.
  const ir::InvertedIndex* index() const;
  const ir::BuildStats& build_stats() const { return build_stats_; }

  // Storage-layer telemetry: buffer pool hit/miss/eviction counters,
  // aggregated across the pool's lock stripes (a snapshot by value — there
  // is no single stats object once the pool is striped). All-zero for
  // in-memory-only databases; has_storage() disambiguates.
  bool has_storage() const {
    return manager_ != nullptr && manager_->pool() != nullptr;
  }
  storage::BufferStats buffer_stats() const {
    return has_storage() ? manager_->pool()->stats() : storage::BufferStats{};
  }
  // Write-path durability counters (DESIGN.md §13). All-zero when the WAL
  // is off or the database is in-memory.
  storage::WalStats wal_stats() const {
    return manager_ != nullptr ? manager_->wal_stats() : storage::WalStats{};
  }
  const storage::SimulatedDisk* disk() const {
    return manager_ != nullptr ? manager_->disk() : nullptr;
  }

 private:
  // Stands up the SnapshotManager over the already-populated corpus_ —
  // the shared tail of Open and OpenWithCorpus.
  Status OpenPrepared(const std::string& dir,
                      const storage::StorageOptions& storage);

  bool open_ = false;
  ir::Corpus corpus_;
  // Owns segments, write buffer, snapshots, and the shared buffer pool.
  // unique_ptr so a re-Open tears the old world down (joining its
  // background merge) before the corpus it borrows is regenerated.
  std::unique_ptr<ir::SnapshotManager> manager_;
  ir::BuildStats build_stats_;
};

}  // namespace x100ir::core

#endif  // X100IR_CORE_DATABASE_H_
