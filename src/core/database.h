// The engine facade the benches (and any embedder) program against: Open
// generates the deterministic corpus, builds or reuses the compressed
// inverted index under options.dir, and wires up the search engine; Search
// runs one query through the vec:: plan for the chosen RunType.
//
// This is the API seam between the retrieval model (ir/) and the relational
// executor (vec/): later layers (storage/ buffer manager, dist/ partitions)
// slot in behind this interface without touching callers (DESIGN.md §6.1).
#ifndef X100IR_CORE_DATABASE_H_
#define X100IR_CORE_DATABASE_H_

#include <string>

#include "common/status.h"
#include "ir/corpus.h"
#include "ir/index_builder.h"
#include "ir/search_engine.h"

namespace x100ir::core {

struct DatabaseOptions {
  // Index directory. Column files are written here on first build and
  // reused when the corpus fingerprint matches. Empty = in-memory only
  // (the storage-era RunTypes then report FailedPrecondition).
  std::string dir;
  ir::CorpusOptions corpus;
  // Buffer pool / page size / simulated-disk model for the storage runs.
  // Only meaningful with a non-empty dir.
  storage::StorageOptions storage;
};

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Generates the corpus and builds-or-reuses the index. Safe to call
  // again (rebuilds against the new options).
  Status Open(const DatabaseOptions& options);

  // Runs one query; fails before Open. Const and thread-safe after Open
  // (DESIGN.md §9.1): the index is immutable, the engine is stateless per
  // query, and the buffer pool is lock-striped — any number of threads may
  // Search one open Database concurrently.
  Status Search(const ir::Query& query, ir::RunType type,
                const ir::SearchOptions& opts,
                ir::SearchResult* result) const;

  bool is_open() const { return open_; }
  const ir::Corpus& corpus() const { return corpus_; }
  const ir::InvertedIndex* index() const { return &index_; }
  const ir::BuildStats& build_stats() const { return build_stats_; }

  // Storage-layer telemetry: buffer pool hit/miss/eviction counters,
  // aggregated across the pool's lock stripes (a snapshot by value — there
  // is no single stats object once the pool is striped). All-zero for
  // in-memory-only databases; has_storage() disambiguates.
  bool has_storage() const { return index_.has_storage(); }
  storage::BufferStats buffer_stats() const {
    return index_.has_storage() ? index_.buffer_manager()->stats()
                                : storage::BufferStats{};
  }
  const storage::SimulatedDisk* disk() const { return index_.disk(); }

 private:
  bool open_ = false;
  ir::Corpus corpus_;
  ir::InvertedIndex index_;
  ir::SearchEngine engine_;
  ir::BuildStats build_stats_;
};

}  // namespace x100ir::core

#endif  // X100IR_CORE_DATABASE_H_
