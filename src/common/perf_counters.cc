#include "common/perf_counters.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace x100ir {

#if defined(__linux__)

namespace {

int OpenCounter(uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // pid=0, cpu=-1: this process, any CPU.
  long fd = syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0);
  return static_cast<int>(fd);
}

uint64_t ReadCounter(int fd) {
  uint64_t value = 0;
  if (fd >= 0 && read(fd, &value, sizeof(value)) != sizeof(value)) value = 0;
  return value;
}

}  // namespace

PerfCounterGroup::PerfCounterGroup() {
  branches_fd_ = OpenCounter(PERF_COUNT_HW_BRANCH_INSTRUCTIONS);
  misses_fd_ = OpenCounter(PERF_COUNT_HW_BRANCH_MISSES);
  if (!Available()) {
    // Partial grants are useless; release whichever half succeeded.
    if (branches_fd_ >= 0) close(branches_fd_);
    if (misses_fd_ >= 0) close(misses_fd_);
    branches_fd_ = -1;
    misses_fd_ = -1;
  }
}

PerfCounterGroup::~PerfCounterGroup() {
  if (branches_fd_ >= 0) close(branches_fd_);
  if (misses_fd_ >= 0) close(misses_fd_);
}

void PerfCounterGroup::Start() {
  if (!Available()) return;
  ioctl(branches_fd_, PERF_EVENT_IOC_RESET, 0);
  ioctl(misses_fd_, PERF_EVENT_IOC_RESET, 0);
  ioctl(branches_fd_, PERF_EVENT_IOC_ENABLE, 0);
  ioctl(misses_fd_, PERF_EVENT_IOC_ENABLE, 0);
}

void PerfCounterGroup::Stop(PerfReading* out) {
  *out = PerfReading();
  if (!Available()) return;
  ioctl(branches_fd_, PERF_EVENT_IOC_DISABLE, 0);
  ioctl(misses_fd_, PERF_EVENT_IOC_DISABLE, 0);
  out->branches = ReadCounter(branches_fd_);
  out->branch_misses = ReadCounter(misses_fd_);
}

#else  // !defined(__linux__)

PerfCounterGroup::PerfCounterGroup() = default;
PerfCounterGroup::~PerfCounterGroup() = default;
void PerfCounterGroup::Start() {}
void PerfCounterGroup::Stop(PerfReading* out) { *out = PerfReading(); }

#endif

}  // namespace x100ir
