// Hardware branch counters via perf_event_open, with graceful degradation:
// in containers / locked-down kernels (perf_event_paranoid, seccomp) the
// syscall fails and Available() returns false — callers then fall back to
// the BranchPredictorSim (see bench_fig3_decompression).
#ifndef X100IR_COMMON_PERF_COUNTERS_H_
#define X100IR_COMMON_PERF_COUNTERS_H_

#include <cstdint>

namespace x100ir {

struct PerfReading {
  uint64_t branches = 0;
  uint64_t branch_misses = 0;

  // Percent of retired branches mispredicted.
  double BranchMissRate() const {
    return branches == 0 ? 0.0
                         : 100.0 * static_cast<double>(branch_misses) /
                               static_cast<double>(branches);
  }
};

class PerfCounterGroup {
 public:
  PerfCounterGroup();
  ~PerfCounterGroup();
  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  // True when the kernel granted both counters at construction.
  bool Available() const { return branches_fd_ >= 0 && misses_fd_ >= 0; }

  // Resets and enables the counters. No-op when unavailable.
  void Start();

  // Disables the counters and stores the deltas since Start(). Zeroes *out*
  // when unavailable.
  void Stop(PerfReading* out);

 private:
  int branches_fd_ = -1;
  int misses_fd_ = -1;
};

}  // namespace x100ir

#endif  // X100IR_COMMON_PERF_COUNTERS_H_
