// Deterministic branch-predictor simulation (DESIGN.md §3.5).
//
// Used by bench_fig3_decompression when perf_event_open is denied (common in
// containers): we replay the decoder's branch trace through a gshare
// predictor — a table of 2-bit saturating counters indexed by the branch
// address hashed with a global taken/not-taken history register — and report
// the miss rate a real front-end would have seen. The table is sized like a
// small-core BTB-era predictor (4K entries, 12-bit history): enough to learn
// loop back-edges and short periodic patterns, helpless against
// data-dependent 50%-random branches, which is exactly the contrast Figure 3
// plots.
#ifndef X100IR_COMMON_BRANCH_SIM_H_
#define X100IR_COMMON_BRANCH_SIM_H_

#include <array>
#include <cstdint>

namespace x100ir {

class BranchPredictorSim {
 public:
  BranchPredictorSim() { table_.fill(1); }  // weakly not-taken

  // Records one dynamic branch at `pc` with actual outcome `taken`.
  // Returns the prediction made *before* seeing the outcome.
  bool Predict(uint64_t pc, bool taken) {
    const uint32_t idx =
        (HashPc(pc) ^ history_) & (kTableSize - 1);
    const bool predicted = table_[idx] >= 2;
    ++predictions_;
    if (predicted != taken) ++misses_;
    // 2-bit saturating counter update.
    if (taken) {
      if (table_[idx] < 3) ++table_[idx];
    } else {
      if (table_[idx] > 0) --table_[idx];
    }
    history_ =
        ((history_ << 1) | static_cast<uint32_t>(taken)) & (kTableSize - 1);
    return predicted;
  }

  uint64_t predictions() const { return predictions_; }
  uint64_t misses() const { return misses_; }

  double MissRatePercent() const {
    return predictions_ == 0
               ? 0.0
               : 100.0 * static_cast<double>(misses_) /
                     static_cast<double>(predictions_);
  }

  void Reset() {
    table_.fill(1);
    history_ = 0;
    predictions_ = 0;
    misses_ = 0;
  }

 private:
  static constexpr uint32_t kHistoryBits = 12;
  static constexpr uint32_t kTableSize = 1u << kHistoryBits;

  static uint32_t HashPc(uint64_t pc) {
    // Fibonacci hash; branch "addresses" in the sims are small constants.
    return static_cast<uint32_t>((pc * 0x9E3779B97F4A7C15ull) >> 40);
  }

  std::array<uint8_t, kTableSize> table_;
  uint32_t history_ = 0;
  uint64_t predictions_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace x100ir

#endif  // X100IR_COMMON_BRANCH_SIM_H_
