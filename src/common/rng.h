// Deterministic xorshift64* PRNG. Benches and the synthetic-corpus builder
// must produce bit-identical streams across platforms and stdlib versions,
// so we avoid <random> entirely.
//
// Thread contract (DESIGN.md §9.1): an Rng is single-owner mutable state —
// one instance per thread or per query, never shared, never global. There
// is deliberately no process-wide stream: hidden shared state would make a
// query's draws depend on what other threads did, so concurrent runs could
// never be bit-identical to their serial oracles (the regression test
// ServerTest.ConcurrentSearchesBitIdenticalToSerial pins exactly that).
// Derive per-query streams from one seed with Fork() instead.
#ifndef X100IR_COMMON_RNG_H_
#define X100IR_COMMON_RNG_H_

#include <cstdint>

namespace x100ir {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(SplitMix64(seed)) {
    // xorshift64* has an all-zero fixed point; SplitMix64(seed) is only zero
    // for one pathological seed, but guard anyway.
    if (state_ == 0) state_ = 0x9E3779B97F4A7C15ull;
  }

  // Next raw 64-bit draw (xorshift64*).
  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  // Uniform in [0, bound); returns 0 for bound == 0. Modulo bias is
  // irrelevant at the bounds used here (<< 2^32) and keeps the stream
  // platform-stable.
  uint64_t NextBounded(uint64_t bound) {
    return bound == 0 ? 0 : Next() % bound;
  }

  // Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  // Deterministic child stream for query/task `ordinal`: the per-query
  // Rng of a service seeded once. Does not consume parent state, so
  // Fork(a) and Fork(b) are order-independent, and the SplitMix64 pass in
  // the constructor decorrelates consecutive ordinals.
  Rng Fork(uint64_t ordinal) const {
    return Rng(state_ ^ (0xA5A5A5A5DEADBEEFull + ordinal));
  }

 private:
  static uint64_t SplitMix64(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  uint64_t state_;
};

}  // namespace x100ir

#endif  // X100IR_COMMON_RNG_H_
