// Per-query deadline + cancellation token (DESIGN.md §9.3). A Deadline is
// created when a query is admitted (so queue wait counts against the
// budget) and borrowed by the plan via SearchOptions::deadline; the engine
// calls Check() at vector-batch granularity, so a stuck query surfaces
// DeadlineExceeded mid-flight with partial stats instead of hanging a
// worker thread.
//
// Thread contract: Check()/expired() may race freely with Cancel() from any
// other thread (the service cancels in-flight queries at shutdown); the
// expiry instant itself is immutable after construction. steady_clock, so
// NTP adjustments can't expire (or resurrect) a query.
#ifndef X100IR_COMMON_DEADLINE_H_
#define X100IR_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <limits>

#include "common/status.h"

namespace x100ir {

class Deadline {
 public:
  // No time limit: Check() only fails after Cancel().
  Deadline() = default;
  // Expires `seconds` from now; seconds <= 0 is already expired.
  explicit Deadline(double seconds)
      : has_deadline_(true),
        deadline_(Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(seconds))) {}
  Deadline(const Deadline&) = delete;
  Deadline& operator=(const Deadline&) = delete;

  // Thread-safe, callable from any thread; sticky.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  // OK while live; Unavailable after Cancel() (the query dies with the
  // service, not with a fake timeout); DeadlineExceeded past the expiry.
  Status Check() const {
    if (cancelled()) return Unavailable("query cancelled");
    if (expired()) return DeadlineExceeded("query deadline exceeded");
    return OkStatus();
  }

  // Seconds until expiry; negative once expired, +inf with no deadline.
  double remaining_seconds() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(deadline_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;

  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  std::atomic<bool> cancelled_{false};
};

}  // namespace x100ir

#endif  // X100IR_COMMON_DEADLINE_H_
