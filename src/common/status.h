// Minimal error-propagation type used across the whole engine. Kept
// header-only so leaf layers (compress, vec) don't need a common .cc
// dependency.
#ifndef X100IR_COMMON_STATUS_H_
#define X100IR_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace x100ir {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kIOError,
  kInternal,
  kUnimplemented,
  kFailedPrecondition,
  kResourceExhausted,
  // A per-query deadline expired (or the query was cancelled) mid-flight.
  kDeadlineExceeded,
  // The operation failed transiently (injected or real fault, service
  // refusing under the degradation ladder) — retrying may succeed. The
  // only code the storage retry loop treats as retryable.
  kUnavailable,
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIOError:
      return "IO_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status IOError(std::string msg) {
  return Status(StatusCode::kIOError, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}

// Fault classification (DESIGN.md §9.4): only Unavailable is transient.
// Everything else — IOError (torn/corrupt page), Internal, ... — is
// permanent and must fail the query instead of burning its retry budget.
inline bool IsTransient(const Status& s) {
  return s.code() == StatusCode::kUnavailable;
}

// Status-or-value return type for factory functions (CompiledExpr::Compile,
// BlockVectorSource::Create, ...). Minimal by design: T must be
// default-constructible and movable, and value() must only be called when
// ok(). Kept here so every layer shares one vocabulary type.
template <typename T>
class StatusOr {
 public:
  // The Status constructor is for error returns only: an OK status here
  // would hand callers ok() == true with a default-constructed value.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr(Status) requires a non-OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  T& value() { return value_; }
  const T& value() const { return value_; }

 private:
  Status status_;
  T value_{};
};

// Early-return helper for Status-returning functions.
#define X100IR_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::x100ir::Status _status = (expr);           \
    if (!_status.ok()) return _status;           \
  } while (0)

}  // namespace x100ir

#endif  // X100IR_COMMON_STATUS_H_
