// Fixed-size worker pool: the execution substrate of server::QueryService
// (admission control — the *bounded* queue — lives there; this queue is
// unbounded by design so Submit never blocks a caller that was already
// admitted) and of any future scatter-gather layer (dist/).
//
// Thread contract: Submit is safe from any thread, including from inside a
// task. Shutdown drains — queued tasks still run — then joins; Submit
// after Shutdown is a caller bug and asserts. Header-only so leaf users
// don't grow a .cc dependency.
#ifndef X100IR_COMMON_THREAD_POOL_H_
#define X100IR_COMMON_THREAD_POOL_H_

#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace x100ir {

class ThreadPool {
 public:
  explicit ThreadPool(uint32_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (uint32_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() { Shutdown(); }
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t size() const { return static_cast<uint32_t>(workers_.size()); }

  void Submit(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      assert(!shutdown_ && "Submit after Shutdown");
      queue_.push_back(std::move(fn));
    }
    cv_.notify_one();
  }

  // Tasks queued so far but not yet picked up by a worker.
  size_t queued() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  // Stops accepting work, runs everything already queued, joins. Idempotent.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
        if (queue_.empty()) return;  // shutdown_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace x100ir

#endif  // X100IR_COMMON_THREAD_POOL_H_
