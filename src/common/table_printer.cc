#include "common/table_printer.h"

#include <algorithm>
#include <utility>

namespace x100ir {
namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if ((c < '0' || c > '9') && c != '.' && c != '-' && c != '+' &&
        c != '%' && c != 'x' && c != 'e') {
      return false;
    }
  }
  return true;
}

void AppendPadded(std::string* out, const std::string& cell, size_t width,
                  bool right_align) {
  size_t pad = width > cell.size() ? width - cell.size() : 0;
  if (right_align) out->append(pad, ' ');
  out->append(cell);
  if (!right_align) out->append(pad, ' ');
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  const size_t ncols = headers_.size();
  std::vector<size_t> widths(ncols);
  std::vector<bool> numeric(ncols, true);
  for (size_t c = 0; c < ncols; ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
      if (!row[c].empty() && !LooksNumeric(row[c])) numeric[c] = false;
    }
  }

  std::string out;
  for (size_t c = 0; c < ncols; ++c) {
    if (c > 0) out += "  ";
    // Headers align with their column: numeric columns are right-aligned.
    AppendPadded(&out, headers_[c], widths[c], numeric[c]);
  }
  out += '\n';
  for (size_t c = 0; c < ncols; ++c) {
    if (c > 0) out += "  ";
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < ncols; ++c) {
      if (c > 0) out += "  ";
      AppendPadded(&out, row[c], widths[c], numeric[c]);
    }
    out += '\n';
  }
  return out;
}

void TablePrinter::Print(std::FILE* out) const {
  std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), out);
}

}  // namespace x100ir
