// Fixed-width ASCII table output for the paper-table reproduction benches.
#ifndef X100IR_COMMON_TABLE_PRINTER_H_
#define X100IR_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace x100ir {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Missing trailing cells render empty; extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  std::string ToString() const;
  void Print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace x100ir

#endif  // X100IR_COMMON_TABLE_PRINTER_H_
