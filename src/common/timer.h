// Wall-clock timing for benches (steady_clock so NTP adjustments can't
// produce negative intervals mid-measurement).
#ifndef X100IR_COMMON_TIMER_H_
#define X100IR_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace x100ir {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace x100ir

#endif  // X100IR_COMMON_TIMER_H_
