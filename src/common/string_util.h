// printf-style std::string formatting plus small presentation helpers.
#ifndef X100IR_COMMON_STRING_UTIL_H_
#define X100IR_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace x100ir {

#if defined(__GNUC__) || defined(__clang__)
#define X100IR_PRINTF_ATTR(fmt_idx, args_idx) \
  __attribute__((format(printf, fmt_idx, args_idx)))
#else
#define X100IR_PRINTF_ATTR(fmt_idx, args_idx)
#endif

inline std::string StrFormatV(const char* fmt, va_list ap) {
  va_list ap_copy;
  va_copy(ap_copy, ap);
  char stack_buf[256];
  int needed = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, ap_copy);
  va_end(ap_copy);
  if (needed < 0) return std::string();
  if (static_cast<size_t>(needed) < sizeof(stack_buf)) {
    return std::string(stack_buf, static_cast<size_t>(needed));
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(&out[0], out.size() + 1, fmt, ap);
  return out;
}

inline std::string StrFormat(const char* fmt, ...) X100IR_PRINTF_ATTR(1, 2);

inline std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::string out = StrFormatV(fmt, ap);
  va_end(ap);
  return out;
}

// "12.3 GB", "45.6 MB", "789 B" — for footprint reporting.
inline std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    value /= 1024.0;
    ++unit;
  }
  return unit == 0 ? StrFormat("%llu B", static_cast<unsigned long long>(bytes))
                   : StrFormat("%.1f %s", value, kUnits[unit]);
}

}  // namespace x100ir

#endif  // X100IR_COMMON_STRING_UTIL_H_
