// Shared top-k threshold channel for scatter-gather search (DESIGN.md
// §11.3): one atomic float per distributed query, monotonically raised
// toward the global k-th-best score. Every shard of a doc-partitioned
// query publishes its local k-th-best-so-far (each shard's heap holds k
// real documents with exact final scores, so its threshold is a valid
// lower bound on the global k-th best), and every shard reads the channel
// at vector-batch boundaries to floor its MaxScore pruning threshold —
// a late or slow shard prunes with the best bound any peer has proven,
// instead of rediscovering it from -inf.
//
// Memory-ordering argument: the channel carries no payload besides the
// bound itself and the bound is monotone non-decreasing, so every access
// can be memory_order_relaxed. A stale read returns some *earlier*
// published bound (or the initial -inf), which is still a correct lower
// bound — the reader merely prunes less than it could. A lost CAS race in
// RaiseTo means another thread published a value; the loop re-reads and
// either finds its own candidate no longer an improvement (fine: the
// channel is already at least that tight) or retries. Atomicity rules out
// torn floats; no acquire/release pairing is needed because no other
// memory is published through the channel.
#ifndef X100IR_COMMON_SHARED_THETA_H_
#define X100IR_COMMON_SHARED_THETA_H_

#include <atomic>
#include <limits>

namespace x100ir {

class SharedTheta {
 public:
  SharedTheta() = default;
  SharedTheta(const SharedTheta&) = delete;
  SharedTheta& operator=(const SharedTheta&) = delete;

  // Current global lower bound on the k-th-best score; -inf until any
  // shard's heap fills. Thread-safe, wait-free.
  float Load() const { return theta_.load(std::memory_order_relaxed); }

  // Fetch-max: raises the bound to `s` if it improves it. Publishing -inf
  // (an unfilled heap's threshold) is a natural no-op, so shards can
  // publish unconditionally. Thread-safe, lock-free.
  void RaiseTo(float s) {
    float cur = theta_.load(std::memory_order_relaxed);
    while (s > cur && !theta_.compare_exchange_weak(
                          cur, s, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<float> theta_{-std::numeric_limits<float>::infinity()};
};

}  // namespace x100ir

#endif  // X100IR_COMMON_SHARED_THETA_H_
