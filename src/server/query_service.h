// Concurrent query service over one open core::Database (DESIGN.md §9):
// a fixed worker pool behind a *bounded* admission queue, per-query
// deadlines and retry budgets, and a graceful-degradation ladder driven by
// the observed fault rate. The Database is immutable and its read path
// thread-safe (§9.1), so the service adds exactly the operational layer —
// admission, scheduling, classification, shedding — and no query-time
// locking of its own.
//
// Admission (§9.5): Submit either enqueues the query or refuses it
// *immediately* with a classified Status — ResourceExhausted when the
// bounded queue is full (overload shedding: reject new arrivals rather
// than grow latency without bound) or Unavailable when the degradation
// ladder has reached Refusing. An admitted query's completion callback is
// always invoked, exactly once, from a worker thread.
//
// Every finished query lands in exactly one outcome class:
//   OK                 — full, correct result (bit-identical to a serial
//                        fault-free run of the same request)
//   DeadlineExceeded   — deadline expired mid-flight; partial stats only
//   ResourceExhausted  — shed at admission (queue full / pool too small)
//   Unavailable        — refused by the ladder, cancelled at shutdown, or
//                        transient faults outlasted every retry budget
//   anything else      — permanent failure (torn page -> IOError, bad
//                        request -> InvalidArgument); never retried
//
// Degradation ladder (§9.5): a sliding window over recent outcomes
// estimates the transient-fault rate. Normal -> Degraded remaps the
// storage runs to the materialized quantized-score column (kBm25TCMQ8 —
// the least I/O per query, so a sick disk is touched as little as
// possible); Degraded -> Refusing sheds everything except a 1-in-K probe
// stream whose successes walk the service back down the ladder. Every
// transition and refusal is observable in ServiceStats.
#ifndef X100IR_SERVER_QUERY_SERVICE_H_
#define X100IR_SERVER_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/deadline.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/database.h"
#include "ir/search_engine.h"
#include "server/result_cache.h"

namespace x100ir::server {

// Where the ladder currently stands. Transitions are logged in stats, not
// announced: callers observe mode() or the per-response degraded flag.
enum class ServiceMode : uint8_t {
  kNormal = 0,
  kDegraded = 1,   // storage runs remapped to the materialized q8 column
  kRefusing = 2,   // only 1-in-probe_interval probes admitted
};

inline const char* ServiceModeName(ServiceMode m) {
  switch (m) {
    case ServiceMode::kNormal:
      return "normal";
    case ServiceMode::kDegraded:
      return "degraded";
    case ServiceMode::kRefusing:
      return "refusing";
  }
  return "unknown";
}

struct QueryServiceOptions {
  // Worker threads executing queries (0 -> 1).
  uint32_t num_threads = 4;
  // Bound on queries admitted but not yet finished (queued + running).
  // Submissions past it are shed with ResourceExhausted.
  uint32_t max_pending = 64;
  // Deadline applied when a request does not carry its own; 0 = none.
  double default_deadline_seconds = 0.0;
  // Whole-query re-runs after the storage layer's page-level retries are
  // exhausted (each re-run is a fresh fault draw; see fault_injection.h).
  uint32_t retry_budget = 1;
  // Real (wall-clock) backoff before a service-level retry, jittered by
  // the query's private rng; doubles per attempt.
  double retry_backoff_seconds = 0.5e-3;
  // Seed of the service's root Rng; query q draws from Fork(q's ordinal),
  // so per-query streams are reproducible and order-independent (§9.1).
  uint64_t rng_seed = 0x5EEDBA5Eull;

  // --- Degradation ladder (§9.5) ---
  // Sliding outcome window the fault-rate estimate is computed over.
  uint32_t fault_window = 64;
  // Fault fraction at which Normal escalates to Degraded.
  double degrade_threshold = 0.25;
  // Fault fraction at which Degraded escalates to Refusing.
  double refuse_threshold = 0.60;
  // In Refusing, every Nth submission is admitted as a probe; its outcome
  // feeds the window, so recovered storage de-escalates the ladder.
  uint32_t probe_interval = 8;

  // Result cache entries (0 = disabled). A repeated request (same run,
  // normalized term set, k, and scoring knobs) is answered synchronously
  // from the cache without admission — no queue slot, no worker, no I/O.
  // Entries are tagged with the snapshot epoch; any live update (add,
  // delete, merge commit) invalidates the whole cache (result_cache.h).
  uint32_t result_cache_entries = 0;
};

struct QueryRequest {
  ir::Query query;
  ir::RunType run = ir::RunType::kBm25;
  ir::SearchOptions opts;  // opts.deadline/rng_seed are overwritten by the
                           // service (it owns both per-query resources)
  // Per-request deadline; 0 falls back to default_deadline_seconds.
  double deadline_seconds = 0.0;
};

struct QueryResponse {
  Status status;            // the outcome classification (header comment)
  ir::SearchResult result;  // valid iff status.ok(); partial stats on
                            // DeadlineExceeded
  ir::RunType executed_run = ir::RunType::kBm25;  // after any remap
  bool degraded = false;    // executed against the degraded (q8) column
  uint32_t retries = 0;     // service-level re-runs this query consumed
};

// Monotonic service counters (all since Start). submitted = cache_hits +
// admitted + shed_queue_full + refused_unavailable; admitted = the sum of
// the five outcome rows once Drain() has run. Cache hits are served at
// submission and never admitted, so they appear in no outcome row.
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed_queue_full = 0;      // ResourceExhausted at admission
  uint64_t refused_unavailable = 0;  // ladder refusals at admission
  uint64_t ok = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t unavailable = 0;          // retries exhausted / cancelled
  uint64_t failed = 0;               // permanent (IOError etc.)
  uint64_t retries = 0;              // service-level re-runs performed
  uint64_t degraded_queries = 0;     // executed with a remapped run
  uint64_t probes_admitted = 0;      // admitted while Refusing
  uint64_t mode_transitions = 0;     // ladder moves (either direction)
  // Result cache (all zero when result_cache_entries == 0).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;  // whole-cache drops on epoch change
  // Write-path durability, mirrored from the database's WAL (zero when the
  // WAL is off): appends framed, fsyncs issued, and the largest number of
  // records one group-commit fsync covered — the amortization the ingest
  // bench gates on, surfaced here so an operator can see it live.
  uint64_t wal_appends = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t wal_group_commit_batch_max = 0;
  ServiceMode mode = ServiceMode::kNormal;
};

class QueryService {
 public:
  QueryService() = default;
  ~QueryService() { Stop(); }
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // `db` is borrowed, must be open, and must outlive the service.
  Status Start(const core::Database* db, const QueryServiceOptions& opts);

  // Admission: OK means `done` will be invoked exactly once — from a
  // worker thread after execution, or synchronously from Submit itself on
  // a result-cache hit; any error means the query was NOT enqueued and
  // `done` will never run (the error itself is the response).
  // Thread-safe; callable from any thread, including from callbacks.
  Status Submit(const QueryRequest& request,
                std::function<void(QueryResponse)> done);

  // Blocking convenience: Submit + wait. Admission failures come back as
  // the response status with zero retries.
  QueryResponse Execute(const QueryRequest& request);

  // Waits until every admitted query has completed. Does not block new
  // Submits — callers wanting a quiescent point stop submitting first.
  void Drain();

  // Cancels in-flight deadlines, drains, joins the workers. Idempotent.
  // Queries still queued run to completion (their deadline is cancelled,
  // so they finish Unavailable — the service dies, queries don't hang).
  void Stop();

  bool running() const { return pool_ != nullptr; }
  ServiceMode mode() const {
    return mode_.load(std::memory_order_relaxed);
  }
  ServiceStats stats() const;

 private:
  struct InFlight {
    Deadline deadline;
    InFlight() = default;
    explicit InFlight(double seconds) : deadline(seconds) {}
  };

  void RunQuery(QueryRequest request, uint64_t ordinal,
                std::shared_ptr<InFlight> flight,
                std::function<void(QueryResponse)> done);
  void RecordOutcome(bool fault);
  ir::RunType EffectiveRun(ir::RunType requested, bool* remapped) const;

  const core::Database* db_ = nullptr;
  QueryServiceOptions opts_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Rng> root_rng_;  // only Fork()ed, never advanced
  std::unique_ptr<ResultCache> cache_;  // null when disabled

  // Admission + drain bookkeeping.
  std::atomic<uint64_t> pending_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  // Live deadlines, for Stop()'s cancellation sweep. Entries are appended
  // at admission and pruned opportunistically once their query finished.
  std::mutex flights_mu_;
  std::vector<std::weak_ptr<InFlight>> flights_;

  // Degradation ladder state: a ring of recent outcome bits (1 = fault)
  // under its own mutex (it is touched once per query, not per vector).
  std::mutex window_mu_;
  std::vector<uint8_t> window_;
  uint32_t window_pos_ = 0;
  uint32_t window_filled_ = 0;
  uint32_t window_faults_ = 0;
  std::atomic<ServiceMode> mode_{ServiceMode::kNormal};

  // Counters (relaxed atomics; stats() snapshots them).
  std::atomic<uint64_t> submitted_{0}, admitted_{0}, shed_{0}, refused_{0};
  std::atomic<uint64_t> ok_{0}, deadline_exceeded_{0}, unavailable_{0},
      failed_{0};
  std::atomic<uint64_t> retries_{0}, degraded_queries_{0}, probes_{0},
      transitions_{0};
};

}  // namespace x100ir::server

#endif  // X100IR_SERVER_QUERY_SERVICE_H_
