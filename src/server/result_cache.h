// Bounded LRU cache of full query responses, keyed on the complete result
// surface of a request: run type, normalized term set, k, and every
// SearchOptions knob that can change what Search returns (BM25 parameters,
// path selection, two-pass cutoff). Vector size and rng seed are *not* in
// the key — results are bit-identical across them by the engine's
// determinism contract, which is exactly what makes caching sound.
//
// Epoch discipline (DESIGN.md §10): every entry is tagged with the snapshot
// epoch its result was computed at, and the cache as a whole carries one
// current-epoch tag. A lookup under a newer epoch (a document was added,
// deleted, or a merge committed since) drops the whole cache — any mutation
// can change any result, and epochs are global, so per-entry invalidation
// buys nothing. An insert whose result is older than the cache's epoch is
// refused: a query that raced a commit must not publish its stale answer.
//
// Thread-safe; all counters monotonic since construction.
#ifndef X100IR_SERVER_RESULT_CACHE_H_
#define X100IR_SERVER_RESULT_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/search_engine.h"

namespace x100ir::server {

struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;      // LRU capacity evictions
  uint64_t invalidations = 0;  // whole-cache drops on epoch change
};

// Serializes the result-relevant parts of a request into the cache key.
// Terms are sorted and deduplicated — the engine does the same, so query
// [5, 3, 5] and query [3, 5] share an entry.
inline std::string ResultCacheKey(const ir::Query& query, ir::RunType run,
                                  const ir::SearchOptions& opts) {
  std::vector<uint32_t> terms = query.terms;
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  std::string key;
  key.reserve(24 + terms.size() * sizeof(uint32_t));
  auto append = [&key](const void* p, size_t n) {
    key.append(static_cast<const char*>(p), n);
  };
  const uint8_t run_byte = static_cast<uint8_t>(run);
  append(&run_byte, 1);
  append(&opts.k, sizeof(opts.k));
  append(&opts.bm25.k1, sizeof(opts.bm25.k1));
  append(&opts.bm25.b, sizeof(opts.bm25.b));
  const uint8_t flags = (opts.streaming_and ? 1 : 0) |
                        (opts.maxscore_bm25 ? 2 : 0);
  append(&flags, 1);
  append(&opts.twopass_df_cutoff, sizeof(opts.twopass_df_cutoff));
  append(terms.data(), terms.size() * sizeof(uint32_t));
  return key;
}

class ResultCache {
 public:
  explicit ResultCache(uint32_t capacity) : capacity_(capacity) {}
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Looks `key` up under the caller's current epoch. An epoch newer than
  // the cache's tag first drops every entry (counted as one invalidation).
  // A hit copies the stored result into *out and refreshes LRU recency.
  bool Lookup(const std::string& key, uint64_t current_epoch,
              ir::SearchResult* out) {
    std::lock_guard<std::mutex> lock(mu_);
    SyncEpochLocked(current_epoch);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    *out = it->second->second;
    ++stats_.hits;
    return true;
  }

  // Stores a successful result computed at `result_epoch`. Refused (a
  // no-op) when the cache has already observed a newer epoch, or when
  // capacity is zero. Evicts the least recently used entry past capacity.
  void Insert(const std::string& key, uint64_t result_epoch,
              const ir::SearchResult& result) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    SyncEpochLocked(result_epoch);
    if (result_epoch < epoch_) return;  // raced a commit: stale, drop it
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second->second = result;
      return;
    }
    lru_.emplace_front(key, result);
    map_[key] = lru_.begin();
    if (map_.size() > capacity_) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
      ++stats_.evictions;
    }
  }

  uint64_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

  ResultCacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  void SyncEpochLocked(uint64_t epoch) {
    if (epoch <= epoch_) return;
    if (!map_.empty()) {
      map_.clear();
      lru_.clear();
      ++stats_.invalidations;
    }
    epoch_ = epoch;
  }

  const uint32_t capacity_;
  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
  std::list<std::pair<std::string, ir::SearchResult>> lru_;  // front = MRU
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, ir::SearchResult>>::
                         iterator>
      map_;
  ResultCacheStats stats_;
};

}  // namespace x100ir::server

#endif  // X100IR_SERVER_RESULT_CACHE_H_
