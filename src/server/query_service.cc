#include "server/query_service.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/string_util.h"

namespace x100ir::server {

Status QueryService::Start(const core::Database* db,
                           const QueryServiceOptions& opts) {
  if (running()) return FailedPrecondition("query service already running");
  if (db == nullptr || !db->is_open()) {
    return InvalidArgument("query service needs an open database");
  }
  if (opts.max_pending == 0) {
    return InvalidArgument("max_pending must be > 0 (everything would shed)");
  }
  if (opts.degrade_threshold > opts.refuse_threshold) {
    return InvalidArgument(
        "degrade_threshold must not exceed refuse_threshold");
  }
  db_ = db;
  opts_ = opts;
  if (opts_.fault_window == 0) opts_.fault_window = 1;
  if (opts_.probe_interval == 0) opts_.probe_interval = 1;
  root_rng_ = std::make_unique<Rng>(opts_.rng_seed);
  cache_ = opts_.result_cache_entries > 0
               ? std::make_unique<ResultCache>(opts_.result_cache_entries)
               : nullptr;
  window_.assign(opts_.fault_window, 0);
  window_pos_ = window_filled_ = window_faults_ = 0;
  mode_.store(ServiceMode::kNormal, std::memory_order_relaxed);
  pool_ = std::make_unique<ThreadPool>(opts_.num_threads);
  return OkStatus();
}

Status QueryService::Submit(const QueryRequest& request,
                            std::function<void(QueryResponse)> done) {
  if (!running()) return FailedPrecondition("query service is not running");
  if (done == nullptr) return InvalidArgument("null completion callback");
  const uint64_t ordinal =
      submitted_.fetch_add(1, std::memory_order_relaxed);

  // Result cache first — even ahead of the ladder: a hit touches no
  // storage, so serving it costs a refusing service nothing and sheds a
  // whole query's worth of load from the sick device.
  if (cache_ != nullptr) {
    QueryResponse hit;
    if (cache_->Lookup(
            ResultCacheKey(request.query, request.run, request.opts),
            db_->epoch(), &hit.result)) {
      hit.status = OkStatus();
      hit.executed_run = request.run;
      done(std::move(hit));
      return OkStatus();
    }
  }

  // Ladder refusal next: a refusing service sheds load *before* the
  // capacity check, admitting only the probe stream that can heal it.
  if (mode() == ServiceMode::kRefusing) {
    if (ordinal % opts_.probe_interval != 0) {
      refused_.fetch_add(1, std::memory_order_relaxed);
      return Unavailable(
          "service is refusing queries (observed fault rate above the "
          "refuse threshold); retry later");
    }
    probes_.fetch_add(1, std::memory_order_relaxed);
  }

  // Bounded admission: CAS pending_ up only while below the bound, so a
  // burst of concurrent Submits can never overshoot it.
  uint64_t cur = pending_.load(std::memory_order_relaxed);
  do {
    if (cur >= opts_.max_pending) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return ResourceExhausted(StrFormat(
          "admission queue full (%llu queries pending, bound %u)",
          static_cast<unsigned long long>(cur), opts_.max_pending));
    }
  } while (!pending_.compare_exchange_weak(cur, cur + 1,
                                           std::memory_order_relaxed));
  admitted_.fetch_add(1, std::memory_order_relaxed);

  // The deadline starts at admission, so queue wait burns query budget —
  // an overloaded service times queries out instead of serving stale work.
  const double deadline_s = request.deadline_seconds > 0.0
                                ? request.deadline_seconds
                                : opts_.default_deadline_seconds;
  auto flight = deadline_s > 0.0 ? std::make_shared<InFlight>(deadline_s)
                                 : std::make_shared<InFlight>();
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    // Opportunistic prune: drop entries whose query already finished.
    if (flights_.size() >= 2 * opts_.max_pending) {
      std::vector<std::weak_ptr<InFlight>> live;
      live.reserve(flights_.size());
      for (auto& w : flights_) {
        if (!w.expired()) live.push_back(std::move(w));
      }
      flights_.swap(live);
    }
    flights_.push_back(flight);
  }

  pool_->Submit([this, req = request, ordinal, flight = std::move(flight),
                 cb = std::move(done)]() mutable {
    RunQuery(std::move(req), ordinal, std::move(flight), std::move(cb));
  });
  return OkStatus();
}

QueryResponse QueryService::Execute(const QueryRequest& request) {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  QueryResponse out;
  Status admitted = Submit(request, [&](QueryResponse resp) {
    std::lock_guard<std::mutex> lock(mu);
    out = std::move(resp);
    ready = true;
    cv.notify_one();
  });
  if (!admitted.ok()) {
    out.status = admitted;
    out.executed_run = request.run;
    return out;
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ready; });
  return out;
}

ir::RunType QueryService::EffectiveRun(ir::RunType requested,
                                       bool* remapped) const {
  *remapped = false;
  if (mode() == ServiceMode::kNormal) return requested;
  // Degraded (and probes while Refusing): storage runs fall back to the
  // materialized quantized-score column — the fewest cold bytes per query,
  // so the sick device sees the least possible traffic. In-memory runs
  // never touch the pool and pass through unchanged.
  switch (requested) {
    case ir::RunType::kBm25T:
    case ir::RunType::kBm25TC:
    case ir::RunType::kBm25TCM:
      *remapped = true;
      return ir::RunType::kBm25TCMQ8;
    default:
      return requested;
  }
}

void QueryService::RunQuery(QueryRequest request, uint64_t ordinal,
                            std::shared_ptr<InFlight> flight,
                            std::function<void(QueryResponse)> done) {
  // The query's private random stream: forked from the root seed by
  // ordinal, so it is reproducible and independent of scheduling (§9.1).
  Rng rng = root_rng_->Fork(ordinal);
  QueryResponse resp;
  double backoff = opts_.retry_backoff_seconds;
  for (uint32_t attempt = 0;; ++attempt) {
    bool remapped = false;
    const ir::RunType run = EffectiveRun(request.run, &remapped);
    ir::SearchOptions opts = request.opts;
    opts.deadline = &flight->deadline;
    opts.rng_seed = rng.Next();
    resp.result = ir::SearchResult();
    resp.status = db_->Search(request.query, run, opts, &resp.result);
    resp.executed_run = run;
    resp.degraded = remapped;
    // Service-level classified retry: only transient failures, only while
    // budget and deadline remain. Each re-run re-reads every page (nothing
    // poisoned entered the pool), with a real jittered backoff so
    // concurrent retries don't stampede the same device.
    if (!IsTransient(resp.status) || attempt >= opts_.retry_budget ||
        flight->deadline.cancelled() || flight->deadline.expired()) {
      break;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    resp.retries = attempt + 1;
    const double sleep_s = backoff * (0.5 + rng.NextDouble());
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
    backoff *= 2.0;
  }
  if (resp.degraded) {
    degraded_queries_.fetch_add(1, std::memory_order_relaxed);
  }

  // Outcome classification — exactly one bucket per admitted query.
  bool fault = false;
  switch (resp.status.code()) {
    case StatusCode::kOk:
      ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kUnavailable:
      unavailable_.fetch_add(1, std::memory_order_relaxed);
      fault = true;
      break;
    default:
      failed_.fetch_add(1, std::memory_order_relaxed);
      // Permanent I/O failures (torn pages) are storage sickness and feed
      // the ladder; caller errors (InvalidArgument) do not.
      fault = resp.status.code() == StatusCode::kIOError;
      break;
  }
  RecordOutcome(fault);

  // Cache only full-fidelity successes: a degraded (remapped-run) result
  // must not be replayed to a healthy-mode request for the original run.
  // Insert validates the result's snapshot epoch against the cache's, so a
  // query that raced a commit never publishes its stale answer.
  if (cache_ != nullptr && resp.status.ok() && !resp.degraded) {
    cache_->Insert(ResultCacheKey(request.query, request.run, request.opts),
                   resp.result.epoch, resp.result);
  }

  done(std::move(resp));
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    pending_.fetch_sub(1, std::memory_order_relaxed);
  }
  drain_cv_.notify_all();
}

void QueryService::RecordOutcome(bool fault) {
  ServiceMode target;
  {
    std::lock_guard<std::mutex> lock(window_mu_);
    if (window_filled_ == window_.size()) {
      window_faults_ -= window_[window_pos_];
    } else {
      ++window_filled_;
    }
    window_[window_pos_] = fault ? 1 : 0;
    window_faults_ += window_[window_pos_];
    window_pos_ = (window_pos_ + 1) % static_cast<uint32_t>(window_.size());
    // Don't judge a nearly-empty window: a single early fault would refuse
    // the whole service. Wait for a quarter of it (at least 4 outcomes).
    const uint32_t min_sample = std::max<uint32_t>(
        4, static_cast<uint32_t>(window_.size()) / 4);
    if (window_filled_ < min_sample) return;
    const double frac = static_cast<double>(window_faults_) /
                        static_cast<double>(window_filled_);
    target = frac >= opts_.refuse_threshold    ? ServiceMode::kRefusing
             : frac >= opts_.degrade_threshold ? ServiceMode::kDegraded
                                               : ServiceMode::kNormal;
  }
  ServiceMode prev = mode_.exchange(target, std::memory_order_relaxed);
  if (prev != target) {
    transitions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void QueryService::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_relaxed) == 0;
  });
}

void QueryService::Stop() {
  if (!running()) return;
  // Cancel every live deadline: queued/running queries observe it at their
  // next checkpoint and finish Unavailable("query cancelled") instead of
  // holding shutdown hostage to a slow plan.
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    for (auto& w : flights_) {
      if (auto f = w.lock()) f->deadline.Cancel();
    }
  }
  Drain();
  pool_->Shutdown();
  pool_.reset();
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    flights_.clear();
  }
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.shed_queue_full = shed_.load(std::memory_order_relaxed);
  s.refused_unavailable = refused_.load(std::memory_order_relaxed);
  s.ok = ok_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.unavailable = unavailable_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.degraded_queries = degraded_queries_.load(std::memory_order_relaxed);
  s.probes_admitted = probes_.load(std::memory_order_relaxed);
  s.mode_transitions = transitions_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) {
    const ResultCacheStats cs = cache_->stats();
    s.cache_hits = cs.hits;
    s.cache_misses = cs.misses;
    s.cache_evictions = cs.evictions;
    s.cache_invalidations = cs.invalidations;
  }
  if (db_ != nullptr) {
    const storage::WalStats ws = db_->wal_stats();
    s.wal_appends = ws.appends;
    s.wal_fsyncs = ws.fsyncs;
    s.wal_group_commit_batch_max = ws.batch_records_max;
  }
  s.mode = mode();
  return s;
}

}  // namespace x100ir::server
