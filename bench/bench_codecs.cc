// Micro-benchmarks (google-benchmark) for the compression codecs: decode
// bandwidth by scheme/width/exception rate, range decode (skipping), and
// encode cost.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "compress/codec.h"
#include "compress/pdict.h"
#include "compress/pfor.h"
#include "compress/pfor_delta.h"

namespace x100ir::compress {
namespace {

constexpr uint32_t kN = 1 << 20;

std::vector<int32_t> DataWithRate(int bits, double rate, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> v(kN);
  uint32_t max_code = (1u << bits) - 1;
  for (auto& x : v) {
    x = rng.NextBernoulli(rate)
            ? static_cast<int32_t>(max_code) + 1 +
                  static_cast<int32_t>(rng.NextBounded(1 << 16))
            : static_cast<int32_t>(rng.NextBounded(max_code));
  }
  return v;
}

std::vector<int32_t> SortedDocids(uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> v(kN);
  int32_t cur = 0;
  for (auto& x : v) {
    cur += 1 + static_cast<int32_t>(rng.NextBounded(30));
    x = cur;
  }
  return v;
}

void BM_PforDecode(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const double rate = static_cast<double>(state.range(1)) / 100.0;
  auto values = DataWithRate(bits, rate, 17);
  EncodeOptions opts;
  opts.bit_width = bits;
  std::vector<uint8_t> block;
  PforEncode(values.data(), kN, opts, &block, nullptr);
  BlockDecoder dec;
  dec.Init(block.data(), block.size());
  std::vector<int32_t> out(kN);
  for (auto _ : state) {
    dec.DecodeAll(out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_PforDecode)
    ->ArgsProduct({{4, 8, 16}, {0, 1, 10, 50}});

void BM_PforDecodeNaive(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const double rate = static_cast<double>(state.range(1)) / 100.0;
  auto values = DataWithRate(bits, rate, 19);
  EncodeOptions opts;
  opts.bit_width = bits;
  opts.naive_layout = true;
  std::vector<uint8_t> block;
  PforEncode(values.data(), kN, opts, &block, nullptr);
  BlockDecoder dec;
  dec.Init(block.data(), block.size());
  std::vector<int32_t> out(kN);
  for (auto _ : state) {
    dec.DecodeNaive(out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_PforDecodeNaive)
    ->ArgsProduct({{8}, {0, 1, 10, 50}});

void BM_PforDeltaDecode(benchmark::State& state) {
  auto docids = SortedDocids(23);
  EncodeOptions opts;
  opts.bit_width = static_cast<int>(state.range(0));
  std::vector<uint8_t> block;
  PforDeltaEncode(docids.data(), kN, opts, &block, nullptr);
  BlockDecoder dec;
  dec.Init(block.data(), block.size());
  std::vector<int32_t> out(kN);
  for (auto _ : state) {
    dec.DecodeAll(out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_PforDeltaDecode)->Arg(4)->Arg(8)->Arg(16);

// Fine-granularity skipping: decode a small window from the middle of a
// block via the entry-point section ("especially useful during merging of
// inverted lists").
void BM_RangeDecodeSkip(benchmark::State& state) {
  auto docids = SortedDocids(29);
  EncodeOptions opts;
  opts.bit_width = 8;
  std::vector<uint8_t> block;
  PforDeltaEncode(docids.data(), kN, opts, &block, nullptr);
  BlockDecoder dec;
  dec.Init(block.data(), block.size());
  const auto len = static_cast<uint32_t>(state.range(0));
  std::vector<int32_t> out(len);
  Rng rng(31);
  for (auto _ : state) {
    auto pos = static_cast<uint32_t>(rng.NextBounded(kN - len));
    dec.Decode(pos, len, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * len * 4);
}
BENCHMARK(BM_RangeDecodeSkip)->Arg(128)->Arg(1024)->Arg(16384);

void BM_PdictDecode(benchmark::State& state) {
  Rng rng(37);
  std::vector<int32_t> values(kN);
  for (auto& v : values) {
    v = static_cast<int32_t>(rng.NextBounded(64)) * 9973;
  }
  std::vector<uint8_t> block;
  PdictEncode(values.data(), kN, {}, &block, nullptr);
  BlockDecoder dec;
  dec.Init(block.data(), block.size());
  std::vector<int32_t> out(kN);
  for (auto _ : state) {
    dec.DecodeAll(out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_PdictDecode);

void BM_PforEncode(benchmark::State& state) {
  auto values = DataWithRate(8, 0.02, 41);
  std::vector<uint8_t> block;
  for (auto _ : state) {
    EncodeOptions opts;
    opts.bit_width = static_cast<int>(state.range(0));  // 0 = auto select
    PforEncode(values.data(), kN, opts, &block, nullptr);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetBytesProcessed(state.iterations() * kN * 4);
}
BENCHMARK(BM_PforEncode)->Arg(0)->Arg(8);

}  // namespace
}  // namespace x100ir::compress

BENCHMARK_MAIN();
