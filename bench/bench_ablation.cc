// Ablations of ColumnBM design choices called out in DESIGN.md §8:
//   1. Page (disk block) size — "the granularity of disk accesses is in
//      blocks of several megabytes, to optimize for fast sequential I/O":
//      cold query cost vs page size. Pages are a read-time knob of the
//      buffer pool, so the sweep reopens the same on-disk index with
//      different page sizes — no rebuild.
//   2. Buffer pool capacity: hit rate / simulated I/O as the pool shrinks
//      below the working set.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "ir/query_gen.h"
#include "ir/search_engine.h"

namespace x100ir {
namespace {

// A smaller private collection: the sweeps run hundreds of cold queries
// per configuration.
core::DatabaseOptions AblationOptions() {
  core::DatabaseOptions opts;
  opts.dir = bench::BenchDir() + "/ablation";
  opts.corpus = bench::BenchCorpusOptions();
  opts.corpus.num_docs = std::min(opts.corpus.num_docs, 20000u);
  opts.corpus.num_topics = 20;
  opts.corpus.relevant_docs_per_topic = 60;
  return opts;
}

int Run() {
  std::printf("=== ColumnBM ablations: page size & buffer pool ===\n\n");

  core::DatabaseOptions base = AblationOptions();
  ir::QueryGenOptions qopts = bench::BenchQueryOptions();
  qopts.num_efficiency_queries = 200;

  // ---- 1. Page size sweep (cold BM25TC). ------------------------------
  std::printf("-- page size (cold BM25TC, %u queries) --\n",
              qopts.num_efficiency_queries);
  TablePrinter page_table({"page", "cold avg (ms)", "I/O seeks/query",
                           "I/O bytes/query"});
  for (uint32_t page_kb : {16u, 64u, 256u, 1024u}) {
    core::DatabaseOptions opts = base;
    opts.storage.page_bytes = page_kb << 10;
    core::Database db;
    bench::CheckOk(db.Open(opts), "open database");
    ir::QueryGenerator gen(db.corpus(), qopts);
    auto queries = gen.EfficiencyQueries();
    ir::SearchOptions sopts;
    ir::SearchResult result;
    double total = 0.0;
    const uint64_t seeks_before = db.disk()->seeks();
    const uint64_t bytes_before = db.disk()->total_bytes();
    for (const auto& q : queries) {
      // Cold means *this run's* columns are cold: evict exactly the two
      // files BM25TC scans, not the whole pool.
      bench::CheckOk(bench::EvictRunColumns(db, ir::RunType::kBm25TC),
                     "evict");
      bench::CheckOk(db.Search(q, ir::RunType::kBm25TC, sopts, &result),
                     "search");
      total += result.TotalSeconds();
    }
    const double n = static_cast<double>(queries.size());
    page_table.AddRow(
        {StrFormat("%u KB", page_kb), StrFormat("%.3f", total * 1e3 / n),
         StrFormat("%.1f",
                   static_cast<double>(db.disk()->seeks() - seeks_before) /
                       n),
         HumanBytes(static_cast<uint64_t>(
             static_cast<double>(db.disk()->total_bytes() - bytes_before) /
             n))});
  }
  page_table.Print();
  std::printf(
      "shape: small pages pay a positioning charge per touched page; large "
      "pages read bytes a query never uses. The paper picks multi-MB "
      "blocks because RAID makes transfer cheap relative to positioning.\n"
      "\n");

  // ---- 2. Buffer pool capacity sweep (hot-loop BM25TC). ----------------
  std::printf("-- buffer pool capacity (hot-loop BM25TC, %u queries) --\n",
              qopts.num_efficiency_queries);
  TablePrinter pool_table({"pool", "hit rate", "sim I/O ms/query",
                           "evictions"});
  for (uint64_t pool_kb : {64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
    core::DatabaseOptions opts = base;
    opts.storage.page_bytes = 64u << 10;
    opts.storage.pool_bytes = pool_kb << 10;
    core::Database db;
    bench::CheckOk(db.Open(opts), "open database");
    ir::QueryGenerator gen(db.corpus(), qopts);
    auto queries = gen.EfficiencyQueries();
    ir::SearchOptions sopts;
    ir::SearchResult result;
    // Two passes: the second measures steady state. A pool smaller than
    // one page's pinned working set cannot run at all — itself an
    // informative row.
    bool too_small = false;
    for (const auto& q : queries) {
      Status s = db.Search(q, ir::RunType::kBm25TC, sopts, &result);
      if (!s.ok()) {
        too_small = true;
        break;
      }
    }
    if (too_small) {
      pool_table.AddRow({StrFormat("%llu KB",
                                   static_cast<unsigned long long>(pool_kb)),
                         "-", "-", "pool < pinned working set"});
      continue;
    }
    db.index()->buffer_manager()->ResetStats();
    double io = 0.0;
    for (const auto& q : queries) {
      bench::CheckOk(db.Search(q, ir::RunType::kBm25TC, sopts, &result),
                     "search");
      io += result.io_seconds;
    }
    const storage::BufferStats stats = db.buffer_stats();
    pool_table.AddRow(
        {StrFormat("%llu KB", static_cast<unsigned long long>(pool_kb)),
         StrFormat("%.1f%%", 100.0 * stats.HitRate()),
         StrFormat("%.3f",
                   io * 1e3 / static_cast<double>(queries.size())),
         StrFormat("%llu",
                   static_cast<unsigned long long>(stats.evictions))});
  }
  pool_table.Print();
  std::printf(
      "shape: once the pool covers the query working set the hit rate "
      "saturates and simulated I/O vanishes — the paper's hot runs. "
      "Compression moves the saturation point left (the whole compressed "
      "index fits in RAM, §3.4).\n");
  return 0;
}

}  // namespace
}  // namespace x100ir

int main() { return x100ir::Run(); }
