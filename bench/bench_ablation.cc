// Ablations of ColumnBM design choices called out in DESIGN.md §4:
//   1. Disk block size ("the granularity of disk accesses is in blocks of
//      several megabytes, to optimize for fast sequential I/O"): cold query
//      cost vs values-per-block.
//   2. Buffer pool capacity: hit rate / simulated I/O as the pool shrinks
//      below the working set.
#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "ir/index_builder.h"
#include "ir/metrics.h"
#include "ir/query_gen.h"
#include "ir/search_engine.h"

namespace x100ir {
namespace {

int Run() {
  std::printf("=== ColumnBM ablations: block size & buffer pool ===\n\n");

  // A smaller private collection: this bench rebuilds indexes per block
  // size. Topic counts are scaled down with it.
  ir::CorpusOptions copts = bench::BenchCorpusOptions();
  copts.num_docs = 20000;
  copts.num_topics = 20;
  copts.relevant_docs_per_topic = 60;
  copts.distractors_per_topic = 120;
  ir::SyntheticCorpus corpus(copts);
  ir::QueryGenOptions qopts = bench::BenchQueryOptions();
  qopts.num_efficiency_queries = 200;
  ir::QueryGenerator gen(corpus, qopts);
  auto queries = gen.EfficiencyQueries();

  std::string base = bench::BenchDir() + "/ablation";

  // ---- 1. Block size sweep. -------------------------------------------
  std::printf("-- disk block size (cold BM25TC, %zu queries) --\n",
              queries.size());
  TablePrinter block_table({"values/block", "~raw block", "cold avg (ms)",
                            "I/O seeks/query", "I/O bytes/query"});
  for (uint32_t vpb : {16u * 1024, 64u * 1024, 256u * 1024, 1024u * 1024}) {
    std::string dir = base + "/blocks_" + std::to_string(vpb);
    if (!std::filesystem::exists(dir + "/meta.bin")) {
      std::filesystem::create_directories(dir);
      ir::IndexBuildOptions build;
      build.dir = dir;
      build.values_per_block = vpb;
      bench::CheckOk(BuildIndex(corpus, build, nullptr), "build");
    }
    ir::IrIndex index;
    bench::CheckOk(index.Open(dir), "open");
    ir::SearchEngine engine(&index);
    ir::SearchOptions opts;
    ir::SearchResult result;
    double total = 0.0;
    uint64_t seeks_before = index.disk()->seeks();
    uint64_t bytes_before = index.disk()->total_bytes();
    for (const auto& q : queries) {
      bench::CheckOk(index.EvictAll(), "evict");
      bench::CheckOk(engine.Search(q, ir::RunType::kBm25TC, opts, &result),
                     "search");
      total += result.TotalSeconds();
    }
    double n = static_cast<double>(queries.size());
    block_table.AddRow(
        {HumanCount(vpb), HumanBytes(static_cast<uint64_t>(vpb) * 4),
         StrFormat("%.3f", total * 1e3 / n),
         StrFormat("%.1f",
                   static_cast<double>(index.disk()->seeks() - seeks_before) /
                       n),
         HumanBytes(static_cast<uint64_t>(
             static_cast<double>(index.disk()->total_bytes() - bytes_before) /
             n))});
  }
  block_table.Print();
  std::printf(
      "shape: small blocks pay a seek per touched block; large blocks read "
      "bytes a query never uses. The paper picks multi-MB blocks because "
      "RAID makes transfer cheap relative to positioning.\n\n");

  // ---- 2. Buffer pool capacity sweep. ----------------------------------
  std::printf("-- buffer pool capacity (hot-loop BM25TC, %zu queries) --\n",
              queries.size());
  TablePrinter pool_table({"pool", "hit rate", "sim I/O ms/query",
                           "evictions"});
  std::string dir = base + "/blocks_262144";  // reuse the 256K-value build
  for (size_t pool_mb : {1u, 4u, 16u, 64u, 256u}) {
    ir::IndexOpenOptions open;
    open.buffer_pool_bytes = pool_mb << 20;
    ir::IrIndex index;
    bench::CheckOk(index.Open(dir, open), "open");
    ir::SearchEngine engine(&index);
    ir::SearchOptions opts;
    ir::SearchResult result;
    // Two passes: the second measures steady-state behavior. A pool smaller
    // than the plan's concurrently pinned blocks cannot run at all — itself
    // an informative data point.
    bool too_small = false;
    for (const auto& q : queries) {
      Status s = engine.Search(q, ir::RunType::kBm25TC, opts, &result);
      if (!s.ok()) {
        too_small = true;
        break;
      }
    }
    if (too_small) {
      pool_table.AddRow({StrFormat("%zu MB", pool_mb), "-", "-",
                         "pool < pinned working set"});
      continue;
    }
    index.buffer_manager()->ResetStats();
    double io = 0.0;
    for (const auto& q : queries) {
      bench::CheckOk(engine.Search(q, ir::RunType::kBm25TC, opts, &result),
                     "search");
      io += result.io_seconds;
    }
    const auto& stats = index.buffer_manager()->stats();
    pool_table.AddRow(
        {StrFormat("%zu MB", pool_mb), StrFormat("%.1f%%",
                                                 100.0 * stats.HitRate()),
         StrFormat("%.3f", io * 1e3 / static_cast<double>(queries.size())),
         StrFormat("%llu", static_cast<unsigned long long>(stats.evictions))});
  }
  pool_table.Print();
  std::printf(
      "shape: once the pool covers the query working set the hit rate "
      "saturates and simulated I/O vanishes — the paper's hot runs. "
      "Compression moves the saturation point left (the whole compressed "
      "index fits in RAM, SS3.4).\n");
  return 0;
}

}  // namespace
}  // namespace x100ir

int main() { return x100ir::Run(); }
