// Shared setup for the paper-table reproduction benches.
//
// Every bench binary builds (or reuses) the same synthetic TREC-TB-substitute
// collection under X100IR_BENCH_DIR (default ./bench_data). Scale is chosen
// so the full bench suite completes in minutes on a laptop while preserving
// the experiments' shape; set X100IR_BENCH_SCALE=large for a bigger run.
#ifndef X100IR_BENCH_BENCH_UTIL_H_
#define X100IR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/database.h"
#include "ir/query_gen.h"

namespace x100ir::bench {

inline std::string BenchDir() {
  const char* env = std::getenv("X100IR_BENCH_DIR");
  return env != nullptr ? std::string(env) : std::string("bench_data");
}

/// X100IR_BENCH_SCALE: "tiny" keeps CI smoke jobs under a minute, "large"
/// approaches the paper's shape more closely; default fits a laptop run.
enum class BenchScale { kTiny, kDefault, kLarge };

inline BenchScale Scale() {
  const char* env = std::getenv("X100IR_BENCH_SCALE");
  if (env == nullptr) return BenchScale::kDefault;
  const std::string s(env);
  if (s == "tiny") return BenchScale::kTiny;
  if (s == "large") return BenchScale::kLarge;
  return BenchScale::kDefault;
}

inline bool LargeScale() { return Scale() == BenchScale::kLarge; }

/// The bench collection: a scaled-down GOV2 stand-in (DESIGN.md §3.1).
inline ir::CorpusOptions BenchCorpusOptions() {
  ir::CorpusOptions opts;
  switch (Scale()) {
    case BenchScale::kTiny:
      opts.num_docs = 4000;
      opts.vocab_size = 6000;
      break;
    case BenchScale::kDefault:
      opts.num_docs = 60000;
      opts.vocab_size = 40000;
      break;
    case BenchScale::kLarge:
      opts.num_docs = 400000;
      opts.vocab_size = 100000;
      break;
  }
  opts.zipf_s = 1.05;
  opts.doclen_mu = 5.0;  // ~150 terms/doc typical
  opts.doclen_sigma = 0.5;
  opts.num_topics = Scale() == BenchScale::kTiny ? 20 : 60;
  opts.terms_per_topic = 6;
  opts.relevant_docs_per_topic =
      Scale() == BenchScale::kLarge ? 250
      : Scale() == BenchScale::kTiny ? 40
                                     : 120;
  opts.topical_mass = 0.30;
  opts.topic_rank_min = 30;
  opts.topic_rank_max = 400;
  opts.seed = 2007;  // CIDR 2007
  return opts;
}

/// Storage-layer knobs scaled with the collection: the paper's multi-MB
/// blocks fit a 426 GB collection whose posting lists run to megabytes;
/// our stand-in's lists are ~1000x shorter, so pages shrink with them —
/// otherwise every per-term range rounds to one page and the Table 2 rows
/// (whose whole point is byte-volume differences) collapse together.
inline storage::StorageOptions BenchStorageOptions() {
  storage::StorageOptions opts;
  switch (Scale()) {
    case BenchScale::kTiny:
      opts.page_bytes = 4u << 10;
      break;
    case BenchScale::kDefault:
      opts.page_bytes = 32u << 10;
      break;
    case BenchScale::kLarge:
      opts.page_bytes = 256u << 10;
      break;
  }
  return opts;
}

inline ir::QueryGenOptions BenchQueryOptions() {
  ir::QueryGenOptions opts;
  opts.num_eval_queries = Scale() == BenchScale::kTiny ? 20 : 50;
  opts.num_efficiency_queries =
      Scale() == BenchScale::kLarge ? 5000
      : Scale() == BenchScale::kTiny ? 200
                                     : 1000;
  opts.seed = 7;
  return opts;
}

/// Opens (building if absent) the shared bench database.
inline Status OpenBenchDatabase(core::Database* db,
                                const char* subdir = "full") {
  core::DatabaseOptions opts;
  opts.dir = BenchDir() + "/" + subdir;
  opts.corpus = BenchCorpusOptions();
  opts.storage = BenchStorageOptions();
  std::fprintf(stderr,
               "[bench] collection: %u docs, %u terms (index dir %s)\n",
               opts.corpus.num_docs, opts.corpus.vocab_size,
               opts.dir.c_str());
  Status s = db->Open(opts);
  if (s.ok() && db->build_stats().num_postings > 0) {
    std::fprintf(stderr, "[bench] built index: %llu postings in %.1fs\n",
                 static_cast<unsigned long long>(
                     db->build_stats().num_postings),
                 db->build_stats().build_seconds);
  }
  return s;
}

/// Evicts exactly the columns RunType `type` scans — the per-run cold
/// reset. A global EvictAll would also chill columns the run never touches
/// (and, in the segmented index, every other segment's pages), polluting
/// cross-run comparisons with eviction work and refetches the measured run
/// doesn't cause. In-memory run types touch no storage: no-op.
inline Status EvictRunColumns(const core::Database& db, ir::RunType type) {
  if (!db.has_storage()) return OkStatus();
  const ir::IndexStorage* st = db.index()->storage();
  storage::BufferManager* pool = db.index()->buffer_manager();
  const storage::ColumnReader* docid = nullptr;
  const storage::ColumnReader* value = nullptr;
  switch (type) {
    case ir::RunType::kBm25T:
      docid = &st->docid_raw;
      value = &st->tf_raw;
      break;
    case ir::RunType::kBm25TC:
      docid = &st->docid_compressed;
      value = &st->tf_compressed;
      break;
    case ir::RunType::kBm25TCM:
      docid = &st->docid_compressed;
      value = &st->score_f32;
      break;
    case ir::RunType::kBm25TCMQ8:
      docid = &st->docid_compressed;
      value = &st->score_q8;
      break;
    default:
      return OkStatus();  // in-memory run: nothing pooled to evict
  }
  X100IR_RETURN_IF_ERROR(pool->EvictFile(docid->file_id()));
  return pool->EvictFile(value->file_id());
}

/// Aborts the bench on error (benches are not recoverable).
inline void CheckOk(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace x100ir::bench

#endif  // X100IR_BENCH_BENCH_UTIL_H_
